//! # elzar-suite
//!
//! Umbrella package for the ELZAR (DSN 2016) reproduction. It hosts the
//! runnable examples and the cross-crate integration tests, and re-exports
//! every workspace crate so examples can use one import root.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the full
//! system inventory.

pub use elzar;
pub use elzar_apps;
pub use elzar_avx;
pub use elzar_bench;
pub use elzar_cpu;
pub use elzar_fault;
pub use elzar_ir;
pub use elzar_obs;
pub use elzar_passes;
pub use elzar_serve;
pub use elzar_sim;
pub use elzar_vm;
pub use elzar_workloads;
