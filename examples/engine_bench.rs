//! Execution-engine shoot-out: the same hardened artifact run by the
//! reference interpreter and by the superblock trace engine (scalar and
//! AVX2 kernel tables), side by side.
//!
//! Two things are demonstrated at once:
//!
//! * **Throughput** — host steps/second per engine, native and
//!   ELZAR-hardened. The trace engine's win comes from pre-decoded
//!   superblocks plus pattern fusion of the §IV-B check idioms.
//! * **Bit-identity** — every engine must report the *same* simulated
//!   cycles, retired steps and output bytes (asserted below), and a
//!   seeded SEU campaign must classify identically: the Figure-8
//!   TMR check (`rot; xor; ptest; branch` — fused to one dispatch
//!   in-trace) fires live and corrects the injected flips.
//!
//! ```sh
//! cargo run --release --example engine_bench
//! ```

use elzar_suite::elzar::{Artifact, Mode};
use elzar_suite::elzar_fault::{CampaignConfig, Outcome};
use elzar_suite::elzar_ir::builder::{c64, FuncBuilder};
use elzar_suite::elzar_ir::{BinOp, Builtin, Module, Ty};
use elzar_suite::elzar_vm::{cpu_features, EngineKind, MachineConfig};
use std::time::Instant;

fn kernel(iters: i64) -> Module {
    let mut m = Module::new("engine-bench");
    let mut b = FuncBuilder::new("main", vec![], Ty::I64);
    let buf = b.call_builtin(Builtin::Malloc, vec![c64(64 * 8)], Ty::Ptr).unwrap();
    b.counted_loop(c64(0), c64(iters), |b, i| {
        let idx = b.bin(BinOp::And, Ty::I64, i, c64(63));
        let p = b.gep(buf, idx, 8);
        let v = b.load(Ty::I64, p);
        let x = b.mul(v, c64(3));
        let y = b.add(x, i);
        b.store(Ty::I64, y, p);
    });
    let p0 = b.gep(buf, c64(0), 8);
    let v = b.load(Ty::I64, p0);
    b.call_builtin(Builtin::OutputI64, vec![v.into()], Ty::Void);
    b.ret(c64(0));
    m.add_func(b.finish());
    m
}

/// Steps/second of `artifact` under `engine` over a short timed window.
fn rate(artifact: &Artifact, engine: EngineKind) -> f64 {
    let cfg = MachineConfig { engine, ..MachineConfig::default() };
    artifact.run(&[], cfg); // warm-up
    let mut steps = 0u64;
    let t0 = Instant::now();
    while t0.elapsed().as_millis() < 200 {
        steps += artifact.run(&[], cfg).steps;
    }
    steps as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let engines = [EngineKind::Reference, EngineKind::TraceScalar, EngineKind::TraceSimd];
    let native = Artifact::build(&kernel(20_000), &Mode::NativeNoSimd);
    let elzar = Artifact::build(&kernel(20_000), &Mode::elzar_default());

    println!("host features: {}", cpu_features().join(", "));
    println!();
    println!(
        "{:<14} {:>16} {:>16} {:>14} {:>14}",
        "engine", "native steps/s", "elzar steps/s", "sim cycles", "sim steps"
    );
    let base = elzar.run(&[], MachineConfig::default());
    let mut ref_elzar_rate = 0.0;
    for engine in engines {
        let cfg = MachineConfig { engine, ..MachineConfig::default() };
        let r = elzar.run(&[], cfg);
        // The engines are drop-in replacements: every simulated
        // observable must be bit-identical to the reference run.
        assert_eq!(r.cycles, base.cycles, "{engine:?}: simulated cycles diverged");
        assert_eq!(r.steps, base.steps, "{engine:?}: retired steps diverged");
        assert_eq!(r.output, base.output, "{engine:?}: output bytes diverged");
        let nr = rate(&native, engine);
        let er = rate(&elzar, engine);
        if engine == EngineKind::Reference {
            ref_elzar_rate = er;
        }
        println!(
            "{:<14} {:>14.1}M {:>14.1}M {:>14} {:>14}",
            engine.name(),
            nr / 1e6,
            er / 1e6,
            r.cycles,
            r.steps
        );
    }
    println!();

    // Live Figure-8 check: inject real SEUs and let the fused in-trace
    // check catch them. The outcome distribution must not depend on
    // which engine executed the run.
    let campaign = |engine: EngineKind| {
        elzar.campaign(
            &[],
            &CampaignConfig {
                runs: 120,
                seed: 7,
                machine: MachineConfig { engine, ..MachineConfig::default() },
                ..Default::default()
            },
        )
    };
    let base = campaign(EngineKind::Reference);
    for engine in [EngineKind::TraceScalar, EngineKind::TraceSimd] {
        let r = campaign(engine);
        assert_eq!(r.counts, base.counts, "{engine:?}: campaign outcomes diverged");
        assert!(r.rate(Outcome::ElzarCorrected) > 0.0, "{engine:?}: the Figure-8 check never fired");
    }
    println!(
        "figure-8 check live under trace engine: {:.1}% of {} injected \
         faults corrected, outcome counts bit-identical to reference",
        base.rate(Outcome::ElzarCorrected) * 100.0,
        120
    );
    let trace_rate = rate(&elzar, EngineKind::TraceSimd);
    println!("hardened-mode speedup (trace-simd vs reference): {:.2}x", trace_rate / ref_elzar_rate);
}
