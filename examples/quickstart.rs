//! Quickstart: build a small program, harden it with ELZAR, run both
//! versions on the simulated machine and compare cost and results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use elzar_suite::elzar::{execute, normalized_runtime, Mode};
use elzar_suite::elzar_ir::builder::{c64, FuncBuilder};
use elzar_suite::elzar_ir::{Builtin, Module, Ty};
use elzar_suite::elzar_vm::MachineConfig;

fn main() {
    // A tiny program: sum the squares of 0..1000 and print the result.
    let mut module = Module::new("quickstart");
    let mut b = FuncBuilder::new("main", vec![], Ty::I64);
    let acc = b.alloca(Ty::I64, c64(1));
    b.store(Ty::I64, c64(0), acc);
    b.counted_loop(c64(0), c64(1000), |b, i| {
        let sq = b.mul(i, i);
        let cur = b.load(Ty::I64, acc);
        let next = b.add(cur, sq);
        b.store(Ty::I64, next, acc);
    });
    let total = b.load(Ty::I64, acc);
    b.call_builtin(Builtin::OutputI64, vec![total.into()], Ty::Void);
    b.ret(total);
    module.add_func(b.finish());

    // Run natively and under ELZAR's AVX-based triple modular redundancy.
    let cfg = MachineConfig::default();
    let native = execute(&module, &Mode::Native, &[], cfg);
    let hardened = execute(&module, &Mode::elzar_default(), &[], cfg);

    println!("native   : outcome {:?}", native.outcome);
    println!(
        "           {} instructions, {} cycles (ILP {:.2})",
        native.counters.instrs,
        native.cycles,
        native.ilp()
    );
    println!("elzar    : outcome {:?}", hardened.outcome);
    println!(
        "           {} instructions, {} cycles (ILP {:.2})",
        hardened.counters.instrs,
        hardened.cycles,
        hardened.ilp()
    );
    println!("overhead : {:.2}x normalized runtime", normalized_runtime(&hardened, &native));
    assert_eq!(native.output, hardened.output, "TMR must not change results");
    println!(
        "outputs match: sum(i^2, i<1000) = {}",
        i64::from_le_bytes(native.output[..8].try_into().unwrap())
    );
}
