//! Quickstart: build a small program, harden it with ELZAR via the
//! artifact pipeline, run both versions on the simulated machine and
//! compare cost and results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use elzar_suite::elzar::{normalized_runtime, Artifact, Mode};
use elzar_suite::elzar_ir::builder::{c64, FuncBuilder};
use elzar_suite::elzar_ir::{Builtin, Module, Ty};
use elzar_suite::elzar_vm::MachineConfig;

fn main() {
    // A tiny program: sum the squares of 0..1000 and print the result.
    let mut module = Module::new("quickstart");
    let mut b = FuncBuilder::new("main", vec![], Ty::I64);
    let acc = b.alloca(Ty::I64, c64(1));
    b.store(Ty::I64, c64(0), acc);
    b.counted_loop(c64(0), c64(1000), |b, i| {
        let sq = b.mul(i, i);
        let cur = b.load(Ty::I64, acc);
        let next = b.add(cur, sq);
        b.store(Ty::I64, next, acc);
    });
    let total = b.load(Ty::I64, acc);
    b.call_builtin(Builtin::OutputI64, vec![total.into()], Ty::Void);
    b.ret(total);
    module.add_func(b.finish());

    // Build each mode once (transform -> verify -> lower); run the
    // immutable artifacts as often as needed.
    let cfg = MachineConfig::default();
    let native_build = Artifact::build(&module, &Mode::Native);
    let hardened_build = Artifact::build(&module, &Mode::elzar_default());
    for (label, a) in [("native", &native_build), ("elzar", &hardened_build)] {
        let names: Vec<_> = a.pass_stats().iter().map(|s| s.name).collect();
        println!("{label:<9}: pipeline {names:?}");
    }
    let native = native_build.run(&[], cfg);
    let hardened = hardened_build.run(&[], cfg);

    println!("native   : outcome {:?}", native.outcome);
    println!(
        "           {} instructions, {} cycles (ILP {:.2})",
        native.counters.instrs,
        native.cycles,
        native.ilp()
    );
    println!("elzar    : outcome {:?}", hardened.outcome);
    println!(
        "           {} instructions, {} cycles (ILP {:.2})",
        hardened.counters.instrs,
        hardened.cycles,
        hardened.ilp()
    );
    println!("overhead : {:.2}x normalized runtime", normalized_runtime(&hardened, &native));
    assert_eq!(native.output, hardened.output, "TMR must not change results");
    println!(
        "outputs match: sum(i^2, i<1000) = {}",
        i64::from_le_bytes(native.output[..8].try_into().unwrap())
    );
}
