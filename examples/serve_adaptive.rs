//! Adaptive serving example: one phased YCSB-A load (a dense burst,
//! then a 30x-stretched lull) served three ways on the same artifact,
//! plus a saturation study of deadline-aware admission.
//!
//! 1. **static 1 shard** — under-provisioned: the burst queues deeply;
//! 2. **static 4 shards** — over-provisioned for the lull;
//! 3. **adaptive** — starts at 1 shard; the controller watches
//!    virtual-time queue occupancy, scales up through the burst (each
//!    joiner boots from a donor's snapshot and replays only the key
//!    range it takes over) and retires shards through the lull.
//!
//! Outcome counts and the final table digest are identical across all
//! three — the scaling schedule is a pure timing lever — which is what
//! lets one deterministic test suite pin the whole adaptive layer.
//!
//! The second half turns on SLO shedding at saturation: drop-tail keeps
//! serving requests whose deadline already passed; the deadline-aware
//! gate sheds them at admission and keeps goodput at capacity.
//!
//! ```sh
//! cargo run --release --example serve_adaptive
//! ```

use elzar_suite::elzar::{Artifact, Mode};
use elzar_suite::elzar_apps::Scale;
use elzar_suite::elzar_serve::gen::rescale_gaps;
use elzar_suite::elzar_serve::{serve_program, serve_stream, ServeConfig, ServeReport, Service};

fn report_line(label: &str, r: &ServeReport) {
    println!(
        "{label:<10} {:>11.0} {:>9.1} {:>9.1} {:>5} {:>5} {:>5}/{:<5} {:>7}",
        r.throughput_rps(),
        r.quantile_us(0.50),
        r.quantile_us(0.90),
        r.peak_shards,
        r.final_shards,
        r.scale_ups,
        r.scale_downs,
        r.migration_replays,
    );
}

fn main() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());

    // Phased load: 2/3 of the stream arrives at a gap that saturates a
    // single shard, then the tail thins out 30x. Only arrival times
    // differ from the stock stream — identities, keys and payloads are
    // untouched, so all three runs commit the same per-key sequences.
    let base = ServeConfig {
        shards: 1,
        batch_size: 8,
        requests: 360,
        mean_gap_cycles: 300,
        queue_capacity: 1 << 20,
        ..Default::default()
    };
    let mut stream = service.stream(&app, &base);
    let cut = stream.len() * 2 / 3;
    rescale_gaps(&mut stream, cut, 30, 1);

    let adaptive_cfg = ServeConfig {
        adaptive_shards: true,
        shards_max: 4,
        control_interval: 32,
        scale_up_backlog: 6,
        scale_down_backlog: 1,
        batch_adaptive: true,
        ..base.clone()
    };

    println!("mini-memcached, phased YCSB-A load (dense 2/3, then a 30x lull), 360 requests\n");
    println!(
        "{:<10} {:>11} {:>9} {:>9} {:>5} {:>5} {:>11} {:>7}",
        "fleet", "tput req/s", "p50 us", "p90 us", "peak", "final", "ups/downs", "replays"
    );
    let one = serve_stream(artifact.program(), &app, &stream, &base);
    report_line("static-1", &one);
    let four = serve_stream(artifact.program(), &app, &stream, &ServeConfig { shards: 4, ..base.clone() });
    report_line("static-4", &four);
    let elastic = serve_stream(artifact.program(), &app, &stream, &adaptive_cfg);
    report_line("adaptive", &elastic);

    // The scaling schedule never changes what was served.
    assert_eq!(one.table_digest, elastic.table_digest);
    assert_eq!(one.outcomes, elastic.outcomes);
    assert!(elastic.scale_ups > 0 && elastic.scale_downs > 0);

    println!();
    for e in &elastic.events {
        println!("  {e:?}");
    }
    println!(
        "\nelastic fleet: p90 {:.1} -> {:.1} us vs the 1-shard start, finishing on {} shard(s); \
         {} committed requests replayed across {} migrated slots",
        one.quantile_us(0.90),
        elastic.quantile_us(0.90),
        elastic.final_shards,
        elastic.migration_replays,
        elastic.migrated_slots,
    );

    // --- Deadline-aware admission at saturation ------------------------
    let slo = 60_000; // 30 us at the simulated 2 GHz
    let saturated = ServeConfig {
        shards: 2,
        batch_adaptive: true,
        requests: 400,
        mean_gap_cycles: 30, // far denser than the service rate
        slo_cycles: slo,
        shed_slo: false,
        queue_capacity: 512,
        ..Default::default()
    };
    let drop_tail = serve_program(service, artifact.program(), &app, &saturated);
    let shed = serve_program(
        service,
        artifact.program(),
        &app,
        &ServeConfig { shed_slo: true, queue_capacity: 1 << 20, ..saturated },
    );
    println!("\nsaturation, 30 us SLO: drop-tail vs deadline-aware shedding");
    println!(
        "  drop-tail: served {:>3}, met SLO {:>3}, goodput {:>9.0} req/s",
        drop_tail.served,
        drop_tail.slo_met,
        drop_tail.goodput_rps()
    );
    println!(
        "  slo-shed:  served {:>3} (+{} shed at admission), met SLO {:>3}, goodput {:>9.0} req/s",
        shed.served,
        shed.shed,
        shed.slo_met,
        shed.goodput_rps()
    );
    assert_eq!(shed.slo_met, shed.served, "every admitted request met its deadline");
    assert!(shed.goodput_rps() >= drop_tail.goodput_rps());
}
