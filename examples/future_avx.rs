//! The §VII what-if: how much faster would ELZAR be if AVX gained
//! voting gathers/scatters, flag-setting compares, and FPGA-offloaded
//! checks? Runs one benchmark under every configuration, including the
//! paper's decelerated-native estimation methodology.
//!
//! ```sh
//! cargo run --release --example future_avx
//! ```

use elzar_suite::elzar::{normalized_runtime, Artifact, Config, FutureAvx, Mode};
use elzar_suite::elzar_vm::MachineConfig;
use elzar_suite::elzar_workloads::{by_name, Scale};

fn main() {
    let w = by_name("kmeans").expect("known benchmark");
    let built = w.build(Scale::Small);
    let cfg = MachineConfig { step_limit: 50_000_000_000, threads: 2, ..MachineConfig::default() };
    let native = Artifact::build(&built.module, &Mode::Native).run(&built.input, cfg);

    let variants: Vec<(&str, Mode)> = vec![
        ("elzar (today's AVX)", Mode::elzar_default()),
        (
            "+ gather/scatter",
            Mode::Elzar(Config {
                future: FutureAvx { gather_scatter: true, ..Default::default() },
                ..Config::default()
            }),
        ),
        (
            "+ cmp->FLAGS",
            Mode::Elzar(Config {
                future: FutureAvx { gather_scatter: true, cmp_flags: true, ..Default::default() },
                ..Config::default()
            }),
        ),
        ("+ FPGA checks (all)", Mode::elzar_future_avx()),
        ("decelerated-native estimate", Mode::DeceleratedNative),
    ];
    println!("kmeans, 2 threads — overhead vs native:");
    for (name, mode) in variants {
        let r = Artifact::build(&built.module, &mode).run(&built.input, cfg);
        if mode != Mode::DeceleratedNative {
            assert_eq!(r.output, native.output);
        }
        println!("  {:<28} {:>6.2}x", name, normalized_runtime(&r, &native));
    }
    println!();
    println!("Each proposed AVX extension peels off part of the wrapper and");
    println!("check cost; the paper estimates the full set brings ELZAR's");
    println!("mean overhead down to ~1.48x (§VII-D, Figure 17).");
}
