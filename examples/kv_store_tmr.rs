//! Case-study example: run the mini-memcached server under YCSB workload
//! A, native vs ELZAR-hardened, and report throughput — one cell of the
//! paper's Figure 15.
//!
//! The app module is thread-count-agnostic, so each mode is built
//! *once* and the whole thread sweep runs on the shared artifact with
//! `MachineConfig::threads` varying.
//!
//! ```sh
//! cargo run --release --example kv_store_tmr
//! ```

use elzar_suite::elzar::{Artifact, Mode};
use elzar_suite::elzar_apps::{throughput, App, AppParams, Scale, YcsbWorkload};
use elzar_suite::elzar_vm::MachineConfig;

fn main() {
    let built = App::Memcached.build(&AppParams::new(Scale::Small, YcsbWorkload::A));
    let native = Artifact::build(&built.module, &Mode::Native);
    let elzar = Artifact::build(&built.module, &Mode::elzar_default());
    println!("mini-memcached, YCSB workload A (50% reads / 50% updates, Zipf)");
    println!("{:<8} {:>14} {:>14} {:>8}", "threads", "native ops/s", "elzar ops/s", "ratio");
    for threads in [1u32, 2, 4] {
        let cfg = MachineConfig { step_limit: 50_000_000_000, threads, ..MachineConfig::default() };
        let rn = native.run(&built.input, cfg);
        let re = elzar.run(&built.input, cfg);
        assert_eq!(rn.output, re.output, "hardening must not change query results");
        let tn = throughput(built.ops, rn.cycles);
        let te = throughput(built.ops, re.cycles);
        println!("{:<8} {:>14.0} {:>14.0} {:>7.0}%", threads, tn, te, te / tn * 100.0);
    }
    println!();
    println!("The paper reports ELZAR reaching 72-85% of native Memcached");
    println!("throughput — the hash table's poor memory locality hides much");
    println!("of the wrapper cost behind cache misses (§VI).");
}
