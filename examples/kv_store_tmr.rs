//! Case-study example: run the mini-memcached server under YCSB workload
//! A, native vs ELZAR-hardened, and report throughput — one cell of the
//! paper's Figure 15.
//!
//! ```sh
//! cargo run --release --example kv_store_tmr
//! ```

use elzar_suite::elzar::{execute, Mode};
use elzar_suite::elzar_apps::{throughput, App, AppParams, Scale, YcsbWorkload};
use elzar_suite::elzar_vm::MachineConfig;

fn main() {
    let cfg = MachineConfig { step_limit: 50_000_000_000, ..MachineConfig::default() };
    println!("mini-memcached, YCSB workload A (50% reads / 50% updates, Zipf)");
    println!("{:<8} {:>14} {:>14} {:>8}", "threads", "native ops/s", "elzar ops/s", "ratio");
    for threads in [1u32, 2, 4] {
        let built = App::Memcached.build(&AppParams::new(threads, Scale::Small, YcsbWorkload::A));
        let native = execute(&built.module, &Mode::Native, &built.input, cfg);
        let elzar = execute(&built.module, &Mode::elzar_default(), &built.input, cfg);
        assert_eq!(native.output, elzar.output, "hardening must not change query results");
        let tn = throughput(built.ops, native.cycles);
        let te = throughput(built.ops, elzar.cycles);
        println!("{:<8} {:>14.0} {:>14.0} {:>7.0}%", threads, tn, te, te / tn * 100.0);
    }
    println!();
    println!("The paper reports ELZAR reaching 72-85% of native Memcached");
    println!("throughput — the hash table's poor memory locality hides much");
    println!("of the wrapper cost behind cache misses (§VI).");
}
