//! Fault-injection walk-through: harden a kernel, then bombard both the
//! native and the ELZAR build with single-event upsets and compare the
//! Table-I outcome distributions (a miniature Figure 13).
//!
//! Campaigns run through `Artifact::campaign`, which classifies every
//! injection against the artifact's cached golden run — the reference
//! execution happens once per build, not once per campaign.
//!
//! ```sh
//! cargo run --release --example harden_and_inject
//! ```

use elzar_suite::elzar::{Artifact, Mode};
use elzar_suite::elzar_fault::{CampaignConfig, Outcome};
use elzar_suite::elzar_ir::builder::{c64, FuncBuilder};
use elzar_suite::elzar_ir::{BinOp, Builtin, Module, Ty};

fn kernel() -> Module {
    let mut m = Module::new("inject-demo");
    let mut b = FuncBuilder::new("main", vec![], Ty::I64);
    let buf = b.call_builtin(Builtin::Malloc, vec![c64(128 * 8)], Ty::Ptr).unwrap();
    b.counted_loop(c64(0), c64(128), |b, i| {
        let v = b.mul(i, c64(2654435761));
        let x = b.bin(BinOp::Xor, Ty::I64, v, c64(0xABCD));
        let p = b.gep(buf, i, 8);
        b.store(Ty::I64, x, p);
    });
    let acc = b.alloca(Ty::I64, c64(1));
    b.store(Ty::I64, c64(0), acc);
    b.counted_loop(c64(0), c64(128), |b, i| {
        let p = b.gep(buf, i, 8);
        let v = b.load(Ty::I64, p);
        let a = b.load(Ty::I64, acc);
        let s = b.add(a, v);
        b.store(Ty::I64, s, acc);
    });
    let v = b.load(Ty::I64, acc);
    b.call_builtin(Builtin::OutputI64, vec![v.into()], Ty::Void);
    b.ret(c64(0));
    m.add_func(b.finish());
    m
}

fn main() {
    let m = kernel();
    println!(
        "{:<10} {:>8} {:>8} {:>10} {:>8} {:>8}",
        "version", "hang", "os-det", "corrected", "masked", "SDC"
    );
    for (name, mode) in [("native", Mode::NativeNoSimd), ("elzar", Mode::elzar_default())] {
        let artifact = Artifact::build(&m, &mode);
        let r = artifact.campaign(&[], &CampaignConfig { runs: 300, seed: 42, ..Default::default() });
        println!(
            "{:<10} {:>7.1}% {:>7.1}% {:>9.1}% {:>7.1}% {:>7.1}%",
            name,
            r.rate(Outcome::Hang) * 100.0,
            r.rate(Outcome::OsDetected) * 100.0,
            r.rate(Outcome::ElzarCorrected) * 100.0,
            r.rate(Outcome::Masked) * 100.0,
            r.rate(Outcome::Sdc) * 100.0,
        );
    }
    println!();
    println!("ELZAR converts most silent corruptions into corrections;");
    println!("the residue comes from the extracted-address window (§V-C).");
}
