//! Batched serving example: push a YCSB-A stream through resident
//! mini-memcached shards with request batching and K-interval
//! snapshots, under an online SEU schedule aggressive enough to crash a
//! shard — demonstrating the crash → restore-snapshot → replay-suffix
//! recovery path and its latency/availability price.
//!
//! Three configurations of the *same* stream on the *same* artifact:
//!
//! 1. unbatched, snapshot every request (the PR-2 baseline shape);
//! 2. batched (`batch_size = 16`), snapshot every 16 requests;
//! 3. the batched config served by the *unhardened* build, where the
//!    same faults turn into silent corruptions instead of corrections.
//!
//! Outcome counts and the final table digest are identical between 1
//! and 2 — batching and checkpoint cadence are pure timing levers.
//!
//! ```sh
//! cargo run --release --example serve_batched
//! ```

use elzar_suite::elzar::{Artifact, Mode};
use elzar_suite::elzar_apps::Scale;
use elzar_suite::elzar_fault::Outcome;
use elzar_suite::elzar_serve::{serve_program, ServeConfig, ServeReport, Service};

fn report_line(label: &str, r: &ServeReport) {
    println!(
        "{label:<22} {:>11.0} {:>9.1} {:>9.1} {:>5} {:>5} {:>5} {:>4} {:>9.5}",
        r.throughput_rps(),
        r.quantile_us(0.50),
        r.quantile_us(0.99),
        r.injected,
        r.count(Outcome::ElzarCorrected),
        r.count(Outcome::Sdc),
        r.restarts,
        r.availability(),
    );
}

fn main() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let hardened = Artifact::build(&app.module, &Mode::elzar_default());
    let native = Artifact::build(&app.module, &Mode::NativeNoSimd);

    // A saturating open-loop YCSB-A stream with a 20% per-request SEU
    // probability: enough injections that ELZAR's whole Table-I
    // taxonomy shows up online, including detected crashes.
    let unbatched = ServeConfig {
        shards: 2,
        requests: 400,
        mean_gap_cycles: 200,
        queue_capacity: 1 << 20,
        fault_rate_ppm: 200_000,
        batch_size: 1,
        snapshot_interval: 1,
        ..Default::default()
    };
    let batched = ServeConfig { batch_size: 16, snapshot_interval: 16, ..unbatched.clone() };

    println!("mini-memcached, YCSB-A stream, 2 shards, 400 requests, 20% SEU rate\n");
    println!(
        "{:<22} {:>11} {:>9} {:>9} {:>5} {:>5} {:>5} {:>4} {:>9}",
        "configuration", "tput req/s", "p50 us", "p99 us", "inj", "corr", "sdc", "rst", "avail"
    );
    let base = serve_program(service, hardened.program(), &app, &unbatched);
    report_line("batch=1  K=1  elzar", &base);
    let fast = serve_program(service, hardened.program(), &app, &batched);
    report_line("batch=16 K=16 elzar", &fast);
    let unprotected = serve_program(service, native.program(), &app, &batched);
    report_line("batch=16 K=16 native", &unprotected);

    // Batching and checkpoint cadence never change what was served.
    assert_eq!(base.outcomes, fast.outcomes);
    assert_eq!(base.table_digest, fast.table_digest);

    println!();
    println!(
        "batching + K-interval snapshots: {:.2}x throughput, p99 {:.1} -> {:.1} us",
        fast.throughput_rps() / base.throughput_rps(),
        base.quantile_us(0.99),
        fast.quantile_us(0.99),
    );
    if fast.restarts > 0 {
        println!(
            "{} crash(es) recovered by restoring the last snapshot and replaying \
             the committed suffix ({} replay cycles, availability {:.5})",
            fast.restarts,
            fast.replay_cycles(),
            fast.availability(),
        );
    }
    println!(
        "unprotected build under the same faults: {} silent corruptions vs {} (ELZAR corrected {})",
        unprotected.count(Outcome::Sdc),
        fast.count(Outcome::Sdc),
        fast.count(Outcome::ElzarCorrected),
    );
}
