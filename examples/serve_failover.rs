//! Failover example: one YCSB-A stream under an SEU storm (~30% of
//! requests take a fault), served twice on the same artifact:
//!
//! 1. **restart-only** — every Crashed-class outcome stalls the shard
//!    for `restart_cycles` + suffix replay while its queue waits;
//! 2. **warm-replica** — a standby mirrors the committed log in the
//!    background and is promoted in `failover_cycles` on each crash;
//!    the restart+replay detour still runs, but in background time,
//!    rebuilding the new standby.
//!
//! Outcome counts, crash counts and the final table digest are
//! bit-identical — failover is purely a timing/availability lever —
//! while MTTR drops from the restart detour to the promotion handoff.
//!
//! The replica run also turns on the divergence detector: every
//! injected request's faulty state is probed against the committed
//! reference (an SDC detector independent of ELZAR's classification),
//! and the primary and standby digests are compared every 8 commits.
//!
//! ```sh
//! cargo run --release --example serve_failover
//! ```

use elzar_suite::elzar::{Artifact, Mode};
use elzar_suite::elzar_apps::Scale;
use elzar_suite::elzar_serve::{serve_stream, ServeConfig, ServeReport, Service};

fn report_line(label: &str, r: &ServeReport) {
    let mttr = if r.restarts == 0 { 0.0 } else { r.downtime_cycles() as f64 / r.restarts as f64 };
    println!(
        "{label:<14} {:>12.6} {:>7} {:>7} {:>10.1} {:>9.1} {:>9.1}",
        r.availability(),
        r.restarts,
        r.promotions,
        mttr,
        r.quantile_us(0.90),
        r.quantile_us(0.999),
    );
}

fn main() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());

    let cfg = ServeConfig {
        shards: 2,
        batch_size: 8,
        snapshot_interval: 16,
        requests: 400,
        seed: 0xFA11_0EE5,
        fault_rate_ppm: 300_000,
        queue_capacity: 1 << 20,
        mean_gap_cycles: 300,
        ..Default::default()
    };
    let stream = service.stream(&app, &cfg);

    println!("mini-memcached, YCSB-A, 400 requests, ~30% SEU rate, K=16\n");
    println!(
        "{:<14} {:>12} {:>7} {:>7} {:>10} {:>9} {:>9}",
        "recovery", "availability", "crashes", "promos", "mttr cyc", "p90 us", "p99.9 us"
    );
    let restart = serve_stream(artifact.program(), &app, &stream, &cfg);
    report_line("restart-only", &restart);
    let replica = serve_stream(
        artifact.program(),
        &app,
        &stream,
        &ServeConfig { replicas: true, divergence_check_interval: 8, ..cfg.clone() },
    );
    report_line("warm-replica", &replica);

    // Failover never changes what was served — only when.
    assert_eq!(restart.outcomes, replica.outcomes);
    assert_eq!(restart.restarts, replica.restarts);
    assert_eq!(restart.table_digest, replica.table_digest);
    assert_eq!(replica.promotions, replica.restarts, "every crash promotes");
    assert!(replica.availability() > restart.availability());

    println!(
        "\nwarm replicas: downtime {} -> {} cycles across {} crashes; \
         {} background cycles rebuilding standbys, {} mirroring the log",
        restart.downtime_cycles(),
        replica.downtime_cycles(),
        replica.restarts,
        replica.rebuild_cycles(),
        replica.replica_apply_cycles(),
    );
    println!(
        "divergence detector: {} probes, flagged {:?} vs ELZAR outcomes {:?} \
         ({:.1}% agreement); {} periodic checks, {} alarms",
        replica.div_probes(),
        replica.div_flagged,
        replica.outcomes,
        100.0 * replica.divergence_agreement(),
        replica.divergence_checks,
        replica.divergence_alarms,
    );
    assert_eq!(replica.divergence_alarms, 0);
}
