//! Scenario-suite example: the flash-crowd preset served twice on the
//! same artifact — once with the reactive queue-depth controller, once
//! with the predictive (Holt-forecast) policy — plus a look at the
//! forecast the predictive run acted on.
//!
//! The preset compiles to a deterministic request stream and a
//! per-phase fault-rate schedule: calm traffic, a ramp that compresses
//! arrivals 6x, the crowd itself, a decay ramp, calm again. Both
//! policies serve the *same* bytes under the *same* fault schedule, so
//! outcome counts and the table digest are bit-identical across runs —
//! the only thing the policy can change is timing. The reactive
//! controller waits for queues to build before it scales; the
//! predictive one watches the per-epoch arrival rate, extrapolates the
//! Holt trend four epochs ahead and pre-boots joiners during the
//! onset ramp, so the crowd lands on a fleet that is already scaled.
//!
//! ```sh
//! cargo run --release --example serve_scenario
//! ```

use elzar_suite::elzar::{Artifact, Mode};
use elzar_suite::elzar_apps::Scale;
use elzar_suite::elzar_obs::EventKind;
use elzar_suite::elzar_serve::gen::ScenarioPreset;
use elzar_suite::elzar_serve::{serve_scenario, ScalingPolicy, ServeConfig, ServeReport, Service};

fn report_line(label: &str, r: &ServeReport) {
    println!(
        "{label:<11} {:>9.1} {:>9.1} {:>9.1} {:>5} {:>11} {:>12}",
        r.quantile_us(0.50),
        r.quantile_us(0.90),
        r.quantile_us(0.99),
        r.peak_shards,
        format!("{}/{}", r.scale_ups, r.scale_downs),
        r.migration_cycles(),
    );
}

fn main() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());

    let scenario = ScenarioPreset::FlashCrowd.scenario(320, 12_000, 50_000);
    println!("flash-crowd scenario, {} requests:", scenario.requests());
    for p in &scenario.phases {
        println!("  {:<8} {:>4} requests, load {:?}, {} ppm", p.name, p.requests, p.load, p.fault_ppm);
    }

    let base = ServeConfig {
        shards: 1,
        batch_size: 4,
        snapshot_interval: 16,
        seed: 0x5CE2_A210,
        queue_capacity: 1 << 20,
        adaptive_shards: true,
        shards_max: 4,
        control_interval: 16,
        scale_up_backlog: 6,
        scale_down_backlog: 1,
        trace_events: 64,
        ..Default::default()
    };

    println!(
        "\n{:<11} {:>9} {:>9} {:>9} {:>5} {:>11} {:>12}",
        "policy", "p50 us", "p90 us", "p99 us", "peak", "ups/downs", "migr cyc"
    );
    let reactive = serve_scenario(service, artifact.program(), &app, &scenario, &base);
    report_line("reactive", &reactive);
    let predictive = serve_scenario(
        service,
        artifact.program(),
        &app,
        &scenario,
        &ServeConfig { scaling_policy: ScalingPolicy::Predictive, ..base },
    );
    report_line("predictive", &predictive);

    // The policy is a pure timing lever: what was served is identical.
    assert_eq!(reactive.table_digest, predictive.table_digest);
    assert_eq!(reactive.outcomes, predictive.outcomes);
    assert_eq!(reactive.served, predictive.served);
    assert!(predictive.quantile_us(0.99) < reactive.quantile_us(0.99));

    // The forecast series the predictive controller acted on: one
    // record per control epoch, rate in RATE_FP fixed point.
    println!("\nforecast (per control epoch, requests/cycle in 2^20 fixed point):");
    for r in predictive.trace.events.iter().filter(|r| r.kind == EventKind::Forecast).take(12) {
        println!("  cycle {:>9}: forecast {:>6}, level {:>6}", r.cycle, r.a, r.b);
    }

    println!(
        "\npredictive pre-boot: p99 {:.1} -> {:.1} us on the same stream, digest {:#018x} both ways",
        reactive.quantile_us(0.99),
        predictive.quantile_us(0.99),
        predictive.table_digest,
    );
}
