//! Tracing quick-start: serve one YCSB-A crash storm with warm-replica
//! failover and a deep event ring, then dump the run three ways:
//!
//! 1. a **text timeline** excerpt — every event cycle-stamped in the
//!    canonical `(cycle, track, seq)` order;
//! 2. the **cycle ledger** — where every shard cycle went, with the
//!    conservation identity (foreground categories sum to exactly the
//!    fleet's lifetime) printed for inspection;
//! 3. `trace_failover.json` — Chrome trace-event JSON; open it at
//!    <https://ui.perfetto.dev> (or `chrome://tracing`) to see the
//!    failover: the `execute` spans, the `injection` instants, and the
//!    `failover`/`rebuild` detours on each shard row.
//!
//! Everything is stamped in *virtual* cycles, so the trace — down to
//! its byte serialization — is identical no matter how many host
//! workers drained the shards.
//!
//! ```sh
//! cargo run --release --example serve_trace
//! ```

use elzar_suite::elzar::{Artifact, Mode};
use elzar_suite::elzar_apps::{Scale, FREQ_HZ};
use elzar_suite::elzar_bench::report::chrome_trace;
use elzar_suite::elzar_obs::EventKind;
use elzar_suite::elzar_serve::{serve_stream, ServeConfig, Service};

fn main() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let cfg = ServeConfig {
        shards: 2,
        workers: 2,
        batch_size: 8,
        snapshot_interval: 16,
        requests: 360,
        seed: 0xFA11_0EE5,
        fault_rate_ppm: 300_000,
        queue_capacity: 1 << 20,
        mean_gap_cycles: 300,
        replicas: true,
        trace_events: 1 << 14,
        ..Default::default()
    };
    let stream = service.stream(&app, &cfg);
    let r = serve_stream(artifact.program(), &app, &stream, &cfg);

    println!("== text timeline (first 20 of {} events) ==", r.trace.len());
    for line in r.trace.text_timeline().lines().take(21) {
        println!("{line}");
    }

    println!("\n== the failovers ==");
    for e in r.trace.events.iter().filter(|e| e.kind == EventKind::Failover) {
        println!(
            "cycle {:>9}: shard {} promoted its standby over request {} ({} cycle handoff)",
            e.cycle, e.track, e.a, e.dur
        );
    }

    println!("\n== cycle ledger ==");
    let lifetimes: u64 = r.shards.iter().map(|s| s.lifetime_cycles).sum();
    println!(
        "execute={} snapshot={} downtime={} idle={} | mirror={} rebuild={}",
        r.ledger.get(elzar_suite::elzar_obs::Category::Execute),
        r.ledger.get(elzar_suite::elzar_obs::Category::Snapshot),
        r.downtime_cycles(),
        r.ledger.get(elzar_suite::elzar_obs::Category::Idle),
        r.replica_apply_cycles(),
        r.rebuild_cycles(),
    );
    println!(
        "conservation: foreground {} == fleet lifetime {} | availability {:.6}",
        r.ledger.foreground_total(),
        lifetimes,
        r.availability()
    );
    assert_eq!(r.ledger.foreground_total(), lifetimes);

    let json = chrome_trace(&r.trace, (FREQ_HZ / 1e6) as u64);
    std::fs::write("trace_failover.json", json.to_pretty()).expect("write trace_failover.json");
    println!(
        "\nwrote trace_failover.json ({} events, {} promotions) — load it at https://ui.perfetto.dev",
        r.trace.len(),
        r.promotions
    );
}
