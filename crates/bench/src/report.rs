//! Shared JSON report writer for the `BENCH_*.json` artifacts.
//!
//! One builder, one escape path, stable (insertion) key order — the
//! replacement for the hand-rolled `format!` blocks that `perf_probe`
//! and `fig_serve` used to carry. Layout conventions match the historic
//! files so the output stays byte-compatible modulo key order:
//!
//! * objects print multi-line with two-space indent steps;
//! * arrays print one element per line, each element *compact* (single
//!   line) — the `configs` list shape;
//! * numbers are pre-formatted by the caller ([`Json::num`] with an
//!   explicit decimal count, or [`Json::raw`]), so a report decides its
//!   own precision per field exactly like the old `format!` strings.

use elzar_obs::{Trace, DRIVER_TRACK};
use std::fmt::Write as _;

/// A JSON value with insertion-ordered object keys.
#[derive(Clone, Debug)]
pub enum Json {
    /// Pre-formatted literal (numbers, booleans) emitted verbatim.
    Raw(String),
    /// String; escaped on write (the one escape path).
    Str(String),
    /// Object with stable key order.
    Obj(Vec<(String, Json)>),
    /// Array.
    Arr(Vec<Json>),
}

impl Json {
    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// A number with a fixed decimal count (`num(2.5, 2)` → `2.50`).
    pub fn num(v: f64, decimals: usize) -> Json {
        Json::Raw(format!("{v:.decimals$}"))
    }

    /// An unsigned integer.
    pub fn uint(v: u64) -> Json {
        Json::Raw(v.to_string())
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// A pre-formatted literal (e.g. a hex digest like `0x0123…`).
    pub fn raw(v: impl Into<String>) -> Json {
        Json::Raw(v.into())
    }

    /// Append a field (objects only; panics otherwise — a builder
    /// misuse, not a data error).
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            _ => panic!("field() on non-object"),
        }
        self
    }

    /// Render with the `BENCH_*.json` layout, trailing newline included.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize, compact: bool) {
        match self {
            Json::Raw(s) => out.push_str(s),
            Json::Str(s) => write_escaped(out, s),
            Json::Obj(fields) => {
                if compact {
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        write_escaped(out, k);
                        out.push_str(": ");
                        v.write(out, indent, true);
                    }
                    out.push('}');
                } else {
                    out.push_str("{\n");
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push_str(",\n");
                        }
                        let _ = write!(out, "{:1$}", "", indent + 2);
                        write_escaped(out, k);
                        out.push_str(": ");
                        v.write(out, indent + 2, false);
                    }
                    out.push('\n');
                    let _ = write!(out, "{:1$}", "", indent);
                    out.push('}');
                }
            }
            Json::Arr(items) => {
                if compact {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        v.write(out, indent, true);
                    }
                    out.push(']');
                } else {
                    // One compact element per line — the configs-list shape.
                    out.push_str("[\n");
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(",\n");
                        }
                        let _ = write!(out, "{:1$}", "", indent + 2);
                        v.write(out, indent + 2, true);
                    }
                    out.push('\n');
                    let _ = write!(out, "{:1$}", "", indent);
                    out.push(']');
                }
            }
        }
    }
}

/// The single string-escape path for every report.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write a report to `path` and echo it to stdout (what every
/// `BENCH_*.json` producer does).
pub fn write_report(path: &str, json: &Json) {
    let text = json.to_pretty();
    std::fs::write(path, &text).unwrap_or_else(|e| panic!("write {path}: {e}"));
    print!("{text}");
}

/// Render a canonical [`Trace`] as Chrome trace-event JSON — the
/// `traceEvents` array format `chrome://tracing` and Perfetto load
/// directly. Spans (`dur > 0`) become complete events (`ph: "X"`),
/// instants become thread-scoped instant events (`ph: "i"`); virtual
/// cycles convert to microseconds at `cycles_per_us` (pass
/// `FREQ_HZ / 1_000_000`). Each producer track maps to one `tid` under
/// `pid` 0 with a `thread_name` metadata record (`"shard N"` /
/// `"driver"`), so tracks render as labeled rows.
pub fn chrome_trace(trace: &Trace, cycles_per_us: u64) -> Json {
    let cpu = cycles_per_us.max(1) as f64;
    let mut events = Vec::with_capacity(trace.events.len());
    let mut tracks: Vec<u32> = trace.events.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for &t in &tracks {
        let name = if t == DRIVER_TRACK { "driver".to_string() } else { format!("shard {t}") };
        events.push(
            Json::obj()
                .field("name", Json::str("thread_name"))
                .field("ph", Json::str("M"))
                .field("pid", Json::uint(0))
                .field("tid", Json::uint(u64::from(t)))
                .field("args", Json::obj().field("name", Json::str(name))),
        );
    }
    for e in &trace.events {
        let mut j = Json::obj()
            .field("name", Json::str(e.kind.label()))
            .field("cat", Json::str("elzar"))
            .field("ph", Json::str(if e.dur > 0 { "X" } else { "i" }))
            .field("ts", Json::num(e.cycle as f64 / cpu, 3))
            .field("pid", Json::uint(0))
            .field("tid", Json::uint(u64::from(e.track)));
        if e.dur > 0 {
            j = j.field("dur", Json::num(e.dur as f64 / cpu, 3));
        } else {
            // Thread-scoped instant: renders as a marker on its row.
            j = j.field("s", Json::str("t"));
        }
        events.push(j.field("args", Json::obj().field("a", Json::uint(e.a)).field("b", Json::uint(e.b))));
    }
    Json::obj()
        .field("traceEvents", Json::Arr(events))
        .field("displayTimeUnit", Json::str("ms"))
        .field("droppedEvents", Json::uint(trace.dropped_events))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_order_is_insertion_order() {
        let j = Json::obj()
            .field("zebra", Json::uint(1))
            .field("alpha", Json::uint(2))
            .field("mid", Json::num(2.5, 2));
        assert_eq!(j.to_pretty(), "{\n  \"zebra\": 1,\n  \"alpha\": 2,\n  \"mid\": 2.50\n}\n");
    }

    #[test]
    fn arrays_put_one_compact_element_per_line() {
        let j = Json::obj().field(
            "configs",
            Json::Arr(vec![
                Json::obj().field("service", Json::str("web")).field("shards", Json::uint(1)),
                Json::obj().field("service", Json::str("web")).field("shards", Json::uint(4)),
            ]),
        );
        assert_eq!(
            j.to_pretty(),
            "{\n  \"configs\": [\n    {\"service\": \"web\", \"shards\": 1},\n    \
             {\"service\": \"web\", \"shards\": 4}\n  ]\n}\n"
        );
    }

    #[test]
    fn nested_objects_indent_by_two() {
        let j = Json::obj()
            .field("speedup", Json::obj().field("a", Json::num(2.761, 3)).field("b", Json::num(3.0, 3)));
        assert_eq!(j.to_pretty(), "{\n  \"speedup\": {\n    \"a\": 2.761,\n    \"b\": 3.000\n  }\n}\n");
    }

    #[test]
    fn one_escape_path_handles_specials() {
        let j = Json::obj().field("k\"ey", Json::str("a\\b\n\tc\u{1}"));
        assert_eq!(j.to_pretty(), "{\n  \"k\\\"ey\": \"a\\\\b\\n\\tc\\u0001\"\n}\n");
    }

    #[test]
    fn numbers_keep_caller_precision() {
        assert_eq!(Json::num(1234.5678, 0).to_pretty(), "1235\n");
        assert_eq!(Json::num(0.5, 6).to_pretty(), "0.500000\n");
        assert_eq!(Json::raw("0x00ff").to_pretty(), "0x00ff\n");
    }

    #[test]
    fn chrome_trace_emits_spans_instants_and_thread_names() {
        use elzar_obs::{EventKind, Tracer};
        let mut t = Tracer::new(3, 8);
        t.record(EventKind::Execute, 4000, 2000, 7, 1);
        t.record(EventKind::Commit, 6000, 0, 7, 6000);
        let trace = Trace::merge([t]);
        let text = chrome_trace(&trace, 2000).to_pretty();
        // One metadata record naming the track, one X span, one i instant.
        assert!(text.contains("\"thread_name\""), "{text}");
        assert!(text.contains("\"name\": \"shard 3\""), "{text}");
        assert!(text.contains("\"ph\": \"X\""), "{text}");
        assert!(text.contains("\"ts\": 2.000, \"pid\": 0, \"tid\": 3, \"dur\": 1.000"), "{text}");
        assert!(text.contains("\"ph\": \"i\""), "{text}");
        assert!(text.contains("\"s\": \"t\""), "{text}");
        assert!(text.contains("\"droppedEvents\": 0"), "{text}");
    }
}
