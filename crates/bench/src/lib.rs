//! # elzar-bench
//!
//! Harnesses that regenerate every table and figure of the ELZAR paper's
//! evaluation. One binary per artifact:
//!
//! | binary   | artifact | content |
//! |----------|----------|---------|
//! | `fig01`  | Figure 1 | native-SIMD speedup over no-SIMD |
//! | `fig11`  | Figure 11 | ELZAR overhead vs threads |
//! | `fig12`  | Figure 12 | check-cost breakdown |
//! | `fig13`  | Figure 13 | fault-injection outcomes |
//! | `fig14`  | Figure 14 | ELZAR vs SWIFT-R |
//! | `fig15`  | Figure 15 | case-study throughput |
//! | `fig17`  | Figure 17 | proposed-AVX estimate |
//! | `table2` | Table II | native runtime statistics |
//! | `table3` | Table III | ILP + instruction increase |
//! | `table4` | Table IV | wrapper microbenchmarks |
//! | `fp_only`| §V-B | FP-only protection overheads |
//! | `fig_serve` | serving mode | sharded resident-VM throughput/latency + online faults (`BENCH_serve.json`) |
//!
//! Every harness pulls its builds from an [`elzar::ArtifactSet`]: a
//! `(workload, mode)` pair is transformed and lowered exactly once per
//! process, no matter how many thread counts, seeds or shard counts
//! consume it (workload modules take the worker count from
//! [`MachineConfig::threads`] at run time). `fig11` and `fig13` assert
//! this with [`elzar::build_count`] deltas.
//!
//! Environment knobs:
//!
//! * `ELZAR_SCALE` = `tiny`/`small`/`large` (default `small`) — problem
//!   size of every workload;
//! * `ELZAR_THREADS` = max *simulated* thread count for sweeps
//!   (default 16): the sweep is `1,2,4,8,16` clipped to this value;
//! * `ELZAR_FI_RUNS` = injections per benchmark/mode in `fig13`
//!   (default 120; the paper used 2500 on a 25-machine cluster);
//! * `ELZAR_CAMPAIGN_THREADS` = *host* OS threads used to fan out
//!   fault-injection runs (and fig11's independent measurements, and
//!   `fig_serve`'s shard drains). Default: all available cores. `1`
//!   forces the serial driver; any value produces bit-identical
//!   results — parallelism only changes wall-clock time;
//! * `ELZAR_PASSES` = comma-separated pass-pipeline override applied to
//!   *every* build (ablations; see `elzar_passes::pm`);
//! * `ELZAR_SERVE_REQUESTS` / `ELZAR_SERVE_FAULT_PPM` = `fig_serve`
//!   stream length and per-request SEU probability (ppm).

#![warn(missing_docs)]

pub mod report;

use elzar::Artifact;
use elzar_fault::CampaignConfig;
use elzar_vm::{MachineConfig, RunResult};
use elzar_workloads::Scale;

/// Problem scale from `ELZAR_SCALE` (default `small`).
pub fn scale_from_env() -> Scale {
    match std::env::var("ELZAR_SCALE").unwrap_or_default().to_lowercase().as_str() {
        "tiny" => Scale::Tiny,
        "large" => Scale::Large,
        _ => Scale::Small,
    }
}

/// Thread sweep from `ELZAR_THREADS` (default up to 16): `1,2,4,8,16`.
pub fn thread_sweep() -> Vec<u32> {
    let max: u32 = std::env::var("ELZAR_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(16);
    [1u32, 2, 4, 8, 16].into_iter().filter(|t| *t <= max.max(1)).collect()
}

/// Peak thread count of the sweep.
pub fn max_threads() -> u32 {
    *thread_sweep().last().expect("sweep is never empty")
}

/// FI runs per benchmark/mode from `ELZAR_FI_RUNS` (default 120).
pub fn fi_runs_from_env() -> u32 {
    std::env::var("ELZAR_FI_RUNS").ok().and_then(|s| s.parse().ok()).unwrap_or(120)
}

/// Host worker threads for campaign fan-out from
/// `ELZAR_CAMPAIGN_THREADS` (default: all available cores). Worker
/// count never changes results, only wall-clock time.
pub fn campaign_workers_from_env() -> u32 {
    std::env::var("ELZAR_CAMPAIGN_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&w| w >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get() as u32).unwrap_or(4))
}

/// Campaign configuration wired to the environment knobs: `runs` and
/// `seed` from the caller, simulated threads into the machine config,
/// host workers from [`campaign_workers_from_env`].
pub fn campaign_config(runs: u32, seed: u64, threads: u32) -> CampaignConfig {
    CampaignConfig {
        runs,
        seed,
        workers: campaign_workers_from_env(),
        machine: bench_machine(threads),
        ..Default::default()
    }
}

/// Machine configuration for benchmark runs: generous step budget,
/// `threads` simulated workers.
pub fn bench_machine(threads: u32) -> MachineConfig {
    MachineConfig { step_limit: 200_000_000_000, threads, ..MachineConfig::default() }
}

/// Run an artifact's `main` under the bench machine with `threads`
/// simulated workers.
pub fn run_artifact(a: &Artifact, input: &[u8], threads: u32) -> RunResult {
    a.run(input, bench_machine(threads))
}

/// Print a standard experiment header.
pub fn banner(id: &str, what: &str) {
    println!("==============================================================");
    println!("{id}: {what}");
    println!("(scale={:?}, see EXPERIMENTS.md for paper-vs-measured notes)", scale_from_env());
    println!("==============================================================");
}

/// Report how many artifact builds a harness performed and assert the
/// expected count — the build-once contract, checked at the end of the
/// sweeps that used to re-lower per cell.
///
/// # Panics
/// Panics if the delta does not match `expected`.
pub fn assert_builds(start_count: u64, expected: u64, what: &str) {
    let got = elzar::build_count() - start_count;
    assert_eq!(got, expected, "{what}: expected {expected} artifact builds, performed {got}");
    println!("[build-once] {what}: {got} artifact builds (each (workload, mode) lowered exactly once)");
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_defaults() {
        // Not setting the vars yields the defaults.
        assert!(matches!(scale_from_env(), Scale::Small | Scale::Tiny | Scale::Large));
        assert!(!thread_sweep().is_empty());
        assert!(fi_runs_from_env() > 0);
        assert!(campaign_workers_from_env() >= 1);
        assert!(mean(&[1.0, 3.0]) == 2.0);
        assert!(mean(&[]) == 0.0);
    }

    #[test]
    fn campaign_config_carries_knobs() {
        let c = campaign_config(7, 99, 2);
        assert_eq!(c.runs, 7);
        assert_eq!(c.seed, 99);
        assert!(c.workers >= 1);
        assert_eq!(c.machine.step_limit, bench_machine(2).step_limit);
        assert_eq!(c.machine.threads, 2);
    }
}
