//! Table IV: the §VII-A microbenchmarks — normalized runtime of the
//! AVX-wrapped variant of each bottleneck class over its native variant.
//!
//! The microbenchmark modules are pre-transformed by construction, so
//! both variants go through the identity (`NativeNoSimd`) pipeline —
//! still as artifacts, so lowering and accounting match every other
//! harness.

use elzar::{Artifact, Mode};
use elzar_bench::banner;
use elzar_vm::MachineConfig;
use elzar_workloads::micro::{build, Micro};

fn main() {
    banner("Table IV", "AVX-wrapper microbenchmarks (normalized runtime)");
    println!("{:<12} {:>12} {:>12} {:>8}", "class", "native cyc", "AVX cyc", "ratio");
    for m in Micro::all() {
        let native =
            Artifact::build(&build(m, false), &Mode::NativeNoSimd).run(&[], MachineConfig::default());
        let avx = Artifact::build(&build(m, true), &Mode::NativeNoSimd).run(&[], MachineConfig::default());
        println!(
            "{:<12} {:>12} {:>12} {:>7.2}x",
            m.name(),
            native.cycles,
            avx.cycles,
            avx.cycles as f64 / native.cycles.max(1) as f64
        );
    }
    println!();
    println!("Paper: loads ~1.96-2.06x, stores ~1.00-1.14x (store port is the");
    println!("bottleneck either way), branches ~1.86-1.89x, truncation ~8x.");
    println!("Our model lands lower on branches (macro-fusion is modeled for");
    println!("native cmp+jcc but ptest pressure is approximate).");
}
