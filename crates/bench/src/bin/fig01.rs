//! Figure 1: performance improvement of native (SIMD/vectorized) builds
//! over no-SIMD builds — the motivation that SIMD units sit idle in most
//! applications.

use elzar::Mode;
use elzar_apps::{App, AppParams, YcsbWorkload};
use elzar_bench::{banner, measure, scale_from_env};
use elzar_workloads::{all_workloads, short_name, Params};

fn main() {
    banner("Figure 1", "native SIMD speedup over no-SIMD builds");
    let scale = scale_from_env();
    println!("{:<12} {:>12} {:>12} {:>10}", "benchmark", "no-SIMD cyc", "SIMD cyc", "speedup");
    for w in all_workloads() {
        let built = w.build(&Params::new(1, scale));
        let nosimd = measure(&built.module, &Mode::NativeNoSimd, &built.input);
        let simd = measure(&built.module, &Mode::Native, &built.input);
        let gain = nosimd.cycles as f64 / simd.cycles as f64 - 1.0;
        println!(
            "{:<12} {:>12} {:>12} {:>+9.1}%",
            short_name(w.name()),
            nosimd.cycles,
            simd.cycles,
            gain * 100.0
        );
    }
    for app in App::all() {
        let built = app.build(&AppParams::new(2, scale, YcsbWorkload::A));
        let nosimd = measure(&built.module, &Mode::NativeNoSimd, &built.input);
        let simd = measure(&built.module, &Mode::Native, &built.input);
        // Throughput increase = runtime ratio for a fixed op count.
        let gain = nosimd.cycles as f64 / simd.cycles as f64 - 1.0;
        println!("{:<12} {:>12} {:>12} {:>+9.1}%", app.name(), nosimd.cycles, simd.cycles, gain * 100.0);
    }
    println!();
    println!("Paper shape: most benchmarks < 10%; string match ~ +60%;");
    println!("a few (kmeans, swaptions) slightly negative.");
}
