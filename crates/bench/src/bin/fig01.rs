//! Figure 1: performance improvement of native (SIMD/vectorized) builds
//! over no-SIMD builds — the motivation that SIMD units sit idle in most
//! applications.

use elzar::{ArtifactSet, Mode};
use elzar_apps::{App, AppParams, YcsbWorkload};
use elzar_bench::{banner, run_artifact, scale_from_env};
use elzar_workloads::{all_workloads, short_name};

fn main() {
    banner("Figure 1", "native SIMD speedup over no-SIMD builds");
    let scale = scale_from_env();
    let set = ArtifactSet::new();
    println!("{:<12} {:>12} {:>12} {:>10}", "benchmark", "no-SIMD cyc", "SIMD cyc", "speedup");
    for w in all_workloads() {
        let built = w.build(scale);
        let nosimd = set.get_or_build(w.name(), &Mode::NativeNoSimd, || built.module.clone());
        let simd = set.get_or_build(w.name(), &Mode::Native, || built.module.clone());
        let rn = run_artifact(&nosimd, &built.input, 1);
        let rs = run_artifact(&simd, &built.input, 1);
        let gain = rn.cycles as f64 / rs.cycles as f64 - 1.0;
        println!("{:<12} {:>12} {:>12} {:>+9.1}%", short_name(w.name()), rn.cycles, rs.cycles, gain * 100.0);
    }
    for app in App::all() {
        let built = app.build(&AppParams::new(scale, YcsbWorkload::A));
        let nosimd = set.get_or_build(app.name(), &Mode::NativeNoSimd, || built.module.clone());
        let simd = set.get_or_build(app.name(), &Mode::Native, || built.module.clone());
        let rn = run_artifact(&nosimd, &built.input, 2);
        let rs = run_artifact(&simd, &built.input, 2);
        // Throughput increase = runtime ratio for a fixed op count.
        let gain = rn.cycles as f64 / rs.cycles as f64 - 1.0;
        println!("{:<12} {:>12} {:>12} {:>+9.1}%", app.name(), rn.cycles, rs.cycles, gain * 100.0);
    }
    println!();
    println!("Paper shape: most benchmarks < 10%; string match ~ +60%;");
    println!("a few (kmeans, swaptions) slightly negative.");
}
