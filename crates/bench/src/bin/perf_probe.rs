//! Perf probe: measures interpreter and campaign throughput and writes
//! `BENCH_interp.json` (in the current directory) so successive PRs
//! have a recorded performance trajectory.
//!
//! Metrics:
//! * `engines` — retired IR instructions per wall-clock second for each
//!   execution engine (reference interpreter, trace engine with the
//!   scalar kernel table, trace engine with the AVX2 table), in both
//!   native and ELZAR-hardened modes, plus the detected CPU features
//!   the SIMD dispatch keys on;
//! * `elzar_speedup_trace_simd_vs_reference` — the headline: hardened
//!   steps/s of the SIMD trace engine over the reference interpreter;
//! * `campaign_runs_per_sec` — fault-injection runs per second on the
//!   hardened kernel (checkpointed driver, `ELZAR_CAMPAIGN_THREADS`
//!   workers);
//! * `campaign_speedup_vs_naive` — same campaign with prefix sharing
//!   and fan-out disabled, as a ratio.

use elzar::{Artifact, Mode};
use elzar_bench::campaign_workers_from_env;
use elzar_bench::report::{write_report, Json};
use elzar_fault::CampaignConfig;
use elzar_ir::builder::{c64, FuncBuilder};
use elzar_ir::{Builtin, Module, Ty};
use elzar_vm::{cpu_features, EngineKind, MachineConfig};
use std::time::Instant;

fn kernel(iters: i64) -> Module {
    let mut m = Module::new("probe");
    let mut b = FuncBuilder::new("main", vec![], Ty::I64);
    let buf = b.call_builtin(Builtin::Malloc, vec![c64(64 * 8)], Ty::Ptr).unwrap();
    b.counted_loop(c64(0), c64(iters), |b, i| {
        let idx = b.bin(elzar_ir::BinOp::And, Ty::I64, i, c64(63));
        let p = b.gep(buf, idx, 8);
        let v = b.load(Ty::I64, p);
        let x = b.mul(v, c64(3));
        let y = b.add(x, i);
        b.store(Ty::I64, y, p);
    });
    let p0 = b.gep(buf, c64(0), 8);
    let v = b.load(Ty::I64, p0);
    b.call_builtin(Builtin::OutputI64, vec![v.into()], Ty::Void);
    b.ret(c64(0));
    m.add_func(b.finish());
    m
}

/// One timed window of `artifact` under `engine`: steps per second.
fn interp_window(artifact: &Artifact, engine: EngineKind) -> f64 {
    let cfg = MachineConfig { engine, ..MachineConfig::default() };
    let mut steps = 0u64;
    let t0 = Instant::now();
    while t0.elapsed().as_millis() < 150 {
        steps += artifact.run(&[], cfg).steps;
    }
    steps as f64 / t0.elapsed().as_secs_f64()
}

/// Steps/second for every engine in `engines`, measured as interleaved
/// rounds with the per-engine maximum kept. Interleaving spreads any
/// transient host load across all engines instead of biasing whichever
/// one was measured during the spike, and the max discards slowed
/// windows entirely — external noise only ever subtracts throughput.
fn interp_rates(artifact: &Artifact, engines: &[EngineKind]) -> Vec<f64> {
    for &engine in engines {
        // Warm-up: fault caches, lazily-grown memory, branch history.
        artifact.run(&[], MachineConfig { engine, ..MachineConfig::default() });
    }
    let mut best = vec![0.0f64; engines.len()];
    for _ in 0..10 {
        for (i, &engine) in engines.iter().enumerate() {
            best[i] = best[i].max(interp_window(artifact, engine));
        }
    }
    best
}

/// Campaign runs/second on a shared hardened-kernel artifact. The
/// golden run comes from the artifact's cache, so successive probes
/// (fast vs naive) never recompute the reference execution.
fn campaign_rate(artifact: &Artifact, share_prefixes: bool, workers: u32) -> f64 {
    let cfg = CampaignConfig { runs: 60, seed: 0xBE7C, workers, share_prefixes, ..Default::default() };
    let t0 = Instant::now();
    let r = artifact.campaign(&[], &cfg);
    r.total() as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    // The probed engines: the reference interpreter and the trace
    // engine pinned to each kernel table. `TraceSimd` degrades to the
    // scalar table on hosts without AVX2 — `cpu_features` records which
    // case a given BENCH file measured.
    let engines = [EngineKind::Reference, EngineKind::TraceScalar, EngineKind::TraceSimd];
    let native = Artifact::build(&kernel(20_000), &Mode::NativeNoSimd);
    let elzar = Artifact::build(&kernel(20_000), &Mode::elzar_default());
    let mut sections = Json::obj();
    let native_rates = interp_rates(&native, &engines);
    let elzar_rates = interp_rates(&elzar, &engines);
    for (i, engine) in engines.iter().enumerate() {
        sections = sections.field(
            engine.name(),
            Json::obj()
                .field("native_steps_per_sec", Json::num(native_rates[i], 0))
                .field("elzar_steps_per_sec", Json::num(elzar_rates[i], 0)),
        );
    }
    let workers = campaign_workers_from_env();
    let hardened = Artifact::build(&kernel(5_000), &Mode::elzar_default());
    // Prime the golden-run cache so both probes time only injection
    // runs — otherwise the first probe would pay the reference
    // execution inside its window and bias the speedup ratio.
    hardened.golden(&[], &CampaignConfig::default().machine);
    let fast = campaign_rate(&hardened, true, workers);
    let naive = campaign_rate(&hardened, false, 1);
    let features = Json::Arr(cpu_features().into_iter().map(Json::str).collect());
    let json = Json::obj()
        .field("cpu_features", features)
        .field("engines", sections)
        .field("elzar_speedup_trace_simd_vs_reference", Json::num(elzar_rates[2] / elzar_rates[0], 2))
        .field("elzar_ratio_trace_scalar_vs_reference", Json::num(elzar_rates[1] / elzar_rates[0], 2))
        .field("native_speedup_trace_simd_vs_reference", Json::num(native_rates[2] / native_rates[0], 2))
        .field("campaign_workers", Json::uint(u64::from(workers)))
        .field("campaign_runs_per_sec", Json::num(fast, 2))
        .field("campaign_runs_per_sec_naive_serial", Json::num(naive, 2))
        .field("campaign_speedup_vs_naive", Json::num(fast / naive.max(1e-9), 2));
    write_report("BENCH_interp.json", &json);
}
