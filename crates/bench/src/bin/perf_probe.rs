//! Perf probe: measures interpreter and campaign throughput and writes
//! `BENCH_interp.json` (in the current directory) so successive PRs
//! have a recorded performance trajectory.
//!
//! Metrics:
//! * `interp_steps_per_sec_native` / `_elzar` — retired IR
//!   instructions per wall-clock second interpreting a fixed kernel;
//! * `campaign_runs_per_sec` — fault-injection runs per second on the
//!   hardened kernel (checkpointed driver, `ELZAR_CAMPAIGN_THREADS`
//!   workers);
//! * `campaign_speedup_vs_naive` — same campaign with prefix sharing
//!   and fan-out disabled, as a ratio.

use elzar::{Artifact, Mode};
use elzar_bench::campaign_workers_from_env;
use elzar_bench::report::{write_report, Json};
use elzar_fault::CampaignConfig;
use elzar_ir::builder::{c64, FuncBuilder};
use elzar_ir::{Builtin, Module, Ty};
use elzar_vm::MachineConfig;
use std::time::Instant;

fn kernel(iters: i64) -> Module {
    let mut m = Module::new("probe");
    let mut b = FuncBuilder::new("main", vec![], Ty::I64);
    let buf = b.call_builtin(Builtin::Malloc, vec![c64(64 * 8)], Ty::Ptr).unwrap();
    b.counted_loop(c64(0), c64(iters), |b, i| {
        let idx = b.bin(elzar_ir::BinOp::And, Ty::I64, i, c64(63));
        let p = b.gep(buf, idx, 8);
        let v = b.load(Ty::I64, p);
        let x = b.mul(v, c64(3));
        let y = b.add(x, i);
        b.store(Ty::I64, y, p);
    });
    let p0 = b.gep(buf, c64(0), 8);
    let v = b.load(Ty::I64, p0);
    b.call_builtin(Builtin::OutputI64, vec![v.into()], Ty::Void);
    b.ret(c64(0));
    m.add_func(b.finish());
    m
}

/// Steps/second interpreting the kernel under `mode`.
fn interp_rate(mode: &Mode) -> f64 {
    let artifact = Artifact::build(&kernel(20_000), mode);
    // Warm-up.
    artifact.run(&[], MachineConfig::default());
    let mut steps = 0u64;
    let t0 = Instant::now();
    while t0.elapsed().as_millis() < 500 {
        steps += artifact.run(&[], MachineConfig::default()).steps;
    }
    steps as f64 / t0.elapsed().as_secs_f64()
}

/// Campaign runs/second on a shared hardened-kernel artifact. The
/// golden run comes from the artifact's cache, so successive probes
/// (fast vs naive) never recompute the reference execution.
fn campaign_rate(artifact: &Artifact, share_prefixes: bool, workers: u32) -> f64 {
    let cfg = CampaignConfig { runs: 60, seed: 0xBE7C, workers, share_prefixes, ..Default::default() };
    let t0 = Instant::now();
    let r = artifact.campaign(&[], &cfg);
    r.total() as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let native = interp_rate(&Mode::NativeNoSimd);
    let elzar = interp_rate(&Mode::elzar_default());
    let workers = campaign_workers_from_env();
    let hardened = Artifact::build(&kernel(5_000), &Mode::elzar_default());
    // Prime the golden-run cache so both probes time only injection
    // runs — otherwise the first probe would pay the reference
    // execution inside its window and bias the speedup ratio.
    hardened.golden(&[], &CampaignConfig::default().machine);
    let fast = campaign_rate(&hardened, true, workers);
    let naive = campaign_rate(&hardened, false, 1);
    let json = Json::obj()
        .field("interp_steps_per_sec_native", Json::num(native, 0))
        .field("interp_steps_per_sec_elzar", Json::num(elzar, 0))
        .field("campaign_workers", Json::uint(u64::from(workers)))
        .field("campaign_runs_per_sec", Json::num(fast, 2))
        .field("campaign_runs_per_sec_naive_serial", Json::num(naive, 2))
        .field("campaign_speedup_vs_naive", Json::num(fast / naive.max(1e-9), 2));
    write_report("BENCH_interp.json", &json);
}
