//! Perf probe: measures interpreter and campaign throughput and writes
//! `BENCH_interp.json` (in the current directory) so successive PRs
//! have a recorded performance trajectory.
//!
//! Metrics:
//! * `interp_steps_per_sec_native` / `_elzar` — retired IR
//!   instructions per wall-clock second interpreting a fixed kernel;
//! * `campaign_runs_per_sec` — fault-injection runs per second on the
//!   hardened kernel (checkpointed driver, `ELZAR_CAMPAIGN_THREADS`
//!   workers);
//! * `campaign_speedup_vs_naive` — same campaign with prefix sharing
//!   and fan-out disabled, as a ratio.

use elzar::{build, Mode};
use elzar_bench::campaign_workers_from_env;
use elzar_fault::{run_campaign, CampaignConfig};
use elzar_ir::builder::{c64, FuncBuilder};
use elzar_ir::{Builtin, Module, Ty};
use elzar_vm::{run_program, MachineConfig};
use std::time::Instant;

fn kernel(iters: i64) -> Module {
    let mut m = Module::new("probe");
    let mut b = FuncBuilder::new("main", vec![], Ty::I64);
    let buf = b.call_builtin(Builtin::Malloc, vec![c64(64 * 8)], Ty::Ptr).unwrap();
    b.counted_loop(c64(0), c64(iters), |b, i| {
        let idx = b.bin(elzar_ir::BinOp::And, Ty::I64, i, c64(63));
        let p = b.gep(buf, idx, 8);
        let v = b.load(Ty::I64, p);
        let x = b.mul(v, c64(3));
        let y = b.add(x, i);
        b.store(Ty::I64, y, p);
    });
    let p0 = b.gep(buf, c64(0), 8);
    let v = b.load(Ty::I64, p0);
    b.call_builtin(Builtin::OutputI64, vec![v.into()], Ty::Void);
    b.ret(c64(0));
    m.add_func(b.finish());
    m
}

/// Steps/second interpreting the kernel under `mode`.
fn interp_rate(mode: &Mode) -> f64 {
    let prog = build(&kernel(20_000), mode);
    // Warm-up.
    run_program(&prog, "main", &[], MachineConfig::default());
    let mut steps = 0u64;
    let t0 = Instant::now();
    let mut reps = 0;
    while t0.elapsed().as_millis() < 500 {
        steps += run_program(&prog, "main", &[], MachineConfig::default()).steps;
        reps += 1;
    }
    let _ = reps;
    steps as f64 / t0.elapsed().as_secs_f64()
}

/// Campaign runs/second on the hardened kernel.
fn campaign_rate(share_prefixes: bool, workers: u32) -> f64 {
    let prog = build(&kernel(5_000), &Mode::elzar_default());
    let cfg = CampaignConfig { runs: 60, seed: 0xBE7C, workers, share_prefixes, ..Default::default() };
    let t0 = Instant::now();
    let r = run_campaign(&prog, &[], &cfg);
    r.total() as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let native = interp_rate(&Mode::NativeNoSimd);
    let elzar = interp_rate(&Mode::elzar_default());
    let workers = campaign_workers_from_env();
    let fast = campaign_rate(true, workers);
    let naive = campaign_rate(false, 1);
    let json = format!(
        "{{\n  \"interp_steps_per_sec_native\": {native:.0},\n  \"interp_steps_per_sec_elzar\": {elzar:.0},\n  \"campaign_workers\": {workers},\n  \"campaign_runs_per_sec\": {fast:.2},\n  \"campaign_runs_per_sec_naive_serial\": {naive:.2},\n  \"campaign_speedup_vs_naive\": {:.2}\n}}\n",
        fast / naive.max(1e-9)
    );
    std::fs::write("BENCH_interp.json", &json).expect("write BENCH_interp.json");
    print!("{json}");
}
