//! Serving-mode evaluation: sharded resident-VM throughput, tail
//! latency and *online* fault accounting under sustained open-loop
//! load — the serving counterpart of the batch case studies (fig15) and
//! campaigns (fig13). Writes `BENCH_serve.json` in the current
//! directory.
//!
//! Nine sections:
//!
//! 1. **Scaling** — every service (memcached-A, memcached-D, apache)
//!    served with 1 and 4 shards at a saturating offered load, so the
//!    throughput ratio measures horizontal scaling;
//! 2. **Batching frontier** — `batch_size x snapshot_interval` sweep at
//!    a fixed shard count: the latency/throughput surface of the two
//!    serving levers, plus the per-service best batching speedup over
//!    the `batch_size = 1` baseline at the same snapshot interval;
//! 3. **Restart curve** — `snapshot_interval` sweep under an elevated
//!    fault rate: the clone-cost vs restart-latency (suffix replay)
//!    trade-off as the checkpoint interval grows;
//! 4. **Adaptive frontier** — the queue-depth batch policy
//!    (`batch = clamp(queue_depth, 1, batch_max)`) against the *best*
//!    static cap of section 2, per service: one untuned configuration
//!    should match the per-service tuned winner;
//! 5. **Elastic shards** — a phased load (dense head, 30x-stretched
//!    lull) served by static 1-shard, static 4-shard and adaptive
//!    fleets: tail latency of the under-provisioned static run vs the
//!    controller's scale-up/down schedule, with migration costs;
//! 6. **Goodput curve** — offered-load sweep comparing drop-tail
//!    admission against deadline-aware shedding: served vs
//!    SLO-meeting throughput as the system saturates;
//! 7. **Failover** — restart-only vs warm-replica recovery under an
//!    SEU storm at equal snapshot interval: availability, MTTR and the
//!    divergence detector's agreement with ELZAR's classification
//!    (outcomes and the digest are bit-identical by construction — the
//!    failover suite pins it);
//! 8. **Availability curve** — fault-rate sweep × {restart,
//!    warm-replica}: how each recovery mode's availability degrades as
//!    crashes densify;
//! 9. **Scenario suite** — every named scenario preset (diurnal,
//!    flash-crowd, lull, skew-shift, fault-storm) served by the
//!    adaptive fleet under both scaling policies (reactive vs
//!    predictive): goodput at a fixed SLO, tail latency, shed rate and
//!    migration spend per scenario, with a flash-crowd headline — the
//!    Holt forecaster pre-boots shards during the onset ramp, so the
//!    crowd lands on a fleet that is already scaled.
//!
//! Every configuration boots from *one* artifact per service — the
//! hardened program is transformed and lowered exactly once. Outcome
//! counts and table digests are batching/interval/shard invariant (the
//! serve differential tests pin this); this harness only measures the
//! timing surface.
//!
//! Knobs: `ELZAR_SCALE` (service problem size), `ELZAR_SERVE_REQUESTS`
//! (stream length, default by scale), `ELZAR_SERVE_FAULT_PPM`
//! (per-request SEU probability, default 20000 = 2%),
//! `ELZAR_CAMPAIGN_THREADS` (host workers; never changes results).

use elzar::{Artifact, ArtifactSet, Mode};
use elzar_bench::report::{write_report, Json};
use elzar_bench::{banner, campaign_workers_from_env, scale_from_env};
use elzar_fault::Outcome;
use elzar_serve::gen::ScenarioPreset;
use elzar_serve::{serve_scenario, ScalingPolicy, ServeConfig, ServeReport, Service};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// One serve run's JSON row (shared by all three sections).
fn row(service: Service, cfg: &ServeConfig, r: &ServeReport) -> Json {
    Json::obj()
        .field("service", Json::str(service.label()))
        .field("shards", Json::uint(u64::from(cfg.shards)))
        .field("batch_size", Json::uint(u64::from(cfg.batch_size)))
        .field("snapshot_interval", Json::uint(u64::from(cfg.snapshot_interval)))
        .field("throughput_rps", Json::num(r.throughput_rps(), 0))
        .field("p50_us", Json::num(r.quantile_us(0.50), 2))
        .field("p90_us", Json::num(r.quantile_us(0.90), 2))
        .field("p99_us", Json::num(r.quantile_us(0.99), 2))
        .field("p999_us", Json::num(r.quantile_us(0.999), 2))
        .field("mean_us", Json::num(r.hist.mean() / elzar_apps::FREQ_HZ * 1e6, 2))
        .field("served", Json::uint(r.served))
        .field("rejected", Json::uint(r.rejected))
        .field("batches", Json::uint(r.batches))
        .field("injected", Json::uint(r.injected))
        .field(
            "outcomes",
            Json::obj()
                .field("hang", Json::uint(r.count(Outcome::Hang)))
                .field("os_detected", Json::uint(r.count(Outcome::OsDetected)))
                .field("elzar_corrected", Json::uint(r.count(Outcome::ElzarCorrected)))
                .field("masked", Json::uint(r.count(Outcome::Masked)))
                .field("sdc", Json::uint(r.count(Outcome::Sdc))),
        )
        .field("restarts", Json::uint(r.restarts))
        .field("snapshots", Json::uint(r.snapshots))
        .field("snapshot_cycles", Json::uint(r.snapshot_cycles()))
        .field("replay_cycles", Json::uint(r.replay_cycles()))
        .field("availability", Json::num(r.availability(), 6))
        .field("sdc_rate", Json::num(r.sdc_rate(), 6))
        .field("table_digest", Json::str(format!("{:#018x}", r.table_digest)))
}

fn print_run(service: Service, cfg: &ServeConfig, r: &ServeReport) {
    println!(
        "{:<12} {:>6} {:>5} {:>4} {:>12.0} {:>9.1} {:>9.1} {:>9.1} {:>5} {:>5} {:>5} {:>4} {:>8.5}",
        service.label(),
        cfg.shards,
        cfg.batch_size,
        cfg.snapshot_interval,
        r.throughput_rps(),
        r.quantile_us(0.50),
        r.quantile_us(0.90),
        r.quantile_us(0.99),
        r.injected,
        r.count(Outcome::ElzarCorrected),
        r.count(Outcome::Sdc),
        r.restarts,
        r.availability(),
    );
}

fn header() {
    println!(
        "{:<12} {:>6} {:>5} {:>4} {:>12} {:>9} {:>9} {:>9} {:>5} {:>5} {:>5} {:>4} {:>8}",
        "service",
        "shards",
        "batch",
        "K",
        "tput req/s",
        "p50 us",
        "p90 us",
        "p99 us",
        "inj",
        "corr",
        "sdc",
        "rst",
        "avail"
    );
}

fn main() {
    banner("fig_serve", "sharded resident-VM serving: batching, snapshots, tail latency, online faults");
    let scale = scale_from_env();
    let requests = env_u64("ELZAR_SERVE_REQUESTS", scale.pick(800, 1_600, 6_000));
    let fault_ppm = env_u64("ELZAR_SERVE_FAULT_PPM", 20_000) as u32;
    let workers = campaign_workers_from_env();
    let set = ArtifactSet::new();
    // Saturating offered load: the queue (not the arrival process) is
    // the bottleneck in every configuration, so throughput ratios
    // measure serving capacity.
    let saturating = ServeConfig {
        workers,
        requests,
        fault_rate_ppm: fault_ppm,
        mean_gap_cycles: 150,
        queue_capacity: 1 << 20,
        ..Default::default()
    };

    // ---- 1. Horizontal scaling: 1 -> 4 shards -------------------------
    println!("\n== shard scaling ==");
    header();
    let mut configs = Vec::new();
    let mut speedups = Json::obj();
    let artifact_for = |service: Service| -> (elzar_apps::ServeApp, std::sync::Arc<Artifact>) {
        let app = service.app(scale);
        let artifact = set.get_or_build(service.label(), &Mode::elzar_default(), || app.module.clone());
        (app, artifact)
    };
    for service in Service::all() {
        let (app, artifact) = artifact_for(service);
        let mut tput = [0.0f64; 2];
        for (i, &shards) in [1u32, 4].iter().enumerate() {
            let cfg = ServeConfig { shards, ..saturating.clone() };
            let r = artifact.serve(service, &app, &cfg);
            tput[i] = r.throughput_rps();
            print_run(service, &cfg, &r);
            configs.push(row(service, &cfg, &r));
        }
        let speedup = tput[1] / tput[0].max(1e-9);
        println!("{:<12} 1 -> 4 shards: {speedup:.2}x aggregate throughput", service.label());
        speedups = speedups.field(service.label(), Json::num(speedup, 3));
    }

    // ---- 2. Batching frontier: batch_size x snapshot_interval ---------
    println!("\n== batching frontier (4 shards) ==");
    header();
    const BATCHES: [u32; 4] = [1, 8, 16, 32];
    const INTERVALS: [u32; 3] = [1, 8, 64];
    let mut frontier = Vec::new();
    let mut batching_speedup = Json::obj();
    // Best static throughput at K=8 per service — the bar the adaptive
    // batch policy (section 4) has to clear without tuning.
    let mut static_best_k8: Vec<(Service, f64, u32)> = Vec::new();
    for service in Service::all() {
        let (app, artifact) = artifact_for(service);
        let mut best = (0.0f64, 0u32, 0u32);
        let mut best_k8 = (0.0f64, 0u32);
        for &snapshot_interval in &INTERVALS {
            let mut base = 0.0f64;
            for &batch_size in &BATCHES {
                // Denser arrivals than the scaling section (fast
                // batched configurations must stay queue-limited, not
                // arrival-limited) and no faults: the frontier is a
                // pure timing surface — crash detours grow with K and
                // would entangle the batching ratio with recovery cost,
                // which section 3 measures on its own.
                let cfg = ServeConfig {
                    batch_size,
                    snapshot_interval,
                    mean_gap_cycles: 20,
                    fault_rate_ppm: 0,
                    ..saturating.clone()
                };
                let r = artifact.serve(service, &app, &cfg);
                print_run(service, &cfg, &r);
                frontier.push(row(service, &cfg, &r));
                if snapshot_interval == 8 && r.throughput_rps() > best_k8.0 {
                    best_k8 = (r.throughput_rps(), batch_size);
                }
                if batch_size == 1 {
                    base = r.throughput_rps();
                } else {
                    let ratio = r.throughput_rps() / base.max(1e-9);
                    if ratio > best.0 {
                        best = (ratio, batch_size, snapshot_interval);
                    }
                }
            }
        }
        println!(
            "{:<12} best batching speedup {:.2}x (batch={} K={}, vs batch=1 same K)",
            service.label(),
            best.0,
            best.1,
            best.2
        );
        batching_speedup = batching_speedup.field(
            service.label(),
            Json::obj()
                .field("speedup", Json::num(best.0, 3))
                .field("batch_size", Json::uint(u64::from(best.1)))
                .field("snapshot_interval", Json::uint(u64::from(best.2))),
        );
        static_best_k8.push((service, best_k8.0, best_k8.1));
    }

    // ---- 3. Restart latency vs clone cost -----------------------------
    // The web service crashes most readily under ELZAR (faults in the
    // hardened parse surface as detected traps/hangs), so it traces the
    // recovery trade-off: snapshot clone cost falls with K while every
    // crash replays a longer committed suffix.
    println!("\n== restart curve (apache, 4 shards, batch=8, 10% SEU) ==");
    println!(
        "{:>4} {:>10} {:>14} {:>14} {:>4} {:>14} {:>9} {:>12}",
        "K", "snapshots", "snap cycles", "replay cyc", "rst", "detour/rst", "p99 us", "tput req/s"
    );
    let mut restart_curve = Vec::new();
    {
        let service = Service::Web;
        let (app, artifact) = artifact_for(service);
        for k in [1u32, 2, 4, 8, 16, 32, 64] {
            let cfg = ServeConfig {
                batch_size: 8,
                snapshot_interval: k,
                fault_rate_ppm: 100_000,
                ..saturating.clone()
            };
            let r = artifact.serve(service, &app, &cfg);
            let detour = r.downtime_cycles().checked_div(r.restarts).unwrap_or(0);
            println!(
                "{:>4} {:>10} {:>14} {:>14} {:>4} {:>14} {:>9.1} {:>12.0}",
                k,
                r.snapshots,
                r.snapshot_cycles(),
                r.replay_cycles(),
                r.restarts,
                detour,
                r.quantile_us(0.99),
                r.throughput_rps(),
            );
            restart_curve.push(
                row(service, &cfg, &r)
                    .field("restart_detour_cycles", Json::uint(detour))
                    .field("fault_rate_ppm", Json::uint(u64::from(cfg.fault_rate_ppm))),
            );
        }
    }

    // ---- 4. Adaptive batching vs the tuned static winner --------------
    // One untuned policy — batch = clamp(queue_depth, 1, 32), sized per
    // drain — against each service's best static cap at K=8 from the
    // frontier above. Drain-on-free already self-limits light-load
    // batches, so the depth policy should match the tuned winner
    // without a per-service sweep.
    println!("\n== adaptive batching (4 shards, K=8) ==");
    header();
    let mut adaptive_frontier = Vec::new();
    for &(service, static_tput, static_batch) in &static_best_k8 {
        let (app, artifact) = artifact_for(service);
        let cfg = ServeConfig {
            batch_adaptive: true,
            batch_max: 32,
            snapshot_interval: 8,
            mean_gap_cycles: 20,
            fault_rate_ppm: 0,
            ..saturating.clone()
        };
        let r = artifact.serve(service, &app, &cfg);
        print_run(service, &cfg, &r);
        let ratio = r.throughput_rps() / static_tput.max(1e-9);
        println!(
            "{:<12} adaptive {:.0} req/s vs static best {:.0} (batch={static_batch}): {ratio:.3}x",
            service.label(),
            r.throughput_rps(),
            static_tput,
        );
        adaptive_frontier.push(
            row(service, &cfg, &r)
                .field("static_best_rps", Json::num(static_tput, 0))
                .field("static_best_batch", Json::uint(u64::from(static_batch)))
                .field("adaptive_vs_static_best", Json::num(ratio, 3)),
        );
    }

    // ---- 5. Elastic shards under a phased load -------------------------
    // Dense head (the 1-shard start saturates), 30x-stretched lull (the
    // fleet shrinks back). Static fleets bracket the adaptive run: the
    // 1-shard run shows the queueing the controller escapes, the
    // 4-shard run what a statically overprovisioned fleet buys.
    println!("\n== elastic shards (memcached-A, phased load) ==");
    header();
    let mut elastic = Vec::new();
    {
        let service = Service::KvA;
        let (app, artifact) = artifact_for(service);
        let phased_cfg = ServeConfig {
            shards: 1,
            batch_size: 8,
            mean_gap_cycles: 300,
            fault_rate_ppm: fault_ppm,
            ..saturating.clone()
        };
        let mut stream = service.stream(&app, &phased_cfg);
        let cut = stream.len() * 2 / 3;
        elzar_serve::gen::rescale_gaps(&mut stream, cut, 30, 1);
        for (name, cfg) in [
            ("static-1", phased_cfg.clone()),
            ("static-4", ServeConfig { shards: 4, ..phased_cfg.clone() }),
            (
                "adaptive",
                ServeConfig {
                    adaptive_shards: true,
                    shards_max: 4,
                    control_interval: 32,
                    scale_up_backlog: 6,
                    scale_down_backlog: 1,
                    ..phased_cfg.clone()
                },
            ),
        ] {
            let r = elzar_serve::serve_stream(artifact.program(), &app, &stream, &cfg);
            print_run(service, &cfg, &r);
            println!(
                "{:<12} {name}: p90 {:.1} us, {} ups / {} downs, {} slots moved, {} replays ({} cycles)",
                service.label(),
                r.quantile_us(0.90),
                r.scale_ups,
                r.scale_downs,
                r.migrated_slots,
                r.migration_replays,
                r.migration_cycles(),
            );
            elastic.push(
                row(service, &cfg, &r)
                    .field("config", Json::str(name))
                    .field("scale_ups", Json::uint(r.scale_ups))
                    .field("scale_downs", Json::uint(r.scale_downs))
                    .field("peak_shards", Json::uint(u64::from(r.peak_shards)))
                    .field("final_shards", Json::uint(u64::from(r.final_shards)))
                    .field("migrated_slots", Json::uint(r.migrated_slots))
                    .field("migration_replays", Json::uint(r.migration_replays))
                    .field("migration_cycles", Json::uint(r.migration_cycles())),
            );
        }
    }

    // ---- 6. Goodput vs offered load: drop-tail vs SLO shedding ---------
    // Offered load rises left to right; drop-tail keeps *serving* but
    // its replies miss the deadline, deadline-aware admission shed
    // requests that cannot make it and keeps goodput pinned to
    // capacity.
    println!("\n== goodput vs offered load (apache, SLO 30 us) ==");
    println!(
        "{:>12} {:>10} {:>7} {:>7} {:>7} {:>12} {:>12}",
        "offered r/s", "policy", "served", "shed", "met", "tput req/s", "goodput r/s"
    );
    const SLO_CYCLES: u64 = 60_000;
    let mut goodput_curve = Vec::new();
    {
        let service = Service::Web;
        let (app, artifact) = artifact_for(service);
        for gap in [2_000u64, 800, 300, 120, 48, 20] {
            let offered = elzar_apps::FREQ_HZ / gap as f64;
            for (policy, cfg) in [
                (
                    "drop-tail",
                    ServeConfig {
                        mean_gap_cycles: gap,
                        fault_rate_ppm: 0,
                        batch_adaptive: true,
                        slo_cycles: SLO_CYCLES,
                        shed_slo: false,
                        queue_capacity: 512,
                        ..saturating.clone()
                    },
                ),
                (
                    "slo-shed",
                    ServeConfig {
                        mean_gap_cycles: gap,
                        fault_rate_ppm: 0,
                        batch_adaptive: true,
                        slo_cycles: SLO_CYCLES,
                        shed_slo: true,
                        ..saturating.clone()
                    },
                ),
            ] {
                let r = artifact.serve(service, &app, &cfg);
                println!(
                    "{:>12.0} {:>10} {:>7} {:>7} {:>7} {:>12.0} {:>12.0}",
                    offered,
                    policy,
                    r.served,
                    r.shed + r.rejected,
                    r.slo_met,
                    r.throughput_rps(),
                    r.goodput_rps(),
                );
                goodput_curve.push(
                    row(service, &cfg, &r)
                        .field("policy", Json::str(policy))
                        .field("offered_rps", Json::num(offered, 0))
                        .field("slo_cycles", Json::uint(SLO_CYCLES))
                        .field("shed", Json::uint(r.shed))
                        .field("slo_met", Json::uint(r.slo_met))
                        .field("goodput_rps", Json::num(r.goodput_rps(), 0)),
                );
            }
        }
    }

    // ---- 7. Warm-replica failover vs restart-only ----------------------
    // Same storm, same snapshot interval, two recovery modes: the
    // restart run stalls its queue for restart + replay per crash, the
    // replica run pays only the promotion handoff and rebuilds the
    // standby in background time. The replica run also runs the
    // divergence detector against ELZAR's classification.
    println!("\n== failover (memcached-A, 30% SEU storm, K=16) ==");
    println!(
        "{:>12} {:>12} {:>4} {:>7} {:>12} {:>10} {:>9}",
        "recovery", "availability", "rst", "promos", "mttr cyc", "p99 us", "div agr"
    );
    let mut failover = Vec::new();
    {
        let service = Service::KvA;
        let (app, artifact) = artifact_for(service);
        let storm = ServeConfig {
            shards: 2,
            batch_size: 8,
            snapshot_interval: 16,
            fault_rate_ppm: 300_000,
            mean_gap_cycles: 300,
            ..saturating.clone()
        };
        for (name, cfg) in [
            ("restart-only", storm.clone()),
            ("warm-replica", ServeConfig { replicas: true, divergence_check_interval: 8, ..storm.clone() }),
        ] {
            let r = artifact.serve(service, &app, &cfg);
            let mttr = r.downtime_cycles().checked_div(r.restarts).unwrap_or(0);
            println!(
                "{:>12} {:>12.6} {:>4} {:>7} {:>12} {:>10.1} {:>9.3}",
                name,
                r.availability(),
                r.restarts,
                r.promotions,
                mttr,
                r.quantile_us(0.99),
                r.divergence_agreement(),
            );
            failover.push(
                row(service, &cfg, &r)
                    .field("recovery", Json::str(name))
                    .field("promotions", Json::uint(r.promotions))
                    .field("mttr_cycles", Json::uint(mttr))
                    .field("downtime_cycles", Json::uint(r.downtime_cycles()))
                    .field("rebuild_cycles", Json::uint(r.rebuild_cycles()))
                    .field("replica_apply_cycles", Json::uint(r.replica_apply_cycles()))
                    .field("divergence_probes", Json::uint(r.div_probes()))
                    .field("divergence_flagged_sdc", Json::uint(r.div_flagged[Outcome::Sdc.index()]))
                    .field("divergence_checks", Json::uint(r.divergence_checks))
                    .field("divergence_alarms", Json::uint(r.divergence_alarms))
                    .field("divergence_agreement", Json::num(r.divergence_agreement(), 4)),
            );
        }
    }

    // ---- 8. Availability curve: fault-rate sweep × recovery mode -------
    // The web parse crashes most readily, so it traces how availability
    // degrades with the SEU rate: restart-only loses restart+replay per
    // crash, warm replicas only the promotion handoff.
    println!("\n== availability curve (apache, K=16, restart vs warm-replica) ==");
    println!(
        "{:>9} {:>14} {:>4} {:>14} {:>13} {:>12}",
        "SEU ppm", "recovery", "rst", "downtime cyc", "availability", "tput req/s"
    );
    let mut availability_curve = Vec::new();
    {
        let service = Service::Web;
        let (app, artifact) = artifact_for(service);
        for ppm in [50_000u32, 100_000, 200_000, 400_000] {
            for (name, replicas) in [("restart-only", false), ("warm-replica", true)] {
                let cfg = ServeConfig {
                    batch_size: 8,
                    snapshot_interval: 16,
                    fault_rate_ppm: ppm,
                    replicas,
                    ..saturating.clone()
                };
                let r = artifact.serve(service, &app, &cfg);
                println!(
                    "{:>9} {:>14} {:>4} {:>14} {:>13.6} {:>12.0}",
                    ppm,
                    name,
                    r.restarts,
                    r.downtime_cycles(),
                    r.availability(),
                    r.throughput_rps(),
                );
                availability_curve.push(
                    row(service, &cfg, &r)
                        .field("recovery", Json::str(name))
                        .field("fault_rate_ppm", Json::uint(u64::from(ppm)))
                        .field("promotions", Json::uint(r.promotions))
                        .field("downtime_cycles", Json::uint(r.downtime_cycles())),
                );
            }
        }
    }

    // ---- 9. Scenario suite: reactive vs predictive scaling -------------
    // Each preset compiles to a deterministic stream + fault-rate
    // schedule (a pure function of the config seed); both policies
    // serve the *same* bytes, so every delta below is the controller's
    // doing. The SLO is accounting-only here (no shedding): outcomes
    // and the KV digest stay bit-identical across policies — the
    // scenario differential suite pins that — and goodput counts the
    // served requests that met the deadline.
    println!("\n== scenario suite (memcached-A, adaptive fleet, reactive vs predictive) ==");
    println!(
        "{:>12} {:>10} {:>7} {:>7} {:>9} {:>12} {:>5} {:>5} {:>4} {:>12}",
        "scenario", "policy", "served", "shed", "p99 us", "goodput r/s", "ups", "downs", "peak", "migr cyc"
    );
    let scenario_requests = env_u64("ELZAR_SCENARIO_REQUESTS", scale.pick(320, 640, 1_280));
    const SCENARIO_GAP: u64 = 12_000; // calm load well under 1-shard capacity
    const SCENARIO_PPM: u32 = 50_000;
    let mut scenario_rows = Vec::new();
    let mut scenario_headline = Json::obj();
    {
        let service = Service::KvA;
        let (app, artifact) = artifact_for(service);
        let base = ServeConfig {
            shards: 1,
            workers,
            batch_size: 4,
            snapshot_interval: 16,
            seed: 0x5CE2_A210,
            queue_capacity: 1 << 20,
            adaptive_shards: true,
            shards_max: 4,
            control_interval: 16,
            scale_up_backlog: 6,
            scale_down_backlog: 1,
            slo_cycles: SLO_CYCLES,
            ..Default::default()
        };
        for preset in ScenarioPreset::all() {
            let scenario = preset.scenario(scenario_requests, SCENARIO_GAP, SCENARIO_PPM);
            let mut p99 = [0.0f64; 2];
            let mut goodput = [0.0f64; 2];
            for (i, policy) in [ScalingPolicy::Reactive, ScalingPolicy::Predictive].into_iter().enumerate() {
                let cfg = ServeConfig { scaling_policy: policy, ..base.clone() };
                let r = serve_scenario(service, artifact.program(), &app, &scenario, &cfg);
                let policy_label = match policy {
                    ScalingPolicy::Reactive => "reactive",
                    ScalingPolicy::Predictive => "predictive",
                };
                let dropped = r.shed + r.rejected;
                let shed_rate = dropped as f64 / scenario.requests().max(1) as f64;
                p99[i] = r.quantile_us(0.99);
                goodput[i] = r.goodput_rps();
                println!(
                    "{:>12} {:>10} {:>7} {:>7} {:>9.1} {:>12.0} {:>5} {:>5} {:>4} {:>12}",
                    preset.label(),
                    policy_label,
                    r.served,
                    dropped,
                    p99[i],
                    goodput[i],
                    r.scale_ups,
                    r.scale_downs,
                    r.peak_shards,
                    r.migration_cycles(),
                );
                scenario_rows.push(
                    row(service, &cfg, &r)
                        .field("scenario", Json::str(preset.label()))
                        .field("policy", Json::str(policy_label))
                        .field("slo_cycles", Json::uint(SLO_CYCLES))
                        .field("shed", Json::uint(r.shed))
                        .field("shed_rate", Json::num(shed_rate, 4))
                        .field("slo_met", Json::uint(r.slo_met))
                        .field("goodput_rps", Json::num(r.goodput_rps(), 0))
                        .field("scale_ups", Json::uint(r.scale_ups))
                        .field("scale_downs", Json::uint(r.scale_downs))
                        .field("peak_shards", Json::uint(u64::from(r.peak_shards)))
                        .field("final_shards", Json::uint(u64::from(r.final_shards)))
                        .field("migrated_slots", Json::uint(r.migrated_slots))
                        .field("migration_cycles", Json::uint(r.migration_cycles())),
                );
            }
            if preset == ScenarioPreset::FlashCrowd {
                println!(
                    "{:>12} predictive vs reactive: p99 {:.1} -> {:.1} us ({:.2}x), goodput {:.0} -> {:.0} r/s",
                    preset.label(),
                    p99[0],
                    p99[1],
                    p99[0] / p99[1].max(1e-9),
                    goodput[0],
                    goodput[1],
                );
                scenario_headline = scenario_headline.field(
                    "flash_crowd",
                    Json::obj()
                        .field("reactive_p99_us", Json::num(p99[0], 2))
                        .field("predictive_p99_us", Json::num(p99[1], 2))
                        .field("p99_speedup", Json::num(p99[0] / p99[1].max(1e-9), 3))
                        .field("reactive_goodput_rps", Json::num(goodput[0], 0))
                        .field("predictive_goodput_rps", Json::num(goodput[1], 0)),
                );
            }
        }
    }

    let json = Json::obj()
        .field("scale", Json::str(format!("{scale:?}")))
        .field("requests", Json::uint(requests))
        .field("fault_rate_ppm", Json::uint(u64::from(fault_ppm)))
        .field("configs", Json::Arr(configs))
        .field("speedup_1_to_4", speedups)
        .field("frontier", Json::Arr(frontier))
        .field("batching_speedup", batching_speedup)
        .field("restart_curve", Json::Arr(restart_curve))
        .field("adaptive_frontier", Json::Arr(adaptive_frontier))
        .field("elastic", Json::Arr(elastic))
        .field("goodput_curve", Json::Arr(goodput_curve))
        .field("failover", Json::Arr(failover))
        .field("availability_curve", Json::Arr(availability_curve))
        .field("scenario", Json::Arr(scenario_rows))
        .field("scenario_headline", scenario_headline);
    write_report("BENCH_serve.json", &json);
    println!("\nwrote BENCH_serve.json");
}
