//! Serving-mode evaluation: sharded resident-VM throughput, tail
//! latency and *online* fault accounting under sustained open-loop
//! load — the serving counterpart of the batch case studies (fig15) and
//! campaigns (fig13). Writes `BENCH_serve.json` in the current
//! directory.
//!
//! For every service (memcached-A, memcached-D, apache) the stream is
//! served with 1 and 4 shards at an offered load that saturates both
//! configurations, so the throughput ratio measures the runtime's
//! horizontal scaling. A 2% online SEU rate exercises the full Table-I
//! taxonomy per request: Masked / ElzarCorrected / Sdc /
//! Crashed-with-shard-restart-from-snapshot.
//!
//! Knobs: `ELZAR_SCALE` (service problem size), `ELZAR_SERVE_REQUESTS`
//! (stream length, default by scale), `ELZAR_SERVE_FAULT_PPM`
//! (per-request SEU probability, default 20000 = 2%),
//! `ELZAR_CAMPAIGN_THREADS` (host workers; never changes results).

use elzar::Mode;
use elzar_bench::{banner, campaign_workers_from_env, scale_from_env};
use elzar_fault::Outcome;
use elzar_serve::{serve, ServeConfig, Service};
use std::fmt::Write as _;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    banner("fig_serve", "sharded resident-VM serving: throughput, tail latency, online faults");
    let scale = scale_from_env();
    let requests = env_u64("ELZAR_SERVE_REQUESTS", scale.pick(800, 1_600, 6_000));
    let fault_ppm = env_u64("ELZAR_SERVE_FAULT_PPM", 20_000) as u32;
    let workers = campaign_workers_from_env();

    let mut configs_json = String::new();
    let mut speedups_json = String::new();
    println!(
        "{:<12} {:>6} {:>12} {:>9} {:>9} {:>9} {:>9} {:>5} {:>5} {:>5} {:>4} {:>8}",
        "service",
        "shards",
        "tput req/s",
        "p50 us",
        "p90 us",
        "p99 us",
        "p999 us",
        "inj",
        "corr",
        "sdc",
        "rst",
        "avail"
    );
    for service in Service::all() {
        let mut tput = [0.0f64; 2];
        for (i, &shards) in [1u32, 4].iter().enumerate() {
            let cfg = ServeConfig {
                shards,
                workers,
                requests,
                fault_rate_ppm: fault_ppm,
                // Saturating offered load: the queue (not the arrival
                // process) is the bottleneck in both configurations, so
                // the 1 -> 4 shard ratio measures serving capacity.
                mean_gap_cycles: 150,
                queue_capacity: 1 << 20,
                ..Default::default()
            };
            let r = serve(service, &Mode::elzar_default(), scale, &cfg);
            tput[i] = r.throughput_rps();
            println!(
                "{:<12} {:>6} {:>12.0} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>5} {:>5} {:>5} {:>4} {:>8.5}",
                service.label(),
                shards,
                r.throughput_rps(),
                r.quantile_us(0.50),
                r.quantile_us(0.90),
                r.quantile_us(0.99),
                r.quantile_us(0.999),
                r.injected,
                r.count(Outcome::ElzarCorrected),
                r.count(Outcome::Sdc),
                r.restarts,
                r.availability(),
            );
            let _ = writeln!(
                configs_json,
                "    {{\"service\": \"{}\", \"shards\": {}, \"throughput_rps\": {:.0}, \
                 \"p50_us\": {:.2}, \"p90_us\": {:.2}, \"p99_us\": {:.2}, \"p999_us\": {:.2}, \
                 \"mean_us\": {:.2}, \"served\": {}, \"rejected\": {}, \"injected\": {}, \
                 \"outcomes\": {{\"hang\": {}, \"os_detected\": {}, \"elzar_corrected\": {}, \
                 \"masked\": {}, \"sdc\": {}}}, \"restarts\": {}, \"availability\": {:.6}, \
                 \"sdc_rate\": {:.6}, \"table_digest\": \"{:#018x}\"}},",
                service.label(),
                shards,
                r.throughput_rps(),
                r.quantile_us(0.50),
                r.quantile_us(0.90),
                r.quantile_us(0.99),
                r.quantile_us(0.999),
                r.hist.mean() / elzar_apps::FREQ_HZ * 1e6,
                r.served,
                r.rejected,
                r.injected,
                r.count(Outcome::Hang),
                r.count(Outcome::OsDetected),
                r.count(Outcome::ElzarCorrected),
                r.count(Outcome::Masked),
                r.count(Outcome::Sdc),
                r.restarts,
                r.availability(),
                r.sdc_rate(),
                r.table_digest,
            );
        }
        let speedup = tput[1] / tput[0].max(1e-9);
        println!("{:<12} 1 -> 4 shards: {speedup:.2}x aggregate throughput", service.label());
        let _ = writeln!(speedups_json, "    \"{}\": {:.3},", service.label(), speedup);
    }

    let json = format!(
        "{{\n  \"scale\": \"{:?}\",\n  \"requests\": {requests},\n  \
         \"fault_rate_ppm\": {fault_ppm},\n  \"configs\": [\n{}  ],\n  \
         \"speedup_1_to_4\": {{\n{}  }}\n}}\n",
        scale,
        configs_json.trim_end_matches(",\n").to_string() + "\n",
        speedups_json.trim_end_matches(",\n").to_string() + "\n",
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}
