//! Serving-mode evaluation: sharded resident-VM throughput, tail
//! latency and *online* fault accounting under sustained open-loop
//! load — the serving counterpart of the batch case studies (fig15) and
//! campaigns (fig13). Writes `BENCH_serve.json` in the current
//! directory.
//!
//! For every service (memcached-A, memcached-D, apache) the stream is
//! served with 1 and 4 shards at an offered load that saturates both
//! configurations, so the throughput ratio measures the runtime's
//! horizontal scaling. Both shard counts boot from *one* artifact per
//! service — the hardened program is transformed and lowered exactly
//! once. A 2% online SEU rate exercises the full Table-I taxonomy per
//! request: Masked / ElzarCorrected / Sdc /
//! Crashed-with-shard-restart-from-snapshot.
//!
//! Knobs: `ELZAR_SCALE` (service problem size), `ELZAR_SERVE_REQUESTS`
//! (stream length, default by scale), `ELZAR_SERVE_FAULT_PPM`
//! (per-request SEU probability, default 20000 = 2%),
//! `ELZAR_CAMPAIGN_THREADS` (host workers; never changes results).

use elzar::{ArtifactSet, Mode};
use elzar_bench::report::{write_report, Json};
use elzar_bench::{banner, campaign_workers_from_env, scale_from_env};
use elzar_fault::Outcome;
use elzar_serve::{ServeConfig, Service};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    banner("fig_serve", "sharded resident-VM serving: throughput, tail latency, online faults");
    let scale = scale_from_env();
    let requests = env_u64("ELZAR_SERVE_REQUESTS", scale.pick(800, 1_600, 6_000));
    let fault_ppm = env_u64("ELZAR_SERVE_FAULT_PPM", 20_000) as u32;
    let workers = campaign_workers_from_env();
    let set = ArtifactSet::new();

    let mut configs = Vec::new();
    let mut speedups = Json::obj();
    println!(
        "{:<12} {:>6} {:>12} {:>9} {:>9} {:>9} {:>9} {:>5} {:>5} {:>5} {:>4} {:>8}",
        "service",
        "shards",
        "tput req/s",
        "p50 us",
        "p90 us",
        "p99 us",
        "p999 us",
        "inj",
        "corr",
        "sdc",
        "rst",
        "avail"
    );
    for service in Service::all() {
        // One app + one hardened artifact per service, shared by every
        // shard-count configuration.
        let app = service.app(scale);
        let artifact = set.get_or_build(service.label(), &Mode::elzar_default(), || app.module.clone());
        let mut tput = [0.0f64; 2];
        for (i, &shards) in [1u32, 4].iter().enumerate() {
            let cfg = ServeConfig {
                shards,
                workers,
                requests,
                fault_rate_ppm: fault_ppm,
                // Saturating offered load: the queue (not the arrival
                // process) is the bottleneck in both configurations, so
                // the 1 -> 4 shard ratio measures serving capacity.
                mean_gap_cycles: 150,
                queue_capacity: 1 << 20,
                ..Default::default()
            };
            let r = artifact.serve(service, &app, &cfg);
            tput[i] = r.throughput_rps();
            println!(
                "{:<12} {:>6} {:>12.0} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>5} {:>5} {:>5} {:>4} {:>8.5}",
                service.label(),
                shards,
                r.throughput_rps(),
                r.quantile_us(0.50),
                r.quantile_us(0.90),
                r.quantile_us(0.99),
                r.quantile_us(0.999),
                r.injected,
                r.count(Outcome::ElzarCorrected),
                r.count(Outcome::Sdc),
                r.restarts,
                r.availability(),
            );
            configs.push(
                Json::obj()
                    .field("service", Json::str(service.label()))
                    .field("shards", Json::uint(u64::from(shards)))
                    .field("throughput_rps", Json::num(r.throughput_rps(), 0))
                    .field("p50_us", Json::num(r.quantile_us(0.50), 2))
                    .field("p90_us", Json::num(r.quantile_us(0.90), 2))
                    .field("p99_us", Json::num(r.quantile_us(0.99), 2))
                    .field("p999_us", Json::num(r.quantile_us(0.999), 2))
                    .field("mean_us", Json::num(r.hist.mean() / elzar_apps::FREQ_HZ * 1e6, 2))
                    .field("served", Json::uint(r.served))
                    .field("rejected", Json::uint(r.rejected))
                    .field("injected", Json::uint(r.injected))
                    .field(
                        "outcomes",
                        Json::obj()
                            .field("hang", Json::uint(r.count(Outcome::Hang)))
                            .field("os_detected", Json::uint(r.count(Outcome::OsDetected)))
                            .field("elzar_corrected", Json::uint(r.count(Outcome::ElzarCorrected)))
                            .field("masked", Json::uint(r.count(Outcome::Masked)))
                            .field("sdc", Json::uint(r.count(Outcome::Sdc))),
                    )
                    .field("restarts", Json::uint(r.restarts))
                    .field("availability", Json::num(r.availability(), 6))
                    .field("sdc_rate", Json::num(r.sdc_rate(), 6))
                    .field("table_digest", Json::str(format!("{:#018x}", r.table_digest))),
            );
        }
        let speedup = tput[1] / tput[0].max(1e-9);
        println!("{:<12} 1 -> 4 shards: {speedup:.2}x aggregate throughput", service.label());
        speedups = speedups.field(service.label(), Json::num(speedup, 3));
    }

    let json = Json::obj()
        .field("scale", Json::str(format!("{scale:?}")))
        .field("requests", Json::uint(requests))
        .field("fault_rate_ppm", Json::uint(u64::from(fault_ppm)))
        .field("configs", Json::Arr(configs))
        .field("speedup_1_to_4", speedups);
    write_report("BENCH_serve.json", &json);
    println!("\nwrote BENCH_serve.json");
}
