//! Serving-mode evaluation: sharded resident-VM throughput, tail
//! latency and *online* fault accounting under sustained open-loop
//! load — the serving counterpart of the batch case studies (fig15) and
//! campaigns (fig13). Writes `BENCH_serve.json` in the current
//! directory.
//!
//! Three sections:
//!
//! 1. **Scaling** — every service (memcached-A, memcached-D, apache)
//!    served with 1 and 4 shards at a saturating offered load, so the
//!    throughput ratio measures horizontal scaling;
//! 2. **Batching frontier** — `batch_size x snapshot_interval` sweep at
//!    a fixed shard count: the latency/throughput surface of the two
//!    serving levers, plus the per-service best batching speedup over
//!    the `batch_size = 1` baseline at the same snapshot interval;
//! 3. **Restart curve** — `snapshot_interval` sweep under an elevated
//!    fault rate: the clone-cost vs restart-latency (suffix replay)
//!    trade-off as the checkpoint interval grows.
//!
//! Every configuration boots from *one* artifact per service — the
//! hardened program is transformed and lowered exactly once. Outcome
//! counts and table digests are batching/interval/shard invariant (the
//! serve differential tests pin this); this harness only measures the
//! timing surface.
//!
//! Knobs: `ELZAR_SCALE` (service problem size), `ELZAR_SERVE_REQUESTS`
//! (stream length, default by scale), `ELZAR_SERVE_FAULT_PPM`
//! (per-request SEU probability, default 20000 = 2%),
//! `ELZAR_CAMPAIGN_THREADS` (host workers; never changes results).

use elzar::{Artifact, ArtifactSet, Mode};
use elzar_bench::report::{write_report, Json};
use elzar_bench::{banner, campaign_workers_from_env, scale_from_env};
use elzar_fault::Outcome;
use elzar_serve::{ServeConfig, ServeReport, Service};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// One serve run's JSON row (shared by all three sections).
fn row(service: Service, cfg: &ServeConfig, r: &ServeReport) -> Json {
    Json::obj()
        .field("service", Json::str(service.label()))
        .field("shards", Json::uint(u64::from(cfg.shards)))
        .field("batch_size", Json::uint(u64::from(cfg.batch_size)))
        .field("snapshot_interval", Json::uint(u64::from(cfg.snapshot_interval)))
        .field("throughput_rps", Json::num(r.throughput_rps(), 0))
        .field("p50_us", Json::num(r.quantile_us(0.50), 2))
        .field("p90_us", Json::num(r.quantile_us(0.90), 2))
        .field("p99_us", Json::num(r.quantile_us(0.99), 2))
        .field("p999_us", Json::num(r.quantile_us(0.999), 2))
        .field("mean_us", Json::num(r.hist.mean() / elzar_apps::FREQ_HZ * 1e6, 2))
        .field("served", Json::uint(r.served))
        .field("rejected", Json::uint(r.rejected))
        .field("batches", Json::uint(r.batches))
        .field("injected", Json::uint(r.injected))
        .field(
            "outcomes",
            Json::obj()
                .field("hang", Json::uint(r.count(Outcome::Hang)))
                .field("os_detected", Json::uint(r.count(Outcome::OsDetected)))
                .field("elzar_corrected", Json::uint(r.count(Outcome::ElzarCorrected)))
                .field("masked", Json::uint(r.count(Outcome::Masked)))
                .field("sdc", Json::uint(r.count(Outcome::Sdc))),
        )
        .field("restarts", Json::uint(r.restarts))
        .field("snapshots", Json::uint(r.snapshots))
        .field("snapshot_cycles", Json::uint(r.snapshot_cycles))
        .field("replay_cycles", Json::uint(r.replay_cycles))
        .field("availability", Json::num(r.availability(), 6))
        .field("sdc_rate", Json::num(r.sdc_rate(), 6))
        .field("table_digest", Json::str(format!("{:#018x}", r.table_digest)))
}

fn print_run(service: Service, cfg: &ServeConfig, r: &ServeReport) {
    println!(
        "{:<12} {:>6} {:>5} {:>4} {:>12.0} {:>9.1} {:>9.1} {:>9.1} {:>5} {:>5} {:>5} {:>4} {:>8.5}",
        service.label(),
        cfg.shards,
        cfg.batch_size,
        cfg.snapshot_interval,
        r.throughput_rps(),
        r.quantile_us(0.50),
        r.quantile_us(0.90),
        r.quantile_us(0.99),
        r.injected,
        r.count(Outcome::ElzarCorrected),
        r.count(Outcome::Sdc),
        r.restarts,
        r.availability(),
    );
}

fn header() {
    println!(
        "{:<12} {:>6} {:>5} {:>4} {:>12} {:>9} {:>9} {:>9} {:>5} {:>5} {:>5} {:>4} {:>8}",
        "service",
        "shards",
        "batch",
        "K",
        "tput req/s",
        "p50 us",
        "p90 us",
        "p99 us",
        "inj",
        "corr",
        "sdc",
        "rst",
        "avail"
    );
}

fn main() {
    banner("fig_serve", "sharded resident-VM serving: batching, snapshots, tail latency, online faults");
    let scale = scale_from_env();
    let requests = env_u64("ELZAR_SERVE_REQUESTS", scale.pick(800, 1_600, 6_000));
    let fault_ppm = env_u64("ELZAR_SERVE_FAULT_PPM", 20_000) as u32;
    let workers = campaign_workers_from_env();
    let set = ArtifactSet::new();
    // Saturating offered load: the queue (not the arrival process) is
    // the bottleneck in every configuration, so throughput ratios
    // measure serving capacity.
    let saturating = ServeConfig {
        workers,
        requests,
        fault_rate_ppm: fault_ppm,
        mean_gap_cycles: 150,
        queue_capacity: 1 << 20,
        ..Default::default()
    };

    // ---- 1. Horizontal scaling: 1 -> 4 shards -------------------------
    println!("\n== shard scaling ==");
    header();
    let mut configs = Vec::new();
    let mut speedups = Json::obj();
    let artifact_for = |service: Service| -> (elzar_apps::ServeApp, std::sync::Arc<Artifact>) {
        let app = service.app(scale);
        let artifact = set.get_or_build(service.label(), &Mode::elzar_default(), || app.module.clone());
        (app, artifact)
    };
    for service in Service::all() {
        let (app, artifact) = artifact_for(service);
        let mut tput = [0.0f64; 2];
        for (i, &shards) in [1u32, 4].iter().enumerate() {
            let cfg = ServeConfig { shards, ..saturating.clone() };
            let r = artifact.serve(service, &app, &cfg);
            tput[i] = r.throughput_rps();
            print_run(service, &cfg, &r);
            configs.push(row(service, &cfg, &r));
        }
        let speedup = tput[1] / tput[0].max(1e-9);
        println!("{:<12} 1 -> 4 shards: {speedup:.2}x aggregate throughput", service.label());
        speedups = speedups.field(service.label(), Json::num(speedup, 3));
    }

    // ---- 2. Batching frontier: batch_size x snapshot_interval ---------
    println!("\n== batching frontier (4 shards) ==");
    header();
    const BATCHES: [u32; 4] = [1, 8, 16, 32];
    const INTERVALS: [u32; 3] = [1, 8, 64];
    let mut frontier = Vec::new();
    let mut batching_speedup = Json::obj();
    for service in Service::all() {
        let (app, artifact) = artifact_for(service);
        let mut best = (0.0f64, 0u32, 0u32);
        for &snapshot_interval in &INTERVALS {
            let mut base = 0.0f64;
            for &batch_size in &BATCHES {
                // Denser arrivals than the scaling section (fast
                // batched configurations must stay queue-limited, not
                // arrival-limited) and no faults: the frontier is a
                // pure timing surface — crash detours grow with K and
                // would entangle the batching ratio with recovery cost,
                // which section 3 measures on its own.
                let cfg = ServeConfig {
                    batch_size,
                    snapshot_interval,
                    mean_gap_cycles: 20,
                    fault_rate_ppm: 0,
                    ..saturating.clone()
                };
                let r = artifact.serve(service, &app, &cfg);
                print_run(service, &cfg, &r);
                frontier.push(row(service, &cfg, &r));
                if batch_size == 1 {
                    base = r.throughput_rps();
                } else {
                    let ratio = r.throughput_rps() / base.max(1e-9);
                    if ratio > best.0 {
                        best = (ratio, batch_size, snapshot_interval);
                    }
                }
            }
        }
        println!(
            "{:<12} best batching speedup {:.2}x (batch={} K={}, vs batch=1 same K)",
            service.label(),
            best.0,
            best.1,
            best.2
        );
        batching_speedup = batching_speedup.field(
            service.label(),
            Json::obj()
                .field("speedup", Json::num(best.0, 3))
                .field("batch_size", Json::uint(u64::from(best.1)))
                .field("snapshot_interval", Json::uint(u64::from(best.2))),
        );
    }

    // ---- 3. Restart latency vs clone cost -----------------------------
    // The web service crashes most readily under ELZAR (faults in the
    // hardened parse surface as detected traps/hangs), so it traces the
    // recovery trade-off: snapshot clone cost falls with K while every
    // crash replays a longer committed suffix.
    println!("\n== restart curve (apache, 4 shards, batch=8, 10% SEU) ==");
    println!(
        "{:>4} {:>10} {:>14} {:>14} {:>4} {:>14} {:>9} {:>12}",
        "K", "snapshots", "snap cycles", "replay cyc", "rst", "detour/rst", "p99 us", "tput req/s"
    );
    let mut restart_curve = Vec::new();
    {
        let service = Service::Web;
        let (app, artifact) = artifact_for(service);
        for k in [1u32, 2, 4, 8, 16, 32, 64] {
            let cfg = ServeConfig {
                batch_size: 8,
                snapshot_interval: k,
                fault_rate_ppm: 100_000,
                ..saturating.clone()
            };
            let r = artifact.serve(service, &app, &cfg);
            let detour = r.downtime_cycles.checked_div(r.restarts).unwrap_or(0);
            println!(
                "{:>4} {:>10} {:>14} {:>14} {:>4} {:>14} {:>9.1} {:>12.0}",
                k,
                r.snapshots,
                r.snapshot_cycles,
                r.replay_cycles,
                r.restarts,
                detour,
                r.quantile_us(0.99),
                r.throughput_rps(),
            );
            restart_curve.push(
                row(service, &cfg, &r)
                    .field("restart_detour_cycles", Json::uint(detour))
                    .field("fault_rate_ppm", Json::uint(u64::from(cfg.fault_rate_ppm))),
            );
        }
    }

    let json = Json::obj()
        .field("scale", Json::str(format!("{scale:?}")))
        .field("requests", Json::uint(requests))
        .field("fault_rate_ppm", Json::uint(u64::from(fault_ppm)))
        .field("configs", Json::Arr(configs))
        .field("speedup_1_to_4", speedups)
        .field("frontier", Json::Arr(frontier))
        .field("batching_speedup", batching_speedup)
        .field("restart_curve", Json::Arr(restart_curve));
    write_report("BENCH_serve.json", &json);
    println!("\nwrote BENCH_serve.json");
}
