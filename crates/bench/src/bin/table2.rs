//! Table II: runtime statistics of the *native* builds — L1D miss ratio,
//! branch miss ratio, and the load/store/branch fractions of executed
//! instructions.

use elzar::Mode;
use elzar_bench::{banner, max_threads, measure, scale_from_env};
use elzar_workloads::{all_workloads, short_name, Params};

fn main() {
    let t = max_threads();
    banner("Table II", "native runtime statistics (percent)");
    let scale = scale_from_env();
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>9}   ({t} threads)",
        "benchmark", "L1-miss", "br-miss", "loads", "stores", "branches"
    );
    for w in all_workloads() {
        let built = w.build(&Params::new(t, scale));
        let r = measure(&built.module, &Mode::Native, &built.input);
        let k = r.counters;
        let instrs = k.instrs.max(1) as f64;
        println!(
            "{:<12} {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}% {:>8.2}%",
            short_name(w.name()),
            k.l1_misses as f64 / k.mem_refs.max(1) as f64 * 100.0,
            k.branch_misses as f64 / k.branches.max(1) as f64 * 100.0,
            k.loads as f64 / instrs * 100.0,
            k.stores as f64 / instrs * 100.0,
            k.branches as f64 / instrs * 100.0,
        );
    }
    println!();
    println!("Paper shape: mmul ~62% L1 misses; histogram heaviest on");
    println!("loads+stores; ferret/fluidanimate worst branch predictability;");
    println!("blackscholes fewest memory accesses.");
}
