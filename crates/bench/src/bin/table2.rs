//! Table II: runtime statistics of the *native* builds — L1D miss ratio,
//! branch miss ratio, and the load/store/branch fractions of executed
//! instructions.

use elzar::{ArtifactSet, Mode};
use elzar_bench::{banner, max_threads, run_artifact, scale_from_env};
use elzar_workloads::{all_workloads, short_name};

fn main() {
    let t = max_threads();
    banner("Table II", "native runtime statistics (percent)");
    let scale = scale_from_env();
    let set = ArtifactSet::new();
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>9}   ({t} threads)",
        "benchmark", "L1-miss", "br-miss", "loads", "stores", "branches"
    );
    for w in all_workloads() {
        let built = w.build(scale);
        let native = set.get_or_build(w.name(), &Mode::Native, || built.module.clone());
        let r = run_artifact(&native, &built.input, t);
        let k = r.counters;
        let instrs = k.instrs.max(1) as f64;
        println!(
            "{:<12} {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}% {:>8.2}%",
            short_name(w.name()),
            k.l1_misses as f64 / k.mem_refs.max(1) as f64 * 100.0,
            k.branch_misses as f64 / k.branches.max(1) as f64 * 100.0,
            k.loads as f64 / instrs * 100.0,
            k.stores as f64 / instrs * 100.0,
            k.branches as f64 / instrs * 100.0,
        );
    }
    println!();
    println!("Paper shape: mmul ~62% L1 misses; histogram heaviest on");
    println!("loads+stores; ferret/fluidanimate worst branch predictability;");
    println!("blackscholes fewest memory accesses.");
}
