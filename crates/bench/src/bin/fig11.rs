//! Figure 11: ELZAR's normalized runtime w.r.t. native across thread
//! counts (the paper's headline 4.1–5.6× average).

use elzar::{normalized_runtime, Mode};
use elzar_bench::{banner, mean, measure, scale_from_env, thread_sweep};
use elzar_workloads::{all_workloads, by_name, short_name, Params};

fn main() {
    banner("Figure 11", "ELZAR normalized runtime vs native, by thread count");
    let scale = scale_from_env();
    let sweep = thread_sweep();
    print!("{:<12}", "benchmark");
    for t in &sweep {
        print!(" {:>7}T", t);
    }
    println!();
    let mut per_thread: Vec<Vec<f64>> = vec![vec![]; sweep.len()];
    for w in all_workloads() {
        print!("{:<12}", short_name(w.name()));
        for (k, t) in sweep.iter().enumerate() {
            let built = w.build(&Params::new(*t, scale));
            let native = measure(&built.module, &Mode::Native, &built.input);
            let elz = measure(&built.module, &Mode::elzar_default(), &built.input);
            let o = normalized_runtime(&elz, &native);
            per_thread[k].push(o);
            print!(" {:>7.2}x", o);
        }
        println!();
    }
    print!("{:<12}", "mean");
    for col in &per_thread {
        print!(" {:>7.2}x", mean(col));
    }
    println!();
    // The paper's smatch-na variant: string match against a no-AVX native.
    let w = by_name("string_match").expect("known");
    print!("{:<12}", "smatch-na");
    for t in &sweep {
        let built = w.build(&Params::new(*t, scale));
        let nosimd = measure(&built.module, &Mode::NativeNoSimd, &built.input);
        let elz = measure(&built.module, &Mode::elzar_default(), &built.input);
        print!(" {:>7.2}x", normalized_runtime(&elz, &nosimd));
    }
    println!();
    println!();
    println!("Paper shape: mean 4.1-5.6x; mmul lowest (~1.1x); smatch highest");
    println!("(15-20x vs AVX-native, 10-14x vs no-AVX native).");
}
