//! Figure 11: ELZAR's normalized runtime w.r.t. native across thread
//! counts (the paper's headline 4.1–5.6× average).
//!
//! Artifact-centric sweep: every `(workload, mode)` is transformed and
//! lowered exactly once (asserted via `elzar::build_count`), because
//! workload modules take the simulated worker count from
//! `MachineConfig::threads` at run time. The per-cell measurements are
//! independent full interpretations, fanned out over
//! `ELZAR_CAMPAIGN_THREADS` host workers and printed in order — the
//! numbers are identical to the serial sweep, only faster.

use elzar::{normalized_runtime, ArtifactSet, Mode};
use elzar_bench::{
    assert_builds, banner, campaign_workers_from_env, mean, run_artifact, scale_from_env, thread_sweep,
};
use elzar_workloads::{all_workloads, by_name, short_name, BuiltWorkload};
use std::sync::atomic::{AtomicUsize, Ordering};

fn main() {
    banner("Figure 11", "ELZAR normalized runtime vs native, by thread count");
    let builds_at_start = elzar::build_count();
    let scale = scale_from_env();
    let sweep = thread_sweep();
    let names: Vec<&'static str> = all_workloads().iter().map(|w| w.name()).collect();

    // Build every workload module + input once...
    let builts: Vec<BuiltWorkload> = all_workloads().iter().map(|w| w.build(scale)).collect();
    // ...and every (workload, mode) artifact once, shared by all cells.
    let set = ArtifactSet::new();
    for (wi, name) in names.iter().enumerate() {
        for mode in [Mode::Native, Mode::elzar_default()] {
            set.get_or_build(name, &mode, || builts[wi].module.clone());
        }
    }

    // One job per (workload, simulated threads) cell; results land in
    // their own slots, so host scheduling never reorders anything.
    let jobs: Vec<(usize, usize)> =
        (0..names.len()).flat_map(|wi| (0..sweep.len()).map(move |k| (wi, k))).collect();
    let mut cells = vec![0.0f64; jobs.len()];
    let workers = (campaign_workers_from_env() as usize).min(jobs.len()).max(1);
    let next = AtomicUsize::new(0);
    let done: Vec<(usize, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let jobs = &jobs;
                let sweep = &sweep;
                let set = &set;
                let names = &names;
                let builts = &builts;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let j = next.fetch_add(1, Ordering::Relaxed);
                        if j >= jobs.len() {
                            return local;
                        }
                        let (wi, k) = jobs[j];
                        let built = &builts[wi];
                        let native = set.get_or_build(names[wi], &Mode::Native, || unreachable!());
                        let elz = set.get_or_build(names[wi], &Mode::elzar_default(), || unreachable!());
                        let rn = run_artifact(&native, &built.input, sweep[k]);
                        let re = run_artifact(&elz, &built.input, sweep[k]);
                        local.push((j, normalized_runtime(&re, &rn)));
                    }
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
    });
    for (j, o) in done {
        cells[j] = o;
    }

    print!("{:<12}", "benchmark");
    for t in &sweep {
        print!(" {:>7}T", t);
    }
    println!();
    let mut per_thread: Vec<Vec<f64>> = vec![vec![]; sweep.len()];
    for (wi, name) in names.iter().enumerate() {
        print!("{:<12}", short_name(name));
        for k in 0..sweep.len() {
            let o = cells[wi * sweep.len() + k];
            per_thread[k].push(o);
            print!(" {o:>7.2}x");
        }
        println!();
    }
    print!("{:<12}", "mean");
    for col in &per_thread {
        print!(" {:>7.2}x", mean(col));
    }
    println!();
    // The paper's smatch-na variant: string match against a no-AVX native.
    let smatch = by_name("string_match").expect("known");
    let built = smatch.build(scale);
    let nosimd = set.get_or_build("string_match", &Mode::NativeNoSimd, || built.module.clone());
    let elz = set.get_or_build("string_match", &Mode::elzar_default(), || unreachable!());
    print!("{:<12}", "smatch-na");
    for t in &sweep {
        let rn = run_artifact(&nosimd, &built.input, *t);
        let re = run_artifact(&elz, &built.input, *t);
        print!(" {:>7.2}x", normalized_runtime(&re, &rn));
    }
    println!();
    println!();
    // 14 workloads x {native, elzar} + smatch's no-SIMD baseline: the
    // whole thread sweep lowers each (workload, mode) exactly once.
    assert_builds(builds_at_start, names.len() as u64 * 2 + 1, "fig11");
    println!();
    println!("Paper shape: mean 4.1-5.6x; mmul lowest (~1.1x); smatch highest");
    println!("(15-20x vs AVX-native, 10-14x vs no-AVX native).");
}
