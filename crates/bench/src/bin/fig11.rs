//! Figure 11: ELZAR's normalized runtime w.r.t. native across thread
//! counts (the paper's headline 4.1–5.6× average).
//!
//! Every (workload, simulated-thread-count) cell is an independent
//! pair of full interpretations, so the cells are fanned out over
//! `ELZAR_CAMPAIGN_THREADS` host workers and printed in order — the
//! numbers are identical to the serial sweep, only faster.

use elzar::{normalized_runtime, Mode};
use elzar_bench::{banner, campaign_workers_from_env, mean, measure, scale_from_env, thread_sweep};
use elzar_workloads::{all_workloads, by_name, short_name, Params};
use std::sync::atomic::{AtomicUsize, Ordering};

fn main() {
    banner("Figure 11", "ELZAR normalized runtime vs native, by thread count");
    let scale = scale_from_env();
    let sweep = thread_sweep();
    let names: Vec<&'static str> = all_workloads().iter().map(|w| w.name()).collect();

    // One job per (workload, simulated threads) cell; results land in
    // their own slots, so host scheduling never reorders anything.
    let jobs: Vec<(usize, usize)> =
        (0..names.len()).flat_map(|wi| (0..sweep.len()).map(move |k| (wi, k))).collect();
    let mut cells = vec![0.0f64; jobs.len()];
    let workers = (campaign_workers_from_env() as usize).min(jobs.len()).max(1);
    let next = AtomicUsize::new(0);
    let done: Vec<(usize, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let jobs = &jobs;
                let sweep = &sweep;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let j = next.fetch_add(1, Ordering::Relaxed);
                        if j >= jobs.len() {
                            return local;
                        }
                        let (wi, k) = jobs[j];
                        let w = all_workloads().swap_remove(wi);
                        let built = w.build(&Params::new(sweep[k], scale));
                        let native = measure(&built.module, &Mode::Native, &built.input);
                        let elz = measure(&built.module, &Mode::elzar_default(), &built.input);
                        local.push((j, normalized_runtime(&elz, &native)));
                    }
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
    });
    for (j, o) in done {
        cells[j] = o;
    }

    print!("{:<12}", "benchmark");
    for t in &sweep {
        print!(" {:>7}T", t);
    }
    println!();
    let mut per_thread: Vec<Vec<f64>> = vec![vec![]; sweep.len()];
    for (wi, name) in names.iter().enumerate() {
        print!("{:<12}", short_name(name));
        for k in 0..sweep.len() {
            let o = cells[wi * sweep.len() + k];
            per_thread[k].push(o);
            print!(" {o:>7.2}x");
        }
        println!();
    }
    print!("{:<12}", "mean");
    for col in &per_thread {
        print!(" {:>7.2}x", mean(col));
    }
    println!();
    // The paper's smatch-na variant: string match against a no-AVX native.
    let w = by_name("string_match").expect("known");
    print!("{:<12}", "smatch-na");
    for t in &sweep {
        let built = w.build(&Params::new(*t, scale));
        let nosimd = measure(&built.module, &Mode::NativeNoSimd, &built.input);
        let elz = measure(&built.module, &Mode::elzar_default(), &built.input);
        print!(" {:>7.2}x", normalized_runtime(&elz, &nosimd));
    }
    println!();
    println!();
    println!("Paper shape: mean 4.1-5.6x; mmul lowest (~1.1x); smatch highest");
    println!("(15-20x vs AVX-native, 10-14x vs no-AVX native).");
}
