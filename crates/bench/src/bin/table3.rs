//! Table III: instruction-level parallelism (native / ELZAR / SWIFT-R)
//! and the instruction-increase factors of both hardening schemes.

use elzar::{instr_increase, ArtifactSet, Mode};
use elzar_bench::{banner, max_threads, run_artifact, scale_from_env};
use elzar_workloads::{all_workloads, short_name};

fn main() {
    let t = max_threads();
    banner("Table III", "ILP (instr/cycle) and instruction increase vs native");
    let scale = scale_from_env();
    let set = ArtifactSet::new();
    println!(
        "{:<12} {:>8} {:>8} {:>8} | {:>9} {:>9}   ({t} threads)",
        "benchmark", "ILP-nat", "ILP-elz", "ILP-swr", "elz-instr", "swr-instr"
    );
    for w in all_workloads() {
        let built = w.build(scale);
        let native = set.get_or_build(w.name(), &Mode::Native, || built.module.clone());
        let elzar = set.get_or_build(w.name(), &Mode::elzar_default(), || built.module.clone());
        let swiftr = set.get_or_build(w.name(), &Mode::SwiftR, || built.module.clone());
        let rn = run_artifact(&native, &built.input, t);
        let re = run_artifact(&elzar, &built.input, t);
        let rs = run_artifact(&swiftr, &built.input, t);
        println!(
            "{:<12} {:>8.2} {:>8.2} {:>8.2} | {:>8.2}x {:>8.2}x",
            short_name(w.name()),
            rn.ilp(),
            re.ilp(),
            rs.ilp(),
            instr_increase(&re, &rn),
            instr_increase(&rs, &rn),
        );
    }
    println!();
    println!("Paper shape: SWIFT-R's ILP exceeds ELZAR's everywhere (scalar");
    println!("ports are wider); ELZAR's instruction increase undercuts");
    println!("SWIFT-R on compute-heavy kernels (blackscholes, fluidanimate)");
    println!("but explodes on memory-heavy ones (smatch ~32x).");
}
