//! Table III: instruction-level parallelism (native / ELZAR / SWIFT-R)
//! and the instruction-increase factors of both hardening schemes.

use elzar::{instr_increase, Mode};
use elzar_bench::{banner, max_threads, measure, scale_from_env};
use elzar_workloads::{all_workloads, short_name, Params};

fn main() {
    let t = max_threads();
    banner("Table III", "ILP (instr/cycle) and instruction increase vs native");
    let scale = scale_from_env();
    println!(
        "{:<12} {:>8} {:>8} {:>8} | {:>9} {:>9}   ({t} threads)",
        "benchmark", "ILP-nat", "ILP-elz", "ILP-swr", "elz-instr", "swr-instr"
    );
    for w in all_workloads() {
        let built = w.build(&Params::new(t, scale));
        let native = measure(&built.module, &Mode::Native, &built.input);
        let elz = measure(&built.module, &Mode::elzar_default(), &built.input);
        let swr = measure(&built.module, &Mode::SwiftR, &built.input);
        println!(
            "{:<12} {:>8.2} {:>8.2} {:>8.2} | {:>8.2}x {:>8.2}x",
            short_name(w.name()),
            native.ilp(),
            elz.ilp(),
            swr.ilp(),
            instr_increase(&elz, &native),
            instr_increase(&swr, &native),
        );
    }
    println!();
    println!("Paper shape: SWIFT-R's ILP exceeds ELZAR's everywhere (scalar");
    println!("ports are wider); ELZAR's instruction increase undercuts");
    println!("SWIFT-R on compute-heavy kernels (blackscholes, fluidanimate)");
    println!("but explodes on memory-heavy ones (smatch ~32x).");
}
