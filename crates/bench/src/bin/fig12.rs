//! Figure 12: overhead breakdown by successively disabling ELZAR's checks
//! (loads → +stores → +branches → all), at the peak thread count.

use elzar::{normalized_runtime, ArtifactSet, CheckConfig, Config, Mode};
use elzar_bench::{banner, max_threads, mean, run_artifact, scale_from_env};
use elzar_workloads::{all_workloads, short_name};

fn main() {
    let t = max_threads();
    banner("Figure 12", "check-cost breakdown (checks disabled cumulatively)");
    let scale = scale_from_env();
    let set = ArtifactSet::new();
    let configs: Vec<(&str, CheckConfig)> = vec![
        ("all", CheckConfig::all()),
        ("no-loads", CheckConfig { loads: false, ..CheckConfig::all() }),
        ("+no-stores", CheckConfig { loads: false, stores: false, ..CheckConfig::all() }),
        ("+no-branches", CheckConfig { loads: false, stores: false, branches: false, ..CheckConfig::all() }),
        ("none", CheckConfig::none()),
    ];
    print!("{:<12}", "benchmark");
    for (name, _) in &configs {
        print!(" {:>12}", name);
    }
    println!("   ({t} threads)");
    let mut cols: Vec<Vec<f64>> = vec![vec![]; configs.len()];
    for w in all_workloads() {
        let built = w.build(scale);
        let native = set.get_or_build(w.name(), &Mode::Native, || built.module.clone());
        let rn = run_artifact(&native, &built.input, t);
        print!("{:<12}", short_name(w.name()));
        for (k, (_, checks)) in configs.iter().enumerate() {
            let mode = Mode::Elzar(Config { checks: *checks, ..Config::default() });
            let a = set.get_or_build(w.name(), &mode, || built.module.clone());
            let r = run_artifact(&a, &built.input, t);
            let o = normalized_runtime(&r, &rn);
            cols[k].push(o);
            print!(" {:>11.2}x", o);
        }
        println!();
    }
    print!("{:<12}", "mean");
    for col in &cols {
        print!(" {:>11.2}x", mean(col));
    }
    println!();
    println!();
    println!("Paper shape: disabling load+store checks cuts the mean from ~4.2x");
    println!("to ~2.7x (store checks cost more than load checks); branch checks");
    println!("cost almost nothing; all-disabled still ~2.6x over native.");
}
