//! Observability overhead and determinism harness: the cost of the
//! virtual-time tracer measured like any other perf number. Writes
//! `BENCH_obs.json` plus one sample Perfetto-loadable trace
//! (`trace_serve_failover.json`) in the current directory.
//!
//! Three sections:
//!
//! 1. **Overhead** — every service served twice with identical
//!    configuration except `trace_events` (0 vs a deep ring), wall
//!    clock compared over repeated runs: the tracer must stay under a
//!    few percent, and with tracing *off* the report is asserted
//!    byte-identical in every behavioral field (outcomes, digest,
//!    histogram, makespan) — recording can never feed back into
//!    virtual time;
//! 2. **Ledger** — a crash-storm run per service with the full
//!    cycle-accounting breakdown; the conservation invariant
//!    (`foreground categories == lifetime cycles`, per shard) is
//!    checked inside report merging on every run this harness does;
//! 3. **Trace determinism** — a failover + compaction storm traced at
//!    1 and 4 workers; the canonical byte serialization must be
//!    bit-identical.
//!
//! Knobs: `ELZAR_SCALE` (service problem size), `ELZAR_OBS_REPS`
//! (wall-clock repetitions per cell, default 5).

use elzar::{Artifact, Mode};
use elzar_bench::report::{chrome_trace, write_report, Json};
use elzar_bench::{banner, scale_from_env};
use elzar_serve::gen::rescale_gaps;
use elzar_serve::{serve_stream, Category, ServeConfig, ServeReport, Service};
use std::time::Instant;

/// Ring depth for tracing-on cells: deep enough that nothing drops on
/// these streams, so the canonical trace covers the whole run.
const TRACE_DEPTH: usize = 1 << 14;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// The storm the failover differential suite uses: dense SEUs so
/// recovery, promotion and divergence probes all appear in the trace.
fn storm_cfg() -> ServeConfig {
    ServeConfig {
        shards: 2,
        workers: 2,
        batch_size: 8,
        snapshot_interval: 16,
        requests: 360,
        seed: 0xFA11_0EE5,
        fault_rate_ppm: 300_000,
        queue_capacity: 1 << 20,
        mean_gap_cycles: 300,
        ..Default::default()
    }
}

/// Everything that must not move when tracing toggles: the behavioral
/// surface of the report.
fn assert_behavior_eq(tag: &str, a: &ServeReport, b: &ServeReport) {
    assert_eq!(a.served, b.served, "{tag}: served diverged");
    assert_eq!(a.rejected, b.rejected, "{tag}: rejected diverged");
    assert_eq!(a.injected, b.injected, "{tag}: injections diverged");
    assert_eq!(a.outcomes, b.outcomes, "{tag}: outcome histogram diverged");
    assert_eq!(a.restarts, b.restarts, "{tag}: restarts diverged");
    assert_eq!(a.hist, b.hist, "{tag}: latency histogram diverged");
    assert_eq!(a.makespan_cycles, b.makespan_cycles, "{tag}: makespan diverged");
    assert_eq!(a.ledger, b.ledger, "{tag}: cycle ledger diverged");
    assert_eq!(a.table_digest, b.table_digest, "{tag}: final resident state diverged");
}

/// Median wall-clock seconds of `reps` runs of `f` (each rep re-serves
/// the whole stream).
fn median_secs(reps: u64, mut f: impl FnMut() -> ServeReport) -> (f64, ServeReport) {
    let mut times: Vec<f64> = Vec::new();
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = f();
        times.push(t0.elapsed().as_secs_f64());
        last = Some(r);
    }
    times.sort_by(|x, y| x.partial_cmp(y).expect("no NaN timings"));
    (times[times.len() / 2], last.expect("at least one rep"))
}

fn ledger_json(r: &ServeReport) -> Json {
    let mut j = Json::obj();
    for c in Category::ALL {
        j = j.field(c.label(), Json::uint(r.ledger.get(c)));
    }
    j
}

fn main() {
    banner("fig_obs", "observability: tracer overhead, cycle ledger, trace determinism");
    let scale = scale_from_env();
    let reps = env_u64("ELZAR_OBS_REPS", 5);
    let cycles_per_us = (elzar_apps::FREQ_HZ / 1e6) as u64;

    // ---- Section 1: tracing-off vs tracing-on overhead ----------------
    println!("\n-- tracer overhead (off vs on, {reps} reps, median wall clock) --");
    let mut overhead_rows = Vec::new();
    for service in Service::all() {
        let app = service.app(scale);
        let artifact = Artifact::build(&app.module, &Mode::elzar_default());
        let cfg = storm_cfg();
        let stream = service.stream(&app, &cfg);
        // One untimed warm-up so the first timed cell doesn't pay the
        // cold caches alone.
        let _ = serve_stream(artifact.program(), &app, &stream, &cfg);
        let (t_off, r_off) = median_secs(reps, || serve_stream(artifact.program(), &app, &stream, &cfg));
        let on_cfg = ServeConfig { trace_events: TRACE_DEPTH, ..cfg.clone() };
        let (t_on, r_on) = median_secs(reps, || serve_stream(artifact.program(), &app, &stream, &on_cfg));
        assert_behavior_eq(service.label(), &r_off, &r_on);
        assert!(r_off.trace.is_empty(), "{}: tracing off must record nothing", service.label());
        assert!(!r_on.trace.is_empty(), "{}: tracing on recorded nothing", service.label());
        let overhead_pct = (t_on / t_off - 1.0) * 100.0;
        println!(
            "{:<12} off={:.4}s on={:.4}s overhead={:+.2}% events={} dropped={}",
            service.label(),
            t_off,
            t_on,
            overhead_pct,
            r_on.trace.len(),
            r_on.trace.dropped_events
        );
        overhead_rows.push(
            Json::obj()
                .field("service", Json::str(service.label()))
                .field("off_secs", Json::num(t_off, 6))
                .field("on_secs", Json::num(t_on, 6))
                .field("overhead_pct", Json::num(overhead_pct, 2))
                .field("trace_events", Json::uint(r_on.trace.len() as u64))
                .field("dropped_events", Json::uint(r_on.trace.dropped_events))
                .field("behavioral_delta", Json::uint(0)),
        );
    }

    // ---- Section 2: cycle-accounting ledger ---------------------------
    println!("\n-- cycle ledger (crash storm, conservation checked per shard) --");
    let mut ledger_rows = Vec::new();
    for service in Service::all() {
        let app = service.app(scale);
        let artifact = Artifact::build(&app.module, &Mode::elzar_default());
        let cfg = ServeConfig { replicas: true, ..storm_cfg() };
        let stream = service.stream(&app, &cfg);
        let r = serve_stream(artifact.program(), &app, &stream, &cfg);
        let lifetime: u64 = r.shards.iter().map(|s| s.lifetime_cycles).sum();
        println!(
            "{:<12} lifetime={} execute={} downtime={} idle={} availability={:.6}",
            service.label(),
            lifetime,
            r.ledger.get(Category::Execute),
            r.downtime_cycles(),
            r.ledger.get(Category::Idle),
            r.availability()
        );
        ledger_rows.push(
            Json::obj()
                .field("service", Json::str(service.label()))
                .field("lifetime_cycles", Json::uint(lifetime))
                .field("foreground_cycles", Json::uint(r.ledger.foreground_total()))
                .field("background_cycles", Json::uint(r.ledger.background_total()))
                .field("availability", Json::num(r.availability(), 6))
                .field("cells", ledger_json(&r)),
        );
    }

    // ---- Section 3: trace determinism across worker counts ------------
    println!("\n-- trace determinism (failover + compaction storm, w1 vs w4) --");
    let service = Service::KvA;
    let app = service.app(scale);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let base = ServeConfig {
        replicas: true,
        adaptive_shards: true,
        compaction: true,
        shards: 1,
        shards_max: 4,
        trace_events: TRACE_DEPTH,
        ..storm_cfg()
    };
    let mut stream = service.stream(&app, &base);
    let from = stream.len() * 2 / 3;
    rescale_gaps(&mut stream, from, 30, 1);
    let w1 = serve_stream(artifact.program(), &app, &stream, &ServeConfig { workers: 1, ..base.clone() });
    let w4 = serve_stream(artifact.program(), &app, &stream, &ServeConfig { workers: 4, ..base.clone() });
    let bytes1 = w1.trace.canonical_bytes();
    let bytes4 = w4.trace.canonical_bytes();
    assert_eq!(bytes1, bytes4, "canonical trace bytes diverged across worker counts");
    println!(
        "canonical trace: {} events, {} bytes, bit-identical across 1 and 4 workers",
        w1.trace.len(),
        bytes1.len()
    );

    // The sample artifact CI uploads: a Perfetto-loadable failover trace.
    let sample = chrome_trace(&w4.trace, cycles_per_us);
    std::fs::write("trace_serve_failover.json", sample.to_pretty())
        .unwrap_or_else(|e| panic!("write trace_serve_failover.json: {e}"));
    println!("wrote trace_serve_failover.json ({} events)", w4.trace.len());

    let report = Json::obj()
        .field("bench", Json::str("obs"))
        .field("scale", Json::str(format!("{scale:?}")))
        .field("reps", Json::uint(reps))
        .field("trace_depth", Json::uint(TRACE_DEPTH as u64))
        .field("overhead", Json::Arr(overhead_rows))
        .field("ledger", Json::Arr(ledger_rows))
        .field(
            "determinism",
            Json::obj()
                .field("service", Json::str(service.label()))
                .field("events", Json::uint(w1.trace.len() as u64))
                .field("canonical_bytes", Json::uint(bytes1.len() as u64))
                .field("workers_compared", Json::str("1 vs 4"))
                .field("bit_identical", Json::uint(1)),
        );
    write_report("BENCH_obs.json", &report);
}
