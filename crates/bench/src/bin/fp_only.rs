//! §V-B "Floating point-only protection": ELZAR restricted to FP data on
//! the three FP-heavy PARSEC benchmarks.

use elzar::{normalized_runtime, Mode};
use elzar_bench::{banner, measure, scale_from_env, thread_sweep};
use elzar_workloads::{by_name, short_name, Params};

fn main() {
    banner("§V-B", "FP-only protection overhead vs native");
    let scale = scale_from_env();
    let sweep = thread_sweep();
    print!("{:<14}", "benchmark");
    for t in &sweep {
        print!(" {:>7}T", t);
    }
    println!();
    for name in ["blackscholes", "fluidanimate", "swaptions"] {
        let w = by_name(name).expect("known");
        print!("{:<14}", short_name(name));
        for t in &sweep {
            let built = w.build(&Params::new(*t, scale));
            let native = measure(&built.module, &Mode::Native, &built.input);
            let fp = measure(&built.module, &Mode::elzar_fp_only(), &built.input);
            print!(" {:>+6.0}%", (normalized_runtime(&fp, &native) - 1.0) * 100.0);
        }
        println!();
    }
    println!();
    println!("Paper: blackscholes 9-35%, fluidanimate 10-18%, swaptions");
    println!("40-60% over native — hardening floats alone is cheap.");
}
