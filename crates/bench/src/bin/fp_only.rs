//! §V-B "Floating point-only protection": ELZAR restricted to FP data on
//! the three FP-heavy PARSEC benchmarks.

use elzar::{normalized_runtime, ArtifactSet, Mode};
use elzar_bench::{banner, run_artifact, scale_from_env, thread_sweep};
use elzar_workloads::{by_name, short_name};

fn main() {
    banner("§V-B", "FP-only protection overhead vs native");
    let scale = scale_from_env();
    let sweep = thread_sweep();
    let set = ArtifactSet::new();
    print!("{:<14}", "benchmark");
    for t in &sweep {
        print!(" {:>7}T", t);
    }
    println!();
    for name in ["blackscholes", "fluidanimate", "swaptions"] {
        let w = by_name(name).expect("known");
        let built = w.build(scale);
        let native = set.get_or_build(name, &Mode::Native, || built.module.clone());
        let fp = set.get_or_build(name, &Mode::elzar_fp_only(), || built.module.clone());
        print!("{:<14}", short_name(name));
        for t in &sweep {
            let rn = run_artifact(&native, &built.input, *t);
            let rf = run_artifact(&fp, &built.input, *t);
            print!(" {:>+6.0}%", (normalized_runtime(&rf, &rn) - 1.0) * 100.0);
        }
        println!();
    }
    println!();
    println!("Paper: blackscholes 9-35%, fluidanimate 10-18%, swaptions");
    println!("40-60% over native — hardening floats alone is cheap.");
}
