//! Figure 13: fault-injection outcomes for native vs ELZAR builds
//! (2 threads, smallest inputs — §V-A/§V-C).
//!
//! Artifact-centric campaigns: each `(benchmark, version)` is lowered
//! exactly once (asserted via `elzar::build_count`) and its campaign
//! classifies against the artifact's *cached* golden run — the
//! reference execution is computed once per artifact, never per
//! campaign invocation.

use elzar::{ArtifactSet, Mode};
use elzar_bench::{assert_builds, banner, campaign_config, campaign_workers_from_env, fi_runs_from_env};
use elzar_fault::{Outcome, OutcomeClass};
use elzar_workloads::{by_name, short_name, Scale};

/// The twelve benchmarks of the paper's Figure 13 (mmul and fluidanimate
/// were not fault-injected in the paper either).
const FI_BENCHES: [&str; 12] = [
    "histogram",
    "kmeans",
    "linear_regression",
    "pca",
    "string_match",
    "word_count",
    "blackscholes",
    "dedup",
    "ferret",
    "streamcluster",
    "swaptions",
    "x264",
];

/// The paper injected at 2 simulated threads.
const FI_THREADS: u32 = 2;

fn main() {
    let runs = fi_runs_from_env();
    banner("Figure 13", "fault-injection outcomes, native (N) vs ELZAR (E)");
    let builds_at_start = elzar::build_count();
    println!(
        "{runs} injections per benchmark and version (paper: 2500, 2 threads), {} campaign workers",
        campaign_workers_from_env()
    );
    println!(
        "{:<10} {:>3} {:>8} {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "bench", "ver", "hang", "os-det", "corr", "masked", "SDC", "crashed", "correct", "corrupt"
    );
    let set = ArtifactSet::new();
    let mut sums: std::collections::HashMap<(&str, OutcomeClass), f64> = Default::default();
    for name in FI_BENCHES {
        let w = by_name(name).expect("known benchmark");
        let built = w.build(Scale::Tiny);
        for (ver, mode) in [("N", Mode::NativeNoSimd), ("E", Mode::elzar_default())] {
            let artifact = set.get_or_build(name, &mode, || built.module.clone());
            let cfg = campaign_config(runs, 0xF13 ^ runs as u64, FI_THREADS);
            let r = artifact.campaign(&built.input, &cfg);
            println!(
                "{:<10} {:>3} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% | {:>7.1}% {:>7.1}% {:>7.1}%",
                short_name(name),
                ver,
                r.rate(Outcome::Hang) * 100.0,
                r.rate(Outcome::OsDetected) * 100.0,
                r.rate(Outcome::ElzarCorrected) * 100.0,
                r.rate(Outcome::Masked) * 100.0,
                r.rate(Outcome::Sdc) * 100.0,
                r.class_rate(OutcomeClass::Crashed) * 100.0,
                r.class_rate(OutcomeClass::Correct) * 100.0,
                r.class_rate(OutcomeClass::Corrupted) * 100.0,
            );
            for c in [OutcomeClass::Crashed, OutcomeClass::Correct, OutcomeClass::Corrupted] {
                *sums.entry((ver, c)).or_default() += r.class_rate(c);
            }
        }
    }
    let n = FI_BENCHES.len() as f64;
    println!("--------------------------------------------------------------");
    for ver in ["N", "E"] {
        println!(
            "{:<10} {:>3} mean: crashed {:>5.1}%  correct {:>5.1}%  corrupted {:>5.1}%",
            "mean",
            ver,
            sums[&(ver, OutcomeClass::Crashed)] / n * 100.0,
            sums[&(ver, OutcomeClass::Correct)] / n * 100.0,
            sums[&(ver, OutcomeClass::Corrupted)] / n * 100.0,
        );
    }
    println!();
    assert_builds(builds_at_start, FI_BENCHES.len() as u64 * 2, "fig13");
    println!();
    println!("Paper shape: ELZAR cuts SDC from ~27% to ~5% and crashes from");
    println!("~18% to ~6%; histogram keeps the worst residual SDC (address");
    println!("extraction window, §V-C); blackscholes is near zero.");
}
