//! Figure 14: ELZAR vs the SWIFT-R instruction-triplication baseline at
//! the peak thread count, with the per-benchmark delta annotations.

use elzar::{normalized_runtime, ArtifactSet, Mode};
use elzar_bench::{banner, max_threads, mean, run_artifact, scale_from_env};
use elzar_workloads::{all_workloads, short_name};

fn main() {
    let t = max_threads();
    banner("Figure 14", "ELZAR vs SWIFT-R normalized runtime");
    let scale = scale_from_env();
    let set = ArtifactSet::new();
    println!("{:<12} {:>10} {:>10} {:>12}   ({t} threads)", "benchmark", "SWIFT-R", "ELZAR", "ELZAR vs SR");
    let (mut es, mut ss) = (vec![], vec![]);
    for w in all_workloads() {
        let built = w.build(scale);
        let native = set.get_or_build(w.name(), &Mode::Native, || built.module.clone());
        let swiftr = set.get_or_build(w.name(), &Mode::SwiftR, || built.module.clone());
        let elzar = set.get_or_build(w.name(), &Mode::elzar_default(), || built.module.clone());
        let rn = run_artifact(&native, &built.input, t);
        let sw = run_artifact(&swiftr, &built.input, t);
        let el = run_artifact(&elzar, &built.input, t);
        let os = normalized_runtime(&sw, &rn);
        let oe = normalized_runtime(&el, &rn);
        es.push(oe);
        ss.push(os);
        println!(
            "{:<12} {:>9.2}x {:>9.2}x {:>+11.0}%",
            short_name(w.name()),
            os,
            oe,
            (oe / os - 1.0) * 100.0
        );
    }
    println!(
        "{:<12} {:>9.2}x {:>9.2}x {:>+11.0}%",
        "mean",
        mean(&ss),
        mean(&es),
        (mean(&es) / mean(&ss) - 1.0) * 100.0
    );
    println!();
    println!("Paper shape: SWIFT-R ~2.5x vs ELZAR ~3.7x mean (+46%); ELZAR");
    println!("wins on kmeans, blackscholes, fluidanimate (FP-heavy, few");
    println!("memory ops); loses badly on histogram/smatch/wc (memory-bound).");
}
