//! Figure 14: ELZAR vs the SWIFT-R instruction-triplication baseline at
//! the peak thread count, with the per-benchmark delta annotations.

use elzar::{normalized_runtime, Mode};
use elzar_bench::{banner, max_threads, mean, measure, scale_from_env};
use elzar_workloads::{all_workloads, short_name, Params};

fn main() {
    let t = max_threads();
    banner("Figure 14", "ELZAR vs SWIFT-R normalized runtime");
    let scale = scale_from_env();
    println!("{:<12} {:>10} {:>10} {:>12}   ({t} threads)", "benchmark", "SWIFT-R", "ELZAR", "ELZAR vs SR");
    let (mut es, mut ss) = (vec![], vec![]);
    for w in all_workloads() {
        let built = w.build(&Params::new(t, scale));
        let native = measure(&built.module, &Mode::Native, &built.input);
        let sw = measure(&built.module, &Mode::SwiftR, &built.input);
        let el = measure(&built.module, &Mode::elzar_default(), &built.input);
        let os = normalized_runtime(&sw, &native);
        let oe = normalized_runtime(&el, &native);
        es.push(oe);
        ss.push(os);
        println!(
            "{:<12} {:>9.2}x {:>9.2}x {:>+11.0}%",
            short_name(w.name()),
            os,
            oe,
            (oe / os - 1.0) * 100.0
        );
    }
    println!(
        "{:<12} {:>9.2}x {:>9.2}x {:>+11.0}%",
        "mean",
        mean(&ss),
        mean(&es),
        (mean(&es) / mean(&ss) - 1.0) * 100.0
    );
    println!();
    println!("Paper shape: SWIFT-R ~2.5x vs ELZAR ~3.7x mean (+46%); ELZAR");
    println!("wins on kmeans, blackscholes, fluidanimate (FP-heavy, few");
    println!("memory ops); loses badly on histogram/smatch/wc (memory-bound).");
}
