//! Figure 15: case-study throughput vs thread count, native and ELZAR,
//! with YCSB workloads A and D for the key-value store and the database.
//!
//! Apps are thread-count-agnostic, so each `(app, workload, mode)` is
//! built once and the whole thread sweep runs on the shared artifact.

use elzar::{ArtifactSet, Mode};
use elzar_apps::{throughput, App, AppParams, YcsbWorkload};
use elzar_bench::{banner, run_artifact, scale_from_env, thread_sweep};

fn main() {
    banner("Figure 15", "Memcached / SQLite3 / Apache throughput (ops/s)");
    let scale = scale_from_env();
    let sweep = thread_sweep();
    let set = ArtifactSet::new();
    for app in App::all() {
        let workloads: &[YcsbWorkload] = match app {
            App::Apache => &[YcsbWorkload::A],
            _ => &[YcsbWorkload::A, YcsbWorkload::D],
        };
        for w in workloads {
            let label = match app {
                App::Apache => app.name().to_string(),
                _ => format!("{} ({})", app.name(), w.label()),
            };
            println!("--- {label} ---");
            print!("{:<10}", "threads");
            for t in &sweep {
                print!(" {:>12}", t);
            }
            println!();
            let built = app.build(&AppParams::new(scale, *w));
            let key = format!("{}-{}", app.name(), w.label());
            let mut rows = vec![];
            for mode in [Mode::Native, Mode::elzar_default()] {
                let artifact = set.get_or_build(&key, &mode, || built.module.clone());
                let mut row = vec![];
                for t in &sweep {
                    let r = run_artifact(&artifact, &built.input, *t);
                    row.push(throughput(built.ops, r.cycles));
                }
                print!("{:<10}", mode.label());
                for v in &row {
                    print!(" {:>12.0}", v);
                }
                println!();
                rows.push(row);
            }
            print!("{:<10}", "ratio");
            for (n, e) in rows[0].iter().zip(&rows[1]) {
                print!(" {:>11.0}%", e / n * 100.0);
            }
            println!();
        }
    }
    println!();
    println!("Paper shape: memcached scales and ELZAR reaches 72-85% of");
    println!("native; SQLite3 throughput falls with threads (global lock)");
    println!("and ELZAR reaches only 20-30%; Apache stays ~85% (time spent");
    println!("in unhardened libraries).");
}
