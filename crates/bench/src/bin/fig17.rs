//! Figure 17: estimated ELZAR overhead under the §VII proposed AVX
//! changes. Reproduces both the paper's estimation methodology (ELZAR
//! relative to a dummy-wrapper "decelerated" native build) and the direct
//! measurement our simulator additionally allows (future-AVX ELZAR).

use elzar::{normalized_runtime, Mode};
use elzar_bench::{banner, max_threads, mean, measure, scale_from_env};
use elzar_workloads::{all_workloads, short_name, Params};

fn main() {
    let t = max_threads();
    banner("Figure 17", "ELZAR with proposed AVX extensions (estimate + direct)");
    let scale = scale_from_env();
    println!(
        "{:<12} {:>10} {:>14} {:>14}   ({t} threads)",
        "benchmark", "ELZAR", "est. (decel)", "future-AVX"
    );
    let (mut cur, mut est, mut fut) = (vec![], vec![], vec![]);
    for w in all_workloads() {
        let built = w.build(&Params::new(t, scale));
        let native = measure(&built.module, &Mode::Native, &built.input);
        let decel = measure(&built.module, &Mode::DeceleratedNative, &built.input);
        let elz = measure(&built.module, &Mode::elzar_default(), &built.input);
        let favx = measure(&built.module, &Mode::elzar_future_avx(), &built.input);
        let oe = normalized_runtime(&elz, &native);
        // Paper methodology: ELZAR over the decelerated native build.
        let oest = elz.cycles as f64 / decel.cycles.max(1) as f64;
        let of = normalized_runtime(&favx, &native);
        cur.push(oe);
        est.push(oest);
        fut.push(of);
        println!("{:<12} {:>9.2}x {:>13.2}x {:>13.2}x", short_name(w.name()), oe, oest, of);
    }
    println!("{:<12} {:>9.2}x {:>13.2}x {:>13.2}x", "mean", mean(&cur), mean(&est), mean(&fut));
    println!();
    println!("Paper shape: the estimate drops the mean overhead to ~1.48x");
    println!("(many benchmarks 1.1-1.2x); our direct future-AVX mode should");
    println!("land in the same region, well below plain ELZAR.");
}
