//! Figure 17: estimated ELZAR overhead under the §VII proposed AVX
//! changes. Reproduces both the paper's estimation methodology (ELZAR
//! relative to a dummy-wrapper "decelerated" native build) and the direct
//! measurement our simulator additionally allows (future-AVX ELZAR).

use elzar::{normalized_runtime, ArtifactSet, Mode};
use elzar_bench::{banner, max_threads, mean, run_artifact, scale_from_env};
use elzar_workloads::{all_workloads, short_name};

fn main() {
    let t = max_threads();
    banner("Figure 17", "ELZAR with proposed AVX extensions (estimate + direct)");
    let scale = scale_from_env();
    let set = ArtifactSet::new();
    println!(
        "{:<12} {:>10} {:>14} {:>14}   ({t} threads)",
        "benchmark", "ELZAR", "est. (decel)", "future-AVX"
    );
    let (mut cur, mut est, mut fut) = (vec![], vec![], vec![]);
    for w in all_workloads() {
        let built = w.build(scale);
        let modes = [Mode::Native, Mode::DeceleratedNative, Mode::elzar_default(), Mode::elzar_future_avx()];
        let [native, decel, elz, favx] = modes.map(|mode| {
            let a = set.get_or_build(w.name(), &mode, || built.module.clone());
            run_artifact(&a, &built.input, t)
        });
        let oe = normalized_runtime(&elz, &native);
        // Paper methodology: ELZAR over the decelerated native build.
        let oest = elz.cycles as f64 / decel.cycles.max(1) as f64;
        let of = normalized_runtime(&favx, &native);
        cur.push(oe);
        est.push(oest);
        fut.push(of);
        println!("{:<12} {:>9.2}x {:>13.2}x {:>13.2}x", short_name(w.name()), oe, oest, of);
    }
    println!("{:<12} {:>9.2}x {:>13.2}x {:>13.2}x", "mean", mean(&cur), mean(&est), mean(&fut));
    println!();
    println!("Paper shape: the estimate drops the mean overhead to ~1.48x");
    println!("(many benchmarks 1.1-1.2x); our direct future-AVX mode should");
    println!("land in the same region, well below plain ELZAR.");
}
