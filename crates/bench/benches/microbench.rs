//! Microbenchmarks for the reproduction's own infrastructure: YMM lane
//! operations, the cache simulator, the hardening passes, and
//! interpreter throughput under each execution mode.
//!
//! Self-contained harness (`harness = false`, no external crates):
//! each benchmark is warmed up, then timed over enough iterations to
//! exceed a minimum measurement window, and reported as ns/op. Run
//! with `cargo bench -p elzar-bench`.

use elzar::{Artifact, Mode};
use elzar_avx::{LaneWidth, Ymm};
use elzar_cpu::{CoreCaches, SharedL3};
use elzar_ir::builder::{c64, FuncBuilder};
use elzar_ir::{Module, Ty};
use elzar_vm::MachineConfig;
use elzar_workloads::{by_name, Scale};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Time `f` and print ns/op. Scales iteration count until the
/// measurement window exceeds ~200 ms.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    // Warm-up.
    for _ in 0..3 {
        black_box(f());
    }
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t0.elapsed();
        if dt >= Duration::from_millis(200) || iters >= 1 << 30 {
            let ns = dt.as_nanos() as f64 / iters as f64;
            if ns >= 1e6 {
                println!("{name:<40} {:>12.3} ms/op   ({iters} iters)", ns / 1e6);
            } else {
                println!("{name:<40} {ns:>12.1} ns/op   ({iters} iters)");
            }
            return;
        }
        let target = Duration::from_millis(250).as_nanos() as u64;
        let scale = (target / dt.as_nanos().max(1) as u64).clamp(2, 1024);
        iters = iters.saturating_mul(scale);
    }
}

fn kernel() -> Module {
    let mut m = Module::new("bench");
    let mut b = FuncBuilder::new("main", vec![], Ty::I64);
    let acc = b.alloca(Ty::I64, c64(1));
    b.store(Ty::I64, c64(0), acc);
    b.counted_loop(c64(0), c64(2_000), |b, i| {
        let v = b.load(Ty::I64, acc);
        let x = b.mul(v, c64(3));
        let y = b.add(x, i);
        b.store(Ty::I64, y, acc);
    });
    let v = b.load(Ty::I64, acc);
    b.ret(v);
    m.add_func(b.finish());
    m
}

fn bench_ymm() {
    let x = Ymm::splat(LaneWidth::B64, 4, 7);
    let y = Ymm::splat(LaneWidth::B64, 4, 9);
    bench("ymm/map2_add_4x64", || x.map2(&y, LaneWidth::B64, 4, |a, b| a.wrapping_add(b)));
    let v = Ymm::splat(LaneWidth::B64, 4, 0xABCDEF);
    bench("ymm/figure8_check", || v.xor(&v.rotate_lanes(LaneWidth::B64, 4)).ptest(LaneWidth::B64, 4));
}

fn bench_cache() {
    let mut l3 = SharedL3::haswell();
    let mut cc = CoreCaches::haswell();
    let mut i = 0u64;
    bench("cache/l1_hit_stream", move || {
        i = (i + 64) & 0x3FFF;
        cc.access(i, &mut l3)
    });
}

fn bench_passes() {
    let m = kernel();
    bench("passes/prepare_elzar", || elzar::prepare(&m, &Mode::elzar_default()));
    bench("passes/prepare_swiftr", || elzar::prepare(&m, &Mode::SwiftR));
}

fn bench_interp() {
    for mode in [Mode::NativeNoSimd, Mode::elzar_default(), Mode::SwiftR] {
        let artifact = Artifact::build(&kernel(), &mode);
        bench(&format!("interp/kernel_{}", mode.label()), || artifact.run(&[], MachineConfig::default()));
    }
    let w = by_name("histogram").expect("known");
    let built = w.build(Scale::Tiny);
    let artifact = Artifact::build(&built.module, &Mode::elzar_default());
    bench("interp/histogram_tiny_elzar", || artifact.run(&built.input, MachineConfig::default()));
}

fn main() {
    println!("elzar microbenchmarks (self-contained harness)");
    println!("----------------------------------------------");
    bench_ymm();
    bench_cache();
    bench_passes();
    bench_interp();
}
