//! Criterion microbenchmarks for the reproduction's own infrastructure:
//! YMM lane operations, the cache simulator, the hardening passes, and
//! interpreter throughput under each execution mode.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use elzar::{build, prepare, Mode};
use elzar_avx::{LaneWidth, Ymm};
use elzar_cpu::{CoreCaches, SharedL3};
use elzar_ir::builder::{c64, FuncBuilder};
use elzar_ir::{Module, Ty};
use elzar_vm::{run_program, MachineConfig};
use elzar_workloads::{by_name, Params, Scale};

fn kernel() -> Module {
    let mut m = Module::new("bench");
    let mut b = FuncBuilder::new("main", vec![], Ty::I64);
    let acc = b.alloca(Ty::I64, c64(1));
    b.store(Ty::I64, c64(0), acc);
    b.counted_loop(c64(0), c64(2_000), |b, i| {
        let v = b.load(Ty::I64, acc);
        let x = b.mul(v, c64(3));
        let y = b.add(x, i);
        b.store(Ty::I64, y, acc);
    });
    let v = b.load(Ty::I64, acc);
    b.ret(v);
    m.add_func(b.finish());
    m
}

fn bench_ymm(c: &mut Criterion) {
    let mut g = c.benchmark_group("ymm");
    g.bench_function("map2_add_4x64", |b| {
        let x = Ymm::splat(LaneWidth::B64, 4, 7);
        let y = Ymm::splat(LaneWidth::B64, 4, 9);
        b.iter(|| std::hint::black_box(x.map2(&y, LaneWidth::B64, 4, |a, b| a.wrapping_add(b))))
    });
    g.bench_function("figure8_check", |b| {
        let x = Ymm::splat(LaneWidth::B64, 4, 0xABCDEF);
        b.iter(|| {
            let r = x.xor(&x.rotate_lanes(LaneWidth::B64, 4));
            std::hint::black_box(r.ptest(LaneWidth::B64, 4))
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/l1_hit_access", |b| {
        let mut l3 = SharedL3::haswell();
        let mut cc = CoreCaches::haswell();
        cc.access(0x1000, &mut l3);
        b.iter(|| std::hint::black_box(cc.access(0x1000, &mut l3)))
    });
}

fn bench_passes(c: &mut Criterion) {
    let m = kernel();
    let mut g = c.benchmark_group("passes");
    g.bench_function("elzar_harden", |b| {
        b.iter_batched(|| m.clone(), |m| prepare(&m, &Mode::elzar_default()), BatchSize::SmallInput)
    });
    g.bench_function("swiftr_harden", |b| {
        b.iter_batched(|| m.clone(), |m| prepare(&m, &Mode::SwiftR), BatchSize::SmallInput)
    });
    g.finish();
}

fn bench_interp(c: &mut Criterion) {
    let m = kernel();
    let mut g = c.benchmark_group("interp");
    g.sample_size(20);
    for mode in [Mode::NativeNoSimd, Mode::elzar_default(), Mode::SwiftR] {
        let prog = build(&m, &mode);
        g.bench_function(mode.label(), |b| {
            b.iter(|| std::hint::black_box(run_program(&prog, "main", &[], MachineConfig::default())))
        });
    }
    g.finish();
}

fn bench_workload_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.sample_size(10);
    let w = by_name("histogram").expect("known");
    let built = w.build(&Params::new(1, Scale::Tiny));
    let prog = build(&built.module, &Mode::elzar_default());
    g.bench_function("histogram_tiny_elzar", |b| {
        b.iter(|| {
            std::hint::black_box(run_program(&prog, "main", &built.input, MachineConfig::default()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ymm, bench_cache, bench_passes, bench_interp, bench_workload_pipeline);
criterion_main!(benches);
