//! Instruction set of the ELZAR IR.
//!
//! The set mirrors what the paper's LLVM pass sees after `scalarrepl`:
//! scalar/vector arithmetic, comparisons producing AVX-style lane masks,
//! memory operations, atomics, calls, and the handful of vector shuffles
//! (`extract`/`insert`/`shuffle`/`splat`/`ptest`) that ELZAR's
//! transformation emits. `gather`/`scatter` model the §VII proposed
//! extensions.

use crate::types::Ty;
use crate::value::{BlockId, Const, FuncId, Operand};
use std::fmt;

/// Binary arithmetic / logic operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Integer add (wrapping).
    Add,
    /// Integer subtract (wrapping).
    Sub,
    /// Integer multiply (wrapping, low half).
    Mul,
    /// Unsigned divide. Division by zero traps.
    UDiv,
    /// Signed divide. Division by zero or `MIN / -1` traps.
    SDiv,
    /// Unsigned remainder.
    URem,
    /// Signed remainder.
    SRem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (shift amount taken modulo width).
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide.
    FDiv,
    /// Unsigned integer minimum (AVX `pminu`).
    UMin,
    /// Unsigned integer maximum (AVX `pmaxu`).
    UMax,
    /// Signed integer minimum.
    SMin,
    /// Signed integer maximum.
    SMax,
    /// Float minimum.
    FMin,
    /// Float maximum.
    FMax,
}

impl BinOp {
    /// True for the float-domain operations.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv | BinOp::FMin | BinOp::FMax)
    }

    /// True for integer division/remainder — the operations AVX lacks
    /// (§II-C), which the backend legalizes to scalar sequences.
    pub fn is_int_div(self) -> bool {
        matches!(self, BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem)
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::UDiv => "udiv",
            BinOp::SDiv => "sdiv",
            BinOp::URem => "urem",
            BinOp::SRem => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
            BinOp::UMin => "umin",
            BinOp::UMax => "umax",
            BinOp::SMin => "smin",
            BinOp::SMax => "smax",
            BinOp::FMin => "fmin",
            BinOp::FMax => "fmax",
        }
    }
}

/// Comparison predicates (integer unsigned/signed and ordered float).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned greater-or-equal.
    Uge,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
    /// Float ordered equal.
    FOeq,
    /// Float ordered not-equal.
    FOne,
    /// Float ordered less-than.
    FOlt,
    /// Float ordered less-or-equal.
    FOle,
    /// Float ordered greater-than.
    FOgt,
    /// Float ordered greater-or-equal.
    FOge,
}

impl CmpPred {
    /// True for the float predicates.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            CmpPred::FOeq | CmpPred::FOne | CmpPred::FOlt | CmpPred::FOle | CmpPred::FOgt | CmpPred::FOge
        )
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Ult => "ult",
            CmpPred::Ule => "ule",
            CmpPred::Ugt => "ugt",
            CmpPred::Uge => "uge",
            CmpPred::Slt => "slt",
            CmpPred::Sle => "sle",
            CmpPred::Sgt => "sgt",
            CmpPred::Sge => "sge",
            CmpPred::FOeq => "foeq",
            CmpPred::FOne => "fone",
            CmpPred::FOlt => "folt",
            CmpPred::FOle => "fole",
            CmpPred::FOgt => "fogt",
            CmpPred::FOge => "foge",
        }
    }
}

/// Cast operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CastOp {
    /// Integer truncation to a narrower width.
    Trunc,
    /// Zero extension to a wider width.
    ZExt,
    /// Sign extension to a wider width.
    SExt,
    /// `f64` → `f32`.
    FpTrunc,
    /// `f32` → `f64`.
    FpExt,
    /// Float → signed int (toward zero, saturating at bounds).
    FpToSi,
    /// Float → unsigned int (toward zero, saturating at bounds).
    FpToUi,
    /// Signed int → float.
    SiToFp,
    /// Unsigned int → float.
    UiToFp,
    /// Reinterpret bits between same-width types.
    Bitcast,
    /// Pointer → `i64`.
    PtrToInt,
    /// `i64` → pointer.
    IntToPtr,
}

impl CastOp {
    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Trunc => "trunc",
            CastOp::ZExt => "zext",
            CastOp::SExt => "sext",
            CastOp::FpTrunc => "fptrunc",
            CastOp::FpExt => "fpext",
            CastOp::FpToSi => "fptosi",
            CastOp::FpToUi => "fptoui",
            CastOp::SiToFp => "sitofp",
            CastOp::UiToFp => "uitofp",
            CastOp::Bitcast => "bitcast",
            CastOp::PtrToInt => "ptrtoint",
            CastOp::IntToPtr => "inttoptr",
        }
    }
}

/// Atomic read-modify-write operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RmwOp {
    /// Atomic add; returns the old value.
    Add,
    /// Atomic subtract; returns the old value.
    Sub,
    /// Atomic and.
    And,
    /// Atomic or.
    Or,
    /// Atomic xor.
    Xor,
    /// Atomic exchange.
    Xchg,
    /// Atomic unsigned max.
    UMax,
    /// Atomic unsigned min.
    UMin,
}

/// Runtime builtins: the "unhardened" library surface (§IV-A — I/O, OS,
/// pthreads and parts of libm are deliberately not transformed by ELZAR).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Builtin {
    /// `spawn(func_ptr_index, arg) -> tid` — start a thread running
    /// module function `func_ptr_index` with one `i64` argument.
    Spawn,
    /// `join(tid) -> i64` — wait for a thread and get its return value.
    Join,
    /// `lock(addr)` — acquire a mutex word (models `pthread_mutex_lock`).
    Lock,
    /// `unlock(addr)` — release a mutex word.
    Unlock,
    /// `malloc(size) -> ptr` — heap allocation (bump allocator).
    Malloc,
    /// `free(ptr)` — release (no-op in the model, kept for fidelity).
    Free,
    /// `memcpy(dst, src, len)` — unhardened library copy.
    Memcpy,
    /// `memset(dst, byte, len)` — unhardened library fill.
    Memset,
    /// `memcmp(a, b, len) -> i64` — compares byte ranges.
    Memcmp,
    /// `output(ptr, len)` — append bytes to the program's observable
    /// output (what fault-injection compares against the golden run).
    Output,
    /// `output_i64(v)` — append a little-endian i64 to the output.
    OutputI64,
    /// `output_f64(v)` — append an f64's bits to the output.
    OutputF64,
    /// `sqrt(f64) -> f64` (libm).
    Sqrt,
    /// `exp(f64) -> f64` (libm).
    Exp,
    /// `log(f64) -> f64` (libm).
    Log,
    /// `pow(f64, f64) -> f64` (libm).
    Pow,
    /// `sin(f64) -> f64` (libm).
    Sin,
    /// `cos(f64) -> f64` (libm).
    Cos,
    /// `erf(f64) -> f64` (libm; used by blackscholes CNDF).
    Erf,
    /// `fabs(f64) -> f64` (libm).
    Fabs,
    /// `input_ptr() -> ptr` — base of the input data segment.
    InputPtr,
    /// `input_len() -> i64` — size of the input data segment in bytes.
    InputLen,
    /// `recover(vec) -> vec` — ELZAR's slow-path majority vote (§III-C
    /// step 3). Executed by the runtime; counts a correction. Traps with
    /// `Unrecoverable` on a 2+2 split under the extended policy.
    Recover,
    /// `heartbeat()` — cheap progress marker used by long-running servers
    /// (lets campaigns bound hangs).
    Heartbeat,
    /// `num_threads() -> i64` — the simulated worker-thread count the
    /// machine was configured with (`MachineConfig::threads`). Lets one
    /// lowered program serve a whole thread sweep: workloads spawn
    /// `num_threads()` workers instead of baking the count into the IR.
    NumThreads,
}

impl Builtin {
    /// Symbolic name used by the printer.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Spawn => "spawn",
            Builtin::Join => "join",
            Builtin::Lock => "lock",
            Builtin::Unlock => "unlock",
            Builtin::Malloc => "malloc",
            Builtin::Free => "free",
            Builtin::Memcpy => "memcpy",
            Builtin::Memset => "memset",
            Builtin::Memcmp => "memcmp",
            Builtin::Output => "output",
            Builtin::OutputI64 => "output_i64",
            Builtin::OutputF64 => "output_f64",
            Builtin::Sqrt => "sqrt",
            Builtin::Exp => "exp",
            Builtin::Log => "log",
            Builtin::Pow => "pow",
            Builtin::Sin => "sin",
            Builtin::Cos => "cos",
            Builtin::Erf => "erf",
            Builtin::Fabs => "fabs",
            Builtin::InputPtr => "input_ptr",
            Builtin::InputLen => "input_len",
            Builtin::Recover => "recover",
            Builtin::Heartbeat => "heartbeat",
            Builtin::NumThreads => "num_threads",
        }
    }
}

/// Call target: another IR function or a runtime builtin.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Callee {
    /// Direct call to a module function.
    Func(FuncId),
    /// Call into the unhardened runtime.
    Builtin(Builtin),
}

/// A non-terminator instruction.
///
/// Every instruction yields at most one SSA value; `Store`, `Scatter` and
/// `Fence` (and void calls) yield none.
#[derive(Clone, PartialEq, Debug)]
pub enum Inst {
    /// `dst = op ty a, b` — scalar or lane-wise vector arithmetic.
    Bin {
        /// Operation.
        op: BinOp,
        /// Operand type (scalar or vector).
        ty: Ty,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = cmp pred ty a, b`.
    ///
    /// Scalar compare yields `i1`. Vector compare yields an AVX-style mask:
    /// a vector of the same element width whose lanes are all-ones (true)
    /// or all-zeros (false) — exactly `vpcmpeq`/`vcmpps` semantics (§II-C).
    Cmp {
        /// Predicate.
        pred: CmpPred,
        /// Operand type.
        ty: Ty,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = castop val to ty`.
    ///
    /// Vector casts operate lane-wise; when source and destination lane
    /// counts differ (replication widths differ per §III-D), the VM
    /// re-replicates lane 0 across the destination.
    Cast {
        /// Cast kind.
        op: CastOp,
        /// Destination type.
        to: Ty,
        /// Source value.
        val: Operand,
    },
    /// `dst = load ty, addr` — scalar load, or contiguous vector load when
    /// `ty` is a vector (used only by natively vectorized code, never by
    /// the ELZAR transformation, which loads through extracted scalars).
    Load {
        /// Loaded type.
        ty: Ty,
        /// Address operand (`ptr`).
        addr: Operand,
    },
    /// `store ty val, addr` — scalar or contiguous vector store.
    Store {
        /// Stored type.
        ty: Ty,
        /// Value to store.
        val: Operand,
        /// Address operand (`ptr`).
        addr: Operand,
    },
    /// `dst = gep base, index, scale` — address arithmetic
    /// `base + index * scale` yielding `ptr`.
    Gep {
        /// Base pointer.
        base: Operand,
        /// Element index (`i64`).
        index: Operand,
        /// Element size in bytes.
        scale: u32,
    },
    /// `dst = alloca ty, count` — reserve `count` elements of `ty` on the
    /// current thread's stack; yields `ptr`.
    Alloca {
        /// Element type.
        ty: Ty,
        /// Number of elements (`i64` operand, usually constant).
        count: Operand,
    },
    /// `dst = select cond, a, b`.
    ///
    /// With scalar `i1` cond this is a scalar select; with a vector mask
    /// cond it is an AVX blend (`vblendv`), lane-wise.
    Select {
        /// Condition (`i1` or a lane mask matching `ty`'s shape).
        cond: Operand,
        /// Result type.
        ty: Ty,
        /// Value if true.
        a: Operand,
        /// Value if false.
        b: Operand,
    },
    /// SSA phi node. Incoming operands, one per predecessor block.
    Phi {
        /// Result type.
        ty: Ty,
        /// `(pred_block, value)` pairs.
        incomings: Vec<(BlockId, Operand)>,
    },
    /// `dst = call callee(args)`.
    Call {
        /// Target.
        callee: Callee,
        /// Arguments.
        args: Vec<Operand>,
        /// Return type (`Void` for none).
        ret_ty: Ty,
    },
    /// `dst = extractelement vec, idx` — AVX `vextract`/`vpextr`.
    ExtractElement {
        /// Source vector.
        vec: Operand,
        /// Lane index (`i64`, usually constant).
        idx: Operand,
        /// Source vector type.
        ty: Ty,
    },
    /// `dst = insertelement vec, val, idx`.
    InsertElement {
        /// Source vector.
        vec: Operand,
        /// New lane value.
        val: Operand,
        /// Lane index.
        idx: Operand,
        /// Vector type.
        ty: Ty,
    },
    /// `dst = shufflevector a, mask` — AVX `vperm`/`vshuf`; lane `i` of the
    /// result is lane `mask[i]` of `a`.
    Shuffle {
        /// Source vector.
        a: Operand,
        /// Per-result-lane source indices.
        mask: Vec<u8>,
        /// Source vector type.
        ty: Ty,
    },
    /// `dst = splat val -> ty` — AVX `vbroadcast`: replicate a scalar
    /// across all lanes of the result vector type.
    Splat {
        /// Scalar to replicate.
        val: Operand,
        /// Result vector type.
        ty: Ty,
    },
    /// `dst = ptest mask` — AVX `vptest` folded with its flag decoding:
    /// yields `i8` 0 if all lanes are zero (all-false), 1 if all lanes are
    /// all-ones (all-true), 2 otherwise (mixed ⇒ a fault under ELZAR's
    /// mask discipline, Figure 9).
    Ptest {
        /// Mask vector (each lane all-ones or all-zeros in fault-free runs).
        mask: Operand,
        /// Mask vector type.
        ty: Ty,
    },
    /// `dst = gather ty, addrs` — proposed AVX extension (§VII-B): lane
    /// `i` of the result is loaded from lane `i` of the address vector.
    /// Majority-votes the address lanes in hardware (closes the §V-C
    /// window of vulnerability).
    Gather {
        /// Result vector type.
        ty: Ty,
        /// Address vector (`<N x ptr>` represented as i64 lanes).
        addrs: Operand,
    },
    /// `scatter val, addrs` — proposed AVX-512-style scatter with
    /// hardware majority voting of both value and address lanes (§VII-B).
    Scatter {
        /// Value vector.
        val: Operand,
        /// Address vector.
        addrs: Operand,
        /// Value vector type.
        ty: Ty,
    },
    /// `dst = atomicrmw op ty addr, val` — returns the old value.
    AtomicRmw {
        /// RMW operation.
        op: RmwOp,
        /// Scalar integer type.
        ty: Ty,
        /// Address.
        addr: Operand,
        /// Operand value.
        val: Operand,
    },
    /// `dst = cmpxchg ty addr, expected, new` — returns the old value.
    CmpXchg {
        /// Scalar integer type.
        ty: Ty,
        /// Address.
        addr: Operand,
        /// Expected value.
        expected: Operand,
        /// Replacement value.
        new: Operand,
    },
    /// Memory fence (sequentially consistent).
    Fence,
}

impl Inst {
    /// Result type of this instruction (`Void` when it yields no value).
    pub fn result_ty(&self) -> Ty {
        match self {
            Inst::Bin { ty, .. } => ty.clone(),
            Inst::Cmp { ty, .. } => {
                if ty.is_vector() {
                    // AVX mask: an integer vector of the operand's lane
                    // geometry (vcmppd writes all-ones/all-zeros bit
                    // patterns, best modeled as ints).
                    Ty::vec(Ty::Int(ty.elem().scalar_bits() as u8), ty.lanes())
                } else {
                    Ty::I1
                }
            }
            Inst::Cast { to, .. } => to.clone(),
            Inst::Load { ty, .. } => ty.clone(),
            Inst::Store { .. } | Inst::Scatter { .. } | Inst::Fence => Ty::Void,
            Inst::Gep { .. } | Inst::Alloca { .. } => Ty::Ptr,
            Inst::Select { ty, .. } => ty.clone(),
            Inst::Phi { ty, .. } => ty.clone(),
            Inst::Call { ret_ty, .. } => ret_ty.clone(),
            Inst::ExtractElement { ty, .. } => ty.elem().clone(),
            Inst::InsertElement { ty, .. } => ty.clone(),
            Inst::Shuffle { ty, mask, .. } => Ty::vec(ty.elem().clone(), mask.len() as u8),
            Inst::Splat { ty, .. } => ty.clone(),
            Inst::Ptest { .. } => Ty::I8,
            Inst::Gather { ty, .. } => ty.clone(),
            Inst::AtomicRmw { ty, .. } => ty.clone(),
            Inst::CmpXchg { ty, .. } => ty.clone(),
        }
    }

    /// Visit every operand.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                f(a);
                f(b);
            }
            Inst::Cast { val, .. } => f(val),
            Inst::Load { addr, .. } => f(addr),
            Inst::Store { val, addr, .. } => {
                f(val);
                f(addr);
            }
            Inst::Gep { base, index, .. } => {
                f(base);
                f(index);
            }
            Inst::Alloca { count, .. } => f(count),
            Inst::Select { cond, a, b, .. } => {
                f(cond);
                f(a);
                f(b);
            }
            Inst::Phi { incomings, .. } => {
                for (_, v) in incomings {
                    f(v);
                }
            }
            Inst::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Inst::ExtractElement { vec, idx, .. } => {
                f(vec);
                f(idx);
            }
            Inst::InsertElement { vec, val, idx, .. } => {
                f(vec);
                f(val);
                f(idx);
            }
            Inst::Shuffle { a, .. } => f(a),
            Inst::Splat { val, .. } => f(val),
            Inst::Ptest { mask, .. } => f(mask),
            Inst::Gather { addrs, .. } => f(addrs),
            Inst::Scatter { val, addrs, .. } => {
                f(val);
                f(addrs);
            }
            Inst::AtomicRmw { addr, val, .. } => {
                f(addr);
                f(val);
            }
            Inst::CmpXchg { addr, expected, new, .. } => {
                f(addr);
                f(expected);
                f(new);
            }
            Inst::Fence => {}
        }
    }

    /// Mutably visit every operand.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                f(a);
                f(b);
            }
            Inst::Cast { val, .. } => f(val),
            Inst::Load { addr, .. } => f(addr),
            Inst::Store { val, addr, .. } => {
                f(val);
                f(addr);
            }
            Inst::Gep { base, index, .. } => {
                f(base);
                f(index);
            }
            Inst::Alloca { count, .. } => f(count),
            Inst::Select { cond, a, b, .. } => {
                f(cond);
                f(a);
                f(b);
            }
            Inst::Phi { incomings, .. } => {
                for (_, v) in incomings {
                    f(v);
                }
            }
            Inst::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Inst::ExtractElement { vec, idx, .. } => {
                f(vec);
                f(idx);
            }
            Inst::InsertElement { vec, val, idx, .. } => {
                f(vec);
                f(val);
                f(idx);
            }
            Inst::Shuffle { a, .. } => f(a),
            Inst::Splat { val, .. } => f(val),
            Inst::Ptest { mask, .. } => f(mask),
            Inst::Gather { addrs, .. } => f(addrs),
            Inst::Scatter { val, addrs, .. } => {
                f(val);
                f(addrs);
            }
            Inst::AtomicRmw { addr, val, .. } => {
                f(addr);
                f(val);
            }
            Inst::CmpXchg { addr, expected, new, .. } => {
                f(addr);
                f(expected);
                f(new);
            }
            Inst::Fence => {}
        }
    }

    /// True for the paper's "synchronization instructions" (§III-B):
    /// memory operations, atomics and calls — the instructions ILR/ELZAR
    /// never replicate and must guard with checks.
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. }
                | Inst::Store { .. }
                | Inst::Gather { .. }
                | Inst::Scatter { .. }
                | Inst::AtomicRmw { .. }
                | Inst::CmpXchg { .. }
                | Inst::Call { .. }
                | Inst::Alloca { .. }
                | Inst::Fence
        )
    }
}

/// `ptest` flag decoding (result of [`Inst::Ptest`]).
pub mod ptest_flags {
    /// Every lane all-zeros (comparison false in all replicas).
    pub const ALL_FALSE: u64 = 0;
    /// Every lane all-ones (comparison true in all replicas).
    pub const ALL_TRUE: u64 = 1;
    /// Lanes disagree — a replica diverged; ELZAR jumps to recovery.
    pub const MIXED: u64 = 2;
}

/// Block terminators.
#[derive(Clone, PartialEq, Debug)]
pub enum Terminator {
    /// Unconditional branch.
    Br {
        /// Target block.
        target: BlockId,
    },
    /// Two-way branch on a scalar `i1`.
    CondBr {
        /// Condition.
        cond: Operand,
        /// Taken when true.
        then_bb: BlockId,
        /// Taken when false.
        else_bb: BlockId,
    },
    /// Three-way branch on a `ptest` result (Figure 9: `jne`/`je`/`ja`).
    PtestBr {
        /// The `i8` produced by [`Inst::Ptest`].
        flags: Operand,
        /// All lanes false.
        all_false: BlockId,
        /// All lanes true.
        all_true: BlockId,
        /// Mixed — fault detected.
        mixed: BlockId,
    },
    /// Function return.
    Ret {
        /// Returned value (`None` for void).
        val: Option<Operand>,
    },
    /// Marks unreachable control flow (reaching it traps).
    Unreachable,
}

impl Terminator {
    /// Successor blocks in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br { target } => vec![*target],
            Terminator::CondBr { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Terminator::PtestBr { all_false, all_true, mixed, .. } => {
                vec![*all_false, *all_true, *mixed]
            }
            Terminator::Ret { .. } | Terminator::Unreachable => vec![],
        }
    }

    /// Visit operands of the terminator.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Terminator::CondBr { cond, .. } => f(cond),
            Terminator::PtestBr { flags, .. } => f(flags),
            Terminator::Ret { val: Some(v) } => f(v),
            _ => {}
        }
    }

    /// Mutably visit operands of the terminator.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Terminator::CondBr { cond, .. } => f(cond),
            Terminator::PtestBr { flags, .. } => f(flags),
            Terminator::Ret { val: Some(v) } => f(v),
            _ => {}
        }
    }

    /// Replace block references according to `f`.
    pub fn retarget(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Br { target } => *target = f(*target),
            Terminator::CondBr { then_bb, else_bb, .. } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            Terminator::PtestBr { all_false, all_true, mixed, .. } => {
                *all_false = f(*all_false);
                *all_true = f(*all_true);
                *mixed = f(*mixed);
            }
            Terminator::Ret { .. } | Terminator::Unreachable => {}
        }
    }
}

/// Helper for building constant operands in instruction position.
pub fn imm(c: Const) -> Operand {
    Operand::Imm(c)
}

impl fmt::Display for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_classification_matches_paper() {
        // §III-B: loads, stores, atomics, calls are synchronization
        // instructions; plain arithmetic is not.
        let load = Inst::Load { ty: Ty::I64, addr: Operand::imm_i64(0) };
        let add = Inst::Bin { op: BinOp::Add, ty: Ty::I64, a: Operand::imm_i64(1), b: Operand::imm_i64(2) };
        assert!(load.is_sync());
        assert!(!add.is_sync());
        let call = Inst::Call { callee: Callee::Builtin(Builtin::Malloc), args: vec![], ret_ty: Ty::Ptr };
        assert!(call.is_sync());
    }

    #[test]
    fn vector_cmp_yields_mask_of_operand_shape() {
        let v4 = Ty::vec(Ty::I64, 4);
        let cmp =
            Inst::Cmp { pred: CmpPred::Eq, ty: v4.clone(), a: Operand::imm_i64(0), b: Operand::imm_i64(0) };
        assert_eq!(cmp.result_ty(), v4);
        let scmp =
            Inst::Cmp { pred: CmpPred::Eq, ty: Ty::I64, a: Operand::imm_i64(0), b: Operand::imm_i64(0) };
        assert_eq!(scmp.result_ty(), Ty::I1);
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::PtestBr {
            flags: Operand::imm_i64(0),
            all_false: BlockId(1),
            all_true: BlockId(2),
            mixed: BlockId(3),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2), BlockId(3)]);
        assert!(Terminator::Ret { val: None }.successors().is_empty());
    }

    #[test]
    fn operand_visitors_cover_all() {
        let i = Inst::CmpXchg {
            ty: Ty::I64,
            addr: Operand::imm_i64(8),
            expected: Operand::imm_i64(0),
            new: Operand::imm_i64(1),
        };
        let mut n = 0;
        i.for_each_operand(|_| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn int_div_flagged_missing_in_avx() {
        assert!(BinOp::UDiv.is_int_div());
        assert!(BinOp::SRem.is_int_div());
        assert!(!BinOp::FDiv.is_int_div());
        assert!(!BinOp::Mul.is_int_div());
    }
}
