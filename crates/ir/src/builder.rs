//! Ergonomic construction of IR functions.
//!
//! [`FuncBuilder`] wraps a [`Function`] with a current-insertion-point
//! cursor and typed helper methods, so workload kernels read close to the
//! pseudo-code in the paper's figures.

use crate::inst::{BinOp, Builtin, Callee, CastOp, CmpPred, Inst, RmwOp, Terminator};
use crate::module::{Function, VectorizeHint};
use crate::types::Ty;
use crate::value::{BlockId, Const, Operand, ValueId};

/// Builder for a single function.
#[derive(Debug)]
pub struct FuncBuilder {
    f: Function,
    cur: BlockId,
}

impl FuncBuilder {
    /// Start building a function; the cursor is on the entry block.
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret_ty: Ty) -> FuncBuilder {
        FuncBuilder { f: Function::new(name, params, ret_ty), cur: BlockId(0) }
    }

    /// Finish and return the function.
    ///
    /// # Panics
    /// Panics if any block still has the placeholder `Unreachable`
    /// terminator *and* contains instructions (likely a forgotten branch).
    pub fn finish(self) -> Function {
        self.f
    }

    /// The function under construction (read access).
    pub fn func(&self) -> &Function {
        &self.f
    }

    /// Mutable access for niche edits (phi fix-ups etc.).
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.f
    }

    /// Value id of parameter `n`.
    pub fn param(&self, n: usize) -> ValueId {
        self.f.param(n)
    }

    /// Create a new block.
    pub fn block(&mut self, name: impl Into<String>) -> BlockId {
        self.f.add_block(name)
    }

    /// Current insertion block.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    /// Move the cursor.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// Mark the loop headed by `header` as vectorizable with factor
    /// `width` (consumed by the Figure 1 native-SIMD pipeline).
    pub fn hint_vectorize(&mut self, header: BlockId, width: u8) {
        self.f.vector_hints.push(VectorizeHint { header, width });
    }

    /// Push a raw instruction at the cursor.
    pub fn push(&mut self, inst: Inst) -> Option<ValueId> {
        self.f.push_inst(self.cur, inst)
    }

    fn push_val(&mut self, inst: Inst) -> ValueId {
        self.f.push_inst(self.cur, inst).expect("instruction yields a value")
    }

    // ---- arithmetic ------------------------------------------------------

    /// Generic binary operation on operands of type `ty`.
    pub fn bin(&mut self, opn: BinOp, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> ValueId {
        self.push_val(Inst::Bin { op: opn, ty, a: a.into(), b: b.into() })
    }

    /// `add` with the type inferred from operand `a`.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> ValueId {
        let a = a.into();
        let ty = self.f.operand_ty(&a);
        self.bin(BinOp::Add, ty, a, b)
    }

    /// `sub` with the type inferred from operand `a`.
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> ValueId {
        let a = a.into();
        let ty = self.f.operand_ty(&a);
        self.bin(BinOp::Sub, ty, a, b)
    }

    /// `mul` with the type inferred from operand `a`.
    pub fn mul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> ValueId {
        let a = a.into();
        let ty = self.f.operand_ty(&a);
        self.bin(BinOp::Mul, ty, a, b)
    }

    /// Integer compare; scalar operands yield `i1`, vectors yield a mask.
    pub fn icmp(&mut self, pred: CmpPred, a: impl Into<Operand>, b: impl Into<Operand>) -> ValueId {
        let a = a.into();
        let ty = self.f.operand_ty(&a);
        self.push_val(Inst::Cmp { pred, ty, a, b: b.into() })
    }

    /// Float compare.
    pub fn fcmp(&mut self, pred: CmpPred, a: impl Into<Operand>, b: impl Into<Operand>) -> ValueId {
        self.icmp(pred, a, b)
    }

    /// Cast.
    pub fn cast(&mut self, op: CastOp, val: impl Into<Operand>, to: Ty) -> ValueId {
        self.push_val(Inst::Cast { op, to, val: val.into() })
    }

    // ---- memory ----------------------------------------------------------

    /// Typed load.
    pub fn load(&mut self, ty: Ty, addr: impl Into<Operand>) -> ValueId {
        self.push_val(Inst::Load { ty, addr: addr.into() })
    }

    /// Typed store.
    pub fn store(&mut self, ty: Ty, val: impl Into<Operand>, addr: impl Into<Operand>) {
        self.push(Inst::Store { ty, val: val.into(), addr: addr.into() });
    }

    /// `base + index * scale`.
    pub fn gep(&mut self, base: impl Into<Operand>, index: impl Into<Operand>, scale: u32) -> ValueId {
        self.push_val(Inst::Gep { base: base.into(), index: index.into(), scale })
    }

    /// Stack allocation of `count` elements of `ty`.
    pub fn alloca(&mut self, ty: Ty, count: impl Into<Operand>) -> ValueId {
        self.push_val(Inst::Alloca { ty, count: count.into() })
    }

    /// Atomic read-modify-write.
    pub fn atomic_rmw(
        &mut self,
        op: RmwOp,
        ty: Ty,
        addr: impl Into<Operand>,
        val: impl Into<Operand>,
    ) -> ValueId {
        self.push_val(Inst::AtomicRmw { op, ty, addr: addr.into(), val: val.into() })
    }

    /// Atomic compare-exchange; returns the old value.
    pub fn cmpxchg(
        &mut self,
        ty: Ty,
        addr: impl Into<Operand>,
        expected: impl Into<Operand>,
        new: impl Into<Operand>,
    ) -> ValueId {
        self.push_val(Inst::CmpXchg { ty, addr: addr.into(), expected: expected.into(), new: new.into() })
    }

    // ---- vectors ---------------------------------------------------------

    /// Extract lane `idx`.
    pub fn extract(&mut self, vec: impl Into<Operand>, idx: u8) -> ValueId {
        let vec = vec.into();
        let ty = self.f.operand_ty(&vec);
        self.push_val(Inst::ExtractElement { vec, idx: Operand::imm_i64(i64::from(idx)), ty })
    }

    /// Insert `val` at lane `idx`.
    pub fn insert(&mut self, vec: impl Into<Operand>, val: impl Into<Operand>, idx: u8) -> ValueId {
        let vec = vec.into();
        let ty = self.f.operand_ty(&vec);
        self.push_val(Inst::InsertElement { vec, val: val.into(), idx: Operand::imm_i64(i64::from(idx)), ty })
    }

    /// Lane permutation of a single vector.
    pub fn shuffle(&mut self, a: impl Into<Operand>, mask: Vec<u8>) -> ValueId {
        let a = a.into();
        let ty = self.f.operand_ty(&a);
        self.push_val(Inst::Shuffle { a, mask, ty })
    }

    /// Broadcast a scalar to an `lanes`-wide vector.
    pub fn splat(&mut self, val: impl Into<Operand>, lanes: u8) -> ValueId {
        let val = val.into();
        let elem = self.f.operand_ty(&val);
        self.push_val(Inst::Splat { val, ty: elem.with_lanes(lanes) })
    }

    /// `ptest` on a mask vector; yields the `i8` flag triple.
    pub fn ptest(&mut self, mask: impl Into<Operand>) -> ValueId {
        let mask = mask.into();
        let ty = self.f.operand_ty(&mask);
        self.push_val(Inst::Ptest { mask, ty })
    }

    /// Blend/select.
    pub fn select(
        &mut self,
        cond: impl Into<Operand>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> ValueId {
        let a = a.into();
        let ty = self.f.operand_ty(&a);
        self.push_val(Inst::Select { cond: cond.into(), ty, a, b: b.into() })
    }

    /// Future-AVX gather (§VII-B).
    pub fn gather(&mut self, ty: Ty, addrs: impl Into<Operand>) -> ValueId {
        self.push_val(Inst::Gather { ty, addrs: addrs.into() })
    }

    /// Future-AVX scatter (§VII-B).
    pub fn scatter(&mut self, val: impl Into<Operand>, addrs: impl Into<Operand>) {
        let val = val.into();
        let ty = self.f.operand_ty(&val);
        self.push(Inst::Scatter { val, addrs: addrs.into(), ty });
    }

    // ---- phi -------------------------------------------------------------

    /// Create a phi with no incomings (fill with [`FuncBuilder::phi_add_incoming`]).
    pub fn phi(&mut self, ty: Ty) -> ValueId {
        self.push_val(Inst::Phi { ty, incomings: vec![] })
    }

    /// Append an incoming edge to a phi created by [`FuncBuilder::phi`].
    ///
    /// # Panics
    /// Panics if `phi` does not name a phi instruction.
    pub fn phi_add_incoming(&mut self, phi: ValueId, block: BlockId, val: impl Into<Operand>) {
        let iid = self.f.def_inst(phi).expect("phi is an instruction result");
        match &mut self.f.insts[iid.0 as usize].inst {
            Inst::Phi { incomings, .. } => incomings.push((block, val.into())),
            other => panic!("value does not name a phi: {other:?}"),
        }
    }

    // ---- calls -----------------------------------------------------------

    /// Call a module function.
    pub fn call(&mut self, callee: crate::value::FuncId, args: Vec<Operand>, ret_ty: Ty) -> Option<ValueId> {
        self.push(Inst::Call { callee: Callee::Func(callee), args, ret_ty })
    }

    /// Call a builtin.
    pub fn call_builtin(&mut self, b: Builtin, args: Vec<Operand>, ret_ty: Ty) -> Option<ValueId> {
        self.push(Inst::Call { callee: Callee::Builtin(b), args, ret_ty })
    }

    // ---- terminators -----------------------------------------------------

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.f.set_term(self.cur, Terminator::Br { target });
    }

    /// Conditional branch on an `i1`.
    pub fn cond_br(&mut self, cond: impl Into<Operand>, then_bb: BlockId, else_bb: BlockId) {
        self.f.set_term(self.cur, Terminator::CondBr { cond: cond.into(), then_bb, else_bb });
    }

    /// Three-way branch on a `ptest` result.
    pub fn ptest_br(
        &mut self,
        flags: impl Into<Operand>,
        all_false: BlockId,
        all_true: BlockId,
        mixed: BlockId,
    ) {
        self.f.set_term(self.cur, Terminator::PtestBr { flags: flags.into(), all_false, all_true, mixed });
    }

    /// Return a value.
    pub fn ret(&mut self, val: impl Into<Operand>) {
        self.f.set_term(self.cur, Terminator::Ret { val: Some(val.into()) });
    }

    /// Return void.
    pub fn ret_void(&mut self) {
        self.f.set_term(self.cur, Terminator::Ret { val: None });
    }

    /// Mark the current block unreachable.
    pub fn unreachable(&mut self) {
        self.f.set_term(self.cur, Terminator::Unreachable);
    }

    // ---- common patterns -------------------------------------------------

    /// Emit a canonical counted loop `for i in start..end { body }`.
    ///
    /// Calls `body(builder, i)` with the cursor inside the loop body.
    /// Returns `(header_block, exit_block, i_value)` — the induction value
    /// passed to `body` is the per-iteration `i` (an `i64`).
    pub fn counted_loop(
        &mut self,
        start: impl Into<Operand>,
        end: impl Into<Operand>,
        body: impl FnOnce(&mut FuncBuilder, ValueId),
    ) -> (BlockId, BlockId, ValueId) {
        let start = start.into();
        let end = end.into();
        let pre = self.cur;
        let header = self.block("loop.header");
        let body_bb = self.block("loop.body");
        let latch = self.block("loop.latch");
        let exit = self.block("loop.exit");

        self.br(header);
        self.switch_to(header);
        let i = self.phi(Ty::I64);
        self.phi_add_incoming(i, pre, start);
        let cond = self.icmp(CmpPred::Slt, i, end);
        self.cond_br(cond, body_bb, exit);

        self.switch_to(body_bb);
        body(self, i);
        // The body may have moved the cursor; branch whatever block it
        // ended in to the latch.
        self.br(latch);

        self.switch_to(latch);
        let next = self.add(i, Operand::imm_i64(1));
        self.phi_add_incoming(i, latch, next);
        self.br(header);

        self.switch_to(exit);
        (header, exit, i)
    }

    /// `lock`/`unlock` critical section around `body`.
    pub fn critical_section(&mut self, mutex_addr: impl Into<Operand>, body: impl FnOnce(&mut FuncBuilder)) {
        let m = mutex_addr.into();
        self.call_builtin(Builtin::Lock, vec![m.clone()], Ty::Void);
        body(self);
        self.call_builtin(Builtin::Unlock, vec![m], Ty::Void);
    }
}

/// Shorthand for an immediate `i64` operand.
pub fn c64(v: i64) -> Operand {
    Operand::Imm(Const::i64(v))
}

/// Shorthand for an immediate `f64` operand.
pub fn cf64(v: f64) -> Operand {
    Operand::Imm(Const::f64(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::BlockId;

    #[test]
    fn counted_loop_shape() {
        let mut b = FuncBuilder::new("sum", vec![Ty::I64], Ty::I64);
        let n = b.param(0);
        // A loop that just runs; the result is not the point here.
        let (header, _exit, _i) = b.counted_loop(c64(0), n, |_b, _i| {});
        b.ret(c64(0));
        let f = b.finish();
        // header has a phi and a compare.
        assert_eq!(f.blocks[header.0 as usize].insts.len(), 2);
        // 5 blocks total: entry, header, body, latch, exit.
        assert_eq!(f.blocks.len(), 5);
    }

    #[test]
    fn phi_incoming_editing() {
        let mut b = FuncBuilder::new("f", vec![], Ty::I64);
        let bb1 = b.block("bb1");
        let p = b.phi(Ty::I64);
        b.phi_add_incoming(p, bb1, c64(4));
        let f = b.func();
        let iid = f.def_inst(p).unwrap();
        match &f.insts[iid.0 as usize].inst {
            Inst::Phi { incomings, .. } => assert_eq!(incomings.len(), 1),
            _ => panic!(),
        }
    }

    #[test]
    fn splat_infers_element_type() {
        let mut b = FuncBuilder::new("f", vec![Ty::F64], Ty::Void);
        let p = b.param(0);
        let v = b.splat(p, 4);
        assert_eq!(*b.func().val_ty(v), Ty::vec(Ty::F64, 4));
    }

    #[test]
    fn extract_yields_element_type() {
        let mut b = FuncBuilder::new("f", vec![Ty::vec(Ty::I32, 8)], Ty::Void);
        let p = b.param(0);
        let e = b.extract(p, 3);
        assert_eq!(*b.func().val_ty(e), Ty::I32);
    }

    #[test]
    fn entry_is_block_zero() {
        let b = FuncBuilder::new("f", vec![], Ty::Void);
        assert_eq!(b.current(), BlockId(0));
    }
}
