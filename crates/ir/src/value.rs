//! Values, constants and operands.
//!
//! Every SSA value in a function is identified by a dense [`ValueId`].
//! Function parameters occupy the first ids; instruction results follow in
//! creation order. Constants are immediate [`Const`] operands and are never
//! materialized as instructions.

use crate::types::Ty;
use std::fmt;

/// Function-local SSA value identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ValueId(pub u32);

/// Basic-block identifier (index into `Function::blocks`; entry block is 0).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockId(pub u32);

/// Function identifier (index into `Module::funcs`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FuncId(pub u32);

/// Instruction identifier (index into `Function::insts`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct InstId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A compile-time constant.
///
/// Integer payloads are stored zero-extended in a `u64` and always masked to
/// their declared width. Floats store raw IEEE bits so that `Const` can be
/// `Eq`/`Hash` without NaN headaches.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Const {
    /// Integer of width `bits`, value zero-extended into `value`.
    Int {
        /// Bit width in `1..=64`.
        bits: u8,
        /// Value, masked to `bits`.
        value: u64,
    },
    /// `f32` as raw bits.
    F32(u32),
    /// `f64` as raw bits.
    F64(u64),
    /// Pointer literal (usually 0 = null).
    Ptr(u64),
    /// `lanes` copies of a scalar constant (a constant splat).
    Splat {
        /// Replicated element.
        elem: Box<Const>,
        /// Lane count.
        lanes: u8,
    },
    /// Undefined value of a given type (reads as zero in the VM).
    Undef(Ty),
}

/// Mask `value` to `bits` (zero-extension canonical form).
pub fn mask_to_width(value: u64, bits: u8) -> u64 {
    if bits >= 64 {
        value
    } else {
        value & ((1u64 << bits) - 1)
    }
}

/// Sign-extend a `bits`-wide value stored zero-extended in `u64`.
pub fn sext_from_width(value: u64, bits: u8) -> i64 {
    if bits >= 64 {
        value as i64
    } else {
        let shift = 64 - u32::from(bits);
        ((value << shift) as i64) >> shift
    }
}

impl Const {
    /// `i1` constant from a bool.
    pub fn bool(v: bool) -> Const {
        Const::Int { bits: 1, value: u64::from(v) }
    }

    /// `i8` constant.
    pub fn i8(v: i64) -> Const {
        Const::int(8, v as u64)
    }

    /// `i16` constant.
    pub fn i16(v: i64) -> Const {
        Const::int(16, v as u64)
    }

    /// `i32` constant.
    pub fn i32(v: i64) -> Const {
        Const::int(32, v as u64)
    }

    /// `i64` constant.
    pub fn i64(v: i64) -> Const {
        Const::int(64, v as u64)
    }

    /// Integer constant of arbitrary width; the value is masked.
    pub fn int(bits: u8, value: u64) -> Const {
        assert!((1..=64).contains(&bits));
        Const::Int { bits, value: mask_to_width(value, bits) }
    }

    /// `f32` constant.
    pub fn f32(v: f32) -> Const {
        Const::F32(v.to_bits())
    }

    /// `f64` constant.
    pub fn f64(v: f64) -> Const {
        Const::F64(v.to_bits())
    }

    /// Null pointer.
    pub fn null() -> Const {
        Const::Ptr(0)
    }

    /// Zero of an arbitrary scalar or vector type.
    ///
    /// # Panics
    /// Panics on `Void`.
    pub fn zero(ty: &Ty) -> Const {
        match ty {
            Ty::Int(b) => Const::Int { bits: *b, value: 0 },
            Ty::F32 => Const::F32(0),
            Ty::F64 => Const::F64(0),
            Ty::Ptr => Const::Ptr(0),
            Ty::Vec { elem, lanes } => Const::Splat { elem: Box::new(Const::zero(elem)), lanes: *lanes },
            Ty::Void => panic!("no zero of void"),
        }
    }

    /// Splat of `self` across `lanes` lanes.
    ///
    /// # Panics
    /// Panics if `self` is already a vector constant.
    pub fn splat(self, lanes: u8) -> Const {
        assert!(!matches!(self, Const::Splat { .. }), "cannot splat a splat");
        Const::Splat { elem: Box::new(self), lanes }
    }

    /// The type of this constant.
    pub fn ty(&self) -> Ty {
        match self {
            Const::Int { bits, .. } => Ty::Int(*bits),
            Const::F32(_) => Ty::F32,
            Const::F64(_) => Ty::F64,
            Const::Ptr(_) => Ty::Ptr,
            Const::Splat { elem, lanes } => Ty::vec(elem.ty(), *lanes),
            Const::Undef(t) => t.clone(),
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int { bits, value } => write!(f, "i{bits} {}", sext_from_width(*value, *bits)),
            Const::F32(b) => write!(f, "f32 {}", f32::from_bits(*b)),
            Const::F64(b) => write!(f, "f64 {}", f64::from_bits(*b)),
            Const::Ptr(p) => write!(f, "ptr {p:#x}"),
            Const::Splat { elem, lanes } => write!(f, "splat<{lanes}>({elem})"),
            Const::Undef(t) => write!(f, "{t} undef"),
        }
    }
}

/// An instruction operand: an SSA value or an immediate constant.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// Reference to an SSA value.
    Val(ValueId),
    /// Immediate constant.
    Imm(Const),
}

impl Operand {
    /// The referenced value id, if this is not an immediate.
    pub fn value_id(&self) -> Option<ValueId> {
        match self {
            Operand::Val(v) => Some(*v),
            Operand::Imm(_) => None,
        }
    }

    /// Immediate `i64` shorthand.
    pub fn imm_i64(v: i64) -> Operand {
        Operand::Imm(Const::i64(v))
    }

    /// Immediate `i32` shorthand.
    pub fn imm_i32(v: i64) -> Operand {
        Operand::Imm(Const::i32(v))
    }
}

impl From<ValueId> for Operand {
    fn from(v: ValueId) -> Operand {
        Operand::Val(v)
    }
}

impl From<Const> for Operand {
    fn from(c: Const) -> Operand {
        Operand::Imm(c)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Val(v) => write!(f, "{v}"),
            Operand::Imm(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_and_sign_extension() {
        assert_eq!(mask_to_width(0xFFFF, 8), 0xFF);
        assert_eq!(mask_to_width(u64::MAX, 64), u64::MAX);
        assert_eq!(sext_from_width(0xFF, 8), -1);
        assert_eq!(sext_from_width(0x7F, 8), 127);
        assert_eq!(sext_from_width(1, 1), -1);
        assert_eq!(sext_from_width(0, 1), 0);
    }

    #[test]
    fn const_types() {
        assert_eq!(Const::i32(-1).ty(), Ty::I32);
        assert_eq!(Const::f64(1.5).ty(), Ty::F64);
        assert_eq!(Const::null().ty(), Ty::Ptr);
        assert_eq!(Const::i64(7).splat(4).ty(), Ty::vec(Ty::I64, 4));
        assert_eq!(Const::zero(&Ty::vec(Ty::F32, 8)).ty(), Ty::vec(Ty::F32, 8));
    }

    #[test]
    fn const_int_masks_on_construction() {
        let c = Const::int(8, 0x1FF);
        assert_eq!(c, Const::Int { bits: 8, value: 0xFF });
    }

    #[test]
    fn operand_conversions() {
        let v: Operand = ValueId(3).into();
        assert_eq!(v.value_id(), Some(ValueId(3)));
        let i: Operand = Const::i64(9).into();
        assert_eq!(i.value_id(), None);
    }

    #[test]
    fn negative_display_uses_signed_form() {
        assert_eq!(Const::i8(-1).to_string(), "i8 -1");
        assert_eq!(Const::i64(5).to_string(), "i64 5");
    }
}
