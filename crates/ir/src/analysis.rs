//! Control-flow analyses: reverse post-order, dominators, natural loops.
//!
//! Used by the verifier (SSA dominance checking) and the loop vectorizer.

use crate::module::Function;
use crate::value::BlockId;

/// Reverse post-order of reachable blocks starting at the entry.
pub fn reverse_post_order(f: &Function) -> Vec<BlockId> {
    let n = f.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with explicit stack of (block, next-successor-index).
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    visited[0] = true;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs = f.blocks[b].term.successors();
        if *next < succs.len() {
            let s = succs[*next].0 as usize;
            *next += 1;
            if !visited[s] {
                visited[s] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(BlockId(b as u32));
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Immediate-dominator table computed with the Cooper–Harvey–Kennedy
/// iterative algorithm. `idom[entry] == entry`; unreachable blocks get
/// `None`.
#[derive(Clone, Debug)]
pub struct Dominators {
    idom: Vec<Option<BlockId>>,
    /// RPO index per block (used for intersection); `usize::MAX` if
    /// unreachable.
    rpo_index: Vec<usize>,
}

impl Dominators {
    /// Compute dominators for `f`.
    pub fn compute(f: &Function) -> Dominators {
        let rpo = reverse_post_order(f);
        let n = f.blocks.len();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }
        let preds = f.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[0] = Some(BlockId(0));
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let bi = b.0 as usize;
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[bi] {
                    if idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if new_idom.is_some() && idom[bi] != new_idom {
                    idom[bi] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom, rpo_index }
    }

    /// Immediate dominator of `b` (`None` for the entry and unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b.0 == 0 {
            return None;
        }
        self.idom[b.0 as usize]
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_index[b.0 as usize] == usize::MAX {
            return false; // unreachable
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur.0 == 0 {
                return a.0 == 0;
            }
            match self.idom[cur.0 as usize] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.0 as usize] != usize::MAX
    }
}

fn intersect(idom: &[Option<BlockId>], rpo_index: &[usize], mut a: BlockId, mut b: BlockId) -> BlockId {
    while a != b {
        while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
            a = idom[a.0 as usize].expect("processed");
        }
        while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
            b = idom[b.0 as usize].expect("processed");
        }
    }
    a
}

/// A natural loop: header plus body blocks (header included).
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// Loop header (target of the back edge).
    pub header: BlockId,
    /// The latch (source of the back edge).
    pub latch: BlockId,
    /// All blocks in the loop, header first.
    pub blocks: Vec<BlockId>,
}

/// Find natural loops via back edges (`latch -> header` where `header`
/// dominates `latch`).
pub fn find_loops(f: &Function) -> Vec<NaturalLoop> {
    let doms = Dominators::compute(f);
    let mut loops = vec![];
    for (bi, b) in f.blocks.iter().enumerate() {
        let latch = BlockId(bi as u32);
        if !doms.is_reachable(latch) {
            continue;
        }
        for succ in b.term.successors() {
            if doms.dominates(succ, latch) {
                // Back edge latch -> succ; collect the loop body by
                // walking predecessors from the latch up to the header.
                let header = succ;
                let preds = f.predecessors();
                let mut body = vec![header];
                let mut stack = vec![latch];
                while let Some(x) = stack.pop() {
                    if body.contains(&x) {
                        continue;
                    }
                    body.push(x);
                    for &p in &preds[x.0 as usize] {
                        stack.push(p);
                    }
                }
                loops.push(NaturalLoop { header, latch, blocks: body });
            }
        }
    }
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{c64, FuncBuilder};
    use crate::types::Ty;

    fn loop_func() -> Function {
        let mut b = FuncBuilder::new("f", vec![Ty::I64], Ty::Void);
        let n = b.param(0);
        b.counted_loop(c64(0), n, |_b, _i| {});
        b.ret_void();
        b.finish()
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = loop_func();
        let rpo = reverse_post_order(&f);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 5);
    }

    #[test]
    fn entry_dominates_everything() {
        let f = loop_func();
        let d = Dominators::compute(&f);
        for i in 0..f.blocks.len() as u32 {
            assert!(d.dominates(BlockId(0), BlockId(i)), "entry should dominate bb{i}");
        }
    }

    #[test]
    fn header_dominates_body_and_latch() {
        let f = loop_func();
        let d = Dominators::compute(&f);
        // blocks: 0 entry, 1 header, 2 body, 3 latch, 4 exit
        assert!(d.dominates(BlockId(1), BlockId(2)));
        assert!(d.dominates(BlockId(1), BlockId(3)));
        assert!(d.dominates(BlockId(1), BlockId(4)));
        assert!(!d.dominates(BlockId(2), BlockId(4)));
    }

    #[test]
    fn finds_the_natural_loop() {
        let f = loop_func();
        let loops = find_loops(&f);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latch, BlockId(3));
        assert!(l.blocks.contains(&BlockId(2)));
        assert!(!l.blocks.contains(&BlockId(4)));
    }

    #[test]
    fn unreachable_blocks_ignored() {
        let mut b = FuncBuilder::new("f", vec![], Ty::Void);
        let dead = b.block("dead");
        b.ret_void();
        b.switch_to(dead);
        b.ret_void();
        let f = b.finish();
        let d = Dominators::compute(&f);
        assert!(!d.is_reachable(dead));
        assert!(!d.dominates(BlockId(0), dead));
    }
}
