//! Modules, functions and basic blocks.

use crate::inst::{Inst, Terminator};
use crate::types::Ty;
use crate::value::{BlockId, Const, FuncId, InstId, Operand, ValueId};

/// How an SSA value is defined.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValueDef {
    /// The `n`-th function parameter.
    Param(u32),
    /// Result of an instruction.
    Inst(InstId),
}

/// Metadata for one SSA value.
#[derive(Clone, Debug)]
pub struct ValueInfo {
    /// Static type.
    pub ty: Ty,
    /// Definition site.
    pub def: ValueDef,
}

/// One instruction plus its (optional) result value.
#[derive(Clone, Debug)]
pub struct InstData {
    /// The instruction.
    pub inst: Inst,
    /// Result value id, `None` for void-result instructions.
    pub result: Option<ValueId>,
}

/// A basic block: a straight-line instruction list plus one terminator.
#[derive(Clone, Debug)]
pub struct Block {
    /// Debug label.
    pub name: String,
    /// Instruction ids in execution order.
    pub insts: Vec<InstId>,
    /// Terminator (control transfer out of the block).
    pub term: Terminator,
}

/// A hint marking a counted loop as vectorizable (consumed by the loop
/// vectorizer that reproduces Figure 1's "native SIMD" baseline).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VectorizeHint {
    /// The loop header block.
    pub header: BlockId,
    /// Desired vectorization factor (lanes).
    pub width: u8,
}

/// An IR function in SSA form.
#[derive(Clone, Debug)]
pub struct Function {
    /// Symbol name (unique within the module).
    pub name: String,
    /// Parameter types; parameters are values `0..params.len()`.
    pub params: Vec<Ty>,
    /// Return type (`Void` for none).
    pub ret_ty: Ty,
    /// Basic blocks; `blocks[0]` is the entry block.
    pub blocks: Vec<Block>,
    /// Instruction arena.
    pub insts: Vec<InstData>,
    /// SSA value table (parameters first, then instruction results).
    pub vals: Vec<ValueInfo>,
    /// Whether this function belongs to the hardened region (transformed
    /// by ELZAR/SWIFT-R and eligible for fault injection). Library-style
    /// helpers can opt out, mirroring the paper's unhardened libc parts.
    pub hardened: bool,
    /// Vectorizable-loop hints (Figure 1 baseline only).
    pub vector_hints: Vec<VectorizeHint>,
}

impl Function {
    /// Create an empty function with an entry block.
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret_ty: Ty) -> Function {
        let vals = params
            .iter()
            .enumerate()
            .map(|(i, ty)| ValueInfo { ty: ty.clone(), def: ValueDef::Param(i as u32) })
            .collect();
        Function {
            name: name.into(),
            params,
            ret_ty,
            blocks: vec![Block { name: "entry".into(), insts: vec![], term: Terminator::Unreachable }],
            insts: vec![],
            vals,
            hardened: true,
            vector_hints: vec![],
        }
    }

    /// Value id of the `n`-th parameter.
    pub fn param(&self, n: usize) -> ValueId {
        assert!(n < self.params.len(), "parameter index out of range");
        ValueId(n as u32)
    }

    /// Number of SSA values (parameters + instruction results).
    pub fn num_values(&self) -> usize {
        self.vals.len()
    }

    /// Type of an SSA value.
    pub fn val_ty(&self, v: ValueId) -> &Ty {
        &self.vals[v.0 as usize].ty
    }

    /// Type of an operand (value or immediate).
    pub fn operand_ty(&self, op: &Operand) -> Ty {
        match op {
            Operand::Val(v) => self.val_ty(*v).clone(),
            Operand::Imm(c) => c.ty(),
        }
    }

    /// Append a new block and return its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.blocks.push(Block { name: name.into(), insts: vec![], term: Terminator::Unreachable });
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Append `inst` to `block`, registering a result value when the
    /// instruction produces one. Returns the result value id, if any.
    pub fn push_inst(&mut self, block: BlockId, inst: Inst) -> Option<ValueId> {
        let ty = inst.result_ty();
        let iid = InstId(self.insts.len() as u32);
        let result = if ty.is_void() {
            None
        } else {
            let vid = ValueId(self.vals.len() as u32);
            self.vals.push(ValueInfo { ty, def: ValueDef::Inst(iid) });
            Some(vid)
        };
        self.insts.push(InstData { inst, result });
        self.blocks[block.0 as usize].insts.push(iid);
        result
    }

    /// Set the terminator of `block`.
    pub fn set_term(&mut self, block: BlockId, term: Terminator) {
        self.blocks[block.0 as usize].term = term;
    }

    /// The instruction that defines `v`, if it is not a parameter.
    pub fn def_inst(&self, v: ValueId) -> Option<InstId> {
        match self.vals[v.0 as usize].def {
            ValueDef::Param(_) => None,
            ValueDef::Inst(i) => Some(i),
        }
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                preds[s.0 as usize].push(BlockId(i as u32));
            }
        }
        preds
    }

    /// Total number of instructions (static count).
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Iterate `(BlockId, &Block)`.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b))
    }
}

/// A translation unit: a set of functions plus initial global data.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// Module name (used in diagnostics).
    pub name: String,
    /// Functions; `FuncId` indexes this vector.
    pub funcs: Vec<Function>,
    /// Initial bytes of the global data segment (placed at a fixed base
    /// address by the VM).
    pub globals: Vec<u8>,
}

impl Module {
    /// New empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module { name: name.into(), funcs: vec![], globals: vec![] }
    }

    /// Add a function, returning its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        self.funcs.push(f);
        FuncId(self.funcs.len() as u32 - 1)
    }

    /// Look up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().position(|f| f.name == name).map(|i| FuncId(i as u32))
    }

    /// Borrow a function.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Mutably borrow a function.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.0 as usize]
    }

    /// Reserve `bytes` of zeroed global space, returning its offset from
    /// the global base (see the VM's memory map for the absolute address).
    pub fn alloc_global(&mut self, bytes: usize) -> usize {
        // Align to 32 so vector loads on globals are always aligned.
        let off = (self.globals.len() + 31) & !31;
        self.globals.resize(off + bytes, 0);
        off
    }

    /// Install initialized global data, returning its offset.
    pub fn add_global_data(&mut self, data: &[u8]) -> usize {
        let off = self.alloc_global(data.len());
        self.globals[off..off + data.len()].copy_from_slice(data);
        off
    }

    /// Total static instruction count across functions.
    pub fn num_insts(&self) -> usize {
        self.funcs.iter().map(|f| f.num_insts()).sum()
    }
}

/// Convenience: an `Operand` from anything convertible.
pub fn op(x: impl Into<Operand>) -> Operand {
    x.into()
}

/// Convenience: constant-int operand.
pub fn ci(v: i64) -> Operand {
    Operand::Imm(Const::i64(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;

    #[test]
    fn push_inst_assigns_dense_values() {
        let mut f = Function::new("f", vec![Ty::I64, Ty::I64], Ty::I64);
        let p0 = f.param(0);
        let p1 = f.param(1);
        let entry = BlockId(0);
        let sum = f
            .push_inst(entry, Inst::Bin { op: BinOp::Add, ty: Ty::I64, a: p0.into(), b: p1.into() })
            .unwrap();
        assert_eq!(sum, ValueId(2));
        assert_eq!(*f.val_ty(sum), Ty::I64);
        f.set_term(entry, Terminator::Ret { val: Some(sum.into()) });
        assert_eq!(f.num_insts(), 1);
    }

    #[test]
    fn void_insts_have_no_result() {
        let mut f = Function::new("f", vec![Ty::Ptr], Ty::Void);
        let p = f.param(0);
        let r = f.push_inst(BlockId(0), Inst::Store { ty: Ty::I64, val: ci(1), addr: p.into() });
        assert!(r.is_none());
    }

    #[test]
    fn predecessors_computed() {
        let mut f = Function::new("f", vec![], Ty::Void);
        let b1 = f.add_block("b1");
        let b2 = f.add_block("b2");
        f.set_term(
            BlockId(0),
            Terminator::CondBr { cond: Operand::Imm(Const::bool(true)), then_bb: b1, else_bb: b2 },
        );
        f.set_term(b1, Terminator::Br { target: b2 });
        f.set_term(b2, Terminator::Ret { val: None });
        let preds = f.predecessors();
        assert_eq!(preds[b2.0 as usize], vec![BlockId(0), b1]);
    }

    #[test]
    fn module_lookup_and_globals() {
        let mut m = Module::new("test");
        let id = m.add_func(Function::new("main", vec![], Ty::Void));
        assert_eq!(m.func_by_name("main"), Some(id));
        assert_eq!(m.func_by_name("nope"), None);
        let a = m.add_global_data(&[1, 2, 3]);
        let b = m.alloc_global(10);
        assert_eq!(a % 32, 0);
        assert_eq!(b % 32, 0);
        assert!(b >= a + 3);
        assert_eq!(&m.globals[a..a + 3], &[1, 2, 3]);
    }
}
