//! # elzar-ir
//!
//! A compact, LLVM-like typed SSA intermediate representation used by the
//! ELZAR (DSN'16) reproduction. The paper implements its transformation as
//! an LLVM pass operating on bitcode right before code generation; this
//! crate plays the role of that bitcode layer:
//!
//! * scalar types `i1..i64`, `f32`, `f64`, `ptr`, and fixed vectors that
//!   model AVX YMM registers (`<4 x i64>`, `<8 x f32>`, …);
//! * AVX-faithful vector semantics: vector compares produce all-ones /
//!   all-zeros lane *masks*, `ptest` folds a mask to three flag outcomes,
//!   `shufflevector`/`extractelement`/`splat` map to
//!   `vperm`/`vpextr`/`vbroadcast`;
//! * the "synchronization instruction" taxonomy of §III-B (loads, stores,
//!   atomics, calls) that both ILR and ELZAR leave unreplicated;
//! * builders, a structural + type + SSA-dominance verifier, CFG analyses
//!   and a printer for golden tests.
//!
//! ## Example
//!
//! ```
//! use elzar_ir::builder::{c64, FuncBuilder};
//! use elzar_ir::types::Ty;
//! use elzar_ir::module::Module;
//! use elzar_ir::verify::verify_module;
//!
//! let mut m = Module::new("demo");
//! let mut b = FuncBuilder::new("add1", vec![Ty::I64], Ty::I64);
//! let p = b.param(0);
//! let r = b.add(p, c64(1));
//! b.ret(r);
//! m.add_func(b.finish());
//! verify_module(&m).expect("well-formed");
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod inst;
pub mod module;
pub mod printer;
pub mod types;
pub mod value;
pub mod verify;

pub use builder::FuncBuilder;
pub use inst::{BinOp, Builtin, Callee, CastOp, CmpPred, Inst, RmwOp, Terminator};
pub use module::{Block, Function, InstData, Module, ValueDef, ValueInfo, VectorizeHint};
pub use types::Ty;
pub use value::{BlockId, Const, FuncId, InstId, Operand, ValueId};
pub use verify::{verify_function, verify_module, VerifyError};
