//! Type system for the ELZAR IR.
//!
//! Mirrors the subset of LLVM types that the paper's pass manipulates:
//! arbitrary-width integers (`i1`..`i64`, §III-D "esoteric" widths included),
//! `f32`/`f64`, 64-bit pointers, and fixed-width vectors used to model AVX
//! YMM registers.

use std::fmt;

/// An IR type.
///
/// Vectors are always vectors of scalar elements (no nested vectors), which
/// matches both LLVM's first-class vectors and the AVX register model.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Ty {
    /// The unit/empty type, only valid as a function return type.
    Void,
    /// Integer with an explicit bit width in `1..=64`.
    Int(u8),
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
    /// 64-bit pointer into the flat VM address space.
    Ptr,
    /// Fixed vector of `lanes` scalar elements.
    Vec {
        /// Element type; must be scalar.
        elem: Box<Ty>,
        /// Number of lanes (1..=64).
        lanes: u8,
    },
}

impl Ty {
    /// 1-bit integer (booleans).
    pub const I1: Ty = Ty::Int(1);
    /// 8-bit integer.
    pub const I8: Ty = Ty::Int(8);
    /// 16-bit integer.
    pub const I16: Ty = Ty::Int(16);
    /// 32-bit integer.
    pub const I32: Ty = Ty::Int(32);
    /// 64-bit integer.
    pub const I64: Ty = Ty::Int(64);

    /// Integer type of the given bit width.
    ///
    /// # Panics
    /// Panics if `bits` is 0 or greater than 64.
    pub fn int(bits: u8) -> Ty {
        assert!((1..=64).contains(&bits), "integer width {bits} out of range");
        Ty::Int(bits)
    }

    /// Vector of `lanes` copies of scalar `elem`.
    ///
    /// # Panics
    /// Panics if `elem` is not scalar or `lanes` is 0.
    pub fn vec(elem: Ty, lanes: u8) -> Ty {
        assert!(elem.is_scalar(), "vector element must be scalar, got {elem}");
        assert!(lanes >= 1, "vector must have at least one lane");
        Ty::Vec { elem: Box::new(elem), lanes }
    }

    /// True for `Int`, `F32`, `F64`, and `Ptr`.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Ty::Int(_) | Ty::F32 | Ty::F64 | Ty::Ptr)
    }

    /// True for any integer width.
    pub fn is_int(&self) -> bool {
        matches!(self, Ty::Int(_))
    }

    /// True for `F32` or `F64`.
    pub fn is_float(&self) -> bool {
        matches!(self, Ty::F32 | Ty::F64)
    }

    /// True for `Ptr`.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Ty::Ptr)
    }

    /// True for vector types.
    pub fn is_vector(&self) -> bool {
        matches!(self, Ty::Vec { .. })
    }

    /// True for `Void`.
    pub fn is_void(&self) -> bool {
        matches!(self, Ty::Void)
    }

    /// Element type: the scalar element for vectors, `self` otherwise.
    pub fn elem(&self) -> &Ty {
        match self {
            Ty::Vec { elem, .. } => elem,
            other => other,
        }
    }

    /// Lane count: `lanes` for vectors, 1 for scalars.
    ///
    /// # Panics
    /// Panics on `Void`.
    pub fn lanes(&self) -> u8 {
        match self {
            Ty::Void => panic!("void has no lanes"),
            Ty::Vec { lanes, .. } => *lanes,
            _ => 1,
        }
    }

    /// Logical bit width of a scalar element (ints report their exact
    /// width; `Ptr` is 64).
    ///
    /// # Panics
    /// Panics on `Void` and vectors.
    pub fn scalar_bits(&self) -> u32 {
        match self {
            Ty::Int(b) => u32::from(*b),
            Ty::F32 => 32,
            Ty::F64 => 64,
            Ty::Ptr => 64,
            Ty::Void | Ty::Vec { .. } => panic!("scalar_bits on {self}"),
        }
    }

    /// Storage size in bytes of one element when held in memory.
    ///
    /// Integer widths round up to the next power-of-two byte size
    /// (`i1`..`i8` → 1, `i9`..`i16` → 2, …), matching typical ABI layout.
    ///
    /// # Panics
    /// Panics on `Void`.
    pub fn elem_bytes(&self) -> u32 {
        let bits = self.elem().scalar_bits();
        match bits {
            1..=8 => 1,
            9..=16 => 2,
            17..=32 => 4,
            _ => 8,
        }
    }

    /// Total in-memory size in bytes (element size × lanes).
    pub fn bytes(&self) -> u32 {
        self.elem_bytes() * u32::from(self.lanes())
    }

    /// This type widened to a vector with `lanes` lanes (element preserved).
    ///
    /// # Panics
    /// Panics if `self` is not scalar.
    pub fn with_lanes(&self, lanes: u8) -> Ty {
        Ty::vec(self.clone(), lanes)
    }

    /// The number of lanes this scalar type occupies when replicated to
    /// fill one 256-bit YMM register — the paper's §III-D option (3):
    /// 8-bit ints → 32-way, 16-bit → 16-way, 32-bit → 8-way,
    /// 64-bit/ptr → 4-way. Esoteric widths use their storage width.
    ///
    /// # Panics
    /// Panics on `Void` and vectors.
    pub fn ymm_lanes(&self) -> u8 {
        assert!(self.is_scalar(), "ymm_lanes on {self}");
        (32 / self.elem_bytes()) as u8
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Void => write!(f, "void"),
            Ty::Int(b) => write!(f, "i{b}"),
            Ty::F32 => write!(f, "f32"),
            Ty::F64 => write!(f, "f64"),
            Ty::Ptr => write!(f, "ptr"),
            Ty::Vec { elem, lanes } => write!(f, "<{lanes} x {elem}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_predicates() {
        assert!(Ty::I32.is_int());
        assert!(Ty::I32.is_scalar());
        assert!(!Ty::I32.is_vector());
        assert!(Ty::F64.is_float());
        assert!(Ty::Ptr.is_ptr());
        assert!(Ty::Void.is_void());
    }

    #[test]
    fn vector_shape() {
        let v = Ty::vec(Ty::I64, 4);
        assert!(v.is_vector());
        assert_eq!(v.lanes(), 4);
        assert_eq!(*v.elem(), Ty::I64);
        assert_eq!(v.bytes(), 32);
        assert_eq!(v.to_string(), "<4 x i64>");
    }

    #[test]
    fn ymm_lane_counts_match_paper() {
        // §III-D: fill the whole YMM register.
        assert_eq!(Ty::I8.ymm_lanes(), 32);
        assert_eq!(Ty::I16.ymm_lanes(), 16);
        assert_eq!(Ty::I32.ymm_lanes(), 8);
        assert_eq!(Ty::F32.ymm_lanes(), 8);
        assert_eq!(Ty::I64.ymm_lanes(), 4);
        assert_eq!(Ty::F64.ymm_lanes(), 4);
        assert_eq!(Ty::Ptr.ymm_lanes(), 4);
        // Esoteric widths promote to their storage width (i9 -> 16 bits).
        assert_eq!(Ty::int(9).ymm_lanes(), 16);
        assert_eq!(Ty::I1.ymm_lanes(), 32);
    }

    #[test]
    fn storage_rounding() {
        assert_eq!(Ty::I1.elem_bytes(), 1);
        assert_eq!(Ty::int(9).elem_bytes(), 2);
        assert_eq!(Ty::int(33).elem_bytes(), 8);
        assert_eq!(Ty::int(17).elem_bytes(), 4);
    }

    #[test]
    #[should_panic]
    fn zero_width_int_rejected() {
        let _ = Ty::int(0);
    }

    #[test]
    #[should_panic]
    fn nested_vector_rejected() {
        let _ = Ty::vec(Ty::vec(Ty::I8, 4), 4);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ty::I1.to_string(), "i1");
        assert_eq!(Ty::int(9).to_string(), "i9");
        assert_eq!(Ty::F32.to_string(), "f32");
        assert_eq!(Ty::Ptr.to_string(), "ptr");
        assert_eq!(Ty::Void.to_string(), "void");
    }
}
