//! IR verifier.
//!
//! Checks structural and type well-formedness before a module is lowered or
//! transformed, catching pass bugs early: SSA dominance, operand/result
//! types, terminator targets, phi/predecessor agreement, and lane-shape
//! rules for the AVX-style vector operations.

use crate::analysis::Dominators;
use crate::inst::{CastOp, Inst, Terminator};
use crate::module::{Function, Module, ValueDef};
use crate::types::Ty;
use crate::value::{BlockId, Operand, ValueId};
use std::error::Error;
use std::fmt;

/// A verifier diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name.
    pub func: String,
    /// Block where the problem was found (if applicable).
    pub block: Option<BlockId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.block {
            Some(b) => write!(f, "verify: {}/bb{}: {}", self.func, b.0, self.message),
            None => write!(f, "verify: {}: {}", self.func, self.message),
        }
    }
}

impl Error for VerifyError {}

/// Verify a whole module.
///
/// # Errors
/// Returns the first (few) problems found; an empty `Ok(())` means the
/// module is well-formed.
pub fn verify_module(m: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errs = vec![];
    for f in &m.funcs {
        if let Err(mut e) = verify_function(m, f) {
            errs.append(&mut e);
        }
        if errs.len() > 20 {
            break;
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Verify a single function against its module context.
///
/// # Errors
/// Returns all diagnostics found in this function.
pub fn verify_function(m: &Module, f: &Function) -> Result<(), Vec<VerifyError>> {
    let mut v = Verifier { m, f, errs: vec![], block: None };
    v.run();
    if v.errs.is_empty() {
        Ok(())
    } else {
        Err(v.errs)
    }
}

struct Verifier<'a> {
    m: &'a Module,
    f: &'a Function,
    errs: Vec<VerifyError>,
    block: Option<BlockId>,
}

impl<'a> Verifier<'a> {
    fn err(&mut self, msg: impl Into<String>) {
        self.errs.push(VerifyError { func: self.f.name.clone(), block: self.block, message: msg.into() });
    }

    fn run(&mut self) {
        self.check_structure();
        if !self.errs.is_empty() {
            return; // structural breakage makes later checks panic-prone
        }
        self.check_types();
        self.check_dominance();
        self.check_phis();
    }

    fn check_structure(&mut self) {
        if self.f.blocks.is_empty() {
            self.err("function has no blocks");
            return;
        }
        let nblocks = self.f.blocks.len() as u32;
        let ninsts = self.f.insts.len() as u32;
        let nvals = self.f.vals.len() as u32;
        let mut seen_inst = vec![false; ninsts as usize];
        for (bi, b) in self.f.blocks.iter().enumerate() {
            self.block = Some(BlockId(bi as u32));
            for &iid in &b.insts {
                if iid.0 >= ninsts {
                    self.err(format!("instruction id {} out of range", iid.0));
                    return;
                }
                if seen_inst[iid.0 as usize] {
                    self.err(format!("instruction {} appears in more than one block", iid.0));
                }
                seen_inst[iid.0 as usize] = true;
            }
            for s in b.term.successors() {
                if s.0 >= nblocks {
                    self.err(format!("terminator targets nonexistent block bb{}", s.0));
                }
            }
        }
        self.block = None;
        // Every operand's value id must be in range.
        for b in &self.f.blocks {
            for &iid in &b.insts {
                self.f.insts[iid.0 as usize].inst.for_each_operand(|o| {
                    if let Operand::Val(v) = o {
                        if v.0 >= nvals {
                            self.errs.push(VerifyError {
                                func: self.f.name.clone(),
                                block: None,
                                message: format!("operand {} out of range", v.0),
                            });
                        }
                    }
                });
            }
        }
    }

    fn operand_ty(&self, o: &Operand) -> Ty {
        self.f.operand_ty(o)
    }

    fn expect_ty(&mut self, what: &str, got: &Ty, want: &Ty) {
        if got != want {
            self.err(format!("{what}: expected {want}, got {got}"));
        }
    }

    fn check_types(&mut self) {
        for (bi, b) in self.f.blocks.iter().enumerate() {
            self.block = Some(BlockId(bi as u32));
            for &iid in &b.insts {
                let inst = &self.f.insts[iid.0 as usize].inst;
                match inst {
                    Inst::Bin { op, ty, a, b } => {
                        let (ta, tb) = (self.operand_ty(a), self.operand_ty(b));
                        self.expect_ty("bin lhs", &ta, ty);
                        self.expect_ty("bin rhs", &tb, ty);
                        let elem_is_float = ty.elem().is_float();
                        if op.is_float() != elem_is_float {
                            self.err(format!("bin {}: float/int domain mismatch with {ty}", op.mnemonic()));
                        }
                    }
                    Inst::Cmp { pred, ty, a, b } => {
                        let (ta, tb) = (self.operand_ty(a), self.operand_ty(b));
                        self.expect_ty("cmp lhs", &ta, ty);
                        self.expect_ty("cmp rhs", &tb, ty);
                        if pred.is_float() != ty.elem().is_float() {
                            self.err(format!("cmp {}: domain mismatch with {ty}", pred.mnemonic()));
                        }
                    }
                    Inst::Cast { op, to, val } => self.check_cast(*op, to, val),
                    Inst::Load { addr, .. } => {
                        let t = self.operand_ty(addr);
                        self.expect_ty("load address", &t, &Ty::Ptr);
                    }
                    Inst::Store { ty, val, addr } => {
                        let tv = self.operand_ty(val);
                        self.expect_ty("store value", &tv, ty);
                        let t = self.operand_ty(addr);
                        self.expect_ty("store address", &t, &Ty::Ptr);
                    }
                    Inst::Gep { base, index, .. } => {
                        let tb = self.operand_ty(base);
                        self.expect_ty("gep base", &tb, &Ty::Ptr);
                        let ti = self.operand_ty(index);
                        if !ti.is_int() {
                            self.err(format!("gep index must be integer, got {ti}"));
                        }
                    }
                    Inst::Alloca { count, .. } => {
                        let tc = self.operand_ty(count);
                        if !tc.is_int() {
                            self.err(format!("alloca count must be integer, got {tc}"));
                        }
                    }
                    Inst::Select { cond, ty, a, b } => {
                        let (ta, tb) = (self.operand_ty(a), self.operand_ty(b));
                        self.expect_ty("select true value", &ta, ty);
                        self.expect_ty("select false value", &tb, ty);
                        let tc = self.operand_ty(cond);
                        let ok =
                            tc == Ty::I1 || (tc.is_vector() && ty.is_vector() && tc.lanes() == ty.lanes());
                        if !ok {
                            self.err(format!("select condition {tc} incompatible with {ty}"));
                        }
                    }
                    Inst::Phi { .. } => {} // checked in check_phis
                    Inst::Call { callee, args, ret_ty } => {
                        if let crate::inst::Callee::Func(fid) = callee {
                            if fid.0 as usize >= self.m.funcs.len() {
                                self.err(format!("call to nonexistent function {}", fid.0));
                            } else {
                                let callee_f = &self.m.funcs[fid.0 as usize];
                                if callee_f.params.len() != args.len() {
                                    self.err(format!(
                                        "call to {} with {} args, expected {}",
                                        callee_f.name,
                                        args.len(),
                                        callee_f.params.len()
                                    ));
                                } else {
                                    for (i, (a, pt)) in args.iter().zip(&callee_f.params).enumerate() {
                                        let ta = self.operand_ty(a);
                                        if &ta != pt {
                                            self.err(format!("call arg {i}: expected {pt}, got {ta}"));
                                        }
                                    }
                                }
                                if &callee_f.ret_ty != ret_ty {
                                    self.err(format!(
                                        "call to {}: declared return {ret_ty}, function returns {}",
                                        callee_f.name, callee_f.ret_ty
                                    ));
                                }
                            }
                        }
                    }
                    Inst::ExtractElement { vec, ty, .. } => {
                        let tv = self.operand_ty(vec);
                        self.expect_ty("extract vector", &tv, ty);
                        if !ty.is_vector() {
                            self.err(format!("extract from non-vector {ty}"));
                        }
                    }
                    Inst::InsertElement { vec, val, ty, .. } => {
                        let tv = self.operand_ty(vec);
                        self.expect_ty("insert vector", &tv, ty);
                        let telem = self.operand_ty(val);
                        self.expect_ty("insert element", &telem, ty.elem());
                    }
                    Inst::Shuffle { a, mask, ty } => {
                        let ta = self.operand_ty(a);
                        self.expect_ty("shuffle input", &ta, ty);
                        let lanes = ty.lanes();
                        if mask.iter().any(|&m| m >= lanes) {
                            self.err(format!("shuffle mask index out of range for {ty}"));
                        }
                    }
                    Inst::Splat { val, ty } => {
                        let tv = self.operand_ty(val);
                        self.expect_ty("splat element", &tv, ty.elem());
                        if !ty.is_vector() {
                            self.err(format!("splat result must be vector, got {ty}"));
                        }
                    }
                    Inst::Ptest { mask, ty } => {
                        let tm = self.operand_ty(mask);
                        self.expect_ty("ptest mask", &tm, ty);
                        if !ty.is_vector() {
                            self.err(format!("ptest on non-vector {ty}"));
                        }
                    }
                    Inst::Gather { ty, addrs } => {
                        // The address is a replicated pointer (4 lanes);
                        // the result replication width depends on the
                        // element type (§III-D), so lane counts may differ.
                        let ta = self.operand_ty(addrs);
                        if !ta.is_vector()
                            || !ty.is_vector()
                            || !(ta.elem().is_ptr() || *ta.elem() == Ty::I64)
                        {
                            self.err(format!("gather shape mismatch: addrs {ta}, result {ty}"));
                        }
                    }
                    Inst::Scatter { val, addrs, ty } => {
                        let tv = self.operand_ty(val);
                        self.expect_ty("scatter value", &tv, ty);
                        let ta = self.operand_ty(addrs);
                        if !ta.is_vector() || !(ta.elem().is_ptr() || *ta.elem() == Ty::I64) {
                            self.err(format!("scatter shape mismatch: addrs {ta}, value {ty}"));
                        }
                    }
                    Inst::AtomicRmw { ty, addr, val, .. } => {
                        if !ty.is_int() {
                            self.err(format!("atomicrmw on non-integer {ty}"));
                        }
                        let t = self.operand_ty(addr);
                        self.expect_ty("atomicrmw address", &t, &Ty::Ptr);
                        let tv = self.operand_ty(val);
                        self.expect_ty("atomicrmw value", &tv, ty);
                    }
                    Inst::CmpXchg { ty, addr, expected, new } => {
                        let t = self.operand_ty(addr);
                        self.expect_ty("cmpxchg address", &t, &Ty::Ptr);
                        let te = self.operand_ty(expected);
                        self.expect_ty("cmpxchg expected", &te, ty);
                        let tn = self.operand_ty(new);
                        self.expect_ty("cmpxchg new", &tn, ty);
                    }
                    Inst::Fence => {}
                }
            }
            // Terminator types.
            match &b.term {
                Terminator::CondBr { cond, .. } => {
                    let tc = self.operand_ty(cond);
                    self.expect_ty("cond_br condition", &tc, &Ty::I1);
                }
                Terminator::PtestBr { flags, .. } => {
                    // Accepts the i8 produced by `ptest`, or a raw mask
                    // vector under the §VII flag-setting-compare extension.
                    let tf = self.operand_ty(flags);
                    if tf != Ty::I8 && !tf.is_vector() {
                        self.err(format!("ptest_br flags must be i8 or a mask vector, got {tf}"));
                    }
                }
                Terminator::Ret { val } => match (val, &self.f.ret_ty) {
                    (None, Ty::Void) => {}
                    (None, t) => self.err(format!("ret void in function returning {t}")),
                    (Some(v), t) => {
                        let tv = self.operand_ty(v);
                        if &tv != t {
                            self.err(format!("ret {tv} in function returning {t}"));
                        }
                    }
                },
                _ => {}
            }
        }
        self.block = None;
    }

    fn check_cast(&mut self, op: CastOp, to: &Ty, val: &Operand) {
        let from = self.operand_ty(val);
        let (fe, te) = (from.elem().clone(), to.elem().clone());
        let ok = match op {
            CastOp::Trunc => fe.is_int() && te.is_int() && te.scalar_bits() < fe.scalar_bits(),
            CastOp::ZExt | CastOp::SExt => fe.is_int() && te.is_int() && te.scalar_bits() > fe.scalar_bits(),
            CastOp::FpTrunc => fe == Ty::F64 && te == Ty::F32,
            CastOp::FpExt => fe == Ty::F32 && te == Ty::F64,
            CastOp::FpToSi | CastOp::FpToUi => fe.is_float() && te.is_int(),
            CastOp::SiToFp | CastOp::UiToFp => fe.is_int() && te.is_float(),
            CastOp::Bitcast => fe.scalar_bits() == te.scalar_bits(),
            CastOp::PtrToInt => fe.is_ptr() && te == Ty::I64,
            CastOp::IntToPtr => fe == Ty::I64 && te.is_ptr(),
        };
        if !ok {
            self.err(format!("invalid cast {} from {from} to {to}", op.mnemonic()));
        }
        // Scalar-ness must agree (both scalar or both vector); lane counts
        // may differ (ELZAR re-replication semantics, §III-D).
        if from.is_vector() != to.is_vector() {
            self.err(format!("cast {}: mixed scalar/vector {from} -> {to}", op.mnemonic()));
        }
    }

    fn check_dominance(&mut self) {
        let doms = Dominators::compute(self.f);
        // Map each instruction to (block, index).
        let mut pos = vec![None; self.f.insts.len()];
        for (bi, b) in self.f.blocks.iter().enumerate() {
            for (k, &iid) in b.insts.iter().enumerate() {
                pos[iid.0 as usize] = Some((BlockId(bi as u32), k));
            }
        }
        let use_ok = |v: ValueId, ublock: BlockId, uidx: usize| -> bool {
            match self.f.vals[v.0 as usize].def {
                ValueDef::Param(_) => true,
                ValueDef::Inst(di) => match pos[di.0 as usize] {
                    None => false, // defined by an instruction not in any block
                    Some((dblock, didx)) => {
                        if dblock == ublock {
                            didx < uidx
                        } else {
                            doms.dominates(dblock, ublock)
                        }
                    }
                },
            }
        };
        for (bi, b) in self.f.blocks.iter().enumerate() {
            let ub = BlockId(bi as u32);
            if !doms.is_reachable(ub) {
                continue;
            }
            for (k, &iid) in b.insts.iter().enumerate() {
                let inst = &self.f.insts[iid.0 as usize].inst;
                if let Inst::Phi { incomings, .. } = inst {
                    // Phi uses are checked against the incoming edge.
                    for (pred, opnd) in incomings {
                        if let Operand::Val(v) = opnd {
                            let plen = self.f.blocks[pred.0 as usize].insts.len();
                            if !use_ok(*v, *pred, plen) {
                                self.errs.push(VerifyError {
                                    func: self.f.name.clone(),
                                    block: Some(ub),
                                    message: format!(
                                        "phi incoming %{} does not dominate edge from bb{}",
                                        v.0, pred.0
                                    ),
                                });
                            }
                        }
                    }
                    continue;
                }
                let mut bad = vec![];
                inst.for_each_operand(|o| {
                    if let Operand::Val(v) = o {
                        if !use_ok(*v, ub, k) {
                            bad.push(*v);
                        }
                    }
                });
                for v in bad {
                    self.errs.push(VerifyError {
                        func: self.f.name.clone(),
                        block: Some(ub),
                        message: format!("use of %{} not dominated by its definition", v.0),
                    });
                }
            }
            let mut bad = vec![];
            b.term.for_each_operand(|o| {
                if let Operand::Val(v) = o {
                    if !use_ok(*v, ub, b.insts.len()) {
                        bad.push(*v);
                    }
                }
            });
            for v in bad {
                self.errs.push(VerifyError {
                    func: self.f.name.clone(),
                    block: Some(ub),
                    message: format!("terminator use of %{} not dominated by its definition", v.0),
                });
            }
        }
    }

    fn check_phis(&mut self) {
        let preds = self.f.predecessors();
        let doms = Dominators::compute(self.f);
        for (bi, b) in self.f.blocks.iter().enumerate() {
            let bid = BlockId(bi as u32);
            if !doms.is_reachable(bid) {
                continue;
            }
            self.block = Some(bid);
            let mut past_phis = false;
            for &iid in &b.insts {
                let inst = &self.f.insts[iid.0 as usize].inst;
                if let Inst::Phi { ty, incomings } = inst {
                    if past_phis {
                        self.err("phi after non-phi instruction");
                    }
                    let mut want: Vec<BlockId> = preds[bi].clone();
                    want.sort();
                    want.dedup();
                    let mut got: Vec<BlockId> = incomings.iter().map(|(p, _)| *p).collect();
                    got.sort();
                    got.dedup();
                    if want != got {
                        self.err(format!("phi incoming blocks {got:?} do not match predecessors {want:?}"));
                    }
                    for (_, o) in incomings {
                        let t = self.operand_ty(o);
                        if &t != ty {
                            self.err(format!("phi incoming type {t}, expected {ty}"));
                        }
                    }
                } else {
                    past_phis = true;
                }
            }
        }
        self.block = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{c64, FuncBuilder};
    use crate::inst::BinOp;
    use crate::value::Const;

    fn module_with(f: Function) -> Module {
        let mut m = Module::new("t");
        m.add_func(f);
        m
    }

    #[test]
    fn accepts_well_formed_loop() {
        let mut b = FuncBuilder::new("f", vec![Ty::I64], Ty::I64);
        let n = b.param(0);
        let (_, _, _) = b.counted_loop(c64(0), n, |b, i| {
            let _ = b.add(i, c64(1));
        });
        b.ret(c64(0));
        let m = module_with(b.finish());
        verify_module(&m).expect("loop should verify");
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut b = FuncBuilder::new("f", vec![Ty::I32], Ty::Void);
        let p = b.param(0);
        // i32 param used as i64 operand.
        b.bin(BinOp::Add, Ty::I64, p, c64(1));
        b.ret_void();
        let m = module_with(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("expected i64")));
    }

    #[test]
    fn rejects_use_before_def() {
        let mut f = Function::new("f", vec![], Ty::Void);
        // Manually create a use of a value defined later in the same block.
        let entry = BlockId(0);
        // First push the add that uses value 1 (not yet defined).
        f.push_inst(
            entry,
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::I64,
                a: Operand::Val(ValueId(1)),
                b: Operand::Imm(Const::i64(1)),
            },
        );
        f.push_inst(
            entry,
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::I64,
                a: Operand::Imm(Const::i64(2)),
                b: Operand::Imm(Const::i64(3)),
            },
        );
        f.set_term(entry, Terminator::Ret { val: None });
        let m = module_with(f);
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("not dominated")));
    }

    #[test]
    fn rejects_bad_branch_target() {
        let mut f = Function::new("f", vec![], Ty::Void);
        f.set_term(BlockId(0), Terminator::Br { target: BlockId(7) });
        let m = module_with(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_phi_pred_mismatch() {
        let mut b = FuncBuilder::new("f", vec![], Ty::Void);
        let other = b.block("other");
        let p = b.phi(Ty::I64);
        // Entry has no predecessors, but the phi claims one.
        b.phi_add_incoming(p, other, c64(1));
        b.ret_void();
        b.switch_to(other);
        b.ret_void();
        let m = module_with(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("do not match predecessors")));
    }

    #[test]
    fn rejects_invalid_cast() {
        let mut b = FuncBuilder::new("f", vec![Ty::I64], Ty::Void);
        let p = b.param(0);
        b.cast(CastOp::Trunc, p, Ty::I64); // trunc to same width
        b.ret_void();
        let m = module_with(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("invalid cast")));
    }

    #[test]
    fn rejects_wrong_ret_type() {
        let mut b = FuncBuilder::new("f", vec![], Ty::I64);
        b.ret(Operand::Imm(Const::f64(1.0)));
        let m = module_with(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("ret")));
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut m = Module::new("t");
        let callee = m.add_func(Function::new("g", vec![Ty::I64], Ty::Void));
        let mut b = FuncBuilder::new("f", vec![], Ty::Void);
        b.call(callee, vec![], Ty::Void);
        b.ret_void();
        m.add_func(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("expected 1")));
    }

    #[test]
    fn rejects_shuffle_mask_out_of_range() {
        let mut b = FuncBuilder::new("f", vec![Ty::vec(Ty::I64, 4)], Ty::Void);
        let p = b.param(0);
        b.shuffle(p, vec![0, 1, 2, 9]);
        b.ret_void();
        let m = module_with(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("mask index out of range")));
    }
}
