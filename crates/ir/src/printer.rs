//! Textual printer (LLVM-flavoured) used in diagnostics and golden tests.

use crate::inst::{Callee, Inst, Terminator};
use crate::module::{Function, Module};
use std::fmt;
use std::fmt::Write as _;

/// Render a module to text.
pub fn print_module(m: &Module) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "; module {}", m.name);
    if !m.globals.is_empty() {
        let _ = writeln!(s, "; globals: {} bytes", m.globals.len());
    }
    for f in &m.funcs {
        s.push('\n');
        s.push_str(&print_function(m, f));
    }
    s
}

/// Render one function to text.
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut s = String::new();
    let params: Vec<String> = f.params.iter().enumerate().map(|(i, t)| format!("{t} %{i}")).collect();
    let hardened = if f.hardened { "" } else { " unhardened" };
    let _ = writeln!(s, "define {} @{}({}){hardened} {{", f.ret_ty, f.name, params.join(", "));
    for (bi, b) in f.blocks.iter().enumerate() {
        let _ = writeln!(s, "bb{bi}: ; {}", b.name);
        for &iid in &b.insts {
            let data = &f.insts[iid.0 as usize];
            let mut line = String::from("  ");
            if let Some(r) = data.result {
                let _ = write!(line, "%{} = ", r.0);
            }
            line.push_str(&format_inst(m, &data.inst));
            s.push_str(&line);
            s.push('\n');
        }
        let _ = writeln!(s, "  {}", format_term(&b.term));
    }
    s.push_str("}\n");
    s
}

fn format_inst(m: &Module, inst: &Inst) -> String {
    match inst {
        Inst::Bin { op, ty, a, b } => format!("{} {ty} {a}, {b}", op.mnemonic()),
        Inst::Cmp { pred, ty, a, b } => format!("cmp {} {ty} {a}, {b}", pred.mnemonic()),
        Inst::Cast { op, to, val } => format!("{} {val} to {to}", op.mnemonic()),
        Inst::Load { ty, addr } => format!("load {ty}, {addr}"),
        Inst::Store { ty, val, addr } => format!("store {ty} {val}, {addr}"),
        Inst::Gep { base, index, scale } => format!("gep {base}, {index}, x{scale}"),
        Inst::Alloca { ty, count } => format!("alloca {ty}, {count}"),
        Inst::Select { cond, ty, a, b } => format!("select {cond}, {ty} {a}, {b}"),
        Inst::Phi { ty, incomings } => {
            let parts: Vec<String> = incomings.iter().map(|(b, v)| format!("[bb{}: {v}]", b.0)).collect();
            format!("phi {ty} {}", parts.join(", "))
        }
        Inst::Call { callee, args, ret_ty } => {
            let name = match callee {
                Callee::Func(fid) => {
                    format!("@{}", m.funcs.get(fid.0 as usize).map(|f| f.name.as_str()).unwrap_or("?"))
                }
                Callee::Builtin(b) => format!("@{}", b.name()),
            };
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            format!("call {ret_ty} {name}({})", args.join(", "))
        }
        Inst::ExtractElement { vec, idx, .. } => format!("extractelement {vec}, {idx}"),
        Inst::InsertElement { vec, val, idx, .. } => format!("insertelement {vec}, {val}, {idx}"),
        Inst::Shuffle { a, mask, .. } => format!("shufflevector {a}, {mask:?}"),
        Inst::Splat { val, ty } => format!("splat {val} to {ty}"),
        Inst::Ptest { mask, .. } => format!("ptest {mask}"),
        Inst::Gather { ty, addrs } => format!("gather {ty}, {addrs}"),
        Inst::Scatter { val, addrs, .. } => format!("scatter {val}, {addrs}"),
        Inst::AtomicRmw { op, ty, addr, val } => format!("atomicrmw {op:?} {ty} {addr}, {val}"),
        Inst::CmpXchg { ty, addr, expected, new } => format!("cmpxchg {ty} {addr}, {expected}, {new}"),
        Inst::Fence => "fence".to_string(),
    }
}

fn format_term(t: &Terminator) -> String {
    match t {
        Terminator::Br { target } => format!("br bb{}", target.0),
        Terminator::CondBr { cond, then_bb, else_bb } => {
            format!("br {cond}, bb{}, bb{}", then_bb.0, else_bb.0)
        }
        Terminator::PtestBr { flags, all_false, all_true, mixed } => format!(
            "ptest_br {flags}, false->bb{}, true->bb{}, mixed->bb{}",
            all_false.0, all_true.0, mixed.0
        ),
        Terminator::Ret { val: Some(v) } => format!("ret {v}"),
        Terminator::Ret { val: None } => "ret void".to_string(),
        Terminator::Unreachable => "unreachable".to_string(),
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&print_module(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{c64, FuncBuilder};
    use crate::inst::Builtin;
    use crate::types::Ty;

    #[test]
    fn prints_readable_text() {
        let mut m = Module::new("demo");
        let mut b = FuncBuilder::new("main", vec![Ty::I64], Ty::I64);
        let n = b.param(0);
        let x = b.add(n, c64(1));
        b.call_builtin(Builtin::OutputI64, vec![x.into()], Ty::Void);
        b.ret(x);
        m.add_func(b.finish());
        let text = print_module(&m);
        assert!(text.contains("define i64 @main(i64 %0)"));
        assert!(text.contains("%1 = add i64 %0, i64 1"));
        assert!(text.contains("call void @output_i64(%1)"));
        assert!(text.contains("ret %1"));
    }

    #[test]
    fn prints_vector_forms() {
        let mut m = Module::new("demo");
        let mut b = FuncBuilder::new("v", vec![Ty::I64], Ty::Void);
        let p = b.param(0);
        let v = b.splat(p, 4);
        let s = b.shuffle(v, vec![1, 2, 3, 0]);
        let t = b.ptest(s);
        let done = b.block("done");
        let rec = b.block("rec");
        b.ptest_br(t, done, done, rec);
        b.switch_to(done);
        b.ret_void();
        b.switch_to(rec);
        b.ret_void();
        m.add_func(b.finish());
        let text = print_module(&m);
        assert!(text.contains("splat %0 to <4 x i64>"));
        assert!(text.contains("shufflevector %1, [1, 2, 3, 0]"));
        assert!(text.contains("ptest_br"));
    }

    #[test]
    fn unhardened_marker_printed() {
        let mut m = Module::new("demo");
        let mut b = FuncBuilder::new("lib", vec![], Ty::Void);
        b.ret_void();
        let mut f = b.finish();
        f.hardened = false;
        m.add_func(f);
        assert!(print_module(&m).contains("unhardened"));
    }
}
