//! Open-loop load generation: deterministic request streams with
//! arrival schedules in *virtual* cycles, plus the key-hash routing that
//! assigns every request to its owning shard.
//!
//! Streams are a pure function of `(workload, requests, seed)`; arrivals
//! advance by uniform jitter around the configured mean gap so bursts
//! exist but the schedule replays bit-identically on every host.

use elzar_apps::ycsb::{self, YcsbWorkload};
use elzar_rng::{splitmix64, DetRng};

/// One request: identity, arrival time, routing key and the encoded
/// input-segment payload its serve entry consumes.
#[derive(Clone, Debug)]
pub struct Request {
    /// Global position in the stream (also the fault-schedule key).
    pub id: u64,
    /// Arrival time in virtual cycles.
    pub arrival: u64,
    /// Routing key (KV key, or the web request's parse hash).
    pub key: u64,
    /// Encoded request bytes for the VM input segment.
    pub payload: Box<[u8]>,
}

/// Owning shard of `key` under `shards`-way partitioning (stable: the
/// same key always routes to the same shard for a given shard count).
pub fn shard_of(key: u64, shards: u32) -> u32 {
    let mut s = key ^ 0xE12A_5EED;
    (splitmix64(&mut s) % u64::from(shards.max(1))) as u32
}

/// Re-space a stream's tail: keep every request's identity, key and
/// payload (so committed state and fault schedules are untouched) but
/// scale the inter-arrival gaps from index `from` on by `num / den`,
/// with a 1-cycle floor so arrivals stay strictly increasing.
///
/// This is the deterministic load-phase shaper: `num > den` thins the
/// tail into a lull (what makes an elastic controller scale *down*),
/// `num < den` compresses it into a burst. Because only arrival
/// timestamps change, a reshaped stream still satisfies every
/// digest/outcome invariance the differential tests pin.
pub fn rescale_gaps(stream: &mut [Request], from: usize, num: u64, den: u64) {
    let den = den.max(1);
    let gaps: Vec<u64> = (1..stream.len()).map(|i| stream[i].arrival - stream[i - 1].arrival).collect();
    for i in 1..stream.len() {
        let gap = if i >= from.max(1) { (gaps[i - 1] * num / den).max(1) } else { gaps[i - 1] };
        stream[i].arrival = stream[i - 1].arrival + gap;
    }
}

/// Next inter-arrival gap: uniform in `[1, 2*mean - 1]` (mean = `mean`).
fn gap(rng: &mut DetRng, mean: u64) -> u64 {
    let m = mean.max(1);
    rng.range_inclusive(1, 2 * m - 1)
}

/// YCSB stream over `n_keys` keys: one 8-byte encoded op per request,
/// keys drawn from the workload's distribution (A: Zipf, D: latest).
pub fn kv_stream(w: YcsbWorkload, requests: u64, n_keys: u64, mean_gap: u64, seed: u64) -> Vec<Request> {
    let ops = ycsb::generate(w, requests as usize, n_keys, seed);
    let mut rng = DetRng::seed_from_u64(seed ^ 0xA221_7EA1);
    let mut t = 0u64;
    ops.iter()
        .enumerate()
        .map(|(i, op)| {
            t += gap(&mut rng, mean_gap);
            Request {
                id: i as u64,
                arrival: t,
                key: op.key,
                payload: ycsb::encode(std::slice::from_ref(op)).into_boxed_slice(),
            }
        })
        .collect()
}

/// Web stream: `request_bytes`-sized random request lines, routed by the
/// parse hash of their 16-byte prefix.
pub fn web_stream(requests: u64, request_bytes: usize, mean_gap: u64, seed: u64) -> Vec<Request> {
    let mut rng = DetRng::seed_from_u64(seed ^ 0x3EB5_11FE);
    let mut t = 0u64;
    (0..requests)
        .map(|i| {
            t += gap(&mut rng, mean_gap);
            let payload: Box<[u8]> = (0..request_bytes).map(|_| (rng.next_u64() >> 32) as u8).collect();
            // Route by the same hash the server's hardened parse
            // computes over the request prefix.
            let key = elzar_apps::web::parse_hash(&payload);
            Request { id: i, arrival: t, key, payload }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let a = kv_stream(YcsbWorkload::A, 200, 128, 500, 7);
        let b = kv_stream(YcsbWorkload::A, 200, 128, 500, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.id, x.arrival, x.key, &x.payload), (y.id, y.arrival, y.key, &y.payload));
        }
        let w = web_stream(50, 64, 500, 7);
        let w2 = web_stream(50, 64, 500, 7);
        assert_eq!(w[49].arrival, w2[49].arrival);
        assert_eq!(w[49].payload, w2[49].payload);
    }

    #[test]
    fn arrivals_increase_with_the_right_mean() {
        let s = kv_stream(YcsbWorkload::D, 2_000, 64, 400, 3);
        let mut prev = 0;
        for r in &s {
            assert!(r.arrival > prev, "arrivals strictly increase");
            prev = r.arrival;
        }
        let mean = prev as f64 / s.len() as f64;
        assert!((320.0..480.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for key in 0..1_000u64 {
            let s4 = shard_of(key, 4);
            assert!(s4 < 4);
            assert_eq!(s4, shard_of(key, 4));
            assert_eq!(shard_of(key, 1), 0);
        }
        // All shards get some keys.
        let mut seen = [false; 4];
        for key in 0..64u64 {
            seen[shard_of(key, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rescale_preserves_identity_and_monotonicity() {
        let orig = kv_stream(YcsbWorkload::A, 100, 64, 400, 5);
        let mut lull = orig.clone();
        rescale_gaps(&mut lull, 50, 8, 1);
        let mut prev = 0;
        for (a, b) in orig.iter().zip(&lull) {
            assert_eq!((a.id, a.key, &a.payload), (b.id, b.key, &b.payload));
            assert!(b.arrival > prev, "arrivals strictly increase after rescale");
            prev = b.arrival;
        }
        // The head is untouched; the tail is stretched 8x.
        assert_eq!(orig[49].arrival, lull[49].arrival);
        let orig_tail = orig[99].arrival - orig[50].arrival;
        let lull_tail = lull[99].arrival - lull[50].arrival;
        assert!(lull_tail > orig_tail * 7, "tail {lull_tail} vs {orig_tail}");
        // Compression floors at 1-cycle gaps.
        let mut burst = orig.clone();
        rescale_gaps(&mut burst, 0, 1, 1_000_000);
        for w in burst.windows(2) {
            assert_eq!(w[1].arrival, w[0].arrival + 1);
        }
    }

    #[test]
    fn kv_payload_matches_ycsb_encoding() {
        let s = kv_stream(YcsbWorkload::A, 10, 32, 100, 9);
        for r in &s {
            assert_eq!(r.payload.len(), 8);
            let word = u64::from_le_bytes(r.payload[..8].try_into().unwrap());
            assert_eq!(word & !(1 << 63), r.key);
        }
    }
}
