//! Open-loop load generation: deterministic request streams with
//! arrival schedules in *virtual* cycles, plus the key-hash routing that
//! assigns every request to its owning shard.
//!
//! Streams are a pure function of `(workload, requests, seed)`; arrivals
//! advance by uniform jitter around the configured mean gap so bursts
//! exist but the schedule replays bit-identically on every host.
//!
//! ## Scenarios
//!
//! Steady-state streams miss exactly the behavior a serving fleet is
//! sized for: transients. A [`Scenario`] is a list of [`Phase`]s — each
//! a request count, a [`PhaseLoad`] shape (steady or linear ramp of the
//! mean inter-arrival gap), a per-phase SEU rate and an optional
//! correlated key-space rotation — that [`Scenario::compile`]s into one
//! deterministic request stream plus a piecewise per-request-id
//! fault-rate schedule (`ServeConfig::fault_phases`). Five named
//! [`ScenarioPreset`]s cover the canonical transients (diurnal swing,
//! flash crowd, lull, key-skew shift, fault storm), and
//! [`Scenario::random`] composes random phase sequences from an
//! `elzar_rng` seed for deterministic fuzzing. Everything — arrivals,
//! keys, payloads, fault rates — is a pure function of
//! `(scenario, stream kind, seed)`, so every differential invariance
//! that holds for plain streams holds verbatim for compiled scenarios.

use elzar_apps::ycsb::{self, YcsbWorkload};
use elzar_rng::{splitmix64, DetRng};
use elzar_sim::vt_add;

/// One request: identity, arrival time, routing key and the encoded
/// input-segment payload its serve entry consumes.
#[derive(Clone, Debug)]
pub struct Request {
    /// Global position in the stream (also the fault-schedule key).
    pub id: u64,
    /// Arrival time in virtual cycles.
    pub arrival: u64,
    /// Routing key (KV key, or the web request's parse hash).
    pub key: u64,
    /// Encoded request bytes for the VM input segment.
    pub payload: Box<[u8]>,
}

/// Owning shard of `key` under `shards`-way partitioning (stable: the
/// same key always routes to the same shard for a given shard count).
pub fn shard_of(key: u64, shards: u32) -> u32 {
    let mut s = key ^ 0xE12A_5EED;
    (splitmix64(&mut s) % u64::from(shards.max(1))) as u32
}

/// Re-space a stream's tail: keep every request's identity, key and
/// payload (so committed state and fault schedules are untouched) but
/// scale the inter-arrival gaps from index `from` on by `num / den`,
/// with a 1-cycle floor so arrivals stay strictly increasing.
///
/// This is the deterministic load-phase shaper: `num > den` thins the
/// tail into a lull (what makes an elastic controller scale *down*),
/// `num < den` compresses it into a burst. Because only arrival
/// timestamps change, a reshaped stream still satisfies every
/// digest/outcome invariance the differential tests pin.
pub fn rescale_gaps(stream: &mut [Request], from: usize, num: u64, den: u64) {
    let den = den.max(1);
    let gaps: Vec<u64> = (1..stream.len()).map(|i| stream[i].arrival - stream[i - 1].arrival).collect();
    for i in 1..stream.len() {
        let gap = if i >= from.max(1) { (gaps[i - 1] * num / den).max(1) } else { gaps[i - 1] };
        stream[i].arrival = vt_add("gen rescale arrival clock", stream[i - 1].arrival, gap);
    }
}

/// Next inter-arrival gap: uniform in `[1, 2*mean - 1]` (mean = `mean`).
fn gap(rng: &mut DetRng, mean: u64) -> u64 {
    let m = mean.max(1);
    rng.range_inclusive(1, 2 * m - 1)
}

/// YCSB stream over `n_keys` keys: one 8-byte encoded op per request,
/// keys drawn from the workload's distribution (A: Zipf, D: latest).
pub fn kv_stream(w: YcsbWorkload, requests: u64, n_keys: u64, mean_gap: u64, seed: u64) -> Vec<Request> {
    let ops = ycsb::generate(w, requests as usize, n_keys, seed);
    let mut rng = DetRng::seed_from_u64(seed ^ 0xA221_7EA1);
    let mut t = 0u64;
    ops.iter()
        .enumerate()
        .map(|(i, op)| {
            t = vt_add("gen kv arrival clock", t, gap(&mut rng, mean_gap));
            Request {
                id: i as u64,
                arrival: t,
                key: op.key,
                payload: ycsb::encode(std::slice::from_ref(op)).into_boxed_slice(),
            }
        })
        .collect()
}

/// Web stream: `request_bytes`-sized random request lines, routed by the
/// parse hash of their 16-byte prefix.
pub fn web_stream(requests: u64, request_bytes: usize, mean_gap: u64, seed: u64) -> Vec<Request> {
    let mut rng = DetRng::seed_from_u64(seed ^ 0x3EB5_11FE);
    let mut t = 0u64;
    (0..requests)
        .map(|i| {
            t = vt_add("gen web arrival clock", t, gap(&mut rng, mean_gap));
            let payload: Box<[u8]> = (0..request_bytes).map(|_| (rng.next_u64() >> 32) as u8).collect();
            // Route by the same hash the server's hardened parse
            // computes over the request prefix.
            let key = elzar_apps::web::parse_hash(&payload);
            Request { id: i, arrival: t, key, payload }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Scenario library
// ---------------------------------------------------------------------------

/// How one phase spaces its arrivals.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PhaseLoad {
    /// Constant mean inter-arrival gap (cycles); per-arrival jitter is
    /// uniform in `[1, 2*gap - 1]` like the plain generators.
    Steady {
        /// Mean gap in cycles.
        mean_gap: u64,
    },
    /// The mean gap interpolates linearly from `from` (first request of
    /// the phase) to `to` (last) — a diurnal shoulder or a flash-crowd
    /// onset, steep enough to matter but gradual enough that a
    /// rate forecaster can see it coming.
    Ramp {
        /// Mean gap at the phase's first request.
        from: u64,
        /// Mean gap at the phase's last request.
        to: u64,
    },
}

/// One scenario phase: `requests` arrivals under one load shape, one
/// SEU rate and one key-space rotation. Zero-length phases are legal
/// and contribute nothing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Phase {
    /// Phase label (report/timeline use only — no semantic weight).
    pub name: &'static str,
    /// Requests in this phase (0 is legal).
    pub requests: u64,
    /// Arrival spacing across the phase.
    pub load: PhaseLoad,
    /// Per-request SEU probability in ppm while this phase lasts — the
    /// piecewise fault-rate schedule the serving runtime consults by
    /// *global request id*, which is what keeps fault placement
    /// invariant across shard counts, batch policies and scaling
    /// schedules.
    pub fault_ppm: u32,
    /// Correlated key-skew shift, KV streams only: every key of the
    /// phase is rotated by `n_keys * key_rotate_pct / 100`, moving the
    /// whole Zipf head to a different key range at once (web streams
    /// route by payload hash and ignore this).
    pub key_rotate_pct: u8,
}

/// What kind of stream a scenario compiles to — the service-specific
/// half of [`Scenario::compile`] (`Service::stream_kind` builds it from
/// a `ServeApp`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StreamKind {
    /// YCSB key-value stream: op mix from `workload`, keys in
    /// `[0, n_keys)`.
    Kv {
        /// Read/update mix and key distribution.
        workload: YcsbWorkload,
        /// Resident table size.
        n_keys: u64,
    },
    /// Web request lines of `request_bytes` random bytes, routed by
    /// parse hash.
    Web {
        /// Encoded request size in bytes.
        request_bytes: usize,
    },
}

/// A deterministic multi-phase load scenario. Compile it against a
/// [`StreamKind`] and a seed to get the request stream and the
/// per-phase fault-rate schedule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Scenario {
    /// Scenario label.
    pub name: &'static str,
    /// The phases, in arrival order.
    pub phases: Vec<Phase>,
}

/// A compiled scenario: the request stream, the piecewise fault-rate
/// schedule keyed by global request id, and the phase boundaries for
/// reporting.
#[derive(Clone, Debug)]
pub struct CompiledScenario {
    /// The arrival-ordered request stream.
    pub stream: Vec<Request>,
    /// `(first request id, ppm)` per phase, sorted by id — plug into
    /// `ServeConfig::fault_phases`.
    pub fault_phases: Vec<(u64, u32)>,
    /// `(phase name, first request id)` per phase, zero-length phases
    /// included.
    pub boundaries: Vec<(&'static str, u64)>,
}

impl CompiledScenario {
    /// The SEU rate (ppm) in force for request `id` — the last phase
    /// starting at or before it (0 past the stream's end or for an
    /// empty scenario).
    pub fn fault_ppm_at(&self, id: u64) -> u32 {
        let mut ppm = 0;
        for &(from, p) in &self.fault_phases {
            if from <= id {
                ppm = p;
            } else {
                break;
            }
        }
        ppm
    }
}

impl Scenario {
    /// Total requests across all phases.
    pub fn requests(&self) -> u64 {
        self.phases.iter().map(|p| p.requests).sum()
    }

    /// Compile to a request stream + fault schedule. Deterministic: a
    /// pure function of `(self, kind, seed)`. KV streams draw one op
    /// sequence for the whole scenario (so two scenarios differing only
    /// in arrival shapes serve the same committed sequences), then
    /// apply each phase's key rotation; arrivals advance by uniform
    /// jitter around the phase's (possibly ramping) mean gap with a
    /// 1-cycle floor, so they are strictly increasing.
    pub fn compile(&self, kind: StreamKind, seed: u64) -> CompiledScenario {
        let total = self.requests();
        let ops = match kind {
            StreamKind::Kv { workload, n_keys } => ycsb::generate(workload, total as usize, n_keys, seed),
            StreamKind::Web { .. } => Vec::new(),
        };
        let mut rng = DetRng::seed_from_u64(seed ^ 0x5CE2_A210_AB1E_11FE);
        let mut stream = Vec::with_capacity(total as usize);
        let mut fault_phases = Vec::with_capacity(self.phases.len());
        let mut boundaries = Vec::with_capacity(self.phases.len());
        let mut t = 0u64;
        let mut id = 0u64;
        for phase in &self.phases {
            fault_phases.push((id, phase.fault_ppm));
            boundaries.push((phase.name, id));
            for i in 0..phase.requests {
                let mean = match phase.load {
                    PhaseLoad::Steady { mean_gap } => mean_gap,
                    PhaseLoad::Ramp { from, to } => {
                        // Linear interpolation across the phase; the
                        // last request of the phase lands exactly on
                        // `to`.
                        let span = phase.requests.max(2) - 1;
                        (from as i64 + (to as i64 - from as i64) * i.min(span) as i64 / span as i64) as u64
                    }
                };
                t = vt_add("gen scenario arrival clock", t, gap(&mut rng, mean));
                let (key, payload): (u64, Box<[u8]>) = match kind {
                    StreamKind::Kv { n_keys, .. } => {
                        let mut op = ops[id as usize];
                        let rot = n_keys * u64::from(phase.key_rotate_pct.min(100)) / 100;
                        op.key = (op.key + rot) % n_keys.max(1);
                        (op.key, ycsb::encode(std::slice::from_ref(&op)).into_boxed_slice())
                    }
                    StreamKind::Web { request_bytes } => {
                        let payload: Box<[u8]> =
                            (0..request_bytes).map(|_| (rng.next_u64() >> 32) as u8).collect();
                        (elzar_apps::web::parse_hash(&payload), payload)
                    }
                };
                stream.push(Request { id, arrival: t, key, payload });
                id += 1;
            }
        }
        CompiledScenario { stream, fault_phases, boundaries }
    }

    /// A random scenario composition: 2–5 phases with random shapes
    /// (steady / ramp between random gaps in `[base_gap/6, 3*base_gap]`),
    /// random SEU rates (off / `base_ppm` / a storm) and random key
    /// rotations, splitting `requests` at random cut points — so
    /// zero-length phases occur naturally. A pure function of the seed:
    /// the deterministic-fuzz suite reruns failing seeds verbatim.
    pub fn random(seed: u64, requests: u64, base_gap: u64, base_ppm: u32) -> Scenario {
        let mut rng = DetRng::seed_from_u64(seed ^ 0xF022_5CEA_A210_11FE);
        let n = 2 + rng.below(4) as usize; // 2..=5 phases
                                           // Random split: n-1 sorted cut points over [0, requests].
        let mut cuts: Vec<u64> = (1..n).map(|_| rng.below(requests + 1)).collect();
        cuts.sort_unstable();
        cuts.push(requests);
        let lo = (base_gap / 6).max(1);
        let hi = (base_gap * 3).max(1);
        let storm = (u64::from(base_ppm.max(20_000)) * 10).clamp(150_000, 400_000) as u32;
        let mut phases = Vec::with_capacity(n);
        let mut prev = 0u64;
        for cut in cuts {
            let len = cut - prev;
            prev = cut;
            let (name, load) = match rng.below(3) {
                0 => ("steady", PhaseLoad::Steady { mean_gap: rng.range_inclusive(lo, hi) }),
                1 => ("ramp", {
                    let from = rng.range_inclusive(lo, hi);
                    let to = rng.range_inclusive(lo, hi);
                    PhaseLoad::Ramp { from, to }
                }),
                _ => ("burst", PhaseLoad::Steady { mean_gap: lo }),
            };
            let fault_ppm = match rng.below(4) {
                0 => 0,
                1 | 2 => base_ppm,
                _ => storm,
            };
            let key_rotate_pct = [0u8, 25, 50][rng.below(3) as usize];
            phases.push(Phase { name, requests: len, load, fault_ppm, key_rotate_pct });
        }
        Scenario { name: "random", phases }
    }
}

/// The named transients every serving story gets asked about. Each
/// compiles to a phase list scaled to a request budget, a base mean gap
/// and a base SEU rate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScenarioPreset {
    /// Slow swing: quiet night, long morning ramp, busy plateau, long
    /// evening ramp, quiet night.
    Diurnal,
    /// Steady traffic, a steep (but multi-epoch) onset into a 6x
    /// crowd, then decay back — the transient predictive scaling is
    /// for.
    FlashCrowd,
    /// Busy start fading into a deep lull and recovering — what makes a
    /// controller retire shards (and regret it if it retires into the
    /// recovery ramp).
    Lull,
    /// Constant load whose Zipf head jumps to a different key range
    /// twice — correlated key-skew shifts that re-skew per-shard load
    /// without any rate change.
    SkewShift,
    /// Constant load with a cosmic-ray burst: the SEU rate spikes an
    /// order of magnitude for the middle third.
    FaultStorm,
}

impl ScenarioPreset {
    /// All presets, report order.
    pub fn all() -> [ScenarioPreset; 5] {
        [
            ScenarioPreset::Diurnal,
            ScenarioPreset::FlashCrowd,
            ScenarioPreset::Lull,
            ScenarioPreset::SkewShift,
            ScenarioPreset::FaultStorm,
        ]
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioPreset::Diurnal => "diurnal",
            ScenarioPreset::FlashCrowd => "flash-crowd",
            ScenarioPreset::Lull => "lull",
            ScenarioPreset::SkewShift => "skew-shift",
            ScenarioPreset::FaultStorm => "fault-storm",
        }
    }

    /// Build the preset's scenario: `requests` arrivals total around a
    /// `base_gap` mean, with `base_ppm` as the ambient SEU rate.
    pub fn scenario(self, requests: u64, base_gap: u64, base_ppm: u32) -> Scenario {
        let g = base_gap.max(8);
        let r = requests;
        let steady = |name, requests, mean_gap, fault_ppm, rot| Phase {
            name,
            requests,
            load: PhaseLoad::Steady { mean_gap },
            fault_ppm,
            key_rotate_pct: rot,
        };
        let ramp = |name, requests, from, to, fault_ppm| Phase {
            name,
            requests,
            load: PhaseLoad::Ramp { from, to },
            fault_ppm,
            key_rotate_pct: 0,
        };
        let phases = match self {
            ScenarioPreset::Diurnal => vec![
                steady("night", r / 6, 3 * g, base_ppm, 0),
                ramp("morning", r / 4, 3 * g, g / 2, base_ppm),
                steady("peak", r / 4, g / 2, base_ppm, 0),
                ramp("evening", r / 6, g / 2, 3 * g, base_ppm),
                steady("night", r - (r / 6 + r / 4 + r / 4 + r / 6), 3 * g, base_ppm, 0),
            ],
            ScenarioPreset::FlashCrowd => vec![
                steady("calm", r / 4, g, base_ppm, 0),
                ramp("onset", r / 8, g, g / 6, base_ppm),
                steady("crowd", r / 4, g / 6, base_ppm, 0),
                ramp("decay", r / 8, g / 6, g, base_ppm),
                steady("calm", r - (r / 4 + r / 8 + r / 4 + r / 8), g, base_ppm, 0),
            ],
            ScenarioPreset::Lull => vec![
                steady("busy", r / 3, g / 2, base_ppm, 0),
                ramp("fade", r / 6, g / 2, 4 * g, base_ppm),
                steady("quiet", r / 4, 4 * g, base_ppm, 0),
                ramp("recover", r - (r / 3 + r / 6 + r / 4), 4 * g, g / 2, base_ppm),
            ],
            ScenarioPreset::SkewShift => vec![
                steady("skew-a", r / 3, g, base_ppm, 0),
                steady("skew-b", r / 3, g, base_ppm, 37),
                steady("skew-c", r - 2 * (r / 3), g, base_ppm, 71),
            ],
            ScenarioPreset::FaultStorm => {
                let storm = (u64::from(base_ppm.max(20_000)) * 10).clamp(150_000, 400_000) as u32;
                vec![
                    steady("calm", r / 3, g, base_ppm, 0),
                    steady("storm", r / 3, g, storm, 0),
                    steady("calm", r - 2 * (r / 3), g, base_ppm, 0),
                ]
            }
        };
        Scenario { name: self.label(), phases }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let a = kv_stream(YcsbWorkload::A, 200, 128, 500, 7);
        let b = kv_stream(YcsbWorkload::A, 200, 128, 500, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.id, x.arrival, x.key, &x.payload), (y.id, y.arrival, y.key, &y.payload));
        }
        let w = web_stream(50, 64, 500, 7);
        let w2 = web_stream(50, 64, 500, 7);
        assert_eq!(w[49].arrival, w2[49].arrival);
        assert_eq!(w[49].payload, w2[49].payload);
    }

    #[test]
    fn arrivals_increase_with_the_right_mean() {
        let s = kv_stream(YcsbWorkload::D, 2_000, 64, 400, 3);
        let mut prev = 0;
        for r in &s {
            assert!(r.arrival > prev, "arrivals strictly increase");
            prev = r.arrival;
        }
        let mean = prev as f64 / s.len() as f64;
        assert!((320.0..480.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for key in 0..1_000u64 {
            let s4 = shard_of(key, 4);
            assert!(s4 < 4);
            assert_eq!(s4, shard_of(key, 4));
            assert_eq!(shard_of(key, 1), 0);
        }
        // All shards get some keys.
        let mut seen = [false; 4];
        for key in 0..64u64 {
            seen[shard_of(key, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rescale_preserves_identity_and_monotonicity() {
        let orig = kv_stream(YcsbWorkload::A, 100, 64, 400, 5);
        let mut lull = orig.clone();
        rescale_gaps(&mut lull, 50, 8, 1);
        let mut prev = 0;
        for (a, b) in orig.iter().zip(&lull) {
            assert_eq!((a.id, a.key, &a.payload), (b.id, b.key, &b.payload));
            assert!(b.arrival > prev, "arrivals strictly increase after rescale");
            prev = b.arrival;
        }
        // The head is untouched; the tail is stretched 8x.
        assert_eq!(orig[49].arrival, lull[49].arrival);
        let orig_tail = orig[99].arrival - orig[50].arrival;
        let lull_tail = lull[99].arrival - lull[50].arrival;
        assert!(lull_tail > orig_tail * 7, "tail {lull_tail} vs {orig_tail}");
        // Compression floors at 1-cycle gaps.
        let mut burst = orig.clone();
        rescale_gaps(&mut burst, 0, 1, 1_000_000);
        for w in burst.windows(2) {
            assert_eq!(w[1].arrival, w[0].arrival + 1);
        }
    }

    #[test]
    fn kv_payload_matches_ycsb_encoding() {
        let s = kv_stream(YcsbWorkload::A, 10, 32, 100, 9);
        for r in &s {
            assert_eq!(r.payload.len(), 8);
            let word = u64::from_le_bytes(r.payload[..8].try_into().unwrap());
            assert_eq!(word & !(1 << 63), r.key);
        }
    }

    const KV: StreamKind = StreamKind::Kv { workload: YcsbWorkload::A, n_keys: 64 };

    #[test]
    fn scenario_compile_is_deterministic_and_total() {
        for preset in ScenarioPreset::all() {
            let sc = preset.scenario(240, 300, 50_000);
            assert_eq!(sc.requests(), 240, "{}: presets must hit the request budget", preset.label());
            let a = sc.compile(KV, 0xBEEF);
            let b = sc.compile(KV, 0xBEEF);
            assert_eq!(a.stream.len(), 240);
            assert_eq!(a.fault_phases, b.fault_phases);
            assert_eq!(a.boundaries, b.boundaries);
            let mut prev = 0;
            for (x, y) in a.stream.iter().zip(&b.stream) {
                assert_eq!((x.id, x.arrival, x.key, &x.payload), (y.id, y.arrival, y.key, &y.payload));
                assert!(x.arrival > prev, "arrivals strictly increase");
                prev = x.arrival;
            }
        }
    }

    #[test]
    fn zero_length_phases_are_legal() {
        // A scenario with empty phases at the front, middle and back
        // compiles to exactly the non-empty phases' requests, with
        // boundaries recorded for every phase (including the empty
        // ones, which share their successor's first id).
        let z = |name| Phase {
            name,
            requests: 0,
            load: PhaseLoad::Ramp { from: 100, to: 1 },
            fault_ppm: 999_999,
            key_rotate_pct: 99,
        };
        let p = |name, requests| Phase {
            name,
            requests,
            load: PhaseLoad::Steady { mean_gap: 50 },
            fault_ppm: 10_000,
            key_rotate_pct: 0,
        };
        let sc =
            Scenario { name: "holes", phases: vec![z("a"), p("b", 5), z("c"), z("d"), p("e", 3), z("f")] };
        let c = sc.compile(KV, 7);
        assert_eq!(c.stream.len(), 8);
        assert_eq!(c.boundaries, vec![("a", 0), ("b", 0), ("c", 5), ("d", 5), ("e", 5), ("f", 8)]);
        // The fault schedule is consulted by id: ids 0..5 get phase b's
        // rate — the *last* schedule entry at or before the id wins, so
        // empty phases never shadow real requests... except at their
        // exact boundary, where the last-writer (the empty phase) is
        // fine because zero requests carry its rate.
        assert_eq!(c.fault_ppm_at(0), 10_000);
        assert_eq!(c.fault_ppm_at(4), 10_000);
        // id 5 sits at the seam where c, d, e all start; e is last.
        assert_eq!(c.fault_ppm_at(5), 10_000);
        assert_eq!(c.fault_ppm_at(7), 10_000);
    }

    #[test]
    fn ramp_interpolation_hits_both_endpoints_and_never_zero() {
        // A single long down-ramp: first gap drawn around `from`, last
        // around `to`, and every gap ≥ 1 even when `to` is 1.
        let sc = Scenario {
            name: "ramp",
            phases: vec![Phase {
                name: "down",
                requests: 400,
                load: PhaseLoad::Ramp { from: 600, to: 1 },
                fault_ppm: 0,
                key_rotate_pct: 0,
            }],
        };
        let c = sc.compile(KV, 11);
        let gaps: Vec<u64> =
            (1..c.stream.len()).map(|i| c.stream[i].arrival - c.stream[i - 1].arrival).collect();
        assert!(gaps.iter().all(|&g| g >= 1), "gaps never drop to 0");
        // Head gaps average near 600, tail gaps near 1 (jitter is
        // uniform in [1, 2m-1], so the mean tracks m).
        let head: u64 = gaps[..50].iter().sum::<u64>() / 50;
        let tail: u64 = gaps[gaps.len() - 50..].iter().sum::<u64>() / 50;
        assert!((400..800).contains(&head), "head mean {head}");
        assert!(tail < head / 5, "tail mean {tail} vs head {head}");
        // The very last request's mean is exactly `to` = 1, and jitter
        // in [1, 2*1-1] is the point value 1.
        assert_eq!(*gaps.last().unwrap(), 1);
        // A 1-request ramp phase is legal (span clamps; gap uses `from`).
        let one = Scenario {
            name: "one",
            phases: vec![Phase {
                name: "p",
                requests: 1,
                load: PhaseLoad::Ramp { from: 100, to: 900 },
                fault_ppm: 0,
                key_rotate_pct: 0,
            }],
        };
        assert_eq!(one.compile(KV, 3).stream.len(), 1);
    }

    #[test]
    fn rescale_gaps_seam_rounding_edges() {
        // num/den rounding at a phase seam: a 1-cycle gap scaled by
        // 2/3 floors to 0 and must clamp to 1; scaling by 3/2 keeps it
        // at 1 (floor) — never 0 unless the caller asked for gap 0,
        // which the API can't express.
        let mk = |gaps: &[u64]| {
            let mut t = 0;
            gaps.iter()
                .enumerate()
                .map(|(i, &g)| {
                    t += g;
                    Request { id: i as u64, arrival: t, key: 0, payload: Box::new([]) }
                })
                .collect::<Vec<_>>()
        };
        let mut s = mk(&[1, 1, 3, 1]);
        rescale_gaps(&mut s, 0, 2, 3);
        let gaps: Vec<u64> = (1..s.len()).map(|i| s[i].arrival - s[i - 1].arrival).collect();
        assert_eq!(gaps, vec![1, 2, 1], "2/3 of [1,3,1] floors then clamps");
        // Empty and single-request streams are no-ops, not panics.
        let mut empty: Vec<Request> = Vec::new();
        rescale_gaps(&mut empty, 0, 7, 2);
        let mut single = mk(&[5]);
        rescale_gaps(&mut single, 0, 7, 2);
        assert_eq!(single[0].arrival, 5);
        // den = 0 clamps to 1 rather than dividing by zero.
        let mut z = mk(&[4, 4]);
        rescale_gaps(&mut z, 0, 3, 0);
        assert_eq!(z[1].arrival - z[0].arrival, 12);
    }

    #[test]
    fn key_rotation_shifts_the_head_but_preserves_ops() {
        // SkewShift rotates whole phases; the op mix (read/update flags)
        // is unchanged, only keys move, and rotated keys stay in range.
        let sc = ScenarioPreset::SkewShift.scenario(300, 200, 0);
        let c = sc.compile(KV, 21);
        let plain = Scenario {
            name: "plain",
            phases: sc.phases.iter().map(|p| Phase { key_rotate_pct: 0, ..*p }).collect(),
        }
        .compile(KV, 21);
        let mut moved = 0;
        for (r, p) in c.stream.iter().zip(&plain.stream) {
            assert!(r.key < 64);
            let flag = u64::from_le_bytes(r.payload[..8].try_into().unwrap()) >> 63;
            let pflag = u64::from_le_bytes(p.payload[..8].try_into().unwrap()) >> 63;
            assert_eq!(flag, pflag, "op kind survives rotation");
            assert_eq!(r.arrival, p.arrival, "arrivals unaffected by rotation");
            moved += u64::from(r.key != p.key);
        }
        assert!(moved > 100, "rotation moved only {moved} keys");
    }

    #[test]
    fn random_scenarios_are_seed_deterministic_and_budgeted() {
        for seed in 0..64u64 {
            let a = Scenario::random(seed, 150, 300, 50_000);
            let b = Scenario::random(seed, 150, 300, 50_000);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert_eq!(a.requests(), 150, "seed {seed} lost requests");
            assert!((2..=5).contains(&a.phases.len()));
            let ca = a.compile(KV, seed);
            let cb = b.compile(KV, seed);
            assert_eq!(ca.stream.len(), 150);
            assert_eq!(ca.fault_phases, cb.fault_phases);
            for (x, y) in ca.stream.iter().zip(&cb.stream) {
                assert_eq!((x.id, x.arrival, x.key, &x.payload), (y.id, y.arrival, y.key, &y.payload));
            }
        }
    }

    #[test]
    fn web_scenarios_route_by_parse_hash() {
        let sc = ScenarioPreset::FlashCrowd.scenario(60, 200, 0);
        let c = sc.compile(StreamKind::Web { request_bytes: 64 }, 5);
        for r in &c.stream {
            assert_eq!(r.key, elzar_apps::web::parse_hash(&r.payload));
            assert_eq!(r.payload.len(), 64);
        }
    }
}
