//! Elastic-shard control: a fixed virtual-partition space, the mutable
//! slot → shard ownership map, and the queue-depth scaling policy.
//!
//! ## Partitions
//!
//! Keys hash into [`PARTITION_SLOTS`] fixed *slots* (the unit of
//! migration — small enough that a scale event moves a useful fraction
//! of a shard's keyspace, large enough that the ownership map stays a
//! 64-entry table). A [`Partition`] maps every slot to its owning
//! shard; routing a request is `owner[slot_of(key)]`. The slot hash is
//! a pure function of the key, so a key's slot never changes — only the
//! slot's owner does, and only at controller epochs, which is what
//! keeps per-key request order (and therefore the resident-state
//! digest) invariant under scaling.
//!
//! ## Policy
//!
//! At every epoch boundary the controller observes each active shard's
//! *virtual-time queue occupancy* — admitted requests whose completion
//! lies after the epoch's last arrival — and applies one decision with
//! hysteresis:
//!
//! * **scale up** when the deepest queue reaches
//!   `ServeConfig::scale_up_backlog` and the fleet is below
//!   `shards_max`: the deepest shard donates the upper half of its
//!   slots to a joiner booted from the donor's snapshot
//!   (`elzar_fault::replay_suffix_where` reconstructs the migrated
//!   range);
//! * **scale down** when *every* queue is at or below
//!   `ServeConfig::scale_down_backlog` and more than one shard is
//!   active: the shallowest shard retires, its slots absorbed by the
//!   next-shallowest survivor via committed-log replay.
//!
//! Both triggers, the donor/leaver choices and the slot split are pure
//! functions of virtual-time state, so the scaling schedule is
//! deterministic and independent of host workers.

use crate::gen::shard_of;

/// Fixed virtual partitions (migration granularity). Keys hash into
/// this many slots; shards own sets of slots.
pub const PARTITION_SLOTS: u32 = 64;

/// Owning slot of `key` (stable: a pure function of the key).
pub fn slot_of(key: u64) -> u32 {
    shard_of(key, PARTITION_SLOTS)
}

/// The mutable slot → shard ownership map.
#[derive(Clone, Debug)]
pub struct Partition {
    owner: [u32; PARTITION_SLOTS as usize],
}

impl Partition {
    /// Initial contiguous assignment of the slot space to `shards`
    /// shards (ids `0..shards`).
    pub fn initial(shards: u32) -> Partition {
        let shards = shards.max(1) as u64;
        let mut owner = [0u32; PARTITION_SLOTS as usize];
        for (s, o) in owner.iter_mut().enumerate() {
            *o = (s as u64 * shards / u64::from(PARTITION_SLOTS)) as u32;
        }
        Partition { owner }
    }

    /// Shard owning `key` under the current assignment.
    pub fn owner_of(&self, key: u64) -> u32 {
        self.owner[slot_of(key) as usize]
    }

    /// Bitmask of the slots `shard` currently owns (bit `s` = slot `s`).
    pub fn slots_of(&self, shard: u32) -> u64 {
        let mut mask = 0u64;
        for (s, &o) in self.owner.iter().enumerate() {
            if o == shard {
                mask |= 1 << s;
            }
        }
        mask
    }

    /// Reassign every slot in `mask` to `to`.
    pub fn assign(&mut self, mask: u64, to: u32) {
        for (s, o) in self.owner.iter_mut().enumerate() {
            if mask >> s & 1 == 1 {
                *o = to;
            }
        }
    }
}

/// The upper half (by slot index) of a slot mask — the range a donor
/// hands to a joining shard. Empty when the donor owns a single slot
/// (an unsplittable shard never donates).
pub fn split_upper_half(mask: u64) -> u64 {
    let n = mask.count_ones();
    if n < 2 {
        return 0;
    }
    let mut keep = n - n / 2; // donor keeps the larger half on odd counts
    let mut taken = 0u64;
    for s in 0..PARTITION_SLOTS {
        if mask >> s & 1 == 1 {
            if keep > 0 {
                keep -= 1;
            } else {
                taken |= 1 << s;
            }
        }
    }
    taken
}

/// One elastic-scaling event, recorded in the [`crate::ServeReport`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScaleEvent {
    /// A joiner booted from `donor`'s snapshot and took over `slots`
    /// partitions, replaying `replayed` committed suffix requests.
    Up {
        /// Controller epoch (0-based) the event fired at.
        epoch: u32,
        /// Donor shard id.
        donor: u32,
        /// New shard id.
        joiner: u32,
        /// Migrated slot count.
        slots: u32,
        /// Committed requests replayed to reconstruct the range.
        replayed: u64,
    },
    /// `leaver` retired; `recipient` absorbed its `slots` partitions by
    /// replaying `replayed` committed-log requests.
    Down {
        /// Controller epoch (0-based) the event fired at.
        epoch: u32,
        /// Retiring shard id.
        leaver: u32,
        /// Surviving shard taking over the slots.
        recipient: u32,
        /// Migrated slot count.
        slots: u32,
        /// Committed requests replayed to reconstruct the range.
        replayed: u64,
    },
}

/// A controller decision at one epoch boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Decision {
    /// Add a shard; the named donor splits its slots.
    Up {
        /// Donor shard id (deepest queue).
        donor: u32,
    },
    /// Retire `leaver`, its slots absorbed by `recipient`.
    Down {
        /// Retiring shard id (shallowest queue).
        leaver: u32,
        /// Absorbing shard id (next-shallowest).
        recipient: u32,
    },
    /// No change.
    Hold,
}

/// The scaling policy: one decision per epoch from the active shards'
/// `(id, backlog)` pairs. Ties break on shard id (lowest id donates /
/// absorbs, highest id retires) so the schedule is deterministic.
pub(crate) fn decide(backlogs: &[(u32, usize)], up_at: usize, down_at: usize, shards_max: u32) -> Decision {
    if backlogs.is_empty() {
        return Decision::Hold;
    }
    let deepest = backlogs.iter().fold(backlogs[0], |best, &b| if b.1 > best.1 { b } else { best });
    if deepest.1 >= up_at.max(1) && backlogs.len() < shards_max.max(1) as usize {
        elzar_obs::debug::emit("controller", || {
            format!("scale-up trigger: shard {} backlog {} >= {up_at} ({backlogs:?})", deepest.0, deepest.1)
        });
        return Decision::Up { donor: deepest.0 };
    }
    if backlogs.len() > 1 && backlogs.iter().all(|&(_, d)| d <= down_at) {
        let leaver = backlogs.iter().fold(backlogs[0], |best, &b| {
            if b.1 < best.1 || (b.1 == best.1 && b.0 > best.0) {
                b
            } else {
                best
            }
        });
        let rest: Vec<(u32, usize)> = backlogs.iter().copied().filter(|&(id, _)| id != leaver.0).collect();
        let recipient = rest.iter().fold(rest[0], |best, &b| if b.1 < best.1 { b } else { best });
        elzar_obs::debug::emit("controller", || {
            format!("scale-down trigger: all backlogs <= {down_at} ({backlogs:?})")
        });
        return Decision::Down { leaver: leaver.0, recipient: recipient.0 };
    }
    Decision::Hold
}

// ---------------------------------------------------------------------------
// Predictive scaling
// ---------------------------------------------------------------------------

/// Which scaling policy `serve_adaptive` runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ScalingPolicy {
    /// Queue-occupancy hysteresis only (the PR 5 controller): react to
    /// backlog that has already built.
    #[default]
    Reactive,
    /// Reactive triggers *plus* a Holt arrival-rate forecast: pre-boot
    /// a joiner when the [`FORECAST_HORIZON`]-epoch-ahead forecast
    /// exceeds the smoothed level by more than 3/2 (trading a snapshot
    /// clone for tail latency before the queue builds), and hold
    /// retirements while that forecast exceeds the level by more than
    /// 5/4 (don't retire into a ramp).
    /// At constant load the forecast converges exactly onto the level,
    /// neither trigger can fire, and every decision matches
    /// [`ScalingPolicy::Reactive`] bit-for-bit.
    Predictive,
}

/// Fixed-point scale for arrival rates: rates are
/// `admits * RATE_FP / cycles`, kept in integers so the forecast is a
/// pure function of the stream (no floats, no host variance).
pub const RATE_FP: u64 = 1 << 20;

/// Epochs of lookahead the predictive triggers evaluate the Holt
/// forecast at (`level + FORECAST_HORIZON * trend`). Four epochs turns
/// a sustained ramp's trend into a fire signal while per-epoch arrival
/// jitter (a few percent of the level after smoothing) stays far below
/// the 1.5x trigger band.
pub const FORECAST_HORIZON: u32 = 4;

/// Holt linear (double-exponential) smoothing over the per-epoch
/// arrival rate, in integer fixed point: `α = 1/2`, `β = 1/4`, both
/// exact shifts. Deterministic and worker-independent because its only
/// input is the admitted-arrival rate of each epoch's stream chunk —
/// a property of the *stream*, not of batching or host scheduling.
#[derive(Clone, Copy, Debug, Default)]
pub struct Forecaster {
    level: i64,
    trend: i64,
    seen: bool,
}

impl Forecaster {
    /// Fold in one epoch's observed arrival rate (fixed-point,
    /// [`RATE_FP`] units).
    pub fn observe(&mut self, rate: u64) {
        let x = rate.min(i64::MAX as u64) as i64;
        if !self.seen {
            self.level = x;
            self.trend = 0;
            self.seen = true;
            return;
        }
        // level' = (x + level + trend) / 2       (α = 1/2)
        // trend' = (level' - level) / 4 + 3*trend/4   (β = 1/4)
        let prev = self.level;
        self.level = (x + prev + self.trend) >> 1;
        self.trend = (self.level - prev + 3 * self.trend) >> 2;
    }

    /// One-epoch-ahead rate forecast (never negative).
    pub fn forecast(&self) -> u64 {
        self.forecast_ahead(1)
    }

    /// `h`-epoch-ahead rate forecast, `level + h * trend` (never
    /// negative). The predictive triggers use
    /// [`FORECAST_HORIZON`] epochs: with `α = 1/2` the smoothed level
    /// tracks a step almost as fast as the one-step forecast, so the
    /// one-step ratio barely moves — the *trend* is the ramp signal,
    /// and a multi-epoch horizon amplifies it above the steady-state
    /// jitter floor. At constant input the trend is exactly 0, so every
    /// horizon forecasts exactly the level.
    pub fn forecast_ahead(&self, h: u32) -> u64 {
        (self.level + i64::from(h) * self.trend).max(0) as u64
    }

    /// The smoothed current rate (never negative) — the baseline the
    /// predictive triggers compare the forecast against.
    pub fn level(&self) -> u64 {
        self.level.max(0) as u64
    }
}

/// Overlay the predictive triggers on a reactive decision. Pure
/// function of `(reactive decision, forecast, level, backlogs)`:
///
/// * `Hold` becomes `Up` when the forecast exceeds the smoothed level
///   by more than 3/2 and the fleet has headroom — the deepest shard
///   donates (same tie-break as [`decide`]) so the pre-booted joiner
///   lands where pressure will concentrate;
/// * `Down` becomes `Hold` while the forecast exceeds the level by
///   more than 5/4 — never retire into a predicted ramp;
/// * everything else passes through unchanged, so at steady state
///   (forecast == level) predictive is bit-identical to reactive.
pub(crate) fn adjust_predictive(
    reactive: Decision,
    forecast: u64,
    level: u64,
    backlogs: &[(u32, usize)],
    shards_max: u32,
) -> Decision {
    match reactive {
        Decision::Hold
            if forecast * 2 > level * 3
                && !backlogs.is_empty()
                && backlogs.len() < shards_max.max(1) as usize =>
        {
            let deepest = backlogs.iter().fold(backlogs[0], |best, &b| if b.1 > best.1 { b } else { best });
            elzar_obs::debug::emit("controller", || {
                format!("predictive pre-boot: forecast {forecast} > 1.5x level {level} ({backlogs:?})")
            });
            Decision::Up { donor: deepest.0 }
        }
        Decision::Down { .. } if forecast * 4 > level * 5 => {
            elzar_obs::debug::emit("controller", || {
                format!("predictive hold: forecast {forecast} > 1.25x level {level}, no retire")
            });
            Decision::Hold
        }
        other => other,
    }
}

/// The controller's epoch/forecast cadence as a scheduled component on
/// the `elzar_sim` event core: one wake-up per controller epoch, at the
/// epoch's last arrival — the same instant the legacy chunk loop reads
/// backlogs and decides. The tick body itself lives with the elastic
/// driver (`serve_adaptive_events`); this type owns only the cadence:
/// *when* the controller runs.
///
/// A decision instant can collide with request arrivals and snapshot
/// instants on the same cycle; the `(cycle, track, seq)` tie order
/// commits shard work first (shard tracks register below the cadence
/// track inside an epoch's inner scheduler) and the controller's
/// decision last — exactly the legacy ordering, which is why the trace
/// byte stream is invariant across worker counts and both cores.
pub(crate) struct EpochCadence {
    /// Index of the next epoch to run (== ticks delivered so far).
    pub next_epoch: usize,
    /// Decision instant of each epoch: the chunk's last arrival.
    pub t_ends: Vec<u64>,
}

impl EpochCadence {
    /// Cadence over `stream` in chunks of `interval` requests.
    pub fn new(stream: &[crate::gen::Request], interval: usize) -> EpochCadence {
        let t_ends =
            stream.chunks(interval.max(1)).map(|c| c.last().expect("chunks are non-empty").arrival).collect();
        EpochCadence { next_epoch: 0, t_ends }
    }

    /// The wake-up cycle of the next epoch's decision instant, or
    /// [`elzar_sim::NEVER`] once the stream is exhausted.
    pub fn next_decision_at(&self) -> u64 {
        self.t_ends.get(self.next_epoch).copied().unwrap_or(elzar_sim::NEVER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_partition_covers_all_slots_with_contiguous_ranges() {
        for shards in [1u32, 2, 3, 4, 7] {
            let p = Partition::initial(shards);
            let mut total = 0u64;
            for sh in 0..shards {
                let mask = p.slots_of(sh);
                assert_ne!(mask, 0, "shard {sh}/{shards} owns no slots");
                assert_eq!(total & mask, 0, "overlap at shard {sh}");
                total |= mask;
            }
            assert_eq!(total, u64::MAX, "{shards} shards must cover all 64 slots");
        }
    }

    #[test]
    fn split_takes_the_upper_half_and_respects_singletons() {
        let p = Partition::initial(1);
        let all = p.slots_of(0);
        let upper = split_upper_half(all);
        assert_eq!(upper.count_ones(), 32);
        assert_eq!(upper, !0u64 << 32);
        assert_eq!(split_upper_half(1 << 7), 0, "a single slot cannot split");
        let three = (1 << 3) | (1 << 9) | (1 << 40);
        let taken = split_upper_half(three);
        assert_eq!(taken, 1 << 40, "odd counts leave the donor the larger half");
    }

    #[test]
    fn routing_follows_reassignment() {
        let mut p = Partition::initial(2);
        let key = 12345u64;
        let before = p.owner_of(key);
        let slot = slot_of(key);
        p.assign(1 << slot, 9);
        assert_eq!(p.owner_of(key), 9);
        assert_ne!(before, 9);
        // Only that slot moved.
        assert_eq!(p.slots_of(9), 1 << slot);
    }

    #[test]
    fn policy_is_hysteretic_and_deterministic() {
        // Deep queue on shard 1: scale up with 1 as donor.
        assert_eq!(decide(&[(0, 2), (1, 12)], 10, 1, 4), Decision::Up { donor: 1 });
        // At the ceiling: hold even under pressure.
        assert_eq!(decide(&[(0, 2), (1, 12)], 10, 1, 2), Decision::Hold);
        // All shallow: highest-id shallowest shard retires into the
        // shallowest survivor.
        assert_eq!(decide(&[(0, 0), (1, 1), (2, 0)], 10, 1, 4), Decision::Down { leaver: 2, recipient: 0 });
        // Mid-band: hold.
        assert_eq!(decide(&[(0, 4), (1, 5)], 10, 1, 4), Decision::Hold);
        // A single shard never scales down.
        assert_eq!(decide(&[(0, 0)], 10, 1, 4), Decision::Hold);
        // Tie on depth for scale-up: lowest id donates.
        assert_eq!(decide(&[(0, 12), (1, 12)], 10, 1, 4), Decision::Up { donor: 0 });
    }

    #[test]
    fn forecaster_converges_exactly_on_constant_input() {
        // level = c, trend = 0 is a fixed point of the update, and the
        // first observation initializes straight onto it — so constant
        // input yields the constant *exactly*, from the first epoch.
        // This is what makes predictive == reactive at steady state.
        for c in [0u64, 1, 17, RATE_FP, 37 * RATE_FP + 1_234] {
            let mut f = Forecaster::default();
            for _ in 0..50 {
                f.observe(c);
                assert_eq!(f.forecast(), c, "constant {c} must be exact");
                assert_eq!(f.forecast_ahead(FORECAST_HORIZON), c, "every horizon is exact");
                assert_eq!(f.level(), c);
            }
        }
    }

    #[test]
    fn forecaster_is_nonnegative_under_adversarial_input() {
        // Violent swings including drops to zero: forecast() and
        // level() never go negative (the trend can).
        let mut f = Forecaster::default();
        let mut s = 0xDEAD_BEEFu64;
        for i in 0..2_000 {
            let x = if i % 7 == 0 { 0 } else { elzar_rng::splitmix64(&mut s) % (100 * RATE_FP) };
            f.observe(x);
            let _ = f.forecast(); // max(0) cast would panic on negative
            assert!(f.forecast() <= 400 * RATE_FP, "forecast stays bounded by the input range");
        }
        // A cliff to zero: forecast decays to 0 and stays there.
        for _ in 0..80 {
            f.observe(0);
        }
        assert_eq!(f.forecast(), 0);
    }

    #[test]
    fn forecaster_step_response_is_bounded_and_fast() {
        // Step 10 → 100 (in RATE_FP units): within 8 epochs the
        // forecast is within 2% of the new plateau, and it never
        // overshoots past 2x the step target (Holt overshoots by design
        // — that's the early ramp detection — but boundedly).
        let lo = 10 * RATE_FP;
        let hi = 100 * RATE_FP;
        let mut f = Forecaster::default();
        for _ in 0..20 {
            f.observe(lo);
        }
        let mut settled = None;
        for e in 0..20 {
            f.observe(hi);
            assert!(f.forecast() < 2 * hi, "no unbounded overshoot at epoch {e}");
            if settled.is_none() && f.forecast().abs_diff(hi) <= hi / 50 {
                settled = Some(e);
            }
        }
        assert!(settled.expect("must settle") <= 8, "settled at {settled:?}");
        // After settling, floor rounding may leave a sticky few-unit
        // offset (observed: 5 of ~104M) — bounded, never drifting.
        for _ in 0..100 {
            f.observe(hi);
        }
        assert!(f.forecast().abs_diff(hi) <= 8, "steady error {}", f.forecast().abs_diff(hi));
    }

    #[test]
    fn forecaster_sees_a_ramp_before_it_peaks() {
        // On a linear ramp the one-step-ahead forecast runs *above*
        // the latest observation — the whole point of pre-booting.
        let mut f = Forecaster::default();
        for i in 0..30u64 {
            f.observe((10 + i * 5) * RATE_FP);
        }
        assert!(f.forecast() > (10 + 29 * 5) * RATE_FP, "forecast leads the ramp");
    }

    #[test]
    fn predictive_overlay_matches_reactive_at_steady_state() {
        let backlogs = [(0u32, 3usize), (1, 4)];
        // forecast == level: every reactive decision passes through.
        for d in [Decision::Hold, Decision::Up { donor: 1 }, Decision::Down { leaver: 0, recipient: 1 }] {
            assert_eq!(adjust_predictive(d, 700, 700, &backlogs, 4), d);
        }
        // Ramp predicted (forecast > 1.5x level): Hold becomes a
        // pre-boot with the deepest shard donating.
        assert_eq!(adjust_predictive(Decision::Hold, 1_600, 1_000, &backlogs, 4), Decision::Up { donor: 1 });
        // ...but not at the fleet ceiling.
        assert_eq!(adjust_predictive(Decision::Hold, 1_600, 1_000, &backlogs, 2), Decision::Hold);
        // Mild ramp (1.25x < r <= 1.5x): retirement is vetoed, no pre-boot.
        assert_eq!(
            adjust_predictive(Decision::Down { leaver: 1, recipient: 0 }, 1_300, 1_000, &backlogs, 4),
            Decision::Hold
        );
        assert_eq!(adjust_predictive(Decision::Hold, 1_300, 1_000, &backlogs, 4), Decision::Hold);
        // Exactly at the thresholds: strict inequality, no fire.
        assert_eq!(adjust_predictive(Decision::Hold, 1_500, 1_000, &backlogs, 4), Decision::Hold);
        assert_eq!(
            adjust_predictive(Decision::Down { leaver: 1, recipient: 0 }, 1_250, 1_000, &backlogs, 4),
            Decision::Down { leaver: 1, recipient: 0 }
        );
        // A reactive Up is never second-guessed.
        assert_eq!(
            adjust_predictive(Decision::Up { donor: 0 }, 100, 1_000, &backlogs, 4),
            Decision::Up { donor: 0 }
        );
    }
}
