//! Elastic-shard control: a fixed virtual-partition space, the mutable
//! slot → shard ownership map, and the queue-depth scaling policy.
//!
//! ## Partitions
//!
//! Keys hash into [`PARTITION_SLOTS`] fixed *slots* (the unit of
//! migration — small enough that a scale event moves a useful fraction
//! of a shard's keyspace, large enough that the ownership map stays a
//! 64-entry table). A [`Partition`] maps every slot to its owning
//! shard; routing a request is `owner[slot_of(key)]`. The slot hash is
//! a pure function of the key, so a key's slot never changes — only the
//! slot's owner does, and only at controller epochs, which is what
//! keeps per-key request order (and therefore the resident-state
//! digest) invariant under scaling.
//!
//! ## Policy
//!
//! At every epoch boundary the controller observes each active shard's
//! *virtual-time queue occupancy* — admitted requests whose completion
//! lies after the epoch's last arrival — and applies one decision with
//! hysteresis:
//!
//! * **scale up** when the deepest queue reaches
//!   `ServeConfig::scale_up_backlog` and the fleet is below
//!   `shards_max`: the deepest shard donates the upper half of its
//!   slots to a joiner booted from the donor's snapshot
//!   (`elzar_fault::replay_suffix_where` reconstructs the migrated
//!   range);
//! * **scale down** when *every* queue is at or below
//!   `ServeConfig::scale_down_backlog` and more than one shard is
//!   active: the shallowest shard retires, its slots absorbed by the
//!   next-shallowest survivor via committed-log replay.
//!
//! Both triggers, the donor/leaver choices and the slot split are pure
//! functions of virtual-time state, so the scaling schedule is
//! deterministic and independent of host workers.

use crate::gen::shard_of;

/// Fixed virtual partitions (migration granularity). Keys hash into
/// this many slots; shards own sets of slots.
pub const PARTITION_SLOTS: u32 = 64;

/// Owning slot of `key` (stable: a pure function of the key).
pub fn slot_of(key: u64) -> u32 {
    shard_of(key, PARTITION_SLOTS)
}

/// The mutable slot → shard ownership map.
#[derive(Clone, Debug)]
pub struct Partition {
    owner: [u32; PARTITION_SLOTS as usize],
}

impl Partition {
    /// Initial contiguous assignment of the slot space to `shards`
    /// shards (ids `0..shards`).
    pub fn initial(shards: u32) -> Partition {
        let shards = shards.max(1) as u64;
        let mut owner = [0u32; PARTITION_SLOTS as usize];
        for (s, o) in owner.iter_mut().enumerate() {
            *o = (s as u64 * shards / u64::from(PARTITION_SLOTS)) as u32;
        }
        Partition { owner }
    }

    /// Shard owning `key` under the current assignment.
    pub fn owner_of(&self, key: u64) -> u32 {
        self.owner[slot_of(key) as usize]
    }

    /// Bitmask of the slots `shard` currently owns (bit `s` = slot `s`).
    pub fn slots_of(&self, shard: u32) -> u64 {
        let mut mask = 0u64;
        for (s, &o) in self.owner.iter().enumerate() {
            if o == shard {
                mask |= 1 << s;
            }
        }
        mask
    }

    /// Reassign every slot in `mask` to `to`.
    pub fn assign(&mut self, mask: u64, to: u32) {
        for (s, o) in self.owner.iter_mut().enumerate() {
            if mask >> s & 1 == 1 {
                *o = to;
            }
        }
    }
}

/// The upper half (by slot index) of a slot mask — the range a donor
/// hands to a joining shard. Empty when the donor owns a single slot
/// (an unsplittable shard never donates).
pub fn split_upper_half(mask: u64) -> u64 {
    let n = mask.count_ones();
    if n < 2 {
        return 0;
    }
    let mut keep = n - n / 2; // donor keeps the larger half on odd counts
    let mut taken = 0u64;
    for s in 0..PARTITION_SLOTS {
        if mask >> s & 1 == 1 {
            if keep > 0 {
                keep -= 1;
            } else {
                taken |= 1 << s;
            }
        }
    }
    taken
}

/// One elastic-scaling event, recorded in the [`crate::ServeReport`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScaleEvent {
    /// A joiner booted from `donor`'s snapshot and took over `slots`
    /// partitions, replaying `replayed` committed suffix requests.
    Up {
        /// Controller epoch (0-based) the event fired at.
        epoch: u32,
        /// Donor shard id.
        donor: u32,
        /// New shard id.
        joiner: u32,
        /// Migrated slot count.
        slots: u32,
        /// Committed requests replayed to reconstruct the range.
        replayed: u64,
    },
    /// `leaver` retired; `recipient` absorbed its `slots` partitions by
    /// replaying `replayed` committed-log requests.
    Down {
        /// Controller epoch (0-based) the event fired at.
        epoch: u32,
        /// Retiring shard id.
        leaver: u32,
        /// Surviving shard taking over the slots.
        recipient: u32,
        /// Migrated slot count.
        slots: u32,
        /// Committed requests replayed to reconstruct the range.
        replayed: u64,
    },
}

/// A controller decision at one epoch boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Decision {
    /// Add a shard; the named donor splits its slots.
    Up {
        /// Donor shard id (deepest queue).
        donor: u32,
    },
    /// Retire `leaver`, its slots absorbed by `recipient`.
    Down {
        /// Retiring shard id (shallowest queue).
        leaver: u32,
        /// Absorbing shard id (next-shallowest).
        recipient: u32,
    },
    /// No change.
    Hold,
}

/// The scaling policy: one decision per epoch from the active shards'
/// `(id, backlog)` pairs. Ties break on shard id (lowest id donates /
/// absorbs, highest id retires) so the schedule is deterministic.
pub(crate) fn decide(backlogs: &[(u32, usize)], up_at: usize, down_at: usize, shards_max: u32) -> Decision {
    if backlogs.is_empty() {
        return Decision::Hold;
    }
    let deepest = backlogs.iter().fold(backlogs[0], |best, &b| if b.1 > best.1 { b } else { best });
    if deepest.1 >= up_at.max(1) && backlogs.len() < shards_max.max(1) as usize {
        elzar_obs::debug::emit("controller", || {
            format!("scale-up trigger: shard {} backlog {} >= {up_at} ({backlogs:?})", deepest.0, deepest.1)
        });
        return Decision::Up { donor: deepest.0 };
    }
    if backlogs.len() > 1 && backlogs.iter().all(|&(_, d)| d <= down_at) {
        let leaver = backlogs.iter().fold(backlogs[0], |best, &b| {
            if b.1 < best.1 || (b.1 == best.1 && b.0 > best.0) {
                b
            } else {
                best
            }
        });
        let rest: Vec<(u32, usize)> = backlogs.iter().copied().filter(|&(id, _)| id != leaver.0).collect();
        let recipient = rest.iter().fold(rest[0], |best, &b| if b.1 < best.1 { b } else { best });
        elzar_obs::debug::emit("controller", || {
            format!("scale-down trigger: all backlogs <= {down_at} ({backlogs:?})")
        });
        return Decision::Down { leaver: leaver.0, recipient: recipient.0 };
    }
    Decision::Hold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_partition_covers_all_slots_with_contiguous_ranges() {
        for shards in [1u32, 2, 3, 4, 7] {
            let p = Partition::initial(shards);
            let mut total = 0u64;
            for sh in 0..shards {
                let mask = p.slots_of(sh);
                assert_ne!(mask, 0, "shard {sh}/{shards} owns no slots");
                assert_eq!(total & mask, 0, "overlap at shard {sh}");
                total |= mask;
            }
            assert_eq!(total, u64::MAX, "{shards} shards must cover all 64 slots");
        }
    }

    #[test]
    fn split_takes_the_upper_half_and_respects_singletons() {
        let p = Partition::initial(1);
        let all = p.slots_of(0);
        let upper = split_upper_half(all);
        assert_eq!(upper.count_ones(), 32);
        assert_eq!(upper, !0u64 << 32);
        assert_eq!(split_upper_half(1 << 7), 0, "a single slot cannot split");
        let three = (1 << 3) | (1 << 9) | (1 << 40);
        let taken = split_upper_half(three);
        assert_eq!(taken, 1 << 40, "odd counts leave the donor the larger half");
    }

    #[test]
    fn routing_follows_reassignment() {
        let mut p = Partition::initial(2);
        let key = 12345u64;
        let before = p.owner_of(key);
        let slot = slot_of(key);
        p.assign(1 << slot, 9);
        assert_eq!(p.owner_of(key), 9);
        assert_ne!(before, 9);
        // Only that slot moved.
        assert_eq!(p.slots_of(9), 1 << slot);
    }

    #[test]
    fn policy_is_hysteretic_and_deterministic() {
        // Deep queue on shard 1: scale up with 1 as donor.
        assert_eq!(decide(&[(0, 2), (1, 12)], 10, 1, 4), Decision::Up { donor: 1 });
        // At the ceiling: hold even under pressure.
        assert_eq!(decide(&[(0, 2), (1, 12)], 10, 1, 2), Decision::Hold);
        // All shallow: highest-id shallowest shard retires into the
        // shallowest survivor.
        assert_eq!(decide(&[(0, 0), (1, 1), (2, 0)], 10, 1, 4), Decision::Down { leaver: 2, recipient: 0 });
        // Mid-band: hold.
        assert_eq!(decide(&[(0, 4), (1, 5)], 10, 1, 4), Decision::Hold);
        // A single shard never scales down.
        assert_eq!(decide(&[(0, 0)], 10, 1, 4), Decision::Hold);
        // Tie on depth for scale-up: lowest id donates.
        assert_eq!(decide(&[(0, 12), (1, 12)], 10, 1, 4), Decision::Up { donor: 0 });
    }
}
