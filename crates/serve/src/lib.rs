//! # elzar-serve
//!
//! A sharded, resident-VM request-serving runtime for the ELZAR
//! reproduction — the serving-scenario counterpart of the batch
//! harnesses: instead of one `run_program` per figure cell, it keeps
//! hardened VM shards *resident* and pushes an open-loop request stream
//! through them, measuring throughput and tail latency under sustained
//! load while ELZAR's detection/correction accounting runs *online*.
//!
//! Pipeline:
//!
//! 1. [`gen`] produces a deterministic request stream (YCSB A/D key
//!    distributions, or the web server's 64-byte request lines) with a
//!    virtual-cycle arrival schedule, and routes each request to its
//!    owning shard by key hash;
//! 2. every shard boots one resident hardened VM ([`elzar_vm::Machine`]
//!    with segmented memory: the preloaded state persists across
//!    requests);
//! 3. whenever a shard is free it drains arrived requests into one
//!    *batch* — a count-prefixed mini-trace executed by a single
//!    [`elzar_vm::Machine::reenter_batch`] — sized by the static
//!    [`ServeConfig::batch_size`] or the queue-depth policy
//!    `clamp(queue_depth, 1, batch_max)` ([`ServeConfig::batch_adaptive`]);
//! 4. shards snapshot their machine every
//!    [`ServeConfig::snapshot_interval`] committed requests and recover
//!    from crashes by restoring the last snapshot and deterministically
//!    replaying the committed suffix ([`elzar_fault::replay_suffix`]);
//! 5. with [`ServeConfig::adaptive_shards`], a [`controller`] observes
//!    per-shard virtual-time queue occupancy at fixed epochs and scales
//!    the shard set between [`ServeConfig::shards`]'s starting point, 1
//!    and [`ServeConfig::shards_max`]: a joiner boots from a donor's
//!    snapshot and replays only the key range it takes over
//!    ([`elzar_fault::replay_suffix_where`]); a retiring shard's range
//!    is absorbed by a survivor from the committed log;
//! 6. admission is enforced in virtual time: the bounded per-shard
//!    queue drops at capacity, and with [`ServeConfig::shed_slo`] a
//!    request predicted to miss [`ServeConfig::slo_cycles`] is shed at
//!    admission, so goodput — served requests that met their deadline —
//!    tracks offered load instead of collapsing;
//! 7. with [`ServeConfig::replicas`] every shard keeps a *warm
//!    standby* mirroring the committed log in the background: a
//!    Crashed-class outcome promotes it in
//!    [`ServeConfig::failover_cycles`] instead of a restart+replay
//!    queue stall; [`ServeConfig::compaction`] truncates the elastic
//!    path's committed log at the fleet-minimum snapshot mark; and
//!    [`ServeConfig::divergence_check_interval`] runs a state-digest
//!    divergence detector beside ELZAR's own classification
//!    ([`ServeReport::divergence_agreement`]);
//! 8. shards drain on their own OS threads — workers pull shard ids
//!    from a shared counter, so any worker count yields bit-identical
//!    results;
//! 9. an online fault-injection schedule flips destination-register
//!    bits mid-service and classifies every hit per Table I
//!    (Masked / ElzarCorrected / Sdc / Crashed-with-restart-from-
//!    snapshot), turning the batch campaign taxonomy into an
//!    availability / SDC-rate-under-load metric;
//! 10. the [`ServeReport`] aggregates per-shard throughput, a
//!     log-bucketed latency histogram (p50/p90/p99/p999), outcome
//!     counts, snapshot/replay/migration/replication cost, controller
//!     events and the final resident-table digest.
//!
//! Determinism contract: everything in the report — outcome counts,
//! latency histogram, digests, cycle totals, scaling events — is a pure
//! function of `(program, service, scale, ServeConfig)`. Worker count
//! only changes wall-clock time; shard count, batch policy, snapshot
//! interval and the scaling schedule change latency/throughput (that is
//! the point) but never fault outcome counts or the table digest,
//! because the fault schedule keys on global request ids,
//! fault-scheduled requests always execute through the single-request
//! entry, each shard commits only reference executions, and migration
//! replays exactly the committed per-key sequences (see [`shard`] and
//! [`controller`] for the full argument).
//!
//! The runtime consumes an already-lowered [`elzar_vm::Program`] — how
//! it was hardened is the build pipeline's business (`elzar::Artifact`
//! wraps this crate behind its `serve` method, sharing one lowered
//! program between batch runs, fault campaigns and serving).
//!
//! ```
//! use elzar::{Artifact, Mode};
//! use elzar_apps::Scale;
//! use elzar_serve::{serve_program, Service, ServeConfig};
//!
//! let cfg = ServeConfig { requests: 40, shards: 2, ..Default::default() };
//! let app = Service::Web.app(Scale::Tiny);
//! let artifact = Artifact::build(&app.module, &Mode::elzar_default());
//! let report = serve_program(Service::Web, artifact.program(), &app, &cfg);
//! assert_eq!(report.served, 40);
//! assert!(report.quantile_cycles(0.99) >= report.quantile_cycles(0.50));
//! ```

#![warn(missing_docs)]

pub mod controller;
pub mod gen;
pub mod histogram;
pub mod shard;

use controller::{
    adjust_predictive, decide, Decision, EpochCadence, Forecaster, Partition, ScaleEvent, PARTITION_SLOTS,
};
pub use controller::{ScalingPolicy, RATE_FP};
use elzar_apps::ycsb::YcsbWorkload;
use elzar_apps::{kv, web, Scale, ServeApp, FREQ_HZ};
use elzar_fault::Outcome;
use elzar_obs::{debug, DRIVER_TRACK};
// Re-exported so report consumers can name the ledger/trace types
// without a separate `elzar_obs` dependency.
pub use elzar_obs::{Category, CycleLedger, EventKind, Trace, TraceEvent, Tracer};
use elzar_sim::{Component, Scheduler, TieBreak};
use elzar_vm::{MachineConfig, Program};
use gen::{shard_of, Request};
use histogram::LatencyHistogram;
use shard::{drain_shard, ShardDrain, ShardOutput, ShardRuntime, ShardStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Serving-runtime parameters.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Resident VM shards (the *starting* count when
    /// [`ServeConfig::adaptive_shards`] is on).
    pub shards: u32,
    /// Host OS threads draining shards (never changes results).
    pub workers: u32,
    /// Maximum requests a shard drains into one batched VM entry when
    /// it becomes free (`1` = unbatched single-request serving; the
    /// shard never *waits* to fill a batch, so light load degenerates
    /// to size-1 batches). Batched runs also break at snapshot
    /// boundaries, so the effective amortization is
    /// `min(batch_size, snapshot_interval)` — batching is a no-op at
    /// `snapshot_interval = 1`. Ignored when
    /// [`ServeConfig::batch_adaptive`] is on. Changes
    /// latency/throughput, never outcome counts or the table digest.
    pub batch_size: u32,
    /// Replace the static `batch_size` with the per-drain queue-depth
    /// policy `batch = clamp(queue_depth, 1, batch_max)`: each drain
    /// sizes itself to the backlog it finds, so one configuration
    /// tracks the best static cap across services and load levels.
    /// Changes latency/throughput, never outcome counts or the digest.
    pub batch_adaptive: bool,
    /// Ceiling of the adaptive batch policy.
    pub batch_max: u32,
    /// Snapshot the resident machine every this many committed
    /// requests. Small intervals pay clone cost
    /// ([`ServeConfig::snapshot_bytes_per_cycle`]) on the steady path;
    /// large intervals pay suffix-replay cost on every crash. Changes
    /// latency/availability, never outcome counts or the table digest.
    pub snapshot_interval: u32,
    /// Snapshot cost model: a periodic clone is charged
    /// `resident_bytes / snapshot_bytes_per_cycle` virtual cycles (the
    /// default, 64 B/cycle at the simulated 2 GHz, is a 128 GB/s
    /// streaming copy).
    pub snapshot_bytes_per_cycle: u64,
    /// Bounded per-shard queue: requests arriving with this many
    /// earlier requests still in flight are rejected.
    pub queue_capacity: usize,
    /// Elastic shard scaling: a controller observes per-shard
    /// virtual-time queue occupancy every
    /// [`ServeConfig::control_interval`] requests and scales the shard
    /// set between 1 and [`ServeConfig::shards_max`], migrating key
    /// ranges by snapshot + filtered suffix replay. Changes
    /// latency/throughput, never outcome counts or the table digest.
    pub adaptive_shards: bool,
    /// Ceiling of the elastic shard controller.
    pub shards_max: u32,
    /// Controller epoch length in requests (the scaling decision
    /// cadence; also the granularity at which key ranges can move).
    pub control_interval: u32,
    /// Scale up when the deepest shard's queue occupancy reaches this
    /// many requests at an epoch boundary.
    pub scale_up_backlog: u32,
    /// Scale down when *every* shard's queue occupancy is at or below
    /// this many requests at an epoch boundary (hysteresis: keep it
    /// well under [`ServeConfig::scale_up_backlog`]).
    pub scale_down_backlog: u32,
    /// Per-request latency SLO in virtual cycles (arrival →
    /// completion). `0` disables SLO accounting; `> 0` makes the report
    /// count [`ServeReport::slo_met`] and [`ServeReport::goodput_rps`].
    pub slo_cycles: u64,
    /// Deadline-aware admission: shed a request at admission when its
    /// predicted completion (drain start + batch position × a
    /// conservative per-request estimate) exceeds
    /// [`ServeConfig::slo_cycles`]. Sheds are counted in
    /// [`ServeReport::shed`], never executed, and never committed.
    /// Fault-free, every admitted request then meets its SLO; a
    /// Crashed-class SEU detour (restart + replay) is not predictable
    /// at admission and can push requests past the deadline — the SLO
    /// accounting reports such misses rather than hiding them.
    pub shed_slo: bool,
    /// Keep a *warm standby* per shard: a second machine that mirrors
    /// every committed operation in the background. A Crashed-class
    /// outcome then promotes the standby in
    /// [`ServeConfig::failover_cycles`] instead of stalling the queue
    /// for `restart_cycles + suffix replay`; the restart+replay detour
    /// still runs, but in background time, rebuilding the new standby
    /// ([`ServeReport::rebuild_cycles`]). Changes
    /// availability/latency, never outcome counts or the table digest.
    pub replicas: bool,
    /// Virtual-cycle cost of promoting the warm standby (failure
    /// detection + queue handoff), paid as downtime on each promotion.
    pub failover_cycles: u64,
    /// Compact the elastic path's global committed log at every epoch
    /// boundary: bring each active shard up to the full log (background
    /// catch-up replay), then truncate each slot at the fleet-minimum
    /// snapshot mark — no recovery, twin or migration can ever reach
    /// below it. Bounds the retained per-slot log to under one
    /// [`ServeConfig::snapshot_interval`] (fixing the otherwise
    /// unbounded scale-down absorption replay). Changes timing only,
    /// never outcome counts or the table digest.
    pub compaction: bool,
    /// Run the state-digest divergence detector: every N commits
    /// compare primary and standby resident-table digests (a
    /// replication-correctness check, alarms expected 0), and probe
    /// every injected request's faulty state against the committed
    /// reference — an SDC detector independent of ELZAR's
    /// classification (see [`ServeReport::divergence_agreement`]).
    /// `0` disables both.
    pub divergence_check_interval: u32,
    /// Per-shard event-trace ring capacity ([`elzar_obs::Tracer`]): the
    /// runtime records admission, batch, execution, commit, snapshot,
    /// recovery, migration and divergence events stamped in virtual
    /// cycles, merged into [`ServeReport::trace`] in canonical
    /// `(cycle, track, seq)` order. `0` (the default) disables tracing
    /// entirely — recording never touches virtual time, so enabling it
    /// changes *no* other report field, and the canonical trace itself
    /// is bit-identical across worker counts.
    pub trace_events: usize,
    /// Mean inter-arrival gap of the open-loop generator, in cycles.
    pub mean_gap_cycles: u64,
    /// Requests in the stream.
    pub requests: u64,
    /// Seed for the stream and the online fault schedule.
    pub seed: u64,
    /// Per-request SEU probability in parts per million (0 = off).
    pub fault_rate_ppm: u32,
    /// Piecewise fault-rate schedule: `(first request id, ppm)` pairs
    /// sorted by id, each in force from its id until the next entry —
    /// what a compiled [`gen::Scenario`] plugs in for fault storms.
    /// Empty (the default) means the uniform
    /// [`ServeConfig::fault_rate_ppm`] everywhere. Keyed by *global
    /// request id*, so the fault placement stays a pure function of the
    /// stream — invariant across shard counts, batch policies, scaling
    /// schedules and worker counts.
    pub fault_phases: Vec<(u64, u32)>,
    /// Which scaling policy the elastic path runs (reactive queue
    /// hysteresis, or reactive + Holt arrival-rate forecast that
    /// pre-boots joiners before the queue builds). Ignored unless
    /// [`ServeConfig::adaptive_shards`] is on. Changes
    /// latency/throughput, never outcome counts or the table digest.
    pub scaling_policy: ScalingPolicy,
    /// Virtual-cycle penalty for a shard restart from snapshot.
    pub restart_cycles: u64,
    /// Hang budget multiple for faulty executions (see `elzar_fault`).
    pub hang_factor: u64,
    /// Drive serving on the `elzar_sim` discrete-event core (the
    /// default): shard drains and the controller's epoch/forecast
    /// cadence are scheduled wake-ups on one `(cycle, track, seq)`
    /// heap. `false` runs the legacy hand-rolled time loops — kept for
    /// one PR so the old-vs-new differential suite can pin both paths
    /// bit-identical (outcome counts, KV digest, latency quantiles,
    /// ledger conservation, canonical trace bytes).
    pub event_core: bool,
    /// Seed for same-cycle event-order fuzzing on the event core: `0`
    /// (the default) commits ties in canonical `(cycle, track, seq)`
    /// order; any other value permutes each same-cycle ready set under
    /// that `elzar_rng` seed. Shards share no state, so every seed must
    /// produce a bit-identical report — a divergence is an
    /// order-dependence bug (the hunt the fuzz suite runs). Ignored on
    /// the legacy paths.
    pub order_fuzz: u64,
    /// Base machine configuration for shard VMs.
    pub machine: MachineConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            shards: 4,
            workers: std::thread::available_parallelism().map(|n| n.get() as u32).unwrap_or(4),
            batch_size: 1,
            batch_adaptive: false,
            batch_max: 32,
            snapshot_interval: 8,
            snapshot_bytes_per_cycle: 64,
            queue_capacity: 4096,
            adaptive_shards: false,
            shards_max: 8,
            control_interval: 64,
            scale_up_backlog: 12,
            scale_down_backlog: 2,
            slo_cycles: 0,
            shed_slo: false,
            replicas: false,
            // Promotion is a local handoff, not a rebuild: ~1 us at the
            // simulated 2 GHz.
            failover_cycles: 2_000,
            compaction: false,
            divergence_check_interval: 0,
            trace_events: 0,
            mean_gap_cycles: 2_000,
            requests: 1_000,
            seed: 0x5E12_AE5E,
            fault_rate_ppm: 0,
            fault_phases: Vec::new(),
            scaling_policy: ScalingPolicy::Reactive,
            // Crash detection + swapping in the pre-request snapshot
            // (usage-proportional, a few MB): ~25 us at 2 GHz.
            restart_cycles: 50_000,
            hang_factor: 20,
            event_core: true,
            order_fuzz: 0,
            machine: MachineConfig { step_limit: 10_000_000_000, ..MachineConfig::default() },
        }
    }
}

impl ServeConfig {
    /// The SEU rate (ppm) in force for request `id`: the last
    /// [`ServeConfig::fault_phases`] entry at or before it, or the
    /// uniform [`ServeConfig::fault_rate_ppm`] when the schedule is
    /// empty or starts after `id`.
    pub fn fault_ppm_for(&self, id: u64) -> u32 {
        let mut ppm = self.fault_rate_ppm;
        for &(from, p) in &self.fault_phases {
            if from <= id {
                ppm = p;
            } else {
                break;
            }
        }
        ppm
    }
}

/// The serving workloads (§VI shapes, re-cast as request streams).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Service {
    /// Mini-memcached under YCSB A (50/50, Zipf keys).
    KvA,
    /// Mini-memcached under YCSB D (95/5, latest-skewed keys).
    KvD,
    /// Mini-Apache static page serving.
    Web,
}

impl Service {
    /// All services.
    pub fn all() -> [Service; 3] {
        [Service::KvA, Service::KvD, Service::Web]
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Service::KvA => "memcached-A",
            Service::KvD => "memcached-D",
            Service::Web => "apache",
        }
    }

    /// Build the service's serving-form app.
    pub fn app(self, scale: Scale) -> ServeApp {
        match self {
            Service::KvA | Service::KvD => kv::build_serve(scale),
            Service::Web => web::build_serve(scale),
        }
    }

    /// Generate the service's request stream.
    pub fn stream(self, app: &ServeApp, cfg: &ServeConfig) -> Vec<Request> {
        match self {
            Service::KvA => {
                gen::kv_stream(YcsbWorkload::A, cfg.requests, app.n_keys, cfg.mean_gap_cycles, cfg.seed)
            }
            Service::KvD => {
                gen::kv_stream(YcsbWorkload::D, cfg.requests, app.n_keys, cfg.mean_gap_cycles, cfg.seed)
            }
            Service::Web => gen::web_stream(cfg.requests, app.request_bytes, cfg.mean_gap_cycles, cfg.seed),
        }
    }

    /// The [`gen::StreamKind`] a [`gen::Scenario`] compiles against for
    /// this service.
    pub fn stream_kind(self, app: &ServeApp) -> gen::StreamKind {
        match self {
            Service::KvA => gen::StreamKind::Kv { workload: YcsbWorkload::A, n_keys: app.n_keys },
            Service::KvD => gen::StreamKind::Kv { workload: YcsbWorkload::D, n_keys: app.n_keys },
            Service::Web => gen::StreamKind::Web { request_bytes: app.request_bytes },
        }
    }
}

/// Aggregate serving result.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Per-shard statistics: every shard that ever served, in shard-id
    /// order (retired shards included).
    pub shards: Vec<ShardStats>,
    /// Merged request-latency histogram (cycles).
    pub hist: LatencyHistogram,
    /// Requests served across all shards.
    pub served: u64,
    /// Requests rejected by bounded queues.
    pub rejected: u64,
    /// Requests shed by deadline-aware admission (never executed).
    pub shed: u64,
    /// Served requests whose latency met [`ServeConfig::slo_cycles`]
    /// (0 when no SLO is configured).
    pub slo_met: u64,
    /// Batched-entry invocations across all shards (fault-scheduled
    /// requests run solo and are not counted).
    pub batches: u64,
    /// Requests that took an injected fault.
    pub injected: u64,
    /// Outcome counts for injected requests, Table-I order.
    pub outcomes: [u64; 5],
    /// Shard restarts (crashed/hung requests).
    pub restarts: u64,
    /// Periodic machine snapshots taken across all shards.
    pub snapshots: u64,
    /// Elastic scale-up events (a joiner booted from a donor snapshot).
    pub scale_ups: u64,
    /// Elastic scale-down events (a shard retired into a survivor).
    pub scale_downs: u64,
    /// Partition slots migrated across all scale events.
    pub migrated_slots: u64,
    /// Committed requests replayed to reconstruct migrated ranges.
    pub migration_replays: u64,
    /// Warm-replica promotions across all shards: crashes where the
    /// standby took over instead of a restart-from-snapshot detour
    /// ([`ServeConfig::replicas`]).
    pub promotions: u64,
    /// Where every shard cycle went: the per-shard
    /// [`elzar_obs::CycleLedger`]s summed cell-wise. The foreground
    /// categories conserve against the summed shard lifetimes (verified
    /// when the report is assembled); the accessor methods
    /// ([`ServeReport::downtime_cycles`] etc.) read this ledger.
    pub ledger: CycleLedger,
    /// Compaction passes that removed at least one committed entry.
    pub compactions: u64,
    /// Committed log entries dropped by compaction.
    pub compacted_entries: u64,
    /// Largest per-slot committed-log length ever retained on the
    /// elastic path (0 for static runs, which keep no global log). With
    /// [`ServeConfig::compaction`] this stays under one
    /// [`ServeConfig::snapshot_interval`]; without it the hottest
    /// slot's log grows with the stream.
    pub max_slot_log: u64,
    /// Periodic primary-vs-standby divergence checks performed
    /// ([`ServeConfig::divergence_check_interval`]).
    pub divergence_checks: u64,
    /// Periodic checks that found the standby diverged from the primary
    /// (expected 0 — an alarm means the replication path itself broke).
    pub divergence_alarms: u64,
    /// Divergence probes of injected requests by Table-I outcome of the
    /// injected run: each probe compares the faulty execution's
    /// resident state against the committed reference.
    pub div_probed: [u64; 5],
    /// Probes (same indexing) where the faulty state diverged from the
    /// committed reference — what a state-digest detector would flag.
    pub div_flagged: [u64; 5],
    /// Largest number of simultaneously active shards.
    pub peak_shards: u32,
    /// Active shards when the stream ended.
    pub final_shards: u32,
    /// The controller's scaling schedule, in event order (empty for
    /// static runs).
    pub events: Vec<ScaleEvent>,
    /// The canonical virtual-time event stream (empty unless
    /// [`ServeConfig::trace_events`] > 0): every shard's ring plus the
    /// driver's, merged in `(cycle, track, seq)` order — bit-identical
    /// across worker counts.
    pub trace: Trace,
    /// Virtual time from 0 to the last completion.
    pub makespan_cycles: u64,
    /// FNV-1a digest of the final resident tables — each key read from
    /// its *owning* shard, folded in global key order — so the value is
    /// comparable across shard counts and scaling schedules.
    /// `FNV_OFFSET` when stateless.
    pub table_digest: u64,
}

impl ServeReport {
    /// Count for one Table-I outcome among injected requests.
    pub fn count(&self, o: Outcome) -> u64 {
        self.outcomes[o.index()]
    }

    /// Aggregate throughput in requests per simulated second:
    /// `served * FREQ_HZ / makespan_cycles` (0.0 for an empty report).
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            self.served as f64 * FREQ_HZ / self.makespan_cycles as f64
        }
    }

    /// Goodput in requests per simulated second: served requests that
    /// met their SLO over the makespan. Meaningful only when
    /// [`ServeConfig::slo_cycles`] was configured (0.0 otherwise, and
    /// for an empty report).
    pub fn goodput_rps(&self) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            self.slo_met as f64 * FREQ_HZ / self.makespan_cycles as f64
        }
    }

    /// Latency quantile in cycles: the upper edge of the histogram
    /// bucket covering rank `ceil(q * served)` (≤ 12.5 % relative
    /// error, never past the exact maximum). `q` is clamped to
    /// `[0, 1]`; `q = 0` reports the smallest recorded bucket, `q = 1`
    /// the exact maximum, and an empty report yields 0.
    pub fn quantile_cycles(&self, q: f64) -> u64 {
        self.hist.quantile(q)
    }

    /// [`ServeReport::quantile_cycles`] converted to microseconds of
    /// simulated time: `quantile_cycles(q) / FREQ_HZ * 1e6`.
    pub fn quantile_us(&self, q: f64) -> f64 {
        self.hist.quantile(q) as f64 / FREQ_HZ * 1e6
    }

    /// Fraction of total shard-time *not* lost to crash recovery:
    /// `1 - downtime / Σ per-shard lifetime`, where downtime is
    /// `restart_cycles + suffix replay` per restart (or
    /// [`ServeConfig::failover_cycles`] per warm-replica promotion) and
    /// each shard's lifetime runs from the virtual time it came online
    /// to the time it retired — clamped to the makespan — so elastic
    /// runs integrate shard-cycles over the actual scaling schedule
    /// instead of assuming a fixed fleet (1.0 with no restarts or an
    /// empty report).
    pub fn availability(&self) -> f64 {
        let span: u64 = self
            .shards
            .iter()
            .map(|s| s.retired_at.min(self.makespan_cycles) - s.spawned_at.min(self.makespan_cycles))
            .sum();
        if span == 0 {
            1.0
        } else {
            (1.0 - self.downtime_cycles() as f64 / span as f64).max(0.0)
        }
    }

    /// Virtual cycles shards were unavailable recovering from crashes:
    /// restart penalty + suffix replay per restart, or the promotion
    /// handoff per failover
    /// ([`Category::Downtime`] + [`Category::Replay`] of the ledger).
    pub fn downtime_cycles(&self) -> u64 {
        self.ledger.get(Category::Downtime) + self.ledger.get(Category::Replay)
    }

    /// Crash-recovery suffix-replay cycles alone ([`Category::Replay`]
    /// — grows with [`ServeConfig::snapshot_interval`]).
    pub fn replay_cycles(&self) -> u64 {
        self.ledger.get(Category::Replay)
    }

    /// Virtual cycles charged for periodic snapshot clones
    /// ([`Category::Snapshot`] — shrinks as
    /// [`ServeConfig::snapshot_interval`] grows).
    pub fn snapshot_cycles(&self) -> u64 {
        self.ledger.get(Category::Snapshot)
    }

    /// Virtual cycles spent on migration (snapshot clones + filtered
    /// replays; [`Category::Migration`]).
    pub fn migration_cycles(&self) -> u64 {
        self.ledger.get(Category::Migration)
    }

    /// Background virtual cycles spent rebuilding standbys after
    /// promotions ([`Category::Rebuild`] — the detour that no longer
    /// stalls the queue).
    pub fn rebuild_cycles(&self) -> u64 {
        self.ledger.get(Category::Rebuild)
    }

    /// Background virtual cycles standbys spent applying the committed
    /// log ([`Category::Mirror`] — the steady-state price of
    /// replication).
    pub fn replica_apply_cycles(&self) -> u64 {
        self.ledger.get(Category::Mirror)
    }

    /// Background virtual cycles spent on compaction catch-up replays
    /// ([`Category::Catchup`]).
    pub fn catchup_cycles(&self) -> u64 {
        self.ledger.get(Category::Catchup)
    }

    /// Background virtual cycles charged for divergence scans
    /// ([`Category::Divergence`] — probes and periodic checks).
    pub fn divergence_cycles(&self) -> u64 {
        self.ledger.get(Category::Divergence)
    }

    /// Agreement rate between the state-digest divergence detector and
    /// ELZAR's Table-I classification, over probed injections: an `Sdc`
    /// the probe flagged agrees, and a non-`Sdc` outcome the probe did
    /// *not* flag agrees. Disagreements are the interesting residue —
    /// a flagged `Masked` run is latent state corruption ELZAR's
    /// output-based verdict cannot see, and an unflagged `Sdc` is
    /// output-only corruption a state monitor cannot see. 1.0 when
    /// nothing was probed.
    pub fn divergence_agreement(&self) -> f64 {
        let probed = self.div_probes();
        if probed == 0 {
            return 1.0;
        }
        let sdc = Outcome::Sdc.index();
        let mut agree = self.div_flagged[sdc];
        for i in 0..self.div_probed.len() {
            if i != sdc {
                agree += self.div_probed[i] - self.div_flagged[i];
            }
        }
        agree as f64 / probed as f64
    }

    /// Total divergence probes of injected requests across outcomes.
    pub fn div_probes(&self) -> u64 {
        self.div_probed.iter().sum()
    }

    /// Observed SDC rate under load: silently corrupted replies over
    /// served requests, `count(Sdc) / served` (0.0 when nothing was
    /// served).
    pub fn sdc_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.count(Outcome::Sdc) as f64 / self.served as f64
        }
    }

    fn empty() -> ServeReport {
        ServeReport {
            shards: Vec::new(),
            hist: LatencyHistogram::new(),
            served: 0,
            rejected: 0,
            shed: 0,
            slo_met: 0,
            batches: 0,
            injected: 0,
            outcomes: [0; 5],
            restarts: 0,
            snapshots: 0,
            scale_ups: 0,
            scale_downs: 0,
            migrated_slots: 0,
            migration_replays: 0,
            promotions: 0,
            ledger: CycleLedger::new(),
            compactions: 0,
            compacted_entries: 0,
            max_slot_log: 0,
            divergence_checks: 0,
            divergence_alarms: 0,
            div_probed: [0; 5],
            div_flagged: [0; 5],
            peak_shards: 0,
            final_shards: 0,
            events: Vec::new(),
            trace: Trace::default(),
            makespan_cycles: 0,
            table_digest: FNV_OFFSET,
        }
    }
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf29ce484222325;

pub(crate) fn fnv_fold(h: u64, word: u64) -> u64 {
    let mut h = h;
    for b in word.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    h
}

/// Generate `service`'s request stream and serve it to completion on an
/// already-built program (the serving half of `elzar::Artifact::serve`).
///
/// ```
/// use elzar::{Artifact, Mode};
/// use elzar_apps::Scale;
/// use elzar_serve::{serve_program, ServeConfig, Service};
///
/// let app = Service::KvA.app(Scale::Tiny);
/// let artifact = Artifact::build(&app.module, &Mode::elzar_default());
/// let cfg = ServeConfig {
///     requests: 48,
///     shards: 2,
///     batch_size: 4,
///     snapshot_interval: 16,
///     ..Default::default()
/// };
/// let report = serve_program(Service::KvA, artifact.program(), &app, &cfg);
/// assert_eq!(report.served + report.rejected, 48);
/// // Batching never changes the committed state: the digest matches an
/// // unbatched run of the same stream.
/// let unbatched = ServeConfig { batch_size: 1, ..cfg.clone() };
/// let reference = serve_program(Service::KvA, artifact.program(), &app, &unbatched);
/// assert_eq!(report.table_digest, reference.table_digest);
/// ```
pub fn serve_program(service: Service, prog: &Program, app: &ServeApp, cfg: &ServeConfig) -> ServeReport {
    let stream = service.stream(app, cfg);
    serve_stream(prog, app, &stream, cfg)
}

/// Serve a compiled [`gen::Scenario`]: the scenario is compiled against
/// the service's [`gen::StreamKind`] with `cfg.seed`, its per-phase
/// fault-rate schedule installed as [`ServeConfig::fault_phases`]
/// (overriding any uniform `fault_rate_ppm`), and the resulting stream
/// served through the normal static/elastic path. Ignores
/// `cfg.requests` and `cfg.mean_gap_cycles` — the scenario owns both.
pub fn serve_scenario(
    service: Service,
    prog: &Program,
    app: &ServeApp,
    scenario: &gen::Scenario,
    cfg: &ServeConfig,
) -> ServeReport {
    let compiled = scenario.compile(service.stream_kind(app), cfg.seed);
    let cfg = ServeConfig {
        requests: compiled.stream.len() as u64,
        fault_phases: compiled.fault_phases,
        ..cfg.clone()
    };
    serve_stream(prog, app, &compiled.stream, &cfg)
}

/// Serve an explicit stream on an already-built program. The static
/// path routes by key hash up front and drains every shard to
/// completion; with [`ServeConfig::adaptive_shards`] the elastic path
/// runs the stream in controller epochs, scaling the shard set against
/// queue depth. Either way workers pull work from a shared counter and
/// results merge in shard-id order.
pub fn serve_stream(prog: &Program, app: &ServeApp, stream: &[Request], cfg: &ServeConfig) -> ServeReport {
    match (cfg.adaptive_shards, cfg.event_core) {
        (true, true) => serve_adaptive_events(prog, app, stream, cfg),
        (true, false) => serve_adaptive(prog, app, stream, cfg),
        (false, true) => serve_static_events(prog, app, stream, cfg),
        (false, false) => serve_static(prog, app, stream, cfg),
    }
}

/// Tie-break rule the event-core schedulers run under:
/// [`ServeConfig::order_fuzz`] `== 0` is the canonical
/// `(cycle, track, seq)` order, anything else a seeded permutation of
/// every same-cycle ready set.
fn tie_break(cfg: &ServeConfig) -> TieBreak {
    if cfg.order_fuzz == 0 {
        TieBreak::Canonical
    } else {
        TieBreak::Fuzzed(cfg.order_fuzz)
    }
}

fn serve_static(prog: &Program, app: &ServeApp, stream: &[Request], cfg: &ServeConfig) -> ServeReport {
    let shards = cfg.shards.max(1);
    let mut routed: Vec<Vec<&Request>> = (0..shards).map(|_| Vec::new()).collect();
    for r in stream {
        routed[shard_of(r.key, shards) as usize].push(r);
    }

    let workers = (cfg.workers.max(1) as usize).min(shards as usize);
    let next = AtomicUsize::new(0);
    let tagged: Vec<(usize, ShardOutput)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let routed = &routed;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let s = next.fetch_add(1, Ordering::Relaxed);
                        if s >= routed.len() {
                            return local;
                        }
                        let out = drain_shard(prog, app, s as u32, shards, &routed[s], cfg);
                        local.push((s, out));
                    }
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))).collect()
    });
    let mut outputs: Vec<Option<ShardOutput>> = (0..shards).map(|_| None).collect();
    for (s, o) in tagged {
        outputs[s] = Some(o);
    }
    let mut report =
        merge_outputs(outputs.into_iter().map(|o| o.expect("every shard drained")).collect(), Tracer::off());
    report.peak_shards = shards;
    report.final_shards = shards;
    report
}

/// The static path on the `elzar_sim` event core: the same routing and
/// the same per-shard drain sequence as [`serve_static`], but instead
/// of each worker thread running a shard's hand-rolled `feed` loop to
/// completion, every shard is a [`ShardDrain`] component and one
/// discrete-event scheduler interleaves their drains in virtual-time
/// order on the `(cycle, track, seq)` heap. Shards share no state, so
/// the interleaving — canonical or fuzzed — cannot change any result:
/// old-vs-new is bit-identical by construction (and pinned by the
/// differential suite).
fn serve_static_events(prog: &Program, app: &ServeApp, stream: &[Request], cfg: &ServeConfig) -> ServeReport {
    let shards = cfg.shards.max(1);
    let mut routed: Vec<Vec<&Request>> = (0..shards).map(|_| Vec::new()).collect();
    for r in stream {
        routed[shard_of(r.key, shards) as usize].push(r);
    }

    let mut runtimes: Vec<ShardRuntime> =
        (0..shards).map(|id| ShardRuntime::boot(prog, app, cfg, id)).collect();
    {
        let mut sched = Scheduler::new(tie_break(cfg));
        for (rt, reqs) in runtimes.iter_mut().zip(&routed) {
            sched.add(ShardDrain::new(rt, reqs, app, cfg));
        }
        sched.run(&mut ());
    }
    let outputs: Vec<ShardOutput> = runtimes
        .into_iter()
        .enumerate()
        .map(|(s, rt)| rt.into_output(app, &|key| shard_of(key, shards) == s as u32))
        .collect();
    let mut report = merge_outputs(outputs, Tracer::off());
    report.peak_shards = shards;
    report.final_shards = shards;
    report
}

/// The elastic serving path: run the stream in controller epochs of
/// [`ServeConfig::control_interval`] requests. Within an epoch the
/// shard set is fixed, so shards drain in parallel exactly like the
/// static path; at each epoch boundary the controller reads every
/// active shard's queue occupancy at the epoch's last arrival and
/// applies one [`Decision`] — all in virtual time, so the scaling
/// schedule is deterministic and worker-count invariant.
fn serve_adaptive(prog: &Program, app: &ServeApp, stream: &[Request], cfg: &ServeConfig) -> ServeReport {
    let start_shards = cfg.shards.clamp(1, cfg.shards_max.max(1));
    let mut partition = Partition::initial(start_shards);
    // Runtimes indexed by shard id; retired shards become `None` after
    // their stats are banked.
    let mut runtimes: Vec<Mutex<Option<ShardRuntime>>> =
        (0..start_shards).map(|id| Mutex::new(Some(ShardRuntime::boot(prog, app, cfg, id)))).collect();
    let mut active: Vec<u32> = (0..start_shards).collect();
    let mut banked: Vec<Option<ShardOutput>> = (0..start_shards).map(|_| None).collect();
    // Global committed log per partition slot, in commit order — only
    // one shard owns a slot per epoch, so appends never interleave.
    let mut log: Vec<Vec<&Request>> = (0..PARTITION_SLOTS).map(|_| Vec::new()).collect();
    // Compaction offset: `log[s]` holds the committed entries of slot
    // `s` from absolute index `base[s]` onward (all zero until a
    // compaction pass truncates).
    let mut base = [0u32; PARTITION_SLOTS as usize];
    let mut compactions = 0u64;
    let mut compacted_entries = 0u64;
    let mut max_slot_log = 0u64;
    let mut events: Vec<ScaleEvent> = Vec::new();
    let mut peak = start_shards;
    // The controller's own track: scaling decisions and compaction
    // epochs happen between shard drains, single-threaded, so this
    // ring sees the same sequence regardless of worker count.
    let mut driver = Tracer::new(DRIVER_TRACK, cfg.trace_events);
    // Predictive policy state: Holt smoothing over each epoch's
    // admitted-arrival rate. The rate is `chunk len / arrival span` —
    // a property of the stream alone, so the forecast (and therefore
    // the scaling schedule) is identical across worker counts and
    // batch policies.
    let mut forecaster = Forecaster::default();
    let mut prev_t_end = 0u64;

    let interval = cfg.control_interval.max(1) as usize;
    for (epoch, chunk) in stream.chunks(interval).enumerate() {
        // Route this epoch under the current assignment.
        let mut routed: Vec<Vec<&Request>> = (0..runtimes.len()).map(|_| Vec::new()).collect();
        for r in chunk {
            routed[partition.owner_of(r.key) as usize].push(r);
        }

        // Parallel drain of the active shards (workers pull indices
        // into the active list from a shared counter).
        let workers = (cfg.workers.max(1) as usize).min(active.len());
        let next = AtomicUsize::new(0);
        let committed: Vec<(u32, Vec<&Request>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let active = &active;
                    let routed = &routed;
                    let runtimes = &runtimes;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= active.len() {
                                return local;
                            }
                            let id = active[k];
                            let mut guard = runtimes[id as usize].lock().expect("shard lock");
                            let rt = guard.as_mut().expect("active shard has a runtime");
                            local.push((id, rt.feed(&routed[id as usize], app, cfg)));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        // Append commits to the per-slot logs in shard-id order (per
        // slot there is a single committing shard, so any order would
        // do — id order just makes the loop deterministic to read).
        let mut committed = committed;
        committed.sort_by_key(|&(id, _)| id);
        for (_, reqs) in &committed {
            for r in reqs {
                log[controller::slot_of(r.key) as usize].push(r);
            }
        }

        // Controller: read queue occupancy at the epoch's last arrival
        // and apply at most one scaling decision.
        let t_end = chunk.last().expect("chunks are non-empty").arrival;
        let backlogs: Vec<(u32, usize)> = active
            .iter()
            .map(|&id| {
                let guard = runtimes[id as usize].lock().expect("shard lock");
                (id, guard.as_ref().expect("active shard has a runtime").backlog_at(t_end))
            })
            .collect();
        let mut decision =
            decide(&backlogs, cfg.scale_up_backlog as usize, cfg.scale_down_backlog as usize, cfg.shards_max);
        if cfg.scaling_policy == ScalingPolicy::Predictive {
            let span = (t_end - prev_t_end).max(1);
            forecaster.observe((chunk.len() as u64).saturating_mul(RATE_FP) / span);
            let fc = forecaster.forecast_ahead(controller::FORECAST_HORIZON);
            let lvl = forecaster.level();
            driver.record(EventKind::Forecast, t_end, 0, fc, lvl);
            decision = adjust_predictive(decision, fc, lvl, &backlogs, cfg.shards_max);
        }
        prev_t_end = t_end;
        match decision {
            Decision::Up { donor } => {
                let taken = controller::split_upper_half(partition.slots_of(donor));
                if taken != 0 {
                    let joiner = runtimes.len() as u32;
                    let rt = {
                        let guard = runtimes[donor as usize].lock().expect("shard lock");
                        let d = guard.as_ref().expect("donor is active");
                        ShardRuntime::boot_from_donor(d, app, cfg, joiner, taken, t_end)
                    };
                    events.push(ScaleEvent::Up {
                        epoch: epoch as u32,
                        donor,
                        joiner,
                        slots: taken.count_ones(),
                        replayed: rt.stats.migration_replays,
                    });
                    driver.record(EventKind::ScaleUp, t_end, 0, u64::from(donor), u64::from(joiner));
                    debug::emit("serve", || {
                        format!(
                            "epoch {epoch}: scale-up donor={donor} joiner={joiner} slots={}",
                            taken.count_ones()
                        )
                    });
                    runtimes.push(Mutex::new(Some(rt)));
                    banked.push(None);
                    partition.assign(taken, joiner);
                    active.push(joiner);
                    peak = peak.max(active.len() as u32);
                }
            }
            Decision::Down { leaver, recipient } => {
                let taken = partition.slots_of(leaver);
                let replayed_before;
                {
                    let mut guard = runtimes[recipient as usize].lock().expect("shard lock");
                    let rt = guard.as_mut().expect("recipient is active");
                    replayed_before = rt.stats.migration_replays;
                    rt.absorb(taken, &log, &base, app, cfg);
                    events.push(ScaleEvent::Down {
                        epoch: epoch as u32,
                        leaver,
                        recipient,
                        slots: taken.count_ones(),
                        replayed: rt.stats.migration_replays - replayed_before,
                    });
                }
                driver.record(EventKind::ScaleDown, t_end, 0, u64::from(leaver), u64::from(recipient));
                debug::emit("serve", || {
                    format!(
                        "epoch {epoch}: scale-down leaver={leaver} recipient={recipient} slots={}",
                        taken.count_ones()
                    )
                });
                partition.assign(taken, recipient);
                let mut rt =
                    runtimes[leaver as usize].lock().expect("shard lock").take().expect("leaver is active");
                rt.stats.retired_at = t_end;
                banked[leaver as usize] = Some(rt.into_output(app, &|_| false));
                active.retain(|&id| id != leaver);
            }
            Decision::Hold => {}
        }

        // Compaction pass: bring every active shard up to the full
        // committed log (background catch-up replay), then truncate
        // each slot at the fleet-minimum snapshot mark — entries below
        // it can never be replayed again (recovery, twins and
        // migrations all start from a snapshot at or past the mark).
        if cfg.compaction {
            for &id in &active {
                let mut guard = runtimes[id as usize].lock().expect("shard lock");
                guard.as_mut().expect("active shard has a runtime").catch_up(&log, &base, app, cfg);
            }
            let removed_before = compacted_entries;
            for (s, slot_log) in log.iter_mut().enumerate() {
                let floor = active
                    .iter()
                    .map(|&id| {
                        let guard = runtimes[id as usize].lock().expect("shard lock");
                        guard.as_ref().expect("active shard has a runtime").snapshot_mark(s)
                    })
                    .min()
                    .unwrap_or(base[s]);
                let cut = (floor - base[s]) as usize;
                if cut > 0 {
                    slot_log.drain(..cut);
                    base[s] = floor;
                    compacted_entries += cut as u64;
                }
            }
            if compacted_entries > removed_before {
                compactions += 1;
                driver.record(
                    EventKind::Compaction,
                    t_end,
                    0,
                    compacted_entries - removed_before,
                    compactions,
                );
                debug::emit("serve", || {
                    format!(
                        "epoch {epoch}: compaction #{compactions} removed {} log entries",
                        compacted_entries - removed_before
                    )
                });
            }
        }
        max_slot_log = max_slot_log.max(log.iter().map(|l| l.len() as u64).max().unwrap_or(0));
    }

    // Finish: every still-active runtime reads the keys its final
    // assignment owns; retired shards contributed their stats already.
    let final_shards = active.len() as u32;
    let outputs: Vec<ShardOutput> = banked
        .into_iter()
        .enumerate()
        .map(|(id, b)| match b {
            Some(out) => out,
            None => {
                let rt = runtimes[id].lock().expect("shard lock").take().expect("unretired runtime");
                rt.into_output(app, &|key| partition.owner_of(key) == id as u32)
            }
        })
        .collect();
    let mut report = merge_outputs(outputs, driver);
    report.scale_ups = events.iter().filter(|e| matches!(e, ScaleEvent::Up { .. })).count() as u64;
    report.scale_downs = events.iter().filter(|e| matches!(e, ScaleEvent::Down { .. })).count() as u64;
    report.migrated_slots = events
        .iter()
        .map(|e| match e {
            ScaleEvent::Up { slots, .. } | ScaleEvent::Down { slots, .. } => u64::from(*slots),
        })
        .sum();
    report.compactions = compactions;
    report.compacted_entries = compacted_entries;
    report.max_slot_log = max_slot_log;
    report.peak_shards = peak;
    report.final_shards = final_shards;
    report.events = events;
    report
}

/// The elastic path's mutable state on the event core, shared between
/// the [`EpochCadence`] component's ticks. Field-for-field the same
/// state the legacy [`serve_adaptive`] loop keeps on its stack, minus
/// the per-shard `Mutex`es — the event core is serial (virtual time
/// already makes the report worker-invariant; the legacy path keeps
/// the thread pool for wall-clock speed until it is deleted).
struct EpochSys<'p, 'a> {
    app: &'a ServeApp,
    cfg: &'a ServeConfig,
    stream: &'a [Request],
    partition: Partition,
    /// Runtimes indexed by shard id; `None` once retired and banked.
    runtimes: Vec<Option<ShardRuntime<'p, 'a>>>,
    active: Vec<u32>,
    banked: Vec<Option<ShardOutput>>,
    log: Vec<Vec<&'a Request>>,
    base: [u32; PARTITION_SLOTS as usize],
    compactions: u64,
    compacted_entries: u64,
    max_slot_log: u64,
    events: Vec<ScaleEvent>,
    peak: u32,
    driver: Tracer,
    forecaster: Forecaster,
    prev_t_end: u64,
}

impl<'p, 'a> Component<EpochSys<'p, 'a>> for EpochCadence {
    fn label(&self) -> &'static str {
        "controller epoch cadence"
    }

    fn next_tick(&self) -> u64 {
        self.next_decision_at()
    }

    fn tick(&mut self, _now: u64, sys: &mut EpochSys<'p, 'a>) {
        sys.run_epoch(self.next_epoch);
        self.next_epoch += 1;
    }
}

impl<'p, 'a> EpochSys<'p, 'a> {
    /// One controller epoch — the body of one [`EpochCadence`] tick at
    /// the epoch's decision instant. Routes the chunk under the
    /// current assignment, drains the active shards to quiescence on
    /// an *inner* event-core scheduler (one [`ShardDrain`] per active
    /// shard, in shard-id track order), then runs the decision +
    /// compaction tail verbatim from the legacy loop. Step-for-step
    /// identical to one [`serve_adaptive`] chunk iteration — the
    /// old-vs-new differential pins it.
    fn run_epoch(&mut self, epoch: usize) {
        let (app, cfg) = (self.app, self.cfg);
        let interval = cfg.control_interval.max(1) as usize;
        let chunk = &self.stream[epoch * interval..self.stream.len().min((epoch + 1) * interval)];

        // Route this epoch under the current assignment.
        let mut routed: Vec<Vec<&'a Request>> = (0..self.runtimes.len()).map(|_| Vec::new()).collect();
        for r in chunk {
            routed[self.partition.owner_of(r.key) as usize].push(r);
        }

        // Drain the active shards to quiescence on the inner
        // scheduler. Retired slots are `None`, so registration order —
        // and therefore track order and the committed scatter below —
        // is shard-id order, matching the legacy path's sort.
        let committed: Vec<(u32, Vec<&'a Request>)> = {
            let mut sched = Scheduler::new(tie_break(cfg));
            for (slot, reqs) in self.runtimes.iter_mut().zip(&routed) {
                if let Some(rt) = slot.as_mut() {
                    sched.add(ShardDrain::new(rt, reqs, app, cfg));
                }
            }
            sched.run(&mut ());
            sched.into_components().into_iter().map(|d| (d.shard(), d.committed)).collect()
        };
        for (_, reqs) in &committed {
            for r in reqs {
                self.log[controller::slot_of(r.key) as usize].push(r);
            }
        }

        // Controller: read queue occupancy at the epoch's last arrival
        // and apply at most one scaling decision.
        let t_end = chunk.last().expect("chunks are non-empty").arrival;
        let backlogs: Vec<(u32, usize)> = self
            .active
            .iter()
            .map(|&id| {
                (
                    id,
                    self.runtimes[id as usize]
                        .as_ref()
                        .expect("active shard has a runtime")
                        .backlog_at(t_end),
                )
            })
            .collect();
        let mut decision =
            decide(&backlogs, cfg.scale_up_backlog as usize, cfg.scale_down_backlog as usize, cfg.shards_max);
        if cfg.scaling_policy == ScalingPolicy::Predictive {
            let span = (t_end - self.prev_t_end).max(1);
            self.forecaster.observe((chunk.len() as u64).saturating_mul(RATE_FP) / span);
            let fc = self.forecaster.forecast_ahead(controller::FORECAST_HORIZON);
            let lvl = self.forecaster.level();
            self.driver.record(EventKind::Forecast, t_end, 0, fc, lvl);
            decision = adjust_predictive(decision, fc, lvl, &backlogs, cfg.shards_max);
        }
        self.prev_t_end = t_end;
        match decision {
            Decision::Up { donor } => {
                let taken = controller::split_upper_half(self.partition.slots_of(donor));
                if taken != 0 {
                    let joiner = self.runtimes.len() as u32;
                    let rt = {
                        let d = self.runtimes[donor as usize].as_ref().expect("donor is active");
                        ShardRuntime::boot_from_donor(d, app, cfg, joiner, taken, t_end)
                    };
                    self.events.push(ScaleEvent::Up {
                        epoch: epoch as u32,
                        donor,
                        joiner,
                        slots: taken.count_ones(),
                        replayed: rt.stats.migration_replays,
                    });
                    self.driver.record(EventKind::ScaleUp, t_end, 0, u64::from(donor), u64::from(joiner));
                    debug::emit("serve", || {
                        format!(
                            "epoch {epoch}: scale-up donor={donor} joiner={joiner} slots={}",
                            taken.count_ones()
                        )
                    });
                    self.runtimes.push(Some(rt));
                    self.banked.push(None);
                    self.partition.assign(taken, joiner);
                    self.active.push(joiner);
                    self.peak = self.peak.max(self.active.len() as u32);
                }
            }
            Decision::Down { leaver, recipient } => {
                let taken = self.partition.slots_of(leaver);
                let replayed_before;
                {
                    let rt = self.runtimes[recipient as usize].as_mut().expect("recipient is active");
                    replayed_before = rt.stats.migration_replays;
                    rt.absorb(taken, &self.log, &self.base, app, cfg);
                    self.events.push(ScaleEvent::Down {
                        epoch: epoch as u32,
                        leaver,
                        recipient,
                        slots: taken.count_ones(),
                        replayed: rt.stats.migration_replays - replayed_before,
                    });
                }
                self.driver.record(EventKind::ScaleDown, t_end, 0, u64::from(leaver), u64::from(recipient));
                debug::emit("serve", || {
                    format!(
                        "epoch {epoch}: scale-down leaver={leaver} recipient={recipient} slots={}",
                        taken.count_ones()
                    )
                });
                self.partition.assign(taken, recipient);
                let mut rt = self.runtimes[leaver as usize].take().expect("leaver is active");
                rt.stats.retired_at = t_end;
                self.banked[leaver as usize] = Some(rt.into_output(app, &|_| false));
                self.active.retain(|&id| id != leaver);
            }
            Decision::Hold => {}
        }

        // Compaction pass: bring every active shard up to the full
        // committed log, then truncate each slot at the fleet-minimum
        // snapshot mark (see the legacy loop for the full argument).
        if cfg.compaction {
            for &id in &self.active.clone() {
                let rt = self.runtimes[id as usize].as_mut().expect("active shard has a runtime");
                rt.catch_up(&self.log, &self.base, app, cfg);
            }
            let removed_before = self.compacted_entries;
            for (s, slot_log) in self.log.iter_mut().enumerate() {
                let floor = self
                    .active
                    .iter()
                    .map(|&id| {
                        self.runtimes[id as usize]
                            .as_ref()
                            .expect("active shard has a runtime")
                            .snapshot_mark(s)
                    })
                    .min()
                    .unwrap_or(self.base[s]);
                let cut = (floor - self.base[s]) as usize;
                if cut > 0 {
                    slot_log.drain(..cut);
                    self.base[s] = floor;
                    self.compacted_entries += cut as u64;
                }
            }
            if self.compacted_entries > removed_before {
                self.compactions += 1;
                self.driver.record(
                    EventKind::Compaction,
                    t_end,
                    0,
                    self.compacted_entries - removed_before,
                    self.compactions,
                );
                debug::emit("serve", || {
                    format!(
                        "epoch {epoch}: compaction #{} removed {} log entries",
                        self.compactions,
                        self.compacted_entries - removed_before
                    )
                });
            }
        }
        self.max_slot_log = self.max_slot_log.max(self.log.iter().map(|l| l.len() as u64).max().unwrap_or(0));
    }
}

/// The elastic path on the `elzar_sim` event core: the controller's
/// epoch/forecast cadence is an [`EpochCadence`] component on an outer
/// scheduler (one wake-up per epoch, at the epoch's decision instant),
/// and each tick drains the active shards to quiescence on an inner
/// scheduler before deciding — the same barrier the legacy chunk loop
/// enforces, because a backlog read at `t_end` is only meaningful once
/// the epoch's drains have committed. Old-vs-new is pinned bit-
/// identical by the differential suite.
fn serve_adaptive_events(
    prog: &Program,
    app: &ServeApp,
    stream: &[Request],
    cfg: &ServeConfig,
) -> ServeReport {
    let start_shards = cfg.shards.clamp(1, cfg.shards_max.max(1));
    let interval = cfg.control_interval.max(1) as usize;
    let mut sys = EpochSys {
        app,
        cfg,
        stream,
        partition: Partition::initial(start_shards),
        runtimes: (0..start_shards).map(|id| Some(ShardRuntime::boot(prog, app, cfg, id))).collect(),
        active: (0..start_shards).collect(),
        banked: (0..start_shards).map(|_| None).collect(),
        log: (0..PARTITION_SLOTS).map(|_| Vec::new()).collect(),
        base: [0u32; PARTITION_SLOTS as usize],
        compactions: 0,
        compacted_entries: 0,
        max_slot_log: 0,
        events: Vec::new(),
        peak: start_shards,
        driver: Tracer::new(DRIVER_TRACK, cfg.trace_events),
        forecaster: Forecaster::default(),
        prev_t_end: 0,
    };
    // The outer scheduler carries only the cadence component, so its
    // tie-break never has a same-cycle peer; fuzzing applies inside
    // each epoch's inner shard scheduler.
    let mut sched = Scheduler::new(TieBreak::Canonical);
    sched.add(EpochCadence::new(stream, interval));
    sched.run(&mut sys);

    // Finish: every still-active runtime reads the keys its final
    // assignment owns; retired shards contributed their stats already.
    let final_shards = sys.active.len() as u32;
    let partition = sys.partition;
    let outputs: Vec<ShardOutput> = sys
        .banked
        .into_iter()
        .zip(sys.runtimes)
        .enumerate()
        .map(|(id, (b, rt))| match b {
            Some(out) => out,
            None => {
                let rt = rt.expect("unretired runtime");
                rt.into_output(app, &|key| partition.owner_of(key) == id as u32)
            }
        })
        .collect();
    let mut report = merge_outputs(outputs, sys.driver);
    report.scale_ups = sys.events.iter().filter(|e| matches!(e, ScaleEvent::Up { .. })).count() as u64;
    report.scale_downs = sys.events.iter().filter(|e| matches!(e, ScaleEvent::Down { .. })).count() as u64;
    report.migrated_slots = sys
        .events
        .iter()
        .map(|e| match e {
            ScaleEvent::Up { slots, .. } | ScaleEvent::Down { slots, .. } => u64::from(*slots),
        })
        .sum();
    report.compactions = sys.compactions;
    report.compacted_entries = sys.compacted_entries;
    report.max_slot_log = sys.max_slot_log;
    report.peak_shards = sys.peak;
    report.final_shards = final_shards;
    report.events = sys.events;
    report
}

/// Merge per-shard outputs (in shard-id order) into the aggregate
/// report, folding the final table digest in global key order so it is
/// comparable across partitions. `driver` carries the controller's own
/// events (scaling, compaction); the static path passes
/// [`Tracer::off`]. Every shard's ledger is checked for cycle
/// conservation before it is folded in — a leak here is a runtime bug,
/// so it panics rather than producing a silently mis-attributed report.
fn merge_outputs(outputs: Vec<ShardOutput>, driver: Tracer) -> ServeReport {
    let mut report = ServeReport::empty();
    let mut table: Vec<(u64, u64)> = Vec::new();
    let mut tracers: Vec<Tracer> = Vec::with_capacity(outputs.len() + 1);
    for out in outputs {
        out.stats
            .ledger
            .verify(out.stats.lifetime_cycles)
            .unwrap_or_else(|e| panic!("shard {}: {e}", out.stats.shard));
        report.hist.merge(&out.stats.hist);
        report.served += out.stats.served;
        report.rejected += out.stats.rejected;
        report.shed += out.stats.shed;
        report.slo_met += out.stats.slo_met;
        report.batches += out.stats.batches;
        report.injected += out.stats.injected;
        for (a, b) in report.outcomes.iter_mut().zip(out.stats.outcomes) {
            *a += b;
        }
        report.restarts += out.stats.restarts;
        report.snapshots += out.stats.snapshots;
        report.migration_replays += out.stats.migration_replays;
        report.promotions += out.stats.promotions;
        report.ledger.merge(&out.stats.ledger);
        report.divergence_checks += out.stats.divergence_checks;
        report.divergence_alarms += out.stats.divergence_alarms;
        for (a, b) in report.div_probed.iter_mut().zip(out.stats.div_probed) {
            *a += b;
        }
        for (a, b) in report.div_flagged.iter_mut().zip(out.stats.div_flagged) {
            *a += b;
        }
        report.makespan_cycles = report.makespan_cycles.max(out.stats.last_completion);
        table.extend(out.table.iter().copied());
        tracers.push(out.tracer);
        report.shards.push(out.stats);
    }
    tracers.push(driver);
    report.trace = Trace::merge(tracers);
    // Global key order makes the digest independent of the partition.
    table.sort_unstable_by_key(|&(k, _)| k);
    for (k, v) in table {
        report.table_digest = fnv_fold(fnv_fold(report.table_digest, k), v);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ServeConfig {
        ServeConfig { requests: 60, shards: 2, workers: 2, ..Default::default() }
    }

    /// Build the service's hardened program (via the dev-dependency on
    /// the build pipeline) and serve its stream.
    fn serve(service: Service, mode: &elzar::Mode, scale: Scale, cfg: &ServeConfig) -> ServeReport {
        let app = service.app(scale);
        let artifact = elzar::Artifact::build(&app.module, mode);
        serve_program(service, artifact.program(), &app, cfg)
    }

    use elzar::Mode;

    #[test]
    fn web_service_serves_every_request() {
        let r = serve(Service::Web, &Mode::elzar_default(), Scale::Tiny, &tiny_cfg());
        assert_eq!(r.served + r.rejected, 60);
        assert_eq!(r.rejected, 0, "default queue capacity must not reject at this rate");
        assert_eq!(r.injected, 0, "faults are off by default");
        assert!(r.makespan_cycles > 0);
        assert!(r.throughput_rps() > 0.0);
        assert_eq!(r.hist.count(), r.served);
        assert!(r.availability() == 1.0);
        assert_eq!(r.peak_shards, 2);
        assert_eq!(r.final_shards, 2);
        assert!(r.events.is_empty(), "static runs never scale");
    }

    #[test]
    fn bounded_queue_rejects_under_overload() {
        // Near-zero inter-arrival gap + a 2-deep queue on one shard
        // must shed most of the stream.
        let cfg = ServeConfig {
            requests: 80,
            shards: 1,
            queue_capacity: 2,
            mean_gap_cycles: 1,
            ..Default::default()
        };
        let r = serve(Service::Web, &Mode::elzar_default(), Scale::Tiny, &cfg);
        assert!(r.rejected > 40, "only {} rejected", r.rejected);
        assert_eq!(r.served + r.rejected, 80);
    }

    #[test]
    fn online_faults_are_classified_and_accounted() {
        let cfg = ServeConfig {
            requests: 80,
            shards: 2,
            fault_rate_ppm: 400_000, // 40%: plenty of hits in 80 requests
            ..Default::default()
        };
        let r = serve(Service::KvA, &Mode::elzar_default(), Scale::Tiny, &cfg);
        assert!(r.injected > 10, "only {} injections", r.injected);
        assert_eq!(r.outcomes.iter().sum::<u64>(), r.injected);
        assert_eq!(
            r.restarts,
            r.count(Outcome::Hang) + r.count(Outcome::OsDetected),
            "every crash/hang restarts its shard"
        );
        if r.restarts > 0 {
            assert!(r.availability() < 1.0);
        }
    }

    #[test]
    fn kv_digest_reflects_committed_updates() {
        let base = ServeConfig { requests: 50, shards: 1, ..Default::default() };
        let with_updates = serve(Service::KvA, &Mode::elzar_default(), Scale::Tiny, &base);
        // A read-heavy stream over the same seed leaves different table
        // state than the 50/50 stream.
        let reads = serve(Service::KvD, &Mode::elzar_default(), Scale::Tiny, &base);
        assert_ne!(with_updates.table_digest, reads.table_digest);
        // Same config twice: bit-identical.
        let again = serve(Service::KvA, &Mode::elzar_default(), Scale::Tiny, &base);
        assert_eq!(with_updates.table_digest, again.table_digest);
        assert_eq!(with_updates.outcomes, again.outcomes);
        assert_eq!(with_updates.hist, again.hist);
    }
}
