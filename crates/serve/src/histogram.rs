//! Log-bucketed latency histogram: fixed memory, O(1) record, bounded
//! relative error — the in-repo stand-in for HdrHistogram.
//!
//! Values 0–7 get exact buckets; every power-of-two octave above that is
//! split into 8 sub-buckets, so any recorded value lands in a bucket
//! whose width is at most 1/8 of its magnitude (≤ 12.5% relative error
//! on reported percentiles, always rounding *up* to the bucket's upper
//! edge so tail percentiles are never under-reported).

/// Sub-buckets per octave (and the exact-bucket threshold).
const SUB: u64 = 8;
const SUB_SHIFT: u32 = 3;
/// Exact buckets `0..SUB`, then `SUB` buckets for each msb in `3..=63`.
const NBUCKETS: usize = SUB as usize * 62;

/// Index of the bucket holding `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = ((v >> (msb - SUB_SHIFT)) & (SUB - 1)) as usize;
        SUB as usize + (msb - SUB_SHIFT) as usize * SUB as usize + sub
    }
}

/// Upper edge (inclusive) of bucket `idx` — the value percentiles report.
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let octave = (idx - SUB as usize) / SUB as usize;
    let sub = ((idx - SUB as usize) % SUB as usize) as u64;
    let msb = octave as u32 + SUB_SHIFT;
    let width = 1u64 << (msb - SUB_SHIFT);
    (1u64 << msb) + sub * width + (width - 1)
}

/// A mergeable log-bucketed histogram of `u64` samples (cycle counts).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LatencyHistogram {
    buckets: Box<[u64; NBUCKETS]>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram { buckets: Box::new([0; NBUCKETS]), count: 0, sum: 0, max: 0 }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean of the recorded samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q ∈ [0, 1]` (upper edge of the covering
    /// bucket; the exact max for `q = 1`). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Never report past the true maximum.
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0;
        for i in 0..NBUCKETS {
            let u = bucket_upper(i);
            assert!(i == 0 || u > prev, "bucket {i} upper {u} <= {prev}");
            prev = u;
        }
        for v in [0u64, 1, 7, 8, 9, 255, 256, 1 << 20, u64::MAX - 1, u64::MAX] {
            let idx = bucket_of(v);
            assert!(idx < NBUCKETS, "{v} -> {idx}");
            assert!(bucket_upper(idx) >= v, "{v} above its bucket edge");
            if idx > 0 {
                assert!(bucket_upper(idx - 1) < v, "{v} below its bucket");
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in (1u64..10_000).step_by(7).chain((1u64..60).map(|s| 1 << (s % 60))) {
            let upper = bucket_upper(bucket_of(v));
            assert!(upper >= v);
            assert!(upper as f64 <= v as f64 * 1.125 + 1.0, "v={v} upper={upper}");
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!((4_500..=5_700).contains(&p50), "p50 {p50}");
        assert!((9_700..=10_000).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), 10_000);
        assert!((h.mean() - 5_000.5).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_recording_everything() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in 0..1000u64 {
            if v % 3 == 0 {
                a.record(v * 17);
            } else {
                b.record(v * 17);
            }
            all.record(v * 17);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn quantiles_are_monotone_under_adversarial_fills() {
        use elzar_rng::DetRng;
        let qs = [0.0, 0.5, 0.9, 0.99, 0.999, 1.0];
        let check = |h: &LatencyHistogram, tag: &str| {
            let mut prev = 0u64;
            for &q in &qs {
                let v = h.quantile(q);
                assert!(v >= prev, "{tag}: quantile({q}) = {v} < {prev}");
                prev = v;
            }
            assert_eq!(h.quantile(1.0), h.max(), "{tag}: q=1 must report the exact max");
        };

        // Everything in one bucket.
        let mut h = LatencyHistogram::new();
        for _ in 0..1_000 {
            h.record(12_345);
        }
        check(&h, "single value");
        assert_eq!(h.quantile(0.5), h.quantile(0.999), "one bucket: all quantiles equal");

        // Two extreme buckets: tiny mass at the far tail.
        let mut h = LatencyHistogram::new();
        for _ in 0..999 {
            h.record(1);
        }
        h.record(u64::MAX);
        check(&h, "bimodal extremes");
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.999), 1, "rank 999 of 1000 still lands in the low bucket");
        assert_eq!(h.quantile(1.0), u64::MAX);

        // Values hugging every octave boundary (the bucket-index edge
        // cases: 2^k - 1, 2^k, 2^k + 1).
        let mut h = LatencyHistogram::new();
        for k in 3..60u32 {
            let v = 1u64 << k;
            h.record(v - 1);
            h.record(v);
            h.record(v + 1);
        }
        check(&h, "octave edges");

        // Saturated counts in a contiguous bucket run (rank arithmetic
        // near u64-scale sums must not wrap the scan).
        let mut h = LatencyHistogram::new();
        for v in 0..7u64 {
            for _ in 0..100_000 {
                h.record(v);
            }
        }
        check(&h, "dense exact buckets");

        // Deterministic heavy-tailed random fills.
        let mut rng = DetRng::seed_from_u64(0x8157_0000_5EED);
        for round in 0..8 {
            let mut h = LatencyHistogram::new();
            for _ in 0..5_000 {
                let magnitude = rng.below(50);
                let v = (1u64 << magnitude) + rng.below(1 + (1u64 << magnitude));
                h.record(v);
            }
            check(&h, &format!("random round {round}"));
        }
    }

    /// The merge-semantics property: for any partition of a sample
    /// set into `k` histograms (empty parts included), merging the
    /// parts in any order is indistinguishable from recording the
    /// concatenated samples into one histogram — every quantile on
    /// the grid, the exact count/sum/max carries, and the
    /// `bucket_upper(i).min(self.max)` tail clamp all agree.
    #[test]
    fn merged_quantiles_equal_concatenated_quantiles() {
        use elzar_rng::DetRng;
        let qs = [0.0, 0.5, 0.9, 0.99, 0.999, 1.0];
        let mut rng = DetRng::seed_from_u64(0x3E26_E5EE_D001);
        for round in 0..16 {
            let parts = 1 + rng.below(6) as usize;
            let n = rng.below(4_000);
            let mut histograms = vec![LatencyHistogram::new(); parts];
            let mut concat = LatencyHistogram::new();
            for _ in 0..n {
                // Heavy-tailed samples spanning every octave, with the
                // extremes (0 and u64::MAX) mixed in so the tail clamp
                // and the max carry are both exercised.
                let v = match rng.below(64) {
                    0 => 0,
                    1 => u64::MAX,
                    2 => u64::MAX - 1,
                    _ => {
                        let magnitude = rng.below(60);
                        (1u64 << magnitude) + rng.below(1 + (1u64 << magnitude))
                    }
                };
                histograms[rng.below(parts as u64) as usize].record(v);
                concat.record(v);
            }
            // Merge in a seeded random order (merge must be
            // order-insensitive: it is a sum of per-bucket counts).
            let mut merged = LatencyHistogram::new();
            while !histograms.is_empty() {
                let part = histograms.swap_remove(rng.below(histograms.len() as u64) as usize);
                merged.merge(&part);
            }
            assert_eq!(merged, concat, "round {round}: merged state != concatenated state");
            assert_eq!(merged.count(), n, "round {round}: count carry");
            assert_eq!(merged.max(), concat.max(), "round {round}: max carry");
            assert_eq!(merged.mean(), concat.mean(), "round {round}: sum carry (via mean)");
            for &q in &qs {
                assert_eq!(
                    merged.quantile(q),
                    concat.quantile(q),
                    "round {round}: quantile({q}) drifted after merge"
                );
            }
            // The tail clamp survives the merge: no quantile may
            // report past the true maximum, and q=1 reports it exactly.
            assert!(merged.quantile(0.999) <= merged.max(), "round {round}: tail clamp");
            assert_eq!(merged.quantile(1.0), merged.max(), "round {round}: q=1 is the exact max");
        }
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
