//! One serving shard: a resident hardened VM drained in arrival order
//! with batched request execution, K-interval snapshots with
//! suffix-replay recovery, per-request online fault accounting, and —
//! new in the adaptive layer — deadline-aware admission and
//! snapshot-migrated key-range hand-off.
//!
//! ## Execution model
//!
//! A `ShardRuntime` boots once (`init_entry` preloads resident state
//! — e.g. the KV table — into the machine's memory), then serves routed
//! requests in arrival order, fed either all at once (the static path)
//! or one controller epoch at a time (the elastic path). Time is
//! *virtual*: the VM's cycle counts drive a serial queue model, so
//! results are independent of host threads and wall-clock.
//!
//! ## Batching
//!
//! Whenever the shard becomes free at virtual time `t`, it drains every
//! admitted request that has arrived by `t` — up to a per-drain cap —
//! into one *batch* and executes it as a single
//! [`Machine::reenter_batch`] over the requests' concatenated payloads
//! (a count-prefixed mini-trace). The cap is either the static
//! [`ServeConfig::batch_size`] or, with
//! [`ServeConfig::batch_adaptive`], the queue-depth policy
//! `clamp(queue_depth, 1, batch_max)`: the drain sizes itself to the
//! backlog, so no per-service cap tuning is needed. The shard never
//! waits to fill a batch: under light load batches degenerate to size
//! 1, under saturation they amortize the per-entry costs (thread spawn,
//! cold L1/L2/branch state) across the batch. Per-request latency stays
//! honest inside a batch: every request emits one heartbeat at
//! completion, and request `i` of a batch completes at
//! `batch_start + heartbeat_cycles[i]`, not at the batch's end.
//!
//! ## Admission control
//!
//! Two gates, both enforced in virtual time at the instant a request
//! would join a forming batch:
//!
//! * **bounded queue** (drop-tail): a request arriving while
//!   `queue_capacity` earlier requests are still in flight is rejected;
//! * **deadline-aware shedding** ([`ServeConfig::shed_slo`]): the batch
//!   drain policy knows the exact drain start and the request's
//!   position in the forming batch, so its completion is predicted as
//!   `start + (position + 1) * est` where `est` is 1.5× the largest
//!   per-request marginal cost the shard has observed (solo cycles and
//!   in-batch heartbeat deltas). If the predicted latency exceeds
//!   [`ServeConfig::slo_cycles`] the request is shed at admission —
//!   never executed — so capacity is spent only on requests that can
//!   still meet their deadline. Until a first completion calibrates the
//!   estimate, drains are capped at one request so the predictor never
//!   admits a burst blind. The every-admitted-request-meets-its-SLO
//!   guarantee is a *fault-free* property: an admitted request that
//!   then takes a Crashed-class SEU serves a restart + replay detour no
//!   admission-time predictor could have priced in, and requests queued
//!   behind it can miss their deadline too.
//!
//! ## K-interval snapshots, suffix replay and migration
//!
//! The shard clones its machine every [`ServeConfig::snapshot_interval`]
//! *committed* requests (a usage-proportional clone charged
//! `resident_bytes / snapshot_bytes_per_cycle` virtual cycles) and
//! remembers the payloads applied since (`suffix`). Everything that
//! needs historical state is built from that machinery alone:
//!
//! * a *fault twin* is `snapshot.clone()` + [`elzar_fault::replay_suffix`];
//! * a *crashed* outcome restarts the shard the same way, the detour
//!   charged as downtime;
//! * a *joining shard* (elastic scale-up) is `donor.snapshot.clone()` +
//!   [`elzar_fault::replay_suffix_where`] filtered to the key range it
//!   takes over (`ShardRuntime::boot_from_donor`);
//! * a *retiring shard*'s range is absorbed by a survivor replaying the
//!   committed log of the migrated slots (`ShardRuntime::absorb`).
//!
//! The runtime tracks, per partition slot, how many committed requests
//! the machine has applied (`applied`), so a migration replays exactly
//! the delta between the receiving machine's state and the global
//! committed log — bit-for-bit reconstruction, because execution is
//! deterministic and requests only touch state owned by their own key.
//!
//! ## Online fault accounting (reference-committed)
//!
//! A deterministic per-request schedule (a pure function of the
//! campaign seed and the global request id — never of shard count,
//! batching, snapshot cadence, scaling schedule or host threads) picks
//! which requests take a single-event upset. A scheduled request always
//! executes through the *single-request* entry: the shard runs it clean
//! on the resident machine (this is what commits), then replays the
//! suffix-reconstructed twin under the fault through
//! [`elzar_fault::inject_one`]. The committed state is always the
//! reference execution's, so the resident state evolves as a pure
//! function of the committed request sequence — which is why outcome
//! counts and final table digests are bit-identical across shard
//! counts, worker counts, batch policies, snapshot intervals and
//! scaling schedules.
//!
//! ## Warm replicas, failover and divergence checking
//!
//! With [`ServeConfig::replicas`] each shard keeps a *warm standby*: a
//! second machine that mirrors every committed operation in the
//! background (same solo re-entries, same batched entries), so its
//! state is bit-identical to the primary's at every commit boundary.
//! On a Crashed-class outcome the standby is promoted in
//! [`ServeConfig::failover_cycles`] and re-runs the crashed request;
//! the old primary becomes the new standby and the restart+replay
//! detour moves to background time (`rebuild_cycles`). Because both
//! machines apply the identical committed sequence, promotion changes
//! *timing only* — outcome counts and digests stay bit-identical with
//! replicas on or off.
//!
//! The replica also powers a second, independent SDC detector
//! ([`ServeConfig::divergence_check_interval`]): every injected
//! request's faulty twin is probed by comparing its resident-table
//! digest against the committed reference state (what a state-digest
//! monitor would flag, with no access to ELZAR's classification), and
//! every N commits the primary and standby digests are compared as a
//! replication-correctness check.

use crate::controller::{slot_of, PARTITION_SLOTS};
use crate::gen::{shard_of, Request};
use crate::histogram::LatencyHistogram;
use crate::{fnv_fold, ServeConfig, FNV_OFFSET};
use elzar_apps::{kv, ServeApp};
use elzar_fault::{inject_probe, replay_suffix, replay_suffix_where, GoldenRun, OutcomeClass};
use elzar_obs::{debug, Category, CycleLedger, EventKind, Tracer};
use elzar_rng::{splitmix64, DetRng};
use elzar_sim::{vt_add, vt_mul, Component, NEVER};
use elzar_vm::{Machine, Program, RunOutcome};
use std::collections::VecDeque;

/// Cost model of one resident-table divergence scan, in virtual cycles
/// per key per machine: a cache-resident 16-byte entry probe plus the
/// digest fold.
const DIVERGENCE_CYCLES_PER_KEY: u64 = 4;

/// Per-shard serving statistics.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// Shard index.
    pub shard: u32,
    /// Requests served to completion.
    pub served: u64,
    /// Requests rejected by the bounded queue (never executed).
    pub rejected: u64,
    /// Requests shed by deadline-aware admission (predicted to miss
    /// their SLO; never executed).
    pub shed: u64,
    /// Served requests whose latency met [`ServeConfig::slo_cycles`]
    /// (0 when no SLO is configured).
    pub slo_met: u64,
    /// Batched-entry invocations (fault-scheduled requests run solo
    /// through the single-request entry and are not counted).
    pub batches: u64,
    /// Requests that took an injected fault.
    pub injected: u64,
    /// Outcome counts for injected requests, Table-I order
    /// ([`elzar_fault::Outcome::all`]).
    pub outcomes: [u64; 5],
    /// Shard restarts from snapshot (crashed/hung requests).
    pub restarts: u64,
    /// Periodic snapshots taken (the boot snapshot is free — it happens
    /// before traffic).
    pub snapshots: u64,
    /// Partition slots migrated *into* this shard (scale-up boot or
    /// scale-down absorption).
    pub migrated_in_slots: u64,
    /// Committed requests replayed to reconstruct migrated ranges.
    pub migration_replays: u64,
    /// Where every virtual cycle of this shard's lifetime went, plus
    /// background (overlapped) work — see [`elzar_obs::Category`]. The
    /// foreground categories sum to [`ShardStats::lifetime_cycles`]
    /// exactly (asserted when the report merges).
    pub ledger: CycleLedger,
    /// The shard's accounted lifetime in virtual cycles: from
    /// `spawned_at` to its retirement instant (or its final clock,
    /// whichever is later) — the conservation target of the ledger.
    pub lifetime_cycles: u64,
    /// Completion time of the shard's last request (0 if none).
    pub last_completion: u64,
    /// Virtual time the shard came online (0 for boot shards, the
    /// scale-up instant for joiners) — the start of its availability
    /// denominator.
    pub spawned_at: u64,
    /// Virtual time the shard retired (elastic scale-down);
    /// `u64::MAX` while it is still serving at stream end.
    pub retired_at: u64,
    /// Warm-replica promotions: crashes where the standby took over
    /// instead of a restart-from-snapshot detour
    /// ([`ServeConfig::replicas`]).
    pub promotions: u64,
    /// Periodic primary-vs-replica state-digest comparisons performed
    /// ([`ServeConfig::divergence_check_interval`]).
    pub divergence_checks: u64,
    /// Periodic checks that found the replica diverged from the
    /// primary (expected 0: both apply the same committed sequence —
    /// an alarm means the replication path itself is broken).
    pub divergence_alarms: u64,
    /// Per-injection divergence probes by Table-I outcome of the
    /// injected run ([`elzar_fault::Outcome::all`] order): probes
    /// compare the faulty execution's resident table against the
    /// committed reference state. Only outcomes that exited are probed
    /// (a hung/trapped machine has no committed state to compare), and
    /// only for stateful services.
    pub div_probed: [u64; 5],
    /// Probes (same indexing) where the faulty state *diverged* from
    /// the committed state — what a state-digest detector would flag.
    pub div_flagged: [u64; 5],
    /// Request latency histogram (arrival → completion, cycles).
    pub hist: LatencyHistogram,
}

impl ShardStats {
    fn new(shard: u32) -> ShardStats {
        ShardStats {
            shard,
            served: 0,
            rejected: 0,
            shed: 0,
            slo_met: 0,
            batches: 0,
            injected: 0,
            outcomes: [0; 5],
            restarts: 0,
            snapshots: 0,
            migrated_in_slots: 0,
            migration_replays: 0,
            ledger: CycleLedger::new(),
            lifetime_cycles: 0,
            last_completion: 0,
            spawned_at: 0,
            retired_at: u64::MAX,
            promotions: 0,
            divergence_checks: 0,
            divergence_alarms: 0,
            div_probed: [0; 5],
            div_flagged: [0; 5],
            hist: LatencyHistogram::new(),
        }
    }

    /// Virtual cycles spent executing request payloads
    /// ([`Category::Execute`] — crash detours excluded; those are
    /// downtime/replay).
    pub fn busy_cycles(&self) -> u64 {
        self.ledger.get(Category::Execute)
    }

    /// Virtual cycles the shard was unavailable recovering from
    /// crashes: restart penalty + suffix replay per restart, or the
    /// promotion handoff per failover
    /// ([`Category::Downtime`] + [`Category::Replay`]).
    pub fn downtime_cycles(&self) -> u64 {
        self.ledger.get(Category::Downtime) + self.ledger.get(Category::Replay)
    }

    /// Crash-recovery suffix-replay cycles alone
    /// ([`Category::Replay`] — the part of downtime that grows with
    /// `snapshot_interval`).
    pub fn replay_cycles(&self) -> u64 {
        self.ledger.get(Category::Replay)
    }

    /// Virtual cycles charged for periodic snapshot clones
    /// ([`Category::Snapshot`]).
    pub fn snapshot_cycles(&self) -> u64 {
        self.ledger.get(Category::Snapshot)
    }

    /// Virtual cycles spent on migration clone + replay
    /// ([`Category::Migration`]).
    pub fn migration_cycles(&self) -> u64 {
        self.ledger.get(Category::Migration)
    }

    /// Background cycles rebuilding the standby after promotions
    /// ([`Category::Rebuild`]).
    pub fn rebuild_cycles(&self) -> u64 {
        self.ledger.get(Category::Rebuild)
    }

    /// Background cycles the warm replica spent applying the committed
    /// log ([`Category::Mirror`]).
    pub fn replica_apply_cycles(&self) -> u64 {
        self.ledger.get(Category::Mirror)
    }

    /// Background compaction catch-up replay cycles
    /// ([`Category::Catchup`]).
    pub fn catchup_cycles(&self) -> u64 {
        self.ledger.get(Category::Catchup)
    }

    /// Background divergence-scan cycles ([`Category::Divergence`]).
    pub fn divergence_cycles(&self) -> u64 {
        self.ledger.get(Category::Divergence)
    }
}

/// A drained shard: stats, its event ring, and the final values of the
/// keys it owns (empty for stateless services).
pub(crate) struct ShardOutput {
    pub stats: ShardStats,
    pub tracer: Tracer,
    pub table: Vec<(u64, u64)>,
}

/// Fault schedule: whether request `id` takes an SEU, and if so the RNG
/// that samples its injection point. Depends only on `(seed, id)` and
/// the rate in force at `id` (`ServeConfig::fault_ppm_for` — uniform,
/// or a scenario's per-phase storm schedule), so fault placement is
/// invariant across shard counts, batching, scaling and workers.
fn fault_rng_for(cfg: &ServeConfig, id: u64) -> Option<DetRng> {
    let mut s = cfg.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = DetRng::seed_from_u64(splitmix64(&mut s));
    (rng.below(1_000_000) < u64::from(cfg.fault_ppm_for(id))).then_some(rng)
}

/// A resident serving shard that can be fed incrementally (one
/// controller epoch at a time) and hand key ranges to or take them from
/// other shards between feeds. The static serving path is the trivial
/// schedule: boot once, feed the whole routed stream.
pub(crate) struct ShardRuntime<'p, 'a> {
    m: Machine<'p>,
    /// Warm standby ([`ServeConfig::replicas`]): a second machine that
    /// applies every committed payload in the background (mirroring the
    /// primary's exact operations, so its state — memory *and*
    /// microarchitectural — is bit-identical to the primary's at every
    /// commit boundary). On a Crashed-class outcome it is promoted in
    /// `failover_cycles` instead of the restart+replay detour.
    /// `None` when replicas are off, or after an apply failure degraded
    /// the shard back to cold-restart recovery.
    replica: Option<Machine<'p>>,
    /// Last periodic snapshot (boot state until the first one).
    snap: Machine<'p>,
    /// Per-slot applied counts at the time of `snap`.
    snap_applied: [u32; PARTITION_SLOTS as usize],
    /// Per-slot committed-log entries this machine has applied (served
    /// or replayed). The machine's state for slot `s` is the pure
    /// function of the first `applied[s]` committed requests of `s`.
    applied: [u32; PARTITION_SLOTS as usize],
    /// Payloads applied since `snap`, in application order (commits and
    /// migration replays alike) — what crash recovery and fault twins
    /// replay.
    suffix: Vec<&'a [u8]>,
    /// Virtual time the shard becomes free.
    clock: u64,
    /// Completion times of admitted-but-unfinished requests at the next
    /// arrival instant (the virtual-time queue).
    inflight: VecDeque<u64>,
    /// Largest observed per-request marginal cost (cycles) — solo runs
    /// and in-batch heartbeat deltas. Drives SLO admission prediction.
    est_cycles: u64,
    /// Commits since the last periodic primary/replica divergence
    /// check.
    since_div_check: u64,
    /// Virtual-time event ring ([`ServeConfig::trace_events`]; disabled
    /// at capacity 0). Recording never reads or feeds back into the
    /// clock, so tracing on/off cannot change any serving result.
    tracer: Tracer,
    /// Serving statistics.
    pub stats: ShardStats,
}

/// FNV-1a digest of a machine's resident KV table — the state the
/// divergence detector compares. Folds `(key, value)` in key order via
/// the host-side [`kv::serve_lookup`] mirror; [`FNV_OFFSET`] for
/// stateless services (which the detector therefore cannot see —
/// output-only corruption leaves no resident state to diverge).
fn table_digest_of(m: &Machine<'_>, app: &ServeApp) -> u64 {
    let mut h = FNV_OFFSET;
    if app.table_base != 0 {
        for k in 0..app.n_keys {
            let v = kv::serve_lookup(m.memory(), app.table_base, k).unwrap_or(0);
            h = fnv_fold(fnv_fold(h, k), v);
        }
    }
    h
}

impl<'p, 'a> ShardRuntime<'p, 'a> {
    /// Boot a fresh shard: run the init entry (preloads resident
    /// state), take the free boot snapshot.
    pub fn boot(prog: &'p Program, app: &ServeApp, cfg: &ServeConfig, shard: u32) -> ShardRuntime<'p, 'a> {
        let mut mc = cfg.machine;
        mc.fault = None;
        let mut m = Machine::start(prog, app.init_entry, &[], mc);
        let outcome = m.run_to_completion();
        assert!(matches!(outcome, RunOutcome::Exited(_)), "shard init must exit cleanly, got {outcome:?}");
        let snap = m.clone();
        // The boot standby is cloned before traffic, like the boot
        // snapshot: free.
        let replica = cfg.replicas.then(|| m.clone());
        ShardRuntime {
            m,
            replica,
            snap,
            snap_applied: [0; PARTITION_SLOTS as usize],
            applied: [0; PARTITION_SLOTS as usize],
            suffix: Vec::new(),
            clock: 0,
            inflight: VecDeque::new(),
            est_cycles: 0,
            since_div_check: 0,
            tracer: Tracer::new(shard, cfg.trace_events),
            stats: ShardStats::new(shard),
        }
    }

    /// Boot a *joining* shard from a donor's snapshot (elastic
    /// scale-up): clone the donor's last snapshot, replay the donor's
    /// committed suffix filtered to the `taken` slots, and snapshot the
    /// result. The clone and the filtered replay are charged to the
    /// joiner's clock starting at virtual time `at`; the donor is
    /// untouched (its snapshot already exists, so it donates without
    /// downtime).
    pub fn boot_from_donor(
        donor: &ShardRuntime<'p, 'a>,
        app: &ServeApp,
        cfg: &ServeConfig,
        shard: u32,
        taken: u64,
        at: u64,
    ) -> ShardRuntime<'p, 'a> {
        let mut m = donor.snap.clone();
        let clone_cost = ShardRuntime::snap_cost(&m, cfg);
        let key_of = app.key_of;
        let (replay, replayed) = replay_suffix_where(&mut m, app.request_entry, &donor.suffix, |p| {
            taken >> slot_of(key_of(p)) & 1 == 1
        })
        .expect("donor's committed suffix replays cleanly on its snapshot");
        let mut applied = donor.snap_applied;
        for (s, a) in applied.iter_mut().enumerate() {
            if taken >> s & 1 == 1 {
                *a = donor.applied[s];
            }
        }
        let mut stats = ShardStats::new(shard);
        stats.spawned_at = at;
        stats.migrated_in_slots = u64::from(taken.count_ones());
        stats.migration_replays = replayed;
        stats.ledger.charge(Category::Migration, clone_cost + replay);
        let snap = m.clone();
        // The joiner's standby is a second clone of the freshly built
        // state, charged as background replication cost.
        let replica = cfg.replicas.then(|| m.clone());
        if replica.is_some() {
            stats.ledger.charge(Category::Mirror, clone_cost);
        }
        let mut tracer = Tracer::new(shard, cfg.trace_events);
        tracer.record(EventKind::Migration, at, clone_cost + replay, u64::from(donor.stats.shard), replayed);
        ShardRuntime {
            m,
            replica,
            snap,
            snap_applied: applied,
            applied,
            suffix: Vec::new(),
            clock: at + clone_cost + replay,
            inflight: VecDeque::new(),
            est_cycles: donor.est_cycles,
            since_div_check: 0,
            tracer,
            stats,
        }
    }

    /// Absorb the `taken` slots of a retiring shard (elastic
    /// scale-down): replay, onto the *live* machine, each migrated
    /// slot's committed log past what this machine has already applied.
    /// Requests only touch state owned by their own key, so the replay
    /// reconstructs the migrated ranges without disturbing the slots
    /// this shard already serves. `base` is the driver's per-slot
    /// compaction offset: `log[s]` holds the committed entries from
    /// absolute index `base[s]` onward (all-zero when compaction is
    /// off). Charged to the serving clock.
    pub fn absorb(
        &mut self,
        taken: u64,
        log: &[Vec<&'a Request>],
        base: &[u32; PARTITION_SLOTS as usize],
        app: &ServeApp,
        cfg: &ServeConfig,
    ) {
        let mut delta: Vec<&'a [u8]> = Vec::new();
        for s in 0..PARTITION_SLOTS as usize {
            if taken >> s & 1 == 1 {
                for req in &log[s][(self.applied[s] - base[s]) as usize..] {
                    delta.push(&req.payload);
                }
                self.applied[s] = base[s] + log[s].len() as u32;
            }
        }
        let cycles = replay_suffix(&mut self.m, app.request_entry, &delta)
            .expect("committed log entries replay cleanly during absorption");
        self.stats.migrated_in_slots += u64::from(taken.count_ones());
        self.stats.migration_replays += delta.len() as u64;
        self.stats.ledger.charge(Category::Migration, cycles);
        self.tracer.record(
            EventKind::Migration,
            self.clock,
            cycles,
            u64::from(taken.count_ones()),
            delta.len() as u64,
        );
        self.clock = vt_add("shard migration clock", self.clock, cycles);
        self.mirror_replay(&delta, app);
        self.suffix.extend(delta);
        self.maybe_snapshot(cfg);
    }

    /// Catch this shard up to the *entire* committed log
    /// ([`ServeConfig::compaction`]): replay, onto the live machine,
    /// every slot's committed entries past what this machine has
    /// already applied — scale-down absorption applied to all slots.
    /// Once every active shard has caught up, no shard can ever need a
    /// log entry below its snapshot mark again, so the driver truncates
    /// each slot at the fleet-minimum mark. Requests only touch state
    /// owned by their own key, so replaying non-owned slots never
    /// disturbs the slots this shard serves. Charged to background time
    /// (`catchup_cycles`) — production standbys stream the log
    /// concurrently with serving.
    pub fn catch_up(
        &mut self,
        log: &[Vec<&'a Request>],
        base: &[u32; PARTITION_SLOTS as usize],
        app: &ServeApp,
        cfg: &ServeConfig,
    ) {
        let mut delta: Vec<&'a [u8]> = Vec::new();
        for s in 0..PARTITION_SLOTS as usize {
            for req in &log[s][(self.applied[s] - base[s]) as usize..] {
                delta.push(&req.payload);
            }
            self.applied[s] = base[s] + log[s].len() as u32;
        }
        if delta.is_empty() {
            return;
        }
        let cycles = replay_suffix(&mut self.m, app.request_entry, &delta)
            .expect("committed log entries replay cleanly during catch-up");
        self.stats.ledger.charge(Category::Catchup, cycles);
        self.tracer.record(EventKind::Catchup, self.clock, cycles, delta.len() as u64, 0);
        self.mirror_replay(&delta, app);
        self.suffix.extend(delta);
        self.maybe_snapshot(cfg);
    }

    /// The absolute per-slot applied count captured by this shard's
    /// last snapshot — the compaction floor: a committed entry below
    /// every active shard's mark can never be replayed again (crash
    /// recovery, fault twins and migrations all start from a snapshot).
    pub fn snapshot_mark(&self, slot: usize) -> u32 {
        self.snap_applied[slot]
    }

    /// Queue occupancy at virtual time `t`: admitted requests whose
    /// completion lies after `t` — the controller's load signal.
    pub fn backlog_at(&self, t: u64) -> usize {
        self.inflight.iter().filter(|&&c| c > t).count()
    }

    /// 1.5× the largest observed per-request marginal cost — the
    /// conservative per-request estimate SLO admission multiplies by
    /// queue position.
    fn est_margin(&self) -> u64 {
        self.est_cycles + self.est_cycles / 2
    }

    /// Virtual-cycle cost of one machine snapshot clone under the
    /// configured cost model — the single definition shared by the
    /// periodic snapshot, migration boot and the shed predictor (which
    /// must charge exactly what [`ShardRuntime::maybe_snapshot`] will).
    fn snap_cost(m: &Machine<'_>, cfg: &ServeConfig) -> u64 {
        m.memory().resident_bytes() / cfg.snapshot_bytes_per_cycle.max(1)
    }

    /// Per-drain batch cap: the static `batch_size`, or the queue-depth
    /// policy `clamp(depth, 1, batch_max)` with
    /// [`ServeConfig::batch_adaptive`]. While deadline-aware admission
    /// has no calibrated estimate yet, drains are capped at one request
    /// so the predictor never admits a burst blind.
    fn batch_cap(&self, cfg: &ServeConfig, depth: usize) -> usize {
        if cfg.shed_slo && cfg.slo_cycles > 0 && self.est_cycles == 0 {
            return 1;
        }
        if cfg.batch_adaptive {
            depth.clamp(1, cfg.batch_max.max(1) as usize)
        } else {
            cfg.batch_size.max(1) as usize
        }
    }

    fn observe_marginal(&mut self, cycles: u64) {
        self.est_cycles = self.est_cycles.max(cycles);
    }

    fn account_completion(&mut self, req: &Request, completion: u64, cfg: &ServeConfig) {
        let latency = completion - req.arrival;
        self.stats.hist.record(latency);
        if cfg.slo_cycles > 0 && latency <= cfg.slo_cycles {
            self.stats.slo_met += 1;
        }
        self.inflight.push_back(completion);
        self.stats.served += 1;
        self.stats.last_completion = completion;
    }

    /// Take the periodic snapshot if the applied-suffix length has
    /// reached the interval: clone the quiescent machine, charge the
    /// copy in virtual time, restart the suffix.
    fn maybe_snapshot(&mut self, cfg: &ServeConfig) {
        if self.suffix.len() >= cfg.snapshot_interval.max(1) as usize {
            self.snap = self.m.clone();
            self.snap_applied = self.applied;
            self.suffix.clear();
            self.stats.snapshots += 1;
            let cost = ShardRuntime::snap_cost(&self.m, cfg);
            self.stats.ledger.charge(Category::Snapshot, cost);
            self.tracer.record(EventKind::Snapshot, self.clock, cost, self.stats.snapshots, 0);
            self.clock = vt_add("shard snapshot clock", self.clock, cost);
        }
    }

    /// Apply one committed payload on the warm standby — the
    /// background replication step that keeps the replica bit-identical
    /// to the primary at every commit boundary. A standby that cannot
    /// apply the committed log is useless: degrade the shard to
    /// cold-restart recovery instead of aborting the run.
    fn mirror_solo(&mut self, payload: &[u8], app: &ServeApp) {
        let Some(replica) = self.replica.as_mut() else { return };
        replica.reenter(app.request_entry, payload);
        let outcome = replica.run_to_completion();
        if matches!(outcome, RunOutcome::Exited(_)) {
            self.stats.ledger.charge(Category::Mirror, replica.result(outcome).cycles.max(1));
        } else {
            self.replica = None;
            debug::emit("serve", || {
                format!("shard {} degraded: standby solo apply failed", self.stats.shard)
            });
        }
    }

    /// Mirror a committed batch segment on the warm standby via the
    /// same batched entry the primary ran, so the standby's state —
    /// cache included — tracks the primary exactly.
    fn mirror_batch(&mut self, parts: &[&[u8]], app: &ServeApp) {
        let Some(replica) = self.replica.as_mut() else { return };
        replica.reenter_batch(app.batch_entry, parts);
        let outcome = replica.run_to_completion();
        if matches!(outcome, RunOutcome::Exited(_)) {
            self.stats.ledger.charge(Category::Mirror, replica.result(outcome).cycles.max(1));
        } else {
            self.replica = None;
            debug::emit("serve", || {
                format!("shard {} degraded: standby batch apply failed", self.stats.shard)
            });
        }
    }

    /// Mirror a migration/catch-up replay delta on the warm standby.
    /// This is where the typed [`elzar_fault::ReplayError`] earns its
    /// keep: a failed standby apply degrades to cold-restart recovery
    /// rather than panicking the whole run.
    fn mirror_replay(&mut self, payloads: &[&[u8]], app: &ServeApp) {
        let Some(replica) = self.replica.as_mut() else { return };
        match replay_suffix(replica, app.request_entry, payloads) {
            Ok(cycles) => self.stats.ledger.charge(Category::Mirror, cycles),
            Err(e) => {
                self.replica = None;
                debug::emit("serve", || {
                    format!("shard {} degraded: standby replay failed ({e})", self.stats.shard)
                });
            }
        }
    }

    /// Periodic primary-vs-replica divergence check
    /// ([`ServeConfig::divergence_check_interval`]): every N commits,
    /// compare both machines' resident-table digests. Agreement is the
    /// expected steady state — both apply the same committed sequence —
    /// so an alarm means the replication path itself broke.
    fn maybe_divergence_check(&mut self, app: &ServeApp, cfg: &ServeConfig, committed_n: u64) {
        if cfg.divergence_check_interval == 0 || app.table_base == 0 {
            return;
        }
        self.since_div_check += committed_n;
        if self.since_div_check >= u64::from(cfg.divergence_check_interval) {
            self.since_div_check = 0;
            if let Some(replica) = self.replica.as_ref() {
                self.stats.divergence_checks += 1;
                self.stats.ledger.charge(Category::Divergence, 2 * app.n_keys * DIVERGENCE_CYCLES_PER_KEY);
                let alarm = table_digest_of(&self.m, app) != table_digest_of(replica, app);
                if alarm {
                    self.stats.divergence_alarms += 1;
                }
                self.tracer.record(
                    EventKind::DivergenceCheck,
                    self.clock,
                    0,
                    self.stats.divergence_checks,
                    u64::from(alarm),
                );
            }
        }
    }

    /// Drain `requests` (this shard's routed arrivals, in arrival
    /// order) to completion. Returns the requests that committed, in
    /// commit order — the driver appends them to the global per-slot
    /// committed log that scale-down migration replays.
    ///
    /// This is the legacy hand-rolled time loop; the event core drives
    /// the identical [`ShardRuntime::drain_once`] body from a
    /// scheduled [`ShardDrain`] wake-up per drain instead, so both
    /// paths commit bit-identical state (pinned by the old-vs-new
    /// differential suite).
    pub fn feed(&mut self, requests: &[&'a Request], app: &ServeApp, cfg: &ServeConfig) -> Vec<&'a Request> {
        let mut committed: Vec<&'a Request> = Vec::new();
        let mut i = 0;
        while i < requests.len() {
            self.drain_once(requests, &mut i, &mut committed, app, cfg);
        }
        committed
    }

    /// The instant this shard would start its next drain given the
    /// remaining `requests[i..]`: it picks up work when free *and* the
    /// next request has arrived. [`NEVER`](elzar_sim::NEVER) once the
    /// queue is exhausted — this is the [`ShardDrain`] wake-up rule.
    pub(crate) fn next_drain_at(&self, requests: &[&'a Request], i: usize) -> u64 {
        match requests.get(i) {
            Some(req) => self.clock.max(req.arrival),
            None => NEVER,
        }
    }

    /// One drain: form a single batch starting at `requests[*i]`,
    /// execute it as fault-free/solo segments, commit, snapshot as the
    /// interval dictates, and advance `*i` past every request consumed
    /// (admitted, rejected or shed). One call is one scheduled event on
    /// the event core; the legacy [`ShardRuntime::feed`] loop calls it
    /// back-to-back until the queue drains.
    pub(crate) fn drain_once(
        &mut self,
        requests: &[&'a Request],
        i: &mut usize,
        committed: &mut Vec<&'a Request>,
        app: &ServeApp,
        cfg: &ServeConfig,
    ) {
        let interval = cfg.snapshot_interval.max(1) as usize;
        {
            // Batch formation: drain everything that has arrived by the
            // instant the shard picks up work, up to the per-drain cap.
            // Admission is checked at each request's own arrival
            // instant, counting both executed-but-unfinished batches
            // and the batch being formed.
            let mut batch: Vec<&Request> = Vec::new();
            let mut start = 0u64;
            let mut cap = 1usize;
            let mut snap_cost = 0u64;
            while *i < requests.len() {
                let req = requests[*i];
                if batch.is_empty() {
                    start = self.clock.max(req.arrival);
                    let depth = requests[*i..].iter().take_while(|r| r.arrival <= start).count();
                    cap = self.batch_cap(cfg, depth);
                    // Resident bytes only change by executing, so the
                    // clone-cost term is constant across one formation.
                    snap_cost = ShardRuntime::snap_cost(&self.m, cfg);
                } else if req.arrival > start || batch.len() >= cap {
                    break;
                }
                while self.inflight.front().is_some_and(|&c| c <= req.arrival) {
                    self.inflight.pop_front();
                }
                if self.inflight.len() + batch.len() >= cfg.queue_capacity {
                    self.stats.rejected += 1;
                    self.tracer.record(EventKind::Reject, req.arrival, 0, req.id, 0);
                    *i += 1;
                    continue;
                }
                if cfg.shed_slo && cfg.slo_cycles > 0 {
                    // Deadline-aware admission: the drain start and the
                    // request's batch position are exact; the marginal
                    // estimate is conservative (see est_margin); and
                    // every snapshot boundary the position can cross
                    // charges a worst-case clone pause.
                    let pos1 = batch.len() as u64 + 1;
                    let snaps = 1 + (self.suffix.len() as u64 + pos1) / interval as u64;
                    let predicted = vt_add(
                        "shard shed predictor",
                        start,
                        vt_add(
                            "shard shed predictor",
                            vt_mul("shard shed predictor", pos1, self.est_margin()),
                            vt_mul("shard shed predictor", snaps, snap_cost),
                        ),
                    );
                    if predicted - req.arrival > cfg.slo_cycles {
                        self.stats.shed += 1;
                        self.tracer.record(EventKind::Shed, req.arrival, 0, req.id, 0);
                        *i += 1;
                        continue;
                    }
                }
                self.tracer.record(EventKind::Admit, req.arrival, 0, req.id, 0);
                batch.push(req);
                *i += 1;
            }
            if batch.is_empty() {
                return;
            }
            // The gap between the shard going free and this drain's
            // start is the only place lifetime cycles pass unoccupied.
            self.stats.ledger.charge(Category::Idle, start - self.clock);
            self.tracer.record(EventKind::BatchForm, start, 0, batch[0].id, batch.len() as u64);

            // Execute the batch as segments: maximal fault-free runs go
            // through the batched entry; fault-scheduled requests run
            // solo (identically for every batch policy — the invariance
            // the differential tests pin); segments also end at
            // snapshot boundaries so clones always happen between
            // requests.
            let mut t = start;
            let mut k = 0;
            while k < batch.len() {
                if let Some(mut rng) = fault_rng_for(cfg, batch[k].id) {
                    let req = batch[k];
                    // Reference execution — this is what commits.
                    self.m.reenter(app.request_entry, &req.payload);
                    let outcome = self.m.run_to_completion();
                    assert!(
                        matches!(outcome, RunOutcome::Exited(_)),
                        "fault-free request {} must exit cleanly, got {outcome:?}",
                        req.id
                    );
                    let clean = self.m.result(outcome);
                    self.observe_marginal(clean.cycles.max(1));

                    let mut service = clean.cycles.max(1);
                    let mut mirrored = false;
                    // Recovery cycles inside `service` (charged to
                    // downtime/replay, not execute).
                    let mut detour = 0u64;
                    // Degenerate requests that retire no eligible
                    // instruction (nothing to corrupt) let the schedule
                    // slot pass unfired.
                    if clean.eligible > 0 {
                        let index = rng.range_inclusive(1, clean.eligible);
                        let bit = rng.below(256) as u32;
                        let golden = GoldenRun {
                            output: clean.output.clone(),
                            outcome: clean.outcome,
                            eligible: clean.eligible,
                            steps: clean.steps,
                            cycles: clean.cycles,
                        };
                        // The twin comes from the recovery machinery,
                        // not a fresh clone: restore the last snapshot,
                        // replay the applied suffix to the pre-request
                        // state.
                        let mut twin = self.snap.clone();
                        let replay = replay_suffix(&mut twin, app.request_entry, &self.suffix)
                            .expect("committed suffix replays cleanly on the snapshot");
                        twin.reenter(app.request_entry, &req.payload);
                        let (o, faulty, faulty_m) = inject_probe(twin, &golden, index, bit, cfg.hang_factor);
                        self.stats.injected += 1;
                        self.stats.outcomes[o.index()] += 1;
                        self.tracer.record(EventKind::Injection, t, 0, req.id, o.index() as u64);
                        // Second, independent SDC detector: compare the
                        // faulty execution's resident state against the
                        // committed reference — what a state-digest
                        // divergence monitor would flag, with no access
                        // to ELZAR's output/trap classification. Only
                        // exited outcomes are probed (a hung or trapped
                        // machine never reached a commit boundary), and
                        // only for stateful services.
                        if cfg.divergence_check_interval > 0
                            && app.table_base != 0
                            && o.class() != OutcomeClass::Crashed
                        {
                            self.stats.div_probed[o.index()] += 1;
                            let flagged = table_digest_of(&faulty_m, app) != table_digest_of(&self.m, app);
                            if flagged {
                                self.stats.div_flagged[o.index()] += 1;
                            }
                            self.stats
                                .ledger
                                .charge(Category::Divergence, 2 * app.n_keys * DIVERGENCE_CYCLES_PER_KEY);
                            self.tracer.record(EventKind::DivergenceProbe, t, 0, req.id, u64::from(flagged));
                        }
                        service = match o.class() {
                            OutcomeClass::Crashed => {
                                self.stats.restarts += 1;
                                if let Some(replica) = self.replica.as_mut() {
                                    // Warm failover: the standby — at
                                    // the pre-request commit boundary —
                                    // is promoted in `failover_cycles`
                                    // and re-runs the request (the SEU
                                    // does not recur). The old primary,
                                    // which already holds the committed
                                    // request from the reference
                                    // execution, becomes the new
                                    // standby; the restart+replay
                                    // detour still happens, but in the
                                    // background, rebuilding state no
                                    // client is waiting on.
                                    replica.reenter(app.request_entry, &req.payload);
                                    let ro = replica.run_to_completion();
                                    assert!(
                                        matches!(ro, RunOutcome::Exited(_)),
                                        "request {} must exit cleanly on the promoted standby, got {ro:?}",
                                        req.id
                                    );
                                    let rerun = replica.result(ro).cycles.max(1);
                                    std::mem::swap(&mut self.m, replica);
                                    mirrored = true;
                                    self.stats.promotions += 1;
                                    self.stats.ledger.charge(Category::Downtime, cfg.failover_cycles);
                                    self.stats.ledger.charge(Category::Rebuild, cfg.restart_cycles + replay);
                                    detour = cfg.failover_cycles;
                                    let at = t + faulty.cycles.max(1);
                                    self.tracer.record(
                                        EventKind::Failover,
                                        at,
                                        cfg.failover_cycles,
                                        req.id,
                                        0,
                                    );
                                    self.tracer.record(
                                        EventKind::Rebuild,
                                        at,
                                        cfg.restart_cycles + replay,
                                        req.id,
                                        0,
                                    );
                                    faulty.cycles.max(1) + cfg.failover_cycles + rerun
                                } else {
                                    // Detected crash/hang, no standby:
                                    // production restores the snapshot,
                                    // replays the suffix and re-runs
                                    // the request; the client waits out
                                    // the detour.
                                    self.stats.ledger.charge(Category::Replay, replay);
                                    self.stats.ledger.charge(Category::Downtime, cfg.restart_cycles);
                                    detour = cfg.restart_cycles + replay;
                                    self.tracer.record(
                                        EventKind::Restart,
                                        t + faulty.cycles.max(1),
                                        cfg.restart_cycles + replay,
                                        req.id,
                                        0,
                                    );
                                    faulty.cycles.max(1) + cfg.restart_cycles + replay + clean.cycles.max(1)
                                }
                            }
                            // Masked / corrected / SDC: the faulty
                            // execution is what production ran.
                            _ => faulty.cycles.max(1),
                        };
                    }
                    let completion = vt_add("shard solo completion", t, service);
                    self.stats.ledger.charge(Category::Execute, service - detour);
                    self.tracer.record(EventKind::Execute, t, service, req.id, 1);
                    self.account_completion(req, completion, cfg);
                    self.tracer.record(EventKind::Commit, completion, 0, req.id, completion - req.arrival);
                    t = completion;
                    self.suffix.push(&req.payload);
                    self.applied[slot_of(req.key) as usize] += 1;
                    committed.push(req);
                    if !mirrored {
                        self.mirror_solo(&req.payload, app);
                    }
                    self.maybe_divergence_check(app, cfg, 1);
                    k += 1;
                } else {
                    // Maximal fault-free segment, capped by the
                    // snapshot boundary.
                    let room = interval - self.suffix.len();
                    let mut end = k + 1;
                    while end < batch.len() && end - k < room && fault_rng_for(cfg, batch[end].id).is_none() {
                        end += 1;
                    }
                    let seg = &batch[k..end];
                    let parts: Vec<&'a [u8]> = seg.iter().map(|r| &*r.payload).collect();
                    self.m.reenter_batch(app.batch_entry, &parts);
                    let outcome = self.m.run_to_completion();
                    assert!(
                        matches!(outcome, RunOutcome::Exited(_)),
                        "fault-free batch at request {} must exit cleanly, got {outcome:?}",
                        seg[0].id
                    );
                    let r = self.m.result(outcome);
                    assert_eq!(
                        r.heartbeat_cycles.len(),
                        seg.len(),
                        "serve batch entries emit exactly one heartbeat per request"
                    );
                    let cycles = r.cycles.max(1);
                    self.tracer.record(EventKind::Execute, t, cycles, seg[0].id, seg.len() as u64);
                    let mut prev_hb = 0u64;
                    for (req, &hb) in seg.iter().zip(&r.heartbeat_cycles) {
                        let completion = vt_add("shard heartbeat offset", t, hb.max(1));
                        self.account_completion(req, completion, cfg);
                        self.tracer.record(
                            EventKind::Commit,
                            completion,
                            0,
                            req.id,
                            completion - req.arrival,
                        );
                        self.observe_marginal(hb.max(1) - prev_hb.min(hb));
                        prev_hb = hb;
                    }
                    self.stats.ledger.charge(Category::Execute, cycles);
                    self.stats.batches += 1;
                    t = vt_add("shard batch clock", t, cycles);
                    for req in seg {
                        self.suffix.push(&req.payload);
                        self.applied[slot_of(req.key) as usize] += 1;
                        committed.push(req);
                    }
                    self.mirror_batch(&parts, app);
                    self.maybe_divergence_check(app, cfg, seg.len() as u64);
                    k = end;
                }
                self.clock = t;
                self.maybe_snapshot(cfg);
                t = self.clock;
            }
            self.clock = t;
        }
    }

    /// Finish the shard: close the cycle ledger (the tail between the
    /// last activity and the shard's end of life is idle), then emit
    /// stats, the event ring and the final resident-table values of the
    /// keys the `owns` predicate assigns to it.
    pub fn into_output(mut self, app: &ServeApp, owns: &dyn Fn(u64) -> bool) -> ShardOutput {
        // A retiree's life ends at its retirement instant (or its final
        // clock if a trailing snapshot/migration ran past it); a shard
        // alive at stream end ends at its final clock.
        let end = if self.stats.retired_at == u64::MAX {
            self.clock
        } else {
            self.stats.retired_at.max(self.clock)
        };
        self.stats.ledger.charge(Category::Idle, end - self.clock);
        self.stats.lifetime_cycles = end - self.stats.spawned_at;
        let mut table = Vec::new();
        if app.table_base != 0 {
            for k in 0..app.n_keys {
                if owns(k) {
                    table.push((k, kv::serve_lookup(self.m.memory(), app.table_base, k).unwrap_or(0)));
                }
            }
        }
        ShardOutput { stats: self.stats, tracer: self.tracer, table }
    }
}

/// Boot shard `shard` and drain its routed `requests` in arrival order
/// — the static serving path (a [`ShardRuntime`] fed once).
pub(crate) fn drain_shard(
    prog: &Program,
    app: &ServeApp,
    shard: u32,
    shards: u32,
    requests: &[&Request],
    cfg: &ServeConfig,
) -> ShardOutput {
    let mut rt = ShardRuntime::boot(prog, app, cfg, shard);
    rt.feed(requests, app, cfg);
    rt.into_output(app, &|key| shard_of(key, shards) == shard)
}

/// A shard on the `elzar_sim` event core: each wake-up is one drain
/// ([`ShardRuntime::drain_once`]) at the instant the shard would pick
/// up its next pending request ([`ShardRuntime::next_drain_at`]).
///
/// Arrivals, batch drains, snapshots, heartbeats and failover
/// promotion all commit *inside* the drain event, in the same order
/// the legacy [`ShardRuntime::feed`] loop commits them — which is why
/// the old-vs-new differential holds bit-identically: the scheduler
/// only decides *which shard* drains next, and shards share no state.
pub(crate) struct ShardDrain<'p, 'a, 's> {
    rt: &'s mut ShardRuntime<'p, 'a>,
    requests: &'s [&'a Request],
    i: usize,
    /// Commits in commit order, handed back to the driver via
    /// [`Scheduler::into_components`](elzar_sim::Scheduler::into_components).
    pub committed: Vec<&'a Request>,
    app: &'s ServeApp,
    cfg: &'s ServeConfig,
}

impl<'p, 'a, 's> ShardDrain<'p, 'a, 's> {
    pub fn new(
        rt: &'s mut ShardRuntime<'p, 'a>,
        requests: &'s [&'a Request],
        app: &'s ServeApp,
        cfg: &'s ServeConfig,
    ) -> Self {
        ShardDrain { rt, requests, i: 0, committed: Vec::new(), app, cfg }
    }

    /// The wrapped shard's id (for committed-log scatter in id order).
    pub fn shard(&self) -> u32 {
        self.rt.stats.shard
    }
}

impl<'p, 'a, 's> Component<()> for ShardDrain<'p, 'a, 's> {
    fn label(&self) -> &'static str {
        "serve shard drain"
    }

    fn next_tick(&self) -> u64 {
        self.rt.next_drain_at(self.requests, self.i)
    }

    fn tick(&mut self, _now: u64, _sys: &mut ()) {
        if self.i < self.requests.len() {
            self.rt.drain_once(self.requests, &mut self.i, &mut self.committed, self.app, self.cfg);
        }
    }
}
