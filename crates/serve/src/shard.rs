//! One serving shard: a resident hardened VM drained serially in
//! arrival order, with snapshot-based recovery and per-request online
//! fault accounting.
//!
//! ## Execution model
//!
//! A shard boots once (`init_entry` preloads resident state — e.g. the
//! KV table — into the machine's memory), then serves each routed
//! request as one [`Machine::reenter`] + run. Time is *virtual*: the
//! VM's cycle counts drive a serial FIFO queue model, so results are
//! independent of host threads and wall-clock.
//!
//! ## Bounded queue (admission control)
//!
//! The per-shard queue bound is enforced in virtual time: a request
//! arriving while `queue_capacity` earlier requests are still in flight
//! is rejected (never executed). Host-side, the shard's pending
//! requests are a pre-routed slice drained in arrival order — which is
//! exactly what makes the bound deterministic.
//!
//! ## Online fault accounting (reference-committed)
//!
//! A deterministic per-request schedule (a pure function of the
//! campaign seed and the request id — never of shard count, queueing or
//! host threads) picks which requests take a single-event upset. For
//! such a request the shard snapshots its pre-request state (a cheap,
//! usage-proportional [`Machine`] clone), runs the request *clean* to
//! obtain the per-request golden reference, then replays the snapshot
//! under the fault through [`elzar_fault::inject_one`] — the same
//! single-run injector the batch campaign uses. Classification follows
//! Table I; a crashed/hung outcome restarts the shard from the
//! pre-request snapshot and replays the request (the SEU is transient),
//! charging the wasted cycles plus a restart penalty to the request's
//! latency. The *committed* state is always the reference execution's,
//! so the resident state evolves as a pure function of the committed
//! request sequence — this is what makes outcome counts and final table
//! digests bit-identical across shard and worker counts.

use crate::gen::{shard_of, Request};
use crate::histogram::LatencyHistogram;
use crate::ServeConfig;
use elzar_apps::{kv, ServeApp};
use elzar_fault::{inject_one, GoldenRun, OutcomeClass};
use elzar_rng::{splitmix64, DetRng};
use elzar_vm::{Machine, Program, RunOutcome};
use std::collections::VecDeque;

/// Per-shard serving statistics.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// Shard index.
    pub shard: u32,
    /// Requests served to completion.
    pub served: u64,
    /// Requests rejected by the bounded queue (never executed).
    pub rejected: u64,
    /// Requests that took an injected fault.
    pub injected: u64,
    /// Outcome counts for injected requests, Table-I order
    /// ([`elzar_fault::Outcome::all`]).
    pub outcomes: [u64; 5],
    /// Shard restarts from snapshot (crashed/hung requests).
    pub restarts: u64,
    /// Virtual cycles spent restoring snapshots after crashes.
    pub downtime_cycles: u64,
    /// Virtual cycles the shard spent executing requests.
    pub busy_cycles: u64,
    /// Completion time of the shard's last request (0 if none).
    pub last_completion: u64,
    /// Request latency histogram (arrival → completion, cycles).
    pub hist: LatencyHistogram,
}

impl ShardStats {
    fn new(shard: u32) -> ShardStats {
        ShardStats {
            shard,
            served: 0,
            rejected: 0,
            injected: 0,
            outcomes: [0; 5],
            restarts: 0,
            downtime_cycles: 0,
            busy_cycles: 0,
            last_completion: 0,
            hist: LatencyHistogram::new(),
        }
    }
}

/// A drained shard: stats plus the final values of the keys it owns
/// (empty for stateless services).
pub(crate) struct ShardOutput {
    pub stats: ShardStats,
    pub table: Vec<(u64, u64)>,
}

/// Fault schedule: whether request `id` takes an SEU, and if so the RNG
/// that samples its injection point. Depends only on `(seed, id)`.
fn fault_rng_for(cfg: &ServeConfig, id: u64) -> Option<DetRng> {
    let mut s = cfg.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = DetRng::seed_from_u64(splitmix64(&mut s));
    (rng.below(1_000_000) < u64::from(cfg.fault_rate_ppm)).then_some(rng)
}

/// Boot shard `shard` and drain its routed `requests` in arrival order.
pub(crate) fn drain_shard(
    prog: &Program,
    app: &ServeApp,
    shard: u32,
    shards: u32,
    requests: &[&Request],
    cfg: &ServeConfig,
) -> ShardOutput {
    let mut mc = cfg.machine;
    mc.fault = None;
    let mut m = Machine::start(prog, app.init_entry, &[], mc);
    let boot = m.run_to_completion();
    assert!(matches!(boot, RunOutcome::Exited(_)), "shard init must exit cleanly, got {boot:?}");

    let mut stats = ShardStats::new(shard);
    // Completion times of accepted-but-unfinished requests at the next
    // arrival instant (the virtual-time queue).
    let mut inflight: VecDeque<u64> = VecDeque::new();
    let mut clock = 0u64;
    for req in requests {
        while inflight.front().is_some_and(|&c| c <= req.arrival) {
            inflight.pop_front();
        }
        if inflight.len() >= cfg.queue_capacity {
            stats.rejected += 1;
            continue;
        }

        // Snapshot before touching the machine iff this request is
        // scheduled to take a fault (the clean run below mutates the
        // resident state).
        let fault = fault_rng_for(cfg, req.id);
        let snapshot = fault.is_some().then(|| m.clone());

        // Reference execution — this is what commits.
        m.reenter(app.request_entry, &req.payload);
        let outcome = m.run_to_completion();
        assert!(
            matches!(outcome, RunOutcome::Exited(_)),
            "fault-free request {} must exit cleanly, got {outcome:?}",
            req.id
        );
        let clean = m.result(outcome);

        let mut service = clean.cycles.max(1);
        if let (Some(mut rng), Some(snap)) = (fault, snapshot) {
            // Degenerate requests that retire no eligible instruction
            // (nothing to corrupt) let the schedule slot pass unfired.
            if clean.eligible > 0 {
                let index = rng.range_inclusive(1, clean.eligible);
                let bit = rng.below(256) as u32;
                let golden = GoldenRun {
                    output: clean.output.clone(),
                    outcome: clean.outcome,
                    eligible: clean.eligible,
                    steps: clean.steps,
                    cycles: clean.cycles,
                };
                let mut twin = snap;
                twin.reenter(app.request_entry, &req.payload);
                let (o, faulty) = inject_one(twin, &golden, index, bit, cfg.hang_factor);
                stats.injected += 1;
                stats.outcomes[o.index()] += 1;
                service = match o.class() {
                    // Detected crash/hang: restore the pre-request
                    // snapshot and replay (the SEU does not recur); the
                    // client waits out the whole detour.
                    OutcomeClass::Crashed => {
                        stats.restarts += 1;
                        stats.downtime_cycles += cfg.restart_cycles;
                        faulty.cycles.max(1) + cfg.restart_cycles + clean.cycles.max(1)
                    }
                    // Masked / corrected / SDC: the faulty execution is
                    // what production ran.
                    _ => faulty.cycles.max(1),
                };
            }
        }

        let start = clock.max(req.arrival);
        let completion = start + service;
        clock = completion;
        inflight.push_back(completion);
        stats.hist.record(completion - req.arrival);
        stats.busy_cycles += service;
        stats.served += 1;
        stats.last_completion = completion;
    }

    // Final resident-table values for the keys this shard owns.
    let mut table = Vec::new();
    if app.table_base != 0 {
        for k in 0..app.n_keys {
            if shard_of(k, shards) == shard {
                table.push((k, kv::serve_lookup(m.memory(), app.table_base, k).unwrap_or(0)));
            }
        }
    }
    ShardOutput { stats, table }
}
