//! One serving shard: a resident hardened VM drained in arrival order
//! with batched request execution, K-interval snapshots with
//! suffix-replay recovery, and per-request online fault accounting.
//!
//! ## Execution model
//!
//! A shard boots once (`init_entry` preloads resident state — e.g. the
//! KV table — into the machine's memory), then serves its routed
//! requests in arrival order. Time is *virtual*: the VM's cycle counts
//! drive a serial queue model, so results are independent of host
//! threads and wall-clock.
//!
//! ## Batching
//!
//! Whenever the shard becomes free at virtual time `t`, it drains every
//! admitted request that has arrived by `t` — up to
//! [`ServeConfig::batch_size`] — into one *batch* and executes it as a
//! single [`Machine::reenter_batch`] over the requests' concatenated
//! payloads (a count-prefixed mini-trace). The shard never waits to
//! fill a batch: under light load batches degenerate to size 1, under
//! saturation they amortize the per-entry costs (thread spawn, cold
//! L1/L2/branch state — a fresh core per re-entry is exactly what makes
//! single-request serving expensive) across `batch_size` requests.
//! Per-request latency stays honest inside a batch: every request emits
//! one heartbeat at completion, and the runtime converts the machine's
//! heartbeat timestamps into per-request completion instants — request
//! `i` of a batch completes at `batch_start + heartbeat_cycles[i]`, not
//! at the batch's end.
//!
//! ## Bounded queue (admission control)
//!
//! The per-shard queue bound is enforced in virtual time: a request
//! arriving while `queue_capacity` earlier requests are still in flight
//! (queued, batched-but-unfinished, or executing) is rejected — never
//! executed. Host-side, the shard's pending requests are a pre-routed
//! slice drained in arrival order, which is what makes the bound
//! deterministic.
//!
//! ## K-interval snapshots and suffix replay
//!
//! The shard clones its machine ([`Machine`] clones are
//! usage-proportional) every [`ServeConfig::snapshot_interval`]
//! *committed* requests, charging the clone
//! `resident_bytes / snapshot_bytes_per_cycle` virtual cycles, and
//! remembers the payloads committed since (`suffix`). Recovery and
//! fault twins are built from that machinery alone — never from an
//! on-demand pre-request clone:
//!
//! * a *fault twin* (the execution that takes the SEU) is
//!   `snapshot.clone()` + [`elzar_fault::replay_suffix`] — a
//!   deterministic re-execution of the committed suffix that
//!   reconstructs the pre-request state bit-for-bit;
//! * a *crashed* outcome (hang / OS-detected) restarts the shard the
//!   same way: the request's detour is
//!   `faulty_cycles + restart_cycles + replay_cycles + clean_cycles`,
//!   and `restart_cycles + replay_cycles` counts as downtime.
//!
//! Small intervals pay clone cost on the steady path; large intervals
//! pay replay cost on every crash — the trade-off `fig_serve`'s
//! restart curve measures.
//!
//! ## Online fault accounting (reference-committed)
//!
//! A deterministic per-request schedule (a pure function of the
//! campaign seed and the global request id — never of shard count,
//! batching, snapshot cadence or host threads) picks which requests
//! take a single-event upset. A scheduled request always executes
//! through the *single-request* entry: the shard runs it clean on the
//! resident machine to obtain the per-request golden reference (this is
//! what commits), then replays the suffix-reconstructed twin under the
//! fault through [`elzar_fault::inject_one`] — the same single-run
//! injector the batch campaign uses. Classification follows Table I.
//! The *committed* state is always the reference execution's, so the
//! resident state evolves as a pure function of the committed request
//! sequence — which is why outcome counts and final table digests are
//! bit-identical across shard counts, worker counts, batch sizes and
//! snapshot intervals (fault-free batches write exactly the bytes the
//! equivalent single-request sequence would).

use crate::gen::{shard_of, Request};
use crate::histogram::LatencyHistogram;
use crate::ServeConfig;
use elzar_apps::{kv, ServeApp};
use elzar_fault::{inject_one, replay_suffix, GoldenRun, OutcomeClass};
use elzar_rng::{splitmix64, DetRng};
use elzar_vm::{Machine, Program, RunOutcome};
use std::collections::VecDeque;

/// Per-shard serving statistics.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// Shard index.
    pub shard: u32,
    /// Requests served to completion.
    pub served: u64,
    /// Requests rejected by the bounded queue (never executed).
    pub rejected: u64,
    /// Batched-entry invocations (fault-scheduled requests run solo
    /// through the single-request entry and are not counted).
    pub batches: u64,
    /// Requests that took an injected fault.
    pub injected: u64,
    /// Outcome counts for injected requests, Table-I order
    /// ([`elzar_fault::Outcome::all`]).
    pub outcomes: [u64; 5],
    /// Shard restarts from snapshot (crashed/hung requests).
    pub restarts: u64,
    /// Virtual cycles spent restoring snapshots and replaying suffixes
    /// after crashes (`restart_cycles + replay` per restart).
    pub downtime_cycles: u64,
    /// Virtual cycles of crash-recovery suffix replay alone (the part
    /// of downtime that grows with `snapshot_interval`).
    pub replay_cycles: u64,
    /// Periodic snapshots taken (the boot snapshot is free — it happens
    /// before traffic).
    pub snapshots: u64,
    /// Virtual cycles charged for periodic snapshot clones
    /// (`resident_bytes / snapshot_bytes_per_cycle` each — the cost
    /// that grows as `snapshot_interval` shrinks).
    pub snapshot_cycles: u64,
    /// Virtual cycles the shard spent executing requests.
    pub busy_cycles: u64,
    /// Completion time of the shard's last request (0 if none).
    pub last_completion: u64,
    /// Request latency histogram (arrival → completion, cycles).
    pub hist: LatencyHistogram,
}

impl ShardStats {
    fn new(shard: u32) -> ShardStats {
        ShardStats {
            shard,
            served: 0,
            rejected: 0,
            batches: 0,
            injected: 0,
            outcomes: [0; 5],
            restarts: 0,
            downtime_cycles: 0,
            replay_cycles: 0,
            snapshots: 0,
            snapshot_cycles: 0,
            busy_cycles: 0,
            last_completion: 0,
            hist: LatencyHistogram::new(),
        }
    }
}

/// A drained shard: stats plus the final values of the keys it owns
/// (empty for stateless services).
pub(crate) struct ShardOutput {
    pub stats: ShardStats,
    pub table: Vec<(u64, u64)>,
}

/// Fault schedule: whether request `id` takes an SEU, and if so the RNG
/// that samples its injection point. Depends only on `(seed, id)`.
fn fault_rng_for(cfg: &ServeConfig, id: u64) -> Option<DetRng> {
    let mut s = cfg.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = DetRng::seed_from_u64(splitmix64(&mut s));
    (rng.below(1_000_000) < u64::from(cfg.fault_rate_ppm)).then_some(rng)
}

/// Boot shard `shard` and drain its routed `requests` in arrival order.
pub(crate) fn drain_shard(
    prog: &Program,
    app: &ServeApp,
    shard: u32,
    shards: u32,
    requests: &[&Request],
    cfg: &ServeConfig,
) -> ShardOutput {
    let mut mc = cfg.machine;
    mc.fault = None;
    let mut m = Machine::start(prog, app.init_entry, &[], mc);
    let boot = m.run_to_completion();
    assert!(matches!(boot, RunOutcome::Exited(_)), "shard init must exit cleanly, got {boot:?}");

    let batch_size = cfg.batch_size.max(1) as usize;
    let interval = cfg.snapshot_interval.max(1) as usize;

    let mut stats = ShardStats::new(shard);
    // Completion times of accepted-but-unfinished requests at the next
    // arrival instant (the virtual-time queue).
    let mut inflight: VecDeque<u64> = VecDeque::new();
    let mut clock = 0u64;
    // Recovery machinery: the boot snapshot plus the payloads committed
    // since the last snapshot, in commit order.
    let mut snap = m.clone();
    let mut suffix: Vec<&[u8]> = Vec::new();

    let mut i = 0;
    while i < requests.len() {
        // Batch formation: drain everything that has arrived by the
        // instant the shard picks up work, up to `batch_size`.
        // Admission is checked at each request's own arrival instant,
        // counting both executed-but-unfinished batches and the batch
        // being formed.
        let mut batch: Vec<&Request> = Vec::new();
        let mut start = 0u64;
        while i < requests.len() && batch.len() < batch_size {
            let req = requests[i];
            if batch.is_empty() {
                start = clock.max(req.arrival);
            } else if req.arrival > start {
                break;
            }
            while inflight.front().is_some_and(|&c| c <= req.arrival) {
                inflight.pop_front();
            }
            if inflight.len() + batch.len() >= cfg.queue_capacity {
                stats.rejected += 1;
                i += 1;
                continue;
            }
            batch.push(req);
            i += 1;
        }
        if batch.is_empty() {
            continue;
        }

        // Execute the batch as segments: maximal fault-free runs go
        // through the batched entry; fault-scheduled requests run solo
        // (identically for every batch size — the invariance the
        // differential test pins); segments also end at snapshot
        // boundaries so clones always happen between requests.
        let mut t = start;
        let mut k = 0;
        while k < batch.len() {
            if let Some(mut rng) = fault_rng_for(cfg, batch[k].id) {
                let req = batch[k];
                // Reference execution — this is what commits.
                m.reenter(app.request_entry, &req.payload);
                let outcome = m.run_to_completion();
                assert!(
                    matches!(outcome, RunOutcome::Exited(_)),
                    "fault-free request {} must exit cleanly, got {outcome:?}",
                    req.id
                );
                let clean = m.result(outcome);

                let mut service = clean.cycles.max(1);
                // Degenerate requests that retire no eligible
                // instruction (nothing to corrupt) let the schedule
                // slot pass unfired.
                if clean.eligible > 0 {
                    let index = rng.range_inclusive(1, clean.eligible);
                    let bit = rng.below(256) as u32;
                    let golden = GoldenRun {
                        output: clean.output.clone(),
                        outcome: clean.outcome,
                        eligible: clean.eligible,
                        steps: clean.steps,
                        cycles: clean.cycles,
                    };
                    // The twin comes from the recovery machinery, not a
                    // fresh clone: restore the last snapshot, replay
                    // the committed suffix to the pre-request state.
                    let mut twin = snap.clone();
                    let replay = replay_suffix(&mut twin, app.request_entry, &suffix);
                    twin.reenter(app.request_entry, &req.payload);
                    let (o, faulty) = inject_one(twin, &golden, index, bit, cfg.hang_factor);
                    stats.injected += 1;
                    stats.outcomes[o.index()] += 1;
                    service = match o.class() {
                        // Detected crash/hang: production restores the
                        // snapshot, replays the suffix and re-runs the
                        // request (the SEU does not recur); the client
                        // waits out the whole detour.
                        OutcomeClass::Crashed => {
                            stats.restarts += 1;
                            stats.replay_cycles += replay;
                            stats.downtime_cycles += cfg.restart_cycles + replay;
                            faulty.cycles.max(1) + cfg.restart_cycles + replay + clean.cycles.max(1)
                        }
                        // Masked / corrected / SDC: the faulty
                        // execution is what production ran.
                        _ => faulty.cycles.max(1),
                    };
                }
                let completion = t + service;
                stats.hist.record(completion - req.arrival);
                inflight.push_back(completion);
                stats.busy_cycles += service;
                stats.served += 1;
                stats.last_completion = completion;
                t = completion;
                suffix.push(&req.payload);
                k += 1;
            } else {
                // Maximal fault-free segment, capped by the snapshot
                // boundary.
                let room = interval - suffix.len();
                let mut end = k + 1;
                while end < batch.len() && end - k < room && fault_rng_for(cfg, batch[end].id).is_none() {
                    end += 1;
                }
                let seg = &batch[k..end];
                let parts: Vec<&[u8]> = seg.iter().map(|r| &*r.payload).collect();
                m.reenter_batch(app.batch_entry, &parts);
                let outcome = m.run_to_completion();
                assert!(
                    matches!(outcome, RunOutcome::Exited(_)),
                    "fault-free batch at request {} must exit cleanly, got {outcome:?}",
                    seg[0].id
                );
                let r = m.result(outcome);
                assert_eq!(
                    r.heartbeat_cycles.len(),
                    seg.len(),
                    "serve batch entries emit exactly one heartbeat per request"
                );
                for (req, &hb) in seg.iter().zip(&r.heartbeat_cycles) {
                    let completion = t + hb.max(1);
                    stats.hist.record(completion - req.arrival);
                    inflight.push_back(completion);
                    stats.served += 1;
                    stats.last_completion = completion;
                }
                let cycles = r.cycles.max(1);
                stats.busy_cycles += cycles;
                stats.batches += 1;
                t += cycles;
                suffix.extend(parts);
                k = end;
            }
            // Periodic snapshot: clone the quiescent machine, charge
            // the copy in virtual time, restart the suffix.
            if suffix.len() >= interval {
                snap = m.clone();
                suffix.clear();
                stats.snapshots += 1;
                let cost = m.memory().resident_bytes() / cfg.snapshot_bytes_per_cycle.max(1);
                stats.snapshot_cycles += cost;
                t += cost;
            }
        }
        clock = t;
    }

    // Final resident-table values for the keys this shard owns.
    let mut table = Vec::new();
    if app.table_base != 0 {
        for k in 0..app.n_keys {
            if shard_of(k, shards) == shard {
                table.push((k, kv::serve_lookup(m.memory(), app.table_base, k).unwrap_or(0)));
            }
        }
    }
    ShardOutput { stats, table }
}
