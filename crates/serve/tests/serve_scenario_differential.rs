//! Differential determinism tests for the scenario library and the
//! predictive scaling policy:
//!
//! * every [`ScenarioPreset`] × {reactive, predictive} run is
//!   *bit-identical* across host worker counts — outcome counts, the
//!   KV digest, the cycle ledger, the scaling event log and the
//!   canonical trace bytes — because scenarios compile to pure
//!   virtual-time streams and the Holt forecast reads only the stream;
//! * predictive scaling actually helps where it should: on the
//!   flash-crowd preset it pre-boots through the onset ramp and beats
//!   reactive's p99 (shedding off, so the tail measures pure queueing);
//! * at constant load the forecast sits exactly on the smoothed level,
//!   neither predictive trigger can fire, and the two policies produce
//!   the same decisions — same scaling event log, same report;
//! * the per-epoch `Forecast` trace series is a function of the stream
//!   alone: identical across worker counts *and* batch policies even
//!   when the resulting scaling schedules differ;
//! * an all-shed tail still produces a total, conserved report
//!   (`served + rejected + shed == requests`, ledger verified on merge).

use elzar::{Artifact, Mode};
use elzar_apps::Scale;
use elzar_serve::gen::{Phase, PhaseLoad, Scenario, ScenarioPreset};
use elzar_serve::{serve_scenario, EventKind, ScalingPolicy, ServeConfig, ServeReport, Service};

const REQUESTS: u64 = 320;
// One Tiny KvA shard sustains roughly one request per ~5k cycles
// (execution + K=16 snapshot amortization, plus 50k-cycle restart
// detours on crash-class faults), so a 12_000-cycle calm gap runs one
// shard at comfortable utilization, a crowd at gap/6 (2_000) needs the
// whole 4-shard fleet, and a 3x-gap night leaves most of it idle —
// real scaling dynamics, not a monotone queue explosion.
const BASE_GAP: u64 = 12_000;
const BASE_PPM: u32 = 50_000; // ~5% ambient SEU rate

fn scenario_cfg(policy: ScalingPolicy) -> ServeConfig {
    ServeConfig {
        shards: 1,
        workers: 4,
        batch_size: 4,
        snapshot_interval: 16,
        seed: 0x5CE2_A210,
        queue_capacity: 1 << 20, // reject nothing: totals stay comparable
        adaptive_shards: true,
        shards_max: 4,
        control_interval: 16,
        scale_up_backlog: 6,
        scale_down_backlog: 1,
        scaling_policy: policy,
        trace_events: 64,
        ..Default::default()
    }
}

fn run(preset: ScenarioPreset, policy: ScalingPolicy, workers: u32) -> ServeReport {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let scenario = preset.scenario(REQUESTS, BASE_GAP, BASE_PPM);
    let cfg = ServeConfig { workers, ..scenario_cfg(policy) };
    serve_scenario(service, artifact.program(), &app, &scenario, &cfg)
}

fn bit_identical(tag: &str, a: &ServeReport, b: &ServeReport) {
    assert_eq!(a.served, b.served, "{tag}: served");
    assert_eq!(a.rejected, b.rejected, "{tag}: rejected");
    assert_eq!(a.shed, b.shed, "{tag}: shed");
    assert_eq!(a.injected, b.injected, "{tag}: injected");
    assert_eq!(a.outcomes, b.outcomes, "{tag}: outcomes");
    assert_eq!(a.restarts, b.restarts, "{tag}: restarts");
    assert_eq!(a.makespan_cycles, b.makespan_cycles, "{tag}: makespan");
    assert_eq!(a.hist, b.hist, "{tag}: latency histogram");
    assert_eq!(a.table_digest, b.table_digest, "{tag}: table digest");
    assert_eq!(a.events, b.events, "{tag}: scaling event log");
    assert_eq!(a.ledger, b.ledger, "{tag}: cycle ledger");
    assert_eq!(a.peak_shards, b.peak_shards, "{tag}: peak shards");
    assert_eq!(a.final_shards, b.final_shards, "{tag}: final shards");
    assert_eq!(a.trace.canonical_bytes(), b.trace.canonical_bytes(), "{tag}: canonical trace bytes");
}

/// The tentpole invariance: every preset × policy run is bit-identical
/// across worker counts, canonical trace bytes included.
#[test]
fn every_preset_and_policy_is_worker_invariant() {
    for preset in ScenarioPreset::all() {
        for policy in [ScalingPolicy::Reactive, ScalingPolicy::Predictive] {
            let tag = format!("{}/{policy:?}", preset.label());
            let w1 = run(preset, policy, 1);
            let w4 = run(preset, policy, 4);
            assert_eq!(
                w1.served + w1.rejected + w1.shed,
                REQUESTS,
                "{tag}: report must account for every request"
            );
            bit_identical(&tag, &w1, &w4);
            // Scenarios with fault phases must actually inject (the
            // preset rates are 5%+ over 320 requests).
            assert!(w1.injected > 0, "{tag}: no injections");
        }
    }
}

/// Predictive pre-boots through the flash-crowd onset ramp and beats
/// reactive's p99 (shedding off: the tail is pure queueing delay).
#[test]
fn predictive_beats_reactive_p99_on_flash_crowd() {
    let reactive = run(ScenarioPreset::FlashCrowd, ScalingPolicy::Reactive, 4);
    let predictive = run(ScenarioPreset::FlashCrowd, ScalingPolicy::Predictive, 4);
    // Same committed work either way — policy changes timing only.
    assert_eq!(reactive.table_digest, predictive.table_digest);
    assert_eq!(reactive.outcomes, predictive.outcomes);
    assert_eq!(reactive.served, predictive.served);
    // Predictive must have fired at least one pre-boot the reactive
    // schedule didn't have yet (earlier or extra scale-ups).
    assert!(predictive.events != reactive.events, "predictive schedule should differ on a flash crowd");
    let (rp99, pp99) = (reactive.quantile_cycles(0.99), predictive.quantile_cycles(0.99));
    assert!(pp99 < rp99, "predictive p99 {pp99} must beat reactive p99 {rp99} on the flash crowd");
}

/// At constant load the forecast equals the smoothed level exactly
/// (integer Holt has the constant as a fixed point), so predictive is
/// reactive, decision for decision: same event log, same everything
/// except the extra `Forecast` trace instants.
#[test]
fn constant_load_predictive_matches_reactive_decision_for_decision() {
    let steady = Scenario {
        name: "steady",
        phases: vec![Phase {
            name: "steady",
            requests: REQUESTS,
            load: PhaseLoad::Steady { mean_gap: BASE_GAP },
            fault_ppm: BASE_PPM,
            key_rotate_pct: 0,
        }],
    };
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let reactive =
        serve_scenario(service, artifact.program(), &app, &steady, &scenario_cfg(ScalingPolicy::Reactive));
    let predictive =
        serve_scenario(service, artifact.program(), &app, &steady, &scenario_cfg(ScalingPolicy::Predictive));
    assert_eq!(reactive.events, predictive.events, "decisions must match at constant load");
    assert_eq!(reactive.served, predictive.served);
    assert_eq!(reactive.outcomes, predictive.outcomes);
    assert_eq!(reactive.table_digest, predictive.table_digest);
    assert_eq!(reactive.makespan_cycles, predictive.makespan_cycles);
    assert_eq!(reactive.hist, predictive.hist);
    assert_eq!(reactive.ledger, predictive.ledger);
    // The only trace difference is the predictive driver's Forecast
    // instants; with those filtered the event payloads are identical
    // (sequence numbers on the driver track shift past each Forecast
    // record, so compare payloads, not canonical bytes).
    let strip = |r: &ServeReport| -> Vec<(u64, u32, EventKind, u64, u64)> {
        r.trace
            .events
            .iter()
            .filter(|e| e.kind != EventKind::Forecast)
            .map(|e| (e.cycle, e.track, e.kind, e.a, e.b))
            .collect()
    };
    assert_eq!(strip(&reactive), strip(&predictive), "non-forecast trace must match");
    let forecasts = predictive.trace.events.iter().filter(|e| e.kind == EventKind::Forecast).count();
    assert!(forecasts > 0, "predictive runs must record forecasts");
    assert!(
        !reactive.trace.events.iter().any(|e| e.kind == EventKind::Forecast),
        "reactive runs must not record forecasts"
    );
}

/// The Forecast series is a pure function of the stream: identical
/// across worker counts and batch policies, even though the *scaling
/// schedules* may legitimately differ across batch policies (backlogs
/// differ; the forecast input does not).
#[test]
fn forecast_series_is_stream_only() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let scenario = ScenarioPreset::Diurnal.scenario(REQUESTS, BASE_GAP, 0);
    let series = |cfg: &ServeConfig| -> Vec<(u64, u64, u64)> {
        let r = serve_scenario(service, artifact.program(), &app, &scenario, cfg);
        r.trace.events.iter().filter(|e| e.kind == EventKind::Forecast).map(|e| (e.cycle, e.a, e.b)).collect()
    };
    let base = scenario_cfg(ScalingPolicy::Predictive);
    let a = series(&base);
    assert!(!a.is_empty(), "no forecasts recorded");
    let b = series(&ServeConfig { workers: 1, ..base.clone() });
    let c = series(&ServeConfig { batch_adaptive: true, batch_max: 32, ..base.clone() });
    let d = series(&ServeConfig { batch_size: 1, workers: 2, ..base });
    assert_eq!(a, b, "forecasts diverged across worker counts");
    assert_eq!(a, c, "forecasts diverged across batch policies");
    assert_eq!(a, d, "forecasts diverged across batch size and workers");
}

/// An all-shed tail: the final phase arrives so fast under so tight an
/// SLO that deadline-aware admission sheds it wholesale — and the
/// report stays total (every request accounted) and conserved (ledger
/// verified on merge), across both policies and worker counts.
#[test]
fn all_shed_final_epoch_is_total_and_conserved() {
    let scenario = Scenario {
        name: "cliff",
        phases: vec![
            Phase {
                name: "calm",
                requests: 96,
                load: PhaseLoad::Steady { mean_gap: BASE_GAP },
                fault_ppm: 0,
                key_rotate_pct: 0,
            },
            Phase {
                name: "wall",
                requests: 96,
                load: PhaseLoad::Steady { mean_gap: 1 },
                fault_ppm: 0,
                key_rotate_pct: 0,
            },
        ],
    };
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    for policy in [ScalingPolicy::Reactive, ScalingPolicy::Predictive] {
        let cfg = ServeConfig {
            slo_cycles: 60_000,
            shed_slo: true,
            // Cheap snapshot clones: the admission predictor charges a
            // worst-case clone per crossed boundary, and at the default
            // 64 B/cycle that one charge (~41k cycles for the Tiny KV
            // table) would eat most of the SLO budget on its own.
            snapshot_bytes_per_cycle: 1024,
            // One shard, no headroom: the wall must overrun the fleet,
            // not get absorbed by scale-ups, for the tail to all-shed.
            shards_max: 1,
            ..scenario_cfg(policy)
        };
        let w1 = serve_scenario(
            service,
            artifact.program(),
            &app,
            &scenario,
            &ServeConfig { workers: 1, ..cfg.clone() },
        );
        let w4 = serve_scenario(service, artifact.program(), &app, &scenario, &cfg);
        assert_eq!(w1.served + w1.rejected + w1.shed, 192, "{policy:?}: every request must be accounted for");
        assert!(w1.shed > 30, "{policy:?}: the wall must shed heavily (shed {})", w1.shed);
        assert!(w1.served >= 80, "{policy:?}: the calm phase must mostly serve ({})", w1.served);
        bit_identical(&format!("all-shed/{policy:?}"), &w1, &w4);
    }
}
