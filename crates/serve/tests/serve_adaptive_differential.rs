//! Differential determinism tests for the adaptive serving layer,
//! extending the shard/worker/batch/interval guarantees of
//! `serve_differential.rs` and `serve_batch_differential.rs` to the
//! elastic controller:
//!
//! * the *scaling schedule* changes latency/throughput only — outcome
//!   counts and the final KV digest are bit-identical across {static 1
//!   shard, static 4 shards, adaptive}, because migration replays
//!   exactly the committed per-key sequences (snapshot + key-range-
//!   filtered suffix replay) and the fault schedule keys on global
//!   request ids;
//! * the *batch policy* (static `batch_size` vs queue-depth-adaptive)
//!   is equally invariant;
//! * adaptive runs are themselves deterministic and worker-count
//!   invariant (full report equality, scaling events included);
//! * the runs actually scale: the load shape (dense head, 10x-stretched
//!   tail) makes both scale-up and scale-down events fire, asserted via
//!   the controller event counters.

use elzar::{Artifact, Mode};
use elzar_apps::Scale;
use elzar_serve::controller::ScaleEvent;
use elzar_serve::gen::{rescale_gaps, Request};
use elzar_serve::{serve_stream, ServeConfig, ServeReport, Service};

/// Dense head (queues build on a small fleet), then a 30x-stretched
/// tail (queues drain, the controller scales back down). Identities,
/// keys and payloads are untouched, so every config below serves the
/// exact same committed sequences.
fn phased_stream(service: Service, app: &elzar_apps::ServeApp, cfg: &ServeConfig) -> Vec<Request> {
    let mut stream = service.stream(app, cfg);
    let from = stream.len() * 2 / 3;
    rescale_gaps(&mut stream, from, 30, 1);
    stream
}

fn base_cfg() -> ServeConfig {
    ServeConfig {
        shards: 1,
        workers: 4,
        batch_size: 8,
        snapshot_interval: 16,
        requests: 360,
        seed: 0xADA7_71FE,
        fault_rate_ppm: 100_000, // ~10%: a few dozen online injections
        // Large enough that nothing is rejected — rejections are
        // load-dependent and would legitimately differ across
        // configurations.
        queue_capacity: 1 << 20,
        mean_gap_cycles: 300, // saturating for the 1-shard start
        ..Default::default()
    }
}

fn adaptive_cfg() -> ServeConfig {
    ServeConfig {
        adaptive_shards: true,
        shards_max: 4,
        control_interval: 32,
        scale_up_backlog: 6,
        scale_down_backlog: 1,
        ..base_cfg()
    }
}

fn invariant_eq(tag: &str, a: &ServeReport, b: &ServeReport) {
    assert_eq!(a.served, b.served, "{tag}: served diverged");
    assert_eq!(a.rejected, 0, "{tag}: large queue must reject nothing");
    assert_eq!(b.rejected, 0, "{tag}");
    assert_eq!(a.injected, b.injected, "{tag}: injection count diverged");
    assert_eq!(a.outcomes, b.outcomes, "{tag}: outcome histogram diverged");
    assert_eq!(a.restarts, b.restarts, "{tag}: restart count diverged");
    assert_eq!(a.table_digest, b.table_digest, "{tag}: final resident state diverged");
}

/// The tentpole invariance: outcome counts and the final resident-table
/// digest are a pure function of the stream — never of the scaling
/// schedule, the batch policy, or how many host workers drained the
/// shards — including runs where the fleet actually grows and shrinks.
#[test]
fn scaling_schedule_and_batch_policy_are_outcome_and_digest_invariant() {
    for service in [Service::KvA, Service::Web] {
        let app = service.app(Scale::Tiny);
        let artifact = Artifact::build(&app.module, &Mode::elzar_default());
        let stream = phased_stream(service, &app, &base_cfg());

        let static1 = serve_stream(artifact.program(), &app, &stream, &base_cfg());
        let static4 =
            serve_stream(artifact.program(), &app, &stream, &ServeConfig { shards: 4, ..base_cfg() });
        let adaptive = serve_stream(artifact.program(), &app, &stream, &adaptive_cfg());
        let adaptive_batch = serve_stream(
            artifact.program(),
            &app,
            &stream,
            &ServeConfig { batch_adaptive: true, batch_max: 32, ..adaptive_cfg() },
        );
        let static_batch1 = serve_stream(
            artifact.program(),
            &app,
            &stream,
            &ServeConfig { batch_size: 1, shards: 4, ..base_cfg() },
        );

        let label = service.label();
        assert!(static1.injected > 10, "{label}: only {} injections", static1.injected);
        assert_eq!(static1.served, 360, "{label}");
        invariant_eq(&format!("{label}: static1 vs static4"), &static1, &static4);
        invariant_eq(&format!("{label}: static1 vs adaptive"), &static1, &adaptive);
        invariant_eq(&format!("{label}: static1 vs adaptive+adaptive-batch"), &static1, &adaptive_batch);
        invariant_eq(&format!("{label}: static batch=8 vs batch=1"), &static4, &static_batch1);

        // The adaptive runs must have really scaled — in both
        // directions — or this test pins nothing.
        for (name, r) in [("adaptive", &adaptive), ("adaptive+batch", &adaptive_batch)] {
            assert!(r.scale_ups >= 1, "{label}/{name}: no scale-up fired");
            assert!(r.scale_downs >= 1, "{label}/{name}: no scale-down fired");
            assert_eq!(
                r.scale_ups,
                r.events.iter().filter(|e| matches!(e, ScaleEvent::Up { .. })).count() as u64,
                "{label}/{name}: event counter disagrees with the event log"
            );
            assert!(r.peak_shards > 1, "{label}/{name}: fleet never grew");
            assert!(r.final_shards < r.peak_shards, "{label}/{name}: fleet never shrank");
            assert!(r.migrated_slots > 0, "{label}/{name}: no slots migrated");
            assert!(r.migration_replays > 0, "{label}/{name}: migration never replayed commits");
            assert_eq!(r.served, 360, "{label}/{name}: adaptive run dropped requests");
        }

        // Elasticity must pay off against the under-provisioned static
        // start it grew away from: the dense phase queues far less, so
        // the latency tail improves (makespan is arrival-dominated in
        // the lull, so it is not the discriminating metric here).
        assert!(
            adaptive.quantile_cycles(0.9) < static1.quantile_cycles(0.9),
            "{label}: scaling up should beat the 1-shard static tail: p90 {} vs {}",
            adaptive.quantile_cycles(0.9),
            static1.quantile_cycles(0.9)
        );
    }
}

/// Adaptive runs are bit-identical across host worker counts: the
/// scaling schedule, per-shard stats, histogram and makespan are all
/// virtual-time quantities.
#[test]
fn adaptive_worker_count_never_changes_anything() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let stream = phased_stream(service, &app, &base_cfg());
    let cfg = ServeConfig { batch_adaptive: true, ..adaptive_cfg() };

    let w1 = serve_stream(artifact.program(), &app, &stream, &ServeConfig { workers: 1, ..cfg.clone() });
    let w4 = serve_stream(artifact.program(), &app, &stream, &ServeConfig { workers: 4, ..cfg });
    assert_eq!(w1.served, w4.served);
    assert_eq!(w1.rejected, w4.rejected);
    assert_eq!(w1.injected, w4.injected);
    assert_eq!(w1.outcomes, w4.outcomes);
    assert_eq!(w1.restarts, w4.restarts);
    assert_eq!(w1.makespan_cycles, w4.makespan_cycles);
    assert_eq!(w1.hist, w4.hist, "latency histogram diverged across workers");
    assert_eq!(w1.table_digest, w4.table_digest);
    assert_eq!(w1.events, w4.events, "scaling schedule diverged across workers");
    assert_eq!(w1.peak_shards, w4.peak_shards);
    assert_eq!(w1.migration_replays, w4.migration_replays);
    assert_eq!(w1.migration_cycles(), w4.migration_cycles());
    assert!(w1.scale_ups >= 1 && w1.scale_downs >= 1, "the schedule must actually scale");
    for (sa, sb) in w1.shards.iter().zip(&w4.shards) {
        assert_eq!(sa.busy_cycles(), sb.busy_cycles());
        assert_eq!(sa.last_completion, sb.last_completion);
        assert_eq!(sa.migration_replays, sb.migration_replays);
    }
}

/// A joining shard is usable state, not just bookkeeping: with updates
/// flowing before and after the scale events, the digest still matches
/// a static run — the migrated ranges were reconstructed bit-for-bit
/// from the donor snapshot + filtered replay.
#[test]
fn migrated_ranges_serve_updates_consistently() {
    let service = Service::KvD; // read-heavy: migrated values must survive
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let stream = phased_stream(service, &app, &base_cfg());
    let cfg = ServeConfig { fault_rate_ppm: 0, ..adaptive_cfg() };
    let adaptive = serve_stream(artifact.program(), &app, &stream, &cfg);
    let static2 = serve_stream(
        artifact.program(),
        &app,
        &stream,
        &ServeConfig { shards: 2, adaptive_shards: false, ..cfg.clone() },
    );
    assert!(adaptive.scale_ups >= 1, "no scale-up fired");
    assert_eq!(adaptive.table_digest, static2.table_digest);
    assert_eq!(adaptive.served, static2.served);
}
