//! Differential determinism tests for the serving runtime, extending
//! PR 1's campaign guarantee to the serving layer:
//!
//! * host *worker* count changes nothing at all (full report equality);
//! * *shard* count changes latency/throughput but never the online
//!   fault outcome counts or the final KV-table digest — shards commit
//!   only reference executions and the fault schedule keys on global
//!   request ids, so the resident state is a pure function of the
//!   committed request sequence per key.

use elzar::{Artifact, Mode};
use elzar_apps::Scale;
use elzar_serve::{serve_program, ServeConfig, ServeReport, Service};

/// Build the hardened artifact and serve the service's stream on it —
/// the same `Artifact::build` + `serve_program` composition
/// `Artifact::serve` performs.
fn serve(service: Service, mode: &Mode, scale: Scale, cfg: &ServeConfig) -> ServeReport {
    let app = service.app(scale);
    let artifact = Artifact::build(&app.module, mode);
    serve_program(service, artifact.program(), &app, cfg)
}

fn cfg(shards: u32, workers: u32) -> ServeConfig {
    ServeConfig {
        shards,
        workers,
        requests: 220,
        seed: 0xD5EE_D001,
        fault_rate_ppm: 120_000, // ~12%: a few dozen online injections
        // Large enough that the overloaded 1-shard config still
        // rejects nothing — rejections are load-dependent and would
        // legitimately differ across shard counts.
        queue_capacity: 1 << 20,
        mean_gap_cycles: 1_500,
        ..Default::default()
    }
}

#[test]
fn worker_count_never_changes_anything() {
    for service in [Service::KvA, Service::Web] {
        let a = serve(service, &Mode::elzar_default(), Scale::Tiny, &cfg(4, 1));
        let b = serve(service, &Mode::elzar_default(), Scale::Tiny, &cfg(4, 4));
        assert_eq!(a.served, b.served, "{}", service.label());
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.restarts, b.restarts);
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
        assert_eq!(a.hist, b.hist, "{}: latency histogram diverged", service.label());
        assert_eq!(a.table_digest, b.table_digest);
        for (sa, sb) in a.shards.iter().zip(&b.shards) {
            assert_eq!(sa.busy_cycles(), sb.busy_cycles());
            assert_eq!(sa.last_completion, sb.last_completion);
        }
    }
}

#[test]
fn shard_count_preserves_outcomes_and_table_digest() {
    let one = serve(Service::KvA, &Mode::elzar_default(), Scale::Tiny, &cfg(1, 4));
    let four = serve(Service::KvA, &Mode::elzar_default(), Scale::Tiny, &cfg(4, 4));
    assert_eq!(one.served, four.served, "large queue: nothing rejected in either config");
    assert_eq!(one.rejected, 0);
    assert_eq!(four.rejected, 0);
    assert_eq!(one.injected, four.injected, "fault schedule keys on request ids");
    assert_eq!(one.outcomes, four.outcomes, "Table-I outcome counts must be shard-count invariant");
    assert_eq!(one.restarts, four.restarts);
    assert_eq!(
        one.table_digest, four.table_digest,
        "final KV state must be bit-identical across shard counts"
    );
    // Sanity: the campaign actually exercised the interesting paths.
    assert!(one.injected > 10, "only {} injections", one.injected);
    assert!(one.outcomes.iter().sum::<u64>() == one.injected, "every injection classified exactly once");
    // Sharding must actually help under this offered load.
    assert!(
        four.makespan_cycles < one.makespan_cycles,
        "4 shards should finish earlier: {} vs {}",
        four.makespan_cycles,
        one.makespan_cycles
    );
}

#[test]
fn elzar_mode_corrects_online_where_native_corrupts() {
    use elzar_fault::Outcome;
    let c = cfg(2, 4);
    let hardened = serve(Service::KvA, &Mode::elzar_default(), Scale::Tiny, &c);
    assert!(hardened.count(Outcome::ElzarCorrected) > 0, "online recovery must fire under a 12% fault rate");
    let native = serve(Service::KvA, &Mode::NativeNoSimd, Scale::Tiny, &c);
    assert_eq!(
        native.injected, hardened.injected,
        "the fault schedule keys on request ids, not on the build mode"
    );
    assert_eq!(native.count(Outcome::ElzarCorrected), 0, "native cannot correct");
    assert!(
        native.count(Outcome::Sdc) > hardened.count(Outcome::Sdc),
        "native SDCs {} should exceed hardened {}",
        native.count(Outcome::Sdc),
        hardened.count(Outcome::Sdc)
    );
    assert!(hardened.sdc_rate() < 0.02, "hardened SDC rate {}", hardened.sdc_rate());
}
