//! Observability suite: the tracer and the cycle ledger are pinned by
//! the same differential discipline as the serving runtime itself.
//!
//! * **The canonical trace is worker-count invariant.** Every stamp is
//!   virtual time, every ring has one deterministic producer, and the
//!   merge is a total order — so the full byte serialization is
//!   bit-identical across 1 and 4 workers even under a failover +
//!   compaction storm on an elastic fleet.
//! * **Ring overflow drops oldest-first, deterministically.** A
//!   tight-capped run retains exactly the per-track suffix of the
//!   uncapped run's stream, and `dropped_events` accounts for every
//!   evicted record.
//! * **The ledger conserves cycles.** On a seeded crash storm every
//!   shard's foreground categories (execute, snapshot, replay,
//!   migration, downtime, idle) partition its lifetime exactly — the
//!   regression guard for the availability denominator's
//!   lifetime-integral fix.
//! * **Tracing is observation only.** Toggling `trace_events` moves no
//!   behavioral field: digest, outcomes, histogram, makespan, ledger.

use elzar::{Artifact, Mode};
use elzar_apps::Scale;
use elzar_serve::gen::{rescale_gaps, Request};
use elzar_serve::{serve_stream, Category, ServeConfig, ServeReport, Service, TraceEvent};
use std::collections::BTreeMap;

/// The failover suite's crash storm (~30% SEU rate) with tracing on.
fn storm_cfg(trace_events: usize) -> ServeConfig {
    ServeConfig {
        shards: 2,
        workers: 2,
        batch_size: 8,
        snapshot_interval: 16,
        requests: 360,
        seed: 0xFA11_0EE5,
        fault_rate_ppm: 300_000,
        queue_capacity: 1 << 20,
        mean_gap_cycles: 300,
        trace_events,
        ..Default::default()
    }
}

/// Dense head, stretched tail: drives the elastic controller both ways
/// so the trace sees scale-ups, scale-downs and compaction epochs.
fn phased_stream(service: Service, app: &elzar_apps::ServeApp, cfg: &ServeConfig) -> Vec<Request> {
    let mut stream = service.stream(app, cfg);
    let from = stream.len() * 2 / 3;
    rescale_gaps(&mut stream, from, 30, 1);
    stream
}

fn storm_run(cfg: &ServeConfig) -> ServeReport {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let stream = phased_stream(service, &app, cfg);
    serve_stream(artifact.program(), &app, &stream, cfg)
}

/// An elastic failover + compaction storm on YCSB-A: the richest event
/// mix the runtime can produce (admits, batches, injections, restarts,
/// promotions, rebuilds, migrations, catch-ups, scale events,
/// compactions), traced bit-identically at 1 and 4 workers.
#[test]
fn canonical_trace_is_bit_identical_across_workers() {
    let base = ServeConfig {
        replicas: true,
        adaptive_shards: true,
        compaction: true,
        shards: 1,
        shards_max: 4,
        ..storm_cfg(1 << 14)
    };
    let w1 = storm_run(&ServeConfig { workers: 1, ..base.clone() });
    let w4 = storm_run(&ServeConfig { workers: 4, ..base.clone() });
    assert!(!w1.trace.is_empty(), "a traced storm must record events");
    assert_eq!(w1.trace.dropped_events, 0, "the deep ring must not drop on this stream");
    assert_eq!(
        w1.trace.canonical_bytes(),
        w4.trace.canonical_bytes(),
        "canonical trace bytes diverged across worker counts"
    );
    // The stream really exercised the elastic + replication machinery.
    assert!(w1.restarts > 0, "no crashes — the storm never stormed");
    assert!(w1.promotions > 0, "no failovers traced");
    assert!(w1.scale_ups > 0 && w1.scale_downs > 0, "controller never scaled");
    assert!(w1.compactions > 0, "compaction never ran");
}

/// Capping the ring drops the *oldest* events and counts every
/// eviction: per track, the tight run retains exactly the suffix of the
/// uncapped run's stream, and the retained-plus-dropped total matches.
#[test]
fn ring_overflow_drops_oldest_first_with_exact_accounting() {
    let full = storm_run(&storm_cfg(1 << 14));
    let tight = storm_run(&storm_cfg(32));
    assert_eq!(full.trace.dropped_events, 0, "reference run must retain everything");
    assert!(tight.trace.dropped_events > 0, "a 32-slot ring must overflow on this storm");
    assert_eq!(
        tight.trace.dropped_events,
        (full.trace.len() - tight.trace.len()) as u64,
        "every evicted event must be counted exactly once"
    );

    let by_track = |events: &[TraceEvent]| {
        let mut m: BTreeMap<u32, Vec<TraceEvent>> = BTreeMap::new();
        for e in events {
            m.entry(e.track).or_default().push(*e);
        }
        m
    };
    let full_tracks = by_track(&full.trace.events);
    let tight_tracks = by_track(&tight.trace.events);
    assert_eq!(full_tracks.len(), tight_tracks.len(), "overflow must not lose whole tracks");
    for (track, kept) in &tight_tracks {
        let all = &full_tracks[track];
        assert_eq!(
            kept.as_slice(),
            &all[all.len() - kept.len()..],
            "track {track}: retained window is not the stream's suffix"
        );
    }

    // Determinism of the drop accounting itself.
    let again = storm_run(&storm_cfg(32));
    assert_eq!(tight.trace, again.trace, "capped trace must be reproducible");
}

/// The PR 6 lifetime-integral regression guard, restated on the typed
/// ledger: per shard, downtime + accounted busy work + idle is exactly
/// the lifetime (`retired_at - spawned_at` for retirees), so
/// `availability()`'s numerator and denominator come from one conserved
/// account.
#[test]
fn crash_storm_ledger_conserves_every_shard_cycle() {
    let cfg = ServeConfig {
        replicas: true,
        adaptive_shards: true,
        compaction: true,
        shards: 1,
        shards_max: 4,
        ..storm_cfg(0)
    };
    let r = storm_run(&cfg);
    assert!(r.restarts > 0, "no crashes — nothing to conserve against");
    let mut saw_retiree = false;
    for s in &r.shards {
        let foreground = [
            Category::Execute,
            Category::Snapshot,
            Category::Replay,
            Category::Migration,
            Category::Downtime,
            Category::Idle,
        ]
        .iter()
        .map(|&c| s.ledger.get(c))
        .sum::<u64>();
        assert_eq!(foreground, s.lifetime_cycles, "shard {}: downtime + busy + idle != lifetime", s.shard);
        s.ledger.verify(s.lifetime_cycles).unwrap_or_else(|e| panic!("shard {}: {e}", s.shard));
        if s.retired_at != u64::MAX {
            saw_retiree = true;
            assert!(
                s.lifetime_cycles >= s.retired_at - s.spawned_at,
                "shard {}: lifetime shorter than its retirement span",
                s.shard
            );
        }
    }
    assert!(saw_retiree, "the phased storm must retire at least one shard");
    // The aggregate account the availability formula consumes.
    let lifetimes: u64 = r.shards.iter().map(|s| s.lifetime_cycles).sum();
    assert_eq!(r.ledger.foreground_total(), lifetimes);
    assert!(r.availability() < 1.0 && r.availability() > 0.0);
}

/// `trace_events` is a pure observation knob: toggling it moves nothing
/// a differential suite pins.
#[test]
fn tracing_toggle_has_zero_behavioral_delta() {
    let off = storm_run(&storm_cfg(0));
    let on = storm_run(&storm_cfg(1 << 14));
    assert!(off.trace.is_empty() && off.trace.dropped_events == 0, "off must record nothing");
    assert_eq!(off.served, on.served);
    assert_eq!(off.injected, on.injected);
    assert_eq!(off.outcomes, on.outcomes);
    assert_eq!(off.restarts, on.restarts);
    assert_eq!(off.hist, on.hist, "latency histogram moved under tracing");
    assert_eq!(off.makespan_cycles, on.makespan_cycles, "virtual time moved under tracing");
    assert_eq!(off.ledger, on.ledger, "cycle attribution moved under tracing");
    assert_eq!(off.table_digest, on.table_digest, "resident state moved under tracing");
}
