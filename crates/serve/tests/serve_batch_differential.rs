//! Differential determinism tests for the two PR-4 serving levers,
//! extending the shard/worker guarantees of `serve_differential.rs`:
//!
//! * *batch size* and *snapshot interval* change latency/throughput
//!   only — the outcome histogram and the final KV digest are
//!   bit-identical across `batch_size x snapshot_interval x shards`,
//!   because fault-scheduled requests always execute through the
//!   single-request entry against suffix-replayed pre-request state,
//!   and fault-free batches commit exactly the bytes the equivalent
//!   single-request sequence would;
//! * crash recovery really goes through the snapshot + suffix-replay
//!   machinery (`replay_cycles` is observable when a crash lands past
//!   the first request of a snapshot interval);
//! * the report's quantile accessors are total at the edges (empty
//!   report, q = 0.0 / 1.0).

use elzar::{Artifact, Mode};
use elzar_apps::Scale;
use elzar_serve::histogram::LatencyHistogram;
use elzar_serve::{serve_program, CycleLedger, ServeConfig, ServeReport, Service, Trace};

fn grid_cfg(shards: u32, batch_size: u32, snapshot_interval: u32) -> ServeConfig {
    ServeConfig {
        shards,
        batch_size,
        snapshot_interval,
        workers: 4,
        requests: 180,
        seed: 0xBA7C_4001,
        fault_rate_ppm: 120_000, // ~12%: a few dozen online injections
        // Large enough that nothing is rejected — rejections are
        // load-dependent and would legitimately differ across
        // configurations.
        queue_capacity: 1 << 20,
        mean_gap_cycles: 1_500,
        ..Default::default()
    }
}

/// The invariance the tentpole promises: outcome counts and the final
/// resident-table digest are a pure function of the stream, never of
/// how requests were grouped into batches, how often the shard
/// snapshotted, or how the keyspace was partitioned.
#[test]
fn batch_and_interval_grid_is_outcome_and_digest_invariant() {
    for service in [Service::KvA, Service::Web] {
        let app = service.app(Scale::Tiny);
        let artifact = Artifact::build(&app.module, &Mode::elzar_default());
        let mut reference: Option<ServeReport> = None;
        for shards in [1u32, 4] {
            for batch_size in [1u32, 8] {
                for snapshot_interval in [1u32, 16] {
                    let cfg = grid_cfg(shards, batch_size, snapshot_interval);
                    let r = serve_program(service, artifact.program(), &app, &cfg);
                    let tag = format!(
                        "{}: shards={shards} batch={batch_size} K={snapshot_interval}",
                        service.label()
                    );
                    assert_eq!(r.served, 180, "{tag}: large queue must reject nothing");
                    assert_eq!(r.rejected, 0, "{tag}");
                    assert_eq!(
                        r.outcomes.iter().sum::<u64>(),
                        r.injected,
                        "{tag}: every injection classified exactly once"
                    );
                    match &reference {
                        None => {
                            assert!(r.injected > 10, "{tag}: only {} injections", r.injected);
                            reference = Some(r);
                        }
                        Some(a) => {
                            assert_eq!(a.injected, r.injected, "{tag}: injection count diverged");
                            assert_eq!(a.outcomes, r.outcomes, "{tag}: outcome histogram diverged");
                            assert_eq!(a.restarts, r.restarts, "{tag}: restart count diverged");
                            assert_eq!(
                                a.table_digest, r.table_digest,
                                "{tag}: final resident state diverged"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Batching is a pure timing lever even at fault rate 0: the committed
/// state (digest) matches the unbatched run, batches actually form
/// under saturating load, and throughput does not regress.
#[test]
fn saturated_batches_form_and_preserve_state() {
    let app = Service::KvD.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let base = ServeConfig {
        shards: 2,
        workers: 2,
        requests: 160,
        fault_rate_ppm: 0,
        mean_gap_cycles: 50, // saturating: queues stay occupied
        queue_capacity: 1 << 20,
        snapshot_interval: 32,
        ..Default::default()
    };
    let unbatched = serve_program(Service::KvD, artifact.program(), &app, &base);
    let batched = serve_program(
        Service::KvD,
        artifact.program(),
        &app,
        &ServeConfig { batch_size: 16, ..base.clone() },
    );
    assert_eq!(unbatched.table_digest, batched.table_digest);
    assert_eq!(unbatched.served, batched.served);
    // 160 requests in batches of up to 16 on 2 shards: far fewer
    // entries than requests.
    assert!(
        batched.batches * 4 < batched.served,
        "only {} batches for {} served requests",
        batched.batches,
        batched.served
    );
    assert!(
        batched.throughput_rps() > unbatched.throughput_rps(),
        "batching must not lose throughput under saturation: {} vs {}",
        batched.throughput_rps(),
        unbatched.throughput_rps()
    );
    assert!(
        batched.quantile_cycles(0.99) <= unbatched.quantile_cycles(0.99),
        "drain-on-free batching never waits, so p99 must not regress"
    );
}

/// Crash recovery goes through snapshot + suffix replay: with a
/// snapshot interval > 1, a crash that lands mid-interval must replay
/// committed requests (observable as `replay_cycles`), and the detour
/// is charged to downtime/availability.
#[test]
fn crashes_restore_snapshots_and_replay_the_suffix() {
    let app = Service::Web.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let cfg = ServeConfig {
        shards: 2,
        workers: 2,
        batch_size: 8,
        snapshot_interval: 16,
        requests: 200,
        seed: 0xC4A5_11E5,
        fault_rate_ppm: 200_000,
        queue_capacity: 1 << 20,
        mean_gap_cycles: 1_000,
        ..Default::default()
    };
    let r = serve_program(Service::Web, artifact.program(), &app, &cfg);
    assert!(r.injected > 20, "only {} injections", r.injected);
    assert!(r.restarts > 0, "the web parse must crash under a 20% SEU rate");
    assert!(r.replay_cycles() > 0, "a K=16 crash must replay committed suffix requests");
    assert!(r.downtime_cycles() >= r.restarts * cfg.restart_cycles + r.replay_cycles());
    assert!(r.availability() < 1.0);
    assert!(r.snapshots > 0);
    // Same config, snapshot every request: recovery never replays.
    let tight = serve_program(
        Service::Web,
        artifact.program(),
        &app,
        &ServeConfig { snapshot_interval: 1, ..cfg.clone() },
    );
    assert_eq!(tight.restarts, r.restarts, "outcomes are interval-invariant");
    assert_eq!(tight.replay_cycles(), 0, "K=1 snapshots leave no suffix to replay");
    assert!(tight.snapshot_cycles() > r.snapshot_cycles(), "K=1 pays clone cost per request");
}

/// `quantile_cycles`/`quantile_us` are total at the edges: an empty
/// report yields zeros, q is clamped, q=1.0 reports the exact maximum.
#[test]
fn quantile_edges_are_total() {
    let empty = ServeReport {
        shards: vec![],
        hist: LatencyHistogram::new(),
        served: 0,
        rejected: 0,
        shed: 0,
        slo_met: 0,
        batches: 0,
        injected: 0,
        outcomes: [0; 5],
        restarts: 0,
        snapshots: 0,
        scale_ups: 0,
        scale_downs: 0,
        migrated_slots: 0,
        migration_replays: 0,
        promotions: 0,
        ledger: CycleLedger::new(),
        compactions: 0,
        compacted_entries: 0,
        max_slot_log: 0,
        divergence_checks: 0,
        divergence_alarms: 0,
        div_probed: [0; 5],
        div_flagged: [0; 5],
        peak_shards: 0,
        final_shards: 0,
        events: vec![],
        trace: Trace::default(),
        makespan_cycles: 0,
        table_digest: 0,
    };
    for q in [0.0, 0.5, 1.0, -3.0, 7.0, f64::NAN] {
        assert_eq!(empty.quantile_cycles(q), 0, "empty report, q={q}");
        assert_eq!(empty.quantile_us(q), 0.0, "empty report, q={q}");
    }
    assert_eq!(empty.throughput_rps(), 0.0);
    assert_eq!(empty.availability(), 1.0);
    assert_eq!(empty.sdc_rate(), 0.0);

    let mut hist = LatencyHistogram::new();
    for v in [10u64, 100, 1_000, 10_000] {
        hist.record(v);
    }
    let r = ServeReport { hist, served: 4, ..empty };
    // q is clamped into [0, 1]; 0 reports the smallest covering bucket,
    // 1 the exact maximum.
    assert_eq!(r.quantile_cycles(-1.0), r.quantile_cycles(0.0));
    assert_eq!(r.quantile_cycles(2.0), r.quantile_cycles(1.0));
    assert_eq!(r.quantile_cycles(1.0), 10_000);
    assert!(r.quantile_cycles(0.0) >= 10 && r.quantile_cycles(0.0) <= 11);
    assert!(r.quantile_cycles(0.0) <= r.quantile_cycles(0.5));
    assert!(r.quantile_cycles(0.5) <= r.quantile_cycles(1.0));
    // The microsecond view is the cycle view scaled by the simulated
    // clock.
    let scale = 1e6 / elzar_apps::FREQ_HZ;
    assert!((r.quantile_us(0.99) - r.quantile_cycles(0.99) as f64 * scale).abs() < 1e-9);
}
