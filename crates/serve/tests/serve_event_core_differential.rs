//! Old-vs-new engine differential for the discrete-event core
//! (`elzar_sim`):
//!
//! * the legacy hand-rolled serving loops (`event_core: false`) and the
//!   `elzar_sim` scheduler (`event_core: true`) are *bit-identical* —
//!   outcome counts, the KV digest, p50/p99/p999 latency quantiles,
//!   ledger conservation and the canonical trace bytes — for every
//!   scenario preset × scaling policy × worker count, and for the
//!   static path across shard counts;
//! * per-shard cycle ledgers conserve against shard lifetimes on both
//!   engines (the event core charges through the exact same
//!   `drain_once` body, so a leak on either side is a real bug);
//! * virtual-time overflow dies loudly: a stream whose arrivals sit
//!   near `u64::MAX` panics naming the shard component that would have
//!   wrapped, instead of silently lapping the clock.

use elzar::{Artifact, Mode};
use elzar_apps::Scale;
use elzar_serve::gen::ScenarioPreset;
use elzar_serve::{
    serve_program, serve_scenario, serve_stream, ScalingPolicy, ServeConfig, ServeReport, Service,
};

const REQUESTS: u64 = 320;
const BASE_GAP: u64 = 12_000;
const BASE_PPM: u32 = 50_000;

/// Full-report equality, quantile grid included. `tag` names the run
/// so a divergence points at the exact preset/policy/worker cell.
fn bit_identical(tag: &str, legacy: &ServeReport, event: &ServeReport) {
    assert_eq!(legacy.served, event.served, "{tag}: served");
    assert_eq!(legacy.rejected, event.rejected, "{tag}: rejected");
    assert_eq!(legacy.shed, event.shed, "{tag}: shed");
    assert_eq!(legacy.injected, event.injected, "{tag}: injected");
    assert_eq!(legacy.outcomes, event.outcomes, "{tag}: outcome counts");
    assert_eq!(legacy.restarts, event.restarts, "{tag}: restarts");
    assert_eq!(legacy.makespan_cycles, event.makespan_cycles, "{tag}: makespan");
    for q in [0.5, 0.99, 0.999] {
        assert_eq!(legacy.quantile_cycles(q), event.quantile_cycles(q), "{tag}: p{} quantile", q * 1000.0);
    }
    assert_eq!(legacy.hist, event.hist, "{tag}: latency histogram");
    assert_eq!(legacy.table_digest, event.table_digest, "{tag}: KV table digest");
    assert_eq!(legacy.events, event.events, "{tag}: scaling event log");
    assert_eq!(legacy.ledger, event.ledger, "{tag}: cycle ledger");
    assert_eq!(legacy.peak_shards, event.peak_shards, "{tag}: peak shards");
    assert_eq!(legacy.final_shards, event.final_shards, "{tag}: final shards");
    assert_eq!(legacy.trace.canonical_bytes(), event.trace.canonical_bytes(), "{tag}: canonical trace bytes");
    for (report, engine) in [(legacy, "legacy"), (event, "event core")] {
        for s in &report.shards {
            s.ledger
                .verify(s.lifetime_cycles)
                .unwrap_or_else(|e| panic!("{tag}/{engine}: shard {} leaks cycles: {e}", s.shard));
        }
    }
}

/// The static serving path: same program, same stream, both engines —
/// across shard and worker counts, with tracing on so the canonical
/// byte streams are compared too.
#[test]
fn static_path_engines_are_bit_identical() {
    for service in [Service::KvA, Service::Web] {
        let app = service.app(Scale::Tiny);
        let artifact = Artifact::build(&app.module, &Mode::elzar_default());
        for shards in [1, 4] {
            for workers in [1, 4] {
                let cfg = ServeConfig {
                    shards,
                    workers,
                    requests: 220,
                    seed: 0xD5EE_D001,
                    fault_rate_ppm: 120_000,
                    queue_capacity: 1 << 20,
                    mean_gap_cycles: 1_500,
                    trace_events: 64,
                    ..Default::default()
                };
                let legacy = serve_program(
                    service,
                    artifact.program(),
                    &app,
                    &ServeConfig { event_core: false, ..cfg.clone() },
                );
                let event = serve_program(
                    service,
                    artifact.program(),
                    &app,
                    &ServeConfig { event_core: true, ..cfg },
                );
                let tag = format!("{}/{shards}s/{workers}w", service.label());
                assert_eq!(
                    legacy.served + legacy.rejected + legacy.shed,
                    220,
                    "{tag}: report must account for every request"
                );
                bit_identical(&tag, &legacy, &event);
            }
        }
    }
}

/// The adaptive path: every scenario preset × scaling policy × worker
/// count runs bit-identical between the legacy epoch loop and the
/// `EpochCadence` component on the event core.
#[test]
fn every_preset_and_policy_is_engine_invariant() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    for preset in ScenarioPreset::all() {
        let scenario = preset.scenario(REQUESTS, BASE_GAP, BASE_PPM);
        for policy in [ScalingPolicy::Reactive, ScalingPolicy::Predictive] {
            for workers in [1, 4] {
                let cfg = ServeConfig {
                    shards: 1,
                    workers,
                    batch_size: 4,
                    snapshot_interval: 16,
                    seed: 0x5CE2_A210,
                    queue_capacity: 1 << 20,
                    adaptive_shards: true,
                    shards_max: 4,
                    control_interval: 16,
                    scale_up_backlog: 6,
                    scale_down_backlog: 1,
                    scaling_policy: policy,
                    trace_events: 64,
                    ..Default::default()
                };
                let legacy = serve_scenario(
                    service,
                    artifact.program(),
                    &app,
                    &scenario,
                    &ServeConfig { event_core: false, ..cfg.clone() },
                );
                let event = serve_scenario(
                    service,
                    artifact.program(),
                    &app,
                    &scenario,
                    &ServeConfig { event_core: true, ..cfg },
                );
                let tag = format!("{}/{policy:?}/{workers}w", preset.label());
                assert_eq!(
                    legacy.served + legacy.rejected + legacy.shed,
                    REQUESTS,
                    "{tag}: report must account for every request"
                );
                bit_identical(&tag, &legacy, &event);
            }
        }
    }
}

/// A stream whose arrivals crowd `u64::MAX` must die loudly in the
/// shard clock arithmetic — naming the component — not wrap and serve
/// requests in a lapped past.
#[test]
fn near_max_arrivals_panic_naming_the_shard_component() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let cfg = ServeConfig {
        shards: 2,
        workers: 1,
        requests: 16,
        seed: 0xBADC_0FFE,
        queue_capacity: 1 << 20,
        mean_gap_cycles: 1_000,
        ..Default::default()
    };
    let mut stream = service.stream(&app, &cfg);
    // Shift the (monotone) arrivals so the last lands 8 cycles shy of
    // the end of virtual time: the first completion estimate wraps.
    let n = stream.len() as u64;
    for (i, req) in stream.iter_mut().enumerate() {
        req.arrival = u64::MAX - 8 - (n - i as u64);
    }
    for event_core in [false, true] {
        let cfg = ServeConfig { event_core, ..cfg.clone() };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve_stream(artifact.program(), &app, &stream, &cfg)
        }))
        .expect_err("near-MAX arrivals must panic, not wrap");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("virtual-time overflow") && msg.contains("shard"),
            "event_core={event_core}: panic must name the shard component, got: {msg}"
        );
    }
}
