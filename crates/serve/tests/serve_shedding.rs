//! Property tests for deadline-aware admission (`ServeConfig::shed_slo`)
//! and report totality at the shedding extremes:
//!
//! * across an `elzar_rng`-driven offered-load sweep, every *admitted*
//!   request meets its SLO in virtual time (the predictor is
//!   conservative: drain start and batch position are exact, the
//!   per-request estimate is 1.5x the largest observed marginal);
//! * at saturation, shedding beats drop-tail on *goodput* — the
//!   deadline-aware gate spends capacity only on requests that can
//!   still meet their deadline, while drop-tail admits requests that
//!   are already doomed;
//! * reports stay total and benign when everything is rejected or shed.

use elzar::{Artifact, Mode};
use elzar_apps::Scale;
use elzar_rng::DetRng;
use elzar_serve::{serve_program, ServeConfig, Service};

const SLO_CYCLES: u64 = 60_000; // 30 us at the simulated 2 GHz

fn shed_cfg(mean_gap_cycles: u64, seed: u64) -> ServeConfig {
    ServeConfig {
        shards: 2,
        workers: 2,
        batch_adaptive: true,
        batch_max: 16,
        snapshot_interval: 16,
        requests: 240,
        seed,
        mean_gap_cycles,
        fault_rate_ppm: 0, // SLO prediction covers service, not crash detours
        queue_capacity: 1 << 20,
        slo_cycles: SLO_CYCLES,
        shed_slo: true,
        ..Default::default()
    }
}

/// The admission guarantee: with deadline-aware shedding on, no served
/// request misses its SLO — at any offered load the sweep visits.
#[test]
fn every_admitted_request_meets_its_slo() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    // Offered-load sweep: deterministic gaps from overload to idle,
    // plus fresh stream seeds per point.
    let mut rng = DetRng::seed_from_u64(0x510_5EED);
    for point in 0..6 {
        let gap = rng.range_inclusive(20, 2_500);
        let seed = rng.next_u64();
        let cfg = shed_cfg(gap, seed);
        let r = serve_program(service, artifact.program(), &app, &cfg);
        let tag = format!("point {point}: gap={gap}");
        assert_eq!(r.served + r.shed + r.rejected, 240, "{tag}: every request accounted");
        assert_eq!(
            r.slo_met,
            r.served,
            "{tag}: {} of {} served requests missed the SLO",
            r.served - r.slo_met,
            r.served
        );
        assert!(r.hist.max() <= SLO_CYCLES, "{tag}: worst latency {} > SLO", r.hist.max());
        assert!(r.served > 0, "{tag}: shedding must not starve the service");
        if gap < 100 {
            assert!(r.shed > 0, "{tag}: saturation must shed something");
        }
    }
}

/// At saturation, deadline-aware shedding yields at least the goodput
/// of the bounded-queue drop-tail baseline: both admit a subset of the
/// stream, but the SLO gate's subset is chosen to finish on time.
#[test]
fn shedding_goodput_dominates_drop_tail_at_saturation() {
    let service = Service::Web;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let mut rng = DetRng::seed_from_u64(0xD07_7A11);
    for point in 0..3 {
        // Saturating arrivals: far denser than the service time.
        let gap = rng.range_inclusive(10, 60);
        let seed = rng.next_u64();
        let shed = serve_program(service, artifact.program(), &app, &shed_cfg(gap, seed));
        // Drop-tail baseline: same SLO accounting, admission by queue
        // bound only — deep enough that admitted requests queue far
        // past the deadline.
        let drop_tail = ServeConfig { shed_slo: false, queue_capacity: 512, ..shed_cfg(gap, seed) };
        let dt = serve_program(service, artifact.program(), &app, &drop_tail);
        let tag = format!("point {point}: gap={gap}");
        assert!(shed.shed > 0, "{tag}: saturation must shed");
        assert!(dt.slo_met < dt.served, "{tag}: drop-tail must admit SLO-missing requests");
        assert!(
            shed.goodput_rps() >= dt.goodput_rps(),
            "{tag}: shed goodput {:.0} < drop-tail goodput {:.0}",
            shed.goodput_rps(),
            dt.goodput_rps()
        );
        // Offered load is the same; drop-tail's raw throughput may be
        // higher but its deadline-meeting throughput cannot be.
        assert!(shed.goodput_rps() > 0.0, "{tag}");
    }
}

/// Report totality when *everything* is refused: a zero-capacity queue
/// rejects the entire stream; an unmeetable SLO sheds all but the
/// cold-start probes. Every aggregate stays total and benign.
#[test]
fn all_shed_and_all_rejected_reports_are_total() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());

    // Zero-capacity queue: nothing is ever admitted.
    let cfg = ServeConfig { queue_capacity: 0, requests: 60, shards: 2, ..Default::default() };
    let r = serve_program(service, artifact.program(), &app, &cfg);
    assert_eq!(r.served, 0);
    assert_eq!(r.rejected, 60);
    assert_eq!(r.hist.count(), 0);
    assert_eq!(r.makespan_cycles, 0);
    assert_eq!(r.throughput_rps(), 0.0);
    assert_eq!(r.goodput_rps(), 0.0);
    for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
        assert_eq!(r.quantile_cycles(q), 0, "q={q}");
        assert_eq!(r.quantile_us(q), 0.0, "q={q}");
    }
    assert_eq!(r.availability(), 1.0);
    assert_eq!(r.sdc_rate(), 0.0);
    assert_eq!(r.batches, 0);
    // The resident tables still digest deterministically (preload
    // state: no request ever committed).
    let again = serve_program(service, artifact.program(), &app, &cfg);
    assert_eq!(r.table_digest, again.table_digest);

    // Unmeetable SLO: after the cold-start calibration request per
    // shard, the predictor sheds everything (any completion takes more
    // than 1 cycle).
    let cfg = ServeConfig {
        slo_cycles: 1,
        shed_slo: true,
        requests: 60,
        shards: 2,
        queue_capacity: 1 << 20,
        ..Default::default()
    };
    let r = serve_program(service, artifact.program(), &app, &cfg);
    assert!(r.served <= 2, "at most the per-shard cold-start probes serve: {}", r.served);
    assert_eq!(r.served + r.shed, 60);
    assert_eq!(r.slo_met, 0, "nothing can meet a 1-cycle SLO");
    assert_eq!(r.goodput_rps(), 0.0);
    assert_eq!(r.hist.count(), r.served);
}
