//! Seeded event-order fuzzing at the serving layer:
//!
//! * permuting the scheduler's same-cycle ready set under an
//!   `elzar_rng` seed (`ServeConfig::order_fuzz`) changes *nothing* —
//!   shards share no mutable state, so every report is bit-identical
//!   to the canonical tie-break, static and adaptive alike;
//! * `elzar_sim::hunt_order_dependence` run over the full serving
//!   pipeline comes back empty: no seed flushes out order-dependent
//!   committed state (the new hunt mode — a divergence here would be a
//!   real scheduler-seam bug, not test noise);
//! * deliberate same-cycle collisions — eight shards woken on the same
//!   arrival instant, instants aligned with epoch boundaries — commit
//!   in `(cycle, track, seq)` order everywhere: the canonical trace
//!   byte stream is invariant across worker counts, engines and fuzz
//!   seeds.

use elzar::{Artifact, Mode};
use elzar_apps::Scale;
use elzar_serve::gen::ScenarioPreset;
use elzar_serve::{
    serve_program, serve_scenario, serve_stream, ScalingPolicy, ServeConfig, ServeReport, Service,
};
use elzar_sim::{hunt_order_dependence, TieBreak};

const FUZZ_SEEDS: [u64; 6] = [1, 2, 3, 0xDEAD_BEEF, 0x5EED_CAFE, u64::MAX];

fn fingerprint(r: &ServeReport) -> (u64, u64, u64, u64, [u64; 5], u64, Vec<u8>) {
    (
        r.served,
        r.rejected,
        r.shed,
        r.makespan_cycles,
        [
            r.quantile_cycles(0.5),
            r.quantile_cycles(0.9),
            r.quantile_cycles(0.99),
            r.quantile_cycles(0.999),
            r.quantile_cycles(1.0),
        ],
        r.table_digest,
        r.trace.canonical_bytes(),
    )
}

/// Static path: every fuzz seed produces the canonical report,
/// bit for bit.
#[test]
fn static_order_fuzz_is_bit_identical_to_canonical() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let cfg = ServeConfig {
        shards: 4,
        workers: 2,
        requests: 220,
        seed: 0xD5EE_D001,
        fault_rate_ppm: 120_000,
        queue_capacity: 1 << 20,
        mean_gap_cycles: 1_500,
        trace_events: 64,
        ..Default::default()
    };
    let canonical = fingerprint(&serve_program(service, artifact.program(), &app, &cfg));
    for seed in FUZZ_SEEDS {
        let fuzzed = fingerprint(&serve_program(
            service,
            artifact.program(),
            &app,
            &ServeConfig { order_fuzz: seed, ..cfg.clone() },
        ));
        assert_eq!(canonical, fuzzed, "static path diverged under order-fuzz seed {seed:#x}");
    }
}

/// Adaptive path: the flash-crowd scenario (heaviest scaling churn)
/// survives every fuzz seed bit-identically, both policies.
#[test]
fn adaptive_order_fuzz_is_bit_identical_to_canonical() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let scenario = ScenarioPreset::FlashCrowd.scenario(320, 12_000, 50_000);
    for policy in [ScalingPolicy::Reactive, ScalingPolicy::Predictive] {
        let cfg = ServeConfig {
            shards: 1,
            workers: 4,
            batch_size: 4,
            snapshot_interval: 16,
            seed: 0x5CE2_A210,
            queue_capacity: 1 << 20,
            adaptive_shards: true,
            shards_max: 4,
            control_interval: 16,
            scale_up_backlog: 6,
            scale_down_backlog: 1,
            scaling_policy: policy,
            trace_events: 64,
            ..Default::default()
        };
        let canonical = fingerprint(&serve_scenario(service, artifact.program(), &app, &scenario, &cfg));
        for seed in FUZZ_SEEDS {
            let fuzzed = fingerprint(&serve_scenario(
                service,
                artifact.program(),
                &app,
                &scenario,
                &ServeConfig { order_fuzz: seed, ..cfg.clone() },
            ));
            assert_eq!(
                canonical, fuzzed,
                "{policy:?}: adaptive path diverged under order-fuzz seed {seed:#x}"
            );
        }
    }
}

/// The hunt mode, driven end to end: `hunt_order_dependence` permutes
/// the ready set across a seed battery and must find no seed whose
/// committed serving state diverges from canonical.
#[test]
fn order_dependence_hunt_comes_back_empty() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let cfg = ServeConfig {
        shards: 4,
        workers: 1,
        requests: 160,
        seed: 0x0D0_FEED,
        fault_rate_ppm: 80_000,
        queue_capacity: 1 << 20,
        mean_gap_cycles: 1_500,
        trace_events: 64,
        ..Default::default()
    };
    let verdict = hunt_order_dependence(
        |tie| {
            let order_fuzz = match tie {
                TieBreak::Canonical => 0,
                TieBreak::Fuzzed(seed) => seed,
            };
            fingerprint(&serve_program(
                service,
                artifact.program(),
                &app,
                &ServeConfig { order_fuzz, ..cfg.clone() },
            ))
        },
        &FUZZ_SEEDS,
    );
    assert_eq!(verdict, None, "serving committed state is order-dependent under seed {verdict:?}");
}

/// Deliberate same-cycle collisions: arrivals quantized so batches of
/// requests land on identical instants (which are also the epoch
/// boundaries the controller reads), waking several shards on the
/// same cycle. The committed order is pinned by `(cycle, track, seq)`:
/// the canonical trace byte stream — and the whole report — is
/// invariant across worker counts, both engines, and fuzz seeds.
#[test]
fn same_cycle_collisions_commit_in_pinned_order() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let base = ServeConfig {
        shards: 1,
        workers: 1,
        requests: 128,
        seed: 0xC0_11_1D_E5,
        queue_capacity: 1 << 20,
        mean_gap_cycles: 1_500,
        adaptive_shards: true,
        shards_max: 4,
        control_interval: 16,
        scale_up_backlog: 6,
        scale_down_backlog: 1,
        trace_events: 64,
        ..Default::default()
    };
    let mut stream = service.stream(&app, &base);
    // Sixteen requests per instant — one control epoch per instant —
    // so every epoch boundary, every shard wake-up and the controller
    // decision all collide on one cycle.
    for (i, req) in stream.iter_mut().enumerate() {
        req.arrival = (i as u64 / 16 + 1) * 40_000;
    }
    let reference = fingerprint(&serve_stream(artifact.program(), &app, &stream, &base));
    assert!(!reference.6.is_empty(), "collision run must produce trace bytes");
    for workers in [1, 4] {
        for event_core in [false, true] {
            for order_fuzz in [0, 0xF00D] {
                if !event_core && order_fuzz != 0 {
                    continue; // fuzzing only exists on the event core
                }
                let cfg = ServeConfig { workers, event_core, order_fuzz, ..base.clone() };
                let got = fingerprint(&serve_stream(artifact.program(), &app, &stream, &cfg));
                assert_eq!(
                    reference, got,
                    "collision run diverged at workers={workers} event_core={event_core} \
                     order_fuzz={order_fuzz:#x}"
                );
            }
        }
    }
}
