//! Deterministic fuzz over random scenario compositions: 32
//! `elzar_rng`-seeded random phase sequences (random steady/ramp/burst
//! loads, fault storms, key rotations, zero-length phases at random cut
//! points) each served under a seed-derived random configuration
//! (policy, batch policy, replicas, compaction, divergence checks,
//! shedding) — run twice at w1 and once at w4, asserting:
//!
//! * rerun determinism: two identical runs produce bit-identical
//!   reports, canonical trace bytes included;
//! * worker invariance: w1 == w4 on everything;
//! * totality + conservation: every request is served, rejected or
//!   shed, and every shard's `CycleLedger` conserves against its
//!   lifetime (verified inside report assembly — a violation panics);
//! * no panic anywhere across scale-up/down, failover, compaction and
//!   shedding interleavings.
//!
//! Failures do not stop the sweep: every failing seed is collected and
//! printed, so a regression can be replayed as
//! `Scenario::random(seed, ...)` with the config bits printed next to
//! it.

use std::panic::{catch_unwind, AssertUnwindSafe};

use elzar::{Artifact, Mode};
use elzar_apps::Scale;
use elzar_rng::DetRng;
use elzar_serve::gen::Scenario;
use elzar_serve::{serve_scenario, ScalingPolicy, ServeConfig, ServeReport, Service};

const SEEDS: u64 = 32;
const REQUESTS: u64 = 128;
const BASE_GAP: u64 = 6_000; // phases land on both sides of 1-shard capacity
const BASE_PPM: u32 = 60_000;

/// A seed-derived random serving configuration exercising every
/// orthogonal runtime feature the scenario can interleave with.
fn fuzz_cfg(seed: u64) -> ServeConfig {
    let mut rng = DetRng::seed_from_u64(seed ^ 0xC0F1_6BA5_EED5_EED5);
    let shed = rng.below(2) == 1;
    ServeConfig {
        shards: 1,
        workers: 1,
        batch_size: 1 + rng.below(4) as u32,
        batch_adaptive: rng.below(2) == 1,
        batch_max: 16,
        snapshot_interval: [4u32, 8, 16][rng.below(3) as usize],
        snapshot_bytes_per_cycle: 1024, // keep clone charges inside the SLO
        seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xF0CC_5EED,
        queue_capacity: 1 << 20,
        adaptive_shards: true,
        shards_max: 2 + rng.below(3) as u32,
        control_interval: [12u32, 16, 24][rng.below(3) as usize],
        scale_up_backlog: 4 + rng.below(4) as u32,
        scale_down_backlog: 1,
        scaling_policy: if rng.below(2) == 1 { ScalingPolicy::Predictive } else { ScalingPolicy::Reactive },
        slo_cycles: if shed { 60_000 } else { 0 },
        shed_slo: shed,
        replicas: rng.below(2) == 1,
        compaction: rng.below(2) == 1,
        divergence_check_interval: [0u32, 7][rng.below(2) as usize],
        trace_events: 64,
        ..Default::default()
    }
}

fn bit_identical(tag: &str, a: &ServeReport, b: &ServeReport) {
    assert_eq!(a.served, b.served, "{tag}: served");
    assert_eq!(a.rejected, b.rejected, "{tag}: rejected");
    assert_eq!(a.shed, b.shed, "{tag}: shed");
    assert_eq!(a.injected, b.injected, "{tag}: injected");
    assert_eq!(a.outcomes, b.outcomes, "{tag}: outcomes");
    assert_eq!(a.restarts, b.restarts, "{tag}: restarts");
    assert_eq!(a.promotions, b.promotions, "{tag}: promotions");
    assert_eq!(a.compactions, b.compactions, "{tag}: compactions");
    assert_eq!(a.divergence_alarms, b.divergence_alarms, "{tag}: divergence alarms");
    assert_eq!(a.makespan_cycles, b.makespan_cycles, "{tag}: makespan");
    assert_eq!(a.hist, b.hist, "{tag}: histogram");
    assert_eq!(a.table_digest, b.table_digest, "{tag}: table digest");
    assert_eq!(a.events, b.events, "{tag}: scaling events");
    assert_eq!(a.ledger, b.ledger, "{tag}: cycle ledger");
    assert_eq!(a.trace.canonical_bytes(), b.trace.canonical_bytes(), "{tag}: trace bytes");
}

#[test]
fn random_compositions_are_deterministic_conserved_and_panic_free() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let mut failures: Vec<(u64, String)> = Vec::new();

    for seed in 0..SEEDS {
        let scenario = Scenario::random(seed, REQUESTS, BASE_GAP, BASE_PPM);
        let cfg = fuzz_cfg(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // Run twice at w1 (rerun determinism incl. ledger checks
            // inside merge), once at w4 (worker invariance).
            let a = serve_scenario(service, artifact.program(), &app, &scenario, &cfg);
            let b = serve_scenario(service, artifact.program(), &app, &scenario, &cfg);
            let c = serve_scenario(
                service,
                artifact.program(),
                &app,
                &scenario,
                &ServeConfig { workers: 4, ..cfg.clone() },
            );
            assert_eq!(
                a.served + a.rejected + a.shed,
                REQUESTS,
                "seed {seed}: report must account for every request"
            );
            bit_identical(&format!("seed {seed} rerun"), &a, &b);
            bit_identical(&format!("seed {seed} w1-vs-w4"), &a, &c);
        }));
        if let Err(e) = outcome {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic".to_string());
            eprintln!(
                "FUZZ FAILURE seed={seed}: {msg}\n  replay: Scenario::random({seed}, {REQUESTS}, \
                 {BASE_GAP}, {BASE_PPM}) with cfg {:?}",
                cfg
            );
            failures.push((seed, msg));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {SEEDS} fuzz seeds failed: {:?}",
        failures.len(),
        failures.iter().map(|(s, _)| *s).collect::<Vec<_>>()
    );
}
