//! Deterministic chaos suite for the replication layer: seeded crash
//! storms across shards, pinning three guarantees.
//!
//! * **Failover is a timing lever only.** Warm replicas change
//!   availability and latency — never outcome counts, restarts or the
//!   final KV digest — across {replicas on, off} × worker counts,
//!   because the standby mirrors the exact committed sequence and
//!   promotion swaps in a bit-identical machine.
//! * **Compaction bounds the committed log.** With
//!   [`ServeConfig::compaction`] the retained per-slot log never
//!   exceeds one snapshot interval, while outcomes and the digest stay
//!   bit-identical to compaction-off and static runs (scale-down
//!   absorption included, now replaying a bounded delta).
//! * **The divergence detector is a real second SDC detector.** Probing
//!   the faulty twin's resident state against the committed reference
//!   flags injected SDCs with no access to ELZAR's classification, the
//!   periodic primary-vs-standby check never alarms, and the
//!   availability denominator integrates true shard lifetimes.

use elzar::{Artifact, Mode};
use elzar_apps::Scale;
use elzar_fault::Outcome;
use elzar_serve::gen::{rescale_gaps, Request};
use elzar_serve::{serve_stream, ServeConfig, ServeReport, Service};

/// Crash storm: ~30% of requests take an SEU, so Crashed-class
/// outcomes arrive in bursts on both shards.
fn storm_cfg() -> ServeConfig {
    ServeConfig {
        shards: 2,
        workers: 4,
        batch_size: 8,
        snapshot_interval: 16,
        requests: 360,
        seed: 0xFA11_0EE5,
        fault_rate_ppm: 300_000,
        // Rejections are load-dependent and would legitimately differ
        // across configurations — keep the queue unbounded.
        queue_capacity: 1 << 20,
        mean_gap_cycles: 300,
        ..Default::default()
    }
}

/// Dense head, 30x-stretched tail: makes the elastic controller scale
/// both ways so compaction runs against real migrations.
fn phased_stream(service: Service, app: &elzar_apps::ServeApp, cfg: &ServeConfig) -> Vec<Request> {
    let mut stream = service.stream(app, cfg);
    let from = stream.len() * 2 / 3;
    rescale_gaps(&mut stream, from, 30, 1);
    stream
}

fn invariant_eq(tag: &str, a: &ServeReport, b: &ServeReport) {
    assert_eq!(a.served, b.served, "{tag}: served diverged");
    assert_eq!(a.rejected, 0, "{tag}: unbounded queue must reject nothing");
    assert_eq!(b.rejected, 0, "{tag}");
    assert_eq!(a.injected, b.injected, "{tag}: injection count diverged");
    assert_eq!(a.outcomes, b.outcomes, "{tag}: outcome histogram diverged");
    assert_eq!(a.restarts, b.restarts, "{tag}: crash count diverged");
    assert_eq!(a.table_digest, b.table_digest, "{tag}: final resident state diverged");
}

/// The tentpole: under an identical crash storm at equal snapshot
/// interval K, warm replicas strictly beat restart-only availability,
/// while outcome counts, restarts and the digest are bit-identical
/// across {replicas on, off} × {1, 4} workers.
#[test]
fn warm_failover_raises_availability_never_changes_outcomes() {
    for service in [Service::KvA, Service::Web] {
        let app = service.app(Scale::Tiny);
        let artifact = Artifact::build(&app.module, &Mode::elzar_default());
        let cfg = storm_cfg();
        let stream = service.stream(&app, &cfg);
        let label = service.label();

        let off = serve_stream(artifact.program(), &app, &stream, &cfg);
        let on = serve_stream(
            artifact.program(),
            &app,
            &stream,
            &ServeConfig { replicas: true, workers: 4, ..cfg.clone() },
        );
        let on_w1 = serve_stream(
            artifact.program(),
            &app,
            &stream,
            &ServeConfig { replicas: true, workers: 1, ..cfg.clone() },
        );

        invariant_eq(&format!("{label}: replicas off vs on"), &off, &on);
        invariant_eq(&format!("{label}: replicas on, w4 vs w1"), &on, &on_w1);
        // The hardened KV build crashes rarely even at a 30% SEU rate
        // (most flips are masked or corrected); the web parse crashes
        // often. A handful is enough to discriminate availability.
        assert!(off.restarts >= 3, "{label}: only {} crashes — no storm to recover from", off.restarts);

        // Restart-only recovery stalls the queue for restart + replay;
        // promotion charges only the handoff.
        assert_eq!(off.promotions, 0, "{label}: restart-only run promoted");
        assert_eq!(on.promotions, on.restarts, "{label}: every crash must promote the standby");
        assert_eq!(on.replay_cycles(), 0, "{label}: failover pays no foreground replay");
        assert!(on.rebuild_cycles() > 0, "{label}: promotions must rebuild standbys in background");
        assert!(on.replica_apply_cycles() > 0, "{label}: the standby never applied the log");
        assert!(
            on.downtime_cycles() < off.downtime_cycles(),
            "{label}: downtime {} !< {}",
            on.downtime_cycles(),
            off.downtime_cycles()
        );
        assert!(
            on.availability() > off.availability(),
            "{label}: availability {} !> {}",
            on.availability(),
            off.availability()
        );

        // Replicated runs are themselves worker-count invariant down to
        // the full timing surface.
        assert_eq!(on.makespan_cycles, on_w1.makespan_cycles, "{label}");
        assert_eq!(on.hist, on_w1.hist, "{label}: histogram diverged across workers");
        assert_eq!(on.promotions, on_w1.promotions, "{label}");
        assert_eq!(on.downtime_cycles(), on_w1.downtime_cycles(), "{label}");
        assert_eq!(on.rebuild_cycles(), on_w1.rebuild_cycles(), "{label}");
        assert_eq!(on.replica_apply_cycles(), on_w1.replica_apply_cycles(), "{label}");
    }
}

/// Compaction bounds the retained per-slot committed log to under one
/// snapshot interval — through scale-ups, scale-downs and crash
/// recoveries — without changing outcomes or the digest; without it the
/// hottest slot's log grows past the interval.
#[test]
fn compaction_bounds_the_committed_log_without_changing_state() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let base = ServeConfig {
        shards: 1,
        adaptive_shards: true,
        shards_max: 4,
        control_interval: 32,
        scale_up_backlog: 6,
        scale_down_backlog: 1,
        fault_rate_ppm: 100_000,
        ..storm_cfg()
    };
    let stream = phased_stream(service, &app, &base);

    let plain = serve_stream(artifact.program(), &app, &stream, &base);
    let compacted = serve_stream(
        artifact.program(),
        &app,
        &stream,
        &ServeConfig { compaction: true, replicas: true, ..base.clone() },
    );
    let static1 = serve_stream(
        artifact.program(),
        &app,
        &stream,
        &ServeConfig { adaptive_shards: false, ..base.clone() },
    );

    invariant_eq("compaction on vs off", &plain, &compacted);
    invariant_eq("compaction on vs static", &static1, &compacted);
    assert!(compacted.scale_ups >= 1 && compacted.scale_downs >= 1, "the fleet must actually scale");

    assert!(compacted.compactions > 0, "no compaction pass removed anything");
    assert!(compacted.compacted_entries > 0);
    assert!(compacted.catchup_cycles() > 0, "compaction catch-up never replayed");
    let k = u64::from(base.snapshot_interval);
    assert!(
        compacted.max_slot_log <= k,
        "retained slot log {} exceeds one snapshot interval {k}",
        compacted.max_slot_log
    );
    assert_eq!(plain.compactions, 0);
    assert!(
        plain.max_slot_log > k,
        "without compaction the hottest slot ({} entries) should outgrow K={k} — \
         otherwise this test bounds nothing",
        plain.max_slot_log
    );
}

/// The divergence detector is an SDC detector in its own right: probing
/// the faulty execution's resident state against the committed
/// reference flags injected SDCs (and sees latent corruption ELZAR's
/// output-based verdict calls Masked), while the periodic
/// primary-vs-standby check never alarms on a healthy replication path.
#[test]
fn divergence_detector_flags_injected_sdcs() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    // Unhardened build: without TMR voting, corrupted values flow
    // straight into the table and the reply — plentiful SDCs for the
    // detector to catch.
    let artifact = Artifact::build(&app.module, &Mode::NativeNoSimd);
    let cfg = ServeConfig { replicas: true, divergence_check_interval: 8, ..storm_cfg() };
    let stream = service.stream(&app, &cfg);
    let r = serve_stream(artifact.program(), &app, &stream, &cfg);

    assert!(r.injected > 50, "only {} injections", r.injected);
    assert!(r.count(Outcome::Sdc) > 0, "the unhardened build must leak SDCs");
    // Every injection that exited was probed (crashed machines never
    // reached a commit boundary to compare).
    assert_eq!(
        r.div_probes(),
        r.injected - r.count(Outcome::Hang) - r.count(Outcome::OsDetected),
        "probe count disagrees with exited injections"
    );
    assert!(
        r.div_flagged[Outcome::Sdc.index()] >= 1,
        "the state-digest detector flagged no injected SDC: {:?} of {:?}",
        r.div_flagged,
        r.div_probed
    );
    let agreement = r.divergence_agreement();
    assert!((0.0..=1.0).contains(&agreement) && agreement > 0.0, "agreement {agreement}");

    assert!(r.divergence_checks > 0, "periodic checks never ran");
    assert_eq!(r.divergence_alarms, 0, "primary and standby apply the same committed sequence");
    assert!(r.divergence_cycles() > 0, "divergence scans are not free");

    // The detector is config-deterministic.
    let again = serve_stream(artifact.program(), &app, &stream, &cfg);
    assert_eq!(r.div_probed, again.div_probed);
    assert_eq!(r.div_flagged, again.div_flagged);
    assert_eq!(r.divergence_checks, again.divergence_checks);
}

/// `availability()` integrates shard-cycles over true lifetimes: a
/// joiner's span starts at its spawn instant and a retiree's ends at
/// its retirement, so elastic runs no longer inflate the denominator
/// with `makespan × every shard that ever existed`.
#[test]
fn availability_integrates_shard_lifetimes() {
    let service = Service::KvA;
    let app = service.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let base = ServeConfig {
        shards: 1,
        adaptive_shards: true,
        shards_max: 4,
        control_interval: 32,
        scale_up_backlog: 6,
        scale_down_backlog: 1,
        fault_rate_ppm: 100_000,
        ..storm_cfg()
    };
    let stream = phased_stream(service, &app, &base);
    let r = serve_stream(artifact.program(), &app, &stream, &base);

    assert!(r.scale_ups >= 1 && r.scale_downs >= 1, "the fleet must actually scale");
    assert!(r.restarts > 0, "no downtime to account");
    assert!(r.shards.iter().any(|s| s.spawned_at > 0), "no joiner recorded a spawn time");
    assert!(r.shards.iter().any(|s| s.retired_at != u64::MAX), "no retiree recorded a retirement");

    let span: u64 = r
        .shards
        .iter()
        .map(|s| s.retired_at.min(r.makespan_cycles) - s.spawned_at.min(r.makespan_cycles))
        .sum();
    let expected = 1.0 - r.downtime_cycles() as f64 / span as f64;
    assert!((r.availability() - expected).abs() < 1e-12, "{} vs {expected}", r.availability());

    // The old fixed-fleet denominator overcounted shard-time, so it
    // could only overstate availability.
    let naive = r.makespan_cycles * r.shards.len() as u64;
    assert!(span < naive, "lifetimes must be shorter than makespan × all shards");
    let old = 1.0 - r.downtime_cycles() as f64 / naive as f64;
    assert!(r.availability() <= old + 1e-12);
}
