//! Golden-shape tests: the hardened code must exhibit exactly the
//! instruction patterns of the paper's Figures 5 and 10.
//!
//! Figure 5(c): an ELZAR loop branches through `ptest` with a recovery
//! arm; Figure 5(b): SWIFT-R triplicates the add and votes before the
//! compare. Figure 10: compares are canonicalized to `<4 x i64>` masks
//! (the `sext` boilerplate) before `ptest`.

use elzar_ir::builder::{c64, FuncBuilder};
use elzar_ir::printer::print_module;
use elzar_ir::{CmpPred, Module, Ty};
use elzar_passes::elzar::{harden_module, ElzarConfig};
use elzar_passes::swiftr;

/// The paper's running example (Figure 5a): increment r1 by r2 until it
/// equals r3.
fn figure5_loop() -> Module {
    let mut m = Module::new("fig5");
    let mut b = FuncBuilder::new("main", vec![Ty::I64, Ty::I64], Ty::I64);
    let r2 = b.param(0);
    let r3 = b.param(1);
    let entry = b.current();
    let header = b.block("loop");
    let exit = b.block("exit");
    b.br(header);
    b.switch_to(header);
    let r1 = b.phi(Ty::I64);
    b.phi_add_incoming(r1, entry, c64(0));
    let next = b.add(r1, r2);
    b.phi_add_incoming(r1, header, next);
    let done = b.icmp(CmpPred::Eq, next, r3);
    b.cond_br(done, exit, header);
    b.switch_to(exit);
    b.ret(next);
    m.add_func(b.finish());
    m
}

#[test]
fn elzar_shape_matches_figure5c_and_figure10() {
    let h = harden_module(&figure5_loop(), &ElzarConfig::default());
    let text = print_module(&h);
    // Data is replicated into <4 x i64> vectors (Figure 2 / Figure 10).
    assert!(text.contains("add <4 x i64>"), "vector add missing:\n{text}");
    // Figure 10: the comparison produces a mask over the replicated data.
    assert!(text.contains("cmp eq <4 x i64>"), "vector compare missing:\n{text}");
    // Figure 5c/7: branching goes through ptest + the 3-way jcc cascade.
    assert!(text.contains("ptest "), "ptest missing:\n{text}");
    assert!(text.contains("ptest_br"), "ptest_br missing:\n{text}");
    // Figure 5c: discrepancy jumps to majority-vote recovery.
    assert!(text.contains("call <4 x i64> @recover"), "recovery call missing:\n{text}");
    // Parameters are replicated via broadcasts (Figure 6's wrappers).
    assert!(text.contains("splat"), "broadcast missing:\n{text}");
    // The return value is extracted back to a scalar.
    assert!(text.contains("extractelement"), "extract missing:\n{text}");
}

#[test]
fn elzar_check_shape_matches_figure8() {
    // A store forces the Figure-8 check: shuffle-rotate, xor, ptest.
    let mut m = Module::new("fig8");
    let mut b = FuncBuilder::new("main", vec![Ty::Ptr, Ty::I64], Ty::I64);
    let p = b.param(0);
    let v = b.param(1);
    let sum = b.add(v, c64(1));
    b.store(Ty::I64, sum, p);
    b.ret(sum);
    m.add_func(b.finish());
    let h = harden_module(&m, &ElzarConfig::default());
    let text = print_module(&h);
    assert!(text.contains("shufflevector"), "rotate shuffle missing:\n{text}");
    assert!(text.contains("xor <4 x i64>"), "xor missing:\n{text}");
    assert!(text.contains("ptest"), "ptest missing:\n{text}");
    // The check's three-way branch sends both all-true and mixed to
    // recovery (only all-false means "lanes agree": xor of equal = 0).
    let has_check_br = text.lines().any(|l| {
        l.contains("ptest_br") && {
            // false->ok, true->rec, mixed->rec: true and mixed targets equal.
            let parts: Vec<&str> = l.split("->").collect();
            parts.len() == 4
        }
    });
    assert!(has_check_br, "check branch missing:\n{text}");
}

#[test]
fn swiftr_shape_matches_figure5b() {
    let h = swiftr::harden_module(&figure5_loop());
    let text = print_module(&h);
    // Three independent scalar adds (Figure 5b lines 2-4).
    let adds = text.matches("add i64").count();
    assert!(adds >= 3, "expected >=3 scalar adds, got {adds}:\n{text}");
    // Majority voting before the branch: cmp eq + select pairs.
    assert!(text.contains("select"), "vote select missing:\n{text}");
    // No vector instructions anywhere — SWIFT-R is pure scalar ILR.
    assert!(!text.contains("<4 x"), "SWIFT-R must stay scalar:\n{text}");
    assert!(!text.contains("ptest"), "SWIFT-R must not use ptest:\n{text}");
}

#[test]
fn future_avx_shape_drops_wrappers() {
    use elzar_passes::elzar::FutureAvx;
    let mut m = Module::new("fut");
    let mut b = FuncBuilder::new("main", vec![Ty::Ptr], Ty::I64);
    let p = b.param(0);
    let v = b.load(Ty::I64, p);
    let w = b.add(v, c64(1));
    b.store(Ty::I64, w, p);
    b.ret(w);
    m.add_func(b.finish());
    let h = harden_module(&m, &ElzarConfig { future: FutureAvx::all(), ..ElzarConfig::default() });
    let text = print_module(&h);
    // §VII-B: loads/stores become gathers/scatters…
    assert!(text.contains("gather"), "gather missing:\n{text}");
    assert!(text.contains("scatter"), "scatter missing:\n{text}");
    // …and the Figure-8 check sequence disappears (FPGA offload).
    assert!(!text.contains("shufflevector"), "checks should be offloaded:\n{text}");
}
