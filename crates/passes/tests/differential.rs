//! Differential testing of the hardening passes.
//!
//! A seeded generator emits random — but trap-free — scalar IR programs.
//! For every seed, the native program and every hardened variant (ELZAR
//! under several configurations, SWIFT-R) must produce byte-identical
//! observable output, and fault-free hardened runs must never invoke the
//! recovery routine.

use elzar_ir::builder::{c64, cf64, FuncBuilder};
use elzar_ir::{BinOp, Builtin, CastOp, CmpPred, Const, Module, Operand, Ty, ValueId};
use elzar_passes::elzar::{harden_module, CheckConfig, ElzarConfig, FutureAvx};
use elzar_passes::swiftr;
use elzar_rng::DetRng;
use elzar_vm::{run_program, MachineConfig, Program, RunOutcome, RunResult};

const BUF_LEN: i64 = 64; // elements per buffer

struct Gen {
    rng: DetRng,
    i64s: Vec<ValueId>,
    f64s: Vec<ValueId>,
    bools: Vec<ValueId>,
}

impl Gen {
    fn chance(&mut self, p: f64) -> bool {
        self.rng.next_f64() < p
    }

    fn pick_i64(&mut self, _b: &mut FuncBuilder) -> Operand {
        if self.i64s.is_empty() || self.chance(0.2) {
            c64(-100 + self.rng.below(200) as i64)
        } else {
            let i = self.rng.below(self.i64s.len() as u64) as usize;
            self.i64s[i].into()
        }
    }

    fn pick_f64(&mut self, b: &mut FuncBuilder) -> Operand {
        let _ = b;
        if self.f64s.is_empty() || self.chance(0.2) {
            cf64(-4.0 + self.rng.next_f64() * 8.0)
        } else {
            let i = self.rng.below(self.f64s.len() as u64) as usize;
            self.f64s[i].into()
        }
    }

    fn pick_bool(&mut self, b: &mut FuncBuilder) -> Operand {
        if self.bools.is_empty() {
            let x = self.pick_i64(b);
            let y = self.pick_i64(b);
            let c = b.icmp(CmpPred::Slt, x, y);
            self.bools.push(c);
        }
        let i = self.rng.below(self.bools.len() as u64) as usize;
        self.bools[i].into()
    }

    fn safe_index(&mut self, b: &mut FuncBuilder) -> Operand {
        let raw = self.pick_i64(b);
        let masked = b.bin(BinOp::And, Ty::I64, raw, c64(BUF_LEN - 1));
        masked.into()
    }

    fn emit_random_op(&mut self, b: &mut FuncBuilder, buf: ValueId) {
        match self.rng.below(14) {
            0..=3 => {
                // Integer arithmetic.
                let op = *[
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                    BinOp::Shl,
                    BinOp::LShr,
                    BinOp::AShr,
                    BinOp::SMin,
                    BinOp::SMax,
                ]
                .get(self.rng.below(11) as usize)
                .unwrap();
                let x = self.pick_i64(b);
                let y = self.pick_i64(b);
                let v = b.bin(op, Ty::I64, x, y);
                self.i64s.push(v);
            }
            4 => {
                // Guarded unsigned division.
                let x = self.pick_i64(b);
                let y = self.pick_i64(b);
                let safe = b.bin(BinOp::Or, Ty::I64, y, c64(1));
                let op = if self.rng.next_bool() { BinOp::UDiv } else { BinOp::URem };
                let v = b.bin(op, Ty::I64, x, safe);
                self.i64s.push(v);
            }
            5 => {
                // Float arithmetic.
                let op = *[BinOp::FAdd, BinOp::FSub, BinOp::FMul, BinOp::FMin, BinOp::FMax]
                    .get(self.rng.below(5) as usize)
                    .unwrap();
                let x = self.pick_f64(b);
                let y = self.pick_f64(b);
                let v = b.bin(op, Ty::F64, x, y);
                self.f64s.push(v);
            }
            6 => {
                // Load from the scratch buffer.
                let idx = self.safe_index(b);
                let p = b.gep(buf, idx, 8);
                let v = b.load(Ty::I64, p);
                self.i64s.push(v);
            }
            7 => {
                // Store into the scratch buffer.
                let idx = self.safe_index(b);
                let p = b.gep(buf, idx, 8);
                let v = self.pick_i64(b);
                b.store(Ty::I64, v, p);
            }
            8 => {
                // Comparison.
                let pred = *[CmpPred::Eq, CmpPred::Ne, CmpPred::Slt, CmpPred::Sge, CmpPred::Ult]
                    .get(self.rng.below(5) as usize)
                    .unwrap();
                let x = self.pick_i64(b);
                let y = self.pick_i64(b);
                let v = b.icmp(pred, x, y);
                self.bools.push(v);
            }
            9 => {
                // Select.
                let c = self.pick_bool(b);
                let x = self.pick_i64(b);
                let y = self.pick_i64(b);
                let v = b.select(c, x, y);
                self.i64s.push(v);
            }
            10 => {
                // Casts through narrower widths (incl. esoteric i9).
                let x = self.pick_i64(b);
                let bits = *[8u8, 9, 16, 32].get(self.rng.below(4) as usize).unwrap();
                let narrow = b.cast(CastOp::Trunc, x, Ty::int(bits));
                let back = if self.rng.next_bool() {
                    b.cast(CastOp::SExt, narrow, Ty::I64)
                } else {
                    b.cast(CastOp::ZExt, narrow, Ty::I64)
                };
                self.i64s.push(back);
            }
            11 => {
                // Int <-> float casts.
                if self.rng.next_bool() {
                    let x = self.pick_i64(b);
                    let lim = b.bin(BinOp::And, Ty::I64, x, c64(0xFFFF));
                    let v = b.cast(CastOp::SiToFp, lim, Ty::F64);
                    self.f64s.push(v);
                } else {
                    let x = self.pick_f64(b);
                    let v = b.cast(CastOp::FpToSi, x, Ty::I64);
                    self.i64s.push(v);
                }
            }
            12 => {
                // If/else diamond merged by a phi.
                let c = self.pick_bool(b);
                let tval = self.pick_i64(b);
                let fval = self.pick_i64(b);
                let then_bb = b.block("d.then");
                let else_bb = b.block("d.else");
                let join = b.block("d.join");
                b.cond_br(c, then_bb, else_bb);
                b.switch_to(then_bb);
                let tv = b.add(tval, c64(17));
                b.br(join);
                b.switch_to(else_bb);
                let fv = b.mul(fval, c64(3));
                b.br(join);
                b.switch_to(join);
                let phi = b.phi(Ty::I64);
                b.phi_add_incoming(phi, then_bb, tv);
                b.phi_add_incoming(phi, else_bb, fv);
                self.i64s.push(phi);
                // Value pools survive the diamond (defined before it), but
                // bools created inside branches would not dominate — none
                // are.
            }
            13 => {
                // zext of a condition (mask-to-data crossing).
                let c = self.pick_bool(b);
                let v = b.cast(CastOp::ZExt, c, Ty::I64);
                self.i64s.push(v);
            }
            _ => unreachable!(),
        }
    }
}

/// Build a random but deterministic, trap-free program.
fn random_program(seed: u64) -> Module {
    let mut g = Gen { rng: DetRng::seed_from_u64(seed), i64s: vec![], f64s: vec![], bools: vec![] };
    let mut m = Module::new(format!("rand{seed}"));

    // Helper function: f(x) = x*2 + 7 with an internal branch.
    let mut hb = FuncBuilder::new("helper", vec![Ty::I64, Ty::F64], Ty::I64);
    let hx = hb.param(0);
    let hf = hb.param(1);
    let d = hb.mul(hx, c64(2));
    let c = hb.fcmp(CmpPred::FOlt, hf, cf64(0.5));
    let t_bb = hb.block("t");
    let f_bb = hb.block("f");
    let j = hb.block("j");
    hb.cond_br(c, t_bb, f_bb);
    hb.switch_to(t_bb);
    let tv = hb.add(d, c64(7));
    hb.br(j);
    hb.switch_to(f_bb);
    let fv = hb.sub(d, c64(7));
    hb.br(j);
    hb.switch_to(j);
    let phi = hb.phi(Ty::I64);
    hb.phi_add_incoming(phi, t_bb, tv);
    hb.phi_add_incoming(phi, f_bb, fv);
    hb.ret(phi);
    let helper = m.add_func(hb.finish());

    let mut b = FuncBuilder::new("main", vec![], Ty::I64);
    let buf = b.call_builtin(Builtin::Malloc, vec![c64(BUF_LEN * 8)], Ty::Ptr).unwrap();
    // Deterministic fill.
    b.counted_loop(c64(0), c64(BUF_LEN), |b, i| {
        let v = b.mul(i, c64(0x9E37));
        let p = b.gep(buf, i, 8);
        b.store(Ty::I64, v, p);
    });
    let seed_v = b.add(c64(seed as i64 & 0xFFFF), c64(1));
    g.i64s.push(seed_v);

    // A run of random straight-line-ish ops.
    let n_ops = 12 + (seed % 20) as usize;
    for _ in 0..n_ops {
        g.emit_random_op(&mut b, buf);
    }

    // An inner loop accumulating into memory.
    let acc = b.alloca(Ty::I64, Operand::Imm(Const::i64(1)));
    b.store(Ty::I64, c64(0), acc);
    let trip = 16 + (seed % 8) as i64;
    b.counted_loop(c64(0), c64(trip), |b, i| {
        let idx = b.bin(BinOp::And, Ty::I64, i, c64(BUF_LEN - 1));
        let p = b.gep(buf, idx, 8);
        let v = b.load(Ty::I64, p);
        let a = b.load(Ty::I64, acc);
        let s = b.add(a, v);
        let s2 = b.bin(BinOp::Xor, Ty::I64, s, i);
        b.store(Ty::I64, s2, acc);
    });
    let total = b.load(Ty::I64, acc);
    g.i64s.push(total);

    // A call.
    let arg_i = g.pick_i64(&mut b);
    let arg_f = g.pick_f64(&mut b);
    let r = b.call(helper, vec![arg_i, arg_f], Ty::I64).unwrap();
    g.i64s.push(r);

    // Emit everything observable.
    for v in g.i64s.clone() {
        b.call_builtin(Builtin::OutputI64, vec![v.into()], Ty::Void);
    }
    for v in g.f64s.clone() {
        b.call_builtin(Builtin::OutputF64, vec![v.into()], Ty::Void);
    }
    for v in g.bools.clone() {
        let w = b.cast(CastOp::ZExt, v, Ty::I64);
        b.call_builtin(Builtin::OutputI64, vec![w.into()], Ty::Void);
    }
    let ret = g.pick_i64(&mut b);
    let ret64 = b.add(ret, c64(0));
    b.ret(ret64);
    m.add_func(b.finish());
    m
}

fn run(m: &Module) -> RunResult {
    elzar_ir::verify::verify_module(m)
        .unwrap_or_else(|e| panic!("verify {}: {:#?}", m.name, &e[..e.len().min(5)]));
    let p = Program::lower(m);
    run_program(&p, "main", &[], MachineConfig::default())
}

fn elzar_configs() -> Vec<(&'static str, ElzarConfig)> {
    vec![
        ("default", ElzarConfig::default()),
        ("no-checks", ElzarConfig { checks: CheckConfig::none(), ..Default::default() }),
        (
            "no-loads",
            ElzarConfig { checks: CheckConfig { loads: false, ..CheckConfig::all() }, ..Default::default() },
        ),
        (
            "no-loads-stores",
            ElzarConfig {
                checks: CheckConfig { loads: false, stores: false, ..CheckConfig::all() },
                ..Default::default()
            },
        ),
        ("fp-only", ElzarConfig { fp_only: true, ..Default::default() }),
        ("future-avx", ElzarConfig { future: FutureAvx::all(), ..Default::default() }),
        (
            "future-gather",
            ElzarConfig {
                future: FutureAvx { gather_scatter: true, ..Default::default() },
                ..Default::default()
            },
        ),
        (
            "future-cmpflags",
            ElzarConfig { future: FutureAvx { cmp_flags: true, ..Default::default() }, ..Default::default() },
        ),
    ]
}

#[test]
fn elzar_preserves_semantics_across_seeds_and_configs() {
    for seed in 0..25u64 {
        let m = random_program(seed);
        let native = run(&m);
        assert!(
            matches!(native.outcome, RunOutcome::Exited(_)),
            "seed {seed}: native must exit cleanly, got {:?}",
            native.outcome
        );
        for (name, cfg) in elzar_configs() {
            let h = harden_module(&m, &cfg);
            let r = run(&h);
            assert_eq!(native.outcome, r.outcome, "seed {seed}, config {name}: outcome diverged");
            assert_eq!(native.output, r.output, "seed {seed}, config {name}: output diverged");
            assert_eq!(r.corrections, 0, "seed {seed}, config {name}: fault-free run must never recover");
        }
    }
}

#[test]
fn swiftr_preserves_semantics_across_seeds() {
    for seed in 0..25u64 {
        let m = random_program(seed);
        let native = run(&m);
        let h = swiftr::harden_module(&m);
        let r = run(&h);
        assert_eq!(native.outcome, r.outcome, "seed {seed}: outcome diverged");
        assert_eq!(native.output, r.output, "seed {seed}: output diverged");
    }
}

#[test]
fn elzar_instruction_blowup_is_below_swiftr_on_compute_heavy_code() {
    // The paper's core quantitative claim (Table III): ELZAR's
    // *instruction* increase is smaller than SWIFT-R's on code that is
    // dominated by arithmetic rather than memory accesses.
    let mut m = Module::new("compute");
    let mut b = FuncBuilder::new("main", vec![], Ty::I64);
    let acc = b.alloca(Ty::I64, c64(1));
    b.store(Ty::I64, c64(1), acc);
    b.counted_loop(c64(0), c64(50), |b, i| {
        let a = b.load(Ty::I64, acc);
        // Long arithmetic chain, single load/store pair.
        let mut v = a;
        for k in 1..12 {
            let x = b.mul(v, c64(3));
            let y = b.add(x, i);
            v = b.bin(BinOp::Xor, Ty::I64, y, c64(k));
        }
        b.store(Ty::I64, v, acc);
    });
    let v = b.load(Ty::I64, acc);
    b.ret(v);
    m.add_func(b.finish());

    let elzar_m = harden_module(&m, &ElzarConfig::default());
    let swiftr_m = swiftr::harden_module(&m);
    let base = run(&m);
    let re = run(&elzar_m);
    let rs = run(&swiftr_m);
    assert_eq!(base.output, re.output);
    assert_eq!(base.output, rs.output);
    let fe = re.counters.instrs as f64 / base.counters.instrs as f64;
    let fs = rs.counters.instrs as f64 / base.counters.instrs as f64;
    assert!(
        fe < fs,
        "ELZAR instruction increase ({fe:.2}x) must undercut SWIFT-R ({fs:.2}x) on compute-heavy code"
    );
}

#[test]
fn fp_only_mode_keeps_integer_flow_scalar() {
    let m = random_program(3);
    let h = harden_module(&m, &ElzarConfig { fp_only: true, ..Default::default() });
    let full = harden_module(&m, &ElzarConfig::default());
    // FP-only hardening must emit (weakly) fewer instructions than full.
    assert!(h.num_insts() <= full.num_insts());
}
