//! The §VII-D estimation methodology: "instead of accelerating ELZAR, we
//! decelerate the native versions by adding dummy inline assembly around
//! loads, stores, and branches" — the wrapper instructions ELZAR would
//! *keep* even with the proposed AVX extensions.
//!
//! The overhead of plain ELZAR relative to this decelerated native build
//! approximates the overhead ELZAR would retain after gathers/scatters,
//! flag-setting compares and FPGA-offloaded checks remove the wrappers —
//! the Figure 17 estimate.

use elzar_ir::inst::{Inst, Terminator};
use elzar_ir::module::{Function, Module};
use elzar_ir::types::Ty;
use elzar_ir::value::{Const, Operand};
use elzar_ir::CastOp;

/// Add the dummy wrapper instructions to every hardened function.
pub fn decelerate_module(m: &Module) -> Module {
    let mut out = m.clone();
    out.name = format!("{}.decel", m.name);
    for f in &mut out.funcs {
        if f.hardened {
            decelerate_function(f);
        }
    }
    out
}

fn decelerate_function(f: &mut Function) {
    // Rebuild each block's instruction list, inserting dummies. New
    // instructions are appended to the arena; blocks keep their ids, so
    // control flow and phis stay valid.
    for bi in 0..f.blocks.len() {
        let old: Vec<_> = std::mem::take(&mut f.blocks[bi].insts);
        let block = elzar_ir::BlockId(bi as u32);
        for iid in old {
            let inst = f.insts[iid.0 as usize].inst.clone();
            let result = f.insts[iid.0 as usize].result;
            match &inst {
                Inst::Load { ty, .. } if !ty.is_vector() => {
                    // dummy extract before, dummy broadcast after.
                    let d = f.push_inst(block, dummy_splat()).expect("yields");
                    f.push_inst(
                        block,
                        Inst::ExtractElement {
                            vec: d.into(),
                            idx: Operand::imm_i64(0),
                            ty: Ty::vec(Ty::I64, 4),
                        },
                    );
                    f.blocks[bi].insts.push(iid);
                    if let Some(r) = result {
                        let ty = f.val_ty(r).clone();
                        if ty.is_int() || ty.is_ptr() {
                            let as64: Operand = if ty == Ty::I64 {
                                r.into()
                            } else if ty.is_ptr() {
                                f.push_inst(
                                    block,
                                    Inst::Cast { op: CastOp::PtrToInt, to: Ty::I64, val: r.into() },
                                )
                                .expect("yields")
                                .into()
                            } else {
                                f.push_inst(
                                    block,
                                    Inst::Cast { op: CastOp::ZExt, to: Ty::I64, val: r.into() },
                                )
                                .expect("yields")
                                .into()
                            };
                            f.push_inst(block, Inst::Splat { val: as64, ty: Ty::vec(Ty::I64, 4) });
                        } else {
                            f.push_inst(block, dummy_splat());
                        }
                    }
                }
                Inst::Store { ty, .. } if !ty.is_vector() => {
                    // Two dummy extracts (address + value).
                    let d = f.push_inst(block, dummy_splat()).expect("yields");
                    f.push_inst(
                        block,
                        Inst::ExtractElement {
                            vec: d.into(),
                            idx: Operand::imm_i64(0),
                            ty: Ty::vec(Ty::I64, 4),
                        },
                    );
                    f.push_inst(
                        block,
                        Inst::ExtractElement {
                            vec: d.into(),
                            idx: Operand::imm_i64(1),
                            ty: Ty::vec(Ty::I64, 4),
                        },
                    );
                    f.blocks[bi].insts.push(iid);
                }
                _ => f.blocks[bi].insts.push(iid),
            }
        }
        // Dummy ptest before every conditional branch (Figure 7's cost).
        if matches!(f.blocks[bi].term, Terminator::CondBr { .. }) {
            let d = f.push_inst(block, dummy_splat()).expect("yields");
            f.push_inst(block, Inst::Ptest { mask: d.into(), ty: Ty::vec(Ty::I64, 4) });
        }
    }
}

fn dummy_splat() -> Inst {
    Inst::Splat { val: Operand::Imm(Const::i64(0)), ty: Ty::vec(Ty::I64, 4) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elzar_ir::builder::{c64, FuncBuilder};
    use elzar_ir::verify::verify_module;
    use elzar_vm::{run_program, MachineConfig, Program};

    fn module() -> Module {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let buf = b.alloca(Ty::I64, c64(4));
        b.store(Ty::I64, c64(3), buf);
        let mut_acc = b.alloca(Ty::I64, c64(1));
        b.store(Ty::I64, c64(0), mut_acc);
        b.counted_loop(c64(0), c64(200), |b, _i| {
            let v = b.load(Ty::I64, buf);
            let a = b.load(Ty::I64, mut_acc);
            let s = b.add(a, v);
            b.store(Ty::I64, s, mut_acc);
        });
        let v = b.load(Ty::I64, mut_acc);
        b.ret(v);
        m.add_func(b.finish());
        m
    }

    #[test]
    fn decelerated_verifies_and_preserves_output() {
        let m = module();
        let d = decelerate_module(&m);
        verify_module(&d).unwrap_or_else(|e| panic!("{:#?}", &e[..e.len().min(5)]));
        let r0 = run_program(&Program::lower(&m), "main", &[], MachineConfig::default());
        let r1 = run_program(&Program::lower(&d), "main", &[], MachineConfig::default());
        assert_eq!(r0.outcome, r1.outcome);
    }

    #[test]
    fn decelerated_is_slower_with_more_instructions() {
        let m = module();
        let d = decelerate_module(&m);
        let r0 = run_program(&Program::lower(&m), "main", &[], MachineConfig::default());
        let r1 = run_program(&Program::lower(&d), "main", &[], MachineConfig::default());
        assert!(r1.counters.instrs > r0.counters.instrs);
        assert!(r1.cycles > r0.cycles, "{} !> {}", r1.cycles, r0.cycles);
        assert!(r1.counters.avx_instrs > 0);
    }
}
