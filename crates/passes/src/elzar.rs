//! The ELZAR transformation (§III of the paper): triple-modular redundancy
//! by *data* replication across AVX lanes.
//!
//! Every scalar SSA value is widened to a vector filling a 256-bit YMM
//! register (§III-D option 3: `i8`→32 lanes … `i64`/`f64`/`ptr`→4 lanes;
//! `i1` values are canonical `<4 x i64>` masks — the `sext` boilerplate of
//! Figure 10). Arithmetic maps 1:1 onto vector instructions.
//! Synchronization instructions (§III-B: loads, stores, atomics, calls,
//! returns, branches) are *not* replicated: their operands are checked
//! (Figure 8: `shuffle`+`xor`+`ptest`), extracted from lane 0, executed
//! once, and results broadcast back (Figure 6). Branches reuse the
//! `ptest` they already need, so their check is a single extra jump
//! (Figure 9). Detected divergence jumps to a majority-vote recovery
//! routine (§III-C step 3) implemented by the runtime's `recover` builtin.
//!
//! Options reproduce the paper's studies: [`CheckConfig`] toggles check
//! sites (Figure 12), `fp_only` replicates only floating-point data
//! (§V-B), and [`FutureAvx`] implements the §VII ISA proposals
//! (gather/scatter wrappers, flag-setting compares, FPGA-offloaded
//! checks).

use elzar_ir::inst::{Builtin, Callee, Inst, Terminator};
use elzar_ir::module::{Function, Module};
use elzar_ir::types::Ty;
use elzar_ir::value::{BlockId, Const, Operand, ValueId};
use elzar_ir::{BinOp, CastOp, CmpPred};

/// Which synchronization-instruction sites receive Figure-8 checks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CheckConfig {
    /// Check load addresses.
    pub loads: bool,
    /// Check store addresses and values.
    pub stores: bool,
    /// Branch checks (the third `ptest_br` outcome, Figure 9).
    pub branches: bool,
    /// Checks on everything else: call arguments, return values, atomics.
    pub others: bool,
}

impl CheckConfig {
    /// All checks on (the paper's default configuration).
    pub fn all() -> CheckConfig {
        CheckConfig { loads: true, stores: true, branches: true, others: true }
    }

    /// All checks off (Figure 12's "all checks disabled" bar).
    pub fn none() -> CheckConfig {
        CheckConfig { loads: false, stores: false, branches: false, others: false }
    }
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig::all()
    }
}

/// The §VII proposed AVX extensions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct FutureAvx {
    /// Replace extract/load/broadcast and extract/store wrappers with
    /// hardware gather/scatter that majority-vote their address (and
    /// value) lanes (§VII-B "loads and stores").
    pub gather_scatter: bool,
    /// Vector compares toggle FLAGS directly — no `ptest` before
    /// branches (§VII-B "comparisons affecting FLAGS").
    pub cmp_flags: bool,
    /// Checks offloaded to an on-die FPGA (§VII-C) — Figure-8 sequences
    /// disappear from the instruction stream.
    pub offload_checks: bool,
}

impl FutureAvx {
    /// Enable every proposed extension (the Figure 17 estimate).
    pub fn all() -> FutureAvx {
        FutureAvx { gather_scatter: true, cmp_flags: true, offload_checks: true }
    }
}

/// Full transformation configuration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct ElzarConfig {
    /// Check-site selection.
    pub checks: CheckConfig,
    /// Replicate only floating-point data flow (§V-B).
    pub fp_only: bool,
    /// Proposed-ISA mode.
    pub future: FutureAvx,
}

/// The canonical mask shape all `i1` values take (Figure 10's
/// `sext ... to <4 x i64>`).
fn canon_mask() -> Ty {
    Ty::vec(Ty::I64, 4)
}

/// Replicated type of a scalar type.
fn repl_ty(t: &Ty) -> Ty {
    if *t == Ty::I1 {
        canon_mask()
    } else {
        Ty::vec(t.clone(), t.ymm_lanes())
    }
}

/// Harden every `hardened` function of a module with ELZAR.
///
/// Unhardened (library) functions are copied verbatim, mirroring the
/// paper's treatment of I/O, OS and pthreads code (§IV-A).
///
/// # Panics
/// Panics if a hardened function already contains vector instructions
/// (ELZAR requires vectorization disabled in the input, §IV-A).
pub fn harden_module(m: &Module, cfg: &ElzarConfig) -> Module {
    let mut out = Module::new(format!("{}.elzar", m.name));
    out.globals = m.globals.clone();
    for f in &m.funcs {
        if f.hardened {
            out.funcs.push(Xform::new(m, f, cfg).run());
        } else {
            out.funcs.push(f.clone());
        }
    }
    out
}

struct PhiFixup {
    new_phi: ValueId,
    ty: Ty,
    replicated: bool,
    orig_incomings: Vec<(BlockId, Operand)>,
}

struct Xform<'a> {
    orig: &'a Function,
    cfg: &'a ElzarConfig,
    nf: Function,
    cur: BlockId,
    vmap: Vec<Option<Operand>>,
    vty: Vec<Option<Ty>>,
    exits: Vec<Vec<BlockId>>,
    phis: Vec<PhiFixup>,
    trap_bb: Option<BlockId>,
}

impl<'a> Xform<'a> {
    fn new(_m: &'a Module, orig: &'a Function, cfg: &'a ElzarConfig) -> Xform<'a> {
        let mut nf = Function::new(orig.name.clone(), orig.params.clone(), orig.ret_ty.clone());
        nf.hardened = true;
        // Mirror the original block structure: block i ↔ new block i.
        for b in orig.blocks.iter().skip(1) {
            nf.add_block(b.name.clone());
        }
        let nvals = orig.vals.len();
        Xform {
            orig,
            cfg,
            nf,
            cur: BlockId(0),
            vmap: vec![None; nvals],
            vty: vec![None; nvals],
            exits: vec![vec![]; orig.blocks.len()],
            phis: vec![],
            trap_bb: None,
        }
    }

    fn emit(&mut self, inst: Inst) -> Option<ValueId> {
        self.nf.push_inst(self.cur, inst)
    }

    fn emit_val(&mut self, inst: Inst) -> ValueId {
        self.emit(inst).expect("instruction yields a value")
    }

    fn should_replicate(&self, t: &Ty) -> bool {
        if self.cfg.fp_only {
            t.is_float()
        } else {
            true
        }
    }

    #[allow(dead_code)]
    fn new_ty(&self, op: &Operand) -> Ty {
        match op {
            Operand::Val(v) => self.vty[v.0 as usize].clone().expect("mapped value"),
            Operand::Imm(c) => c.ty(),
        }
    }

    /// Fetch the mapped operand resized to `want`.
    fn use_op(&mut self, o: &Operand, want: &Ty) -> Operand {
        match o {
            Operand::Imm(c) => {
                if want.is_vector() {
                    if c.ty() == Ty::I1 {
                        // i1 constants become canonical all-ones / zero masks.
                        let truth = matches!(c, Const::Int { value: 1, .. });
                        let lane = if truth { u64::MAX } else { 0 };
                        Operand::Imm(Const::int(64, lane).splat(want.lanes()))
                    } else {
                        Operand::Imm(c.clone().splat(want.lanes()))
                    }
                } else {
                    o.clone()
                }
            }
            Operand::Val(v) => {
                let have = self.vty[v.0 as usize].clone().expect("mapped value");
                let mapped = self.vmap[v.0 as usize].clone().expect("mapped value");
                if &have == want {
                    return mapped;
                }
                self.resize(mapped, &have, want)
            }
        }
    }

    /// Resize a replicated value between vector shapes (mask width
    /// changes) or bridge scalar↔vector in `fp_only` mode.
    fn resize(&mut self, v: Operand, have: &Ty, want: &Ty) -> Operand {
        if have == want {
            return v;
        }
        match (have.is_vector(), want.is_vector()) {
            (true, true) => {
                let (hb, wb) = (have.elem().scalar_bits(), want.elem().scalar_bits());
                let op = if wb > hb {
                    CastOp::SExt
                } else if wb < hb {
                    CastOp::Trunc
                } else {
                    CastOp::Bitcast
                };
                Operand::Val(self.emit_val(Inst::Cast { op, to: want.clone(), val: v }))
            }
            (false, true) => {
                // Scalar → replicated (rescale).
                if have == &Ty::I1 {
                    let wide = self.emit_val(Inst::Cast { op: CastOp::ZExt, to: Ty::I64, val: v });
                    let spl = self.emit_val(Inst::Splat { val: wide.into(), ty: Ty::vec(Ty::I64, 4) });
                    let mask = self.emit_val(Inst::Cmp {
                        pred: CmpPred::Ne,
                        ty: Ty::vec(Ty::I64, 4),
                        a: spl.into(),
                        b: Operand::Imm(Const::i64(0).splat(4)),
                    });
                    self.resize(mask.into(), &canon_mask(), want)
                } else {
                    Operand::Val(self.emit_val(Inst::Splat { val: v, ty: want.clone() }))
                }
            }
            (true, false) => {
                // Replicated → scalar (descale): extract lane 0.
                let e = self.emit_val(Inst::ExtractElement {
                    vec: v,
                    idx: Operand::imm_i64(0),
                    ty: have.clone(),
                });
                if want == &Ty::I1 {
                    // Mask lane → truth value.
                    let elem = have.elem().clone();
                    Operand::Val(self.emit_val(Inst::Cmp {
                        pred: CmpPred::Ne,
                        ty: elem.clone(),
                        a: e.into(),
                        b: Operand::Imm(Const::zero(&elem)),
                    }))
                } else if have.elem() == want {
                    e.into()
                } else {
                    // Same storage, different logical type (ptr vs int).
                    let op = if want.is_ptr() { CastOp::IntToPtr } else { CastOp::PtrToInt };
                    Operand::Val(self.emit_val(Inst::Cast { op, to: want.clone(), val: e.into() }))
                }
            }
            (false, false) => v,
        }
    }

    fn def(&mut self, v: ValueId, op: Operand, ty: Ty) {
        self.vmap[v.0 as usize] = Some(op);
        self.vty[v.0 as usize] = Some(ty);
    }

    fn trap_block(&mut self) -> BlockId {
        if let Some(b) = self.trap_bb {
            return b;
        }
        let b = self.nf.add_block("elzar.no_majority");
        self.nf.set_term(b, Terminator::Unreachable);
        self.trap_bb = Some(b);
        b
    }

    /// Figure-8 data check: shuffle-rotate, xor, ptest, branch to a
    /// recovery block on divergence. Returns the (possibly recovered)
    /// value, positioned in a fresh continuation block.
    fn check(&mut self, v: Operand, ty: &Ty) -> Operand {
        if self.cfg.future.offload_checks {
            return v; // §VII-C: the FPGA validates loads/stores in-line.
        }
        let lanes = ty.lanes();
        // Bitcast float data to its integer twin so xor/ptest are legal
        // (vxorps in real AVX).
        let ity = Ty::vec(Ty::Int(ty.elem().scalar_bits() as u8), lanes);
        let vi = if ty.elem().is_float() {
            Operand::Val(self.emit_val(Inst::Cast { op: CastOp::Bitcast, to: ity.clone(), val: v.clone() }))
        } else if ty.elem().is_ptr() {
            Operand::Val(self.emit_val(Inst::Cast {
                op: CastOp::PtrToInt,
                to: Ty::vec(Ty::I64, lanes),
                val: v.clone(),
            }))
        } else {
            v.clone()
        };
        let ity = if ty.elem().is_ptr() { Ty::vec(Ty::I64, lanes) } else { ity };
        let rot: Vec<u8> = (0..lanes).map(|i| (i + 1) % lanes).collect();
        let sh = self.emit_val(Inst::Shuffle { a: vi.clone(), mask: rot, ty: ity.clone() });
        let d = self.emit_val(Inst::Bin { op: BinOp::Xor, ty: ity.clone(), a: vi, b: sh.into() });
        let flags = self.emit_val(Inst::Ptest { mask: d.into(), ty: ity });
        let pre = self.cur;
        let ok = self.nf.add_block("elzar.ok");
        let rec = self.nf.add_block("elzar.recover");
        self.nf.set_term(
            pre,
            Terminator::PtestBr { flags: flags.into(), all_false: ok, all_true: rec, mixed: rec },
        );
        // Recovery: majority vote in the runtime (slow path).
        self.cur = rec;
        let fixed = self
            .emit(Inst::Call {
                callee: Callee::Builtin(Builtin::Recover),
                args: vec![v.clone()],
                ret_ty: ty.clone(),
            })
            .expect("recover returns");
        self.nf.set_term(rec, Terminator::Br { target: ok });
        // Continuation: phi of original and recovered value.
        self.cur = ok;
        let phi = self.emit_val(Inst::Phi { ty: ty.clone(), incomings: vec![(pre, v), (rec, fixed.into())] });
        phi.into()
    }

    /// Check (when enabled) then extract the lane-0 scalar of a
    /// replicated operand — the Figure-6 wrapper before a sync use.
    fn checked_scalar(&mut self, o: &Operand, orig_ty: &Ty, do_check: bool) -> Operand {
        if !self.should_replicate(orig_ty) && !self.new_ty_is_vector(o) {
            return self.use_op(o, orig_ty);
        }
        let want = repl_ty(orig_ty);
        let mut v = self.use_op(o, &want);
        if do_check && !self.cfg.future.offload_checks {
            v = self.check(v, &want);
        }
        self.resize(v, &want, orig_ty)
    }

    fn new_ty_is_vector(&self, o: &Operand) -> bool {
        match o {
            Operand::Val(v) => self.vty[v.0 as usize].as_ref().map(|t| t.is_vector()).unwrap_or(false),
            Operand::Imm(_) => false,
        }
    }

    /// Broadcast a scalar result back into the replicated domain.
    fn rescale_def(&mut self, v: ValueId, scalar: Operand, orig_ty: &Ty) {
        if self.should_replicate(orig_ty) {
            let want = repl_ty(orig_ty);
            let wide = self.resize(scalar, orig_ty, &want);
            self.def(v, wide, want);
        } else {
            self.def(v, scalar, orig_ty.clone());
        }
    }

    fn run(mut self) -> Function {
        // Replicate parameters at entry (§III-B: "ILR replicates all
        // inputs … function arguments"; signatures stay scalar).
        self.cur = BlockId(0);
        for (i, pty) in self.orig.params.clone().iter().enumerate() {
            let pv = self.orig.param(i);
            let op: Operand = ValueId(pv.0).into();
            if self.should_replicate(pty) {
                let want = repl_ty(pty);
                let wide = self.resize(op, pty, &want);
                self.def(pv, wide, want);
            } else {
                self.def(pv, op, pty.clone());
            }
        }
        for bi in 0..self.orig.blocks.len() {
            self.cur = BlockId(bi as u32);
            // Re-point the cursor to the head block of this original
            // block's chain; checks will move it forward.
            let insts: Vec<_> = self.orig.blocks[bi].insts.clone();
            for iid in insts {
                let inst = self.orig.insts[iid.0 as usize].inst.clone();
                let result = self.orig.insts[iid.0 as usize].result;
                self.xform_inst(&inst, result);
            }
            let term = self.orig.blocks[bi].term.clone();
            self.xform_term(BlockId(bi as u32), &term);
        }
        self.fill_phis();
        self.nf
    }

    fn fill_phis(&mut self) {
        let fixups = std::mem::take(&mut self.phis);
        for fx in fixups {
            let mut incomings = vec![];
            for (pred, ov) in &fx.orig_incomings {
                let mapped = match ov {
                    Operand::Imm(c) => {
                        if fx.replicated && fx.ty.is_vector() {
                            if c.ty() == Ty::I1 {
                                let truth = matches!(c, Const::Int { value: 1, .. });
                                Operand::Imm(Const::int(64, if truth { u64::MAX } else { 0 }).splat(4))
                            } else {
                                Operand::Imm(c.clone().splat(fx.ty.lanes()))
                            }
                        } else {
                            ov.clone()
                        }
                    }
                    Operand::Val(v) => self.vmap[v.0 as usize].clone().expect("phi incoming mapped"),
                };
                for &exit in &self.exits[pred.0 as usize] {
                    incomings.push((exit, mapped.clone()));
                }
            }
            let iid = self.nf.def_inst(fx.new_phi).expect("phi inst");
            match &mut self.nf.insts[iid.0 as usize].inst {
                Inst::Phi { incomings: slot, .. } => *slot = incomings,
                _ => unreachable!(),
            }
        }
    }

    fn assert_scalar_input(&self, ty: &Ty) {
        assert!(
            !ty.is_vector(),
            "ELZAR input must be scalar code (disable vectorization, §IV-A); found {ty} in {}",
            self.orig.name
        );
    }

    fn xform_inst(&mut self, inst: &Inst, result: Option<ValueId>) {
        match inst {
            Inst::Bin { op, ty, a, b } => {
                self.assert_scalar_input(ty);
                let r = result.expect("bin yields");
                if !self.should_replicate(ty) {
                    let (na, nb) = (self.use_op(a, ty), self.use_op(b, ty));
                    let nv = self.emit_val(Inst::Bin { op: *op, ty: ty.clone(), a: na, b: nb });
                    self.def(r, nv.into(), ty.clone());
                    return;
                }
                let want = if *ty == Ty::I1 { canon_mask() } else { repl_ty(ty) };
                let (na, nb) = (self.use_op(a, &want), self.use_op(b, &want));
                let nv = self.emit_val(Inst::Bin { op: *op, ty: want.clone(), a: na, b: nb });
                self.def(r, nv.into(), want);
            }
            Inst::Cmp { pred, ty, a, b } => {
                self.assert_scalar_input(ty);
                let r = result.expect("cmp yields");
                if !self.should_replicate(ty) {
                    let (na, nb) = (self.use_op(a, ty), self.use_op(b, ty));
                    let nv = self.emit_val(Inst::Cmp { pred: *pred, ty: ty.clone(), a: na, b: nb });
                    self.def(r, nv.into(), Ty::I1);
                    return;
                }
                let want = repl_ty(ty);
                let (na, nb) = (self.use_op(a, &want), self.use_op(b, &want));
                let mask = self.emit_val(Inst::Cmp { pred: *pred, ty: want.clone(), a: na, b: nb });
                let natural = Ty::vec(Ty::Int(want.elem().scalar_bits() as u8), want.lanes());
                if self.cfg.fp_only {
                    // §V-B: fold the mask back to a scalar i1 so control
                    // flow stays scalar; check it first if enabled.
                    let mut m: Operand = mask.into();
                    if self.cfg.checks.branches {
                        m = self.check(m, &natural);
                    }
                    let s = self.resize(m, &natural, &Ty::I1);
                    self.def(r, s, Ty::I1);
                } else {
                    // Canonicalize to <4 x i64> (Figure 10's sext).
                    let canon = self.resize(mask.into(), &natural, &canon_mask());
                    self.def(r, canon, canon_mask());
                }
            }
            Inst::Cast { op, to, val } => {
                self.assert_scalar_input(to);
                let r = result.expect("cast yields");
                let from_ty = self.orig.operand_ty(val);
                if !self.should_replicate(to) || !self.should_replicate(&from_ty) {
                    // At least one side stays scalar (fp_only boundaries).
                    let s = self.checked_scalar(val, &from_ty, false);
                    let nv = self.emit_val(Inst::Cast { op: *op, to: to.clone(), val: s });
                    self.rescale_def(r, nv.into(), to);
                    return;
                }
                if from_ty == Ty::I1 {
                    // zext/sext from a mask: the mask *is* the sext.
                    let m = self.use_op(val, &canon_mask());
                    let want = repl_ty(to);
                    let resized = self.resize(m, &canon_mask(), &want);
                    let nv = match op {
                        CastOp::SExt => resized,
                        _ => {
                            // zext: mask & 1.
                            Operand::Val(self.emit_val(Inst::Bin {
                                op: BinOp::And,
                                ty: want.clone(),
                                a: resized,
                                b: Operand::Imm(Const::int(to.scalar_bits() as u8, 1).splat(want.lanes())),
                            }))
                        }
                    };
                    self.def(r, nv, want);
                    return;
                }
                if *to == Ty::I1 {
                    // trunc to i1 == (x & 1) != 0, kept as a mask.
                    let want = repl_ty(&from_ty);
                    let x = self.use_op(val, &want);
                    let one = self.emit_val(Inst::Bin {
                        op: BinOp::And,
                        ty: want.clone(),
                        a: x,
                        b: Operand::Imm(Const::int(from_ty.scalar_bits() as u8, 1).splat(want.lanes())),
                    });
                    let mask = self.emit_val(Inst::Cmp {
                        pred: CmpPred::Ne,
                        ty: want.clone(),
                        a: one.into(),
                        b: Operand::Imm(Const::zero(&from_ty).splat(want.lanes())),
                    });
                    let natural = Ty::vec(Ty::Int(want.elem().scalar_bits() as u8), want.lanes());
                    let canon = self.resize(mask.into(), &natural, &canon_mask());
                    self.def(r, canon, canon_mask());
                    return;
                }
                let fw = repl_ty(&from_ty);
                let tw = repl_ty(to);
                let x = self.use_op(val, &fw);
                let nv = self.emit_val(Inst::Cast { op: *op, to: tw.clone(), val: x });
                self.def(r, nv.into(), tw);
            }
            Inst::Load { ty, addr } => {
                self.assert_scalar_input(ty);
                let r = result.expect("load yields");
                if self.cfg.future.gather_scatter && self.should_replicate(&Ty::Ptr) {
                    // §VII-B gather: address lanes voted in hardware.
                    let av = self.use_op(addr, &repl_ty(&Ty::Ptr));
                    let want = repl_ty(ty);
                    if *ty == Ty::I1 {
                        let g = self
                            .emit_val(Inst::Gather { ty: Ty::vec(Ty::I1, Ty::I1.ymm_lanes()), addrs: av });
                        let canon =
                            self.resize(g.into(), &Ty::vec(Ty::I1, Ty::I1.ymm_lanes()), &canon_mask());
                        self.def(r, canon, canon_mask());
                    } else {
                        let g = self.emit_val(Inst::Gather { ty: want.clone(), addrs: av });
                        self.def(r, g.into(), want);
                    }
                    return;
                }
                let a = self.checked_scalar(addr, &Ty::Ptr, self.cfg.checks.loads);
                let lv = self.emit_val(Inst::Load { ty: ty.clone(), addr: a });
                self.rescale_def(r, lv.into(), ty);
            }
            Inst::Store { ty, val, addr } => {
                self.assert_scalar_input(ty);
                if self.cfg.future.gather_scatter && self.should_replicate(ty) && *ty != Ty::I1 {
                    let vv = self.use_op(val, &repl_ty(ty));
                    let av = self.use_op(addr, &repl_ty(&Ty::Ptr));
                    self.emit(Inst::Scatter { val: vv, addrs: av, ty: repl_ty(ty) });
                    return;
                }
                let v = self.checked_scalar(val, ty, self.cfg.checks.stores);
                let a = self.checked_scalar(addr, &Ty::Ptr, self.cfg.checks.stores);
                self.emit(Inst::Store { ty: ty.clone(), val: v, addr: a });
            }
            Inst::Gep { base, index, scale } => {
                // Address arithmetic is ordinary data flow — replicated.
                let r = result.expect("gep yields");
                if !self.should_replicate(&Ty::Ptr) {
                    let nb = self.checked_scalar(base, &Ty::Ptr, false);
                    let idx_ty = self.orig.operand_ty(index);
                    let ni = self.checked_scalar(index, &idx_ty, false);
                    let nv = self.emit_val(Inst::Gep { base: nb, index: ni, scale: *scale });
                    self.def(r, nv.into(), Ty::Ptr);
                    return;
                }
                let ity = Ty::vec(Ty::I64, 4);
                let pty = repl_ty(&Ty::Ptr);
                let idx_orig_ty = self.orig.operand_ty(index);
                let idx_wide = {
                    let w = repl_ty(&idx_orig_ty);
                    let raw = self.use_op(index, &w);
                    self.resize(raw, &w, &ity)
                };
                let scaled = self.emit_val(Inst::Bin {
                    op: BinOp::Mul,
                    ty: ity.clone(),
                    a: idx_wide,
                    b: Operand::Imm(Const::i64(i64::from(*scale)).splat(4)),
                });
                let basev = self.use_op(base, &pty);
                let base_i = self.emit_val(Inst::Cast { op: CastOp::PtrToInt, to: ity.clone(), val: basev });
                let sum = self.emit_val(Inst::Bin {
                    op: BinOp::Add,
                    ty: ity.clone(),
                    a: base_i.into(),
                    b: scaled.into(),
                });
                let nv = self.emit_val(Inst::Cast { op: CastOp::IntToPtr, to: pty.clone(), val: sum.into() });
                self.def(r, nv.into(), pty);
            }
            Inst::Alloca { ty, count } => {
                let r = result.expect("alloca yields");
                let cty = self.orig.operand_ty(count);
                let c = self.checked_scalar(count, &cty, false);
                let nv = self.emit_val(Inst::Alloca { ty: ty.clone(), count: c });
                self.rescale_def(r, nv.into(), &Ty::Ptr);
            }
            Inst::Select { cond, ty, a, b } => {
                self.assert_scalar_input(ty);
                let r = result.expect("select yields");
                if !self.should_replicate(ty) {
                    let c = self.checked_scalar(cond, &Ty::I1, false);
                    let (na, nb) = (self.use_op(a, ty), self.use_op(b, ty));
                    let nv = self.emit_val(Inst::Select { cond: c, ty: ty.clone(), a: na, b: nb });
                    self.def(r, nv.into(), ty.clone());
                    return;
                }
                let want = if *ty == Ty::I1 { canon_mask() } else { repl_ty(ty) };
                // Blend mask: integer mask of the data's geometry.
                let mty = Ty::vec(Ty::Int(want.elem().scalar_bits() as u8), want.lanes());
                let cond_ty = self.orig.operand_ty(cond);
                let c = if cond_ty == Ty::I1 && self.should_replicate(&Ty::I1) && !self.cfg.fp_only {
                    let cm = self.use_op(cond, &canon_mask());
                    self.resize(cm, &canon_mask(), &mty)
                } else {
                    // Scalar condition (fp_only): keep a scalar select.
                    let sc = self.checked_scalar(cond, &Ty::I1, false);
                    let (na, nb) = (self.use_op(a, &want), self.use_op(b, &want));
                    let nv = self.emit_val(Inst::Select { cond: sc, ty: want.clone(), a: na, b: nb });
                    self.def(r, nv.into(), want);
                    return;
                };
                let (na, nb) = (self.use_op(a, &want), self.use_op(b, &want));
                let nv = self.emit_val(Inst::Select { cond: c, ty: want.clone(), a: na, b: nb });
                self.def(r, nv.into(), want);
            }
            Inst::Phi { ty, incomings } => {
                self.assert_scalar_input(ty);
                let r = result.expect("phi yields");
                let replicated = self.should_replicate(ty);
                let nty = if replicated {
                    if *ty == Ty::I1 {
                        canon_mask()
                    } else {
                        repl_ty(ty)
                    }
                } else {
                    ty.clone()
                };
                let phi = self.emit_val(Inst::Phi { ty: nty.clone(), incomings: vec![] });
                self.phis.push(PhiFixup {
                    new_phi: phi,
                    ty: nty.clone(),
                    replicated,
                    orig_incomings: incomings.clone(),
                });
                self.def(r, phi.into(), nty);
            }
            Inst::Call { callee, args, ret_ty } => {
                // Sync instruction: check + extract every argument,
                // execute once, broadcast the result (§III-C step 1).
                let mut nargs = vec![];
                for a in args {
                    let aty = self.orig.operand_ty(a);
                    nargs.push(self.checked_scalar(a, &aty, self.cfg.checks.others));
                }
                let nv = self.emit(Inst::Call { callee: *callee, args: nargs, ret_ty: ret_ty.clone() });
                if let (Some(r), Some(nv)) = (result, nv) {
                    self.rescale_def(r, nv.into(), ret_ty);
                }
            }
            Inst::AtomicRmw { op, ty, addr, val } => {
                let r = result.expect("atomicrmw yields");
                let a = self.checked_scalar(addr, &Ty::Ptr, self.cfg.checks.others);
                let v = self.checked_scalar(val, ty, self.cfg.checks.others);
                let nv = self.emit_val(Inst::AtomicRmw { op: *op, ty: ty.clone(), addr: a, val: v });
                self.rescale_def(r, nv.into(), ty);
            }
            Inst::CmpXchg { ty, addr, expected, new } => {
                let r = result.expect("cmpxchg yields");
                let a = self.checked_scalar(addr, &Ty::Ptr, self.cfg.checks.others);
                let e = self.checked_scalar(expected, ty, self.cfg.checks.others);
                let n = self.checked_scalar(new, ty, self.cfg.checks.others);
                let nv = self.emit_val(Inst::CmpXchg { ty: ty.clone(), addr: a, expected: e, new: n });
                self.rescale_def(r, nv.into(), ty);
            }
            Inst::Fence => {
                self.emit(Inst::Fence);
            }
            Inst::ExtractElement { .. }
            | Inst::InsertElement { .. }
            | Inst::Shuffle { .. }
            | Inst::Splat { .. }
            | Inst::Ptest { .. }
            | Inst::Gather { .. }
            | Inst::Scatter { .. } => {
                panic!("ELZAR input must be scalar code; found a vector instruction in {}", self.orig.name)
            }
        }
    }

    fn xform_term(&mut self, orig_block: BlockId, term: &Terminator) {
        match term {
            Terminator::Br { target } => {
                self.nf.set_term(self.cur, Terminator::Br { target: *target });
                self.exits[orig_block.0 as usize].push(self.cur);
            }
            Terminator::CondBr { cond, then_bb, else_bb } => {
                let cond_ty = self.orig.operand_ty(cond);
                let scalar_branch = !self.should_replicate(&Ty::I1)
                    || self.cfg.fp_only
                    || !self.new_ty_is_vector(cond) && matches!(cond, Operand::Val(_))
                    || matches!(cond, Operand::Imm(_));
                if scalar_branch {
                    let c = self.checked_scalar(cond, &cond_ty, false);
                    self.nf.set_term(
                        self.cur,
                        Terminator::CondBr { cond: c, then_bb: *then_bb, else_bb: *else_bb },
                    );
                    self.exits[orig_block.0 as usize].push(self.cur);
                    return;
                }
                let mask = self.use_op(cond, &canon_mask());
                let flags: Operand = if self.cfg.future.cmp_flags {
                    // §VII-B: the compare already toggled FLAGS.
                    mask.clone()
                } else {
                    self.emit_val(Inst::Ptest { mask: mask.clone(), ty: canon_mask() }).into()
                };
                let pre = self.cur;
                if self.cfg.checks.branches {
                    // Figure 9: mixed = fault, branch to recovery.
                    let rec = self.nf.add_block("elzar.br_recover");
                    self.nf.set_term(
                        pre,
                        Terminator::PtestBr { flags, all_false: *else_bb, all_true: *then_bb, mixed: rec },
                    );
                    self.cur = rec;
                    let fixed = self
                        .emit(Inst::Call {
                            callee: Callee::Builtin(Builtin::Recover),
                            args: vec![mask],
                            ret_ty: canon_mask(),
                        })
                        .expect("recover returns");
                    let flags2: Operand = if self.cfg.future.cmp_flags {
                        fixed.into()
                    } else {
                        self.emit_val(Inst::Ptest { mask: fixed.into(), ty: canon_mask() }).into()
                    };
                    let trap = self.trap_block();
                    self.nf.set_term(
                        rec,
                        Terminator::PtestBr {
                            flags: flags2,
                            all_false: *else_bb,
                            all_true: *then_bb,
                            mixed: trap,
                        },
                    );
                    self.exits[orig_block.0 as usize].push(pre);
                    self.exits[orig_block.0 as usize].push(rec);
                } else {
                    // Unchecked: a mixed mask falls through like `jne`.
                    self.nf.set_term(
                        pre,
                        Terminator::PtestBr {
                            flags,
                            all_false: *else_bb,
                            all_true: *then_bb,
                            mixed: *then_bb,
                        },
                    );
                    self.exits[orig_block.0 as usize].push(pre);
                }
            }
            Terminator::PtestBr { .. } => {
                panic!("ELZAR input must not contain ptest_br (already hardened?)")
            }
            Terminator::Ret { val } => {
                let nv = val.as_ref().map(|v| {
                    let vt = self.orig.operand_ty(v);
                    self.checked_scalar(v, &vt, self.cfg.checks.others)
                });
                self.nf.set_term(self.cur, Terminator::Ret { val: nv });
            }
            Terminator::Unreachable => {
                self.nf.set_term(self.cur, Terminator::Unreachable);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elzar_ir::builder::{c64, FuncBuilder};
    use elzar_ir::verify::verify_module;

    fn simple_module() -> Module {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let buf = b.alloca(Ty::I64, c64(8));
        b.store(Ty::I64, c64(5), buf);
        let acc = b.alloca(Ty::I64, c64(1));
        b.store(Ty::I64, c64(0), acc);
        b.counted_loop(c64(0), c64(10), |b, i| {
            let p = b.gep(buf, i, 0); // same cell
            let v = b.load(Ty::I64, p);
            let a = b.load(Ty::I64, acc);
            let s = b.add(a, v);
            b.store(Ty::I64, s, acc);
        });
        let v = b.load(Ty::I64, acc);
        b.ret(v);
        m.add_func(b.finish());
        m
    }

    #[test]
    fn hardened_module_verifies() {
        let m = simple_module();
        let h = harden_module(&m, &ElzarConfig::default());
        verify_module(&h).unwrap_or_else(|e| panic!("{:#?}", &e[..e.len().min(5)]));
    }

    #[test]
    fn hardened_module_verifies_under_all_configs() {
        let m = simple_module();
        for checks in [
            CheckConfig::all(),
            CheckConfig::none(),
            CheckConfig { loads: false, ..CheckConfig::all() },
            CheckConfig { loads: false, stores: false, ..CheckConfig::all() },
        ] {
            for fp_only in [false, true] {
                for future in [
                    FutureAvx::default(),
                    FutureAvx::all(),
                    FutureAvx { gather_scatter: true, ..FutureAvx::default() },
                    FutureAvx { cmp_flags: true, ..FutureAvx::default() },
                ] {
                    let cfg = ElzarConfig { checks, fp_only, future };
                    let h = harden_module(&m, &cfg);
                    verify_module(&h).unwrap_or_else(|e| panic!("cfg {cfg:?}: {:#?}", &e[..e.len().min(5)]));
                }
            }
        }
    }

    #[test]
    fn instruction_blowup_is_moderate() {
        // ELZAR's selling point vs SWIFT-R: replication adds data width,
        // not instruction count — but wrappers and checks still add a
        // multiple on memory-heavy code (Table III: 1.7–10×).
        let m = simple_module();
        let h = harden_module(&m, &ElzarConfig::default());
        let orig = m.num_insts();
        let hardened = h.num_insts();
        let factor = hardened as f64 / orig as f64;
        assert!(factor > 1.5 && factor < 12.0, "factor {factor}");
    }

    #[test]
    fn unhardened_functions_pass_through() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("lib", vec![Ty::I64], Ty::I64);
        let p = b.param(0);
        let r = b.add(p, c64(1));
        b.ret(r);
        let mut f = b.finish();
        f.hardened = false;
        m.add_func(f);
        let h = harden_module(&m, &ElzarConfig::default());
        assert_eq!(h.funcs[0].num_insts(), m.funcs[0].num_insts());
    }

    #[test]
    fn branch_gets_ptest_form() {
        let m = simple_module();
        let h = harden_module(&m, &ElzarConfig::default());
        let f = &h.funcs[0];
        let has_ptest_br = f.blocks.iter().any(|b| matches!(b.term, Terminator::PtestBr { .. }));
        assert!(has_ptest_br, "hardened loops must branch through ptest");
        let has_recover = f.blocks.iter().flat_map(|b| b.insts.iter()).any(|&iid| {
            matches!(
                &f.insts[iid.0 as usize].inst,
                Inst::Call { callee: Callee::Builtin(Builtin::Recover), .. }
            )
        });
        assert!(has_recover, "recovery routine must be reachable");
    }

    #[test]
    fn future_avx_removes_wrappers() {
        let m = simple_module();
        let base = harden_module(&m, &ElzarConfig::default());
        let fut = harden_module(&m, &ElzarConfig { future: FutureAvx::all(), ..ElzarConfig::default() });
        assert!(fut.num_insts() < base.num_insts(), "{} !< {}", fut.num_insts(), base.num_insts());
        // Gather/scatter appear, extract wrappers (mostly) disappear.
        let f = &fut.funcs[0];
        let has_gather = f
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .any(|&iid| matches!(&f.insts[iid.0 as usize].inst, Inst::Gather { .. }));
        assert!(has_gather);
    }
}
