//! SWIFT-R: the classic instruction-triplication ILR baseline
//! (Reis et al., "Automatic instruction-level software-only recovery";
//! §II-B and §V-D of the ELZAR paper).
//!
//! Every computational instruction is emitted three times, creating three
//! independent scalar data flows. Before each synchronization instruction
//! (load/store address, store value, call arguments, return values,
//! branch conditions, atomics) the three copies of each operand are
//! majority-voted with a `cmp`+`select` cascade and the voted value is
//! used by the single executed sync instruction; results flow back into
//! all three copies via register moves. No extra control flow is added —
//! voting is branch-free, which is why SWIFT-R enjoys high ILP
//! (Table III) at the price of a ~3× instruction blow-up.

use elzar_ir::inst::{Inst, Terminator};
use elzar_ir::module::{Function, Module};
use elzar_ir::types::Ty;
use elzar_ir::value::{BlockId, Operand, ValueId};
use elzar_ir::{BinOp, CmpPred};

/// Harden every `hardened` function by SWIFT-R triplication.
///
/// # Panics
/// Panics if a hardened function contains vector instructions.
pub fn harden_module(m: &Module) -> Module {
    let mut out = Module::new(format!("{}.swiftr", m.name));
    out.globals = m.globals.clone();
    for f in &m.funcs {
        if f.hardened {
            out.funcs.push(transform(f));
        } else {
            out.funcs.push(f.clone());
        }
    }
    out
}

struct PhiFixup {
    new_phis: [ValueId; 3],
    orig_incomings: Vec<(BlockId, Operand)>,
}

struct Xf<'a> {
    orig: &'a Function,
    nf: Function,
    cur: BlockId,
    /// Three copies per original value.
    vmap: Vec<Option<[Operand; 3]>>,
    phis: Vec<PhiFixup>,
}

fn transform(orig: &Function) -> Function {
    let mut nf = Function::new(orig.name.clone(), orig.params.clone(), orig.ret_ty.clone());
    nf.hardened = true;
    for b in orig.blocks.iter().skip(1) {
        nf.add_block(b.name.clone());
    }
    let mut x = Xf { orig, nf, cur: BlockId(0), vmap: vec![None; orig.vals.len()], phis: vec![] };

    // Parameters: replicate inputs into three flows (two extra moves).
    for (i, pty) in orig.params.iter().enumerate() {
        let pv = orig.param(i);
        let p: Operand = ValueId(pv.0).into();
        let copies = x.triplicate_input(p, pty);
        x.vmap[pv.0 as usize] = Some(copies);
    }

    for bi in 0..orig.blocks.len() {
        x.cur = BlockId(bi as u32);
        for &iid in &orig.blocks[bi].insts {
            let inst = orig.insts[iid.0 as usize].inst.clone();
            let result = orig.insts[iid.0 as usize].result;
            x.xform_inst(&inst, result);
        }
        x.xform_term(&orig.blocks[bi].term.clone());
    }
    x.fill_phis();
    x.nf
}

impl<'a> Xf<'a> {
    fn emit(&mut self, inst: Inst) -> Option<ValueId> {
        self.nf.push_inst(self.cur, inst)
    }

    fn emit_val(&mut self, inst: Inst) -> ValueId {
        self.emit(inst).expect("yields a value")
    }

    /// Copy a just-produced input value into two shadow registers
    /// (`or x, 0` — a register move the optimizer must not fold).
    fn triplicate_input(&mut self, v: Operand, ty: &Ty) -> [Operand; 3] {
        assert!(!ty.is_vector(), "SWIFT-R input must be scalar code");
        if ty.is_float() || ty.is_ptr() || *ty == Ty::I1 {
            // Moves: modeled as selects on a constant-true condition for
            // pointer/float types (cmov-style copies).
            let c1 = self.emit_val(Inst::Select {
                cond: Operand::Imm(elzar_ir::Const::bool(true)),
                ty: ty.clone(),
                a: v.clone(),
                b: v.clone(),
            });
            let c2 = self.emit_val(Inst::Select {
                cond: Operand::Imm(elzar_ir::Const::bool(true)),
                ty: ty.clone(),
                a: v.clone(),
                b: v.clone(),
            });
            [v, c1.into(), c2.into()]
        } else {
            let zero = Operand::Imm(elzar_ir::Const::int(ty.scalar_bits() as u8, 0));
            let c1 =
                self.emit_val(Inst::Bin { op: BinOp::Or, ty: ty.clone(), a: v.clone(), b: zero.clone() });
            let c2 = self.emit_val(Inst::Bin { op: BinOp::Or, ty: ty.clone(), a: v.clone(), b: zero });
            [v, c1.into(), c2.into()]
        }
    }

    fn copies(&mut self, o: &Operand) -> [Operand; 3] {
        match o {
            Operand::Imm(_) => [o.clone(), o.clone(), o.clone()],
            Operand::Val(v) => self.vmap[v.0 as usize].clone().expect("mapped"),
        }
    }

    /// Majority vote: `select(eq(x0, x1), x0, x2)` — 2 instructions
    /// (Figure 5b's `majority(...)`).
    fn vote(&mut self, o: &Operand, ty: &Ty) -> Operand {
        let [x0, x1, x2] = self.copies(o);
        if matches!(o, Operand::Imm(_)) {
            return x0;
        }
        let pred = if ty.is_float() { CmpPred::FOeq } else { CmpPred::Eq };
        let cmp_ty = if ty.is_ptr() { Ty::I64 } else { ty.clone() };
        let (a0, a1) = if ty.is_ptr() {
            // Compare pointers as integers.
            let i0 =
                self.emit_val(Inst::Cast { op: elzar_ir::CastOp::PtrToInt, to: Ty::I64, val: x0.clone() });
            let i1 =
                self.emit_val(Inst::Cast { op: elzar_ir::CastOp::PtrToInt, to: Ty::I64, val: x1.clone() });
            (Operand::Val(i0), Operand::Val(i1))
        } else {
            (x0.clone(), x1.clone())
        };
        let eq = self.emit_val(Inst::Cmp { pred, ty: cmp_ty, a: a0, b: a1 });
        let m = self.emit_val(Inst::Select { cond: eq.into(), ty: ty.clone(), a: x0, b: x2 });
        m.into()
    }

    fn def3(&mut self, r: ValueId, copies: [Operand; 3]) {
        self.vmap[r.0 as usize] = Some(copies);
    }

    fn xform_inst(&mut self, inst: &Inst, result: Option<ValueId>) {
        match inst {
            Inst::Bin { op, ty, a, b } => {
                assert!(!ty.is_vector(), "SWIFT-R input must be scalar");
                let r = result.expect("yields");
                let ca = self.copies(a);
                let cb = self.copies(b);
                let mut out: Vec<Operand> = vec![];
                for k in 0..3 {
                    let v = self.emit_val(Inst::Bin {
                        op: *op,
                        ty: ty.clone(),
                        a: ca[k].clone(),
                        b: cb[k].clone(),
                    });
                    out.push(v.into());
                }
                self.def3(r, [out[0].clone(), out[1].clone(), out[2].clone()]);
            }
            Inst::Cmp { pred, ty, a, b } => {
                let r = result.expect("yields");
                let ca = self.copies(a);
                let cb = self.copies(b);
                let mut out: Vec<Operand> = vec![];
                for k in 0..3 {
                    let v = self.emit_val(Inst::Cmp {
                        pred: *pred,
                        ty: ty.clone(),
                        a: ca[k].clone(),
                        b: cb[k].clone(),
                    });
                    out.push(v.into());
                }
                self.def3(r, [out[0].clone(), out[1].clone(), out[2].clone()]);
            }
            Inst::Cast { op, to, val } => {
                let r = result.expect("yields");
                let cv = self.copies(val);
                let mut out: Vec<Operand> = vec![];
                for item in cv.iter() {
                    let v = self.emit_val(Inst::Cast { op: *op, to: to.clone(), val: item.clone() });
                    out.push(v.into());
                }
                self.def3(r, [out[0].clone(), out[1].clone(), out[2].clone()]);
            }
            Inst::Gep { base, index, scale } => {
                let r = result.expect("yields");
                let cb = self.copies(base);
                let ci = self.copies(index);
                let mut out: Vec<Operand> = vec![];
                for k in 0..3 {
                    let v =
                        self.emit_val(Inst::Gep { base: cb[k].clone(), index: ci[k].clone(), scale: *scale });
                    out.push(v.into());
                }
                self.def3(r, [out[0].clone(), out[1].clone(), out[2].clone()]);
            }
            Inst::Load { ty, addr } => {
                // Vote the address, load once, fan out (Figure 5b).
                let r = result.expect("yields");
                let a = self.vote(addr, &Ty::Ptr);
                let lv = self.emit_val(Inst::Load { ty: ty.clone(), addr: a });
                let copies = self.triplicate_input(lv.into(), ty);
                self.def3(r, copies);
            }
            Inst::Store { ty, val, addr } => {
                let v = self.vote(val, ty);
                let a = self.vote(addr, &Ty::Ptr);
                self.emit(Inst::Store { ty: ty.clone(), val: v, addr: a });
            }
            Inst::Alloca { ty, count } => {
                let r = result.expect("yields");
                let c = self.vote(count, &self.orig.operand_ty(count));
                let p = self.emit_val(Inst::Alloca { ty: ty.clone(), count: c });
                let copies = self.triplicate_input(p.into(), &Ty::Ptr);
                self.def3(r, copies);
            }
            Inst::Select { cond, ty, a, b } => {
                let r = result.expect("yields");
                let cc = self.copies(cond);
                let ca = self.copies(a);
                let cb = self.copies(b);
                let mut out: Vec<Operand> = vec![];
                for k in 0..3 {
                    let v = self.emit_val(Inst::Select {
                        cond: cc[k].clone(),
                        ty: ty.clone(),
                        a: ca[k].clone(),
                        b: cb[k].clone(),
                    });
                    out.push(v.into());
                }
                self.def3(r, [out[0].clone(), out[1].clone(), out[2].clone()]);
            }
            Inst::Phi { ty, incomings } => {
                let r = result.expect("yields");
                let p0 = self.emit_val(Inst::Phi { ty: ty.clone(), incomings: vec![] });
                let p1 = self.emit_val(Inst::Phi { ty: ty.clone(), incomings: vec![] });
                let p2 = self.emit_val(Inst::Phi { ty: ty.clone(), incomings: vec![] });
                self.phis.push(PhiFixup { new_phis: [p0, p1, p2], orig_incomings: incomings.clone() });
                self.def3(r, [p0.into(), p1.into(), p2.into()]);
            }
            Inst::Call { callee, args, ret_ty } => {
                let mut nargs = vec![];
                for a in args {
                    let aty = self.orig.operand_ty(a);
                    nargs.push(self.vote(a, &aty));
                }
                let nv = self.emit(Inst::Call { callee: *callee, args: nargs, ret_ty: ret_ty.clone() });
                if let (Some(r), Some(nv)) = (result, nv) {
                    let copies = self.triplicate_input(nv.into(), ret_ty);
                    self.def3(r, copies);
                }
            }
            Inst::AtomicRmw { op, ty, addr, val } => {
                let r = result.expect("yields");
                let a = self.vote(addr, &Ty::Ptr);
                let v = self.vote(val, ty);
                let nv = self.emit_val(Inst::AtomicRmw { op: *op, ty: ty.clone(), addr: a, val: v });
                let copies = self.triplicate_input(nv.into(), ty);
                self.def3(r, copies);
            }
            Inst::CmpXchg { ty, addr, expected, new } => {
                let r = result.expect("yields");
                let a = self.vote(addr, &Ty::Ptr);
                let e = self.vote(expected, ty);
                let n = self.vote(new, ty);
                let nv = self.emit_val(Inst::CmpXchg { ty: ty.clone(), addr: a, expected: e, new: n });
                let copies = self.triplicate_input(nv.into(), ty);
                self.def3(r, copies);
            }
            Inst::Fence => {
                self.emit(Inst::Fence);
            }
            Inst::ExtractElement { .. }
            | Inst::InsertElement { .. }
            | Inst::Shuffle { .. }
            | Inst::Splat { .. }
            | Inst::Ptest { .. }
            | Inst::Gather { .. }
            | Inst::Scatter { .. } => {
                panic!("SWIFT-R input must be scalar code; found vector instruction in {}", self.orig.name)
            }
        }
    }

    fn xform_term(&mut self, term: &Terminator) {
        match term {
            Terminator::Br { target } => self.nf.set_term(self.cur, Terminator::Br { target: *target }),
            Terminator::CondBr { cond, then_bb, else_bb } => {
                // Vote the branch condition (Figure 5b's majority before
                // the compare-and-jump).
                let c = self.vote(cond, &Ty::I1);
                self.nf
                    .set_term(self.cur, Terminator::CondBr { cond: c, then_bb: *then_bb, else_bb: *else_bb });
            }
            Terminator::PtestBr { .. } => panic!("SWIFT-R input must not contain ptest_br"),
            Terminator::Ret { val } => {
                let nv = val.as_ref().map(|v| {
                    let ty = self.orig.operand_ty(v);
                    self.vote(v, &ty)
                });
                self.nf.set_term(self.cur, Terminator::Ret { val: nv });
            }
            Terminator::Unreachable => self.nf.set_term(self.cur, Terminator::Unreachable),
        }
    }

    fn fill_phis(&mut self) {
        let fixups = std::mem::take(&mut self.phis);
        for fx in fixups {
            for k in 0..3 {
                let incomings: Vec<(BlockId, Operand)> = fx
                    .orig_incomings
                    .iter()
                    .map(|(p, ov)| {
                        let mapped = match ov {
                            Operand::Imm(_) => ov.clone(),
                            Operand::Val(v) => self.vmap[v.0 as usize].clone().expect("mapped")[k].clone(),
                        };
                        (*p, mapped)
                    })
                    .collect();
                let iid = self.nf.def_inst(fx.new_phis[k]).expect("phi");
                match &mut self.nf.insts[iid.0 as usize].inst {
                    Inst::Phi { incomings: slot, .. } => *slot = incomings,
                    _ => unreachable!(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elzar_ir::builder::{c64, FuncBuilder};
    use elzar_ir::verify::verify_module;

    fn simple_module() -> Module {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let acc = b.alloca(Ty::I64, c64(1));
        b.store(Ty::I64, c64(0), acc);
        b.counted_loop(c64(0), c64(10), |b, i| {
            let a = b.load(Ty::I64, acc);
            let s = b.add(a, i);
            b.store(Ty::I64, s, acc);
        });
        let v = b.load(Ty::I64, acc);
        b.ret(v);
        m.add_func(b.finish());
        m
    }

    #[test]
    fn swiftr_module_verifies() {
        let m = simple_module();
        let h = harden_module(&m);
        verify_module(&h).unwrap_or_else(|e| panic!("{:#?}", &e[..e.len().min(5)]));
    }

    #[test]
    fn triplication_blows_up_instructions_about_3x() {
        let m = simple_module();
        let h = harden_module(&m);
        let factor = h.num_insts() as f64 / m.num_insts() as f64;
        // Table III reports 3.4–11.6× for SWIFT-R (voting included).
        assert!(factor > 2.0 && factor < 8.0, "factor {factor}");
    }

    #[test]
    fn no_extra_blocks_added() {
        // SWIFT-R voting is branch-free (select-based).
        let m = simple_module();
        let h = harden_module(&m);
        assert_eq!(m.funcs[0].blocks.len(), h.funcs[0].blocks.len());
    }

    #[test]
    fn unhardened_functions_pass_through() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("lib", vec![], Ty::Void);
        b.ret_void();
        let mut f = b.finish();
        f.hardened = false;
        m.add_func(f);
        let h = harden_module(&m);
        assert_eq!(h.funcs[0].num_insts(), 0);
    }
}
