//! Dead-code elimination for pure instructions.
//!
//! Mark-and-sweep over a function: instructions with side effects
//! (synchronization instructions per §III-B plus terminator operands) are
//! roots; unused pure computations are deleted. Used as a hygiene pass
//! after other transformations.

use elzar_ir::inst::Inst;
use elzar_ir::module::{Function, Module};
use elzar_ir::value::{Operand, ValueId};

/// Remove dead pure instructions from every function.
/// Returns the number of instructions removed.
pub fn dce_module(m: &mut Module) -> usize {
    m.funcs.iter_mut().map(dce_function).sum()
}

/// Remove dead pure instructions from one function.
pub fn dce_function(f: &mut Function) -> usize {
    let n_vals = f.vals.len();
    let mut live = vec![false; n_vals];
    let mut work: Vec<ValueId> = vec![];
    let mark = |o: &Operand, live: &mut Vec<bool>, work: &mut Vec<ValueId>| {
        if let Operand::Val(v) = o {
            if !live[v.0 as usize] {
                live[v.0 as usize] = true;
                work.push(*v);
            }
        }
    };
    // Roots: operands of side-effecting instructions and terminators.
    for b in &f.blocks {
        for &iid in &b.insts {
            let inst = &f.insts[iid.0 as usize].inst;
            if inst.is_sync() || matches!(inst, Inst::Fence) {
                inst.for_each_operand(|o| mark(o, &mut live, &mut work));
                // The instruction itself is kept; its result is live.
                if let Some(r) = f.insts[iid.0 as usize].result {
                    live[r.0 as usize] = true;
                }
            }
        }
        b.term.for_each_operand(|o| mark(o, &mut live, &mut work));
    }
    // Propagate.
    while let Some(v) = work.pop() {
        if let Some(iid) = f.def_inst(v) {
            let inst = f.insts[iid.0 as usize].inst.clone();
            inst.for_each_operand(|o| mark(o, &mut live, &mut work));
        }
    }
    // Sweep: drop pure instructions whose results are dead.
    let mut removed = 0;
    for b in &mut f.blocks {
        b.insts.retain(|&iid| {
            let data = &f.insts[iid.0 as usize];
            let keep = match data.result {
                None => true, // side-effecting or void
                Some(r) => data.inst.is_sync() || live[r.0 as usize],
            };
            if !keep {
                removed += 1;
            }
            keep
        });
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use elzar_ir::builder::{c64, FuncBuilder};
    use elzar_ir::types::Ty;
    use elzar_ir::verify::verify_module;

    #[test]
    fn removes_unused_arithmetic_keeps_stores() {
        let mut m = elzar_ir::Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let p = b.alloca(Ty::I64, c64(1));
        let dead = b.add(c64(1), c64(2));
        let _dead2 = b.mul(dead, c64(3));
        let kept = b.add(c64(4), c64(5));
        b.store(Ty::I64, kept, p);
        let v = b.load(Ty::I64, p);
        b.ret(v);
        m.add_func(b.finish());
        let removed = dce_module(&mut m);
        assert_eq!(removed, 2);
        verify_module(&m).expect("still valid after DCE");
        assert_eq!(m.funcs[0].num_insts(), 4); // alloca, add, store, load
    }

    #[test]
    fn keeps_values_reachable_through_phis() {
        let mut m = elzar_ir::Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let (_h, _e, _i) = b.counted_loop(c64(0), c64(3), |_b, _i| {});
        b.ret(c64(0));
        m.add_func(b.finish());
        let before = m.num_insts();
        // The loop's phi/cmp/increment are all live via the terminator.
        let removed = dce_module(&mut m);
        assert_eq!(removed, 0);
        assert_eq!(m.num_insts(), before);
    }
}
