//! Pass manager: named, composable IR transformation pipelines.
//!
//! The crate's transformations ([`crate::elzar`], [`crate::swiftr`],
//! [`crate::vectorize`], [`crate::decelerate`], [`crate::dce`]) are
//! exposed here behind one [`Pass`] trait plus a data-only descriptor
//! ([`PassDesc`]), so a build pipeline is a *value* —
//! `Vec<PassDesc>` — rather than a hard-coded `match`. The
//! [`PassManager`] runs a pipeline with per-pass post-verification
//! (every pass must leave the module valid under
//! [`elzar_ir::verify::verify_module`]) and wall-clock timing stats,
//! and keeps global counters so harnesses can assert how many builds
//! actually happened (e.g. "this sweep lowered each artifact exactly
//! once").
//!
//! Pipelines can be overridden from the environment for ablations:
//! `ELZAR_PASSES="vectorize,dce"` (comma-separated registry names, see
//! [`registry`] and [`parse_pipeline`]) replaces whatever pipeline a
//! mode would normally request.
//!
//! ```
//! use elzar_ir::builder::{c64, FuncBuilder};
//! use elzar_ir::{Module, Ty};
//! use elzar_passes::pm::{PassDesc, PassManager};
//!
//! let mut m = Module::new("demo");
//! let mut b = FuncBuilder::new("main", vec![], Ty::I64);
//! let x = b.add(c64(40), c64(2));
//! b.ret(x);
//! m.add_func(b.finish());
//!
//! let pm = PassManager::new();
//! let (hardened, stats) = pm.run(&m, &[PassDesc::elzar_default()]);
//! assert_eq!(stats.len(), 1);
//! assert_eq!(stats[0].name, "elzar");
//! elzar_ir::verify::verify_module(&hardened).unwrap();
//! ```

use crate::elzar::{harden_module as elzar_harden, ElzarConfig};
use crate::{dce, decelerate_module, swiftr, vectorize_module};
use elzar_ir::Module;
use elzar_obs::debug;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A named module-to-module transformation.
///
/// Passes take and return owned modules: several of the underlying
/// transformations are rebuilding (hardening emits a fresh module), and
/// in-place ones simply mutate and hand the module back.
pub trait Pass: Sync {
    /// Registry name (stable; used by `ELZAR_PASSES` and reports).
    fn name(&self) -> &'static str;
    /// Apply the transformation.
    fn run(&self, m: Module) -> Module;
}

/// Data-only descriptor of a pass instance — the unit build pipelines
/// are made of. `Mode::pipeline()` (in the `elzar` crate) maps every
/// build mode to a `Vec<PassDesc>`, and ablation overrides parse into
/// the same type.
#[derive(Clone, PartialEq, Debug)]
pub enum PassDesc {
    /// Innermost-loop vectorization (the Figure 1 "native" builds).
    Vectorize,
    /// ELZAR AVX-lane triple modular redundancy with a configuration.
    Elzar(ElzarConfig),
    /// SWIFT-R instruction triplication (§V-D baseline).
    SwiftR,
    /// Dummy-wrapper deceleration (§VII-D estimation methodology).
    Decelerate,
    /// Dead-code elimination hygiene.
    Dce,
}

impl PassDesc {
    /// ELZAR with the paper's default configuration.
    pub fn elzar_default() -> PassDesc {
        PassDesc::Elzar(ElzarConfig::default())
    }

    /// The descriptor's registry name.
    pub fn name(&self) -> &'static str {
        match self {
            PassDesc::Vectorize => "vectorize",
            PassDesc::Elzar(_) => "elzar",
            PassDesc::SwiftR => "swiftr",
            PassDesc::Decelerate => "decelerate",
            PassDesc::Dce => "dce",
        }
    }

    /// Look a descriptor up by registry name (default configurations).
    pub fn parse(name: &str) -> Option<PassDesc> {
        match name.trim() {
            "vectorize" => Some(PassDesc::Vectorize),
            "elzar" => Some(PassDesc::elzar_default()),
            "swiftr" => Some(PassDesc::SwiftR),
            "decelerate" => Some(PassDesc::Decelerate),
            "dce" => Some(PassDesc::Dce),
            _ => None,
        }
    }

    /// Instantiate the runnable pass.
    pub fn instantiate(&self) -> Box<dyn Pass> {
        match self {
            PassDesc::Vectorize => Box::new(VectorizePass),
            PassDesc::Elzar(cfg) => Box::new(ElzarPass(*cfg)),
            PassDesc::SwiftR => Box::new(SwiftRPass),
            PassDesc::Decelerate => Box::new(DeceleratePass),
            PassDesc::Dce => Box::new(DcePass),
        }
    }
}

/// Every registered pass name, in registry order.
pub fn registry() -> [&'static str; 5] {
    ["vectorize", "elzar", "swiftr", "decelerate", "dce"]
}

/// Parse a comma-separated pipeline spec (the `ELZAR_PASSES` format).
/// Empty input yields the empty pipeline; unknown names are errors.
pub fn parse_pipeline(spec: &str) -> Result<Vec<PassDesc>, String> {
    let mut out = Vec::new();
    for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        out.push(
            PassDesc::parse(name)
                .ok_or_else(|| format!("unknown pass {name:?} (registry: {:?})", registry()))?,
        );
    }
    Ok(out)
}

/// The pipeline override from `ELZAR_PASSES`, if set.
///
/// # Panics
/// Panics on an unparsable spec — a silently ignored ablation flag
/// would invalidate whole experiments.
pub fn pipeline_from_env() -> Option<Vec<PassDesc>> {
    let spec = std::env::var("ELZAR_PASSES").ok()?;
    Some(parse_pipeline(&spec).expect("ELZAR_PASSES"))
}

struct VectorizePass;
impl Pass for VectorizePass {
    fn name(&self) -> &'static str {
        "vectorize"
    }
    fn run(&self, mut m: Module) -> Module {
        vectorize_module(&mut m);
        m
    }
}

struct ElzarPass(ElzarConfig);
impl Pass for ElzarPass {
    fn name(&self) -> &'static str {
        "elzar"
    }
    fn run(&self, m: Module) -> Module {
        elzar_harden(&m, &self.0)
    }
}

struct SwiftRPass;
impl Pass for SwiftRPass {
    fn name(&self) -> &'static str {
        "swiftr"
    }
    fn run(&self, m: Module) -> Module {
        swiftr::harden_module(&m)
    }
}

struct DeceleratePass;
impl Pass for DeceleratePass {
    fn name(&self) -> &'static str {
        "decelerate"
    }
    fn run(&self, m: Module) -> Module {
        decelerate_module(&m)
    }
}

struct DcePass;
impl Pass for DcePass {
    fn name(&self) -> &'static str {
        "dce"
    }
    fn run(&self, mut m: Module) -> Module {
        dce::dce_module(&mut m);
        m
    }
}

/// Per-pass execution record.
#[derive(Clone, Debug)]
pub struct PassStat {
    /// Registry name of the pass.
    pub name: &'static str,
    /// Wall-clock microseconds the pass took.
    pub micros: u64,
    /// Instruction count after the pass ran.
    pub insts_after: usize,
}

/// Runs pipelines: every pass is followed by a verification of the
/// transformed module, and timing is recorded per pass.
#[derive(Clone, Debug, Default)]
pub struct PassManager {
    verify: bool,
}

impl PassManager {
    /// A verifying pass manager (the default — a pass that emits invalid
    /// IR is a bug worth an immediate panic).
    pub fn new() -> PassManager {
        PassManager { verify: true }
    }

    /// Disable post-pass verification (benchmarking the passes
    /// themselves; never for artifacts handed to the VM).
    pub fn without_verify() -> PassManager {
        PassManager { verify: false }
    }

    /// Run `pipeline` over (a clone of) `m`, returning the transformed
    /// module and per-pass stats.
    ///
    /// # Panics
    /// Panics if a pass leaves the module failing verification — that is
    /// a bug in the pass, never in user code.
    pub fn run(&self, m: &Module, pipeline: &[PassDesc]) -> (Module, Vec<PassStat>) {
        PIPELINES_RUN.fetch_add(1, Ordering::Relaxed);
        let mut cur = m.clone();
        let mut stats = Vec::with_capacity(pipeline.len());
        for desc in pipeline {
            let pass = desc.instantiate();
            let t0 = Instant::now();
            cur = pass.run(cur);
            let micros = t0.elapsed().as_micros() as u64;
            PASSES_RUN.fetch_add(1, Ordering::Relaxed);
            if self.verify {
                if let Err(errs) = elzar_ir::verify::verify_module(&cur) {
                    panic!(
                        "pass bug: {} left {} failing verification: {:#?}",
                        pass.name(),
                        m.name,
                        &errs[..errs.len().min(5)]
                    );
                }
            }
            let insts_after = module_insts(&cur);
            debug::emit("passes", || {
                format!("{}: pass {} took {micros}us, {insts_after} insts after", m.name, pass.name())
            });
            stats.push(PassStat { name: pass.name(), micros, insts_after });
        }
        (cur, stats)
    }
}

fn module_insts(m: &Module) -> usize {
    m.funcs.iter().map(|f| f.insts.len()).sum()
}

static PIPELINES_RUN: AtomicU64 = AtomicU64::new(0);
static PASSES_RUN: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of pipelines executed by [`PassManager::run`].
/// Harnesses use deltas of this to assert build-once behaviour.
pub fn pipelines_run() -> u64 {
    PIPELINES_RUN.load(Ordering::Relaxed)
}

/// Process-wide count of individual passes executed.
pub fn passes_run() -> u64 {
    PASSES_RUN.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elzar_ir::builder::{c64, FuncBuilder};
    use elzar_ir::{Builtin, Ty};

    fn sample() -> Module {
        let mut m = Module::new("pm-sample");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let acc = b.alloca(Ty::I64, c64(1));
        b.store(Ty::I64, c64(0), acc);
        b.counted_loop(c64(0), c64(64), |b, i| {
            let v = b.load(Ty::I64, acc);
            let s = b.add(v, i);
            b.store(Ty::I64, s, acc);
        });
        let v = b.load(Ty::I64, acc);
        b.call_builtin(Builtin::OutputI64, vec![v.into()], Ty::Void);
        b.ret(v);
        m.add_func(b.finish());
        m
    }

    #[test]
    fn every_registered_pass_passes_verification() {
        let m = sample();
        let pm = PassManager::new();
        for name in registry() {
            let desc = PassDesc::parse(name).expect("registry name parses");
            assert_eq!(desc.name(), name);
            // PassManager::run panics if the pass breaks the module.
            let (out, stats) = pm.run(&m, &[desc]);
            assert_eq!(stats.len(), 1, "{name}");
            assert_eq!(stats[0].name, name);
            assert!(stats[0].insts_after > 0, "{name} emptied the module");
            elzar_ir::verify::verify_module(&out).unwrap();
        }
    }

    #[test]
    fn parse_pipeline_roundtrips_and_rejects_unknown() {
        let p = parse_pipeline("vectorize, dce").unwrap();
        assert_eq!(p, vec![PassDesc::Vectorize, PassDesc::Dce]);
        assert_eq!(parse_pipeline("").unwrap(), vec![]);
        assert!(parse_pipeline("vectorise").is_err());
        for name in registry() {
            assert_eq!(PassDesc::parse(name).unwrap().name(), name);
        }
    }

    #[test]
    fn counters_advance_per_pipeline_and_pass() {
        // Sibling tests run pipelines concurrently, so assert monotone
        // advancement by at least this test's own work (exact deltas
        // are asserted by single-threaded harness mains).
        let m = sample();
        let pm = PassManager::new();
        let p0 = pipelines_run();
        let q0 = passes_run();
        pm.run(&m, &[PassDesc::Vectorize, PassDesc::Dce]);
        assert!(pipelines_run() - p0 >= 1);
        assert!(passes_run() - q0 >= 2);
    }

    #[test]
    fn empty_pipeline_is_identity_modulo_clone() {
        let m = sample();
        let (out, stats) = PassManager::new().run(&m, &[]);
        assert!(stats.is_empty());
        assert_eq!(format!("{out:?}").len(), format!("{m:?}").len());
    }
}
