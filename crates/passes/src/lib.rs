//! # elzar-passes
//!
//! The compiler transformations of the ELZAR reproduction:
//!
//! * [`elzar`] — the paper's contribution (§III): AVX-lane triple modular
//!   redundancy with configurable checks, FP-only mode, and the §VII
//!   "future AVX" variants;
//! * [`swiftr`] — the SWIFT-R instruction-triplication baseline (§V-D);
//! * [`vectorize`] — an innermost-loop vectorizer standing in for LLVM's,
//!   used to build the Figure 1 "native SIMD" baseline;
//! * [`decelerate`] — the §VII-D dummy-wrapper methodology behind the
//!   Figure 17 estimate;
//! * [`dce`] — a small dead-code-elimination hygiene pass;
//! * [`pm`] — the pass manager: every transformation behind one
//!   [`Pass`] trait, pipelines as data ([`PassDesc`]), per-pass
//!   verification/timing, and the `ELZAR_PASSES` ablation override.
//!
//! ```
//! use elzar_ir::builder::{c64, FuncBuilder};
//! use elzar_ir::{Module, Ty};
//! use elzar_passes::elzar::{harden_module, ElzarConfig};
//!
//! let mut m = Module::new("demo");
//! let mut b = FuncBuilder::new("main", vec![], Ty::I64);
//! let x = b.add(c64(40), c64(2));
//! b.ret(x);
//! m.add_func(b.finish());
//!
//! let hardened = harden_module(&m, &ElzarConfig::default());
//! elzar_ir::verify::verify_module(&hardened).unwrap();
//! ```

#![warn(missing_docs)]

pub mod dce;
pub mod decelerate;
pub mod elzar;
pub mod pm;
pub mod swiftr;
pub mod vectorize;

pub use decelerate::decelerate_module;
pub use elzar::{CheckConfig, ElzarConfig, FutureAvx};
pub use pm::{Pass, PassDesc, PassManager, PassStat};
pub use vectorize::vectorize_module;
