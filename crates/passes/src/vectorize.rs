//! Innermost-loop vectorizer — the "native SIMD" baseline of Figure 1.
//!
//! The paper compares "native" builds (`-O3 -msse4.2 -mavx2`, LLVM loop
//! vectorizer on) against "no-SIMD" builds; ELZAR itself requires
//! vectorization disabled (§IV-A). This pass plays the role of LLVM's
//! vectorizer for the workloads in this repository: it vectorizes loops
//! that carry an explicit [`elzar_ir::VectorizeHint`] *and* match a
//! conservative shape (the canonical counted loop produced by
//! `FuncBuilder::counted_loop` with a straight-line body, unit-stride
//! memory accesses indexed directly by the induction variable, and
//! direct-update reductions). Anything else is left scalar — exactly like
//! a production vectorizer bailing out.
//!
//! The transform emits a vector main loop of factor `VF` plus the original
//! scalar loop as the remainder epilogue, with reductions reduced
//! horizontally in a middle block.

use elzar_ir::inst::{Inst, Terminator};
use elzar_ir::module::{Function, Module};
use elzar_ir::types::Ty;
use elzar_ir::value::{BlockId, Const, Operand, ValueId};
use elzar_ir::{BinOp, CmpPred};
use std::collections::HashMap;

/// Vectorize every hinted, matching loop in the module.
/// Returns the number of loops vectorized.
pub fn vectorize_module(m: &mut Module) -> usize {
    let mut n = 0;
    for f in &mut m.funcs {
        let hints = f.vector_hints.clone();
        for h in hints {
            if vectorize_loop(f, h.header, h.width) {
                n += 1;
            }
        }
    }
    n
}

struct LoopShape {
    pre: BlockId,
    header: BlockId,
    body: BlockId,
    latch: BlockId,
    exit: BlockId,
    i_phi: ValueId,
    start: Operand,
    end: Operand,
    cmp_val: ValueId,
    /// (phi, init operand, update inst value, op, other operand)
    reductions: Vec<(ValueId, Operand, ValueId, BinOp, Operand)>,
}

const RED_OPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::FAdd,
    BinOp::Mul,
    BinOp::FMul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::SMin,
    BinOp::SMax,
    BinOp::UMin,
    BinOp::UMax,
    BinOp::FMin,
    BinOp::FMax,
];

fn operand_is(v: ValueId, o: &Operand) -> bool {
    matches!(o, Operand::Val(x) if *x == v)
}

/// Try to vectorize the loop headed at `header` with factor `vf`.
pub fn vectorize_loop(f: &mut Function, header: BlockId, vf: u8) -> bool {
    let Some(shape) = match_loop(f, header) else { return false };
    if !body_is_vectorizable(f, &shape, vf) {
        return false;
    }
    emit_vector_loop(f, &shape, vf);
    true
}

fn match_loop(f: &Function, header: BlockId) -> Option<LoopShape> {
    let preds = f.predecessors();
    let hb = &f.blocks[header.0 as usize];
    // Header terminator: cond_br(cmp, body, exit).
    let Terminator::CondBr { cond, then_bb: body, else_bb: exit } = &hb.term else { return None };
    let cond_v = cond.value_id()?;
    // Split header instructions into phis + exactly one compare.
    let mut phis = vec![];
    let mut cmp = None;
    for &iid in &hb.insts {
        match &f.insts[iid.0 as usize].inst {
            Inst::Phi { incomings, .. } => phis.push((f.insts[iid.0 as usize].result?, incomings.clone())),
            Inst::Cmp { pred: CmpPred::Slt, a, b, ty } if *ty == Ty::I64 => {
                if cmp.is_some() {
                    return None;
                }
                cmp = Some((f.insts[iid.0 as usize].result?, a.clone(), b.clone()));
            }
            _ => return None,
        }
    }
    let (cmp_val, cmp_a, cmp_b) = cmp?;
    if cmp_val != cond_v {
        return None;
    }
    // Latch: single Add(i, 1) and br header.
    let hpreds = &preds[header.0 as usize];
    if hpreds.len() != 2 {
        return None;
    }
    // Body must branch to a latch which branches back.
    let bb = &f.blocks[body.0 as usize];
    let Terminator::Br { target: latch } = bb.term else { return None };
    let lb = &f.blocks[latch.0 as usize];
    if !matches!(lb.term, Terminator::Br { target } if target == header) {
        return None;
    }
    let pre = *hpreds.iter().find(|p| **p != latch)?;
    // Identify the induction phi: latch incoming is add(phi, 1) in latch.
    let mut i_phi = None;
    let mut start = None;
    let mut reductions = vec![];
    for (pv, incomings) in &phis {
        if incomings.len() != 2 {
            return None;
        }
        let from_pre = incomings.iter().find(|(p, _)| *p == pre)?.1.clone();
        let from_latch = incomings.iter().find(|(p, _)| *p == latch)?.1.clone();
        // Is this the induction?
        if let Some(lv) = from_latch.value_id() {
            let def = f.def_inst(lv);
            if let Some(di) = def {
                let in_latch = lb.insts.contains(&di);
                if in_latch {
                    if let Inst::Bin { op: BinOp::Add, a, b, ty } = &f.insts[di.0 as usize].inst {
                        let one = Operand::Imm(Const::i64(1));
                        if *ty == Ty::I64
                            && ((operand_is(*pv, a) && *b == one) || (operand_is(*pv, b) && *a == one))
                        {
                            if i_phi.is_some() {
                                return None;
                            }
                            i_phi = Some(*pv);
                            start = Some(from_pre);
                            continue;
                        }
                    }
                    return None;
                }
                // Reduction candidate: update in body, direct form.
                if bb.insts.contains(&di) {
                    if let Inst::Bin { op, a, b, .. } = &f.insts[di.0 as usize].inst {
                        if RED_OPS.contains(op) {
                            let other = if operand_is(*pv, a) {
                                b.clone()
                            } else if operand_is(*pv, b) {
                                a.clone()
                            } else {
                                return None;
                            };
                            reductions.push((*pv, from_pre, lv, *op, other));
                            continue;
                        }
                    }
                }
            }
            return None;
        }
        return None;
    }
    let i_phi = i_phi?;
    // The compare must be i < end with loop-invariant end.
    if !operand_is(i_phi, &cmp_a) {
        return None;
    }
    let in_loop = |o: &Operand| -> bool {
        match o.value_id().and_then(|v| f.def_inst(v)) {
            None => false,
            Some(di) => hb.insts.contains(&di) || bb.insts.contains(&di) || lb.insts.contains(&di),
        }
    };
    if in_loop(&cmp_b) {
        return None;
    }
    // The latch must contain only the increment.
    if lb.insts.len() != 1 {
        return None;
    }
    Some(LoopShape {
        pre,
        header,
        body: *body,
        latch,
        exit: *exit,
        i_phi,
        start: start?,
        end: cmp_b,
        cmp_val,
        reductions,
    })
}

fn body_is_vectorizable(f: &Function, s: &LoopShape, vf: u8) -> bool {
    let bb = &f.blocks[s.body.0 as usize];
    let loop_blocks = [s.header, s.body, s.latch];
    let defined_in = |v: ValueId, b: BlockId| {
        f.def_inst(v).map(|di| f.blocks[b.0 as usize].insts.contains(&di)).unwrap_or(false)
    };
    let is_invariant = |o: &Operand| match o.value_id() {
        None => true,
        Some(v) => !loop_blocks.iter().any(|b| defined_in(v, *b)),
    };
    // Gather the set of values defined in the body, and the geps' scales.
    let mut body_vals: Vec<ValueId> = vec![];
    let mut gep_scale: HashMap<ValueId, u32> = HashMap::new();
    for &iid in &bb.insts {
        if let Some(r) = f.insts[iid.0 as usize].result {
            body_vals.push(r);
            if let Inst::Gep { scale, .. } = &f.insts[iid.0 as usize].inst {
                gep_scale.insert(r, *scale);
            }
        }
    }
    // Uses of `i` are only allowed as direct gep indices.
    // Uses of body values outside the loop are only allowed through
    // reduction phis (already matched).
    let _red_updates: Vec<ValueId> = s.reductions.iter().map(|r| r.2).collect();
    for (bi, blk) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        let outside = !loop_blocks.contains(&bid);
        for &iid in &blk.insts {
            let inst = &f.insts[iid.0 as usize].inst;
            let mut ok = true;
            inst.for_each_operand(|o| {
                if let Some(v) = o.value_id() {
                    if outside && body_vals.contains(&v) {
                        ok = false;
                    }
                }
            });
            if !ok {
                // Exception: header reduction phis use the update value.
                if bid == s.header {
                    continue;
                }
                return false;
            }
        }
        if outside {
            let mut ok = true;
            blk.term.for_each_operand(|o| {
                if let Some(v) = o.value_id() {
                    if body_vals.contains(&v) {
                        ok = false;
                    }
                }
            });
            if !ok {
                return false;
            }
        }
    }
    // Whitelist the body instructions.
    for &iid in &bb.insts {
        let inst = &f.insts[iid.0 as usize].inst;
        let uses_i_directly = {
            let mut found = false;
            inst.for_each_operand(|o| {
                if operand_is(s.i_phi, o) {
                    found = true;
                }
            });
            found
        };
        match inst {
            Inst::Gep { base, index, .. } => {
                // Unit access indexed by i with invariant base.
                if !is_invariant(base) || !operand_is(s.i_phi, index) {
                    return false;
                }
            }
            Inst::Load { ty, addr } => {
                // Address must be a unit-stride body gep.
                let stride_ok = addr
                    .value_id()
                    .and_then(|v| gep_scale.get(&v))
                    .map(|s| *s == ty.bytes())
                    .unwrap_or(false);
                if ty.is_vector() || !stride_ok || *ty == Ty::I1 || u32::from(vf) * ty.bytes() > 32 {
                    return false;
                }
            }
            Inst::Store { ty, addr, .. } => {
                let stride_ok = addr
                    .value_id()
                    .and_then(|v| gep_scale.get(&v))
                    .map(|s| *s == ty.bytes())
                    .unwrap_or(false);
                if ty.is_vector() || !stride_ok || *ty == Ty::I1 || u32::from(vf) * ty.bytes() > 32 {
                    return false;
                }
            }
            Inst::Bin { op, ty, .. } => {
                if uses_i_directly || ty.is_vector() || op.is_int_div() || *ty == Ty::I1 {
                    return false;
                }
            }
            Inst::Cmp { ty, .. } => {
                if uses_i_directly || ty.is_vector() {
                    return false;
                }
            }
            Inst::Select { cond, ty, .. } => {
                // Condition must be a body-defined compare.
                if ty.is_vector() {
                    return false;
                }
                match cond.value_id() {
                    Some(v) if body_vals.contains(&v) => {}
                    _ => return false,
                }
            }
            Inst::Cast { to, val, .. } => {
                if uses_i_directly || to.is_vector() || *to == Ty::I1 {
                    return false;
                }
                // Lane-count change across the cast breaks the VF shape.
                if let Some(v) = val.value_id() {
                    let _ = v;
                }
            }
            _ => return false,
        }
    }
    // Gep results must only feed loads/stores in the body (no escapes) —
    // covered by the outside-use scan plus the whitelist above.
    true
}

fn splat_of(
    f: &mut Function,
    b: BlockId,
    o: &Operand,
    ty: &Ty,
    vf: u8,
    cache: &mut HashMap<Operand, Operand>,
) -> Operand {
    if let Some(c) = cache.get(o) {
        return c.clone();
    }
    let out: Operand = match o {
        Operand::Imm(c) => Operand::Imm(c.clone().splat(vf)),
        Operand::Val(_) => {
            let v =
                f.push_inst(b, Inst::Splat { val: o.clone(), ty: ty.with_lanes(vf) }).expect("splat yields");
            v.into()
        }
    };
    cache.insert(o.clone(), out.clone());
    out
}

fn emit_vector_loop(f: &mut Function, s: &LoopShape, vf: u8) {
    let vfi = i64::from(vf);
    // New blocks.
    let vpre = f.add_block("vec.preheader");
    let vh = f.add_block("vec.header");
    let vb = f.add_block("vec.body");
    let vl = f.add_block("vec.latch");
    let mid = f.add_block("vec.middle");

    // Retarget preds of the scalar header (other than the latch) to the
    // vector preheader.
    let preds = f.predecessors();
    for p in &preds[s.header.0 as usize] {
        if *p != s.latch {
            f.blocks[p.0 as usize].term.retarget(|t| if t == s.header { vpre } else { t });
        }
    }

    // VPRE: trip-count arithmetic + invariant splats.
    // n = max(end - start, 0); vec_n = n & !(VF-1); vec_end = start + vec_n.
    let n = f
        .push_inst(vpre, Inst::Bin { op: BinOp::Sub, ty: Ty::I64, a: s.end.clone(), b: s.start.clone() })
        .expect("yields");
    let nz = f
        .push_inst(vpre, Inst::Bin { op: BinOp::SMax, ty: Ty::I64, a: n.into(), b: Operand::imm_i64(0) })
        .expect("yields");
    let vec_n = f
        .push_inst(
            vpre,
            Inst::Bin { op: BinOp::And, ty: Ty::I64, a: nz.into(), b: Operand::Imm(Const::i64(!(vfi - 1))) },
        )
        .expect("yields");
    let vec_end = f
        .push_inst(vpre, Inst::Bin { op: BinOp::Add, ty: Ty::I64, a: s.start.clone(), b: vec_n.into() })
        .expect("yields");
    f.set_term(vpre, Terminator::Br { target: vh });

    let mut splat_cache: HashMap<Operand, Operand> = HashMap::new();

    // VH: vi phi + vector reduction phis + compare + branch.
    let vi = f.push_inst(vh, Inst::Phi { ty: Ty::I64, incomings: vec![] }).expect("yields");
    let mut vred_phis = vec![];
    for (phi, init, _upd, _op, _other) in &s.reductions {
        let ty = f.val_ty(*phi).clone();
        let vty = ty.with_lanes(vf);
        let vphi = f.push_inst(vh, Inst::Phi { ty: vty, incomings: vec![] }).expect("yields");
        let _ = (phi, init);
        vred_phis.push(vphi);
    }
    let vcond = f
        .push_inst(vh, Inst::Cmp { pred: CmpPred::Slt, ty: Ty::I64, a: vi.into(), b: vec_end.into() })
        .expect("yields");
    f.set_term(vh, Terminator::CondBr { cond: vcond.into(), then_bb: vb, else_bb: mid });

    // Initial reduction values: lane 0 = init, other lanes = identity.
    // For simplicity and generality we initialize the vector accumulator
    // with the op's identity in every lane and fold the scalar init in at
    // the middle block. This is only valid for ops with an identity; for
    // min/max we splat the init instead (init in every lane is safe).
    let mut vred_inits: Vec<Operand> = vec![];
    for (phi, init, _upd, op, _other) in &s.reductions {
        let ty = f.val_ty(*phi).clone();
        let vty = ty.with_lanes(vf);
        let init_op: Operand = match op {
            BinOp::Add | BinOp::FAdd | BinOp::Or | BinOp::Xor => Operand::Imm(Const::zero(&vty)),
            BinOp::Mul => Operand::Imm(Const::int(ty.scalar_bits() as u8, 1).splat(vf)),
            BinOp::FMul => {
                let one = if ty == Ty::F32 { Const::f32(1.0) } else { Const::f64(1.0) };
                Operand::Imm(one.splat(vf))
            }
            BinOp::And => Operand::Imm(Const::int(ty.scalar_bits() as u8, u64::MAX).splat(vf)),
            _ => splat_of(f, vpre, init, &ty, vf, &mut splat_cache),
        };
        vred_inits.push(init_op);
    }

    // VB: vectorized body.
    let mut vmap: HashMap<ValueId, Operand> = HashMap::new();
    vmap.insert(s.i_phi, Operand::Val(vi)); // only used as gep index
    for ((phi, ..), vphi) in s.reductions.iter().zip(&vred_phis) {
        vmap.insert(*phi, Operand::Val(*vphi));
    }
    let body_insts: Vec<_> = f.blocks[s.body.0 as usize].insts.clone();
    for iid in body_insts {
        let inst = f.insts[iid.0 as usize].inst.clone();
        let result = f.insts[iid.0 as usize].result;
        let mapped = |o: &Operand, vmap: &HashMap<ValueId, Operand>| -> Option<Operand> {
            match o.value_id() {
                None => None,
                Some(v) => vmap.get(&v).cloned(),
            }
        };
        match inst {
            Inst::Gep { base, index, scale } => {
                // Address of lane 0; the vector load/store covers VF lanes.
                debug_assert!(operand_is(s.i_phi, &index));
                let g = f.push_inst(vb, Inst::Gep { base, index: vi.into(), scale }).expect("yields");
                vmap.insert(result.expect("gep yields"), g.into());
            }
            Inst::Load { ty, addr } => {
                let a = mapped(&addr, &vmap).expect("load addr is a body gep");
                let v = f.push_inst(vb, Inst::Load { ty: ty.with_lanes(vf), addr: a }).expect("yields");
                vmap.insert(result.expect("load yields"), v.into());
            }
            Inst::Store { ty, val, addr } => {
                let a = mapped(&addr, &vmap).expect("store addr is a body gep");
                let v = match mapped(&val, &vmap) {
                    Some(v) => v,
                    None => splat_of(f, vpre, &val, &ty, vf, &mut splat_cache),
                };
                f.push_inst(vb, Inst::Store { ty: ty.with_lanes(vf), val: v, addr: a });
            }
            Inst::Bin { op, ty, a, b } => {
                let va =
                    mapped(&a, &vmap).unwrap_or_else(|| splat_of(f, vpre, &a, &ty, vf, &mut splat_cache));
                let vb_op =
                    mapped(&b, &vmap).unwrap_or_else(|| splat_of(f, vpre, &b, &ty, vf, &mut splat_cache));
                let v = f
                    .push_inst(vb, Inst::Bin { op, ty: ty.with_lanes(vf), a: va, b: vb_op })
                    .expect("yields");
                vmap.insert(result.expect("bin yields"), v.into());
            }
            Inst::Cmp { pred, ty, a, b } => {
                let va =
                    mapped(&a, &vmap).unwrap_or_else(|| splat_of(f, vpre, &a, &ty, vf, &mut splat_cache));
                let vb_op =
                    mapped(&b, &vmap).unwrap_or_else(|| splat_of(f, vpre, &b, &ty, vf, &mut splat_cache));
                let v = f
                    .push_inst(vb, Inst::Cmp { pred, ty: ty.with_lanes(vf), a: va, b: vb_op })
                    .expect("yields");
                vmap.insert(result.expect("cmp yields"), v.into());
            }
            Inst::Select { cond, ty, a, b } => {
                let vc = mapped(&cond, &vmap).expect("select cond is a body cmp");
                let va =
                    mapped(&a, &vmap).unwrap_or_else(|| splat_of(f, vpre, &a, &ty, vf, &mut splat_cache));
                let vb_op =
                    mapped(&b, &vmap).unwrap_or_else(|| splat_of(f, vpre, &b, &ty, vf, &mut splat_cache));
                let v = f
                    .push_inst(vb, Inst::Select { cond: vc, ty: ty.with_lanes(vf), a: va, b: vb_op })
                    .expect("yields");
                vmap.insert(result.expect("select yields"), v.into());
            }
            Inst::Cast { op, to, val } => {
                let from_ty = f.operand_ty(&val);
                let vv = mapped(&val, &vmap)
                    .unwrap_or_else(|| splat_of(f, vpre, &val, &from_ty, vf, &mut splat_cache));
                let v = f.push_inst(vb, Inst::Cast { op, to: to.with_lanes(vf), val: vv }).expect("yields");
                vmap.insert(result.expect("cast yields"), v.into());
            }
            other => unreachable!("non-whitelisted body instruction {other:?}"),
        }
    }
    f.set_term(vb, Terminator::Br { target: vl });

    // VL: vi += VF.
    let vi_next = f
        .push_inst(
            vl,
            Inst::Bin { op: BinOp::Add, ty: Ty::I64, a: vi.into(), b: Operand::Imm(Const::i64(vfi)) },
        )
        .expect("yields");
    f.set_term(vl, Terminator::Br { target: vh });

    // Fill VH phis.
    fill_phi(f, vi, vec![(vpre, s.start.clone()), (vl, vi_next.into())]);
    for (k, ((_phi, _init, upd, _op, _other), vphi)) in s.reductions.iter().zip(&vred_phis).enumerate() {
        let vupd = vmap.get(upd).expect("reduction update vectorized").clone();
        fill_phi(f, *vphi, vec![(vpre, vred_inits[k].clone()), (vl, vupd)]);
    }

    // MID: horizontal reductions + jump into the scalar epilogue.
    let mut scalar_reds: Vec<Operand> = vec![];
    for ((phi, init, _upd, op, _other), vphi) in s.reductions.iter().zip(&vred_phis) {
        let ty = f.val_ty(*phi).clone();
        let vty = ty.with_lanes(vf);
        // Fold lanes left to right.
        let mut acc: Operand = f
            .push_inst(
                mid,
                Inst::ExtractElement { vec: (*vphi).into(), idx: Operand::imm_i64(0), ty: vty.clone() },
            )
            .expect("yields")
            .into();
        for lane in 1..vf {
            let e = f
                .push_inst(
                    mid,
                    Inst::ExtractElement {
                        vec: (*vphi).into(),
                        idx: Operand::imm_i64(i64::from(lane)),
                        ty: vty.clone(),
                    },
                )
                .expect("yields");
            acc = f
                .push_inst(mid, Inst::Bin { op: *op, ty: ty.clone(), a: acc, b: e.into() })
                .expect("yields")
                .into();
        }
        // Fold in the scalar init for identity-initialized reductions.
        let needs_init_fold = matches!(
            op,
            BinOp::Add | BinOp::FAdd | BinOp::Or | BinOp::Xor | BinOp::Mul | BinOp::FMul | BinOp::And
        );
        if needs_init_fold {
            acc = f
                .push_inst(mid, Inst::Bin { op: *op, ty: ty.clone(), a: acc, b: init.clone() })
                .expect("yields")
                .into();
        }
        scalar_reds.push(acc);
    }
    f.set_term(mid, Terminator::Br { target: s.header });

    // Rewrite the scalar header phis: the preheader edge now comes from
    // MID with the vector loop's results.
    let hinsts: Vec<_> = f.blocks[s.header.0 as usize].insts.clone();
    for iid in hinsts {
        let result = f.insts[iid.0 as usize].result;
        if let Inst::Phi { incomings, .. } = &mut f.insts[iid.0 as usize].inst {
            for (p, v) in incomings.iter_mut() {
                if *p == s.pre {
                    *p = mid;
                    if let Some(r) = result {
                        if r == s.i_phi {
                            *v = vec_end.into();
                        } else if let Some(k) = s.reductions.iter().position(|(phi, ..)| *phi == r) {
                            *v = scalar_reds[k].clone();
                        }
                    }
                }
            }
        }
    }
    let _ = s.cmp_val;
    let _ = s.exit;
}

fn fill_phi(f: &mut Function, phi: ValueId, incomings: Vec<(BlockId, Operand)>) {
    let iid = f.def_inst(phi).expect("phi inst");
    match &mut f.insts[iid.0 as usize].inst {
        Inst::Phi { incomings: slot, .. } => *slot = incomings,
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elzar_ir::builder::{c64, FuncBuilder};
    use elzar_ir::verify::verify_module;
    use elzar_ir::Builtin;
    use elzar_vm::{run_program, MachineConfig, Program, RunOutcome};

    /// out[i] = a[i] * 3 + b[i]; returns sum(out).
    fn kernel(hint: bool) -> Module {
        let mut m = Module::new("t");
        let n: i64 = 1000;
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let a = b.call_builtin(Builtin::Malloc, vec![c64(n * 8)], Ty::Ptr).unwrap();
        let bb = b.call_builtin(Builtin::Malloc, vec![c64(n * 8)], Ty::Ptr).unwrap();
        let out = b.call_builtin(Builtin::Malloc, vec![c64(n * 8)], Ty::Ptr).unwrap();
        // init: a[i] = i*7, b[i] = i^5 (scalar loop, not hinted).
        b.counted_loop(c64(0), c64(n), |b, i| {
            let v = b.mul(i, c64(7));
            let p = b.gep(a, i, 8);
            b.store(Ty::I64, v, p);
            let w = b.bin(BinOp::Xor, Ty::I64, i, c64(5));
            let q = b.gep(bb, i, 8);
            b.store(Ty::I64, w, q);
        });
        // hot loop with a sum reduction.
        let pre = b.current();
        let header = b.block("hot.header");
        let body = b.block("hot.body");
        let latch = b.block("hot.latch");
        let exit = b.block("hot.exit");
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Ty::I64);
        let sum = b.phi(Ty::I64);
        b.phi_add_incoming(i, pre, c64(0));
        b.phi_add_incoming(sum, pre, c64(100));
        let c = b.icmp(CmpPred::Slt, i, c64(n));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let pa = b.gep(a, i, 8);
        let va = b.load(Ty::I64, pa);
        let pb = b.gep(bb, i, 8);
        let vb = b.load(Ty::I64, pb);
        let t = b.mul(va, c64(3));
        let s = b.add(t, vb);
        let po = b.gep(out, i, 8);
        b.store(Ty::I64, s, po);
        let sum2 = b.add(sum, s);
        b.br(latch);
        b.switch_to(latch);
        let inext = b.add(i, c64(1));
        b.phi_add_incoming(i, latch, inext);
        b.phi_add_incoming(sum, latch, sum2);
        b.br(header);
        b.switch_to(exit);
        b.call_builtin(Builtin::OutputI64, vec![sum.into()], Ty::Void);
        b.ret(sum);
        if hint {
            b.hint_vectorize(header, 4);
        }
        m.add_func(b.finish());
        m
    }

    #[test]
    fn vectorized_loop_verifies_and_matches_scalar_output() {
        let mut mv = kernel(true);
        let n = vectorize_module(&mut mv);
        assert_eq!(n, 1, "the hinted loop must vectorize");
        verify_module(&mv).unwrap_or_else(|e| panic!("{:#?}", &e[..e.len().min(5)]));
        let ms = kernel(false);
        let rs = run_program(&Program::lower(&ms), "main", &[], MachineConfig::default());
        let rv = run_program(&Program::lower(&mv), "main", &[], MachineConfig::default());
        assert!(matches!(rs.outcome, RunOutcome::Exited(_)));
        assert_eq!(rs.outcome, rv.outcome);
        assert_eq!(rs.output, rv.output, "vectorization must preserve results");
    }

    #[test]
    fn vectorized_version_is_faster_and_uses_avx() {
        let mut mv = kernel(true);
        vectorize_module(&mut mv);
        let ms = kernel(false);
        let rs = run_program(&Program::lower(&ms), "main", &[], MachineConfig::default());
        let rv = run_program(&Program::lower(&mv), "main", &[], MachineConfig::default());
        assert!(rv.counters.avx_instrs > 0);
        assert!(rv.cycles < rs.cycles, "vector loop should be faster: {} vs {}", rv.cycles, rs.cycles);
        assert!(rv.counters.instrs < rs.counters.instrs);
    }

    #[test]
    fn non_matching_loop_is_left_alone() {
        // A loop whose body calls a builtin must not vectorize.
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let (header, _exit, _i) = b.counted_loop(c64(0), c64(10), |b, i| {
            b.call_builtin(Builtin::OutputI64, vec![i.into()], Ty::Void);
        });
        b.ret(c64(0));
        b.hint_vectorize(header, 4);
        m.add_func(b.finish());
        let before = m.num_insts();
        assert_eq!(vectorize_module(&mut m), 0);
        assert_eq!(m.num_insts(), before);
    }

    #[test]
    fn remainder_iterations_are_handled() {
        // n = 1003 is not a multiple of VF=4; epilogue must cover it.
        let build = |hint: bool| {
            let mut m = Module::new("t");
            let n: i64 = 1003;
            let mut b = FuncBuilder::new("main", vec![], Ty::I64);
            let a = b.call_builtin(Builtin::Malloc, vec![c64(n * 8)], Ty::Ptr).unwrap();
            b.counted_loop(c64(0), c64(n), |b, i| {
                let p = b.gep(a, i, 8);
                b.store(Ty::I64, i, p);
            });
            let pre = b.current();
            let header = b.block("h");
            let body = b.block("b");
            let latch = b.block("l");
            let exit = b.block("e");
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Ty::I64);
            let acc = b.phi(Ty::I64);
            b.phi_add_incoming(i, pre, c64(0));
            b.phi_add_incoming(acc, pre, c64(0));
            let c = b.icmp(CmpPred::Slt, i, c64(n));
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let p = b.gep(a, i, 8);
            let v = b.load(Ty::I64, p);
            let acc2 = b.add(acc, v);
            b.br(latch);
            b.switch_to(latch);
            let inext = b.add(i, c64(1));
            b.phi_add_incoming(i, latch, inext);
            b.phi_add_incoming(acc, latch, acc2);
            b.br(header);
            b.switch_to(exit);
            b.ret(acc);
            if hint {
                b.hint_vectorize(header, 4);
            }
            m.add_func(b.finish());
            m
        };
        let mut mv = build(true);
        assert_eq!(vectorize_module(&mut mv), 1);
        verify_module(&mv).unwrap_or_else(|e| panic!("{e:?}"));
        let rs = run_program(&Program::lower(&build(false)), "main", &[], MachineConfig::default());
        let rv = run_program(&Program::lower(&mv), "main", &[], MachineConfig::default());
        assert_eq!(rs.outcome, rv.outcome);
        // 0 + 1 + ... + 1002
        assert_eq!(rs.outcome, RunOutcome::Exited(1003 * 1002 / 2));
    }
}
