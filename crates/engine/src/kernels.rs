//! Fixed tables of 256-bit register kernels over `[u64; 4]` limbs.
//!
//! Two tables with bit-identical semantics: a portable scalar table
//! (always available, and the executable spec), and an AVX2 table whose
//! kernels are `#[target_feature(enable = "avx2")]` wrappers around real
//! `std::arch::x86_64` intrinsics. The AVX2 table is only ever handed
//! out after `is_x86_feature_detected!("avx2")` succeeds at runtime, so
//! calling its kernels is sound on the detected host.
//!
//! Kernels implement the reference interpreter's per-lane semantics for
//! *full-register* vector shapes only — lane count equals the width's
//! capacity and the logical bit width equals the lane width (or the
//! lanes are floats). That is exactly the shape every ELZAR-hardened
//! value has (scalars are widened to whole YMM registers), so the trace
//! builder can select kernels for the hot TMR ops and leave esoteric
//! shapes (masked sub-width integers, partial registers) to the generic
//! per-lane path.
//!
//! Deliberately scalar in *both* tables, because the obvious intrinsic
//! would not be bit-identical (or does not exist on AVX2):
//! `Mul64` (no `vpmullq` below AVX-512), `AShr64` (no `vpsravq`),
//! 64-bit min/max, and `FMin`/`FMax` (Rust's `f64::min` NaN semantics
//! differ from `vminpd`).

/// Binary kernel: two 256-bit registers in, one out.
pub type BinFn = fn(&[u64; 4], &[u64; 4]) -> [u64; 4];
/// Unary kernel: one 256-bit register in, one out.
pub type UnFn = fn(&[u64; 4]) -> [u64; 4];

/// A kernel table: one function pointer per [`BinKernel`]/[`UnKernel`].
pub struct KernelTable {
    /// Binary kernels, indexed by `BinKernel as usize`.
    pub bin: [BinFn; BinKernel::COUNT],
    /// Unary kernels, indexed by `UnKernel as usize`.
    pub un: [UnFn; UnKernel::COUNT],
    /// True for the AVX2 table (reported by benchmarks).
    pub simd: bool,
}

/// The kernel table for the requested dispatch.
///
/// `simd == true` returns the AVX2 table; callers must only pass `true`
/// after runtime detection (see `elzar_engine::avx2_available`). On
/// non-x86_64 hosts the scalar table is returned unconditionally.
pub fn table(simd: bool) -> &'static KernelTable {
    #[cfg(target_arch = "x86_64")]
    {
        if simd {
            return &SIMD_TABLE;
        }
    }
    let _ = simd;
    &SCALAR_TABLE
}

// ---------------------------------------------------------------------------
// Scalar lane helpers (little-endian limbs, same layout as `elzar_avx::Ymm`).
// ---------------------------------------------------------------------------

#[inline(always)]
fn map64(a: &[u64; 4], b: &[u64; 4], f: impl Fn(u64, u64) -> u64) -> [u64; 4] {
    [f(a[0], b[0]), f(a[1], b[1]), f(a[2], b[2]), f(a[3], b[3])]
}

#[inline(always)]
fn map32(a: &[u64; 4], b: &[u64; 4], f: impl Fn(u32, u32) -> u32) -> [u64; 4] {
    map64(a, b, |x, y| {
        let lo = u64::from(f(x as u32, y as u32));
        let hi = u64::from(f((x >> 32) as u32, (y >> 32) as u32));
        lo | (hi << 32)
    })
}

#[inline(always)]
fn map16(a: &[u64; 4], b: &[u64; 4], f: impl Fn(u16, u16) -> u16) -> [u64; 4] {
    map64(a, b, |x, y| {
        let mut r = 0u64;
        for k in 0..4 {
            let v = f((x >> (16 * k)) as u16, (y >> (16 * k)) as u16);
            r |= u64::from(v) << (16 * k);
        }
        r
    })
}

#[inline(always)]
fn map8(a: &[u64; 4], b: &[u64; 4], f: impl Fn(u8, u8) -> u8) -> [u64; 4] {
    map64(a, b, |x, y| {
        let mut r = 0u64;
        for k in 0..8 {
            let v = f((x >> (8 * k)) as u8, (y >> (8 * k)) as u8);
            r |= u64::from(v) << (8 * k);
        }
        r
    })
}

#[inline(always)]
fn mapf64(a: &[u64; 4], b: &[u64; 4], f: impl Fn(f64, f64) -> f64) -> [u64; 4] {
    map64(a, b, |x, y| f(f64::from_bits(x), f64::from_bits(y)).to_bits())
}

#[inline(always)]
fn mapf32(a: &[u64; 4], b: &[u64; 4], f: impl Fn(f32, f32) -> f32) -> [u64; 4] {
    map32(a, b, |x, y| f(f32::from_bits(x), f32::from_bits(y)).to_bits())
}

#[inline(always)]
fn m8(t: bool) -> u8 {
    if t {
        u8::MAX
    } else {
        0
    }
}

#[inline(always)]
fn m16(t: bool) -> u16 {
    if t {
        u16::MAX
    } else {
        0
    }
}

#[inline(always)]
fn m32(t: bool) -> u32 {
    if t {
        u32::MAX
    } else {
        0
    }
}

#[inline(always)]
fn m64(t: bool) -> u64 {
    if t {
        u64::MAX
    } else {
        0
    }
}

/// Rotate the whole 256-bit register down by `K` bits (the lane-rotate
/// shuffle of the Figure-8 check, for lane width `K`).
#[inline(always)]
fn rot_bits<const K: u32>(a: &[u64; 4]) -> [u64; 4] {
    let mut out = [0u64; 4];
    for i in 0..4 {
        out[i] = (a[i] >> K) | (a[(i + 1) & 3] << (64 - K));
    }
    out
}

// Scalar kernel definitions. `sk!(name, mapper, closure)` expands to a
// named fn so it can live in the table as a plain function pointer.
macro_rules! sk {
    ($name:ident, $map:ident, $f:expr) => {
        fn $name(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
            $map(a, b, $f)
        }
    };
}

sk!(s_and, map64, |x, y| x & y);
sk!(s_or, map64, |x, y| x | y);
sk!(s_xor, map64, |x, y| x ^ y);
sk!(s_add8, map8, u8::wrapping_add);
sk!(s_add16, map16, u16::wrapping_add);
sk!(s_add32, map32, u32::wrapping_add);
sk!(s_add64, map64, u64::wrapping_add);
sk!(s_sub8, map8, u8::wrapping_sub);
sk!(s_sub16, map16, u16::wrapping_sub);
sk!(s_sub32, map32, u32::wrapping_sub);
sk!(s_sub64, map64, u64::wrapping_sub);
sk!(s_mul16, map16, u16::wrapping_mul);
sk!(s_mul32, map32, u32::wrapping_mul);
sk!(s_mul64, map64, u64::wrapping_mul);
// Shift amounts follow the interpreter: amount modulo the lane width
// (`wrapping_shl`/`wrapping_shr` mask by the operand width).
sk!(s_shl32, map32, u32::wrapping_shl);
sk!(s_shl64, map64, |x, y| x.wrapping_shl(y as u32));
sk!(s_lshr32, map32, u32::wrapping_shr);
sk!(s_lshr64, map64, |x, y| x.wrapping_shr(y as u32));
sk!(s_ashr32, map32, |x, y| (x as i32).wrapping_shr(y) as u32);
sk!(s_ashr64, map64, |x, y| (x as i64).wrapping_shr(y as u32) as u64);
sk!(s_umin32, map32, |x, y| x.min(y));
sk!(s_umax32, map32, |x, y| x.max(y));
sk!(s_smin32, map32, |x, y| (x as i32).min(y as i32) as u32);
sk!(s_smax32, map32, |x, y| (x as i32).max(y as i32) as u32);
sk!(s_umin64, map64, |x, y| x.min(y));
sk!(s_umax64, map64, |x, y| x.max(y));
sk!(s_smin64, map64, |x, y| (x as i64).min(y as i64) as u64);
sk!(s_smax64, map64, |x, y| (x as i64).max(y as i64) as u64);
sk!(s_fadd32, mapf32, |x, y| x + y);
sk!(s_fsub32, mapf32, |x, y| x - y);
sk!(s_fmul32, mapf32, |x, y| x * y);
sk!(s_fdiv32, mapf32, |x, y| x / y);
sk!(s_fmin32, mapf32, f32::min);
sk!(s_fmax32, mapf32, f32::max);
sk!(s_fadd64, mapf64, |x, y| x + y);
sk!(s_fsub64, mapf64, |x, y| x - y);
sk!(s_fmul64, mapf64, |x, y| x * y);
sk!(s_fdiv64, mapf64, |x, y| x / y);
sk!(s_fmin64, mapf64, f64::min);
sk!(s_fmax64, mapf64, f64::max);
sk!(s_eq8, map8, |x, y| m8(x == y));
sk!(s_ne8, map8, |x, y| m8(x != y));
sk!(s_eq16, map16, |x, y| m16(x == y));
sk!(s_ne16, map16, |x, y| m16(x != y));
sk!(s_eq32, map32, |x, y| m32(x == y));
sk!(s_ne32, map32, |x, y| m32(x != y));
sk!(s_ult32, map32, |x, y| m32(x < y));
sk!(s_ule32, map32, |x, y| m32(x <= y));
sk!(s_ugt32, map32, |x, y| m32(x > y));
sk!(s_uge32, map32, |x, y| m32(x >= y));
sk!(s_slt32, map32, |x, y| m32((x as i32) < (y as i32)));
sk!(s_sle32, map32, |x, y| m32((x as i32) <= (y as i32)));
sk!(s_sgt32, map32, |x, y| m32((x as i32) > (y as i32)));
sk!(s_sge32, map32, |x, y| m32((x as i32) >= (y as i32)));
sk!(s_eq64, map64, |x, y| m64(x == y));
sk!(s_ne64, map64, |x, y| m64(x != y));
sk!(s_ult64, map64, |x, y| m64(x < y));
sk!(s_ule64, map64, |x, y| m64(x <= y));
sk!(s_ugt64, map64, |x, y| m64(x > y));
sk!(s_uge64, map64, |x, y| m64(x >= y));
sk!(s_slt64, map64, |x, y| m64((x as i64) < (y as i64)));
sk!(s_sle64, map64, |x, y| m64((x as i64) <= (y as i64)));
sk!(s_sgt64, map64, |x, y| m64((x as i64) > (y as i64)));
sk!(s_sge64, map64, |x, y| m64((x as i64) >= (y as i64)));
// Float compares follow the interpreter: f32 lanes are promoted to f64
// before the (ordered) predicate — exact and order-preserving, so the
// result equals a direct f32 compare.
sk!(s_foeq32, map32, |x, y| m32(f64::from(f32::from_bits(x)) == f64::from(f32::from_bits(y))));
sk!(s_fone32, map32, |x, y| {
    let (x, y) = (f32::from_bits(x), f32::from_bits(y));
    m32(x != y && !x.is_nan() && !y.is_nan())
});
sk!(s_folt32, map32, |x, y| m32(f32::from_bits(x) < f32::from_bits(y)));
sk!(s_fole32, map32, |x, y| m32(f32::from_bits(x) <= f32::from_bits(y)));
sk!(s_fogt32, map32, |x, y| m32(f32::from_bits(x) > f32::from_bits(y)));
sk!(s_foge32, map32, |x, y| m32(f32::from_bits(x) >= f32::from_bits(y)));
sk!(s_foeq64, map64, |x, y| m64(f64::from_bits(x) == f64::from_bits(y)));
sk!(s_fone64, map64, |x, y| {
    let (x, y) = (f64::from_bits(x), f64::from_bits(y));
    m64(x != y && !x.is_nan() && !y.is_nan())
});
sk!(s_folt64, map64, |x, y| m64(f64::from_bits(x) < f64::from_bits(y)));
sk!(s_fole64, map64, |x, y| m64(f64::from_bits(x) <= f64::from_bits(y)));
sk!(s_fogt64, map64, |x, y| m64(f64::from_bits(x) > f64::from_bits(y)));
sk!(s_foge64, map64, |x, y| m64(f64::from_bits(x) >= f64::from_bits(y)));

fn s_rot8(a: &[u64; 4]) -> [u64; 4] {
    rot_bits::<8>(a)
}

fn s_rot16(a: &[u64; 4]) -> [u64; 4] {
    rot_bits::<16>(a)
}

fn s_rot32(a: &[u64; 4]) -> [u64; 4] {
    rot_bits::<32>(a)
}

fn s_rot64(a: &[u64; 4]) -> [u64; 4] {
    [a[1], a[2], a[3], a[0]]
}

// ---------------------------------------------------------------------------
// AVX2 kernels.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod simd {
    use core::arch::x86_64::*;

    // `vk!(name, |a, b| expr)`: a safe wrapper around an
    // `#[target_feature(enable = "avx2")]` body. The wrapper is what sits
    // in the kernel table; it is sound to call because the AVX2 table is
    // only handed out after runtime feature detection.
    macro_rules! vk {
        ($name:ident, |$a:ident, $b:ident| $body:expr) => {
            pub fn $name(av: &[u64; 4], bv: &[u64; 4]) -> [u64; 4] {
                #[target_feature(enable = "avx2")]
                unsafe fn go(av: &[u64; 4], bv: &[u64; 4]) -> [u64; 4] {
                    let $a = _mm256_loadu_si256(av.as_ptr().cast());
                    let $b = _mm256_loadu_si256(bv.as_ptr().cast());
                    let r = $body;
                    let mut out = [0u64; 4];
                    _mm256_storeu_si256(out.as_mut_ptr().cast(), r);
                    out
                }
                // SAFETY: reachable only through the runtime-detected table.
                unsafe { go(av, bv) }
            }
        };
    }

    macro_rules! vk1 {
        ($name:ident, |$a:ident| $body:expr) => {
            pub fn $name(av: &[u64; 4]) -> [u64; 4] {
                #[target_feature(enable = "avx2")]
                unsafe fn go(av: &[u64; 4]) -> [u64; 4] {
                    let $a = _mm256_loadu_si256(av.as_ptr().cast());
                    let r = $body;
                    let mut out = [0u64; 4];
                    _mm256_storeu_si256(out.as_mut_ptr().cast(), r);
                    out
                }
                // SAFETY: reachable only through the runtime-detected table.
                unsafe { go(av) }
            }
        };
    }

    // Float ops stay in the integer register domain via bit-casts; the
    // lane arithmetic itself is exact IEEE, identical to the scalar path.
    macro_rules! pd2 {
        ($op:ident, $a:expr, $b:expr) => {
            _mm256_castpd_si256($op(_mm256_castsi256_pd($a), _mm256_castsi256_pd($b)))
        };
    }
    macro_rules! ps2 {
        ($op:ident, $a:expr, $b:expr) => {
            _mm256_castps_si256($op(_mm256_castsi256_ps($a), _mm256_castsi256_ps($b)))
        };
    }
    macro_rules! cmp_pd {
        ($imm:expr, $a:expr, $b:expr) => {
            _mm256_castpd_si256(_mm256_cmp_pd::<{ $imm }>(_mm256_castsi256_pd($a), _mm256_castsi256_pd($b)))
        };
    }
    macro_rules! cmp_ps {
        ($imm:expr, $a:expr, $b:expr) => {
            _mm256_castps_si256(_mm256_cmp_ps::<{ $imm }>(_mm256_castsi256_ps($a), _mm256_castsi256_ps($b)))
        };
    }

    vk!(v_and, |a, b| _mm256_and_si256(a, b));
    vk!(v_or, |a, b| _mm256_or_si256(a, b));
    vk!(v_xor, |a, b| _mm256_xor_si256(a, b));
    vk!(v_add8, |a, b| _mm256_add_epi8(a, b));
    vk!(v_add16, |a, b| _mm256_add_epi16(a, b));
    vk!(v_add32, |a, b| _mm256_add_epi32(a, b));
    vk!(v_add64, |a, b| _mm256_add_epi64(a, b));
    vk!(v_sub8, |a, b| _mm256_sub_epi8(a, b));
    vk!(v_sub16, |a, b| _mm256_sub_epi16(a, b));
    vk!(v_sub32, |a, b| _mm256_sub_epi32(a, b));
    vk!(v_sub64, |a, b| _mm256_sub_epi64(a, b));
    vk!(v_mul16, |a, b| _mm256_mullo_epi16(a, b));
    vk!(v_mul32, |a, b| _mm256_mullo_epi32(a, b));
    // Variable shifts mask the amount to the lane width first, matching
    // the interpreter's `amount % width` rule (vpsllv* would zero the
    // lane for amounts >= width instead).
    vk!(v_shl32, |a, b| _mm256_sllv_epi32(a, _mm256_and_si256(b, _mm256_set1_epi32(31))));
    vk!(v_shl64, |a, b| _mm256_sllv_epi64(a, _mm256_and_si256(b, _mm256_set1_epi64x(63))));
    vk!(v_lshr32, |a, b| _mm256_srlv_epi32(a, _mm256_and_si256(b, _mm256_set1_epi32(31))));
    vk!(v_lshr64, |a, b| _mm256_srlv_epi64(a, _mm256_and_si256(b, _mm256_set1_epi64x(63))));
    vk!(v_ashr32, |a, b| _mm256_srav_epi32(a, _mm256_and_si256(b, _mm256_set1_epi32(31))));
    vk!(v_umin32, |a, b| _mm256_min_epu32(a, b));
    vk!(v_umax32, |a, b| _mm256_max_epu32(a, b));
    vk!(v_smin32, |a, b| _mm256_min_epi32(a, b));
    vk!(v_smax32, |a, b| _mm256_max_epi32(a, b));
    vk!(v_fadd32, |a, b| ps2!(_mm256_add_ps, a, b));
    vk!(v_fsub32, |a, b| ps2!(_mm256_sub_ps, a, b));
    vk!(v_fmul32, |a, b| ps2!(_mm256_mul_ps, a, b));
    vk!(v_fdiv32, |a, b| ps2!(_mm256_div_ps, a, b));
    vk!(v_fadd64, |a, b| pd2!(_mm256_add_pd, a, b));
    vk!(v_fsub64, |a, b| pd2!(_mm256_sub_pd, a, b));
    vk!(v_fmul64, |a, b| pd2!(_mm256_mul_pd, a, b));
    vk!(v_fdiv64, |a, b| pd2!(_mm256_div_pd, a, b));
    vk!(v_eq8, |a, b| _mm256_cmpeq_epi8(a, b));
    vk!(v_ne8, |a, b| _mm256_xor_si256(_mm256_cmpeq_epi8(a, b), _mm256_set1_epi8(-1)));
    vk!(v_eq16, |a, b| _mm256_cmpeq_epi16(a, b));
    vk!(v_ne16, |a, b| _mm256_xor_si256(_mm256_cmpeq_epi16(a, b), _mm256_set1_epi16(-1)));
    vk!(v_eq32, |a, b| _mm256_cmpeq_epi32(a, b));
    vk!(v_ne32, |a, b| _mm256_xor_si256(_mm256_cmpeq_epi32(a, b), _mm256_set1_epi32(-1)));
    // Unsigned compares: bias both operands by the sign bit, then use the
    // signed compare (AVX2 has no unsigned vpcmpgt).
    vk!(v_ult32, |a, b| {
        let bias = _mm256_set1_epi32(i32::MIN);
        _mm256_cmpgt_epi32(_mm256_xor_si256(b, bias), _mm256_xor_si256(a, bias))
    });
    vk!(v_ule32, |a, b| {
        let bias = _mm256_set1_epi32(i32::MIN);
        let gt = _mm256_cmpgt_epi32(_mm256_xor_si256(a, bias), _mm256_xor_si256(b, bias));
        _mm256_xor_si256(gt, _mm256_set1_epi32(-1))
    });
    vk!(v_ugt32, |a, b| {
        let bias = _mm256_set1_epi32(i32::MIN);
        _mm256_cmpgt_epi32(_mm256_xor_si256(a, bias), _mm256_xor_si256(b, bias))
    });
    vk!(v_uge32, |a, b| {
        let bias = _mm256_set1_epi32(i32::MIN);
        let lt = _mm256_cmpgt_epi32(_mm256_xor_si256(b, bias), _mm256_xor_si256(a, bias));
        _mm256_xor_si256(lt, _mm256_set1_epi32(-1))
    });
    vk!(v_slt32, |a, b| _mm256_cmpgt_epi32(b, a));
    vk!(v_sle32, |a, b| _mm256_xor_si256(_mm256_cmpgt_epi32(a, b), _mm256_set1_epi32(-1)));
    vk!(v_sgt32, |a, b| _mm256_cmpgt_epi32(a, b));
    vk!(v_sge32, |a, b| _mm256_xor_si256(_mm256_cmpgt_epi32(b, a), _mm256_set1_epi32(-1)));
    vk!(v_eq64, |a, b| _mm256_cmpeq_epi64(a, b));
    vk!(v_ne64, |a, b| _mm256_xor_si256(_mm256_cmpeq_epi64(a, b), _mm256_set1_epi64x(-1)));
    vk!(v_ult64, |a, b| {
        let bias = _mm256_set1_epi64x(i64::MIN);
        _mm256_cmpgt_epi64(_mm256_xor_si256(b, bias), _mm256_xor_si256(a, bias))
    });
    vk!(v_ule64, |a, b| {
        let bias = _mm256_set1_epi64x(i64::MIN);
        let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias), _mm256_xor_si256(b, bias));
        _mm256_xor_si256(gt, _mm256_set1_epi64x(-1))
    });
    vk!(v_ugt64, |a, b| {
        let bias = _mm256_set1_epi64x(i64::MIN);
        _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias), _mm256_xor_si256(b, bias))
    });
    vk!(v_uge64, |a, b| {
        let bias = _mm256_set1_epi64x(i64::MIN);
        let lt = _mm256_cmpgt_epi64(_mm256_xor_si256(b, bias), _mm256_xor_si256(a, bias));
        _mm256_xor_si256(lt, _mm256_set1_epi64x(-1))
    });
    vk!(v_slt64, |a, b| _mm256_cmpgt_epi64(b, a));
    vk!(v_sle64, |a, b| _mm256_xor_si256(_mm256_cmpgt_epi64(a, b), _mm256_set1_epi64x(-1)));
    vk!(v_sgt64, |a, b| _mm256_cmpgt_epi64(a, b));
    vk!(v_sge64, |a, b| _mm256_xor_si256(_mm256_cmpgt_epi64(b, a), _mm256_set1_epi64x(-1)));
    vk!(v_foeq32, |a, b| cmp_ps!(_CMP_EQ_OQ, a, b));
    vk!(v_fone32, |a, b| cmp_ps!(_CMP_NEQ_OQ, a, b));
    vk!(v_folt32, |a, b| cmp_ps!(_CMP_LT_OQ, a, b));
    vk!(v_fole32, |a, b| cmp_ps!(_CMP_LE_OQ, a, b));
    vk!(v_fogt32, |a, b| cmp_ps!(_CMP_GT_OQ, a, b));
    vk!(v_foge32, |a, b| cmp_ps!(_CMP_GE_OQ, a, b));
    vk!(v_foeq64, |a, b| cmp_pd!(_CMP_EQ_OQ, a, b));
    vk!(v_fone64, |a, b| cmp_pd!(_CMP_NEQ_OQ, a, b));
    vk!(v_folt64, |a, b| cmp_pd!(_CMP_LT_OQ, a, b));
    vk!(v_fole64, |a, b| cmp_pd!(_CMP_LE_OQ, a, b));
    vk!(v_fogt64, |a, b| cmp_pd!(_CMP_GT_OQ, a, b));
    vk!(v_foge64, |a, b| cmp_pd!(_CMP_GE_OQ, a, b));
    // Lane-rotate-by-one (the Figure-8 shuffle) per lane width.
    vk1!(v_rot32, |a| _mm256_permutevar8x32_epi32(a, _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0)));
    vk1!(v_rot64, |a| _mm256_permute4x64_epi64::<0b00_11_10_01>(a));
}

// ---------------------------------------------------------------------------
// Kernel index enums and the tables (one macro keeps variant order and
// table order aligned by construction).
// ---------------------------------------------------------------------------

macro_rules! bin_kernels {
    ($(($variant:ident, $scalar:path, $simd:path)),+ $(,)?) => {
        /// Index of a binary kernel in a [`KernelTable`].
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        #[repr(u8)]
        #[allow(missing_docs)]
        pub enum BinKernel { $($variant),+ }

        impl BinKernel {
            /// Number of binary kernels.
            pub const COUNT: usize = [$(BinKernel::$variant),+].len();
            /// Every kernel index, in table order.
            pub const ALL: [BinKernel; BinKernel::COUNT] = [$(BinKernel::$variant),+];
        }

        const SCALAR_BIN: [BinFn; BinKernel::COUNT] = [$($scalar),+];
        #[cfg(target_arch = "x86_64")]
        const SIMD_BIN: [BinFn; BinKernel::COUNT] = [$($simd),+];
    };
}

macro_rules! un_kernels {
    ($(($variant:ident, $scalar:path, $simd:path)),+ $(,)?) => {
        /// Index of a unary kernel in a [`KernelTable`].
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        #[repr(u8)]
        #[allow(missing_docs)]
        pub enum UnKernel { $($variant),+ }

        impl UnKernel {
            /// Number of unary kernels.
            pub const COUNT: usize = [$(UnKernel::$variant),+].len();
            /// Every kernel index, in table order.
            pub const ALL: [UnKernel; UnKernel::COUNT] = [$(UnKernel::$variant),+];
        }

        const SCALAR_UN: [UnFn; UnKernel::COUNT] = [$($scalar),+];
        #[cfg(target_arch = "x86_64")]
        const SIMD_UN: [UnFn; UnKernel::COUNT] = [$($simd),+];
    };
}

#[cfg(target_arch = "x86_64")]
bin_kernels! {
    (And, s_and, simd::v_and),
    (Or, s_or, simd::v_or),
    (Xor, s_xor, simd::v_xor),
    (Add8, s_add8, simd::v_add8),
    (Add16, s_add16, simd::v_add16),
    (Add32, s_add32, simd::v_add32),
    (Add64, s_add64, simd::v_add64),
    (Sub8, s_sub8, simd::v_sub8),
    (Sub16, s_sub16, simd::v_sub16),
    (Sub32, s_sub32, simd::v_sub32),
    (Sub64, s_sub64, simd::v_sub64),
    (Mul16, s_mul16, simd::v_mul16),
    (Mul32, s_mul32, simd::v_mul32),
    (Mul64, s_mul64, s_mul64),
    (Shl32, s_shl32, simd::v_shl32),
    (Shl64, s_shl64, simd::v_shl64),
    (Lshr32, s_lshr32, simd::v_lshr32),
    (Lshr64, s_lshr64, simd::v_lshr64),
    (AShr32, s_ashr32, simd::v_ashr32),
    (AShr64, s_ashr64, s_ashr64),
    (UMin32, s_umin32, simd::v_umin32),
    (UMax32, s_umax32, simd::v_umax32),
    (SMin32, s_smin32, simd::v_smin32),
    (SMax32, s_smax32, simd::v_smax32),
    (UMin64, s_umin64, s_umin64),
    (UMax64, s_umax64, s_umax64),
    (SMin64, s_smin64, s_smin64),
    (SMax64, s_smax64, s_smax64),
    (FAdd32, s_fadd32, simd::v_fadd32),
    (FSub32, s_fsub32, simd::v_fsub32),
    (FMul32, s_fmul32, simd::v_fmul32),
    (FDiv32, s_fdiv32, simd::v_fdiv32),
    (FMin32, s_fmin32, s_fmin32),
    (FMax32, s_fmax32, s_fmax32),
    (FAdd64, s_fadd64, simd::v_fadd64),
    (FSub64, s_fsub64, simd::v_fsub64),
    (FMul64, s_fmul64, simd::v_fmul64),
    (FDiv64, s_fdiv64, simd::v_fdiv64),
    (FMin64, s_fmin64, s_fmin64),
    (FMax64, s_fmax64, s_fmax64),
    (Eq8, s_eq8, simd::v_eq8),
    (Ne8, s_ne8, simd::v_ne8),
    (Eq16, s_eq16, simd::v_eq16),
    (Ne16, s_ne16, simd::v_ne16),
    (Eq32, s_eq32, simd::v_eq32),
    (Ne32, s_ne32, simd::v_ne32),
    (Ult32, s_ult32, simd::v_ult32),
    (Ule32, s_ule32, simd::v_ule32),
    (Ugt32, s_ugt32, simd::v_ugt32),
    (Uge32, s_uge32, simd::v_uge32),
    (Slt32, s_slt32, simd::v_slt32),
    (Sle32, s_sle32, simd::v_sle32),
    (Sgt32, s_sgt32, simd::v_sgt32),
    (Sge32, s_sge32, simd::v_sge32),
    (Eq64, s_eq64, simd::v_eq64),
    (Ne64, s_ne64, simd::v_ne64),
    (Ult64, s_ult64, simd::v_ult64),
    (Ule64, s_ule64, simd::v_ule64),
    (Ugt64, s_ugt64, simd::v_ugt64),
    (Uge64, s_uge64, simd::v_uge64),
    (Slt64, s_slt64, simd::v_slt64),
    (Sle64, s_sle64, simd::v_sle64),
    (Sgt64, s_sgt64, simd::v_sgt64),
    (Sge64, s_sge64, simd::v_sge64),
    (FOeq32, s_foeq32, simd::v_foeq32),
    (FOne32, s_fone32, simd::v_fone32),
    (FOlt32, s_folt32, simd::v_folt32),
    (FOle32, s_fole32, simd::v_fole32),
    (FOgt32, s_fogt32, simd::v_fogt32),
    (FOge32, s_foge32, simd::v_foge32),
    (FOeq64, s_foeq64, simd::v_foeq64),
    (FOne64, s_fone64, simd::v_fone64),
    (FOlt64, s_folt64, simd::v_folt64),
    (FOle64, s_fole64, simd::v_fole64),
    (FOgt64, s_fogt64, simd::v_fogt64),
    (FOge64, s_foge64, simd::v_foge64),
}

#[cfg(not(target_arch = "x86_64"))]
bin_kernels! {
    (And, s_and, s_and),
    (Or, s_or, s_or),
    (Xor, s_xor, s_xor),
    (Add8, s_add8, s_add8),
    (Add16, s_add16, s_add16),
    (Add32, s_add32, s_add32),
    (Add64, s_add64, s_add64),
    (Sub8, s_sub8, s_sub8),
    (Sub16, s_sub16, s_sub16),
    (Sub32, s_sub32, s_sub32),
    (Sub64, s_sub64, s_sub64),
    (Mul16, s_mul16, s_mul16),
    (Mul32, s_mul32, s_mul32),
    (Mul64, s_mul64, s_mul64),
    (Shl32, s_shl32, s_shl32),
    (Shl64, s_shl64, s_shl64),
    (Lshr32, s_lshr32, s_lshr32),
    (Lshr64, s_lshr64, s_lshr64),
    (AShr32, s_ashr32, s_ashr32),
    (AShr64, s_ashr64, s_ashr64),
    (UMin32, s_umin32, s_umin32),
    (UMax32, s_umax32, s_umax32),
    (SMin32, s_smin32, s_smin32),
    (SMax32, s_smax32, s_smax32),
    (UMin64, s_umin64, s_umin64),
    (UMax64, s_umax64, s_umax64),
    (SMin64, s_smin64, s_smin64),
    (SMax64, s_smax64, s_smax64),
    (FAdd32, s_fadd32, s_fadd32),
    (FSub32, s_fsub32, s_fsub32),
    (FMul32, s_fmul32, s_fmul32),
    (FDiv32, s_fdiv32, s_fdiv32),
    (FMin32, s_fmin32, s_fmin32),
    (FMax32, s_fmax32, s_fmax32),
    (FAdd64, s_fadd64, s_fadd64),
    (FSub64, s_fsub64, s_fsub64),
    (FMul64, s_fmul64, s_fmul64),
    (FDiv64, s_fdiv64, s_fdiv64),
    (FMin64, s_fmin64, s_fmin64),
    (FMax64, s_fmax64, s_fmax64),
    (Eq8, s_eq8, s_eq8),
    (Ne8, s_ne8, s_ne8),
    (Eq16, s_eq16, s_eq16),
    (Ne16, s_ne16, s_ne16),
    (Eq32, s_eq32, s_eq32),
    (Ne32, s_ne32, s_ne32),
    (Ult32, s_ult32, s_ult32),
    (Ule32, s_ule32, s_ule32),
    (Ugt32, s_ugt32, s_ugt32),
    (Uge32, s_uge32, s_uge32),
    (Slt32, s_slt32, s_slt32),
    (Sle32, s_sle32, s_sle32),
    (Sgt32, s_sgt32, s_sgt32),
    (Sge32, s_sge32, s_sge32),
    (Eq64, s_eq64, s_eq64),
    (Ne64, s_ne64, s_ne64),
    (Ult64, s_ult64, s_ult64),
    (Ule64, s_ule64, s_ule64),
    (Ugt64, s_ugt64, s_ugt64),
    (Uge64, s_uge64, s_uge64),
    (Slt64, s_slt64, s_slt64),
    (Sle64, s_sle64, s_sle64),
    (Sgt64, s_sgt64, s_sgt64),
    (Sge64, s_sge64, s_sge64),
    (FOeq32, s_foeq32, s_foeq32),
    (FOne32, s_fone32, s_fone32),
    (FOlt32, s_folt32, s_folt32),
    (FOle32, s_fole32, s_fole32),
    (FOgt32, s_fogt32, s_fogt32),
    (FOge32, s_foge32, s_foge32),
    (FOeq64, s_foeq64, s_foeq64),
    (FOne64, s_fone64, s_fone64),
    (FOlt64, s_folt64, s_folt64),
    (FOle64, s_fole64, s_fole64),
    (FOgt64, s_fogt64, s_fogt64),
    (FOge64, s_foge64, s_foge64),
}

#[cfg(target_arch = "x86_64")]
un_kernels! {
    (Rot8, s_rot8, s_rot8),
    (Rot16, s_rot16, s_rot16),
    (Rot32, s_rot32, simd::v_rot32),
    (Rot64, s_rot64, simd::v_rot64),
}

#[cfg(not(target_arch = "x86_64"))]
un_kernels! {
    (Rot8, s_rot8, s_rot8),
    (Rot16, s_rot16, s_rot16),
    (Rot32, s_rot32, s_rot32),
    (Rot64, s_rot64, s_rot64),
}

static SCALAR_TABLE: KernelTable = KernelTable { bin: SCALAR_BIN, un: SCALAR_UN, simd: false };
#[cfg(target_arch = "x86_64")]
static SIMD_TABLE: KernelTable = KernelTable { bin: SIMD_BIN, un: SIMD_UN, simd: true };

#[cfg(test)]
mod tests {
    use super::*;
    use elzar_avx::{LaneWidth, Ymm};
    use elzar_rng::DetRng;

    fn rand_reg(rng: &mut DetRng) -> [u64; 4] {
        // Mix raw randomness with degenerate patterns (equal lanes,
        // all-ones, zeros, sign boundaries) so compares and shifts see
        // their edge cases.
        match rng.below(5) {
            0 => [0; 4],
            1 => [u64::MAX; 4],
            2 => {
                let x = rng.next_u64();
                [x; 4]
            }
            3 => {
                let x = rng.next_u64();
                [x, x ^ 1, x, x.wrapping_neg()]
            }
            _ => [rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()],
        }
    }

    #[test]
    fn simd_table_matches_scalar_table() {
        if !crate::avx2_available() {
            return;
        }
        let (s, v) = (table(false), table(true));
        let mut rng = DetRng::seed_from_u64(0xE17A);
        for _ in 0..400 {
            let (a, b) = (rand_reg(&mut rng), rand_reg(&mut rng));
            for k in BinKernel::ALL {
                assert_eq!(
                    (s.bin[k as usize])(&a, &b),
                    (v.bin[k as usize])(&a, &b),
                    "kernel {k:?} diverges on {a:x?} {b:x?}"
                );
            }
            for k in UnKernel::ALL {
                assert_eq!((s.un[k as usize])(&a), (v.un[k as usize])(&a), "kernel {k:?} diverges on {a:x?}");
            }
        }
    }

    #[test]
    fn scalar_kernels_match_ymm_spec() {
        // The scalar table against `elzar_avx::Ymm` lane ops — the
        // executable spec named by the paper reproduction.
        type Case = (BinKernel, LaneWidth, fn(u64, u64) -> u64);
        let t = table(false);
        let mut rng = DetRng::seed_from_u64(0x5EED);
        for _ in 0..200 {
            let (al, bl) = (rand_reg(&mut rng), rand_reg(&mut rng));
            let (a, b) = (Ymm::from_limbs(al), Ymm::from_limbs(bl));
            let cases: [Case; 8] = [
                (BinKernel::Add64, LaneWidth::B64, u64::wrapping_add),
                (BinKernel::Xor, LaneWidth::B64, |x, y| x ^ y),
                (BinKernel::Mul32, LaneWidth::B32, |x, y| u64::from((x as u32).wrapping_mul(y as u32))),
                (BinKernel::Sub16, LaneWidth::B16, |x, y| u64::from((x as u16).wrapping_sub(y as u16))),
                (BinKernel::Add8, LaneWidth::B8, |x, y| u64::from((x as u8).wrapping_add(y as u8))),
                (BinKernel::Shl64, LaneWidth::B64, |x, y| x.wrapping_shl((y % 64) as u32)),
                (BinKernel::AShr32, LaneWidth::B32, |x, y| ((x as u32 as i32) >> (y % 32)) as u32 as u64),
                (BinKernel::FMul64, LaneWidth::B64, |x, y| (f64::from_bits(x) * f64::from_bits(y)).to_bits()),
            ];
            for (k, w, f) in cases {
                let got = Ymm::from_limbs((t.bin[k as usize])(&al, &bl));
                let want = a.map2(&b, w, w.capacity(), f);
                assert_eq!(got, want, "kernel {k:?}");
            }
            // Compares produce canonical AVX masks.
            let got = Ymm::from_limbs((t.bin[BinKernel::Ult64 as usize])(&al, &bl));
            let want = a.cmp_mask(&b, LaneWidth::B64, 4, |x, y| x < y);
            assert_eq!(got, want, "Ult64 mask");
            let got = Ymm::from_limbs((t.bin[BinKernel::Sgt32 as usize])(&al, &bl));
            let want = a.cmp_mask(&b, LaneWidth::B32, 8, |x, y| (x as u32 as i32) > (y as u32 as i32));
            assert_eq!(got, want, "Sgt32 mask");
            // Rotates are the Figure-8 shuffle at full register width.
            for (k, w) in [
                (UnKernel::Rot8, LaneWidth::B8),
                (UnKernel::Rot16, LaneWidth::B16),
                (UnKernel::Rot32, LaneWidth::B32),
                (UnKernel::Rot64, LaneWidth::B64),
            ] {
                let got = Ymm::from_limbs((t.un[k as usize])(&al));
                let want = a.rotate_lanes(w, w.capacity());
                assert_eq!(got, want, "kernel {k:?}");
            }
        }
    }

    #[test]
    fn float_edge_cases_agree_across_tables() {
        if !crate::avx2_available() {
            return;
        }
        let (s, v) = (table(false), table(true));
        let specials = [
            0.0f64.to_bits(),
            (-0.0f64).to_bits(),
            f64::NAN.to_bits(),
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            f64::MIN_POSITIVE.to_bits(),
            1.5f64.to_bits(),
            (-2.25f64).to_bits(),
        ];
        for &x in &specials {
            for &y in &specials {
                let a = [x; 4];
                let b = [y; 4];
                for k in [
                    BinKernel::FAdd64,
                    BinKernel::FDiv64,
                    BinKernel::FOeq64,
                    BinKernel::FOne64,
                    BinKernel::FOlt64,
                    BinKernel::FOge64,
                ] {
                    assert_eq!(
                        (s.bin[k as usize])(&a, &b),
                        (v.bin[k as usize])(&a, &b),
                        "kernel {k:?} on {x:#x} vs {y:#x}"
                    );
                }
            }
        }
    }
}
