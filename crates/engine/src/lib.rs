//! # elzar-engine
//!
//! Execution-engine selection and 256-bit kernel tables for the ELZAR
//! reproduction.
//!
//! The reference interpreter in `elzar-vm` steps one lowered instruction
//! at a time. This crate provides everything a faster *trace* backend
//! needs that is independent of the VM itself:
//!
//! - [`EngineKind`]: the user-facing knob (`MachineConfig::engine`, with
//!   an `ELZAR_ENGINE` environment override) naming which engine runs a
//!   machine, and its resolution to a concrete [`Backend`] after runtime
//!   CPU-feature detection.
//! - [`kernels`]: two bit-identical tables of 256-bit register kernels —
//!   a portable scalar table, and an AVX2 table built on real
//!   `std::arch::x86_64` intrinsics that is only ever installed when
//!   `is_x86_feature_detected!("avx2")` succeeds at runtime.
//! - [`Engine`]: the trait a VM implements per engine so callers can
//!   drive quantum-sized execution steps generically.
//!
//! The crate deliberately knows nothing about lowered instructions or
//! timing; `elzar-vm` owns trace formation and execution and uses these
//! tables for the data-parallel inner ops. Kernels operate on the raw
//! `[u64; 4]` limb representation of [`elzar_avx::Ymm`], whose lane
//! semantics are the executable specification both tables must match.

#![warn(missing_docs)]

pub mod kernels;

/// Which execution engine a [`MachineConfig`](index.html) asks for.
///
/// `Trace` (the default) auto-selects SIMD kernels when the host CPU
/// supports AVX2 and falls back to the bit-identical scalar kernel table
/// otherwise; `TraceScalar`/`TraceSimd` force one side of that dispatch
/// (a forced `TraceSimd` still degrades to scalar kernels on hosts
/// without AVX2 rather than failing). `Reference` is the original
/// per-instruction interpreter.
///
/// The `ELZAR_ENGINE` environment variable (values `reference`, `trace`,
/// `trace-scalar`, `trace-simd`) overrides the configured kind at
/// [`EngineKind::resolve`] time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The original per-instruction reference interpreter.
    Reference,
    /// Superblock trace execution; kernel table picked by runtime AVX2
    /// detection. The default.
    #[default]
    Trace,
    /// Trace execution pinned to the portable scalar kernel table.
    TraceScalar,
    /// Trace execution pinned to the AVX2 kernel table (scalar fallback
    /// if the host lacks AVX2).
    TraceSimd,
}

/// The concrete backend a machine runs after env override and CPU
/// feature detection are applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Per-instruction reference interpreter.
    Reference,
    /// Trace execution with the scalar kernel table.
    TraceScalar,
    /// Trace execution with the AVX2 kernel table.
    TraceSimd,
}

impl EngineKind {
    /// Parse an engine name as used by `ELZAR_ENGINE`.
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s.trim() {
            "reference" | "ref" => Some(EngineKind::Reference),
            "trace" => Some(EngineKind::Trace),
            "trace-scalar" | "trace_scalar" | "scalar" => Some(EngineKind::TraceScalar),
            "trace-simd" | "trace_simd" | "simd" => Some(EngineKind::TraceSimd),
            _ => None,
        }
    }

    /// Canonical name (round-trips through [`EngineKind::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Reference => "reference",
            EngineKind::Trace => "trace",
            EngineKind::TraceScalar => "trace-scalar",
            EngineKind::TraceSimd => "trace-simd",
        }
    }

    /// The engine requested by the `ELZAR_ENGINE` environment variable,
    /// if set to a recognized name.
    pub fn from_env() -> Option<EngineKind> {
        std::env::var("ELZAR_ENGINE").ok().as_deref().and_then(EngineKind::parse)
    }

    /// Resolve to a concrete [`Backend`]: the `ELZAR_ENGINE` override
    /// wins over the configured kind, then `Trace`/`TraceSimd` pick the
    /// SIMD table only when the host actually has AVX2 (and
    /// `ELZAR_FORCE_SCALAR` is not set).
    pub fn resolve(self) -> Backend {
        match EngineKind::from_env().unwrap_or(self) {
            EngineKind::Reference => Backend::Reference,
            EngineKind::TraceScalar => Backend::TraceScalar,
            EngineKind::Trace | EngineKind::TraceSimd => {
                if avx2_available() {
                    Backend::TraceSimd
                } else {
                    Backend::TraceScalar
                }
            }
        }
    }
}

/// True when `ELZAR_FORCE_SCALAR` is set to anything but `0`/empty —
/// used by CI to exercise the scalar fallback on AVX2 hosts, since
/// `is_x86_feature_detected!` ignores `RUSTFLAGS`.
pub fn forced_scalar() -> bool {
    matches!(std::env::var("ELZAR_FORCE_SCALAR"), Ok(v) if !v.is_empty() && v != "0")
}

/// Runtime check: may trace execution use the AVX2 kernel table?
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        !forced_scalar() && is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Names of the SIMD-relevant CPU features detected at runtime, for
/// benchmark reports.
pub fn cpu_features() -> Vec<&'static str> {
    let mut out = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        for (name, have) in [
            ("sse4.2", is_x86_feature_detected!("sse4.2")),
            ("avx", is_x86_feature_detected!("avx")),
            ("avx2", is_x86_feature_detected!("avx2")),
            ("fma", is_x86_feature_detected!("fma")),
            ("avx512f", is_x86_feature_detected!("avx512f")),
        ] {
            if have {
                out.push(name);
            }
        }
    }
    out
}

/// A pluggable execution engine over some machine type `M`.
///
/// The contract mirrors the VM's scheduler granularity: one call
/// executes up to a scheduling quantum of instructions on `thread`,
/// leaving the machine in exactly the state the reference interpreter
/// would produce — same retired-instruction sequence, same cycle
/// accounting, same eligible-instruction count, so `run`, `reenter` and
/// `reenter_batch` semantics (and every golden digest) are
/// engine-invariant.
pub trait Engine<M: ?Sized> {
    /// Error type surfaced by execution (the VM's trap type).
    type Error;

    /// Which engine this is.
    fn kind(&self) -> EngineKind;

    /// Execute up to one scheduling quantum on `thread`.
    fn step_quantum(&self, m: &mut M, thread: usize) -> Result<(), Self::Error>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for k in [EngineKind::Reference, EngineKind::Trace, EngineKind::TraceScalar, EngineKind::TraceSimd] {
            assert_eq!(EngineKind::parse(k.name()), Some(k));
        }
        assert_eq!(EngineKind::parse("banana"), None);
    }

    #[test]
    fn resolve_honors_kind() {
        // No ELZAR_ENGINE in the test environment: configured kind wins.
        if EngineKind::from_env().is_none() {
            assert_eq!(EngineKind::Reference.resolve(), Backend::Reference);
            assert_eq!(EngineKind::TraceScalar.resolve(), Backend::TraceScalar);
            let auto = EngineKind::Trace.resolve();
            assert!(auto == Backend::TraceScalar || auto == Backend::TraceSimd);
            if avx2_available() {
                assert_eq!(auto, Backend::TraceSimd);
                assert_eq!(EngineKind::TraceSimd.resolve(), Backend::TraceSimd);
            } else {
                assert_eq!(auto, Backend::TraceScalar);
                assert_eq!(EngineKind::TraceSimd.resolve(), Backend::TraceScalar);
            }
        }
    }
}
