//! Differential tests for the parallel campaign driver: for a fixed
//! seed, the serial driver (`workers == 1`) and every parallel fan-out
//! must produce bit-identical outcome histograms, per-run outcome
//! sequences, eligible counts and golden cycles. Host parallelism may
//! only change wall-clock time, never results.

use elzar::{build, Mode};
use elzar_fault::{golden_run, run_campaign, run_plans, sample_plans, CampaignConfig};
use elzar_ir::builder::{c64, FuncBuilder};
use elzar_ir::{Builtin, Module, Ty};

/// A compute kernel with observable output and enough instructions for
/// interesting injection points.
fn kernel() -> Module {
    let mut m = Module::new("fi-par");
    let mut b = FuncBuilder::new("main", vec![], Ty::I64);
    let buf = b.call_builtin(Builtin::Malloc, vec![c64(32 * 8)], Ty::Ptr).unwrap();
    b.counted_loop(c64(0), c64(32), |b, i| {
        let v = b.mul(i, c64(0x9E37));
        let x = b.bin(elzar_ir::BinOp::Xor, Ty::I64, v, c64(0x5A5A));
        let p = b.gep(buf, i, 8);
        b.store(Ty::I64, x, p);
    });
    let acc = b.alloca(Ty::I64, c64(1));
    b.store(Ty::I64, c64(0), acc);
    b.counted_loop(c64(0), c64(32), |b, i| {
        let p = b.gep(buf, i, 8);
        let v = b.load(Ty::I64, p);
        let a = b.load(Ty::I64, acc);
        let s = b.add(a, v);
        b.store(Ty::I64, s, acc);
    });
    let v = b.load(Ty::I64, acc);
    b.call_builtin(Builtin::OutputI64, vec![v.into()], Ty::Void);
    b.ret(c64(0));
    m.add_func(b.finish());
    m
}

#[test]
fn serial_and_parallel_campaigns_are_bit_identical() {
    for mode in [Mode::NativeNoSimd, Mode::elzar_default()] {
        let prog = build(&kernel(), &mode);
        let serial = run_campaign(
            &prog,
            &[],
            &CampaignConfig { runs: 60, seed: 0xD1FF, workers: 1, ..Default::default() },
        );
        for workers in [2, 3, 8, 61] {
            let par = run_campaign(
                &prog,
                &[],
                &CampaignConfig { runs: 60, seed: 0xD1FF, workers, ..Default::default() },
            );
            assert_eq!(serial.counts, par.counts, "{mode:?} with {workers} workers: histogram");
            assert_eq!(serial.eligible, par.eligible, "{mode:?}: eligible");
            assert_eq!(serial.golden_cycles, par.golden_cycles, "{mode:?}: cycles");
        }
    }
}

#[test]
fn per_run_outcome_sequences_match_across_worker_counts() {
    let prog = build(&kernel(), &Mode::elzar_default());
    let machine = CampaignConfig::default().machine;
    let golden = golden_run(&prog, &[], &machine);
    let plans = sample_plans(0xBEEF, golden.eligible, 40);
    let serial = run_plans(&prog, &[], &golden, &plans, &CampaignConfig { workers: 1, ..Default::default() });
    let parallel =
        run_plans(&prog, &[], &golden, &plans, &CampaignConfig { workers: 7, ..Default::default() });
    assert_eq!(serial, parallel, "outcome sequence must not depend on scheduling");
}

#[test]
fn checkpointed_and_naive_drivers_agree_exactly() {
    // The checkpoint-sharing driver must be a pure wall-clock
    // optimization: per-run outcomes identical to re-interpreting every
    // run from the start, for both hardened and plain builds.
    for mode in [Mode::NativeNoSimd, Mode::elzar_default()] {
        let prog = build(&kernel(), &mode);
        let machine = CampaignConfig::default().machine;
        let golden = golden_run(&prog, &[], &machine);
        let plans = sample_plans(0xC0DE, golden.eligible, 50);
        let shared = run_plans(
            &prog,
            &[],
            &golden,
            &plans,
            &CampaignConfig { workers: 1, share_prefixes: true, ..Default::default() },
        );
        let naive = run_plans(
            &prog,
            &[],
            &golden,
            &plans,
            &CampaignConfig { workers: 1, share_prefixes: false, ..Default::default() },
        );
        assert_eq!(shared, naive, "{mode:?}: checkpointing changed outcomes");
    }
}

#[test]
fn plan_stream_is_a_pure_function_of_seed() {
    let a = sample_plans(42, 1000, 50);
    let b = sample_plans(42, 1000, 50);
    let c = sample_plans(43, 1000, 50);
    assert_eq!(a, b);
    assert_ne!(a, c);
    for &(index, bit) in &a {
        assert!((1..=1000).contains(&index));
        assert!(bit < 256);
    }
}
