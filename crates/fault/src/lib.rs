//! # elzar-fault
//!
//! Single-event-upset fault-injection campaigns (§IV-B of the paper).
//!
//! A campaign first performs a *golden run* to record the program's
//! reference output and the number of fault-eligible dynamic instructions
//! (instructions in hardened code that write a destination register).
//! Each injection run then flips one uniformly random bit of the
//! destination register of one uniformly random eligible instruction —
//! GPR bits for scalars, one YMM lane bit for vectors — and the result is
//! classified per the paper's Table I:
//!
//! | outcome          | meaning                               | class     |
//! |------------------|---------------------------------------|-----------|
//! | `Hang`           | program became unresponsive           | Crashed   |
//! | `OsDetected`     | trap (segfault, div-by-zero, …)       | Crashed   |
//! | `ElzarCorrected` | recovery fired, output matches golden | Correct   |
//! | `Masked`         | fault did not affect the output       | Correct   |
//! | `Sdc`            | silent data corruption in the output  | Corrupted |
//!
//! ```
//! use elzar::{build, Mode};
//! use elzar_fault::{run_campaign, CampaignConfig};
//! use elzar_ir::builder::{c64, FuncBuilder};
//! use elzar_ir::{Builtin, Module, Ty};
//!
//! let mut m = Module::new("demo");
//! let mut b = FuncBuilder::new("main", vec![], Ty::I64);
//! let acc = b.alloca(Ty::I64, c64(1));
//! b.store(Ty::I64, c64(0), acc);
//! b.counted_loop(c64(0), c64(40), |b, i| {
//!     let v = b.load(Ty::I64, acc);
//!     let s = b.add(v, i);
//!     b.store(Ty::I64, s, acc);
//! });
//! let v = b.load(Ty::I64, acc);
//! b.call_builtin(Builtin::OutputI64, vec![v.into()], Ty::Void);
//! b.ret(c64(0));
//! m.add_func(b.finish());
//!
//! let prog = build(&m, &Mode::elzar_default());
//! let result = run_campaign(&prog, &[], &CampaignConfig { runs: 50, ..Default::default() });
//! assert_eq!(result.total(), 50);
//! ```

#![warn(missing_docs)]

use elzar_obs::debug;
use elzar_rng::DetRng;
use elzar_vm::{run_program, FaultPlan, Machine, MachineConfig, Program, RunOutcome, RunResult};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Fault-injection outcome (Table I).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Outcome {
    /// Program exceeded its step budget ("became unresponsive").
    Hang,
    /// A hardware/OS trap terminated the program.
    OsDetected,
    /// ELZAR detected and corrected the fault; output correct.
    ElzarCorrected,
    /// Fault did not affect the output.
    Masked,
    /// Silent data corruption: output differs from the golden run.
    Sdc,
}

impl Outcome {
    /// The coarse system-state class used in Figure 13.
    pub fn class(self) -> OutcomeClass {
        match self {
            Outcome::Hang | Outcome::OsDetected => OutcomeClass::Crashed,
            Outcome::ElzarCorrected | Outcome::Masked => OutcomeClass::Correct,
            Outcome::Sdc => OutcomeClass::Corrupted,
        }
    }

    /// All outcomes, in Table I order.
    pub fn all() -> [Outcome; 5] {
        [Outcome::Hang, Outcome::OsDetected, Outcome::ElzarCorrected, Outcome::Masked, Outcome::Sdc]
    }

    /// This outcome's slot in Table-I-ordered count arrays
    /// ([`Outcome::all`] order).
    pub fn index(self) -> usize {
        Outcome::all().iter().position(|x| *x == self).expect("known outcome")
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Outcome::Hang => "hang",
            Outcome::OsDetected => "os-detected",
            Outcome::ElzarCorrected => "elzar-corrected",
            Outcome::Masked => "masked",
            Outcome::Sdc => "SDC",
        };
        f.write_str(s)
    }
}

/// Coarse classes (the stacked bars of Figure 13).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OutcomeClass {
    /// Hang or OS-detected.
    Crashed,
    /// Corrected or masked.
    Correct,
    /// Silent data corruption.
    Corrupted,
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Number of injection runs.
    pub runs: u32,
    /// RNG seed for injection-point sampling.
    pub seed: u64,
    /// Host worker threads to parallelize runs over.
    pub workers: u32,
    /// Hang budget as a multiple of the golden run's retired instructions.
    pub hang_factor: u64,
    /// Base machine configuration (threads inside the VM etc.).
    pub machine: MachineConfig,
    /// Share the pre-injection prefix between runs via machine
    /// checkpoints instead of re-interpreting it per run. Outcomes are
    /// identical either way (execution is deterministic); this is a
    /// pure wall-clock optimization, on by default.
    pub share_prefixes: bool,
    /// Advance checkpoint bases on the `elzar_sim` discrete-event core
    /// (the default): each fault-free round is a scheduled wake-up at
    /// the base machine's cycle count. `false` runs the legacy
    /// hand-rolled while-loop — kept for one PR so the old-vs-new
    /// equality test can pin both paths outcome-identical.
    pub event_core: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            runs: 200,
            seed: 0xE12A,
            workers: std::thread::available_parallelism().map(|n| n.get() as u32).unwrap_or(4),
            hang_factor: 20,
            machine: MachineConfig::default(),
            share_prefixes: true,
            event_core: true,
        }
    }
}

/// Aggregate campaign result.
#[derive(Clone, Debug, Default)]
pub struct CampaignResult {
    /// Counts per outcome, Table-I order.
    pub counts: [u64; 5],
    /// Eligible instructions in the golden run.
    pub eligible: u64,
    /// Golden-run cycles.
    pub golden_cycles: u64,
}

impl CampaignResult {
    /// Total runs.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count for one outcome.
    pub fn count(&self, o: Outcome) -> u64 {
        self.counts[o.index()]
    }

    /// Fraction for one outcome in `[0, 1]`.
    pub fn rate(&self, o: Outcome) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.count(o) as f64 / self.total() as f64
        }
    }

    /// Fraction for a coarse class.
    pub fn class_rate(&self, c: OutcomeClass) -> f64 {
        Outcome::all().iter().filter(|o| o.class() == c).map(|o| self.rate(*o)).sum()
    }

    fn record(&mut self, o: Outcome) {
        self.counts[o.index()] += 1;
    }
}

/// Reference execution data.
#[derive(Clone, Debug)]
pub struct GoldenRun {
    /// Observable output.
    pub output: Vec<u8>,
    /// Exit outcome.
    pub outcome: RunOutcome,
    /// Fault-eligible instruction count.
    pub eligible: u64,
    /// Retired instructions (hang budget base).
    pub steps: u64,
    /// Cycles.
    pub cycles: u64,
}

/// Perform the golden (fault-free) run.
///
/// # Panics
/// Panics if the fault-free program does not exit cleanly — campaigns on
/// broken programs are meaningless.
pub fn golden_run(prog: &Program, input: &[u8], machine: &MachineConfig) -> GoldenRun {
    let mut cfg = *machine;
    cfg.fault = None;
    let r = run_program(prog, "main", input, cfg);
    assert!(matches!(r.outcome, RunOutcome::Exited(_)), "golden run must exit cleanly, got {:?}", r.outcome);
    assert!(r.eligible > 0, "program has no fault-eligible instructions");
    debug::emit("fault", || {
        format!("golden run: {} steps, {} cycles, {} eligible instructions", r.steps, r.cycles, r.eligible)
    });
    GoldenRun { output: r.output, outcome: r.outcome, eligible: r.eligible, steps: r.steps, cycles: r.cycles }
}

/// Classify one faulty run against the golden reference.
pub fn classify(golden: &GoldenRun, faulty: &RunResult) -> Outcome {
    match faulty.outcome {
        RunOutcome::StepLimit => Outcome::Hang,
        RunOutcome::Trapped(_) => Outcome::OsDetected,
        RunOutcome::Exited(_) => {
            if faulty.outcome == golden.outcome && faulty.output == golden.output {
                if faulty.corrections > 0 {
                    Outcome::ElzarCorrected
                } else {
                    Outcome::Masked
                }
            } else {
                Outcome::Sdc
            }
        }
    }
}

/// Run a prepared machine under one fault plan and classify it against
/// `golden`. This is *the* single-run injector — the campaign driver
/// (from-scratch and checkpointed paths) and the serving runtime's
/// online injection all funnel through it, so there is exactly one
/// definition of "inject a fault and classify the outcome".
///
/// `m` must be positioned strictly before eligible instruction `index`
/// (a fresh [`Machine::start`], a campaign checkpoint clone, or a
/// reentered resident shard). The hang budget is
/// `golden.steps * hang_factor + 100_000` retired instructions,
/// measured on the machine's own step counter.
///
/// Returns the Table-I outcome together with the faulty run's full
/// [`RunResult`] (the serving runtime charges its cycles as the
/// request's service time).
pub fn inject_one(
    m: Machine<'_>,
    golden: &GoldenRun,
    index: u64,
    bit: u32,
    hang_factor: u64,
) -> (Outcome, RunResult) {
    let (o, r, _) = inject_probe(m, golden, index, bit, hang_factor);
    (o, r)
}

/// [`inject_one`] that additionally hands the *post-fault machine*
/// back to the caller — the divergence-probe variant.
///
/// Classification per Table I compares observable *output*; a second,
/// independent SDC detector can instead compare the machine's resident
/// *state* after the faulty execution against the committed reference
/// state (the serving runtime's primary/replica divergence checker does
/// exactly this). That comparison needs the corrupted machine itself,
/// which [`inject_one`] consumes — this variant returns it. The
/// machine's memory is only meaningful for outcomes that exited; a
/// hung or trapped machine was cut mid-flight and its state carries no
/// committed semantics.
pub fn inject_probe<'p>(
    mut m: Machine<'p>,
    golden: &GoldenRun,
    index: u64,
    bit: u32,
    hang_factor: u64,
) -> (Outcome, RunResult, Machine<'p>) {
    m.set_fault(Some(FaultPlan { index, bit }));
    m.set_step_limit(golden.steps.saturating_mul(hang_factor).saturating_add(100_000));
    let outcome = m.run_to_completion();
    let r = m.result(outcome);
    let o = classify(golden, &r);
    (o, r, m)
}

/// Inject one fault at eligible instruction `index` (1-based), flipping
/// raw bit `bit`, and classify the result. Interprets the whole program
/// from the start; the campaign's checkpointed path avoids that.
pub fn inject_once(
    prog: &Program,
    input: &[u8],
    golden: &GoldenRun,
    index: u64,
    bit: u32,
    machine: &MachineConfig,
    hang_factor: u64,
) -> Outcome {
    let mut cfg = *machine;
    cfg.fault = None;
    inject_one(Machine::start(prog, "main", input, cfg), golden, index, bit, hang_factor).0
}

/// A committed-suffix replay failed: a payload that should have exited
/// cleanly hung, trapped or otherwise diverged.
///
/// The suffix handed to [`replay_suffix`] consists of requests that
/// already committed on the original machine, so a non-clean outcome
/// means the machine being replayed onto is *not* the snapshot the
/// suffix extends — a corrupted standby, a stale clone, a wrong entry.
/// Callers with a fallback (the serving runtime's warm-replica rebuild
/// degrades to cold restart-from-snapshot) match on this instead of
/// aborting the whole run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReplayError {
    /// Zero-based position of the failing payload among the *kept*
    /// payloads (replay order, after any [`replay_suffix_where`]
    /// filtering).
    pub at: u64,
    /// The outcome the failing payload actually produced.
    pub outcome: RunOutcome,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "suffix replay diverged at payload {}: expected a clean exit, got {:?}",
            self.at, self.outcome
        )
    }
}

impl std::error::Error for ReplayError {}

/// Deterministically replay a committed request suffix on a machine
/// restored from a snapshot: one [`Machine::reenter`] + run per
/// payload, in order. Returns the total replayed virtual cycles.
///
/// This is the serving runtime's crash-recovery primitive, the
/// request-granular twin of the campaign's checkpoint sharing
/// ([`run_plans`]): a shard that snapshots every K requests does not
/// hold the pre-request state of an arbitrary request — on a crash (or
/// to build a fault twin) it restores the last snapshot and replays the
/// committed-but-unsnapshotted suffix. Because the machine is
/// deterministic and shards commit only reference executions, the
/// replayed state is bit-identical to the state the resident machine
/// reached by serving those requests live, whatever batching produced
/// it.
///
/// # Errors
/// Returns a [`ReplayError`] if a replayed request does not exit
/// cleanly; `m` is then left mid-divergence and must be discarded.
pub fn replay_suffix(m: &mut Machine<'_>, entry: &str, payloads: &[&[u8]]) -> Result<u64, ReplayError> {
    replay_suffix_where(m, entry, payloads, |_| true).map(|(cycles, _)| cycles)
}

/// [`replay_suffix`] restricted to the payloads a predicate keeps —
/// the *migration* primitive of the adaptive serving layer.
///
/// When a key range moves to another shard (elastic scale-up), the
/// joining shard boots from the donor's snapshot and must reconstruct
/// the *current* state of exactly the keys it takes over: it replays
/// the donor's committed suffix filtered to requests whose routing key
/// falls in the migrated range (`keep`, typically a key-range predicate
/// built from the app's `ServeApp::key_of` mirror). Because requests only
/// touch state owned by their own key, the filtered replay reconstructs
/// the migrated range bit-for-bit while leaving unrelated keys at
/// whatever state the snapshot carried — and the skipped payloads cost
/// nothing, which is what makes migration cheaper than a full replay.
///
/// Returns `(replayed virtual cycles, replayed request count)`.
///
/// # Errors
/// Returns a [`ReplayError`] if a kept payload does not exit cleanly
/// (see [`replay_suffix`]); `at` indexes the failing payload among the
/// kept ones.
pub fn replay_suffix_where(
    m: &mut Machine<'_>,
    entry: &str,
    payloads: &[&[u8]],
    keep: impl Fn(&[u8]) -> bool,
) -> Result<(u64, u64), ReplayError> {
    let mut cycles = 0;
    let mut replayed = 0;
    for p in payloads {
        if !keep(p) {
            continue;
        }
        m.reenter(entry, p);
        let o = m.run_to_completion();
        if !matches!(o, RunOutcome::Exited(_)) {
            return Err(ReplayError { at: replayed, outcome: o });
        }
        cycles += m.cycles_so_far().max(1);
        replayed += 1;
    }
    Ok((cycles, replayed))
}

/// Sample the campaign's fault plans: `runs` pairs of (eligible index,
/// raw bit). The stream depends only on `(seed, eligible, runs)` — never
/// on worker count or scheduling — so any execution order over these
/// plans reproduces the same histogram.
pub fn sample_plans(seed: u64, eligible: u64, runs: u32) -> Vec<(u64, u32)> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..runs).map(|_| (rng.range_inclusive(1, eligible), rng.below(256) as u32)).collect()
}

/// Run a full campaign: golden run + `cfg.runs` single-SEU injections at
/// uniformly random eligible instructions and bits, parallelized across
/// host threads.
///
/// Determinism contract: the outcome histogram (and every per-run
/// outcome) is a pure function of `(program, input, seed, runs)`.
/// `workers` only changes wall-clock time — workers pull plan indices
/// from a shared counter and write outcomes back by index, so serial
/// (`workers == 1`) and parallel campaigns are bit-identical.
///
/// Callers that already hold the reference execution (e.g. a build
/// artifact's cached golden-run table) should use
/// [`run_campaign_with_golden`] instead and skip the recomputation.
pub fn run_campaign(prog: &Program, input: &[u8], cfg: &CampaignConfig) -> CampaignResult {
    let golden = golden_run(prog, input, &cfg.machine);
    run_campaign_with_golden(prog, input, &golden, cfg)
}

/// [`run_campaign`] against an already-computed golden run.
///
/// `golden` must be the reference execution of exactly `(prog, input,
/// cfg.machine)` — campaigns classified against a foreign golden run are
/// meaningless. The campaign itself never re-executes the fault-free
/// program: injection plans are sampled from `golden.eligible` and every
/// faulty run is classified against `golden`'s output.
pub fn run_campaign_with_golden(
    prog: &Program,
    input: &[u8],
    golden: &GoldenRun,
    cfg: &CampaignConfig,
) -> CampaignResult {
    let plans = sample_plans(cfg.seed, golden.eligible, cfg.runs);
    let mut result =
        CampaignResult { counts: [0; 5], eligible: golden.eligible, golden_cycles: golden.cycles };
    if plans.is_empty() {
        return result;
    }
    debug::emit("fault", || {
        format!(
            "campaign start: {} plans over {} eligible instructions, {} workers, seed={:#x}",
            plans.len(),
            golden.eligible,
            cfg.workers.max(1),
            cfg.seed
        )
    });
    for o in run_plans(prog, input, golden, &plans, cfg) {
        result.record(o);
    }
    debug::emit("fault", || {
        let c = result.counts;
        format!("campaign done: hang={} os={} corrected={} masked={} sdc={}", c[0], c[1], c[2], c[3], c[4])
    });
    result
}

/// Execute the given fault plans and return per-plan outcomes in plan
/// order, fanned out over `cfg.workers` OS threads.
///
/// With `cfg.share_prefixes` (the default) each worker advances one
/// *base* machine through the fault-free execution and branches a
/// checkpoint clone off it per plan, so a plan only pays for the
/// execution *after* its injection point; otherwise every plan
/// re-interprets the whole program from the start. The two strategies
/// produce identical outcomes — the machine is deterministic and a
/// clone resumes exactly where the original stood.
pub fn run_plans(
    prog: &Program,
    input: &[u8],
    golden: &GoldenRun,
    plans: &[(u64, u32)],
    cfg: &CampaignConfig,
) -> Vec<Outcome> {
    if plans.is_empty() {
        return Vec::new();
    }
    let workers = (cfg.workers.max(1) as usize).min(plans.len());
    // Process plans in ascending injection order so a worker's base
    // machine only ever advances; scatter outcomes back to plan order.
    let mut order: Vec<usize> = (0..plans.len()).collect();
    if cfg.share_prefixes {
        order.sort_by_key(|&i| plans[i].0);
    }
    let next = AtomicUsize::new(0);
    let mut outcomes: Vec<Option<Outcome>> = vec![None; plans.len()];
    let tagged: Vec<(usize, Outcome)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let order = &order;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    let mut base: Option<Machine> = None;
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= order.len() {
                            return local;
                        }
                        let i = order[k];
                        let (index, bit) = plans[i];
                        // Checkpointing requires a reachable injection
                        // point; hand-built plans outside
                        // `1..=golden.eligible` (where the fault can
                        // never fire) take the plain path instead.
                        let o = if cfg.share_prefixes && (1..=golden.eligible).contains(&index) {
                            let m = base.get_or_insert_with(|| {
                                let mut mc = cfg.machine;
                                mc.fault = None;
                                Machine::start(prog, "main", input, mc)
                            });
                            inject_from_checkpoint(m, golden, index, bit, cfg.hang_factor, cfg.event_core)
                        } else {
                            inject_once(prog, input, golden, index, bit, &cfg.machine, cfg.hang_factor)
                        };
                        local.push((i, o));
                    }
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
    });
    for (i, o) in tagged {
        outcomes[i] = Some(o);
    }
    outcomes.into_iter().map(|o| o.expect("every plan executed")).collect()
}

/// Advance `base` (a fault-free execution) to just below the injection
/// point, then branch a clone that carries the fault to completion.
///
/// `base` must not have crossed eligible instruction `index` yet, and
/// `index` must satisfy `1 <= index <= golden.eligible` — both
/// guaranteed by the caller, which visits plans in ascending `index`
/// order (the base is only ever advanced while the *next* round
/// provably cannot reach the current plan's index) and routes
/// out-of-range plans to [`inject_once`].
fn inject_from_checkpoint(
    base: &mut Machine,
    golden: &GoldenRun,
    index: u64,
    bit: u32,
    hang_factor: u64,
    event_core: bool,
) -> Outcome {
    if event_core {
        // The event core: each fault-free round is a wake-up at the
        // base machine's current cycle count; the component goes
        // quiescent once the next round could reach the injection
        // point. Round-for-round identical to the legacy loop below
        // (pinned by `checkpoint_advancement_is_core_invariant`).
        let mut sched = elzar_sim::Scheduler::new(elzar_sim::TieBreak::Canonical);
        sched.add(CheckpointAdvance { base: &mut *base, target: index });
        sched.run(&mut ());
    } else {
        while base.eligible_so_far() + base.eligible_round_bound() < index {
            if base.run_round().is_some() {
                unreachable!("base finished with eligible < plan index <= golden.eligible");
            }
        }
    }
    debug_assert!(base.eligible_so_far() < index);
    inject_one(base.clone(), golden, index, bit, hang_factor).0
}

/// The campaign driver's checkpoint advancement as an `elzar_sim`
/// component: virtual time is the base machine's own cycle count, one
/// tick per fault-free interpreter round, quiescent as soon as the
/// next round's eligible-instruction bound could cross the target
/// injection index.
struct CheckpointAdvance<'m, 'p> {
    base: &'m mut Machine<'p>,
    target: u64,
}

impl elzar_sim::Component<()> for CheckpointAdvance<'_, '_> {
    fn label(&self) -> &'static str {
        "campaign checkpoint advance"
    }

    fn next_tick(&self) -> u64 {
        let bound = elzar_sim::vt_add(
            "campaign checkpoint eligibility",
            self.base.eligible_so_far(),
            self.base.eligible_round_bound(),
        );
        if bound < self.target {
            self.base.cycles_so_far()
        } else {
            elzar_sim::NEVER
        }
    }

    fn tick(&mut self, _now: u64, _sys: &mut ()) {
        if self.base.run_round().is_some() {
            unreachable!("base finished with eligible < plan index <= golden.eligible");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elzar::{build, Mode};
    use elzar_ir::builder::{c64, FuncBuilder};
    use elzar_ir::{Builtin, Module, Ty};

    /// A small compute kernel with observable output.
    fn kernel() -> Module {
        let mut m = Module::new("fi");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let buf = b.call_builtin(Builtin::Malloc, vec![c64(64 * 8)], Ty::Ptr).unwrap();
        b.counted_loop(c64(0), c64(64), |b, i| {
            let v = b.mul(i, c64(0x9E37));
            let x = b.bin(elzar_ir::BinOp::Xor, Ty::I64, v, c64(0x5A5A));
            let p = b.gep(buf, i, 8);
            b.store(Ty::I64, x, p);
        });
        let acc = b.alloca(Ty::I64, c64(1));
        b.store(Ty::I64, c64(0), acc);
        b.counted_loop(c64(0), c64(64), |b, i| {
            let p = b.gep(buf, i, 8);
            let v = b.load(Ty::I64, p);
            let a = b.load(Ty::I64, acc);
            let s = b.add(a, v);
            b.store(Ty::I64, s, acc);
        });
        let v = b.load(Ty::I64, acc);
        b.call_builtin(Builtin::OutputI64, vec![v.into()], Ty::Void);
        b.ret(c64(0));
        m.add_func(b.finish());
        m
    }

    fn campaign(mode: &Mode, runs: u32, seed: u64) -> CampaignResult {
        let prog = build(&kernel(), mode);
        run_campaign(&prog, &[], &CampaignConfig { runs, seed, ..Default::default() })
    }

    #[test]
    fn native_suffers_sdc_elzar_mostly_does_not() {
        let native = campaign(&Mode::NativeNoSimd, 150, 7);
        let elzar = campaign(&Mode::elzar_default(), 150, 7);
        assert!(native.rate(Outcome::Sdc) > 0.10, "native SDC {:.2}", native.rate(Outcome::Sdc));
        assert!(
            elzar.rate(Outcome::Sdc) < native.rate(Outcome::Sdc) / 2.0,
            "ELZAR SDC {:.2} vs native {:.2}",
            elzar.rate(Outcome::Sdc),
            native.rate(Outcome::Sdc)
        );
        assert!(elzar.count(Outcome::ElzarCorrected) > 0, "no corrections observed");
        // Native runs can never be classified as corrected.
        assert_eq!(native.count(Outcome::ElzarCorrected), 0);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = campaign(&Mode::elzar_default(), 40, 99);
        let b = campaign(&Mode::elzar_default(), 40, 99);
        assert_eq!(a.counts, b.counts);
    }

    /// Old-vs-new checkpoint advancement: the legacy while-loop and
    /// the `elzar_sim` scheduled component must advance base machines
    /// identically, so campaign outcomes are bit-identical across the
    /// two cores (and across prefix sharing, which exercises both the
    /// checkpoint and the from-scratch paths).
    #[test]
    fn checkpoint_advancement_is_core_invariant() {
        let prog = build(&kernel(), &Mode::elzar_default());
        let run = |event_core: bool, share_prefixes: bool| {
            run_campaign(
                &prog,
                &[],
                &CampaignConfig { runs: 40, seed: 11, event_core, share_prefixes, ..Default::default() },
            )
        };
        let new = run(true, true);
        let old = run(false, true);
        assert_eq!(new.counts, old.counts, "event-core checkpoint advancement changed outcomes");
        assert_eq!((new.eligible, new.golden_cycles), (old.eligible, old.golden_cycles));
        let scratch = run(true, false);
        assert_eq!(new.counts, scratch.counts, "prefix sharing changed outcomes");
    }

    #[test]
    fn exhaustive_bit_flips_on_replicated_add_never_corrupt() {
        // TMR invariant: corrupting one lane of a replicated arithmetic
        // destination is always detected-and-corrected or masked —
        // the checks guard every path to memory/output.
        let prog = build(&kernel(), &Mode::elzar_default());
        let golden = golden_run(&prog, &[], &MachineConfig::default());
        // Eligible index 5 is inside the hardened init loop.
        for bit in (0..256).step_by(13) {
            let o = inject_once(&prog, &[], &golden, 5, bit, &MachineConfig::default(), 20);
            assert_ne!(o, Outcome::Sdc, "bit {bit} caused SDC through TMR");
        }
    }

    #[test]
    fn classify_covers_all_paths() {
        let g = GoldenRun {
            output: vec![1, 2, 3],
            outcome: RunOutcome::Exited(0),
            eligible: 10,
            steps: 100,
            cycles: 100,
        };
        let mk = |outcome, output: Vec<u8>, corrections| RunResult {
            outcome,
            output,
            cycles: 1,
            counters: Default::default(),
            corrections,
            eligible: 10,
            steps: 1,
            thread_cycles: vec![],
            heartbeats: 0,
            heartbeat_cycles: vec![],
        };
        assert_eq!(classify(&g, &mk(RunOutcome::StepLimit, vec![], 0)), Outcome::Hang);
        assert_eq!(
            classify(&g, &mk(RunOutcome::Trapped(elzar_vm::Trap::DivByZero), vec![], 0)),
            Outcome::OsDetected
        );
        assert_eq!(classify(&g, &mk(RunOutcome::Exited(0), vec![1, 2, 3], 0)), Outcome::Masked);
        assert_eq!(classify(&g, &mk(RunOutcome::Exited(0), vec![1, 2, 3], 2)), Outcome::ElzarCorrected);
        assert_eq!(classify(&g, &mk(RunOutcome::Exited(0), vec![9, 9, 9], 0)), Outcome::Sdc);
        assert_eq!(classify(&g, &mk(RunOutcome::Exited(7), vec![1, 2, 3], 0)), Outcome::Sdc);
    }

    #[test]
    fn empty_campaign_rates_are_zero_not_nan() {
        // total() == 0 must yield clean 0.0 rates (not NaN) for every
        // outcome and class — zero-run campaigns happen in smoke tests
        // and in harnesses that filter plans before running any.
        let r = CampaignResult::default();
        assert_eq!(r.total(), 0);
        for o in Outcome::all() {
            let v = r.rate(o);
            assert!(!v.is_nan(), "rate({o}) is NaN");
            assert_eq!(v, 0.0, "rate({o})");
        }
        for c in [OutcomeClass::Crashed, OutcomeClass::Correct, OutcomeClass::Corrupted] {
            let v = r.class_rate(c);
            assert!(!v.is_nan(), "class_rate({c:?}) is NaN");
            assert_eq!(v, 0.0, "class_rate({c:?})");
        }
    }

    #[test]
    fn campaign_with_cached_golden_matches_recomputed() {
        let prog = build(&kernel(), &Mode::elzar_default());
        let cfg = CampaignConfig { runs: 30, seed: 11, ..Default::default() };
        let golden = golden_run(&prog, &[], &cfg.machine);
        let fresh = run_campaign(&prog, &[], &cfg);
        let cached = run_campaign_with_golden(&prog, &[], &golden, &cfg);
        assert_eq!(fresh.counts, cached.counts);
        assert_eq!(fresh.eligible, cached.eligible);
        assert_eq!(fresh.golden_cycles, cached.golden_cycles);
    }

    #[test]
    fn suffix_replay_reconstructs_resident_state() {
        use elzar_vm::GLOBAL_BASE;
        // A resident counter service: `main` zeroes a global
        // accumulator, `bump` folds the input word into it and replies
        // with the running total — the smallest stateful analog of a
        // serving shard.
        let mut m = Module::new("replay");
        let acc = GLOBAL_BASE + m.alloc_global(8) as u64;
        let mut ib = FuncBuilder::new("main", vec![], Ty::I64);
        ib.store(Ty::I64, c64(0), elzar_ir::Operand::Imm(elzar_ir::Const::Ptr(acc)));
        ib.ret(c64(0));
        m.add_func(ib.finish());
        let mut bb = FuncBuilder::new("bump", vec![], Ty::I64);
        let pacc = elzar_ir::Operand::Imm(elzar_ir::Const::Ptr(acc));
        let inp = bb.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let w = bb.load(Ty::I64, inp);
        let a = bb.load(Ty::I64, pacc.clone());
        let x = bb.mul(w, c64(3));
        let s = bb.add(a, x);
        bb.store(Ty::I64, s, pacc);
        bb.call_builtin(Builtin::OutputI64, vec![s.into()], Ty::Void);
        bb.ret(c64(0));
        m.add_func(bb.finish());
        let prog = build(&m, &Mode::elzar_default());

        let mut live = Machine::start(&prog, "main", &[], MachineConfig::default());
        assert!(matches!(live.run_to_completion(), RunOutcome::Exited(_)));
        let snapshot = live.clone();

        // The live machine commits a suffix of requests...
        let payloads: Vec<[u8; 8]> = (1..=5u64).map(|i| (i * 7).to_le_bytes()).collect();
        let suffix: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        for p in &suffix {
            live.reenter("bump", p);
            assert!(matches!(live.run_to_completion(), RunOutcome::Exited(_)));
        }
        // ...and a restored snapshot replays it deterministically.
        let mut restored = snapshot;
        let replayed = replay_suffix(&mut restored, "bump", &suffix).expect("committed suffix replays");
        assert!(replayed > 0);

        // Both machines now serve the same next request bit-identically
        // — state, reply and timing all reconstructed.
        let next = 99u64.to_le_bytes();
        live.reenter("bump", &next);
        let o1 = live.run_to_completion();
        let r1 = live.result(o1);
        restored.reenter("bump", &next);
        let o2 = restored.run_to_completion();
        let r2 = restored.result(o2);
        assert_eq!(r1.outcome, r2.outcome);
        assert_eq!(r1.output, r2.output);
        assert_eq!(r1.cycles, r2.cycles);
        let total = u64::from_le_bytes(r1.output[..8].try_into().unwrap());
        assert_eq!(total, (1..=5u64).map(|i| i * 7 * 3).sum::<u64>() + 99 * 3);
    }

    #[test]
    fn filtered_suffix_replay_migrates_a_key_range_bit_for_bit() {
        use elzar_vm::GLOBAL_BASE;
        // A keyed resident service: `main` zeroes an 8-slot accumulator
        // table, `bump` folds the input word into the slot addressed by
        // its low 3 bits and replies with that slot's running total —
        // the smallest model of a sharded KV shard whose key ranges can
        // migrate. The payload's "routing key" is its low 3 bits.
        let mut m = Module::new("migrate");
        let table = GLOBAL_BASE + m.alloc_global(8 * 8) as u64;
        let mut ib = FuncBuilder::new("main", vec![], Ty::I64);
        ib.counted_loop(c64(0), c64(8), |b, i| {
            let p = b.gep(elzar_ir::Operand::Imm(elzar_ir::Const::Ptr(table)), i, 8);
            b.store(Ty::I64, c64(0), p);
        });
        ib.ret(c64(0));
        m.add_func(ib.finish());
        let mut bb = FuncBuilder::new("bump", vec![], Ty::I64);
        let inp = bb.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let w = bb.load(Ty::I64, inp);
        let slot = bb.bin(elzar_ir::BinOp::And, Ty::I64, w, c64(7));
        let p = bb.gep(elzar_ir::Operand::Imm(elzar_ir::Const::Ptr(table)), slot, 8);
        let a = bb.load(Ty::I64, p);
        let x = bb.mul(w, c64(5));
        let s = bb.add(a, x);
        bb.store(Ty::I64, s, p);
        bb.call_builtin(Builtin::OutputI64, vec![s.into()], Ty::Void);
        bb.ret(c64(0));
        m.add_func(bb.finish());
        let prog = build(&m, &Mode::elzar_default());
        let key_of = |p: &[u8]| u64::from_le_bytes(p[..8].try_into().unwrap()) & 7;
        let migrated = |p: &[u8]| key_of(p) >= 4; // the range that moves

        // The donor boots, snapshots, then commits a mixed suffix over
        // all 8 keys.
        let mut donor = Machine::start(&prog, "main", &[], MachineConfig::default());
        assert!(matches!(donor.run_to_completion(), RunOutcome::Exited(_)));
        let snapshot = donor.clone();
        let payloads: Vec<[u8; 8]> = (0..24u64).map(|i| (i * 11 + 3).to_le_bytes()).collect();
        let suffix: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let (all_cycles, all_count) =
            replay_suffix_where(&mut donor, "bump", &suffix, |_| true).expect("committed suffix replays");
        assert_eq!(all_count, 24);

        // Migration: a joiner boots from the donor's snapshot and
        // replays only the migrated range's committed requests.
        let mut joiner = snapshot.clone();
        let (mig_cycles, mig_count) =
            replay_suffix_where(&mut joiner, "bump", &suffix, migrated).expect("filtered replay succeeds");
        assert!(0 < mig_count && mig_count < 24, "both key ranges must appear in the suffix");
        assert!(mig_cycles < all_cycles, "filtered replay must be cheaper than a full one");

        // Reference: a shard that *served* the migrated range from the
        // start — its own boot, then the range's requests live through
        // the serving entry, the way a resident shard runs them.
        let mut reference = Machine::start(&prog, "main", &[], MachineConfig::default());
        assert!(matches!(reference.run_to_completion(), RunOutcome::Exited(_)));
        let mut ref_count = 0;
        for p in suffix.iter().filter(|p| migrated(p)) {
            reference.reenter("bump", p);
            assert!(matches!(reference.run_to_completion(), RunOutcome::Exited(_)));
            ref_count += 1;
        }
        assert_eq!(ref_count, mig_count);

        // The migrated range's resident state is bit-for-bit the state
        // of the shard that owned it all along: identical table words
        // and identical replies (value *and* timing) to the next
        // request on every migrated key.
        for slot in 4..8u64 {
            let a = joiner.memory().load(table + slot * 8, 8).unwrap();
            let b = reference.memory().load(table + slot * 8, 8).unwrap();
            assert_eq!(a, b, "slot {slot} diverged");
            let next = (slot + 8 * 100).to_le_bytes();
            joiner.reenter("bump", &next);
            let o1 = joiner.run_to_completion();
            let r1 = joiner.result(o1);
            reference.reenter("bump", &next);
            let o2 = reference.run_to_completion();
            let r2 = reference.result(o2);
            assert_eq!(r1.outcome, r2.outcome);
            assert_eq!(r1.output, r2.output, "slot {slot}: replies diverged");
            assert_eq!(r1.cycles, r2.cycles, "slot {slot}: timing diverged");
        }
        // And the donor's live state agrees with the full replay for
        // the keys that did *not* move.
        let mut full = donor;
        for slot in 0..4u64 {
            let next = (slot + 8 * 200).to_le_bytes();
            full.reenter("bump", &next);
            let o = full.run_to_completion();
            let expect: u64 = (0..24u64)
                .map(|i| i * 11 + 3)
                .filter(|w| w & 7 == slot)
                .map(|w| w.wrapping_mul(5))
                .sum::<u64>()
                .wrapping_add((slot + 8 * 200).wrapping_mul(5));
            let r = full.result(o);
            assert_eq!(u64::from_le_bytes(r.output[..8].try_into().unwrap()), expect);
        }
    }

    #[test]
    fn replay_errors_are_typed_not_panics() {
        use elzar_vm::GLOBAL_BASE;
        // `poke` stores 1 *at the address given by the input word* — a
        // committed-looking payload that traps when the address is wild
        // models a corrupted standby diverging mid-replay. Failover
        // code must get a value it can match on (and fall back to cold
        // restart), not a process abort.
        let mut m = Module::new("replayerr");
        let cell = GLOBAL_BASE + m.alloc_global(8) as u64;
        let mut ib = FuncBuilder::new("main", vec![], Ty::I64);
        ib.store(Ty::I64, c64(0), elzar_ir::Operand::Imm(elzar_ir::Const::Ptr(cell)));
        ib.ret(c64(0));
        m.add_func(ib.finish());
        let mut bb = FuncBuilder::new("poke", vec![], Ty::I64);
        let inp = bb.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let w = bb.load(Ty::I64, inp);
        let p = bb.gep(elzar_ir::Operand::Imm(elzar_ir::Const::Ptr(0)), w, 1);
        bb.store(Ty::I64, c64(1), p);
        bb.ret(c64(0));
        m.add_func(bb.finish());
        let prog = build(&m, &Mode::elzar_default());

        let mut base = Machine::start(&prog, "main", &[], MachineConfig::default());
        assert!(matches!(base.run_to_completion(), RunOutcome::Exited(_)));
        let good = cell.to_le_bytes();
        let bad = 8u64.to_le_bytes(); // far below any mapped segment
        let suffix: Vec<&[u8]> = vec![&good, &bad, &good];

        let err = replay_suffix(&mut base.clone(), "poke", &suffix).unwrap_err();
        assert_eq!(err.at, 1, "failure position indexes kept payloads");
        assert!(matches!(err.outcome, RunOutcome::Trapped(_)), "got {:?}", err.outcome);
        let msg = err.to_string();
        assert!(msg.contains("payload 1"), "{msg}");

        // The filtered variant never executes the poisoned payload, so
        // it succeeds — and `at` counts *kept* payloads, which is why
        // the error above says 1, not its absolute stream position.
        let keep = |p: &[u8]| u64::from_le_bytes(p[..8].try_into().unwrap()) == cell;
        let (cycles, kept) =
            replay_suffix_where(&mut base.clone(), "poke", &suffix, keep).expect("filter avoids the trap");
        assert_eq!(kept, 2);
        assert!(cycles > 0);
    }

    #[test]
    fn inject_probe_returns_the_corrupted_machine() {
        // The probe variant must (a) classify exactly like inject_one
        // and (b) hand back the machine whose memory a state-digest
        // detector can inspect.
        let prog = build(&kernel(), &Mode::elzar_default());
        let golden = golden_run(&prog, &[], &MachineConfig::default());
        for (index, bit) in sample_plans(0xD1CE, golden.eligible, 8) {
            let mk = || {
                let mc = MachineConfig { fault: None, ..Default::default() };
                Machine::start(&prog, "main", &[], mc)
            };
            let (o1, r1) = inject_one(mk(), &golden, index, bit, 20);
            let (o2, r2, m) = inject_probe(mk(), &golden, index, bit, 20);
            assert_eq!(o1, o2);
            assert_eq!(r1.output, r2.output);
            assert_eq!(r1.cycles, r2.cycles);
            // The returned machine is the one that ran: its resident
            // memory is readable post-fault.
            assert!(m.memory().resident_bytes() > 0);
        }
    }

    #[test]
    fn outcome_classes_match_figure13_grouping() {
        assert_eq!(Outcome::Hang.class(), OutcomeClass::Crashed);
        assert_eq!(Outcome::OsDetected.class(), OutcomeClass::Crashed);
        assert_eq!(Outcome::ElzarCorrected.class(), OutcomeClass::Correct);
        assert_eq!(Outcome::Masked.class(), OutcomeClass::Correct);
        assert_eq!(Outcome::Sdc.class(), OutcomeClass::Corrupted);
        let mut r = CampaignResult::default();
        r.record(Outcome::Hang);
        r.record(Outcome::Sdc);
        r.record(Outcome::Masked);
        r.record(Outcome::Masked);
        assert_eq!(r.total(), 4);
        assert!((r.class_rate(OutcomeClass::Correct) - 0.5).abs() < 1e-9);
        assert!((r.class_rate(OutcomeClass::Crashed) - 0.25).abs() < 1e-9);
    }
}
