//! The §VII-A microbenchmarks behind Table IV: for each bottleneck class
//! (loads, stores, branches — plus the truncation anecdote), a "native"
//! loop and a hand-written "AVX-wrapped" loop that adds exactly the
//! wrapper instructions ELZAR needs (`extract`+`broadcast` around loads,
//! two `extract`s before stores, `ptest` before branches), without any
//! checks — isolating the wrapper tax itself.

use elzar_ir::builder::{c64, FuncBuilder};
use elzar_ir::{BinOp, Builtin, CmpPred, Module, Operand, Ty};

/// Microbenchmark selector (rows of Table IV).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Micro {
    /// Dependent-address load chain.
    Loads,
    /// Independent store stream.
    Stores,
    /// Data-dependent branch stream.
    Branches,
    /// 64→32-bit truncation stream (§VII-A: "overheads of 8×").
    Truncation,
}

impl Micro {
    /// All rows.
    pub fn all() -> [Micro; 4] {
        [Micro::Loads, Micro::Stores, Micro::Branches, Micro::Truncation]
    }

    /// Row label.
    pub fn name(self) -> &'static str {
        match self {
            Micro::Loads => "loads",
            Micro::Stores => "stores",
            Micro::Branches => "branches",
            Micro::Truncation => "truncation",
        }
    }
}

const WORK: i64 = 20_000;
const RING: i64 = 512; // elements in the pointer ring / store buffer

/// Build the native or AVX-wrapped variant of a microbenchmark.
///
/// The AVX variants replicate values in YMM registers exactly as ELZAR
/// would, but perform no checks — matching the paper's isolation of the
/// wrapper cost ("each microbenchmark has two versions", §VII-A).
pub fn build(micro: Micro, avx: bool) -> Module {
    let mut m = Module::new(format!("micro_{}_{}", micro.name(), if avx { "avx" } else { "native" }));
    let mut b = FuncBuilder::new("main", vec![], Ty::I64);
    let buf = b.call_builtin(Builtin::Malloc, vec![c64(RING * 8)], Ty::Ptr).unwrap();
    // Build a pointer ring: buf[i] holds the address of buf[(i*7+1)%RING].
    b.counted_loop(c64(0), c64(RING), |b, i| {
        let seven = b.mul(i, c64(7));
        let next = b.add(seven, c64(1));
        let idx = b.bin(BinOp::And, Ty::I64, next, c64(RING - 1));
        let target = b.gep(buf, idx, 8);
        let slot = b.gep(buf, i, 8);
        let t64 = b.cast(elzar_ir::CastOp::PtrToInt, target, Ty::I64);
        b.store(Ty::I64, t64, slot);
    });
    match (micro, avx) {
        (Micro::Loads, false) | (Micro::Loads, true) => {
            // Dependent pointer chase carried in a register: each load's
            // address is the previous load's result (latency-bound).
            let p0 = b.cast(elzar_ir::CastOp::PtrToInt, buf, Ty::I64);
            // Preheader broadcast: the replicated address starts life in
            // a YMM register (only used by the AVX variant).
            let vinit = b.splat(p0, 4);
            let pre = b.current();
            let header = b.block("ml.header");
            let body = b.block("ml.body");
            let latch = b.block("ml.latch");
            let exit = b.block("ml.exit");
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Ty::I64);
            let cur = if avx {
                // The replicated address lives in a YMM across iterations.
                b.phi(Ty::vec(Ty::I64, 4))
            } else {
                b.phi(Ty::I64)
            };
            b.phi_add_incoming(i, pre, c64(0));
            if avx {
                b.phi_add_incoming(cur, pre, vinit);
            } else {
                b.phi_add_incoming(cur, pre, p0);
            }
            let c = b.icmp(CmpPred::Slt, i, c64(WORK));
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let nxt: elzar_ir::ValueId = if avx {
                // Figure 6: extract the address lane, load once,
                // broadcast the result back into the replicated domain.
                let addr = b.extract(cur, 0);
                let pp = b.cast(elzar_ir::CastOp::IntToPtr, addr, Ty::Ptr);
                let lv = b.load(Ty::I64, pp);
                b.splat(lv, 4)
            } else {
                let pp = b.cast(elzar_ir::CastOp::IntToPtr, cur, Ty::Ptr);
                b.load(Ty::I64, pp)
            };
            b.br(latch);
            b.switch_to(latch);
            let inext = b.add(i, c64(1));
            b.phi_add_incoming(i, latch, inext);
            b.phi_add_incoming(cur, latch, nxt);
            b.br(header);
            b.switch_to(exit);
            let out = if avx { b.extract(cur, 0) } else { cur };
            b.ret(out);
        }
        (Micro::Stores, false) | (Micro::Stores, true) => {
            // The same store instruction replicated four times per
            // iteration (the paper's "replicated several times to
            // saturate the CPU"): the single store-data port bottlenecks
            // the native version already.
            b.counted_loop(c64(0), c64(WORK / 4), |b, i| {
                let idx = b.bin(BinOp::And, Ty::I64, i, c64(RING / 8 - 1));
                let p = b.gep(buf, idx, 64);
                if avx {
                    // Value and address live replicated; the wrappers
                    // extract them once per unique value/address (as the
                    // code generator would CSE) and the stores themselves
                    // stay bound to the store port (Figure 6 / §VII-A).
                    let vrep = b.splat(i, 4);
                    let prep = b.splat(p, 4);
                    let val = b.extract(vrep, 0);
                    let ap = b.extract(prep, 0);
                    for _ in 0..4u8 {
                        b.store(Ty::I64, val, ap);
                    }
                } else {
                    for _ in 0..4u8 {
                        b.store(Ty::I64, i, p);
                    }
                }
            });
            b.ret(c64(0));
        }
        (Micro::Branches, false) => {
            // Six predictable, empty two-way branches per iteration:
            // cmp+jcc throughput is the only thing measured.
            b.counted_loop(c64(0), c64(WORK), |b, i| {
                for k in 0..6 {
                    let bit = b.bin(BinOp::And, Ty::I64, i, c64(1 << k));
                    let c = b.icmp(CmpPred::Ne, bit, c64(0));
                    let t_bb = b.block("mb.t");
                    let j_bb = b.block("mb.j");
                    b.cond_br(c, t_bb, j_bb);
                    b.switch_to(t_bb);
                    b.br(j_bb);
                    b.switch_to(j_bb);
                }
            });
            b.ret(c64(0));
        }
        (Micro::Branches, true) => {
            // The same six branches in AVX form (Figure 7): replicated
            // condition data, vector compare, ptest, jump cascade.
            b.counted_loop(c64(0), c64(WORK), |b, i| {
                let vi = b.splat(i, 4);
                for k in 0..6 {
                    let mask_c = Operand::Imm(elzar_ir::Const::i64(1 << k).splat(4));
                    let vbit = b.bin(BinOp::And, Ty::vec(Ty::I64, 4), vi, mask_c);
                    let zero = Operand::Imm(elzar_ir::Const::i64(0).splat(4));
                    let mask = b.icmp(CmpPred::Ne, vbit, zero);
                    let flags = b.ptest(mask);
                    let t_bb = b.block("mb.t");
                    let j_bb = b.block("mb.j");
                    b.ptest_br(flags, j_bb, t_bb, t_bb);
                    b.switch_to(t_bb);
                    b.br(j_bb);
                    b.switch_to(j_bb);
                }
            });
            b.ret(c64(0));
        }
        (Micro::Truncation, false) => {
            let acc = b.alloca(Ty::I64, c64(1));
            b.store(Ty::I64, c64(0), acc);
            b.counted_loop(c64(0), c64(WORK), |b, i| {
                let x = b.mul(i, c64(0x12345));
                let t = b.cast(elzar_ir::CastOp::Trunc, x, Ty::I32);
                let w = b.cast(elzar_ir::CastOp::ZExt, t, Ty::I64);
                let a = b.load(Ty::I64, acc);
                let s = b.add(a, w);
                b.store(Ty::I64, s, acc);
            });
            let v = b.load(Ty::I64, acc);
            b.ret(v);
        }
        (Micro::Truncation, true) => {
            let acc = b.alloca(Ty::I64, c64(1));
            b.store(Ty::I64, c64(0), acc);
            b.counted_loop(c64(0), c64(WORK), |b, i| {
                // Vector truncation is missing pre-AVX-512: legalized.
                let x = b.mul(i, c64(0x12345));
                let vx = b.splat(x, 4);
                let vt = b.cast(elzar_ir::CastOp::Trunc, vx, Ty::vec(Ty::I32, 8));
                let vw = b.cast(elzar_ir::CastOp::ZExt, vt, Ty::vec(Ty::I64, 4));
                let w = b.extract(vw, 0);
                let a = b.load(Ty::I64, acc);
                let s = b.add(a, w);
                b.store(Ty::I64, s, acc);
            });
            let v = b.load(Ty::I64, acc);
            b.ret(v);
        }
    }
    m.add_func(b.finish());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use elzar_vm::{run_program, MachineConfig, Program, RunOutcome};

    fn cycles(m: &Module) -> (u64, RunOutcome) {
        let r = run_program(&Program::lower(m), "main", &[], MachineConfig::default());
        (r.cycles, r.outcome)
    }

    #[test]
    fn table4_load_ratio_about_2x() {
        let (native, on) = cycles(&build(Micro::Loads, false));
        let (avx, oa) = cycles(&build(Micro::Loads, true));
        assert_eq!(on, oa, "variants must agree");
        let ratio = avx as f64 / native as f64;
        assert!((1.5..3.0).contains(&ratio), "loads ratio {ratio:.2} (paper: ~1.96-2.06)");
    }

    #[test]
    fn table4_store_ratio_near_1x() {
        let (native, _) = cycles(&build(Micro::Stores, false));
        let (avx, _) = cycles(&build(Micro::Stores, true));
        let ratio = avx as f64 / native as f64;
        assert!((0.9..1.6).contains(&ratio), "stores ratio {ratio:.2} (paper: ~1.00-1.14)");
    }

    #[test]
    fn table4_branch_ratio_about_2x() {
        let (native, on) = cycles(&build(Micro::Branches, false));
        let (avx, oa) = cycles(&build(Micro::Branches, true));
        assert_eq!(on, oa);
        let ratio = avx as f64 / native as f64;
        // The paper reports ~1.86-1.89; our model lands lower because it
        // does not credit macro-fusion to the native cmp+jcc pair.
        assert!((1.3..3.0).contains(&ratio), "branches ratio {ratio:.2} (paper: ~1.86-1.89)");
    }

    #[test]
    fn truncation_is_much_slower_in_avx() {
        let (native, on) = cycles(&build(Micro::Truncation, false));
        let (avx, oa) = cycles(&build(Micro::Truncation, true));
        assert_eq!(on, oa);
        let ratio = avx as f64 / native as f64;
        assert!(ratio > 3.0, "truncation ratio {ratio:.2} (paper: ~8x)");
    }
}
