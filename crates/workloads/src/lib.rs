//! # elzar-workloads
//!
//! The benchmark programs of the ELZAR paper's evaluation (§V), authored
//! against `elzar-ir`: all seven Phoenix 2.0 kernels, the seven evaluated
//! PARSEC 3.0 kernels, the §VII-A microbenchmarks, and a hardened IR
//! math library used by the FP-heavy kernels.
//!
//! Workload modules are *thread-count-agnostic*: the worker count comes
//! from [`elzar_vm::MachineConfig::threads`] at run time (via the
//! `num_threads` builtin), so one build serves a whole thread sweep.
//!
//! ```
//! use elzar_workloads::{by_name, Scale};
//! use elzar::{execute, Mode};
//! use elzar_vm::MachineConfig;
//!
//! let hist = by_name("histogram").unwrap();
//! let built = hist.build(Scale::Tiny);
//! let cfg = MachineConfig { threads: 2, ..MachineConfig::default() };
//! let r = execute(&built.module, &Mode::NativeNoSimd, &built.input, cfg);
//! assert!(matches!(r.outcome, elzar_vm::RunOutcome::Exited(_)));
//! ```

#![warn(missing_docs)]

pub mod common;
pub mod libm_ir;
pub mod micro;
pub mod parsec;
pub mod phoenix;

pub use common::{Scale, MAX_WORKLOAD_THREADS};
use elzar_ir::Module;

/// Which benchmark suite a workload belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suite {
    /// Phoenix 2.0 (map-reduce style kernels).
    Phoenix,
    /// PARSEC 3.0.
    Parsec,
}

/// A built workload: an IR module (with `main`) plus its input bytes.
#[derive(Clone, Debug)]
pub struct BuiltWorkload {
    /// The program.
    pub module: Module,
    /// Bytes placed in the VM's input segment.
    pub input: Vec<u8>,
}

/// A benchmark program generator.
pub trait Workload: Sync {
    /// Benchmark name (paper spelling, lowercase).
    fn name(&self) -> &'static str;
    /// Originating suite.
    fn suite(&self) -> Suite;
    /// Build the module and input for the given scale. The module is
    /// thread-count-agnostic: it spawns `MachineConfig::threads` workers
    /// at run time.
    fn build(&self, scale: Scale) -> BuiltWorkload;
}

/// All Phoenix workloads, in the paper's order.
pub fn phoenix_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(phoenix::Histogram),
        Box::new(phoenix::Kmeans),
        Box::new(phoenix::LinearRegression),
        Box::new(phoenix::MatrixMultiply),
        Box::new(phoenix::Pca),
        Box::new(phoenix::StringMatch),
        Box::new(phoenix::WordCount),
    ]
}

/// All evaluated PARSEC workloads, in the paper's order.
pub fn parsec_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(parsec::Blackscholes),
        Box::new(parsec::Dedup),
        Box::new(parsec::Ferret),
        Box::new(parsec::Fluidanimate),
        Box::new(parsec::Streamcluster),
        Box::new(parsec::Swaptions),
        Box::new(parsec::X264),
    ]
}

/// Every benchmark (Phoenix then PARSEC) — the 14 bars of Figure 11.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    let mut v = phoenix_workloads();
    v.extend(parsec_workloads());
    v
}

/// Look a workload up by name.
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads().into_iter().find(|w| w.name() == name)
}

/// Abbreviations used in the paper's figures (hist, km, linreg, …).
pub fn short_name(name: &str) -> &'static str {
    match name {
        "histogram" => "hist",
        "kmeans" => "km",
        "linear_regression" => "linreg",
        "matrix_multiply" => "mmul",
        "pca" => "pca",
        "string_match" => "smatch",
        "word_count" => "wc",
        "blackscholes" => "black",
        "dedup" => "dedup",
        "ferret" => "ferret",
        "fluidanimate" => "fluid",
        "streamcluster" => "scluster",
        "swaptions" => "swap",
        "x264" => "x264",
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        let names: Vec<_> = all_workloads().iter().map(|w| w.name().to_string()).collect();
        assert_eq!(names.len(), 14);
        assert!(by_name("histogram").is_some());
        assert!(by_name("x264").is_some());
        assert!(by_name("nope").is_none());
        for n in &names {
            assert_ne!(short_name(n), "?", "missing short name for {n}");
        }
    }

    #[test]
    fn all_workloads_verify_and_lower() {
        for w in all_workloads() {
            let built = w.build(Scale::Tiny);
            elzar_ir::verify::verify_module(&built.module)
                .unwrap_or_else(|e| panic!("{}: {:#?}", w.name(), &e[..e.len().min(5)]));
            let p = elzar_vm::Program::lower(&built.module);
            assert!(p.num_insts() > 0);
        }
    }
}
