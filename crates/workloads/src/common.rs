//! Shared scaffolding for benchmark kernels: the fork/join skeleton every
//! multithreaded Phoenix/PARSEC workload uses, chunk partitioning, and
//! input plumbing.

use elzar_ir::builder::{c64, FuncBuilder};
use elzar_ir::{Builtin, CmpPred, Module, Operand, Ty, ValueId};

/// Problem-size selector. `Tiny` is for fault-injection campaigns (the
/// paper used the smallest inputs there, §V-A), `Small` for quick tests,
/// `Large` for the performance evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Smallest runnable size (fault-injection campaigns).
    Tiny,
    /// CI-sized runs.
    Small,
    /// Performance-evaluation size.
    Large,
}

impl Scale {
    /// Pick one of three values by scale.
    pub fn pick<T: Copy>(self, tiny: T, small: T, large: T) -> T {
        match self {
            Scale::Tiny => tiny,
            Scale::Small => small,
            Scale::Large => large,
        }
    }
}

/// Build parameters common to all workloads.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Worker thread count (the paper sweeps 1..16).
    pub threads: u32,
    /// Problem size.
    pub scale: Scale,
}

impl Params {
    /// Convenience constructor.
    pub fn new(threads: u32, scale: Scale) -> Params {
        Params { threads, scale }
    }
}

/// Emit `start = tid * (n / T)`, `end = (tid == T-1) ? n : start + n/T`
/// for a compile-time `n` and `T`. Returns `(start, end)`.
pub fn chunk_bounds(b: &mut FuncBuilder, tid: ValueId, n: i64, threads: u32) -> (Operand, Operand) {
    let t = i64::from(threads);
    let chunk = n / t;
    let start = b.mul(tid, c64(chunk));
    let is_last = b.icmp(CmpPred::Eq, tid, c64(t - 1));
    let plus = b.add(start, c64(chunk));
    let end = b.select(is_last, c64(n), plus);
    (start.into(), end.into())
}

/// Build the canonical fork/join `main`:
///
/// 1. `setup(b)` runs first (allocate/etc.);
/// 2. `threads` workers are spawned running `worker` with their thread id;
/// 3. after all joins, `finish(b, results_sum)` runs with the sum of the
///    workers' return values, and must terminate `main` (`ret`).
///
/// The worker function must already be in the module and take one `i64`
/// (the tid), returning `i64`.
pub fn fork_join_main(
    m: &mut Module,
    worker: elzar_ir::FuncId,
    threads: u32,
    setup: impl FnOnce(&mut FuncBuilder),
    finish: impl FnOnce(&mut FuncBuilder, ValueId),
) {
    let mut b = FuncBuilder::new("main", vec![], Ty::I64);
    setup(&mut b);
    let mut tids = vec![];
    for t in 0..threads {
        let tid = b
            .call_builtin(Builtin::Spawn, vec![c64(worker.0 as i64), c64(i64::from(t))], Ty::I64)
            .expect("spawn returns");
        tids.push(tid);
    }
    let mut sum = b.add(c64(0), c64(0));
    for t in tids {
        let r = b.call_builtin(Builtin::Join, vec![t.into()], Ty::I64).expect("join returns");
        sum = b.add(sum, r);
    }
    finish(&mut b, sum);
    m.add_func(b.finish());
}

/// Deterministic 64-bit LCG step usable from host input generators.
pub fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state
}

/// Emit an in-IR LCG step: `s' = s * A + C`, returns the new state value.
pub fn emit_lcg(b: &mut FuncBuilder, s: impl Into<Operand>) -> ValueId {
    let m = b.mul(s, c64(6364136223846793005u64 as i64));
    b.add(m, c64(1442695040888963407u64 as i64))
}

/// Generate `n` random f64s in `[lo, hi)` as little-endian input bytes.
pub fn gen_f64s(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<u8> {
    let mut s = seed | 1;
    let mut out = Vec::with_capacity(n * 8);
    for _ in 0..n {
        let r = lcg(&mut s);
        let unit = (r >> 11) as f64 / (1u64 << 53) as f64;
        out.extend_from_slice(&(lo + unit * (hi - lo)).to_le_bytes());
    }
    out
}

/// Generate `n` random i64s in `[0, bound)` as little-endian input bytes.
pub fn gen_i64s(seed: u64, n: usize, bound: u64) -> Vec<u8> {
    let mut s = seed | 1;
    let mut out = Vec::with_capacity(n * 8);
    for _ in 0..n {
        out.extend_from_slice(&(lcg(&mut s) % bound).to_le_bytes());
    }
    out
}

/// Generate `n` random bytes.
pub fn gen_bytes(seed: u64, n: usize) -> Vec<u8> {
    let mut s = seed | 1;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((lcg(&mut s) >> 32) as u8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use elzar_vm::{run_program, MachineConfig, Program, RunOutcome};

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Tiny.pick(1, 2, 3), 1);
        assert_eq!(Scale::Large.pick(1, 2, 3), 3);
    }

    #[test]
    fn fork_join_sums_worker_results() {
        let mut m = Module::new("t");
        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let tid = w.param(0);
        let (start, end) = chunk_bounds(&mut w, tid, 100, 4);
        let d = w.sub(end, start);
        w.ret(d);
        let wid = m.add_func(w.finish());
        fork_join_main(&mut m, wid, 4, |_b| {}, |b, sum| b.ret(sum));
        let r = run_program(&Program::lower(&m), "main", &[], MachineConfig::default());
        // Four chunks of 25 sum to 100.
        assert_eq!(r.outcome, RunOutcome::Exited(100));
        assert_eq!(r.thread_cycles.len(), 5);
    }

    #[test]
    fn chunks_cover_exactly_with_remainder() {
        let mut m = Module::new("t");
        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let tid = w.param(0);
        let (start, end) = chunk_bounds(&mut w, tid, 103, 4);
        let d = w.sub(end, start);
        w.ret(d);
        let wid = m.add_func(w.finish());
        fork_join_main(&mut m, wid, 4, |_b| {}, |b, sum| b.ret(sum));
        let r = run_program(&Program::lower(&m), "main", &[], MachineConfig::default());
        assert_eq!(r.outcome, RunOutcome::Exited(103));
    }

    #[test]
    fn host_generators_are_deterministic() {
        assert_eq!(gen_f64s(7, 4, 0.0, 1.0), gen_f64s(7, 4, 0.0, 1.0));
        assert_eq!(gen_i64s(7, 4, 100), gen_i64s(7, 4, 100));
        assert_eq!(gen_bytes(7, 16), gen_bytes(7, 16));
        for chunk in gen_f64s(1, 100, 2.0, 3.0).chunks(8) {
            let v = f64::from_le_bytes(chunk.try_into().unwrap());
            assert!((2.0..3.0).contains(&v));
        }
    }
}
