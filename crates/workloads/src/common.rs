//! Shared scaffolding for benchmark kernels: the fork/join skeleton every
//! multithreaded Phoenix/PARSEC workload uses, chunk partitioning, and
//! input plumbing.

use elzar_ir::builder::{c64, FuncBuilder};
use elzar_ir::{BinOp, Builtin, CmpPred, Module, Operand, Ty, ValueId};

/// Upper bound on the *runtime* worker-thread count a workload supports.
/// Per-thread global regions (partial-sum slots etc.) are sized for this
/// many workers at build time; `emit_thread_count` clamps the machine's
/// request to it, so larger `MachineConfig::threads` values degrade
/// gracefully instead of corrupting globals.
pub const MAX_WORKLOAD_THREADS: u32 = 16;

/// Emit the runtime worker-thread count: `min(num_threads(), MAX)`.
///
/// This is the value every thread-count-agnostic workload partitions its
/// work by; it comes from [`elzar_vm::MachineConfig::threads`] (the
/// `num_threads` builtin), so one built module serves the whole sweep.
pub fn emit_thread_count(b: &mut FuncBuilder) -> ValueId {
    let t = b.call_builtin(Builtin::NumThreads, vec![], Ty::I64).expect("num_threads returns");
    b.bin(BinOp::SMin, Ty::I64, t, c64(i64::from(MAX_WORKLOAD_THREADS)))
}

/// Problem-size selector. `Tiny` is for fault-injection campaigns (the
/// paper used the smallest inputs there, §V-A), `Small` for quick tests,
/// `Large` for the performance evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Smallest runnable size (fault-injection campaigns).
    Tiny,
    /// CI-sized runs.
    Small,
    /// Performance-evaluation size.
    Large,
}

impl Scale {
    /// Pick one of three values by scale.
    pub fn pick<T: Copy>(self, tiny: T, small: T, large: T) -> T {
        match self {
            Scale::Tiny => tiny,
            Scale::Small => small,
            Scale::Large => large,
        }
    }
}

/// Emit `start = tid * (n / T)`, `end = (tid == T-1) ? n : start + n/T`
/// for a compile-time `n` and a *runtime* worker count `T` (from
/// [`emit_thread_count`]). Returns `(start, end)`.
pub fn chunk_bounds(
    b: &mut FuncBuilder,
    tid: ValueId,
    n: i64,
    threads: impl Into<Operand>,
) -> (Operand, Operand) {
    let t: Operand = threads.into();
    let chunk = b.bin(BinOp::SDiv, Ty::I64, c64(n), t.clone());
    let start = b.mul(tid, chunk);
    let last = b.sub(t, c64(1));
    let is_last = b.icmp(CmpPred::Eq, tid, last);
    let plus = b.add(start, chunk);
    let end = b.select(is_last, c64(n), plus);
    (start.into(), end.into())
}

/// Build the canonical fork/join `main` for a *runtime* worker count:
///
/// 1. `setup(b)` runs first (allocate/etc.);
/// 2. `T = emit_thread_count()` workers are spawned running `worker`
///    with their thread id (`0..T`, ascending);
/// 3. after all joins (in spawn order, so reductions fold in tid order
///    exactly like the old unrolled skeleton), `finish(b, results_sum)`
///    runs with the sum of the workers' return values, and must
///    terminate `main` (`ret`).
///
/// The worker function must already be in the module and take one `i64`
/// (the tid), returning `i64`. Because `T` comes from the machine
/// configuration, the same built module serves every thread count.
pub fn fork_join_main(
    m: &mut Module,
    worker: elzar_ir::FuncId,
    setup: impl FnOnce(&mut FuncBuilder),
    finish: impl FnOnce(&mut FuncBuilder, ValueId),
) {
    let mut b = FuncBuilder::new("main", vec![], Ty::I64);
    setup(&mut b);
    let t = emit_thread_count(&mut b);
    let tids = b.alloca(Ty::I64, c64(i64::from(MAX_WORKLOAD_THREADS)));
    b.counted_loop(c64(0), t, |b, i| {
        let tid = b
            .call_builtin(Builtin::Spawn, vec![c64(worker.0 as i64), i.into()], Ty::I64)
            .expect("spawn returns");
        let p = b.gep(tids, i, 8);
        b.store(Ty::I64, tid, p);
    });
    let sum_slot = b.alloca(Ty::I64, c64(1));
    b.store(Ty::I64, c64(0), sum_slot);
    b.counted_loop(c64(0), t, |b, i| {
        let p = b.gep(tids, i, 8);
        let tid = b.load(Ty::I64, p);
        let r = b.call_builtin(Builtin::Join, vec![tid.into()], Ty::I64).expect("join returns");
        let s = b.load(Ty::I64, sum_slot);
        let s2 = b.add(s, r);
        b.store(Ty::I64, s2, sum_slot);
    });
    let sum = b.load(Ty::I64, sum_slot);
    finish(&mut b, sum);
    m.add_func(b.finish());
}

/// Deterministic 64-bit LCG step usable from host input generators.
pub fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state
}

/// Emit an in-IR LCG step: `s' = s * A + C`, returns the new state value.
pub fn emit_lcg(b: &mut FuncBuilder, s: impl Into<Operand>) -> ValueId {
    let m = b.mul(s, c64(6364136223846793005u64 as i64));
    b.add(m, c64(1442695040888963407u64 as i64))
}

/// Generate `n` random f64s in `[lo, hi)` as little-endian input bytes.
pub fn gen_f64s(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<u8> {
    let mut s = seed | 1;
    let mut out = Vec::with_capacity(n * 8);
    for _ in 0..n {
        let r = lcg(&mut s);
        let unit = (r >> 11) as f64 / (1u64 << 53) as f64;
        out.extend_from_slice(&(lo + unit * (hi - lo)).to_le_bytes());
    }
    out
}

/// Generate `n` random i64s in `[0, bound)` as little-endian input bytes.
pub fn gen_i64s(seed: u64, n: usize, bound: u64) -> Vec<u8> {
    let mut s = seed | 1;
    let mut out = Vec::with_capacity(n * 8);
    for _ in 0..n {
        out.extend_from_slice(&(lcg(&mut s) % bound).to_le_bytes());
    }
    out
}

/// Generate `n` random bytes.
pub fn gen_bytes(seed: u64, n: usize) -> Vec<u8> {
    let mut s = seed | 1;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((lcg(&mut s) >> 32) as u8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use elzar_vm::{run_program, MachineConfig, Program, RunOutcome};

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Tiny.pick(1, 2, 3), 1);
        assert_eq!(Scale::Large.pick(1, 2, 3), 3);
    }

    fn span_module(n: i64) -> Module {
        let mut m = Module::new("t");
        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let tid = w.param(0);
        let t = emit_thread_count(&mut w);
        let (start, end) = chunk_bounds(&mut w, tid, n, t);
        let d = w.sub(end, start);
        w.ret(d);
        let wid = m.add_func(w.finish());
        fork_join_main(&mut m, wid, |_b| {}, |b, sum| b.ret(sum));
        m
    }

    #[test]
    fn fork_join_sums_worker_results() {
        let m = span_module(100);
        let cfg = MachineConfig { threads: 4, ..MachineConfig::default() };
        let r = run_program(&Program::lower(&m), "main", &[], cfg);
        // Four chunks of 25 sum to 100.
        assert_eq!(r.outcome, RunOutcome::Exited(100));
        assert_eq!(r.thread_cycles.len(), 5);
    }

    #[test]
    fn chunks_cover_exactly_with_remainder() {
        let m = span_module(103);
        let cfg = MachineConfig { threads: 4, ..MachineConfig::default() };
        let r = run_program(&Program::lower(&m), "main", &[], cfg);
        assert_eq!(r.outcome, RunOutcome::Exited(103));
    }

    #[test]
    fn one_module_serves_every_thread_count() {
        // The same lowered program partitions correctly for any
        // configured worker count, including counts above the clamp.
        let m = span_module(100);
        let prog = Program::lower(&m);
        for threads in [1u32, 2, 3, 8, 16, 64] {
            let cfg = MachineConfig { threads, ..MachineConfig::default() };
            let r = run_program(&prog, "main", &[], cfg);
            assert_eq!(r.outcome, RunOutcome::Exited(100), "threads={threads}");
            let spawned = threads.min(MAX_WORKLOAD_THREADS) as usize;
            assert_eq!(r.thread_cycles.len(), spawned + 1, "threads={threads}");
        }
    }

    #[test]
    fn host_generators_are_deterministic() {
        assert_eq!(gen_f64s(7, 4, 0.0, 1.0), gen_f64s(7, 4, 0.0, 1.0));
        assert_eq!(gen_i64s(7, 4, 100), gen_i64s(7, 4, 100));
        assert_eq!(gen_bytes(7, 16), gen_bytes(7, 16));
        for chunk in gen_f64s(1, 100, 2.0, 3.0).chunks(8) {
            let v = f64::from_le_bytes(chunk.try_into().unwrap());
            assert!((2.0..3.0).contains(&v));
        }
    }
}
