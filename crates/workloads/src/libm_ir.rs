//! Hardened libm: `exp`, `log` and a Newton `sqrt` implemented *in IR*.
//!
//! The paper hardens musl's libc/libm alongside the application (§IV-A)
//! so that math-heavy benchmarks (blackscholes, swaptions) measure the
//! cost of protected floating-point code. These functions are emitted as
//! ordinary hardened IR functions, so every pass (ELZAR, SWIFT-R)
//! transforms them together with their callers.
//!
//! Accuracy targets are benchmark-grade (~1e-9 relative), not
//! correctly-rounded libm.

use elzar_ir::builder::{c64, cf64, FuncBuilder};
use elzar_ir::{BinOp, CastOp, CmpPred, FuncId, Module, Ty};

/// Handles to the installed math functions.
#[derive(Clone, Copy, Debug)]
pub struct MathLib {
    /// `exp_ir(f64) -> f64`.
    pub exp: FuncId,
    /// `log_ir(f64) -> f64` (natural log; x must be > 0).
    pub log: FuncId,
    /// `sqrt_ir(f64) -> f64` (x must be >= 0).
    pub sqrt: FuncId,
}

/// Install the IR math library into a module.
pub fn install(m: &mut Module) -> MathLib {
    MathLib { exp: build_exp(m), log: build_log(m), sqrt: build_sqrt(m) }
}

/// Emit `exp(x)` inline into the current function (what `-O3` inlining
/// produces at call sites): range-reduce by powers of two, then a
/// degree-9 Taylor polynomial on `r ∈ [-ln2/2, ln2/2]`, recombined via
/// exponent-bit construction of `2^n`.
pub fn emit_exp(b: &mut FuncBuilder, x: impl Into<elzar_ir::Operand>) -> elzar_ir::ValueId {
    let x = {
        let op = x.into();
        // Materialize as a value for repeated use.
        b.bin(BinOp::FAdd, Ty::F64, op, cf64(0.0))
    };
    const LOG2E: f64 = std::f64::consts::LOG2_E;
    const LN2: f64 = std::f64::consts::LN_2;
    // n = round(x * log2e): add ±0.5 then truncate.
    let scaled = b.bin(BinOp::FMul, Ty::F64, x, cf64(LOG2E));
    let neg = b.fcmp(CmpPred::FOlt, scaled, cf64(0.0));
    let half = b.select(neg, cf64(-0.5), cf64(0.5));
    let biased = b.bin(BinOp::FAdd, Ty::F64, scaled, half);
    let n = b.cast(CastOp::FpToSi, biased, Ty::I64);
    // Clamp n to a safe exponent range so 2^n never overflows the bit trick.
    let n = b.bin(BinOp::SMax, Ty::I64, n, c64(-1000));
    let n = b.bin(BinOp::SMin, Ty::I64, n, c64(1000));
    // r = x - n * ln2.
    let nf = b.cast(CastOp::SiToFp, n, Ty::F64);
    let nl = b.bin(BinOp::FMul, Ty::F64, nf, cf64(LN2));
    let r = b.bin(BinOp::FSub, Ty::F64, x, nl);
    // Taylor: 1 + r(1 + r/2(1 + r/3(… (1 + r/9)))) — degree 9.
    let mut poly = cf64(1.0);
    for k in (1..=9u32).rev() {
        let div = b.bin(BinOp::FMul, Ty::F64, r, cf64(1.0 / f64::from(k)));
        let t = b.bin(BinOp::FMul, Ty::F64, div, poly);
        poly = b.bin(BinOp::FAdd, Ty::F64, cf64(1.0), t).into();
    }
    // 2^n via exponent bits: (n + 1023) << 52 reinterpreted as f64.
    let biased_e = b.add(n, c64(1023));
    let bits = b.bin(BinOp::Shl, Ty::I64, biased_e, c64(52));
    let two_n = b.cast(CastOp::Bitcast, bits, Ty::F64);
    b.bin(BinOp::FMul, Ty::F64, poly, two_n)
}

fn build_exp(m: &mut Module) -> FuncId {
    let mut b = FuncBuilder::new("exp_ir", vec![Ty::F64], Ty::F64);
    let x = b.param(0);
    let out = emit_exp(&mut b, x);
    b.ret(out);
    m.add_func(b.finish())
}

/// Emit `log(x)` (x > 0) inline: split into exponent and mantissa
/// `m ∈ [1, 2)`, then `ln(m) = 2 * atanh((m-1)/(m+1))` via an odd series.
pub fn emit_log(b: &mut FuncBuilder, x: impl Into<elzar_ir::Operand>) -> elzar_ir::ValueId {
    let x = {
        let op = x.into();
        b.bin(BinOp::FAdd, Ty::F64, op, cf64(0.0))
    };
    const LN2: f64 = std::f64::consts::LN_2;
    let bits = b.cast(CastOp::Bitcast, x, Ty::I64);
    let shifted = b.bin(BinOp::LShr, Ty::I64, bits, c64(52));
    let emask = b.bin(BinOp::And, Ty::I64, shifted, c64(0x7FF));
    let e = b.sub(emask, c64(1023));
    // mantissa with exponent forced to 0 => m in [1,2).
    let frac = b.bin(BinOp::And, Ty::I64, bits, c64(0x000F_FFFF_FFFF_FFFF));
    let mant_bits = b.bin(BinOp::Or, Ty::I64, frac, c64(0x3FF0_0000_0000_0000));
    let mant = b.cast(CastOp::Bitcast, mant_bits, Ty::F64);
    // When m > sqrt(2), halve it and bump e for better convergence.
    let big = b.fcmp(CmpPred::FOgt, mant, cf64(std::f64::consts::SQRT_2));
    let mant_h = b.bin(BinOp::FMul, Ty::F64, mant, cf64(0.5));
    let mant2 = b.select(big, mant_h, mant);
    let e1 = b.add(e, c64(1));
    let e2 = b.select(big, e1, e);
    // t = (m-1)/(m+1); ln m = 2(t + t^3/3 + t^5/5 + t^7/7 + t^9/9).
    let num = b.bin(BinOp::FSub, Ty::F64, mant2, cf64(1.0));
    let den = b.bin(BinOp::FAdd, Ty::F64, mant2, cf64(1.0));
    let t = b.bin(BinOp::FDiv, Ty::F64, num, den);
    let t2 = b.bin(BinOp::FMul, Ty::F64, t, t);
    // Horner over t^2: ((1/9 t2 + 1/7) t2 + 1/5) t2 + 1/3) t2 + 1.
    let mut acc = cf64(1.0 / 9.0);
    for c in [1.0 / 7.0, 1.0 / 5.0, 1.0 / 3.0, 1.0] {
        let mul = b.bin(BinOp::FMul, Ty::F64, acc, t2);
        acc = b.bin(BinOp::FAdd, Ty::F64, mul, cf64(c)).into();
    }
    let series = b.bin(BinOp::FMul, Ty::F64, t, acc);
    let lnm = b.bin(BinOp::FMul, Ty::F64, series, cf64(2.0));
    let ef = b.cast(CastOp::SiToFp, e2, Ty::F64);
    let eln2 = b.bin(BinOp::FMul, Ty::F64, ef, cf64(LN2));
    b.bin(BinOp::FAdd, Ty::F64, eln2, lnm)
}

fn build_log(m: &mut Module) -> FuncId {
    let mut b = FuncBuilder::new("log_ir", vec![Ty::F64], Ty::F64);
    let x = b.param(0);
    let out = emit_log(&mut b, x);
    b.ret(out);
    m.add_func(b.finish())
}

/// Emit `sqrt(x)` (x >= 0) inline: exponent-halving initial guess plus
/// four Newton iterations (`vsqrtpd`-class accuracy for benchmark data).
pub fn emit_sqrt(b: &mut FuncBuilder, x: impl Into<elzar_ir::Operand>) -> elzar_ir::ValueId {
    let x = {
        let op = x.into();
        b.bin(BinOp::FAdd, Ty::F64, op, cf64(0.0))
    };
    // Initial guess via the classic bit hack: g = bits/2 + (1023<<51).
    let bits = b.cast(CastOp::Bitcast, x, Ty::I64);
    let half_bits = b.bin(BinOp::LShr, Ty::I64, bits, c64(1));
    let guess_bits = b.add(half_bits, c64(0x1FF8_0000_0000_0000));
    let mut g: elzar_ir::Operand = b.cast(CastOp::Bitcast, guess_bits, Ty::F64).into();
    for _ in 0..4 {
        // g = 0.5 * (g + x / g)
        let q = b.bin(BinOp::FDiv, Ty::F64, x, g.clone());
        let s = b.bin(BinOp::FAdd, Ty::F64, g, q);
        g = b.bin(BinOp::FMul, Ty::F64, s, cf64(0.5)).into();
    }
    // sqrt(0) must be 0 (the bit-hack guess would NaN via 0/0).
    let zero = b.fcmp(CmpPred::FOle, x, cf64(0.0));
    b.select(zero, cf64(0.0), g)
}

fn build_sqrt(m: &mut Module) -> FuncId {
    let mut b = FuncBuilder::new("sqrt_ir", vec![Ty::F64], Ty::F64);
    let x = b.param(0);
    let out = emit_sqrt(&mut b, x);
    b.ret(out);
    m.add_func(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use elzar_ir::Builtin;
    use elzar_vm::{run_program, MachineConfig, Program};

    fn eval(build: impl FnOnce(&mut Module, &MathLib, &mut FuncBuilder), xs: &[f64]) -> Vec<f64> {
        let mut m = Module::new("t");
        let lib = install(&mut m);
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        build(&mut m, &lib, &mut b);
        let _ = xs;
        m.add_func(b.finish());
        let r = run_program(&Program::lower(&m), "main", &[], MachineConfig::default());
        r.output.chunks(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
    }

    fn check_fn(target: FnSel, xs: &[f64], reference: impl Fn(f64) -> f64, tol: f64) {
        let xs_v = xs.to_vec();
        let out = eval(
            |_m, lib, b| {
                for &x in &xs_v {
                    let f = match target {
                        FnSel::Exp => lib.exp,
                        FnSel::Log => lib.log,
                        FnSel::Sqrt => lib.sqrt,
                    };
                    let v = b.call(f, vec![cf64(x)], Ty::F64).unwrap();
                    b.call_builtin(Builtin::OutputF64, vec![v.into()], Ty::Void);
                }
                b.ret(c64(0));
            },
            xs,
        );
        for (x, got) in xs.iter().zip(out) {
            let want = reference(*x);
            let err = if want.abs() > 1.0 { (got - want).abs() / want.abs() } else { (got - want).abs() };
            assert!(err < tol, "f({x}) = {got}, want {want} (err {err:.2e})");
        }
    }

    #[derive(Clone, Copy)]
    enum FnSel {
        Exp,
        Log,
        Sqrt,
    }

    #[test]
    fn exp_matches_host() {
        check_fn(FnSel::Exp, &[-8.0, -2.5, -0.3, 0.0, 0.7, 1.0, 3.3, 10.0], f64::exp, 1e-9);
    }

    #[test]
    fn log_matches_host() {
        check_fn(
            FnSel::Log,
            &[1e-6, 0.1, 0.5, 1.0, std::f64::consts::SQRT_2, 2.0, 10.0, 12345.0],
            f64::ln,
            1e-9,
        );
    }

    #[test]
    fn sqrt_matches_host() {
        check_fn(FnSel::Sqrt, &[0.0, 1e-8, 0.25, 1.0, 2.0, 9.0, 1e6], f64::sqrt, 1e-9);
    }

    #[test]
    fn hardened_math_still_matches() {
        // The IR math library is part of the hardened region: ELZAR and
        // SWIFT-R must preserve its results exactly.
        let mut m = Module::new("t");
        let lib = install(&mut m);
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        for x in [0.3, 1.7, 4.2] {
            let e = b.call(lib.exp, vec![cf64(x)], Ty::F64).unwrap();
            let l = b.call(lib.log, vec![e.into()], Ty::F64).unwrap();
            b.call_builtin(Builtin::OutputF64, vec![l.into()], Ty::Void);
        }
        b.ret(c64(0));
        m.add_func(b.finish());
        let native = elzar::execute(&m, &elzar::Mode::NativeNoSimd, &[], MachineConfig::default());
        let elz = elzar::execute(&m, &elzar::Mode::elzar_default(), &[], MachineConfig::default());
        let swr = elzar::execute(&m, &elzar::Mode::SwiftR, &[], MachineConfig::default());
        assert_eq!(native.output, elz.output);
        assert_eq!(native.output, swr.output);
        // log(exp(x)) ≈ x.
        for (chunk, want) in native.output.chunks(8).zip([0.3, 1.7, 4.2]) {
            let got = f64::from_le_bytes(chunk.try_into().unwrap());
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }
}
