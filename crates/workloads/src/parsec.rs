//! The PARSEC 3.0 benchmark kernels evaluated by the paper (§V-A):
//! blackscholes, dedup, ferret, fluidanimate, streamcluster, swaptions
//! and x264. (bodytrack, raytrace, facesim, freqmine, canneal and vips
//! were excluded by the paper itself for toolchain reasons.)
//!
//! Each kernel models the characteristic that the paper's analysis leans
//! on: blackscholes/swaptions are FP-dominated with few memory accesses
//! (ELZAR's best case), dedup serializes on a shared-table lock (poor
//! scalability amortizes overhead), ferret/fluidanimate are
//! branch-mispredict heavy, streamcluster is memory-bound, and x264's SAD
//! search is an integer/byte kernel with a vectorizable inner loop.

use crate::common::{
    chunk_bounds, emit_thread_count, fork_join_main, gen_bytes, gen_f64s, MAX_WORKLOAD_THREADS,
};
use crate::libm_ir::{emit_exp, emit_log, emit_sqrt};
use crate::{BuiltWorkload, Scale, Suite, Workload};
use elzar_ir::builder::{c64, cf64, FuncBuilder};
use elzar_ir::{BinOp, Builtin, CastOp, CmpPred, Const, Module, Operand, Ty};
use elzar_vm::GLOBAL_BASE;

fn cptr(addr: u64) -> Operand {
    Operand::Imm(Const::Ptr(addr))
}

// ---------------------------------------------------------------------------
// blackscholes
// ---------------------------------------------------------------------------

/// Black–Scholes option pricing through the hardened IR libm — 47% of its
/// instructions are floating-point (§V-B), ELZAR's best case.
pub struct Blackscholes;

impl Workload for Blackscholes {
    fn name(&self) -> &'static str {
        "blackscholes"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let n = scale.pick(200i64, 2_000, 20_000);
        let mut m = Module::new("blackscholes");
        let out = GLOBAL_BASE + m.alloc_global((n * 8) as usize) as u64;
        let riskfree = 0.02f64;

        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let tid = w.param(0);
        let nt = emit_thread_count(&mut w);
        let sptr = w.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let kptr = w.gep(sptr, c64(n), 8);
        let tptr = w.gep(sptr, c64(2 * n), 8);
        let vptr = w.gep(sptr, c64(3 * n), 8);
        let (start, end) = chunk_bounds(&mut w, tid, n, nt);
        w.counted_loop(start, end, |b, i| {
            let s = {
                let p = b.gep(sptr, i, 8);
                b.load(Ty::F64, p)
            };
            let k = {
                let p = b.gep(kptr, i, 8);
                b.load(Ty::F64, p)
            };
            let t = {
                let p = b.gep(tptr, i, 8);
                b.load(Ty::F64, p)
            };
            let v = {
                let p = b.gep(vptr, i, 8);
                b.load(Ty::F64, p)
            };
            // d1 = (ln(S/K) + (r + v^2/2) T) / (v sqrt(T)); d2 = d1 - v sqrt(T)
            // The math library and CNDF are emitted inline — exactly what
            // -O3 inlining produced in the paper's builds, so ELZAR pays
            // no call wrappers inside the hot loop.
            let ratio = b.bin(BinOp::FDiv, Ty::F64, s, k);
            let lnr = emit_log(b, ratio);
            let v2 = b.bin(BinOp::FMul, Ty::F64, v, v);
            let v2h = b.bin(BinOp::FMul, Ty::F64, v2, cf64(0.5));
            let drift = b.bin(BinOp::FAdd, Ty::F64, v2h, cf64(riskfree));
            let dt = b.bin(BinOp::FMul, Ty::F64, drift, t);
            let num = b.bin(BinOp::FAdd, Ty::F64, lnr, dt);
            let sqt = emit_sqrt(b, t);
            let vst = b.bin(BinOp::FMul, Ty::F64, v, sqt);
            let d1 = b.bin(BinOp::FDiv, Ty::F64, num, vst);
            let d2 = b.bin(BinOp::FSub, Ty::F64, d1, vst);
            let n1 = emit_cndf(b, d1);
            let n2 = emit_cndf(b, d2);
            // price = S*N(d1) - K*exp(-rT)*N(d2)
            let rt = b.bin(BinOp::FMul, Ty::F64, t, cf64(-riskfree));
            let disc = emit_exp(b, rt);
            let a = b.bin(BinOp::FMul, Ty::F64, s, n1);
            let kd = b.bin(BinOp::FMul, Ty::F64, k, disc);
            let bpart = b.bin(BinOp::FMul, Ty::F64, kd, n2);
            let price = b.bin(BinOp::FSub, Ty::F64, a, bpart);
            let po = b.gep(cptr(out), i, 8);
            b.store(Ty::F64, price, po);
        });
        w.ret(c64(0));
        let wid = m.add_func(w.finish());

        fork_join_main(
            &mut m,
            wid,
            |_b| {},
            move |b, _| {
                let acc = b.alloca(Ty::F64, c64(1));
                b.store(Ty::F64, cf64(0.0), acc);
                b.counted_loop(c64(0), c64(n), |b, i| {
                    let po = b.gep(cptr(out), i, 8);
                    let v = b.load(Ty::F64, po);
                    let a = b.load(Ty::F64, acc);
                    let s = b.bin(BinOp::FAdd, Ty::F64, a, v);
                    b.store(Ty::F64, s, acc);
                });
                let v = b.load(Ty::F64, acc);
                b.call_builtin(Builtin::OutputF64, vec![v.into()], Ty::Void);
                b.ret(c64(0));
            },
        );
        // S, K, T, V arrays.
        let mut input = gen_f64s(0x91, n as usize, 20.0, 120.0);
        input.extend(gen_f64s(0x92, n as usize, 20.0, 120.0));
        input.extend(gen_f64s(0x93, n as usize, 0.1, 2.0));
        input.extend(gen_f64s(0x94, n as usize, 0.1, 0.6));
        BuiltWorkload { module: m, input }
    }
}

/// Emit the cumulative normal distribution inline via the
/// Abramowitz–Stegun polynomial, with `select`-based symmetry (no
/// data-dependent branches).
fn emit_cndf(b: &mut FuncBuilder, x: impl Into<Operand>) -> elzar_ir::ValueId {
    let x = {
        let op = x.into();
        b.bin(BinOp::FAdd, Ty::F64, op, cf64(0.0))
    };
    let neg = b.fcmp(CmpPred::FOlt, x, cf64(0.0));
    let nx = b.bin(BinOp::FSub, Ty::F64, cf64(0.0), x);
    let ax = b.select(neg, nx, x);
    // k = 1 / (1 + 0.2316419 |x|)
    let kd = b.bin(BinOp::FMul, Ty::F64, ax, cf64(0.2316419));
    let kd1 = b.bin(BinOp::FAdd, Ty::F64, kd, cf64(1.0));
    let k = b.bin(BinOp::FDiv, Ty::F64, cf64(1.0), kd1);
    // poly = k(a1 + k(a2 + k(a3 + k(a4 + k a5))))
    let mut poly: Operand = cf64(1.330274429);
    for c in [-1.821255978, 1.781477937, -0.356563782, 0.319381530] {
        let t = b.bin(BinOp::FMul, Ty::F64, poly, k);
        poly = b.bin(BinOp::FAdd, Ty::F64, t, cf64(c)).into();
    }
    let pk = b.bin(BinOp::FMul, Ty::F64, poly, k);
    // pdf = exp(-x^2/2) / sqrt(2π)
    let x2 = b.bin(BinOp::FMul, Ty::F64, ax, ax);
    let x2h = b.bin(BinOp::FMul, Ty::F64, x2, cf64(-0.5));
    let e = emit_exp(b, x2h);
    let pdf = b.bin(BinOp::FMul, Ty::F64, e, cf64(0.3989422804014327));
    let tail = b.bin(BinOp::FMul, Ty::F64, pdf, pk);
    let pos = b.bin(BinOp::FSub, Ty::F64, cf64(1.0), tail);
    b.select(neg, tail, pos)
}

// ---------------------------------------------------------------------------
// dedup
// ---------------------------------------------------------------------------

/// Fingerprint-and-insert under one global lock: the poor-scalability
/// benchmark whose lock serialization amortizes ELZAR's overhead (§V-B).
pub struct Dedup;

const DD_BLOCK: i64 = 64;
const DD_TABLE: i64 = 1 << 12;

impl Workload for Dedup {
    fn name(&self) -> &'static str {
        "dedup"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let n = scale.pick(8_000i64, 64_000, 512_000);
        let blocks = n / DD_BLOCK;
        let mut m = Module::new("dedup");
        let mutex = GLOBAL_BASE + m.alloc_global(8) as u64;
        let table = GLOBAL_BASE + m.alloc_global((DD_TABLE * 8) as usize) as u64;
        let uniq = GLOBAL_BASE + m.alloc_global(8) as u64;

        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let tid = w.param(0);
        let nt = emit_thread_count(&mut w);
        let inp = w.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let (start, end) = chunk_bounds(&mut w, tid, blocks, nt);
        let fp = w.alloca(Ty::I64, c64(1));
        w.counted_loop(start, end, |b, blk| {
            // FNV-1a fingerprint of the block (byte loads).
            b.store(Ty::I64, c64(0xcbf29ce484222325u64 as i64), fp);
            let base = b.mul(blk, c64(DD_BLOCK));
            b.counted_loop(c64(0), c64(DD_BLOCK), |b, i| {
                let off = b.add(base, i);
                let pb = b.gep(inp, off, 1);
                let byte = b.load(Ty::I8, pb);
                let wbyte = b.cast(CastOp::ZExt, byte, Ty::I64);
                let h = b.load(Ty::I64, fp);
                let hx = b.bin(BinOp::Xor, Ty::I64, h, wbyte);
                let h2 = b.mul(hx, c64(0x100000001b3));
                b.store(Ty::I64, h2, fp);
            });
            let h = b.load(Ty::I64, fp);
            // Never store 0 (it means "empty slot").
            let hnz = b.bin(BinOp::Or, Ty::I64, h, c64(1));
            // Global critical section: probe + insert.
            b.critical_section(cptr(mutex), |b| {
                let islot = b.alloca(Ty::I64, c64(1));
                let start_slot = b.bin(BinOp::And, Ty::I64, hnz, c64(DD_TABLE - 1));
                b.store(Ty::I64, start_slot, islot);
                // Linear probe: up to table-size steps.
                let done = b.alloca(Ty::I64, c64(1));
                b.store(Ty::I64, c64(0), done);
                b.counted_loop(c64(0), c64(DD_TABLE), |b, _step| {
                    let d = b.load(Ty::I64, done);
                    let still = b.icmp(CmpPred::Eq, d, c64(0));
                    let probe_bb = b.block("dd.probe");
                    let skip_bb = b.block("dd.skip");
                    b.cond_br(still, probe_bb, skip_bb);
                    b.switch_to(probe_bb);
                    {
                        let s = b.load(Ty::I64, islot);
                        let ps = b.gep(cptr(table), s, 8);
                        let cur = b.load(Ty::I64, ps);
                        let empty = b.icmp(CmpPred::Eq, cur, c64(0));
                        let ins_bb = b.block("dd.insert");
                        let hit_bb = b.block("dd.hitchk");
                        b.cond_br(empty, ins_bb, hit_bb);
                        b.switch_to(ins_bb);
                        {
                            b.store(Ty::I64, hnz, ps);
                            let u = b.load(Ty::I64, cptr(uniq));
                            let u1 = b.add(u, c64(1));
                            b.store(Ty::I64, u1, cptr(uniq));
                            b.store(Ty::I64, c64(1), done);
                            b.br(skip_bb);
                        }
                        b.switch_to(hit_bb);
                        {
                            let same = b.icmp(CmpPred::Eq, cur, hnz);
                            let adv_bb = b.block("dd.advance");
                            let fin_bb = b.block("dd.found");
                            b.cond_br(same, fin_bb, adv_bb);
                            b.switch_to(fin_bb);
                            b.store(Ty::I64, c64(1), done);
                            b.br(skip_bb);
                            b.switch_to(adv_bb);
                            let s1 = b.add(s, c64(1));
                            let s2 = b.bin(BinOp::And, Ty::I64, s1, c64(DD_TABLE - 1));
                            b.store(Ty::I64, s2, islot);
                            b.br(skip_bb);
                        }
                    }
                    b.switch_to(skip_bb);
                });
            });
        });
        w.ret(c64(0));
        let wid = m.add_func(w.finish());

        fork_join_main(
            &mut m,
            wid,
            |_b| {},
            |b, _| {
                let u = b.load(Ty::I64, cptr(uniq));
                b.call_builtin(Builtin::OutputI64, vec![u.into()], Ty::Void);
                b.ret(u);
            },
        );
        // Data with genuine duplicates: blocks drawn from a small pool.
        let pool = gen_bytes(0xAA, (64 * DD_BLOCK) as usize);
        let mut s = 0xBBu64;
        let mut input = Vec::with_capacity(n as usize);
        for _ in 0..blocks {
            let pick = (crate::common::lcg(&mut s) % 96) as usize;
            if pick < 64 {
                let b0 = pick * DD_BLOCK as usize;
                input.extend_from_slice(&pool[b0..b0 + DD_BLOCK as usize]);
            } else {
                input.extend(gen_bytes(s, DD_BLOCK as usize));
            }
        }
        input.resize(n as usize, 0);
        BuiltWorkload { module: m, input }
    }
}

// ---------------------------------------------------------------------------
// ferret
// ---------------------------------------------------------------------------

/// Content-similarity search: distance scans plus a top-k insertion sort
/// whose data-dependent branches drive the 12.65% branch-miss rate of
/// Table II.
pub struct Ferret;

const FER_DIM: i64 = 8;
const FER_TOPK: i64 = 8;

impl Workload for Ferret {
    fn name(&self) -> &'static str {
        "ferret"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let db = scale.pick(128i64, 512, 2048);
        let queries = scale.pick(16i64, 64, 256);
        let mut m = Module::new("ferret");
        let results = GLOBAL_BASE + m.alloc_global((queries * 8) as usize) as u64;

        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let tid = w.param(0);
        let nt = emit_thread_count(&mut w);
        let dbp = w.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let qp = w.gep(dbp, c64(db * FER_DIM), 8);
        let topd = w.alloca(Ty::F64, c64(FER_TOPK));
        let dist = w.alloca(Ty::F64, c64(1));
        let (start, end) = chunk_bounds(&mut w, tid, queries, nt);
        w.counted_loop(start, end, |b, q| {
            // Reset top-k distances to +inf.
            b.counted_loop(c64(0), c64(FER_TOPK), |b, i| {
                let p = b.gep(topd, i, 8);
                b.store(Ty::F64, cf64(1.0e300), p);
            });
            let qbase = b.mul(q, c64(FER_DIM));
            b.counted_loop(c64(0), c64(db), |b, d| {
                // Squared L2 distance.
                let dbase = b.mul(d, c64(FER_DIM));
                b.store(Ty::F64, cf64(0.0), dist);
                b.counted_loop(c64(0), c64(FER_DIM), |b, k| {
                    let qi = b.add(qbase, k);
                    let pq = b.gep(qp, qi, 8);
                    let x = b.load(Ty::F64, pq);
                    let di = b.add(dbase, k);
                    let pd = b.gep(dbp, di, 8);
                    let y = b.load(Ty::F64, pd);
                    let df = b.bin(BinOp::FSub, Ty::F64, x, y);
                    let sq = b.bin(BinOp::FMul, Ty::F64, df, df);
                    let a = b.load(Ty::F64, dist);
                    let s = b.bin(BinOp::FAdd, Ty::F64, a, sq);
                    b.store(Ty::F64, s, dist);
                });
                // Insertion into the sorted top-k (branchy).
                let dv = b.load(Ty::F64, dist);
                let worst = b.gep(topd, c64(FER_TOPK - 1), 8);
                let wv = b.load(Ty::F64, worst);
                let better = b.fcmp(CmpPred::FOlt, dv, wv);
                let ins_bb = b.block("fer.insert");
                let done_bb = b.block("fer.done");
                b.cond_br(better, ins_bb, done_bb);
                b.switch_to(ins_bb);
                {
                    // Shift-down insertion sort step over the small array.
                    b.store(Ty::F64, dv, worst);
                    b.counted_loop(c64(0), c64(FER_TOPK - 1), |b, pass| {
                        let _ = pass;
                        // Bubble the last element towards its place.
                        b.counted_loop(c64(0), c64(FER_TOPK - 1), |b, j| {
                            let pj = b.gep(topd, j, 8);
                            let j1 = b.add(j, c64(1));
                            let pj1 = b.gep(topd, j1, 8);
                            let a = b.load(Ty::F64, pj);
                            let c = b.load(Ty::F64, pj1);
                            let swap = b.fcmp(CmpPred::FOgt, a, c);
                            let sw_bb = b.block("fer.swap");
                            let ns_bb = b.block("fer.noswap");
                            b.cond_br(swap, sw_bb, ns_bb);
                            b.switch_to(sw_bb);
                            b.store(Ty::F64, c, pj);
                            b.store(Ty::F64, a, pj1);
                            b.br(ns_bb);
                            b.switch_to(ns_bb);
                        });
                    });
                    b.br(done_bb);
                }
                b.switch_to(done_bb);
            });
            // Record the best distance for this query.
            let p0 = b.gep(topd, c64(0), 8);
            let bv = b.load(Ty::F64, p0);
            let pr = b.gep(cptr(results), q, 8);
            b.store(Ty::F64, bv, pr);
        });
        w.ret(c64(0));
        let wid = m.add_func(w.finish());

        fork_join_main(
            &mut m,
            wid,
            |_b| {},
            move |b, _| {
                let acc = b.alloca(Ty::F64, c64(1));
                b.store(Ty::F64, cf64(0.0), acc);
                b.counted_loop(c64(0), c64(queries), |b, i| {
                    let pr = b.gep(cptr(results), i, 8);
                    let v = b.load(Ty::F64, pr);
                    let a = b.load(Ty::F64, acc);
                    let s = b.bin(BinOp::FAdd, Ty::F64, a, v);
                    b.store(Ty::F64, s, acc);
                });
                let v = b.load(Ty::F64, acc);
                b.call_builtin(Builtin::OutputF64, vec![v.into()], Ty::Void);
                b.ret(c64(0));
            },
        );
        let mut input = gen_f64s(0xC1, (db * FER_DIM) as usize, -1.0, 1.0);
        input.extend(gen_f64s(0xC2, (queries * FER_DIM) as usize, -1.0, 1.0));
        BuiltWorkload { module: m, input }
    }
}

// ---------------------------------------------------------------------------
// fluidanimate
// ---------------------------------------------------------------------------

/// Neighbor-list SPH force accumulation: FP math guarded by a cutoff
/// branch that mispredicts often (14.7% in Table II).
pub struct Fluidanimate;

const FL_NEIGH: i64 = 16;

impl Workload for Fluidanimate {
    fn name(&self) -> &'static str {
        "fluidanimate"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let n = scale.pick(256i64, 2_048, 16_384);
        let mut m = Module::new("fluidanimate");
        let forces = GLOBAL_BASE + m.alloc_global((n * 8) as usize) as u64;

        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let tid = w.param(0);
        let nt = emit_thread_count(&mut w);
        // Input layout: n*(x,y) f64 positions, then n*FL_NEIGH i64 indices.
        let pos = w.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let neigh = w.gep(pos, c64(2 * n), 8);
        let (start, end) = chunk_bounds(&mut w, tid, n, nt);
        let facc = w.alloca(Ty::F64, c64(1));
        w.counted_loop(start, end, |b, i| {
            b.store(Ty::F64, cf64(0.0), facc);
            let xi_idx = b.mul(i, c64(2));
            let pxi = b.gep(pos, xi_idx, 8);
            let xi = b.load(Ty::F64, pxi);
            let yi_idx = b.add(xi_idx, c64(1));
            let pyi = b.gep(pos, yi_idx, 8);
            let yi = b.load(Ty::F64, pyi);
            let nbase = b.mul(i, c64(FL_NEIGH));
            b.counted_loop(c64(0), c64(FL_NEIGH), |b, k| {
                let ni = b.add(nbase, k);
                let pn = b.gep(neigh, ni, 8);
                let j = b.load(Ty::I64, pn);
                let xj_idx = b.mul(j, c64(2));
                let pxj = b.gep(pos, xj_idx, 8);
                let xj = b.load(Ty::F64, pxj);
                let yj_idx = b.add(xj_idx, c64(1));
                let pyj = b.gep(pos, yj_idx, 8);
                let yj = b.load(Ty::F64, pyj);
                let dx = b.bin(BinOp::FSub, Ty::F64, xi, xj);
                let dy = b.bin(BinOp::FSub, Ty::F64, yi, yj);
                let dx2 = b.bin(BinOp::FMul, Ty::F64, dx, dx);
                let dy2 = b.bin(BinOp::FMul, Ty::F64, dy, dy);
                let r2 = b.bin(BinOp::FAdd, Ty::F64, dx2, dy2);
                // Cutoff branch (data-dependent, poorly predictable).
                let within = b.fcmp(CmpPred::FOlt, r2, cf64(0.25));
                let force_bb = b.block("fl.force");
                let skip_bb = b.block("fl.skip");
                b.cond_br(within, force_bb, skip_bb);
                b.switch_to(force_bb);
                {
                    // Kernel: w = (h^2 - r^2)^2 contribution.
                    let h2r = b.bin(BinOp::FSub, Ty::F64, cf64(0.25), r2);
                    let w2 = b.bin(BinOp::FMul, Ty::F64, h2r, h2r);
                    let a = b.load(Ty::F64, facc);
                    let s = b.bin(BinOp::FAdd, Ty::F64, a, w2);
                    b.store(Ty::F64, s, facc);
                    b.br(skip_bb);
                }
                b.switch_to(skip_bb);
            });
            let fv = b.load(Ty::F64, facc);
            let pf = b.gep(cptr(forces), i, 8);
            b.store(Ty::F64, fv, pf);
        });
        w.ret(c64(0));
        let wid = m.add_func(w.finish());

        fork_join_main(
            &mut m,
            wid,
            |_b| {},
            move |b, _| {
                let acc = b.alloca(Ty::F64, c64(1));
                b.store(Ty::F64, cf64(0.0), acc);
                b.counted_loop(c64(0), c64(n), |b, i| {
                    let pf = b.gep(cptr(forces), i, 8);
                    let v = b.load(Ty::F64, pf);
                    let a = b.load(Ty::F64, acc);
                    let s = b.bin(BinOp::FAdd, Ty::F64, a, v);
                    b.store(Ty::F64, s, acc);
                });
                let v = b.load(Ty::F64, acc);
                b.call_builtin(Builtin::OutputF64, vec![v.into()], Ty::Void);
                b.ret(c64(0));
            },
        );
        let mut input = gen_f64s(0xD1, (2 * n) as usize, 0.0, 4.0);
        // Neighbor indices.
        let mut s = 0xD2u64;
        for _ in 0..(n * FL_NEIGH) {
            input.extend_from_slice(&((crate::common::lcg(&mut s) % n as u64) as i64).to_le_bytes());
        }
        BuiltWorkload { module: m, input }
    }
}

// ---------------------------------------------------------------------------
// streamcluster
// ---------------------------------------------------------------------------

/// Online clustering sweep: distance computations against a growing
/// center set — memory-bound with the lowest native ILP in Table III.
pub struct Streamcluster;

const SC_DIM: i64 = 16;
const SC_MAXCENTERS: i64 = 64;

impl Workload for Streamcluster {
    fn name(&self) -> &'static str {
        "streamcluster"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let n = scale.pick(256i64, 2_048, 16_384);
        let mut m = Module::new("streamcluster");
        let costs = GLOBAL_BASE + m.alloc_global(8 * MAX_WORKLOAD_THREADS as usize) as u64;

        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let tid = w.param(0);
        let nt = emit_thread_count(&mut w);
        let inp = w.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        // Per-thread center set (deterministic regardless of scheduling).
        let centers = w.alloca(Ty::F64, c64(SC_MAXCENTERS * SC_DIM));
        let ncent = w.alloca(Ty::I64, c64(1));
        w.store(Ty::I64, c64(0), ncent);
        let cost = w.alloca(Ty::F64, c64(1));
        w.store(Ty::F64, cf64(0.0), cost);
        let dist = w.alloca(Ty::F64, c64(1));
        let mind = w.alloca(Ty::F64, c64(1));
        let (start, end) = chunk_bounds(&mut w, tid, n, nt);
        w.counted_loop(start, end, |b, pt| {
            let pbase = b.mul(pt, c64(SC_DIM));
            b.store(Ty::F64, cf64(1.0e300), mind);
            let nc = b.load(Ty::I64, ncent);
            b.counted_loop(c64(0), nc, |b, c| {
                b.store(Ty::F64, cf64(0.0), dist);
                let cbase = b.mul(c, c64(SC_DIM));
                b.counted_loop(c64(0), c64(SC_DIM), |b, k| {
                    let pi = b.add(pbase, k);
                    let pp = b.gep(inp, pi, 8);
                    let x = b.load(Ty::F64, pp);
                    let ci = b.add(cbase, k);
                    let pc = b.gep(centers, ci, 8);
                    let y = b.load(Ty::F64, pc);
                    let d = b.bin(BinOp::FSub, Ty::F64, x, y);
                    let sq = b.bin(BinOp::FMul, Ty::F64, d, d);
                    let a = b.load(Ty::F64, dist);
                    let s = b.bin(BinOp::FAdd, Ty::F64, a, sq);
                    b.store(Ty::F64, s, dist);
                });
                let dv = b.load(Ty::F64, dist);
                let cur = b.load(Ty::F64, mind);
                let lt = b.fcmp(CmpPred::FOlt, dv, cur);
                let nm = b.select(lt, dv, cur);
                b.store(Ty::F64, nm, mind);
            });
            // Open a new center when far from all existing ones.
            let md = b.load(Ty::F64, mind);
            let far = b.fcmp(CmpPred::FOgt, md, cf64(8.0));
            let nc2 = b.load(Ty::I64, ncent);
            let room = b.icmp(CmpPred::Slt, nc2, c64(SC_MAXCENTERS));
            let both_w = b.cast(CastOp::ZExt, far, Ty::I64);
            let room_w = b.cast(CastOp::ZExt, room, Ty::I64);
            let both = b.bin(BinOp::And, Ty::I64, both_w, room_w);
            let open = b.icmp(CmpPred::Ne, both, c64(0));
            let open_bb = b.block("sc.open");
            let close_bb = b.block("sc.close");
            let done_bb = b.block("sc.done");
            b.cond_br(open, open_bb, close_bb);
            b.switch_to(open_bb);
            {
                let cbase = b.mul(nc2, c64(SC_DIM));
                b.counted_loop(c64(0), c64(SC_DIM), |b, k| {
                    let pi = b.add(pbase, k);
                    let pp = b.gep(inp, pi, 8);
                    let x = b.load(Ty::F64, pp);
                    let ci = b.add(cbase, k);
                    let pc = b.gep(centers, ci, 8);
                    b.store(Ty::F64, x, pc);
                });
                let nc3 = b.add(nc2, c64(1));
                b.store(Ty::I64, nc3, ncent);
                b.br(done_bb);
            }
            b.switch_to(close_bb);
            {
                let a = b.load(Ty::F64, cost);
                let s = b.bin(BinOp::FAdd, Ty::F64, a, md);
                b.store(Ty::F64, s, cost);
                b.br(done_bb);
            }
            b.switch_to(done_bb);
        });
        let cv = w.load(Ty::F64, cost);
        let my = w.gep(cptr(costs), tid, 8);
        w.store(Ty::F64, cv, my);
        let nfinal = w.load(Ty::I64, ncent);
        w.ret(nfinal);
        let wid = m.add_func(w.finish());

        fork_join_main(
            &mut m,
            wid,
            |_b| {},
            move |b, sum| {
                // sum = total centers opened; costs merged in tid order
                // (the IR loop folds ascending, like the old unrolled merge).
                b.call_builtin(Builtin::OutputI64, vec![sum.into()], Ty::Void);
                let nt = emit_thread_count(b);
                let acc = b.alloca(Ty::F64, c64(1));
                b.store(Ty::F64, cf64(0.0), acc);
                b.counted_loop(c64(0), nt, |b, t| {
                    let pc = b.gep(cptr(costs), t, 8);
                    let v = b.load(Ty::F64, pc);
                    let a = b.load(Ty::F64, acc);
                    let a2 = b.bin(BinOp::FAdd, Ty::F64, a, v);
                    b.store(Ty::F64, a2, acc);
                });
                let total = b.load(Ty::F64, acc);
                b.call_builtin(Builtin::OutputF64, vec![total.into()], Ty::Void);
                b.ret(c64(0));
            },
        );
        BuiltWorkload { module: m, input: gen_f64s(0xE1, (n * SC_DIM) as usize, -3.0, 3.0) }
    }
}

// ---------------------------------------------------------------------------
// swaptions
// ---------------------------------------------------------------------------

/// Monte-Carlo payoff simulation: an in-IR LCG feeding FP accumulation —
/// 34% FP instructions, few memory accesses.
pub struct Swaptions;

impl Workload for Swaptions {
    fn name(&self) -> &'static str {
        "swaptions"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let n = scale.pick(8i64, 32, 128); // swaptions
        let trials = scale.pick(200i64, 1_000, 4_000);
        let mut m = Module::new("swaptions");
        let prices = GLOBAL_BASE + m.alloc_global((n * 8) as usize) as u64;

        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let tid = w.param(0);
        let nt = emit_thread_count(&mut w);
        let inp = w.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let (start, end) = chunk_bounds(&mut w, tid, n, nt);
        let acc = w.alloca(Ty::F64, c64(1));
        let state = w.alloca(Ty::I64, c64(1));
        w.counted_loop(start, end, |b, sw| {
            let pstrike = b.gep(inp, sw, 8);
            let strike = b.load(Ty::F64, pstrike);
            b.store(Ty::F64, cf64(0.0), acc);
            // Deterministic per-swaption seed.
            let seed0 = b.mul(sw, c64(0x9E3779B97F4A7C15u64 as i64));
            let seed = b.bin(BinOp::Or, Ty::I64, seed0, c64(1));
            b.store(Ty::I64, seed, state);
            b.counted_loop(c64(0), c64(trials), |b, _t| {
                // LCG step (integer) -> uniform in [0,1).
                let s0 = b.load(Ty::I64, state);
                let s1 = crate::common::emit_lcg(b, s0);
                b.store(Ty::I64, s1, state);
                let top = b.bin(BinOp::LShr, Ty::I64, s1, c64(11));
                let uf = b.cast(CastOp::SiToFp, top, Ty::F64);
                let unit = b.bin(BinOp::FMul, Ty::F64, uf, cf64(1.0 / (1u64 << 53) as f64));
                // Simulated rate path value and payoff max(rate-strike,0).
                let swing = b.bin(BinOp::FSub, Ty::F64, unit, cf64(0.5));
                let rate0 = b.bin(BinOp::FMul, Ty::F64, swing, cf64(0.08));
                let rate = b.bin(BinOp::FAdd, Ty::F64, rate0, cf64(0.05));
                let diff = b.bin(BinOp::FSub, Ty::F64, rate, strike);
                let pay = b.bin(BinOp::FMax, Ty::F64, diff, cf64(0.0));
                // Discount ~ 1/(1+rate)^2 (two FP divides).
                let d1 = b.bin(BinOp::FAdd, Ty::F64, rate, cf64(1.0));
                let d2 = b.bin(BinOp::FMul, Ty::F64, d1, d1);
                let disc = b.bin(BinOp::FDiv, Ty::F64, pay, d2);
                let a = b.load(Ty::F64, acc);
                let s = b.bin(BinOp::FAdd, Ty::F64, a, disc);
                b.store(Ty::F64, s, acc);
            });
            let total = b.load(Ty::F64, acc);
            let mean = b.bin(BinOp::FMul, Ty::F64, total, cf64(1.0 / trials as f64));
            let pp = b.gep(cptr(prices), sw, 8);
            b.store(Ty::F64, mean, pp);
        });
        w.ret(c64(0));
        let wid = m.add_func(w.finish());

        fork_join_main(
            &mut m,
            wid,
            |_b| {},
            move |b, _| {
                b.counted_loop(c64(0), c64(n), |b, i| {
                    let pp = b.gep(cptr(prices), i, 8);
                    let v = b.load(Ty::F64, pp);
                    b.call_builtin(Builtin::OutputF64, vec![v.into()], Ty::Void);
                });
                b.ret(c64(0));
            },
        );
        BuiltWorkload { module: m, input: gen_f64s(0xF1, n as usize, 0.03, 0.07) }
    }
}

// ---------------------------------------------------------------------------
// x264
// ---------------------------------------------------------------------------

/// Motion-estimation SAD search over 16×16 macroblocks: byte loads,
/// absolute differences and best-candidate branches, with a vectorizable
/// SAD row loop.
pub struct X264;

const MB: i64 = 16;

impl Workload for X264 {
    fn name(&self) -> &'static str {
        "x264"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let wpx = scale.pick(64i64, 128, 320);
        let hpx = scale.pick(48i64, 96, 192);
        let mbs_x = wpx / MB - 1; // keep the search window in bounds
        let mbs_y = hpx / MB - 1;
        let nmb = mbs_x * mbs_y;
        let mut m = Module::new("x264");
        let best_out = GLOBAL_BASE + m.alloc_global((nmb * 8) as usize) as u64;

        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let tid = w.param(0);
        let nt = emit_thread_count(&mut w);
        let cur = w.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let refp = w.gep(cur, c64(wpx * hpx), 1);
        let (start, end) = chunk_bounds(&mut w, tid, nmb, nt);
        let best = w.alloca(Ty::I64, c64(1));
        let sad_acc = w.alloca(Ty::I64, c64(1));
        w.counted_loop(start, end, |b, mb| {
            let mbx = b.bin(BinOp::SRem, Ty::I64, mb, c64(mbs_x));
            let mby = b.bin(BinOp::SDiv, Ty::I64, mb, c64(mbs_x));
            let px0 = b.mul(mbx, c64(MB));
            let py0 = b.mul(mby, c64(MB));
            b.store(Ty::I64, c64(i64::MAX), best);
            // 3x3 search offsets (unrolled at build time).
            for dy in [0i64, 4, 8] {
                for dx in [0i64, 4, 8] {
                    b.store(Ty::I64, c64(0), sad_acc);
                    b.counted_loop(c64(0), c64(MB), |b, row| {
                        let cy = b.add(py0, row);
                        let cyw = b.mul(cy, c64(wpx));
                        let crow0 = b.add(cyw, px0);
                        let crow = b.gep(cur, crow0, 1);
                        let ry = b.add(cy, c64(dy));
                        let ryw = b.mul(ry, c64(wpx));
                        let rx = b.add(px0, c64(dx));
                        let rrow0 = b.add(ryw, rx);
                        let rrow = b.gep(refp, rrow0, 1);
                        // SAD over one 16-pixel row (vectorizable).
                        let pre = b.current();
                        let header = b.block("sad.header");
                        let body = b.block("sad.body");
                        let latch = b.block("sad.latch");
                        let exit = b.block("sad.exit");
                        b.br(header);
                        b.switch_to(header);
                        let x = b.phi(Ty::I64);
                        let sad = b.phi(Ty::I64);
                        b.phi_add_incoming(x, pre, c64(0));
                        b.phi_add_incoming(sad, pre, c64(0));
                        let cnd = b.icmp(CmpPred::Slt, x, c64(MB));
                        b.cond_br(cnd, body, exit);
                        b.switch_to(body);
                        let pa = b.gep(crow, x, 1);
                        let a8 = b.load(Ty::I8, pa);
                        let pb = b.gep(rrow, x, 1);
                        let b8 = b.load(Ty::I8, pb);
                        let aw = b.cast(CastOp::ZExt, a8, Ty::I64);
                        let bw = b.cast(CastOp::ZExt, b8, Ty::I64);
                        let d = b.sub(aw, bw);
                        let neg = b.sub(c64(0), d);
                        let isneg = b.icmp(CmpPred::Slt, d, c64(0));
                        let ad = b.select(isneg, neg, d);
                        let sad2 = b.add(sad, ad);
                        b.br(latch);
                        b.switch_to(latch);
                        let xn = b.add(x, c64(1));
                        b.phi_add_incoming(x, latch, xn);
                        b.phi_add_incoming(sad, latch, sad2);
                        b.br(header);
                        b.switch_to(exit);
                        // Not vectorize-hinted: the paper's x264 gains
                        // only ~7% from compiler SIMD (its SIMD wins come
                        // from hand-written assembly, disabled in §V-A).
                        let a = b.load(Ty::I64, sad_acc);
                        let s = b.add(a, sad);
                        b.store(Ty::I64, s, sad_acc);
                    });
                    // Keep the best candidate (branch).
                    let s = b.load(Ty::I64, sad_acc);
                    let cb = b.load(Ty::I64, best);
                    let lt = b.icmp(CmpPred::Slt, s, cb);
                    let upd_bb = b.block("x264.update");
                    let keep_bb = b.block("x264.keep");
                    b.cond_br(lt, upd_bb, keep_bb);
                    b.switch_to(upd_bb);
                    b.store(Ty::I64, s, best);
                    b.br(keep_bb);
                    b.switch_to(keep_bb);
                }
            }
            let bv = b.load(Ty::I64, best);
            let po = b.gep(cptr(best_out), mb, 8);
            b.store(Ty::I64, bv, po);
        });
        w.ret(c64(0));
        let wid = m.add_func(w.finish());

        fork_join_main(
            &mut m,
            wid,
            |_b| {},
            move |b, _| {
                let acc = b.alloca(Ty::I64, c64(1));
                b.store(Ty::I64, c64(0), acc);
                b.counted_loop(c64(0), c64(nmb), |b, i| {
                    let po = b.gep(cptr(best_out), i, 8);
                    let v = b.load(Ty::I64, po);
                    let a = b.load(Ty::I64, acc);
                    let s = b.add(a, v);
                    b.store(Ty::I64, s, acc);
                });
                let v = b.load(Ty::I64, acc);
                b.call_builtin(Builtin::OutputI64, vec![v.into()], Ty::Void);
                b.ret(c64(0));
            },
        );
        // Two correlated frames.
        let frame0 = gen_bytes(0xF7, (wpx * hpx) as usize);
        let mut frame1 = frame0.clone();
        let mut s = 0xF8u64;
        for px in frame1.iter_mut() {
            let noise = (crate::common::lcg(&mut s) % 17) as u8;
            *px = px.wrapping_add(noise);
        }
        let mut input = frame0;
        input.extend(frame1);
        BuiltWorkload { module: m, input }
    }
}
