//! The Phoenix 2.0 benchmark kernels (§V-A), rebuilt against the IR.
//!
//! Each kernel reproduces the *instruction mix* that drives the paper's
//! analysis (Table II): histogram is load/store-heavy with atomic merges,
//! kmeans is FP-distance bound, linear regression is a vectorizable
//! multi-reduction, matrix multiply thrashes the cache, pca does strided
//! covariance sums, string match lives in `bzero`+byte-compare loops, and
//! word count is a branchy byte scanner over in-memory state.

use crate::common::{
    chunk_bounds, emit_thread_count, fork_join_main, gen_bytes, gen_f64s, gen_i64s, MAX_WORKLOAD_THREADS,
};
use crate::{BuiltWorkload, Scale, Suite, Workload};
use elzar_ir::builder::{c64, cf64, FuncBuilder};
use elzar_ir::{BinOp, Builtin, CastOp, CmpPred, Const, Module, Operand, Ty};
use elzar_vm::GLOBAL_BASE;

fn cptr(addr: u64) -> Operand {
    Operand::Imm(Const::Ptr(addr))
}

fn c8(v: i64) -> Operand {
    Operand::Imm(Const::i8(v))
}

// ---------------------------------------------------------------------------
// histogram
// ---------------------------------------------------------------------------

/// Byte histogram: per-thread local bins, atomic merge into shared bins.
pub struct Histogram;

impl Workload for Histogram {
    fn name(&self) -> &'static str {
        "histogram"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let n = scale.pick(6_000i64, 40_000, 400_000);
        let mut m = Module::new("histogram");
        let bins = GLOBAL_BASE + m.alloc_global(256 * 8) as u64;

        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let tid = w.param(0);
        let nt = emit_thread_count(&mut w);
        let inp = w.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let local = w.alloca(Ty::I64, c64(256));
        w.counted_loop(c64(0), c64(256), |b, i| {
            let p = b.gep(local, i, 8);
            b.store(Ty::I64, c64(0), p);
        });
        let (start, end) = chunk_bounds(&mut w, tid, n, nt);
        w.counted_loop(start, end, |b, i| {
            let pa = b.gep(inp, i, 1);
            let byte = b.load(Ty::I8, pa);
            let idx = b.cast(CastOp::ZExt, byte, Ty::I64);
            let pb = b.gep(local, idx, 8);
            let c = b.load(Ty::I64, pb);
            let c1 = b.add(c, c64(1));
            b.store(Ty::I64, c1, pb);
        });
        w.counted_loop(c64(0), c64(256), |b, i| {
            let pl = b.gep(local, i, 8);
            let v = b.load(Ty::I64, pl);
            let pg = b.gep(cptr(bins), i, 8);
            b.atomic_rmw(elzar_ir::RmwOp::Add, Ty::I64, pg, v);
        });
        w.ret(c64(0));
        let wid = m.add_func(w.finish());

        fork_join_main(
            &mut m,
            wid,
            |_b| {},
            |b, _sum| {
                b.counted_loop(c64(0), c64(256), |b, i| {
                    let pg = b.gep(cptr(bins), i, 8);
                    let v = b.load(Ty::I64, pg);
                    b.call_builtin(Builtin::OutputI64, vec![v.into()], Ty::Void);
                });
                b.ret(c64(0));
            },
        );
        BuiltWorkload { module: m, input: gen_bytes(0xA1, n as usize) }
    }
}

// ---------------------------------------------------------------------------
// kmeans
// ---------------------------------------------------------------------------

/// K-means assignment + centroid update; FP-distance dominated.
pub struct Kmeans;

const KM_D: i64 = 4;
const KM_K: i64 = 8;

impl Workload for Kmeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let n = scale.pick(300i64, 2_000, 20_000);
        let mut m = Module::new("kmeans");
        let centers = GLOBAL_BASE + m.alloc_global((KM_K * KM_D * 8) as usize) as u64;
        // Per-thread partials: K*D f64 sums then K i64 counts, sized for
        // the runtime thread-count cap.
        let part_stride = (KM_K * KM_D * 8 + KM_K * 8) as u64;
        let partials =
            GLOBAL_BASE + m.alloc_global((part_stride * u64::from(MAX_WORKLOAD_THREADS)) as usize) as u64;

        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let tid = w.param(0);
        let nt = emit_thread_count(&mut w);
        let inp = w.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let my_sums = {
            let off = w.mul(tid, c64(part_stride as i64));
            w.gep(cptr(partials), off, 1)
        };
        let my_counts = w.gep(my_sums, c64(KM_K * KM_D), 8);
        // Zero my area.
        w.counted_loop(c64(0), c64(KM_K * KM_D), |b, i| {
            let p = b.gep(my_sums, i, 8);
            b.store(Ty::F64, cf64(0.0), p);
        });
        w.counted_loop(c64(0), c64(KM_K), |b, i| {
            let p = b.gep(my_counts, i, 8);
            b.store(Ty::I64, c64(0), p);
        });
        // Scratch slots hoisted out of the loops (allocas inside loops
        // would leak stack space on every iteration).
        let best = w.alloca(Ty::I64, c64(1));
        let bestd = w.alloca(Ty::F64, c64(1));
        let acc = w.alloca(Ty::F64, c64(1));
        let (start, end) = chunk_bounds(&mut w, tid, n, nt);
        w.counted_loop(start, end, |b, pt| {
            let base = b.mul(pt, c64(KM_D));
            // Nearest-center search (selects, no data branches).
            b.store(Ty::I64, c64(0), best);
            b.store(Ty::F64, cf64(1.0e300), bestd);
            b.counted_loop(c64(0), c64(KM_K), |b, k| {
                b.store(Ty::F64, cf64(0.0), acc);
                let cbase = b.mul(k, c64(KM_D));
                b.counted_loop(c64(0), c64(KM_D), |b, d| {
                    let xi = b.add(base, d);
                    let px = b.gep(inp, xi, 8);
                    let x = b.load(Ty::F64, px);
                    let ci = b.add(cbase, d);
                    let pc = b.gep(cptr(centers), ci, 8);
                    let c = b.load(Ty::F64, pc);
                    let diff = b.bin(BinOp::FSub, Ty::F64, x, c);
                    let sq = b.bin(BinOp::FMul, Ty::F64, diff, diff);
                    let a = b.load(Ty::F64, acc);
                    let s = b.bin(BinOp::FAdd, Ty::F64, a, sq);
                    b.store(Ty::F64, s, acc);
                });
                let d2 = b.load(Ty::F64, acc);
                let cur = b.load(Ty::F64, bestd);
                let lt = b.fcmp(CmpPred::FOlt, d2, cur);
                let nd = b.select(lt, d2, cur);
                b.store(Ty::F64, nd, bestd);
                let curk = b.load(Ty::I64, best);
                let nk = b.select(lt, k, curk);
                b.store(Ty::I64, nk, best);
            });
            // Accumulate into my partials.
            let k = b.load(Ty::I64, best);
            let sb = b.mul(k, c64(KM_D));
            b.counted_loop(c64(0), c64(KM_D), |b, d| {
                let xi = b.add(base, d);
                let px = b.gep(inp, xi, 8);
                let x = b.load(Ty::F64, px);
                let si = b.add(sb, d);
                let ps = b.gep(my_sums, si, 8);
                let s = b.load(Ty::F64, ps);
                let s2 = b.bin(BinOp::FAdd, Ty::F64, s, x);
                b.store(Ty::F64, s2, ps);
            });
            let pc = b.gep(my_counts, k, 8);
            let c = b.load(Ty::I64, pc);
            let c1 = b.add(c, c64(1));
            b.store(Ty::I64, c1, pc);
        });
        w.ret(c64(0));
        let wid = m.add_func(w.finish());

        fork_join_main(
            &mut m,
            wid,
            move |b| {
                // Initial centers = first K points of the input.
                let inp = b.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
                b.counted_loop(c64(0), c64(KM_K * KM_D), |b, i| {
                    let p = b.gep(inp, i, 8);
                    let v = b.load(Ty::F64, p);
                    let q = b.gep(cptr(centers), i, 8);
                    b.store(Ty::F64, v, q);
                });
            },
            move |b, _sum| {
                // Deterministic merge in tid order (an IR loop over the
                // runtime thread count folds in the same ascending-tid
                // order the old unrolled merge did), then centroids out.
                let nt = emit_thread_count(b);
                let sum = b.alloca(Ty::F64, c64(1));
                let cnt = b.alloca(Ty::I64, c64(1));
                for k in 0..KM_K {
                    for d in 0..KM_D {
                        b.store(Ty::F64, cf64(0.0), sum);
                        b.store(Ty::I64, c64(0), cnt);
                        b.counted_loop(c64(0), nt, |b, t| {
                            let off = b.mul(t, c64(part_stride as i64));
                            let base = b.gep(cptr(partials), off, 1);
                            let ps = b.gep(base, c64(k * KM_D + d), 8);
                            let s = b.load(Ty::F64, ps);
                            let a = b.load(Ty::F64, sum);
                            let a2 = b.bin(BinOp::FAdd, Ty::F64, a, s);
                            b.store(Ty::F64, a2, sum);
                            if d == 0 {
                                let pc = b.gep(base, c64(KM_K * KM_D + k), 8);
                                let c = b.load(Ty::I64, pc);
                                let cc = b.load(Ty::I64, cnt);
                                let cc2 = b.add(cc, c);
                                b.store(Ty::I64, cc2, cnt);
                            }
                        });
                        if d == 0 {
                            let c = b.load(Ty::I64, cnt);
                            b.call_builtin(Builtin::OutputI64, vec![c.into()], Ty::Void);
                        }
                        let s = b.load(Ty::F64, sum);
                        b.call_builtin(Builtin::OutputF64, vec![s.into()], Ty::Void);
                    }
                }
                b.ret(c64(0));
            },
        );
        BuiltWorkload { module: m, input: gen_f64s(0x42, (n * KM_D) as usize, -10.0, 10.0) }
    }
}

// ---------------------------------------------------------------------------
// linear_regression
// ---------------------------------------------------------------------------

/// Five integer sum reductions over two arrays — the vectorizer's best
/// case (native ILP 6.51 in Table II).
pub struct LinearRegression;

impl Workload for LinearRegression {
    fn name(&self) -> &'static str {
        "linear_regression"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let n = scale.pick(4_000i64, 40_000, 400_000);
        let mut m = Module::new("linear_regression");
        let slots = GLOBAL_BASE + m.alloc_global(5 * 8 * MAX_WORKLOAD_THREADS as usize) as u64;

        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let tid = w.param(0);
        let nt = emit_thread_count(&mut w);
        let xs = w.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let ys = w.gep(xs, c64(n), 8);
        let (start, end) = chunk_bounds(&mut w, tid, n, nt);

        // Hand-rolled loop with 5 reduction phis (vectorizable).
        let pre = w.current();
        let header = w.block("lr.header");
        let body = w.block("lr.body");
        let latch = w.block("lr.latch");
        let exit = w.block("lr.exit");
        w.br(header);
        w.switch_to(header);
        let i = w.phi(Ty::I64);
        let sx = w.phi(Ty::I64);
        let sy = w.phi(Ty::I64);
        let sxx = w.phi(Ty::I64);
        let syy = w.phi(Ty::I64);
        let sxy = w.phi(Ty::I64);
        w.phi_add_incoming(i, pre, start);
        for ph in [sx, sy, sxx, syy, sxy] {
            w.phi_add_incoming(ph, pre, c64(0));
        }
        let cond = w.icmp(CmpPred::Slt, i, end);
        w.cond_br(cond, body, exit);
        w.switch_to(body);
        let px = w.gep(xs, i, 8);
        let x = w.load(Ty::I64, px);
        let py = w.gep(ys, i, 8);
        let y = w.load(Ty::I64, py);
        let sx2 = w.add(sx, x);
        let sy2 = w.add(sy, y);
        let xx = w.mul(x, x);
        let sxx2 = w.add(sxx, xx);
        let yy = w.mul(y, y);
        let syy2 = w.add(syy, yy);
        let xy = w.mul(x, y);
        let sxy2 = w.add(sxy, xy);
        w.br(latch);
        w.switch_to(latch);
        let inext = w.add(i, c64(1));
        w.phi_add_incoming(i, latch, inext);
        for (ph, v) in [(sx, sx2), (sy, sy2), (sxx, sxx2), (syy, syy2), (sxy, sxy2)] {
            w.phi_add_incoming(ph, latch, v);
        }
        w.br(header);
        w.switch_to(exit);
        // Note: not vectorize-hinted. The paper's Figure 1 shows linreg
        // gaining only ~8% from SIMD (LLVM's cost model declines the
        // five-way reduction); its high native ILP comes from unrolled
        // scalar accumulators instead.
        // Publish partials into this thread's slots.
        let my = w.mul(tid, c64(40));
        let base = w.gep(cptr(slots), my, 1);
        for (k, ph) in [sx, sy, sxx, syy, sxy].into_iter().enumerate() {
            let pk = w.gep(base, c64(k as i64), 8);
            w.store(Ty::I64, ph, pk);
        }
        w.ret(c64(0));
        let wid = m.add_func(w.finish());

        fork_join_main(
            &mut m,
            wid,
            |_b| {},
            move |b, _| {
                // Merge in tid order, output the 5 sums and the fitted slope
                // numerator/denominator (kept in integers, as Phoenix does).
                let nt = emit_thread_count(b);
                let acc = b.alloca(Ty::I64, c64(5));
                b.counted_loop(c64(0), c64(5), |b, k| {
                    let p = b.gep(acc, k, 8);
                    b.store(Ty::I64, c64(0), p);
                });
                b.counted_loop(c64(0), nt, |b, t| {
                    let off = b.mul(t, c64(40));
                    let base = b.gep(cptr(slots), off, 1);
                    for k in 0..5i64 {
                        let pk = b.gep(base, c64(k), 8);
                        let v = b.load(Ty::I64, pk);
                        let pa = b.gep(acc, c64(k), 8);
                        let a = b.load(Ty::I64, pa);
                        let a2 = b.add(a, v);
                        b.store(Ty::I64, a2, pa);
                    }
                });
                let mut sums: Vec<Operand> = Vec::new();
                for k in 0..5i64 {
                    let pa = b.gep(acc, c64(k), 8);
                    let v = b.load(Ty::I64, pa);
                    sums.push(v.into());
                }
                for s in &sums {
                    b.call_builtin(Builtin::OutputI64, vec![s.clone()], Ty::Void);
                }
                // slope_num = n*sxy - sx*sy ; slope_den = n*sxx - sx*sx.
                let nn = c64(n);
                let a = b.mul(nn.clone(), sums[4].clone());
                let bb = b.mul(sums[0].clone(), sums[1].clone());
                let num = b.sub(a, bb);
                let c = b.mul(nn, sums[2].clone());
                let d = b.mul(sums[0].clone(), sums[0].clone());
                let den = b.sub(c, d);
                b.call_builtin(Builtin::OutputI64, vec![num.into()], Ty::Void);
                b.call_builtin(Builtin::OutputI64, vec![den.into()], Ty::Void);
                b.ret(c64(0));
            },
        );
        // xs then ys, small values to avoid overflow.
        let mut input = gen_i64s(0x33, n as usize, 1000);
        input.extend(gen_i64s(0x44, n as usize, 1000));
        BuiltWorkload { module: m, input }
    }
}

// ---------------------------------------------------------------------------
// matrix_multiply
// ---------------------------------------------------------------------------

/// Naive `C = A × B`, row-partitioned: the cache-miss-bound benchmark
/// whose ELZAR overhead the paper found lowest (§V-B).
pub struct MatrixMultiply;

impl Workload for MatrixMultiply {
    fn name(&self) -> &'static str {
        "matrix_multiply"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        // Three matrices must bust the 32 KB L1 even at the smallest
        // scale — matrix multiply's defining trait in the paper is being
        // cache-miss-bound (62% L1 misses, lowest ELZAR overhead).
        let s = scale.pick(64i64, 96, 160);
        let mut m = Module::new("matrix_multiply");
        let cmat = GLOBAL_BASE + m.alloc_global((s * s * 8) as usize) as u64;

        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let tid = w.param(0);
        let nt = emit_thread_count(&mut w);
        let a = w.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let bmat = w.gep(a, c64(s * s), 8);
        let acc = w.alloca(Ty::F64, c64(1));
        let (start, end) = chunk_bounds(&mut w, tid, s, nt);
        w.counted_loop(start, end, |b, i| {
            b.counted_loop(c64(0), c64(s), |b, j| {
                b.store(Ty::F64, cf64(0.0), acc);
                let arow = b.mul(i, c64(s));
                b.counted_loop(c64(0), c64(s), |b, k| {
                    let ai = b.add(arow, k);
                    let pa = b.gep(a, ai, 8);
                    let av = b.load(Ty::F64, pa);
                    let bi0 = b.mul(k, c64(s));
                    let bi = b.add(bi0, j);
                    let pb = b.gep(bmat, bi, 8);
                    let bv = b.load(Ty::F64, pb);
                    let prod = b.bin(BinOp::FMul, Ty::F64, av, bv);
                    let cur = b.load(Ty::F64, acc);
                    let nxt = b.bin(BinOp::FAdd, Ty::F64, cur, prod);
                    b.store(Ty::F64, nxt, acc);
                });
                let ci0 = b.mul(i, c64(s));
                let ci = b.add(ci0, j);
                let pc = b.gep(cptr(cmat), ci, 8);
                let v = b.load(Ty::F64, acc);
                b.store(Ty::F64, v, pc);
            });
        });
        w.ret(c64(0));
        let wid = m.add_func(w.finish());

        fork_join_main(
            &mut m,
            wid,
            |_b| {},
            move |b, _| {
                // Checksum C.
                let acc = b.alloca(Ty::F64, c64(1));
                b.store(Ty::F64, cf64(0.0), acc);
                b.counted_loop(c64(0), c64(s * s), |b, i| {
                    let pc = b.gep(cptr(cmat), i, 8);
                    let v = b.load(Ty::F64, pc);
                    let a = b.load(Ty::F64, acc);
                    let s2 = b.bin(BinOp::FAdd, Ty::F64, a, v);
                    b.store(Ty::F64, s2, acc);
                });
                let v = b.load(Ty::F64, acc);
                b.call_builtin(Builtin::OutputF64, vec![v.into()], Ty::Void);
                b.ret(c64(0));
            },
        );
        BuiltWorkload { module: m, input: gen_f64s(0x55, (2 * s * s) as usize, -1.0, 1.0) }
    }
}

// ---------------------------------------------------------------------------
// pca
// ---------------------------------------------------------------------------

/// Column means + covariance sums with strided accesses.
pub struct Pca;

const PCA_COLS: i64 = 16;

impl Workload for Pca {
    fn name(&self) -> &'static str {
        "pca"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let rows = scale.pick(96i64, 512, 4096);
        let cols = PCA_COLS;
        let mut m = Module::new("pca");
        let means = GLOBAL_BASE + m.alloc_global((cols * 8) as usize) as u64;
        let cov = GLOBAL_BASE + m.alloc_global((cols * cols * 8) as usize) as u64;

        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let tid = w.param(0);
        let nt = emit_thread_count(&mut w);
        let inp = w.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let acc = w.alloca(Ty::F64, c64(1));
        let (start, end) = chunk_bounds(&mut w, tid, cols, nt);
        w.counted_loop(start, end, |b, ci| {
            b.counted_loop(ci, c64(cols), |b, cj| {
                b.store(Ty::F64, cf64(0.0), acc);
                let pmi = b.gep(cptr(means), ci, 8);
                let mi = b.load(Ty::F64, pmi);
                let pmj = b.gep(cptr(means), cj, 8);
                let mj = b.load(Ty::F64, pmj);
                b.counted_loop(c64(0), c64(rows), |b, r| {
                    let ri = b.mul(r, c64(cols));
                    let ii = b.add(ri, ci);
                    let pi = b.gep(inp, ii, 8);
                    let vi = b.load(Ty::F64, pi);
                    let jj = b.add(ri, cj);
                    let pj = b.gep(inp, jj, 8);
                    let vj = b.load(Ty::F64, pj);
                    let di = b.bin(BinOp::FSub, Ty::F64, vi, mi);
                    let dj = b.bin(BinOp::FSub, Ty::F64, vj, mj);
                    let pr = b.bin(BinOp::FMul, Ty::F64, di, dj);
                    let a = b.load(Ty::F64, acc);
                    let s = b.bin(BinOp::FAdd, Ty::F64, a, pr);
                    b.store(Ty::F64, s, acc);
                });
                let v = b.load(Ty::F64, acc);
                let oi = b.mul(ci, c64(cols));
                let oj = b.add(oi, cj);
                let pc = b.gep(cptr(cov), oj, 8);
                b.store(Ty::F64, v, pc);
            });
        });
        w.ret(c64(0));
        let wid = m.add_func(w.finish());

        fork_join_main(
            &mut m,
            wid,
            move |b| {
                // Column means, single-threaded setup phase.
                let inp = b.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
                b.counted_loop(c64(0), c64(cols), |b, c| {
                    let acc = b.alloca(Ty::F64, c64(1));
                    b.store(Ty::F64, cf64(0.0), acc);
                    b.counted_loop(c64(0), c64(rows), |b, r| {
                        let ri = b.mul(r, c64(cols));
                        let ii = b.add(ri, c);
                        let p = b.gep(inp, ii, 8);
                        let v = b.load(Ty::F64, p);
                        let a = b.load(Ty::F64, acc);
                        let s = b.bin(BinOp::FAdd, Ty::F64, a, v);
                        b.store(Ty::F64, s, acc);
                    });
                    let s = b.load(Ty::F64, acc);
                    let mean = b.bin(BinOp::FMul, Ty::F64, s, cf64(1.0 / rows as f64));
                    let pm = b.gep(cptr(means), c, 8);
                    b.store(Ty::F64, mean, pm);
                });
            },
            move |b, _| {
                let acc = b.alloca(Ty::F64, c64(1));
                b.store(Ty::F64, cf64(0.0), acc);
                b.counted_loop(c64(0), c64(cols * cols), |b, i| {
                    let pc = b.gep(cptr(cov), i, 8);
                    let v = b.load(Ty::F64, pc);
                    let a = b.load(Ty::F64, acc);
                    let s = b.bin(BinOp::FAdd, Ty::F64, a, v);
                    b.store(Ty::F64, s, acc);
                });
                let v = b.load(Ty::F64, acc);
                b.call_builtin(Builtin::OutputF64, vec![v.into()], Ty::Void);
                b.ret(c64(0));
            },
        );
        BuiltWorkload { module: m, input: gen_f64s(0x66, (rows * cols) as usize, -2.0, 2.0) }
    }
}

// ---------------------------------------------------------------------------
// string_match
// ---------------------------------------------------------------------------

/// Phoenix string match: bzero + encrypt + byte-compare loops; the paper's
/// worst case for ELZAR (32× instruction increase) and best case for
/// native vectorization (+60% in Figure 1).
pub struct StringMatch;

const SM_KEYLEN: i64 = 16;
const SM_SCRATCH: i64 = 256;

impl Workload for StringMatch {
    fn name(&self) -> &'static str {
        "string_match"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let keys = scale.pick(64i64, 512, 4096);
        let mut m = Module::new("string_match");
        // Four encrypted target keys in globals.
        let input = gen_bytes(0x77, (keys * SM_KEYLEN) as usize);
        let mut targets = vec![];
        for t in 0..4usize {
            let key_idx = (t * 7 + 1) % keys as usize;
            let key = &input[key_idx * SM_KEYLEN as usize..(key_idx + 1) * SM_KEYLEN as usize];
            let enc: Vec<u8> = key.iter().map(|b| b ^ 0x5A).collect();
            targets.push(GLOBAL_BASE + m.add_global_data(&enc) as u64);
        }

        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let tid = w.param(0);
        let nt = emit_thread_count(&mut w);
        let inp = w.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let scratch = w.alloca(Ty::I8, c64(SM_SCRATCH));
        let found = w.alloca(Ty::I64, c64(1));
        w.store(Ty::I64, c64(0), found);
        let (start, end) = chunk_bounds(&mut w, tid, keys, nt);
        let targets_b = targets.clone();
        w.counted_loop(start, end, move |b, key| {
            // bzero the scratch buffer (store-dominated, vectorizable).
            let (bzh, _, _) = b.counted_loop(c64(0), c64(SM_SCRATCH), |b, i| {
                let p = b.gep(scratch, i, 1);
                b.store(Ty::I8, c8(0), p);
            });
            b.hint_vectorize(bzh, 32);
            // "encrypt" the key into the scratch buffer.
            let kbase = b.mul(key, c64(SM_KEYLEN));
            let kptr = b.gep(inp, kbase, 1);
            let (ench, _, _) = b.counted_loop(c64(0), c64(SM_KEYLEN), |b, i| {
                let pi = b.gep(kptr, i, 1);
                let v = b.load(Ty::I8, pi);
                let e = b.bin(BinOp::Xor, Ty::I8, v, c8(0x5A));
                let po = b.gep(scratch, i, 1);
                b.store(Ty::I8, e, po);
            });
            // The 16-byte encrypt loop stays scalar (too short for the
            // vectorizer's cost model); bzero and the compare loops are
            // what gave the real string_match its +60% (Figure 1).
            let _ = ench;
            // Compare against the four targets (AND-reduction).
            for taddr in &targets_b {
                let pre = b.current();
                let header = b.block("sm.header");
                let body = b.block("sm.body");
                let latch = b.block("sm.latch");
                let exit = b.block("sm.exit");
                b.br(header);
                b.switch_to(header);
                let i = b.phi(Ty::I64);
                let flag = b.phi(Ty::I8);
                b.phi_add_incoming(i, pre, c64(0));
                b.phi_add_incoming(flag, pre, c8(1));
                let c = b.icmp(CmpPred::Slt, i, c64(SM_KEYLEN));
                b.cond_br(c, body, exit);
                b.switch_to(body);
                let pa = b.gep(scratch, i, 1);
                let a = b.load(Ty::I8, pa);
                let pt = b.gep(cptr(*taddr), i, 1);
                let t = b.load(Ty::I8, pt);
                let eq = b.icmp(CmpPred::Eq, a, t);
                let bit = b.select(eq, c8(1), c8(0));
                let flag2 = b.bin(BinOp::And, Ty::I8, flag, bit);
                b.br(latch);
                b.switch_to(latch);
                let inext = b.add(i, c64(1));
                b.phi_add_incoming(i, latch, inext);
                b.phi_add_incoming(flag, latch, flag2);
                b.br(header);
                b.switch_to(exit);
                let wide = b.cast(CastOp::ZExt, flag, Ty::I64);
                let f0 = b.load(Ty::I64, found);
                let f1 = b.add(f0, wide);
                b.store(Ty::I64, f1, found);
            }
        });
        let total = w.load(Ty::I64, found);
        w.ret(total);
        let wid = m.add_func(w.finish());

        fork_join_main(
            &mut m,
            wid,
            |_b| {},
            |b, sum| {
                b.call_builtin(Builtin::OutputI64, vec![sum.into()], Ty::Void);
                b.ret(sum);
            },
        );
        BuiltWorkload { module: m, input }
    }
}

// ---------------------------------------------------------------------------
// word_count
// ---------------------------------------------------------------------------

/// Branchy byte scanner with hash-bucket updates kept in memory.
pub struct WordCount;

impl Workload for WordCount {
    fn name(&self) -> &'static str {
        "word_count"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn build(&self, scale: Scale) -> BuiltWorkload {
        let n = scale.pick(4_000i64, 40_000, 400_000);
        let mut m = Module::new("word_count");
        let table = GLOBAL_BASE + m.alloc_global(256 * 8) as u64;
        let total = GLOBAL_BASE + m.alloc_global(8) as u64;

        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let tid = w.param(0);
        let nt = emit_thread_count(&mut w);
        let inp = w.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let local = w.alloca(Ty::I64, c64(256));
        w.counted_loop(c64(0), c64(256), |b, i| {
            let p = b.gep(local, i, 8);
            b.store(Ty::I64, c64(0), p);
        });
        let in_word = w.alloca(Ty::I64, c64(1));
        let hash = w.alloca(Ty::I64, c64(1));
        let count = w.alloca(Ty::I64, c64(1));
        let pos = w.alloca(Ty::I64, c64(1));
        w.store(Ty::I64, c64(0), in_word);
        w.store(Ty::I64, c64(0), hash);
        w.store(Ty::I64, c64(0), count);
        let (start, end) = chunk_bounds(&mut w, tid, n, nt);
        w.store(Ty::I64, start.clone(), pos);
        // Phoenix-style boundary rule: a word belongs to the thread whose
        // chunk contains its first byte. Skip a partial word at the chunk
        // head; run past `end` to finish a word that started inside.
        let skip_hdr = w.block("wc.skip_hdr");
        let skip_body = w.block("wc.skip_body");
        let main_hdr = w.block("wc.main_hdr");
        let main_body = w.block("wc.main_body");
        let done = w.block("wc.done");
        let at_zero = w.icmp(CmpPred::Eq, start, c64(0));
        w.cond_br(at_zero, main_hdr, skip_hdr);
        w.switch_to(skip_hdr);
        {
            let pv = w.load(Ty::I64, pos);
            let c1 = w.icmp(CmpPred::Slt, pv, end.clone());
            let prev_i = w.sub(pv, c64(1));
            let pp = w.gep(inp, prev_i, 1);
            let prev = w.load(Ty::I8, pp);
            let c2 = w.icmp(CmpPred::Ne, prev, c8(32));
            let w1 = w.cast(CastOp::ZExt, c1, Ty::I64);
            let w2 = w.cast(CastOp::ZExt, c2, Ty::I64);
            let both = w.bin(BinOp::And, Ty::I64, w1, w2);
            let cont_skip = w.icmp(CmpPred::Ne, both, c64(0));
            w.cond_br(cont_skip, skip_body, main_hdr);
            w.switch_to(skip_body);
            let pv = w.load(Ty::I64, pos);
            let p1 = w.add(pv, c64(1));
            w.store(Ty::I64, p1, pos);
            w.br(skip_hdr);
        }
        w.switch_to(main_hdr);
        {
            // while pos < n && (pos < end || in_word)
            let pv = w.load(Ty::I64, pos);
            let c1 = w.icmp(CmpPred::Slt, pv, c64(n));
            let c2 = w.icmp(CmpPred::Slt, pv, end);
            let iw = w.load(Ty::I64, in_word);
            let c3 = w.icmp(CmpPred::Ne, iw, c64(0));
            let w2 = w.cast(CastOp::ZExt, c2, Ty::I64);
            let w3 = w.cast(CastOp::ZExt, c3, Ty::I64);
            let or23 = w.bin(BinOp::Or, Ty::I64, w2, w3);
            let w1 = w.cast(CastOp::ZExt, c1, Ty::I64);
            let all = w.bin(BinOp::And, Ty::I64, w1, or23);
            let go = w.icmp(CmpPred::Ne, all, c64(0));
            w.cond_br(go, main_body, done);
        }
        w.switch_to(main_body);
        {
            let pv = w.load(Ty::I64, pos);
            let pb = w.gep(inp, pv, 1);
            let byte = w.load(Ty::I8, pb);
            let is_sep = w.icmp(CmpPred::Eq, byte, c8(32));
            let sep_bb = w.block("wc.sep");
            let chr_bb = w.block("wc.chr");
            let cont = w.block("wc.cont");
            w.cond_br(is_sep, sep_bb, chr_bb);
            w.switch_to(sep_bb);
            {
                let iw = w.load(Ty::I64, in_word);
                let was = w.icmp(CmpPred::Ne, iw, c64(0));
                let endw = w.block("wc.endw");
                w.cond_br(was, endw, cont);
                w.switch_to(endw);
                let h = w.load(Ty::I64, hash);
                let bucket = w.bin(BinOp::And, Ty::I64, h, c64(255));
                let pt = w.gep(local, bucket, 8);
                let c = w.load(Ty::I64, pt);
                let c1 = w.add(c, c64(1));
                w.store(Ty::I64, c1, pt);
                let wc = w.load(Ty::I64, count);
                let wc1 = w.add(wc, c64(1));
                w.store(Ty::I64, wc1, count);
                w.store(Ty::I64, c64(0), in_word);
                w.store(Ty::I64, c64(0), hash);
                w.br(cont);
            }
            w.switch_to(chr_bb);
            {
                w.store(Ty::I64, c64(1), in_word);
                let h = w.load(Ty::I64, hash);
                let h31 = w.mul(h, c64(31));
                let wide = w.cast(CastOp::ZExt, byte, Ty::I64);
                let h2 = w.add(h31, wide);
                w.store(Ty::I64, h2, hash);
                w.br(cont);
            }
            w.switch_to(cont);
            let p1 = w.add(pv, c64(1));
            w.store(Ty::I64, p1, pos);
            w.br(main_hdr);
        }
        w.switch_to(done);
        {
            // A word ending exactly at end-of-input.
            let iw = w.load(Ty::I64, in_word);
            let left = w.icmp(CmpPred::Ne, iw, c64(0));
            let fin_bb = w.block("wc.fin");
            let merge_bb = w.block("wc.merge");
            w.cond_br(left, fin_bb, merge_bb);
            w.switch_to(fin_bb);
            let h = w.load(Ty::I64, hash);
            let bucket = w.bin(BinOp::And, Ty::I64, h, c64(255));
            let pt = w.gep(local, bucket, 8);
            let c = w.load(Ty::I64, pt);
            let c1 = w.add(c, c64(1));
            w.store(Ty::I64, c1, pt);
            let wc = w.load(Ty::I64, count);
            let wc1 = w.add(wc, c64(1));
            w.store(Ty::I64, wc1, count);
            w.br(merge_bb);
            w.switch_to(merge_bb);
        }
        // Merge local buckets + word count atomically (ints: commutative).
        w.counted_loop(c64(0), c64(256), |b, i| {
            let pl = b.gep(local, i, 8);
            let v = b.load(Ty::I64, pl);
            let pg = b.gep(cptr(table), i, 8);
            b.atomic_rmw(elzar_ir::RmwOp::Add, Ty::I64, pg, v);
        });
        let wc = w.load(Ty::I64, count);
        w.atomic_rmw(elzar_ir::RmwOp::Add, Ty::I64, cptr(total), wc);
        w.ret(c64(0));
        let wid = m.add_func(w.finish());

        fork_join_main(
            &mut m,
            wid,
            |_b| {},
            |b, _| {
                let t = b.load(Ty::I64, cptr(total));
                b.call_builtin(Builtin::OutputI64, vec![t.into()], Ty::Void);
                b.counted_loop(c64(0), c64(256), |b, i| {
                    let pg = b.gep(cptr(table), i, 8);
                    let v = b.load(Ty::I64, pg);
                    b.call_builtin(Builtin::OutputI64, vec![v.into()], Ty::Void);
                });
                b.ret(c64(0));
            },
        );
        // Text: words of 1..8 letters separated by single spaces.
        let mut s = 0x88u64 | 1;
        let mut text = Vec::with_capacity(n as usize);
        while text.len() < n as usize {
            let wl = 1 + (crate::common::lcg(&mut s) % 8) as usize;
            for _ in 0..wl {
                text.push(b'a' + (crate::common::lcg(&mut s) % 26) as u8);
            }
            text.push(b' ');
        }
        text.truncate(n as usize);
        BuiltWorkload { module: m, input: text }
    }
}
