//! End-to-end semantics tests for every benchmark: native, no-SIMD,
//! vectorized-native, ELZAR (default + future-AVX) and SWIFT-R builds
//! must exit cleanly and produce byte-identical output at 1 and 2
//! simulated threads. Workload modules are thread-count-agnostic, so
//! one build is exercised under several `MachineConfig::threads` values.

use elzar::{execute, Mode};
use elzar_vm::{MachineConfig, RunOutcome};
use elzar_workloads::{all_workloads, by_name, Scale};

fn cfg(threads: u32) -> MachineConfig {
    MachineConfig { step_limit: 3_000_000_000, threads, ..MachineConfig::default() }
}

#[test]
fn all_workloads_agree_across_modes_one_thread() {
    for w in all_workloads() {
        let built = w.build(Scale::Tiny);
        let native = execute(&built.module, &Mode::NativeNoSimd, &built.input, cfg(1));
        assert!(
            matches!(native.outcome, RunOutcome::Exited(_)),
            "{}: native outcome {:?}",
            w.name(),
            native.outcome
        );
        assert!(!native.output.is_empty(), "{}: no observable output", w.name());
        for mode in [Mode::Native, Mode::elzar_default(), Mode::elzar_future_avx(), Mode::SwiftR] {
            let r = execute(&built.module, &mode, &built.input, cfg(1));
            assert_eq!(native.outcome, r.outcome, "{} under {mode:?}", w.name());
            assert_eq!(native.output, r.output, "{} under {mode:?}: output diverged", w.name());
            if matches!(mode, Mode::Elzar(_)) {
                assert_eq!(r.corrections, 0, "{}: spurious recovery under {mode:?}", w.name());
            }
        }
    }
}

#[test]
fn all_workloads_agree_across_modes_two_threads() {
    for w in all_workloads() {
        let built = w.build(Scale::Tiny);
        let native = execute(&built.module, &Mode::NativeNoSimd, &built.input, cfg(2));
        assert!(
            matches!(native.outcome, RunOutcome::Exited(_)),
            "{}: native outcome {:?}",
            w.name(),
            native.outcome
        );
        for mode in [Mode::elzar_default(), Mode::SwiftR] {
            let r = execute(&built.module, &mode, &built.input, cfg(2));
            assert_eq!(native.outcome, r.outcome, "{} under {mode:?}", w.name());
            assert_eq!(native.output, r.output, "{} under {mode:?}", w.name());
        }
    }
}

#[test]
fn thread_count_does_not_change_results_for_reduction_kernels() {
    // Workloads with order-independent merges must give identical output
    // at different thread counts — and since modules are now
    // thread-count-agnostic, it is literally the same lowered program
    // run under two machine configurations.
    for name in ["histogram", "linear_regression", "word_count", "string_match", "dedup"] {
        let w = by_name(name).unwrap();
        let built = w.build(Scale::Tiny);
        let r1 = execute(&built.module, &Mode::NativeNoSimd, &built.input, cfg(1));
        let r2 = execute(&built.module, &Mode::NativeNoSimd, &built.input, cfg(3));
        assert_eq!(r1.output, r2.output, "{name}: thread count changed results");
    }
}

#[test]
fn histogram_bins_sum_to_input_length() {
    let w = by_name("histogram").unwrap();
    let built = w.build(Scale::Tiny);
    let r = execute(&built.module, &Mode::NativeNoSimd, &built.input, cfg(2));
    let total: i64 = r.output.chunks(8).map(|c| i64::from_le_bytes(c.try_into().unwrap())).sum();
    assert_eq!(total, built.input.len() as i64);
}

#[test]
fn linear_regression_matches_host_computation() {
    let w = by_name("linear_regression").unwrap();
    let built = w.build(Scale::Tiny);
    let r = execute(&built.module, &Mode::NativeNoSimd, &built.input, cfg(2));
    let vals: Vec<i64> = r.output.chunks(8).map(|c| i64::from_le_bytes(c.try_into().unwrap())).collect();
    // Recompute on the host.
    let n = built.input.len() / 16; // xs then ys
    let xs: Vec<i64> =
        built.input[..n * 8].chunks(8).map(|c| i64::from_le_bytes(c.try_into().unwrap())).collect();
    let ys: Vec<i64> =
        built.input[n * 8..].chunks(8).map(|c| i64::from_le_bytes(c.try_into().unwrap())).collect();
    let sx: i64 = xs.iter().sum();
    let sy: i64 = ys.iter().sum();
    let sxx: i64 = xs.iter().map(|x| x * x).sum();
    let syy: i64 = ys.iter().map(|y| y * y).sum();
    let sxy: i64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    assert_eq!(&vals[..5], &[sx, sy, sxx, syy, sxy]);
}

#[test]
fn string_match_finds_the_planted_keys() {
    let w = by_name("string_match").unwrap();
    let built = w.build(Scale::Tiny);
    let r = execute(&built.module, &Mode::NativeNoSimd, &built.input, cfg(1));
    let found = i64::from_le_bytes(r.output[..8].try_into().unwrap());
    // Four target keys are planted; duplicates in random data are
    // possible but the count must be at least 4.
    assert!(found >= 4, "found {found}");
}

#[test]
fn blackscholes_prices_are_positive_and_finite() {
    let w = by_name("blackscholes").unwrap();
    let built = w.build(Scale::Tiny);
    let r = execute(&built.module, &Mode::NativeNoSimd, &built.input, cfg(1));
    let sum = f64::from_le_bytes(r.output[..8].try_into().unwrap());
    assert!(sum.is_finite() && sum > 0.0, "price sum {sum}");
}

#[test]
fn dedup_unique_count_is_sane() {
    let w = by_name("dedup").unwrap();
    let built = w.build(Scale::Tiny);
    let r = execute(&built.module, &Mode::NativeNoSimd, &built.input, cfg(2));
    let uniq = i64::from_le_bytes(r.output[..8].try_into().unwrap());
    let blocks = built.input.len() as i64 / 64;
    // Duplicates exist by construction: strictly fewer unique than total.
    assert!(uniq > 8 && uniq < blocks, "uniq {uniq} of {blocks}");
}

#[test]
fn vectorizer_actually_fires_on_the_simd_kernels() {
    // Figure 1 depends on these kernels having vectorizable hot loops.
    {
        let name = "string_match";
        let w = by_name(name).unwrap();
        let built = w.build(Scale::Tiny);
        let mut m = built.module.clone();
        let n = elzar_passes::vectorize_module(&mut m);
        assert!(n > 0, "{name}: no loop vectorized");
    }
}
