//! Golden-output pins: every listed workload's observable output (and
//! exit code) is pinned to a known-good 64-bit FNV-1a digest, under
//! both the plain build and full ELZAR hardening. These digests were
//! recorded before the interpreter's pre-decoded dispatch rework and
//! protect program *semantics* across future interpreter, lowering and
//! pass refactors. (Cycle counts are intentionally not pinned — the
//! timing model may evolve; determinism of cycles is covered by
//! separate tests.)
//!
//! To regenerate after an *intentional* semantic change:
//! `GOLDEN_PRINT=1 cargo test -p elzar-workloads --test golden_outputs -- --nocapture`

use elzar::{execute, Mode};
use elzar_vm::{MachineConfig, RunOutcome};
use elzar_workloads::{by_name, Scale};

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn digest(name: &str, mode: &Mode) -> u64 {
    let w = by_name(name).expect("known workload");
    let built = w.build(Scale::Tiny);
    let machine = MachineConfig { step_limit: 200_000_000_000, threads: 2, ..MachineConfig::default() };
    let r = execute(&built.module, mode, &built.input, machine);
    let code = match r.outcome {
        RunOutcome::Exited(c) => c,
        other => panic!("{name} under {mode:?} did not exit cleanly: {other:?}"),
    };
    let mut payload = r.output.clone();
    payload.extend_from_slice(&code.to_le_bytes());
    fnv1a(&payload)
}

/// (workload, native-nosimd digest, elzar-default digest), recorded at
/// `Scale::Tiny`, 2 simulated threads.
const GOLDEN: &[(&str, u64, u64)] = &[
    ("histogram", 0xd446901e8dd4fc65, 0xd446901e8dd4fc65),
    ("kmeans", 0xf97cf3740ed03ca1, 0xf97cf3740ed03ca1),
    ("linear_regression", 0x9b01ebde1e0aa164, 0x9b01ebde1e0aa164),
    ("matrix_multiply", 0xb7bcde8fc56fa17d, 0xb7bcde8fc56fa17d),
    ("pca", 0x41d8e71fbe57c9c0, 0x41d8e71fbe57c9c0),
    ("string_match", 0xc812e4bd40682be5, 0xc812e4bd40682be5),
    ("word_count", 0x7cc11419418a68a6, 0x7cc11419418a68a6),
    ("blackscholes", 0xe271efe94c66fd53, 0xe271efe94c66fd53),
    ("dedup", 0x86a6b5e9a5a34fe5, 0x86a6b5e9a5a34fe5),
    ("streamcluster", 0xb978939054bedefd, 0xb978939054bedefd),
    ("swaptions", 0x6212ab931028de7e, 0x6212ab931028de7e),
    ("x264", 0x62d92198b95e7a9a, 0x62d92198b95e7a9a),
];

#[test]
fn workload_outputs_match_golden_digests() {
    let print = std::env::var("GOLDEN_PRINT").is_ok();
    let mut failures = Vec::new();
    for &(name, want_native, want_elzar) in GOLDEN {
        let got_native = digest(name, &Mode::NativeNoSimd);
        let got_elzar = digest(name, &Mode::elzar_default());
        if print {
            println!("    (\"{name}\", {got_native:#018x}, {got_elzar:#018x}),");
            continue;
        }
        if got_native != want_native {
            failures.push(format!("{name} native: got {got_native:#x}, want {want_native:#x}"));
        }
        if got_elzar != want_elzar {
            failures.push(format!("{name} elzar: got {got_elzar:#x}, want {want_elzar:#x}"));
        }
    }
    assert!(failures.is_empty(), "golden output drift:\n{}", failures.join("\n"));
}

/// The hardened build must observably behave like the plain build —
/// same bytes out for every pinned workload (already implied by the
/// digests, asserted directly so a stale GOLDEN table cannot mask it).
#[test]
fn elzar_output_equals_native_output() {
    for &(name, _, _) in GOLDEN {
        let w = by_name(name).expect("known workload");
        let built = w.build(Scale::Tiny);
        let machine = MachineConfig { step_limit: 200_000_000_000, threads: 2, ..MachineConfig::default() };
        let native = execute(&built.module, &Mode::NativeNoSimd, &built.input, machine);
        let elz = execute(&built.module, &Mode::elzar_default(), &built.input, machine);
        assert_eq!(native.outcome, elz.outcome, "{name}: outcome");
        assert_eq!(native.output, elz.output, "{name}: output bytes");
    }
}
