//! # elzar-obs
//!
//! Deterministic observability primitives for the ELZAR reproduction:
//! a virtual-time span/event tracer, a cycle-accounting ledger, and a
//! human-facing debug sink — all zero-dependency, all pure data.
//!
//! ## The tracer ([`Tracer`], [`Trace`])
//!
//! Every producer (a serving shard, the elastic driver) owns one
//! [`Tracer`]: a bounded ring buffer of [`TraceEvent`]s stamped in
//! *virtual cycles*, never wall-clock. Because every stamp is virtual
//! time and every ring is owned by exactly one deterministic producer,
//! the merged [`Trace`] — events from all rings sorted by
//! `(cycle, track, seq)` — is a pure function of the run's inputs:
//! bit-identical across host worker counts, byte-for-byte
//! ([`Trace::canonical_bytes`]). The differential suites pin this.
//!
//! Rings are bounded ([`Tracer::new`]'s `cap`): on overflow the oldest
//! event is dropped and counted ([`Tracer::dropped`]), so tracing a
//! long run costs bounded memory and the loss is itself deterministic.
//! A capacity of 0 disables the tracer entirely — [`Tracer::record`]
//! is a no-op that touches nothing, which is what makes "tracing off"
//! byte-identical to not having a tracer at all.
//!
//! ## The ledger ([`CycleLedger`], [`Category`])
//!
//! Every virtual cycle a shard lives through is attributed to exactly
//! one *foreground* category (execute / snapshot / replay / migration /
//! downtime / idle), and background work (replica mirroring, standby
//! rebuild, compaction catch-up, divergence scans) is attributed to
//! background categories that overlap foreground time. The conservation
//! invariant — `foreground_total() == lifetime cycles` — is checked by
//! [`CycleLedger::verify`] and asserted at report time by the serving
//! runtime, so a cycle can never be double-charged or lost silently.
//!
//! ## The debug sink ([`debug`])
//!
//! Human-facing progress lines (campaign drivers, scaling decisions,
//! pass spans) go through [`debug::emit`], gated on the `ELZAR_TRACE`
//! environment variable and off by default — CI output is unchanged.
//! Wall-clock text for a human at a terminal; it is deliberately *not*
//! part of the deterministic canonical trace.

#![warn(missing_docs)]

use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// Cycle-accounting ledger
// ---------------------------------------------------------------------------

/// Where a virtual cycle went. Foreground categories partition a
/// shard's lifetime (they sum to it exactly — the conservation
/// invariant); background categories account work that overlaps
/// foreground time on other simulated resources (the standby machine,
/// the log streamer, the divergence scanner).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Category {
    /// Foreground: executing request payloads (solo re-entries and
    /// batched segments; for an injected request, the production
    /// execution — the faulty run plus any post-recovery re-run).
    Execute,
    /// Foreground: periodic snapshot clones.
    Snapshot,
    /// Foreground: crash-recovery suffix replay the client waits out.
    Replay,
    /// Foreground: migration clone + filtered replay (scale-up boot,
    /// scale-down absorption).
    Migration,
    /// Foreground: unavailability that is not replay — the restart
    /// penalty, or the warm-replica promotion handoff.
    Downtime,
    /// Foreground: the shard was free and no admitted request had
    /// arrived.
    Idle,
    /// Background: the warm standby applying the committed log.
    Mirror,
    /// Background: rebuilding the standby after a promotion.
    Rebuild,
    /// Background: compaction catch-up replay.
    Catchup,
    /// Background: divergence probes and periodic checks.
    Divergence,
}

impl Category {
    /// All categories, in ledger-cell order.
    pub const ALL: [Category; 10] = [
        Category::Execute,
        Category::Snapshot,
        Category::Replay,
        Category::Migration,
        Category::Downtime,
        Category::Idle,
        Category::Mirror,
        Category::Rebuild,
        Category::Catchup,
        Category::Divergence,
    ];

    /// Number of foreground categories — the prefix of [`Category::ALL`]
    /// that must conserve against lifetime.
    pub const FOREGROUND: usize = 6;

    /// Ledger cell index.
    pub fn index(self) -> usize {
        match self {
            Category::Execute => 0,
            Category::Snapshot => 1,
            Category::Replay => 2,
            Category::Migration => 3,
            Category::Downtime => 4,
            Category::Idle => 5,
            Category::Mirror => 6,
            Category::Rebuild => 7,
            Category::Catchup => 8,
            Category::Divergence => 9,
        }
    }

    /// Whether the category is on the critical path (counts toward the
    /// conservation invariant) or overlapped background work.
    pub fn is_foreground(self) -> bool {
        self.index() < Category::FOREGROUND
    }

    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Execute => "execute",
            Category::Snapshot => "snapshot",
            Category::Replay => "replay",
            Category::Migration => "migration",
            Category::Downtime => "downtime",
            Category::Idle => "idle",
            Category::Mirror => "mirror",
            Category::Rebuild => "rebuild",
            Category::Catchup => "catchup",
            Category::Divergence => "divergence",
        }
    }
}

/// The conservation invariant failed: the foreground categories do not
/// sum to the claimed lifetime. Carries the full breakdown so the
/// panic/report message names the leak.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConservationError {
    /// `sum(foreground categories)` as accounted.
    pub foreground: u64,
    /// The lifetime the ledger was verified against.
    pub lifetime: u64,
    /// The full cell contents, [`Category::ALL`] order.
    pub cells: [u64; Category::ALL.len()],
}

impl std::fmt::Display for ConservationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cycle ledger leaks: foreground sum {} != lifetime {} (", self.foreground, self.lifetime)?;
        for (i, c) in Category::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}={}", c.label(), self.cells[i])?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for ConservationError {}

/// Per-shard (and, merged, per-report) attribution of virtual cycles
/// to [`Category`] cells. Plain data: charging is an add, merging is a
/// cell-wise sum.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CycleLedger {
    cells: [u64; Category::ALL.len()],
}

impl CycleLedger {
    /// The all-zero ledger.
    pub fn new() -> CycleLedger {
        CycleLedger::default()
    }

    /// Attribute `cycles` to `cat`. A category sum that would wrap
    /// `u64` is a virtual-time corruption (every downstream conservation
    /// check would silently pass against garbage), so it panics loudly,
    /// naming the category.
    pub fn charge(&mut self, cat: Category, cycles: u64) {
        let cell = &mut self.cells[cat.index()];
        *cell = cell.checked_add(cycles).unwrap_or_else(|| {
            panic!("virtual-time overflow in ledger category {}: {cell} + {cycles} wraps u64", cat.label())
        });
    }

    /// Cycles attributed to `cat` so far.
    pub fn get(&self, cat: Category) -> u64 {
        self.cells[cat.index()]
    }

    /// Sum of the foreground categories — must equal the owning shard's
    /// lifetime (see [`CycleLedger::verify`]).
    pub fn foreground_total(&self) -> u64 {
        self.cells[..Category::FOREGROUND].iter().sum()
    }

    /// Sum of the background categories (overlapped work, not part of
    /// the conservation invariant).
    pub fn background_total(&self) -> u64 {
        self.cells[Category::FOREGROUND..].iter().sum()
    }

    /// Cell-wise sum with another ledger (report aggregation). Panics
    /// on `u64` wraparound, naming the overflowing category — same
    /// rationale as [`CycleLedger::charge`].
    pub fn merge(&mut self, other: &CycleLedger) {
        for (cat, (a, b)) in Category::ALL.iter().zip(self.cells.iter_mut().zip(other.cells)) {
            *a = a.checked_add(b).unwrap_or_else(|| {
                panic!("virtual-time overflow merging ledger category {}: {a} + {b} wraps u64", cat.label())
            });
        }
    }

    /// Check the conservation invariant against a lifetime in cycles.
    pub fn verify(&self, lifetime: u64) -> Result<(), ConservationError> {
        let foreground = self.foreground_total();
        if foreground == lifetime {
            Ok(())
        } else {
            Err(ConservationError { foreground, lifetime, cells: self.cells })
        }
    }
}

// ---------------------------------------------------------------------------
// Virtual-time tracer
// ---------------------------------------------------------------------------

/// Track id of driver-level events (controller decisions, compaction
/// epochs) in the canonical stream — sorts after every shard track at
/// equal cycles.
pub const DRIVER_TRACK: u32 = u32::MAX;

/// What a [`TraceEvent`] records. Instant events have `dur == 0`; span
/// events cover `[cycle, cycle + dur)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A request joined a forming batch (`a` = request id).
    Admit,
    /// The bounded queue dropped a request at arrival (`a` = id).
    Reject,
    /// Deadline-aware admission shed a request (`a` = id).
    Shed,
    /// A batch finished forming (`a` = first request id, `b` = size).
    BatchForm,
    /// A batch segment or solo request executed (`a` = first request
    /// id, `b` = segment size).
    Execute,
    /// A request committed (`a` = id, `b` = latency in cycles).
    Commit,
    /// An SEU fired on a request (`a` = id, `b` = Table-I outcome
    /// index).
    Injection,
    /// A periodic snapshot clone (`a` = snapshot ordinal).
    Snapshot,
    /// A crash restart-from-snapshot detour the client waited out
    /// (`a` = request id).
    Restart,
    /// A warm-standby promotion (`a` = request id).
    Failover,
    /// Background standby rebuild after a promotion (`a` = request id).
    Rebuild,
    /// A migration clone + replay (`a` = donor shard or slot count,
    /// `b` = requests replayed).
    Migration,
    /// Background compaction catch-up replay (`a` = requests replayed).
    Catchup,
    /// A divergence probe of an injected request's faulty state
    /// (`a` = request id, `b` = 1 if flagged).
    DivergenceProbe,
    /// A periodic primary-vs-standby digest check (`a` = check
    /// ordinal, `b` = 1 on alarm).
    DivergenceCheck,
    /// The controller added a shard (`a` = donor, `b` = joiner).
    ScaleUp,
    /// The controller retired a shard (`a` = leaver, `b` = recipient).
    ScaleDown,
    /// A compaction pass truncated the committed log (`a` = entries
    /// removed, `b` = epoch).
    Compaction,
    /// A build-pipeline pass span (`a`/`b` producer-defined; used by
    /// the wall-clock debug sink, not the virtual-time serve trace).
    Pass,
    /// The predictive controller's per-epoch arrival-rate forecast
    /// (`a` = forecast, `b` = smoothed level, both in the controller's
    /// fixed-point rate units) — the instant every predictive scale
    /// decision is conditioned on.
    Forecast,
}

impl EventKind {
    /// All kinds, in canonical-code order.
    pub const ALL: [EventKind; 20] = [
        EventKind::Admit,
        EventKind::Reject,
        EventKind::Shed,
        EventKind::BatchForm,
        EventKind::Execute,
        EventKind::Commit,
        EventKind::Injection,
        EventKind::Snapshot,
        EventKind::Restart,
        EventKind::Failover,
        EventKind::Rebuild,
        EventKind::Migration,
        EventKind::Catchup,
        EventKind::DivergenceProbe,
        EventKind::DivergenceCheck,
        EventKind::ScaleUp,
        EventKind::ScaleDown,
        EventKind::Compaction,
        EventKind::Pass,
        EventKind::Forecast,
    ];

    /// Stable byte code for [`Trace::canonical_bytes`].
    pub fn code(self) -> u8 {
        EventKind::ALL.iter().position(|&k| k == self).expect("every kind is in ALL") as u8
    }

    /// Stable label for exporters.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Admit => "admit",
            EventKind::Reject => "reject",
            EventKind::Shed => "shed",
            EventKind::BatchForm => "batch_form",
            EventKind::Execute => "execute",
            EventKind::Commit => "commit",
            EventKind::Injection => "injection",
            EventKind::Snapshot => "snapshot",
            EventKind::Restart => "restart",
            EventKind::Failover => "failover",
            EventKind::Rebuild => "rebuild",
            EventKind::Migration => "migration",
            EventKind::Catchup => "catchup",
            EventKind::DivergenceProbe => "divergence_probe",
            EventKind::DivergenceCheck => "divergence_check",
            EventKind::ScaleUp => "scale_up",
            EventKind::ScaleDown => "scale_down",
            EventKind::Compaction => "compaction",
            EventKind::Pass => "pass",
            EventKind::Forecast => "forecast",
        }
    }
}

/// One traced span or instant, stamped in virtual cycles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Virtual-cycle start of the span (or the instant itself).
    pub cycle: u64,
    /// Span length in cycles; 0 for instants.
    pub dur: u64,
    /// Producer track: a shard id, or [`DRIVER_TRACK`].
    pub track: u32,
    /// Per-track record sequence number — the within-cycle tiebreak of
    /// the canonical order (monotone even across ring drops).
    pub seq: u32,
    /// What happened.
    pub kind: EventKind,
    /// First kind-specific argument (see [`EventKind`]).
    pub a: u64,
    /// Second kind-specific argument.
    pub b: u64,
}

/// A bounded per-producer event ring. `cap == 0` disables recording
/// entirely (zero cost, zero allocation); on overflow the *oldest*
/// event is dropped and counted, so the retained window and the drop
/// count are both deterministic.
#[derive(Clone, Debug)]
pub struct Tracer {
    track: u32,
    cap: usize,
    seq: u32,
    ring: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Tracer {
    /// A tracer for `track` retaining at most `cap` events.
    pub fn new(track: u32, cap: usize) -> Tracer {
        Tracer { track, cap, seq: 0, ring: VecDeque::new(), dropped: 0 }
    }

    /// The disabled tracer — every [`Tracer::record`] is a no-op.
    pub fn off() -> Tracer {
        Tracer::new(0, 0)
    }

    /// Whether recording is on (`cap > 0`).
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// Record one event at virtual time `cycle` spanning `dur` cycles
    /// (0 for an instant). No-op when disabled.
    pub fn record(&mut self, kind: EventKind, cycle: u64, dur: u64, a: u64, b: u64) {
        if self.cap == 0 {
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        self.ring.push_back(TraceEvent { cycle, dur, track: self.track, seq, kind, a, b });
        if self.ring.len() > self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
    }

    /// Events dropped to the ring bound so far (oldest-first).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

/// The canonical merged event stream: every producer's retained events
/// sorted by `(cycle, track, seq)`. Since every stamp is virtual time
/// and every ring has a single deterministic producer, the whole
/// struct — including [`Trace::dropped_events`] — is a pure function
/// of the run's inputs, independent of host workers.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Events in canonical `(cycle, track, seq)` order.
    pub events: Vec<TraceEvent>,
    /// Total events dropped to ring bounds across all producers.
    pub dropped_events: u64,
}

impl Trace {
    /// Merge producer rings into the canonical stream.
    pub fn merge(tracers: impl IntoIterator<Item = Tracer>) -> Trace {
        let mut events = Vec::new();
        let mut dropped_events = 0;
        for t in tracers {
            dropped_events += t.dropped;
            events.extend(t.ring);
        }
        events.sort_unstable_by_key(|e| (e.cycle, e.track, e.seq));
        Trace { events, dropped_events }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Fixed-width byte serialization of the canonical stream — the
    /// thing the determinism suites compare byte-for-byte across worker
    /// counts. Layout: an 8-byte magic, the event count, the drop
    /// count, then 41 bytes per event
    /// (`cycle, dur: u64 | track, seq: u32 | kind: u8 | a, b: u64`),
    /// all little-endian.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.events.len() * 41);
        out.extend_from_slice(b"ELZTRC1\0");
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.dropped_events.to_le_bytes());
        for e in &self.events {
            out.extend_from_slice(&e.cycle.to_le_bytes());
            out.extend_from_slice(&e.dur.to_le_bytes());
            out.extend_from_slice(&e.track.to_le_bytes());
            out.extend_from_slice(&e.seq.to_le_bytes());
            out.push(e.kind.code());
            out.extend_from_slice(&e.a.to_le_bytes());
            out.extend_from_slice(&e.b.to_le_bytes());
        }
        out
    }

    /// Compact text timeline: one line per event in canonical order,
    /// cycle-stamped, with the producer track and the kind-specific
    /// arguments spelled out.
    pub fn text_timeline(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {} events, {} dropped", self.events.len(), self.dropped_events);
        for e in &self.events {
            let track =
                if e.track == DRIVER_TRACK { "driver".to_string() } else { format!("shard {}", e.track) };
            let _ = write!(out, "{:>12}  {:<8}  {:<16}", e.cycle, track, e.kind.label());
            if e.dur > 0 {
                let _ = write!(out, " dur={}", e.dur);
            }
            let _ = writeln!(out, " a={} b={}", e.a, e.b);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// ELZAR_TRACE debug sink
// ---------------------------------------------------------------------------

/// Human-facing debug lines gated on the `ELZAR_TRACE` environment
/// variable (unset, empty or `0` = off). Producers pass a closure so a
/// disabled sink formats nothing.
pub mod debug {
    use std::sync::OnceLock;

    static ENABLED: OnceLock<bool> = OnceLock::new();

    /// Whether `ELZAR_TRACE` enables the sink (checked once per
    /// process).
    pub fn enabled() -> bool {
        *ENABLED
            .get_or_init(|| std::env::var("ELZAR_TRACE").map(|v| !v.is_empty() && v != "0").unwrap_or(false))
    }

    /// Emit one `[elzar-trace] topic: ...` line on stderr when the sink
    /// is enabled; otherwise do nothing (the closure never runs).
    pub fn emit(topic: &str, msg: impl FnOnce() -> String) {
        if enabled() {
            eprintln!("[elzar-trace] {topic}: {}", msg());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_conserves_and_merges() {
        let mut a = CycleLedger::new();
        a.charge(Category::Execute, 70);
        a.charge(Category::Idle, 20);
        a.charge(Category::Downtime, 10);
        a.charge(Category::Mirror, 55); // background: not in the invariant
        assert_eq!(a.foreground_total(), 100);
        assert_eq!(a.background_total(), 55);
        assert!(a.verify(100).is_ok());
        let err = a.verify(99).unwrap_err();
        assert_eq!((err.foreground, err.lifetime), (100, 99));
        let msg = err.to_string();
        assert!(msg.contains("execute=70") && msg.contains("mirror=55"), "{msg}");

        let mut b = CycleLedger::new();
        b.charge(Category::Execute, 30);
        b.charge(Category::Snapshot, 5);
        a.merge(&b);
        assert_eq!(a.get(Category::Execute), 100);
        assert_eq!(a.get(Category::Snapshot), 5);
        assert!(a.verify(135).is_ok());
    }

    /// A shard whose life starts near `u64::MAX` drives every category
    /// sum toward the wraparound edge — the regression the checked
    /// ledger arithmetic exists for: the panic must fire (instead of a
    /// silent wrap to ~0 that `verify` would then "conserve") and must
    /// name the overflowing category.
    #[test]
    fn ledger_overflow_panics_naming_the_category() {
        let msg_of =
            |err: Box<dyn std::any::Any + Send>| err.downcast_ref::<String>().cloned().unwrap_or_default();

        let mut a = CycleLedger::new();
        a.charge(Category::Idle, u64::MAX - 5); // spawned_at near u64::MAX
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut a = a;
            a.charge(Category::Idle, 6);
        }))
        .unwrap_err();
        let msg = msg_of(err);
        assert!(msg.contains("idle"), "charge panic must name the category: {msg}");
        assert!(msg.contains("virtual-time overflow"), "{msg}");

        let mut b = CycleLedger::new();
        b.charge(Category::Idle, 6);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || a.merge(&b))).unwrap_err();
        let msg = msg_of(err);
        assert!(msg.contains("idle"), "merge panic must name the category: {msg}");
    }

    #[test]
    fn category_indices_and_labels_are_distinct() {
        let mut seen = [false; Category::ALL.len()];
        for c in Category::ALL {
            assert!(!seen[c.index()], "duplicate index {}", c.index());
            seen[c.index()] = true;
        }
        for (i, c) in Category::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "ALL must be in cell order");
            for d in &Category::ALL[i + 1..] {
                assert_ne!(c.label(), d.label());
            }
        }
        assert!(Category::Execute.is_foreground());
        assert!(Category::Idle.is_foreground());
        assert!(!Category::Mirror.is_foreground());
        assert!(!Category::Divergence.is_foreground());
    }

    #[test]
    fn event_kind_codes_are_stable_and_distinct() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.code() as usize, i);
            for other in &EventKind::ALL[i + 1..] {
                assert_ne!(k.label(), other.label());
            }
        }
    }

    #[test]
    fn ring_drops_oldest_deterministically() {
        let mut t = Tracer::new(3, 4);
        for i in 0..10u64 {
            t.record(EventKind::Commit, 100 * i, 0, i, 0);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let trace = Trace::merge([t]);
        assert_eq!(trace.dropped_events, 6);
        // Oldest-first: exactly the newest 4 remain, seq still monotone.
        let kept: Vec<u64> = trace.events.iter().map(|e| e.a).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
        let seqs: Vec<u32> = trace.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::off();
        assert!(!t.enabled());
        t.record(EventKind::Execute, 5, 10, 1, 2);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(Trace::merge([t]).is_empty());
    }

    #[test]
    fn merge_orders_by_cycle_track_seq() {
        let mut a = Tracer::new(1, 16);
        let mut d = Tracer::new(DRIVER_TRACK, 16);
        let mut b = Tracer::new(0, 16);
        a.record(EventKind::Execute, 50, 10, 0, 0);
        a.record(EventKind::Commit, 50, 0, 1, 0); // same cycle, later seq
        b.record(EventKind::Admit, 50, 0, 2, 0); // same cycle, lower track
        d.record(EventKind::ScaleUp, 50, 0, 0, 1); // driver sorts last
        b.record(EventKind::Commit, 10, 0, 3, 0);
        let trace = Trace::merge([a, d, b]);
        let order: Vec<(u64, u32, u32)> = trace.events.iter().map(|e| (e.cycle, e.track, e.seq)).collect();
        assert_eq!(order, vec![(10, 0, 1), (50, 0, 0), (50, 1, 0), (50, 1, 1), (50, DRIVER_TRACK, 0)]);
    }

    #[test]
    fn canonical_bytes_are_fixed_width_and_order_sensitive() {
        let mut t = Tracer::new(2, 8);
        t.record(EventKind::Snapshot, 7, 3, 1, 0);
        t.record(EventKind::Execute, 9, 4, 2, 5);
        let trace = Trace::merge([t.clone()]);
        let bytes = trace.canonical_bytes();
        assert_eq!(bytes.len(), 24 + 2 * 41);
        assert_eq!(&bytes[..8], b"ELZTRC1\0");
        // Identical input → identical bytes; any difference shows.
        assert_eq!(bytes, Trace::merge([t.clone()]).canonical_bytes());
        let mut t2 = t.clone();
        t2.record(EventKind::Commit, 9, 0, 2, 5);
        assert_ne!(bytes, Trace::merge([t2]).canonical_bytes());
    }

    #[test]
    fn text_timeline_names_tracks_and_kinds() {
        let mut s = Tracer::new(3, 8);
        let mut d = Tracer::new(DRIVER_TRACK, 8);
        s.record(EventKind::Execute, 100, 40, 7, 1);
        d.record(EventKind::Compaction, 200, 0, 12, 4);
        let text = Trace::merge([s, d]).text_timeline();
        assert!(text.starts_with("# 2 events, 0 dropped\n"), "{text}");
        assert!(text.contains("shard 3") && text.contains("execute") && text.contains("dur=40"), "{text}");
        assert!(text.contains("driver") && text.contains("compaction"), "{text}");
    }
}
