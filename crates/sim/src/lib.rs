//! # elzar_sim — the discrete-event virtual-time core
//!
//! Every subsystem in this reproduction is evaluated in *virtual time*:
//! cycles are data, not wall clock, so results are pure functions of
//! their inputs. Until this crate existed each subsystem hand-rolled
//! its own time loop (the serve shard drain, the elastic controller's
//! epoch cadence, the campaign driver's checkpoint advancement) — and
//! the seams between those loops are where ordering and overflow bugs
//! hide. `elzar_sim` replaces them with one discrete-event scheduler:
//!
//! * a [`Component`] declares the absolute cycle of its next wake-up
//!   ([`Component::next_tick`], [`NEVER`] when idle) and reacts to it
//!   ([`Component::tick`]) against shared state `S`;
//! * the [`Scheduler`] keeps a binary min-heap of wake-ups keyed
//!   `(cycle, track, seq)` — `track` is the component's registration
//!   index, `seq` a global monotone push counter — so same-cycle ties
//!   are **totally ordered**: lower track first, then push order;
//! * per-component *clock dividers* quantize wake-ups up to the next
//!   multiple of the divider, modelling components clocked slower than
//!   the master clock;
//! * [`TieBreak::Fuzzed`] permutes each same-cycle ready set under an
//!   `elzar_rng` seed — a determinism stress: a system whose committed
//!   state changes under permutation has an order-dependence bug (or,
//!   hunted deliberately via [`hunt_order_dependence`], an
//!   order-dependent *fault* to study);
//! * [`Scheduler::strike_timer`] / [`Scheduler::strike_divider`] model
//!   device-struck SEUs in the timer fabric itself — a single bit flip
//!   in a pending wake-up cycle or a clock divider, the fault class
//!   that ALU/memory injection (crates `fault`, `serve`) cannot reach.
//!
//! All virtual-time arithmetic goes through [`vt_add`] / [`vt_mul`]:
//! silent `u64` wraparound in a cycle counter is a corruption bug, so
//! overflow panics loudly, naming the component that accumulated past
//! `u64::MAX`.

#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use elzar_rng::DetRng;

/// Sentinel wake-up cycle meaning "no pending wake-up". A component
/// returning [`NEVER`] from [`Component::next_tick`] is quiescent; the
/// scheduler stops once every component is.
pub const NEVER: u64 = u64::MAX;

/// Checked virtual-time addition: `a + b`, panicking loudly — naming
/// the accumulating `component` — instead of wrapping. Use for every
/// cycle-counter accumulation; a wrapped virtual clock silently
/// reorders all subsequent events.
#[track_caller]
pub fn vt_add(component: &str, a: u64, b: u64) -> u64 {
    a.checked_add(b).unwrap_or_else(|| panic!("virtual-time overflow in {component}: {a} + {b} wraps u64"))
}

/// Checked virtual-time multiplication: `a * b`, panicking loudly —
/// naming the `component` — instead of wrapping.
#[track_caller]
pub fn vt_mul(component: &str, a: u64, b: u64) -> u64 {
    a.checked_mul(b).unwrap_or_else(|| panic!("virtual-time overflow in {component}: {a} * {b} wraps u64"))
}

/// A simulated component driven by the [`Scheduler`].
///
/// The contract mirrors a hardware block on a shared clock: between
/// ticks the component is inert; [`Component::next_tick`] reports the
/// absolute cycle at which it next wants control (or [`NEVER`]);
/// [`Component::tick`] runs its reaction at that cycle against the
/// shared system state `S`. A component asking to wake in the past
/// (below the scheduler's current cycle) fires at the current cycle —
/// virtual time never runs backwards.
pub trait Component<S> {
    /// Short stable name used in overflow panics and diagnostics.
    fn label(&self) -> &'static str;
    /// Absolute cycle of the next wake-up, or [`NEVER`] when quiescent.
    fn next_tick(&self) -> u64;
    /// React at cycle `now`. May mutate shared state and reschedule
    /// (the scheduler re-polls [`Component::next_tick`] after every
    /// same-cycle round).
    fn tick(&mut self, now: u64, sys: &mut S);
}

impl<S> Component<S> for Box<dyn Component<S> + '_> {
    fn label(&self) -> &'static str {
        (**self).label()
    }
    fn next_tick(&self) -> u64 {
        (**self).next_tick()
    }
    fn tick(&mut self, now: u64, sys: &mut S) {
        (**self).tick(now, sys)
    }
}

/// How the scheduler orders events that land on an identical cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TieBreak {
    /// The canonical total order: `(cycle, track, seq)` — lower
    /// registration index first, then push order. Every production
    /// path uses this; it is what the trace byte streams pin.
    Canonical,
    /// Permute each same-cycle ready set with a Fisher–Yates shuffle
    /// driven by a [`DetRng`] seeded from the payload. Deterministic
    /// per seed; a correct (order-independent) system commits
    /// bit-identical state under every seed.
    Fuzzed(u64),
}

struct Slot<C> {
    comp: C,
    divider: u64,
    /// Cycle of this component's live heap entry ([`NEVER`] = none).
    /// Heap entries whose cycle disagrees are stale and skipped on pop.
    scheduled: u64,
    /// A struck timer keeps its corrupted wake-up until it fires; the
    /// scheduler must not "helpfully" re-derive the honest schedule.
    struck: bool,
}

/// Discrete-event scheduler over a homogeneous set of components
/// sharing mutable state `S`. (Heterogeneous systems register
/// `Box<dyn Component<S>>`.) Wake-ups live in a binary min-heap keyed
/// `(cycle, track, seq)`; stale entries are invalidated lazily via the
/// per-slot `scheduled` cycle.
pub struct Scheduler<S, C: Component<S>> {
    slots: Vec<Slot<C>>,
    heap: BinaryHeap<Reverse<(u64, u32, u64)>>,
    seq: u64,
    now: u64,
    ticks: u64,
    tie: TieBreak,
    _state: std::marker::PhantomData<fn(&mut S)>,
}

impl<S, C: Component<S>> Scheduler<S, C> {
    /// An empty scheduler at cycle 0 with the given tie-break rule.
    pub fn new(tie: TieBreak) -> Self {
        Scheduler {
            slots: Vec::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            ticks: 0,
            tie,
            _state: std::marker::PhantomData,
        }
    }

    /// Register a component on the master clock (divider 1). Returns
    /// its track id — its rank in the same-cycle tie order.
    pub fn add(&mut self, comp: C) -> u32 {
        self.add_with_divider(comp, 1)
    }

    /// Register a component clocked at `master / divider`: its
    /// wake-ups are quantized **up** to the next multiple of `divider`
    /// (a divider of 0 is treated as 1). Returns its track id.
    pub fn add_with_divider(&mut self, comp: C, divider: u64) -> u32 {
        let track = self.slots.len() as u32;
        self.slots.push(Slot { comp, divider: divider.max(1), scheduled: NEVER, struck: false });
        track
    }

    /// The current cycle (last cycle at which any component ticked).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Total ticks delivered so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The cycle at which `track` is currently scheduled to wake
    /// ([`NEVER`] if quiescent). Visible for tests and fault probes.
    pub fn scheduled_at(&self, track: u32) -> u64 {
        self.slots[track as usize].scheduled
    }

    /// Device-struck SEU in the timer fabric: flip `bit` (0–63) of
    /// `track`'s pending wake-up cycle. A strike into the past fires at
    /// the current cycle; a strike to [`NEVER`] is a *lost wake-up* —
    /// the component never fires again unless something else
    /// reschedules it. The corrupted schedule persists until it fires
    /// (the scheduler does not re-derive the honest one), after which
    /// the component's own `next_tick` takes over — a transient SEU.
    /// Returns the corrupted cycle, or `None` if the track had no
    /// pending wake-up to corrupt.
    pub fn strike_timer(&mut self, track: u32, bit: u32) -> Option<u64> {
        let now = self.now;
        let slot = &mut self.slots[track as usize];
        if slot.scheduled == NEVER {
            return None;
        }
        let corrupted = (slot.scheduled ^ (1u64 << (bit % 64))).max(now);
        slot.scheduled = corrupted;
        slot.struck = true;
        if corrupted != NEVER {
            self.heap.push(Reverse((corrupted, track, self.seq)));
            self.seq += 1;
        }
        Some(corrupted)
    }

    /// Device-struck SEU in a clock divider: flip `bit` (0–63) of
    /// `track`'s divider. Unlike [`Scheduler::strike_timer`] this is a
    /// *permanent* fault — every future wake-up quantizes against the
    /// corrupted divider. Returns the corrupted divider value.
    pub fn strike_divider(&mut self, track: u32, bit: u32) -> u64 {
        let slot = &mut self.slots[track as usize];
        slot.divider ^= 1u64 << (bit % 64);
        slot.divider
    }

    /// Tear down the scheduler and hand back the components in track
    /// order (the shared-state pattern: callers reclaim their runtimes
    /// after the simulation drains).
    pub fn into_components(self) -> Vec<C> {
        self.slots.into_iter().map(|s| s.comp).collect()
    }

    /// Re-derive `track`'s wake-up from its component and (if changed)
    /// push a fresh heap entry; the old entry, if any, goes stale.
    fn sync(&mut self, track: usize) {
        let now = self.now;
        let slot = &mut self.slots[track];
        if slot.struck {
            return;
        }
        let raw = slot.comp.next_tick();
        let desired = quantize(slot.comp.label(), raw, slot.divider).max(now);
        if desired == slot.scheduled {
            return;
        }
        slot.scheduled = desired;
        if desired != NEVER {
            self.heap.push(Reverse((desired, track as u32, self.seq)));
            self.seq += 1;
        }
    }

    /// Derive every component's initial wake-up. [`Scheduler::run`]
    /// does this implicitly; call it first when a timer strike must
    /// land *before* the run starts.
    pub fn prime(&mut self) {
        for t in 0..self.slots.len() {
            self.sync(t);
        }
    }

    /// Run to quiescence: deliver ticks in `(cycle, track, seq)` order
    /// until no component has a pending wake-up. Returns the final
    /// cycle. Same-cycle rounds are collected wholesale so
    /// [`TieBreak::Fuzzed`] can permute them; events pushed *at* the
    /// current cycle during a round join the next round at that cycle.
    pub fn run(&mut self, sys: &mut S) -> u64 {
        self.prime();
        let mut rng = match self.tie {
            TieBreak::Fuzzed(seed) => Some(DetRng::seed_from_u64(seed)),
            TieBreak::Canonical => None,
        };
        let mut ready: Vec<u32> = Vec::new();
        loop {
            // Skip stale heap entries until a live head (or empty).
            let cycle = loop {
                match self.heap.peek() {
                    None => return self.now,
                    Some(&Reverse((c, track, _))) => {
                        if self.slots[track as usize].scheduled == c {
                            break c;
                        }
                        self.heap.pop();
                    }
                }
            };
            debug_assert!(cycle >= self.now, "virtual time went backwards");
            self.now = cycle;
            // Collect the full same-cycle ready set in (track, seq)
            // order; stale and duplicate entries drop out via the
            // scheduled-cycle check.
            ready.clear();
            while let Some(&Reverse((c, track, _))) = self.heap.peek() {
                if c != cycle {
                    break;
                }
                self.heap.pop();
                let slot = &mut self.slots[track as usize];
                if slot.scheduled == cycle {
                    slot.scheduled = NEVER;
                    slot.struck = false;
                    ready.push(track);
                }
            }
            if let Some(rng) = rng.as_mut() {
                shuffle(&mut ready, rng);
            }
            for &track in &ready {
                self.slots[track as usize].comp.tick(cycle, sys);
                self.ticks += 1;
            }
            for t in 0..self.slots.len() {
                self.sync(t);
            }
        }
    }
}

/// Quantize a wake-up **up** to the next multiple of `divider`
/// (checked: a quantization past `u64::MAX` is a virtual-time
/// overflow and panics naming the component).
fn quantize(label: &str, t: u64, divider: u64) -> u64 {
    if t == NEVER || divider <= 1 {
        return t;
    }
    let rem = t % divider;
    if rem == 0 {
        t
    } else {
        vt_add(label, t, divider - rem)
    }
}

/// Fisher–Yates under the deterministic rng.
fn shuffle(v: &mut [u32], rng: &mut DetRng) {
    for i in (1..v.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        v.swap(i, j);
    }
}

/// The order-dependence hunt: run the system once under
/// [`TieBreak::Canonical`] and once per seed under
/// [`TieBreak::Fuzzed`], comparing a caller-supplied digest of the
/// committed state. Returns the first seed whose digest diverges from
/// canonical — an *order-dependent fault* (the new hunt mode) — or
/// `None` if the system is order-independent across all seeds.
pub fn hunt_order_dependence<D: PartialEq>(run: impl Fn(TieBreak) -> D, seeds: &[u64]) -> Option<u64> {
    let canonical = run(TieBreak::Canonical);
    seeds.iter().copied().find(|&seed| run(TieBreak::Fuzzed(seed)) != canonical)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fires every `period` cycles starting at `period`, `count`
    /// times; appends `(now, id)` to the shared journal.
    struct Metronome {
        id: u32,
        period: u64,
        fired: u64,
        count: u64,
        next: u64,
    }

    impl Metronome {
        fn new(id: u32, period: u64, count: u64) -> Metronome {
            Metronome { id, period, fired: 0, count, next: period }
        }
    }

    impl Component<Vec<(u64, u32)>> for Metronome {
        fn label(&self) -> &'static str {
            "metronome"
        }
        fn next_tick(&self) -> u64 {
            if self.fired < self.count {
                self.next
            } else {
                NEVER
            }
        }
        fn tick(&mut self, now: u64, journal: &mut Vec<(u64, u32)>) {
            journal.push((now, self.id));
            self.fired += 1;
            self.next = vt_add("metronome", now, self.period);
        }
    }

    #[test]
    fn interleaves_by_cycle_and_breaks_ties_by_track() {
        let mut sched = Scheduler::new(TieBreak::Canonical);
        sched.add(Metronome::new(0, 3, 4)); // 3 6 9 12
        sched.add(Metronome::new(1, 2, 6)); // 2 4 6 8 10 12
        let mut journal = Vec::new();
        let end = sched.run(&mut journal);
        assert_eq!(end, 12);
        assert_eq!(sched.ticks(), 10);
        // Same-cycle ties (6 and 12) go to track 0 first.
        let expect = [(2, 1), (3, 0), (4, 1), (6, 0), (6, 1), (8, 1), (9, 0), (10, 1), (12, 0), (12, 1)];
        assert_eq!(journal, expect);
    }

    #[test]
    fn divider_quantizes_wakeups_up() {
        let mut sched = Scheduler::new(TieBreak::Canonical);
        // Period 3 on a /4 divider: honest wake-ups 3,7,11 quantize to
        // 4,8,12.
        sched.add_with_divider(Metronome::new(0, 3, 3), 4);
        let mut journal = Vec::new();
        sched.run(&mut journal);
        assert_eq!(journal, [(4, 0), (8, 0), (12, 0)]);
    }

    #[test]
    fn same_cycle_pushes_join_the_next_round_at_that_cycle() {
        /// Ticks once at cycle 5, then asks to tick again at 5.
        struct Echo {
            fired: u64,
        }
        impl Component<Vec<u64>> for Echo {
            fn label(&self) -> &'static str {
                "echo"
            }
            fn next_tick(&self) -> u64 {
                match self.fired {
                    0 | 1 => 5,
                    _ => NEVER,
                }
            }
            fn tick(&mut self, now: u64, journal: &mut Vec<u64>) {
                journal.push(now + self.fired);
                self.fired += 1;
            }
        }
        let mut sched = Scheduler::new(TieBreak::Canonical);
        sched.add(Echo { fired: 0 });
        let mut journal = Vec::new();
        let end = sched.run(&mut journal);
        assert_eq!(end, 5);
        assert_eq!(journal, [5, 6]);
    }

    fn journal_under(tie: TieBreak) -> Vec<(u64, u32)> {
        let mut sched = Scheduler::new(tie);
        for id in 0..4 {
            sched.add(Metronome::new(id, 2, 5));
        }
        let mut journal = Vec::new();
        sched.run(&mut journal);
        journal
    }

    #[test]
    fn fuzzed_tie_break_is_deterministic_per_seed_and_permutes() {
        let canonical = journal_under(TieBreak::Canonical);
        let a = journal_under(TieBreak::Fuzzed(7));
        let b = journal_under(TieBreak::Fuzzed(7));
        assert_eq!(a, b, "same seed, same schedule");
        // Some seed must actually permute a 4-way tie.
        let permuted = (0..16u64).any(|s| journal_under(TieBreak::Fuzzed(s)) != canonical);
        assert!(permuted, "fuzz never permuted a 4-way same-cycle tie");
        // Any order is a permutation: cycle multiset is invariant.
        let mut cy_a: Vec<u64> = a.iter().map(|&(c, _)| c).collect();
        let mut cy_c: Vec<u64> = canonical.iter().map(|&(c, _)| c).collect();
        cy_a.sort_unstable();
        cy_c.sort_unstable();
        assert_eq!(cy_a, cy_c);
    }

    #[test]
    fn hunt_flags_order_dependent_state_and_clears_independent_state() {
        // Order-dependent digest: the exact journal sequence.
        let dependent = hunt_order_dependence(journal_under, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(dependent.is_some(), "journal order must depend on tie order");
        // Order-independent digest: the sorted journal.
        let independent = hunt_order_dependence(
            |tie| {
                let mut j = journal_under(tie);
                j.sort_unstable();
                j
            },
            &[1, 2, 3, 4, 5, 6, 7, 8],
        );
        assert_eq!(independent, None);
    }

    #[test]
    fn strike_timer_moves_a_pending_wakeup() {
        let mut sched = Scheduler::new(TieBreak::Canonical);
        let track = sched.add(Metronome::new(0, 8, 2)); // honest: 8, 16
        let mut journal = Vec::new();
        sched.prime();
        assert_eq!(sched.scheduled_at(track), 8);
        // Flip bit 2: 8 ^ 4 = 12 — the first fire slips to cycle 12.
        assert_eq!(sched.strike_timer(track, 2), Some(12));
        sched.run(&mut journal);
        // First fire at the corrupted cycle, then honest cadence.
        assert_eq!(journal, [(12, 0), (20, 0)]);
    }

    #[test]
    fn strike_divider_is_a_permanent_fault() {
        let mut sched = Scheduler::new(TieBreak::Canonical);
        // Divider 4, period 6: honest fires 8, 16 (12→16? 6→8, 14→16).
        let track = sched.add_with_divider(Metronome::new(0, 6, 2), 4);
        // Flip bit 0: divider 4 → 5; wake-ups now quantize to 10, 20.
        assert_eq!(sched.strike_divider(track, 0), 5);
        let mut journal = Vec::new();
        sched.run(&mut journal);
        assert_eq!(journal, [(10, 0), (20, 0)]);
    }

    #[test]
    fn vt_add_overflow_names_the_component() {
        let err = std::panic::catch_unwind(|| vt_add("shard 3 heartbeat", u64::MAX - 1, 2)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("shard 3 heartbeat"), "panic must name the component: {msg}");
        assert!(msg.contains("virtual-time overflow"), "panic must say what happened: {msg}");
    }

    #[test]
    fn vt_mul_overflow_names_the_component() {
        let err = std::panic::catch_unwind(|| vt_mul("shed predictor", u64::MAX / 2, 3)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("shed predictor"), "panic must name the component: {msg}");
    }

    #[test]
    fn near_max_start_cycle_overflows_loudly_not_silently() {
        // A metronome started near u64::MAX overflows its next wake-up
        // accumulation — the regression the checked arithmetic exists
        // for: the panic fires instead of a silent wrap to cycle ~0.
        struct LateStarter;
        impl Component<()> for LateStarter {
            fn label(&self) -> &'static str {
                "late-starter"
            }
            fn next_tick(&self) -> u64 {
                u64::MAX - 2
            }
            fn tick(&mut self, now: u64, _: &mut ()) {
                let _ = vt_add("late-starter", now, 100);
            }
        }
        let err = std::panic::catch_unwind(|| {
            let mut sched = Scheduler::new(TieBreak::Canonical);
            sched.add(LateStarter);
            sched.run(&mut ());
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("late-starter"), "panic must name the component: {msg}");
    }

    #[test]
    fn into_components_returns_in_track_order() {
        let mut sched: Scheduler<Vec<(u64, u32)>, Metronome> = Scheduler::new(TieBreak::Canonical);
        sched.add(Metronome::new(10, 1, 0));
        sched.add(Metronome::new(11, 1, 0));
        let ids: Vec<u32> = sched.into_components().iter().map(|m| m.id).collect();
        assert_eq!(ids, [10, 11]);
    }
}
