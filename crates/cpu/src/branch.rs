//! Branch predictor: gshare-style two-bit saturating counters.
//!
//! Provides the `br-miss` column of Table II and the mispredict refetch
//! penalty in the core model.

/// Gshare predictor with a global history register.
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    table: Vec<u8>, // 2-bit counters
    history: u64,
    mask: u64,
    predictions: u64,
    misses: u64,
}

impl BranchPredictor {
    /// Predictor with `2^log2_entries` counters.
    pub fn new(log2_entries: u32) -> BranchPredictor {
        let n = 1usize << log2_entries;
        BranchPredictor {
            table: vec![1; n], // weakly not-taken
            history: 0,
            mask: (n - 1) as u64,
            predictions: 0,
            misses: 0,
        }
    }

    /// Default size (16k entries), roughly a desktop-class predictor.
    pub fn haswell() -> BranchPredictor {
        BranchPredictor::new(14)
    }

    fn index(&self, site: u64) -> usize {
        // Mix the site id and history (gshare xor).
        let h = site.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.history;
        (h & self.mask) as usize
    }

    /// Record the outcome of branch `site`; returns `true` when the
    /// prediction was correct.
    pub fn predict_and_update(&mut self, site: u64, taken: bool) -> bool {
        let idx = self.index(site);
        let counter = self.table[idx];
        let predicted_taken = counter >= 2;
        let correct = predicted_taken == taken;
        self.predictions += 1;
        if !correct {
            self.misses += 1;
        }
        self.table[idx] = match (counter, taken) {
            (3, true) => 3,
            (c, true) => c + 1,
            (0, false) => 0,
            (c, false) => c - 1,
        };
        self.history = (self.history << 1) | u64::from(taken);
        correct
    }

    /// Branches predicted so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Mispredictions so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.misses as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut p = BranchPredictor::new(10);
        for _ in 0..1000 {
            p.predict_and_update(42, true);
        }
        // After warmup the loop branch is essentially always right.
        assert!(p.miss_ratio() < 0.02, "ratio {}", p.miss_ratio());
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = BranchPredictor::new(12);
        let mut wrong_late = 0;
        for i in 0..4000 {
            let taken = i % 2 == 0;
            let ok = p.predict_and_update(7, taken);
            if i >= 2000 && !ok {
                wrong_late += 1;
            }
        }
        // Gshare keys on history, so a strict alternation becomes
        // predictable.
        assert!(wrong_late < 100, "wrong_late {wrong_late}");
    }

    #[test]
    fn random_branches_mispredict_often() {
        let mut p = BranchPredictor::new(12);
        // Deterministic pseudo-random outcome stream.
        let mut x = 0x12345678u64;
        let mut miss = 0;
        let n = 20_000;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let taken = (x >> 62) & 1 == 1;
            if !p.predict_and_update(13, taken) {
                miss += 1;
            }
        }
        let ratio = miss as f64 / n as f64;
        assert!(ratio > 0.30, "random stream should mispredict a lot, got {ratio}");
    }

    #[test]
    fn distinct_sites_do_not_destructively_alias_much() {
        let mut p = BranchPredictor::haswell();
        for i in 0..10_000u64 {
            p.predict_and_update(100, true);
            p.predict_and_update(200, false);
            let _ = i;
        }
        assert!(p.miss_ratio() < 0.05, "ratio {}", p.miss_ratio());
    }
}
