//! # elzar-cpu
//!
//! Haswell-like CPU timing model for the ELZAR reproduction: execution
//! ports and per-class latencies ([`cost`]), an L1/L2/shared-L3 cache
//! simulator ([`cache`]), a gshare branch predictor ([`branch`]), and a
//! per-instruction O(1) out-of-order scoreboard ([`core`]) that yields
//! cycle counts, ILP and perf-stat style counters.
//!
//! The paper's evaluation (§V) explains ELZAR's slowdowns through exactly
//! the effects this model captures: AVX ops being served by fewer ports
//! (lower ILP, Table III), `extract`/`broadcast` wrapper latency around
//! every load/store (Table IV), `ptest` in front of every branch, cache
//! misses amortizing overhead (matrix multiply), and branch mispredicts.
//!
//! ```
//! use elzar_cpu::{Core, InstClass, SharedL3};
//!
//! let mut l3 = SharedL3::haswell();
//! let mut core = Core::new();
//! let a = core.retire(InstClass::ScalarAlu, &[]);
//! let b = core.retire_mem(InstClass::Load, &[a], 0x1000, &mut l3);
//! core.retire(InstClass::ScalarAlu, &[b]);
//! assert!(core.cycles() > 0);
//! ```

#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod core;
pub mod cost;

pub use crate::core::{Core, CoreConfig, Counters};
pub use branch::BranchPredictor;
pub use cache::{Cache, CacheLatencies, CoreCaches, SharedL3};
pub use cost::{Cost, InstClass, PortMask};
